"""Tests for the streaming ingestion tier (repro.streams).

The central contract: a stream grown by any append schedule produces the
profile a batch dispatch of its ``equivalent_tiles()`` produces — bit
for bit, in all five precision modes, for self-joins and AB joins.
Plus: the sketch gate's recall/suppression, the tenant service's
admission shedding, backpressure and sliding retention, and
checkpoint/resume.
"""

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.tiling import assign_tiles
from repro.engine.accumulate import ProfileAccumulator
from repro.engine.backends import NumericBackend
from repro.engine.dispatch import execute_plan
from repro.engine.plan import JobSpec
from repro.gpu.simulator import GPUSimulator
from repro.kernels.layout import validate_stream_samples
from repro.streams import (
    IncrementalMatrixProfile,
    SketchMonitor,
    StreamIngestService,
    TenantPolicy,
)

MODES = ("FP64", "FP32", "Mixed", "FP16", "FP16C")

# Append schedules: single rows, bursts, and mixed bursts that straddle
# the tile boundaries earlier steps created.
SCHEDULES = (
    [40] + [1] * 6,
    [23, 23, 23],
    [40, 1, 1, 25, 3],
)


def _series(rng, n, d):
    return rng.normal(size=(n, d)).cumsum(axis=0)


def _batch_profile(inc, cfg):
    """Full recompute over the stream's equivalent tile list."""
    tiles = list(inc.equivalent_tiles())
    tr = inc._stream if inc.self_join else inc._ref_layout
    spec = JobSpec.from_layouts(
        tr, inc._stream, inc.m, cfg, exclusion_zone=inc.exclusion_zone
    )
    sim = GPUSimulator(cfg.device, cfg.n_gpus, cfg.n_streams)
    plan = spec.plan(tiles=tiles, assignment=assign_tiles(tiles, sim.n_gpus))
    acc = ProfileAccumulator(spec.d, inc.n_q_seg, cfg.policy)
    execute_plan(plan, NumericBackend(), sim, accumulator=acc)
    return acc.host_profile(), acc.host_index()


def _assert_bit_identical(got, want):
    gp, gi = got
    wp, wi = want
    np.testing.assert_array_equal(gp.view(np.uint8), wp.view(np.uint8))
    np.testing.assert_array_equal(gi, wi)


class TestIncrementalBitIdentity:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("schedule", SCHEDULES, ids=("singles", "bursts", "mixed"))
    def test_self_join_matches_batch(self, rng, mode, schedule):
        series = _series(rng, sum(schedule), 2)
        cfg = RunConfig(mode=mode)
        inc = IncrementalMatrixProfile(12, cfg)
        off = 0
        for step in schedule:
            inc.append(series[off : off + step])
            off += step
        _assert_bit_identical(inc.profile(), _batch_profile(inc, cfg))

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("schedule", SCHEDULES, ids=("singles", "bursts", "mixed"))
    def test_ab_join_matches_batch(self, rng, mode, schedule):
        ref = _series(rng, 80, 3)
        qry = _series(rng, sum(schedule), 3)
        cfg = RunConfig(mode=mode)
        inc = IncrementalMatrixProfile(10, cfg, reference=ref)
        off = 0
        for step in schedule:
            inc.append(qry[off : off + step])
            off += step
        _assert_bit_identical(inc.profile(), _batch_profile(inc, cfg))

    @pytest.mark.parametrize("mode", ("FP64", "FP16C"))
    def test_plane_cache_matches_uncached(self, rng, mode):
        """amortize_precalc=False recomputes planes per tile; the stream
        cache must not perturb a single bit."""
        series = _series(rng, 90, 2)
        a = IncrementalMatrixProfile(12, RunConfig(mode=mode))
        b = IncrementalMatrixProfile(
            12, RunConfig(mode=mode, amortize_precalc=False)
        )
        off = 0
        for step in (40, 1, 49):
            a.append(series[off : off + step])
            b.append(series[off : off + step])
            off += step
        _assert_bit_identical(a.profile(), b.profile())
        assert a.accumulator.precalc_saved_flops > 0

    def test_single_append_matches_one_shot(self, rng):
        """One big append equals constructing with initial=..."""
        series = _series(rng, 100, 1)
        a = IncrementalMatrixProfile(16, RunConfig(mode="FP32"))
        a.append(series)
        b = IncrementalMatrixProfile(16, RunConfig(mode="FP32"), initial=series)
        _assert_bit_identical(a.profile(), b.profile())

    def test_checkpoint_resume_bit_identical(self, rng, tmp_path):
        series = _series(rng, 120, 2)
        cfg = RunConfig(mode="FP16C")
        full = IncrementalMatrixProfile(12, cfg)
        full.append(series[:70])
        full.append(series[70:])

        half = IncrementalMatrixProfile(12, cfg)
        half.append(series[:70])
        path = tmp_path / "stream.npz"
        half.save(path)
        resumed = IncrementalMatrixProfile.load(path)
        resumed.append(series[70:])
        _assert_bit_identical(resumed.profile(), full.profile())
        assert resumed.equivalent_tiles() == full.equivalent_tiles()

    def test_checkpoint_rejects_mode_mismatch(self, rng, tmp_path):
        inc = IncrementalMatrixProfile(8, RunConfig(mode="FP16"))
        inc.append(_series(rng, 30, 1))
        path = tmp_path / "stream.npz"
        inc.save(path)
        with pytest.raises(ValueError, match="storage dtype"):
            IncrementalMatrixProfile.load(path, RunConfig(mode="FP64"))


class TestStreamValidation:
    def test_non_finite_rejected_with_offset(self):
        inc = IncrementalMatrixProfile(8, RunConfig())
        inc.append(np.zeros((20, 2)) + np.arange(20)[:, None])
        bad = np.ones((5, 2))
        bad[3, 1] = np.nan
        # The reported offset is global to the stream, not batch-local.
        with pytest.raises(ValueError, match="dimension 1, stream offsets 23..23"):
            inc.append(bad)
        # The rejected batch must not have been ingested.
        assert inc.n_samples == 20

    def test_validate_stream_samples_contract(self):
        arr = validate_stream_samples([1.0, 2.0, 3.0])
        assert arr.shape == (3, 1)
        with pytest.raises(ValueError, match="at least 1 sample"):
            validate_stream_samples(np.empty((0, 2)))
        bad = np.zeros((4, 3))
        bad[1, 2] = np.inf
        with pytest.raises(ValueError, match="dimension 2, stream offsets 101..101"):
            validate_stream_samples(bad, offset=100)

    def test_dimension_change_rejected(self):
        inc = IncrementalMatrixProfile(8, RunConfig())
        inc.ingest(np.zeros((10, 2)))
        with pytest.raises(ValueError, match="d=2"):
            inc.ingest(np.zeros((5, 3)))


class TestAccumulatorExtension:
    def test_extend_columns_preserves_and_initialises(self):
        from repro.precision.modes import policy_for

        policy = policy_for("FP16")
        acc = ProfileAccumulator(2, 4, policy)
        acc.profile[:, :] = 1.5
        acc.index[:, :] = 7
        acc.extend_columns(6)
        assert acc.profile.shape == (2, 6)
        assert np.all(acc.profile[:, :4] == np.float16(1.5))
        assert np.all(acc.index[:, :4] == 7)
        assert np.all(acc.index[:, 4:] == -1)
        fresh = ProfileAccumulator(2, 6, policy)
        assert np.array_equal(acc.profile[:, 4:], fresh.profile[:, 4:])
        with pytest.raises(ValueError, match="shrink"):
            acc.extend_columns(3)


class TestSketchGate:
    def _discord_stream(self, rng, n, m, at):
        series = np.sin(np.linspace(0, n / 12, n)) + 0.05 * rng.normal(size=n)
        series[at : at + m] += 4.0
        return series[:, None]

    def test_recall_and_suppression(self, rng):
        m = 16
        n = 480
        at = 360
        series = self._discord_stream(rng, n, m, at)
        monitor = SketchMonitor(m, d=1, warmup=24, seed=1)
        alarms = []
        for seg in range(n - m + 1):
            score = monitor.score(series[seg : seg + m].T)
            if score.alarm:
                alarms.append(seg)
        n_seg = n - m + 1
        # The planted discord must alarm (recall on the top-1 discord)...
        assert any(at - m < a < at + m for a in alarms)
        # ...while most of the periodic stream is suppressed.
        assert len(alarms) <= 0.5 * n_seg

    def test_gated_tenant_counts_suppressed_work(self, rng):
        m = 16
        n = 480
        at = 360
        series = self._discord_stream(rng, n, m, at)
        svc = StreamIngestService(n_gpus=1)
        svc.register(
            "t",
            TenantPolicy(m=m, sketch_gate=True, sketch_warmup=24, sketch_seed=1),
        )
        for i in range(0, n, 20):
            svc.ingest("t", series[i : i + 20])
        c = svc.tenant("t").counters
        assert c.segments == n - m + 1
        assert c.suppressed_columns + c.exact_columns == c.segments
        assert c.suppression_ratio >= 0.5  # the acceptance floor
        # Zero missed top-1 discords: an alarm fires within m of the
        # planted discord, and the probed profile there is exact (finite,
        # not the accumulator's untouched upper bound).
        alarmed = [s.position for s in svc.scores("t") if s.alarm]
        hits = [p for p in alarmed if at - m < p < at + m]
        assert hits
        profile, _ = svc.profile("t")
        limit = np.finfo(profile.dtype).max
        assert all(profile[p, 0] < limit for p in hits)
        # Post-warmup, the probed region around the discord dominates:
        # every post-warmup alarm is near the planted position.
        post = [p for p in alarmed if p >= 2 * c.alarms]
        assert post and all(at - m < p < at + m for p in post)

    def test_fixed_threshold_and_validation(self):
        with pytest.raises(ValueError, match="shrink"):
            SketchMonitor(8, 1, shrink=0.0)
        with pytest.raises(ValueError, match="threshold"):
            SketchMonitor(8, 1, threshold="bogus")
        monitor = SketchMonitor(8, 1, threshold=1e9)
        monitor.prime(np.zeros((6, 1, 8)) + np.arange(8))
        score = monitor.score(np.arange(8, dtype=float)[None, :])
        assert not score.alarm and score.suppressed
        with pytest.raises(ValueError, match="rolling"):
            SketchMonitor(8, 1, rolling=1)

    def test_rolling_threshold_recentres_after_drift(self, rng):
        """Regression: a drifting tenant must not poison the auto
        threshold forever.  A noisy drift phase inflates the cumulative
        mean/std for the rest of the stream, masking later discords; the
        rolling baseline re-centres within its window and still catches
        them."""
        m = 16
        calm = np.sin(np.linspace(0, 25, 300))
        drift = 3.0 * rng.normal(size=240)  # shape-shifting regime
        tail = np.sin(np.linspace(25, 40, 180))
        at = 300 + 240 + 90  # moderate discord planted after the drift
        tail[90 : 90 + m] += 1.5
        series = np.concatenate([calm, drift, tail])[:, None]

        def run(**kw):
            mon = SketchMonitor(m, d=1, warmup=24, seed=3, **kw)
            scores = [
                mon.score(series[s : s + m].T)
                for s in range(len(series) - m + 1)
            ]
            return mon, scores

        cumulative, cum_scores = run()
        rolling, roll_scores = run(rolling=64)
        # Same inputs, same projection: the estimates agree everywhere —
        # only the thresholds differ.
        assert [s.estimate for s in cum_scores] == [
            s.estimate for s in roll_scores
        ]
        # After the calm tail the rolling baseline has re-centred while
        # the cumulative one still remembers the drift phase.
        assert rolling._current_threshold() < cumulative._current_threshold()
        def hits(scores):
            return [
                s.position
                for s in scores
                if s.alarm and at - m < s.position < at + m
            ]
        assert hits(roll_scores), "rolling monitor missed the discord"
        assert not hits(cum_scores), (
            "cumulative monitor caught the discord — the regression this "
            "test pins no longer reproduces; strengthen the drift phase"
        )

    def test_tenant_rolling_param_reaches_monitor(self):
        svc = StreamIngestService(n_gpus=1)
        svc.register(
            "t", TenantPolicy(m=8, sketch_gate=True, sketch_rolling=48)
        )
        assert svc.tenant("t").monitor.rolling == 48


class TestIngestService:
    def test_exact_tenant_matches_standalone_stream(self, rng):
        """The service path (shared pool, admission) must not perturb the
        exact tier's numerics."""
        series = _series(rng, 150, 2)
        svc = StreamIngestService(n_gpus=2)
        svc.register("t", TenantPolicy(m=12, mode="FP16"))
        solo = IncrementalMatrixProfile(12, RunConfig(mode="FP16"))
        for i in range(0, 150, 30):
            svc.ingest("t", series[i : i + 30])
            solo.append(series[i : i + 30])
        _assert_bit_identical(svc.profile("t"), solo.profile())
        _assert_bit_identical(svc.profile("t"), _batch_profile(solo, solo.config))

    def test_deadline_sheds_precision(self, rng):
        svc = StreamIngestService(n_gpus=1)
        svc.register("t", TenantPolicy(m=16, mode="FP64", deadline=1e-12))
        report = svc.ingest("t", _series(rng, 80, 2))
        assert report.shed_steps > 0
        assert report.mode.value != "FP64"
        assert svc.tenant("t").counters.shed_steps == report.shed_steps
        snap = svc.metrics.snapshot()
        assert snap.stream_shed_steps == report.shed_steps
        assert snap.precision_downgrades == report.shed_steps

    def test_backpressure_drops_and_counts(self, rng):
        svc = StreamIngestService(n_gpus=1)
        svc.register("t", TenantPolicy(m=8, max_batch=32))
        report = svc.ingest("t", _series(rng, 100, 1))
        assert report.accepted == 32 and report.dropped == 68
        assert svc.tenant("t").stream.n_samples == 32
        assert svc.metrics.snapshot().stream_dropped == 68

    def test_sliding_window_rebases(self, rng):
        svc = StreamIngestService(n_gpus=1)
        svc.register("t", TenantPolicy(m=8, window="sliding", retention=64))
        for i in range(0, 300, 20):
            svc.ingest("t", _series(rng, 20, 1))
        session = svc.tenant("t")
        assert session.counters.rebases > 0
        assert session.stream.n_samples <= int(64 * 1.5)
        assert session.n_samples_global == 300
        # The retained window's profile matches a fresh stream over the
        # same suffix appended in one step (the re-base is one batch).
        assert session.stream.profile()[0].shape[0] == session.stream.n_q_seg

    def test_metrics_snapshot_stream_section(self, rng):
        svc = StreamIngestService(n_gpus=1)
        svc.register("t", TenantPolicy(m=8))
        svc.ingest("t", _series(rng, 40, 1))
        snap = svc.metrics.snapshot()
        assert snap.stream_appends == 1
        assert snap.stream_tenants == 1
        assert snap.stream_samples == 40
        rows = dict((r[0], r[1]) for r in snap.to_rows())
        assert rows["stream appends"] == 1
        # No stream rows when nothing streamed.
        from repro.service.metrics import ServiceMetrics

        empty = ServiceMetrics().snapshot()
        assert all(not str(r[0]).startswith("stream") for r in empty.to_rows())

    def test_checkpoint_restore_roundtrip(self, rng, tmp_path):
        series = _series(rng, 120, 2)
        svc = StreamIngestService(n_gpus=1)
        policy = TenantPolicy(m=12, mode="FP32")
        svc.register("t", policy)
        svc.ingest("t", series[:70])
        path = tmp_path / "tenant.npz"
        svc.checkpoint("t", path)

        svc2 = StreamIngestService(n_gpus=1)
        svc2.restore("t", path, policy)
        svc2.ingest("t", series[70:])

        solo = IncrementalMatrixProfile(12, RunConfig(mode="FP32"))
        solo.append(series[:70])
        solo.append(series[70:])
        _assert_bit_identical(svc2.profile("t"), solo.profile())

    def test_duplicate_and_unknown_tenants(self, rng):
        svc = StreamIngestService(n_gpus=1)
        svc.register("t", TenantPolicy(m=8))
        with pytest.raises(ValueError, match="already registered"):
            svc.register("t", TenantPolicy(m=8))
        with pytest.raises(KeyError, match="unknown tenant"):
            svc.ingest("ghost", np.zeros((4, 1)))

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="retention"):
            TenantPolicy(m=8, window="sliding")
        with pytest.raises(ValueError, match="window"):
            TenantPolicy(m=8, window="hopping")
        with pytest.raises(ValueError, match="max_batch"):
            TenantPolicy(m=8, max_batch=0)
