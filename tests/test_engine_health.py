"""Per-tile numerical health: validation, risk scoring, escalation.

The escalation ladder is the exact inverse of the service's shedding
ladder; check_tile_output flags exactly the impossible-for-real-data
outputs (NaN, Inf, negative, correlation > 1 + tol) while ignoring
saturated index=-1 entries; escalation re-executes a sick tile with
numerics bit-identical to a run that started at the wider mode.
"""

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.multi_tile import compute_multi_tile
from repro.engine import (
    ESCALATION_LADDER,
    HealthPolicy,
    JobSpec,
    TileHealthError,
    check_tile_output,
    escalation_next,
    preflight_tile_risk,
)
from repro.engine.faults import FaultPlan
from repro.precision.modes import PrecisionMode
from repro.service.admission import DOWNGRADE_LADDER


def _bounded_series(rng, n=240, d=2):
    t = np.linspace(0.0, 16.0 * np.pi, n)
    return np.sin(t)[:, None] * np.linspace(0.5, 1.5, d) + 0.1 * rng.normal(
        size=(n, d)
    )


class TestLadder:
    def test_inverse_of_service_downgrade_ladder(self):
        assert ESCALATION_LADDER == tuple(reversed(DOWNGRADE_LADDER))

    def test_chain_walks_fp16_to_fp64(self):
        mode = PrecisionMode.FP16
        walked = [mode]
        while (mode := escalation_next(mode)) is not None:
            walked.append(mode)
        assert tuple(walked) == ESCALATION_LADDER

    def test_fp16c_enters_at_fp32(self):
        assert escalation_next("FP16C") is PrecisionMode.FP32

    def test_fp64_is_terminal(self):
        assert escalation_next(PrecisionMode.FP64) is None


class TestCheckTileOutput:
    def _clean(self, m=16, shape=(2, 40)):
        rng = np.random.default_rng(3)
        profile = rng.uniform(0.1, np.sqrt(2 * m), size=shape)
        indices = np.zeros(shape, dtype=np.int64)
        return profile, indices

    def test_clean_output_passes(self):
        profile, indices = self._clean()
        assert check_tile_output(profile, indices, 16) == []

    @pytest.mark.parametrize(
        "value, label",
        [(np.nan, "NaN"), (np.inf, "infinite"), (-0.5, "negative")],
    )
    def test_detects_impossible_values(self, value, label):
        profile, indices = self._clean()
        profile[1, 7] = value
        issues = check_tile_output(profile, indices, 16)
        assert len(issues) == 1 and label in issues[0]

    def test_detects_correlation_out_of_range(self):
        # A huge finite distance implies correlation far below -1 - tol.
        profile, indices = self._clean(m=16)
        profile[0, 3] = 100.0  # implied corr = 1 - 10000/32 << -1.25
        issues = check_tile_output(profile, indices, 16, correlation_tol=0.25)
        assert len(issues) == 1 and "correlation" in issues[0]

    def test_ignores_saturated_entries(self):
        # Index -1 marks no-match columns parked at the dtype limit;
        # their values carry no information and must not trip checks.
        profile, indices = self._clean()
        profile[0, 0] = np.inf
        profile[1, 1] = np.nan
        indices[0, 0] = indices[1, 1] = -1
        assert check_tile_output(profile, indices, 16) == []

    def test_all_saturated_tile_passes(self):
        profile = np.full((2, 8), np.inf)
        indices = np.full((2, 8), -1, dtype=np.int64)
        assert check_tile_output(profile, indices, 16) == []


class TestPreflight:
    def test_overflowing_slice_is_risky_at_fp16_only(self, rng):
        series = _bounded_series(rng)
        # One region large enough that sum(x^2) over m overflows FP16.
        series[60:120, 0] += 300.0
        spec = JobSpec.from_arrays(
            series, None, 16, RunConfig(mode="FP16", n_tiles=4)
        )
        risks = [preflight_tile_risk(spec, t) for t in spec.plan().tiles]
        assert any(r.risky for r in risks)
        safe = [
            preflight_tile_risk(spec, t, PrecisionMode.FP32)
            for t in spec.plan().tiles
        ]
        assert not any(r.overflow_fraction > 0 for r in safe)

    def test_preflight_policy_starts_risky_tiles_wider(self, rng):
        series = _bounded_series(rng)
        series[60:120, 0] += 300.0
        config = RunConfig(mode="FP16", n_tiles=4)
        result = compute_multi_tile(
            series, None, 16, config, health=HealthPolicy(preflight=True)
        )
        assert result.escalations  # overflow-doomed tiles never ran FP16
        assert all(
            mode in ESCALATION_LADDER for mode in result.escalations.values()
        )
        assert np.isfinite(result.profile).all()

    def test_requires_host_series(self, rng):
        series = _bounded_series(rng)
        spec = JobSpec.from_arrays(series, None, 16, RunConfig(n_tiles=2))
        tr, tq = spec.layouts()
        layouts_only = JobSpec.from_layouts(tr, tq, 16, spec.config)
        with pytest.raises(ValueError, match="host series"):
            preflight_tile_risk(layouts_only, layouts_only.plan().tiles[0])


class TestEscalation:
    def test_corrupted_tile_escalates_and_completes(self, rng):
        series = _bounded_series(rng)
        config = RunConfig(mode="FP16", n_tiles=4, n_gpus=2)
        plan = FaultPlan(seed=11, corrupt_rate=1.0, corrupt_count=2)
        result = compute_multi_tile(
            series, None, 16, config, health=HealthPolicy(), fault_plan=plan
        )
        # Every tile's base-mode output was corrupted -> every tile
        # escalated exactly one rung (the re-execution stays clean).
        assert set(result.escalations) == set(range(result.n_tiles))
        assert set(result.escalations.values()) == {PrecisionMode.MIXED}
        assert np.isfinite(result.profile).all()
        assert (result.index >= 0).all()

    def test_escalated_matches_wider_mode_bitwise(self, rng):
        # Escalation is re-execution, not repair: an FP32 tile escalated
        # to FP64 merges output bit-identical to the pure-FP64
        # computation cast into the FP32-storage accumulator.
        series = _bounded_series(rng)
        fp64 = compute_multi_tile(series, None, 16, RunConfig(n_tiles=1))
        result = compute_multi_tile(
            series, None, 16, RunConfig(mode="FP32", n_tiles=1),
            health=HealthPolicy(),
            fault_plan=FaultPlan(seed=2, corrupt_rate=1.0),
        )
        assert result.escalations == {0: PrecisionMode.FP64}
        assert np.array_equal(
            result.profile, fp64.profile.astype(np.float32)
        )
        assert np.array_equal(result.index, fp64.index)

    def test_escalation_disabled_raises(self, rng):
        series = _bounded_series(rng)
        with pytest.raises(TileHealthError, match="health checks"):
            compute_multi_tile(
                series, None, 16, RunConfig(mode="FP16", n_tiles=2),
                health=HealthPolicy(escalate=False),
                fault_plan=FaultPlan(seed=5, corrupt_rate=1.0),
            )

    def test_fp64_corruption_has_no_rung_left(self, rng):
        series = _bounded_series(rng)
        with pytest.raises(TileHealthError) as excinfo:
            compute_multi_tile(
                series, None, 16, RunConfig(mode="FP64", n_tiles=2),
                health=HealthPolicy(),
                fault_plan=FaultPlan(seed=5, corrupt_rate=1.0),
            )
        assert excinfo.value.mode is PrecisionMode.FP64
        assert excinfo.value.issues

    def test_healthy_run_records_nothing(self, rng):
        series = _bounded_series(rng)
        config = RunConfig(mode="FP32", n_tiles=4, n_gpus=2)
        plain = compute_multi_tile(series, None, 16, config)
        checked = compute_multi_tile(
            series, None, 16, config, health=HealthPolicy()
        )
        assert checked.escalations == {}
        assert np.array_equal(plain.profile, checked.profile)
        assert np.array_equal(plain.index, checked.index)
