"""Regenerate the engine-parity golden archive.

The archive pins the bit-exact profiles/indices of the tile-execution
paths as they were **before** the `repro.engine` refactor (PR 2).  Run
from the repo root::

    PYTHONPATH=src python tests/golden/generate_engine_parity.py

The inputs are bounded sine mixtures (FP16-safe) built from a fixed seed,
so the archive is reproducible from this script alone.
"""

from pathlib import Path

import numpy as np

from repro.core.config import RunConfig

MODES = ("FP64", "FP32", "FP16", "Mixed", "FP16C")
N_TILES, N_GPUS = 4, 2


def series_pair():
    rng = np.random.default_rng(20220522)  # the paper's conference date
    t = np.arange(240)
    ref = np.stack(
        [np.sin(2 * np.pi * t / (12 + 3 * k)) for k in range(3)], axis=1
    ) + 0.1 * rng.normal(size=(240, 3))
    qry = np.stack(
        [np.sin(2 * np.pi * t[:220] / (12 + 3 * k) + 0.7) for k in range(3)], axis=1
    ) + 0.1 * rng.normal(size=(220, 3))
    return ref, qry, 16


def main() -> None:
    from repro.core.multi_tile import compute_multi_tile
    from repro.core.single_tile import compute_single_tile

    ref, qry, m = series_pair()
    blobs = {"reference": ref, "query": qry, "m": np.int64(m)}
    for mode in MODES:
        for join, query in (("self", None), ("ab", qry)):
            single = compute_single_tile(ref, query, m, RunConfig(mode=mode))
            multi = compute_multi_tile(
                ref, query, m, RunConfig(mode=mode, n_tiles=N_TILES, n_gpus=N_GPUS)
            )
            key = f"{mode}_{join}"
            blobs[f"single_{key}_profile"] = single.profile
            blobs[f"single_{key}_index"] = single.index
            blobs[f"multi_{key}_profile"] = multi.profile
            blobs[f"multi_{key}_index"] = multi.index
    out = Path(__file__).parent / "engine_parity.npz"
    np.savez_compressed(out, **blobs)
    print(f"wrote {out} ({out.stat().st_size} bytes, {len(blobs)} arrays)")


if __name__ == "__main__":
    main()
