"""Invariant checks on the calibration tables (guard against constant rot)."""

import pytest

from repro.gpu.calibration import (
    CPU_CELL_TIME,
    CPU_SORT_FACTOR,
    DEVICE_EFFICIENCY_SCALE,
    DRAM_EFFICIENCY,
    L1_EFFICIENCY,
    L2_EFFICIENCY,
    MERGE_TIME_PER_ELEMENT,
    SM_EFFICIENCY,
    TILE_DISPATCH_OVERHEAD,
    device_scale,
    dram_efficiency,
    l1_efficiency,
)


class TestEfficiencyTables:
    def test_all_kernels_covered(self):
        assert set(DRAM_EFFICIENCY) == {
            "dist_calc",
            "update_mat_prof",
            "precalculation",
            "sort_&_incl_scan",
        }

    def test_fractions_in_unit_interval(self):
        for table in DRAM_EFFICIENCY.values():
            for v in table.values():
                assert 0 < v <= 1
        for v in L1_EFFICIENCY.values():
            assert 0 < v <= 1
        assert 0 < L2_EFFICIENCY <= 1
        assert 0 < SM_EFFICIENCY <= 1

    def test_efficiency_decreases_with_narrower_dtype(self):
        # Section V-C: achieved utilisation drops with the element width,
        # which is what makes reduced-precision speedup sub-linear.
        for name, table in DRAM_EFFICIENCY.items():
            assert table[8] >= table[4] >= table[2], name
        assert L1_EFFICIENCY[8] >= L1_EFFICIENCY[4] >= L1_EFFICIENCY[2]

    def test_unknown_kernel_falls_back(self):
        assert dram_efficiency("mystery_kernel", 8) == DRAM_EFFICIENCY[
            "precalculation"
        ][8]

    def test_unknown_itemsize_falls_back_to_fp64(self):
        assert dram_efficiency("dist_calc", 16) == DRAM_EFFICIENCY["dist_calc"][8]
        assert l1_efficiency(16) == L1_EFFICIENCY[8]


class TestScalarConstants:
    def test_device_scales(self):
        assert DEVICE_EFFICIENCY_SCALE["V100"] > 1.0  # mature arch saturates
        assert DEVICE_EFFICIENCY_SCALE["A100"] < 1.0
        assert device_scale("H100") == 1.0  # unknown device: neutral

    def test_positive_time_constants(self):
        for c in (CPU_CELL_TIME, MERGE_TIME_PER_ELEMENT, TILE_DISPATCH_OVERHEAD):
            assert c > 0

    def test_cpu_sort_factor_moderate(self):
        assert 0 < CPU_SORT_FACTOR < 1

    def test_headline_anchor_still_holds(self):
        # The anchor the constants were fitted to; if someone retunes one
        # constant they must retune the set (see calibration.py docstring).
        from repro.gpu.perfmodel import cpu_baseline_time, single_tile_timing

        t_cpu = cpu_baseline_time(2**16, 2**16, 2**6)
        t_a100 = single_tile_timing(2**16, 2**16, 2**6, 2**6, "A100", 8).compute_total
        assert t_cpu / t_a100 == pytest.approx(54.0, rel=0.15)
