"""Deterministic fault injection and the recovery paths it exercises.

The chaos matrix: storms are reproduced across several seeds and both
placement policies, and every storm must end with zero dropped tiles,
every corrupted tile escalated, and a final profile within the escalated
modes' error scale of the fault-free run.
"""

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.multi_tile import compute_multi_tile
from repro.engine import (
    HealthPolicy,
    JobSpec,
    NumericBackend,
    ProfileAccumulator,
    RoundRobinPlacement,
    TransientDeviceError,
    execute_plan,
    tile_key,
)
from repro.engine.faults import FaultPlan
from repro.gpu.memory import DeviceOutOfMemoryError
from repro.gpu.simulator import GPUSimulator


def _series(n=240, d=2, seed=5):
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 16.0 * np.pi, n)
    base = np.sin(t)[:, None] * np.linspace(0.5, 1.5, d)
    return base + 0.1 * rng.normal(size=(n, d))


@pytest.fixture
def spec_and_plan():
    config = RunConfig(mode="FP16", n_tiles=9, n_gpus=3)
    spec = JobSpec.from_arrays(_series(), None, 16, config)
    return spec, spec.plan()


class TestDeterminism:
    def test_same_seed_same_storm(self, spec_and_plan):
        spec, plan = spec_and_plan
        draws = [
            FaultPlan(seed=42, corrupt_rate=0.5)._draw("corrupt", t, 0)
            for t in plan.tiles
        ]
        again = [
            FaultPlan(seed=42, corrupt_rate=0.5)._draw("corrupt", t, 0)
            for t in plan.tiles
        ]
        assert draws == again
        other = [
            FaultPlan(seed=43, corrupt_rate=0.5)._draw("corrupt", t, 0)
            for t in plan.tiles
        ]
        assert draws != other

    def test_draw_keyed_by_geometry_not_id(self, spec_and_plan):
        # Splits renumber tile ids; the storm must not move with them.
        spec, plan = spec_and_plan
        tile = plan.tiles[3]
        renumbered = tile.__class__(
            99, tile.row_start, tile.row_stop, tile.col_start, tile.col_stop
        )
        fp = FaultPlan(seed=7)
        assert fp._draw("corrupt", tile, 0) == fp._draw("corrupt", renumbered, 0)

    def test_draws_roughly_uniform(self, spec_and_plan):
        spec, plan = spec_and_plan
        fp = FaultPlan(seed=0)
        draws = [
            fp._draw("transient", t, a)
            for t in plan.tiles
            for a in range(20)
        ]
        assert 0.3 < float(np.mean(draws)) < 0.7


class TestValidation:
    @pytest.mark.parametrize("field", ["transient_rate", "oom_rate", "corrupt_rate"])
    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, field, rate):
        with pytest.raises(ValueError, match=field):
            FaultPlan(**{field: rate})

    def test_corrupt_count_positive(self):
        with pytest.raises(ValueError, match="corrupt_count"):
            FaultPlan(corrupt_count=0)


class TestInjector:
    def test_oom_draw_raises_oom(self, spec_and_plan):
        spec, plan = spec_and_plan
        fp = FaultPlan(seed=1, oom_rate=1.0)
        with pytest.raises(DeviceOutOfMemoryError):
            fp.injector("job", plan.tiles[0], 0, 0)
        assert fp.event_counts() == {"oom": 1}

    def test_first_attempt_only_lets_retries_through(self, spec_and_plan):
        spec, plan = spec_and_plan
        fp = FaultPlan(seed=1, transient_rate=1.0)
        with pytest.raises(TransientDeviceError):
            fp.injector("job", plan.tiles[0], 0, 0)
        fp.injector("job", plan.tiles[0], 1, 1)  # attempt 1: clean
        assert fp.event_counts() == {"transient": 1}

    def test_sick_gpu_fails_every_attempt(self, spec_and_plan):
        spec, plan = spec_and_plan
        fp = FaultPlan(seed=1, sick_gpus=(2,))
        for attempt in range(3):
            with pytest.raises(TransientDeviceError, match="sick"):
                fp.injector("job", plan.tiles[0], 2, attempt)
        fp.injector("job", plan.tiles[0], 0, 0)  # healthy device: clean
        assert fp.event_counts() == {"sick": 3}


# The chaos matrix: >= 3 seeds x both placement policies.
@pytest.mark.parametrize("placement_kind", ["static", "round-robin"])
@pytest.mark.parametrize("seed", [3, 17, 29])
class TestFaultStorm:
    def _run(self, spec, plan, fault_plan, placement_kind):
        sim = GPUSimulator(
            spec.config.device, spec.config.n_gpus, spec.config.n_streams
        )
        accumulator = ProfileAccumulator(spec.d, spec.n_q_seg, spec.policy)
        placement = (
            RoundRobinPlacement(sim.n_gpus)
            if placement_kind == "round-robin"
            else None  # StaticPlacement from the plan's assignment
        )
        report = execute_plan(
            plan,
            NumericBackend(),
            sim,
            accumulator=accumulator,
            placement=placement,
            max_retries=3,
            health=HealthPolicy(),
            failure_injector=fault_plan.injector,
            corruptor=fault_plan.corruptor,
        )
        return report, accumulator

    def test_storm_completes_with_every_corruption_escalated(
        self, seed, placement_kind, spec_and_plan
    ):
        spec, plan = spec_and_plan
        fault_plan = FaultPlan(seed=seed, transient_rate=0.15, corrupt_rate=0.4)
        report, accumulator = self._run(spec, plan, fault_plan, placement_kind)

        # Zero dropped tiles.
        assert report.tiles_completed == report.tiles_total == plan.n_tiles
        assert not report.partial

        # Every corrupted tile escalated, and nothing else did.
        id_of = {tile_key(t): t.tile_id for t in plan.tiles}
        corrupted = {id_of[k] for k in fault_plan.corrupted_tile_keys()}
        assert set(report.escalations) == corrupted
        assert report.health_failures == len(corrupted)

        # The storm was non-trivial for this matrix cell.
        assert fault_plan.events, "storm injected nothing — rates too low"

        # Final profile is sane, FP16-error-close to the fault-free run,
        # and — because escalated tiles compute *wider* than FP16 — no
        # less accurate against the FP64 ground truth than fault-free
        # FP16 itself.
        clean = compute_multi_tile(_series(), None, 16, spec.config)
        exact = compute_multi_tile(
            _series(), None, 16, spec.config.with_(mode="FP64")
        )
        profile = accumulator.host_profile().astype(np.float64)
        assert np.isfinite(profile).all()
        assert (accumulator.host_index() >= 0).all()
        diff = np.abs(profile - clean.profile.astype(np.float64))
        assert float(diff.max()) < 0.5  # FP16 streaming-error scale
        err_storm = np.abs(profile - exact.profile).max()
        err_clean = np.abs(
            clean.profile.astype(np.float64) - exact.profile
        ).max()
        assert err_storm <= err_clean + 0.05

    def test_storm_is_placement_invariant_in_events(
        self, seed, placement_kind, spec_and_plan
    ):
        # The injected corruption set depends only on (seed, geometry) —
        # dispatch order and placement must not change which tiles the
        # storm hits (sick GPUs aside, which are placement-coupled).
        spec, plan = spec_and_plan
        fault_plan = FaultPlan(seed=seed, corrupt_rate=0.4)
        self._run(spec, plan, fault_plan, placement_kind)
        expected = {
            tile_key(t)
            for t in plan.tiles
            if FaultPlan(seed=seed, corrupt_rate=0.4)._draw("corrupt", t, 0) < 0.4
        }
        assert fault_plan.corrupted_tile_keys() == expected


class TestSickGPU:
    def test_round_robin_routes_around_sick_device(self):
        config = RunConfig(mode="FP32", n_tiles=9, n_gpus=3)
        series = _series()
        fault_plan = FaultPlan(seed=1, sick_gpus=(2,))
        result = compute_multi_tile(
            series, None, 16, config,
            health=HealthPolicy(), fault_plan=fault_plan, max_retries=3,
        )
        assert result.n_tiles == 9
        assert np.isfinite(result.profile).all()
        assert fault_plan.event_counts().get("sick", 0) > 0

    def test_all_gpus_sick_exhausts_with_device_trail(self):
        from repro.engine import TileRetryExhaustedError

        config = RunConfig(mode="FP32", n_tiles=4, n_gpus=2)
        series = _series()
        fault_plan = FaultPlan(seed=1, sick_gpus=(0, 1))
        with pytest.raises(TileRetryExhaustedError, match="GPUs tried"):
            compute_multi_tile(
                series, None, 16, config,
                health=HealthPolicy(), fault_plan=fault_plan, max_retries=2,
            )


class TestOOMSplit:
    def test_injected_oom_splits_tile_and_completes(self):
        config = RunConfig(mode="FP32", n_tiles=4, n_gpus=2)
        series = _series()
        fault_plan = FaultPlan(seed=9, oom_rate=0.4)
        clean = compute_multi_tile(series, None, 16, config)
        result = compute_multi_tile(
            series, None, 16, config,
            fault_plan=fault_plan, oom_split=True,
        )
        assert fault_plan.event_counts().get("oom", 0) > 0
        assert result.split_tiles
        # Children re-cover the parent exactly: same profile bits as the
        # unsplit run (same mode, same per-tile restart points per child
        # -- the merge is associative over finer tiles in FP32? No:
        # finer tiles restart the precalc, so only closeness holds).
        assert np.allclose(
            result.profile, clean.profile, atol=1e-3
        )
        assert result.n_tiles > clean.n_tiles

    def test_real_memory_pressure_splits_until_tiles_fit(self):
        # Not injected: a genuinely tiny device OOMs on the planned tile
        # and the engine splits until the children actually fit.
        from dataclasses import replace

        from repro.gpu.device import A100

        tiny = replace(A100, mem_capacity=48 * 1024)
        config = RunConfig(mode="FP32", device=tiny, n_tiles=1)
        series = _series(n=500)
        reference = compute_multi_tile(
            series, None, 16, RunConfig(mode="FP32", n_tiles=1)
        )
        with pytest.raises(DeviceOutOfMemoryError):
            compute_multi_tile(series, None, 16, config)
        result = compute_multi_tile(series, None, 16, config, oom_split=True)
        assert result.split_tiles
        assert result.n_tiles > 1
        assert np.allclose(result.profile, reference.profile, atol=1e-3)

    def test_oom_without_split_propagates(self):
        config = RunConfig(mode="FP32", n_tiles=4, n_gpus=2)
        series = _series()
        fault_plan = FaultPlan(seed=9, oom_rate=1.0)
        with pytest.raises(DeviceOutOfMemoryError):
            compute_multi_tile(series, None, 16, config, fault_plan=fault_plan)
