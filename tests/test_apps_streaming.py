"""Unit tests for the streaming matrix profile."""

import numpy as np
import pytest

from repro import matrix_profile
from repro.apps.streaming import StreamingMatrixProfile
from repro.core.config import RunConfig


class TestStreaming:
    def test_matches_batch_fp64(self, rng):
        ref = rng.normal(size=(200, 3)).cumsum(axis=0)
        qry = rng.normal(size=(150, 3)).cumsum(axis=0)
        m = 16
        batch = matrix_profile(ref, qry, m=m, mode="FP64")

        stream = StreamingMatrixProfile(ref, m, RunConfig(mode="FP64"))
        profiles, indices = stream.extend(qry)
        assert profiles.shape == batch.profile.shape
        np.testing.assert_allclose(profiles, batch.profile, atol=1e-8)
        assert np.mean(indices == batch.index) > 0.999

    def test_incremental_append_protocol(self, rng):
        ref = rng.normal(size=(100, 2))
        stream = StreamingMatrixProfile(ref, 8)
        qry = rng.normal(size=(20, 2))
        outs = [stream.append(row) for row in qry]
        # First m-1 appends produce nothing; the rest produce one row each.
        assert all(o is None for o in outs[:7])
        assert all(o is not None for o in outs[7:])
        assert stream.n_segments == 13

    def test_profile_rows_shape(self, rng):
        ref = rng.normal(size=(80, 4))
        stream = StreamingMatrixProfile(ref, 8)
        for row in rng.normal(size=(8, 4)):
            out = stream.append(row)
        profile_row, index_row = out
        assert profile_row.shape == (4,)
        assert index_row.shape == (4,)
        assert np.all(index_row >= 0)
        assert np.all(index_row < stream.n_ref_seg)

    def test_motif_detected_live(self, rng):
        m = 16
        ref = rng.normal(size=(200, 1))
        wave = 5 * np.sin(np.linspace(0, 6.28, m))
        ref[60 : 60 + m, 0] += wave
        stream = StreamingMatrixProfile(ref, m)
        # Feed noise, then the motif: the motif segment must match pos 60
        # with a small distance.
        for row in rng.normal(size=(40, 1)):
            stream.append(row)
        baseline_dist = stream.profiles[-1][0]
        for v in wave:
            out = stream.append(np.array([v + 0.01 * rng.normal()]))
        profile_row, index_row = out
        assert abs(int(index_row[0]) - 60) <= 1
        assert profile_row[0] < baseline_dist

    def test_fp16_mode_runs(self, rng):
        ref = rng.uniform(0, 1, size=(120, 2))
        stream = StreamingMatrixProfile(ref, 8, RunConfig(mode="FP16"))
        profiles, indices = stream.extend(rng.uniform(0, 1, size=(30, 2)))
        assert profiles.shape == (23, 2)
        assert np.all(np.isfinite(profiles))

    def test_validation(self, rng):
        ref = rng.normal(size=(50, 2))
        with pytest.raises(ValueError):
            StreamingMatrixProfile(ref, 1)
        stream = StreamingMatrixProfile(ref, 8)
        with pytest.raises(ValueError):
            stream.append(np.zeros(3))

    def test_empty_result(self, rng):
        stream = StreamingMatrixProfile(rng.normal(size=(50, 2)), 8)
        profiles, indices = stream.result()
        assert profiles.shape == (0, 2)

    @pytest.mark.parametrize("mode", ["FP64", "FP32", "Mixed", "FP16", "FP16C"])
    def test_extend_bitwise_matches_appends(self, rng, mode):
        """The batched extend path must equal per-sample appends bit for
        bit — including extends that straddle the window boundary."""
        ref = rng.normal(size=(120, 3)).cumsum(axis=0)
        qry = rng.normal(size=(90, 3)).cumsum(axis=0)
        one = StreamingMatrixProfile(ref, 12, RunConfig(mode=mode))
        many = StreamingMatrixProfile(ref, 12, RunConfig(mode=mode))
        for row in qry:
            one.append(row)
        off = 0
        for step in (5, 1, 40, 2, 42):
            many.extend(qry[off : off + step])
            off += step
        p1, i1 = one.result()
        p2, i2 = many.result()
        np.testing.assert_array_equal(
            np.asarray(p1).view(np.uint8), np.asarray(p2).view(np.uint8)
        )
        np.testing.assert_array_equal(i1, i2)

    def test_non_finite_rejected_with_stream_offset(self, rng):
        ref = rng.normal(size=(60, 2))
        stream = StreamingMatrixProfile(ref, 8)
        stream.extend(rng.normal(size=(10, 2)))
        with pytest.raises(ValueError, match="dimension 0, stream offsets 10..10"):
            stream.append(np.array([np.nan, 1.0]))
        bad = rng.normal(size=(6, 2))
        bad[4, 1] = np.inf
        with pytest.raises(ValueError, match="dimension 1, stream offsets 14..14"):
            stream.extend(bad)
        # Rejected batches are not ingested; the stream continues cleanly.
        assert stream.samples_seen == 10
        assert stream.n_segments == 3
