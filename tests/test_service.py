"""Tests for the repro.service job service subsystem."""

from dataclasses import replace

import numpy as np
import pytest

from repro import matrix_profile
from repro.core.config import RunConfig
from repro.core.result import MatrixProfileResult
from repro.gpu.device import A100
from repro.precision.modes import PrecisionMode
from repro.service import (
    DOWNGRADE_LADDER,
    AdmissionController,
    JobRequest,
    JobStatus,
    LoadEstimator,
    MatrixProfileService,
    ResultCache,
    TileRetryExhaustedError,
    TransientDeviceError,
    cache_key,
    series_digest,
)


class FakeClock:
    """Deterministic clock: advances by ``step`` on every read."""

    def __init__(self, step=0.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


@pytest.fixture
def series(rng):
    return rng.normal(size=(120, 2)).cumsum(axis=0)


def quiet_estimator():
    """A non-learning estimator that never triggers downgrades."""
    return LoadEstimator("A100", seconds_per_cell=1e-12, learn=False)


def make_service(**kw):
    kw.setdefault("n_gpus", 2)
    kw.setdefault("n_workers", 1)
    kw.setdefault("estimator", quiet_estimator())
    return MatrixProfileService(**kw)


class TestJobModel:
    def test_series_digest_content_addressed(self, rng):
        a = rng.normal(size=(50, 2))
        assert series_digest(a) == series_digest(a.copy())
        assert series_digest(a) != series_digest(a + 1e-9)
        assert series_digest(a) != series_digest(a.astype(np.float32))

    def test_request_validation(self, series):
        with pytest.raises(ValueError, match="deadline"):
            JobRequest(reference=series, m=8, deadline=0.0)
        with pytest.raises(ValueError, match="m must be"):
            JobRequest(reference=series, m=1)

    def test_request_parses_mode_string(self, series):
        req = JobRequest(reference=series, m=8, mode="fp16c")
        assert req.mode is PrecisionMode.FP16C


class TestResultCache:
    def _result(self, n=10, d=2):
        return MatrixProfileResult(
            profile=np.zeros((n, d)),
            index=np.zeros((n, d), dtype=np.int64),
            mode=PrecisionMode.FP64,
            m=8,
        )

    def test_hit_miss_counters(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", self._result())
        assert cache.get("k") is not None
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_lru_eviction_by_entries(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", self._result())
        cache.put("b", self._result())
        cache.get("a")  # refresh a; b is now least recent
        cache.put("c", self._result())
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_eviction_by_bytes(self):
        one = self._result(n=100)
        per_entry = one.profile.nbytes + one.index.nbytes
        cache = ResultCache(max_entries=100, max_bytes=2 * per_entry)
        for key in "abc":
            cache.put(key, self._result(n=100))
        assert len(cache) == 2
        assert cache.payload_bytes <= 2 * per_entry

    def test_cache_key_separates_configs(self):
        digest = "d" * 16
        base = RunConfig(mode="FP16", n_tiles=4)
        assert cache_key(digest, None, 8, base) != cache_key(
            digest, None, 8, base.with_(n_tiles=8)
        )
        assert cache_key(digest, None, 8, base) != cache_key(
            digest, None, 16, base
        )
        assert cache_key(digest, None, 8, base) != cache_key(
            digest, "q" * 16, 8, base
        )


class TestAdmission:
    def _controller(self, parallelism=1):
        # 1e-3 s/cell: a 105-segment self-join (~22k cells) estimates ~22 s.
        est = LoadEstimator("A100", seconds_per_cell=1e-3, learn=False)
        return AdmissionController(est, parallelism=parallelism)

    def test_no_deadline_never_downgrades(self):
        ctl = self._controller()
        for job_id in range(5):
            decision = ctl.admit(job_id, 100, 100, 4, "FP64", slack=None)
            assert decision.effective is PrecisionMode.FP64
            assert not decision.degraded

    def test_fits_at_requested_mode(self):
        ctl = self._controller()
        decision = ctl.admit(1, 100, 100, 4, "FP64", slack=1e9)
        assert decision.effective is PrecisionMode.FP64

    def test_backlog_walks_down_the_ladder(self):
        ctl = self._controller()
        # FP64 estimate is 40 s/job: the first job fits a 60 s budget, the
        # following ones see growing backlog and shed precision in order.
        seen = []
        for job_id in range(6):
            decision = ctl.admit(job_id, 100, 100, 4, "FP64", slack=60.0)
            seen.append(decision.effective)
        assert seen[0] is PrecisionMode.FP64
        assert seen[-1] is PrecisionMode.FP16
        positions = [DOWNGRADE_LADDER.index(mode) for mode in seen]
        assert positions == sorted(positions)  # monotone degradation

    def test_overload_admits_at_fastest_rung(self):
        ctl = self._controller()
        for job_id in range(20):
            decision = ctl.admit(job_id, 100, 100, 4, "FP64", slack=1.0)
        assert decision.effective is PrecisionMode.FP16
        assert decision.downgrade_steps == 3

    def test_fp16c_kept_when_unloaded_and_shed_to_fp16(self):
        ctl = self._controller()
        first = ctl.admit(1, 100, 100, 4, "FP16C", slack=1e9)
        assert first.effective is PrecisionMode.FP16C
        for job_id in range(2, 20):
            last = ctl.admit(job_id, 100, 100, 4, "FP16C", slack=1.0)
        assert last.effective is PrecisionMode.FP16
        assert last.downgrade_steps == 1

    def test_complete_releases_backlog(self):
        ctl = self._controller()
        ctl.admit(1, 100, 100, 4, "FP64", slack=None)
        assert ctl.backlog_seconds() > 0
        ctl.complete(1)
        assert ctl.backlog_seconds() == 0
        assert ctl.queue_depth == 0

    def test_parallelism_divides_backlog(self):
        serial = self._controller(parallelism=1)
        wide = self._controller(parallelism=8)
        for ctl in (serial, wide):
            for job_id in range(4):
                ctl.admit(job_id, 100, 100, 4, "FP64", slack=None)
        # Backlog is 160 s; one FP64 job estimates 40 s.  Serial sees
        # 160 + 40 > 70 (and even FP16 cannot fit); eight-way sees
        # 160/8 + 40 = 60 <= 70.
        slack = 70.0
        assert serial.admit(99, 100, 100, 4, "FP64", slack).degraded
        assert not wide.admit(99, 100, 100, 4, "FP64", slack).degraded

    def test_mode_factors_reward_downgrades(self):
        est = LoadEstimator("A100")
        factors = [est.mode_factor(mode) for mode in DOWNGRADE_LADDER]
        assert factors[0] == 1.0
        assert all(b < a for a, b in zip(factors, factors[1:])), factors

    def test_estimator_learning_tracks_observations(self):
        est = LoadEstimator("A100", seconds_per_cell=1.0, learn=True, ema_weight=0.5)
        est.observe(10, 10, 1, "FP64", elapsed=1.0)  # 0.01 s/cell observed
        assert est.seconds_per_cell < 1.0


class TestServiceEndToEnd:
    def test_matches_library_compute_path(self, series):
        service = make_service()
        outcome = service.submit_and_wait(
            JobRequest(reference=series, m=8, mode="FP32")
        )
        assert outcome.status is JobStatus.COMPLETED
        expected = matrix_profile(
            series, m=8, mode="FP32", n_tiles=outcome.result.n_tiles
        )
        np.testing.assert_allclose(
            outcome.result.profile, expected.profile, atol=1e-5
        )
        np.testing.assert_array_equal(outcome.result.index, expected.index)

    def test_repeat_submission_hits_cache(self, series):
        service = make_service()
        request = JobRequest(reference=series, m=8)
        first = service.submit_and_wait(request)
        second = service.submit_and_wait(JobRequest(reference=series, m=8))
        assert not first.cache_hit and second.cache_hit
        assert second.result is first.result
        assert service.cache.stats()["hits"] == 1

    def test_different_mode_misses_cache(self, series):
        service = make_service()
        service.submit_and_wait(JobRequest(reference=series, m=8, mode="FP64"))
        other = service.submit_and_wait(
            JobRequest(reference=series, m=8, mode="FP16")
        )
        assert not other.cache_hit

    def test_cache_disabled(self, series):
        service = make_service(use_cache=False)
        service.submit_and_wait(JobRequest(reference=series, m=8))
        outcome = service.submit_and_wait(JobRequest(reference=series, m=8))
        assert service.cache is None and not outcome.cache_hit

    def test_priority_orders_processing(self, series):
        service = make_service()
        low = service.submit(JobRequest(reference=series, m=8, priority=5))
        high = service.submit(
            JobRequest(reference=series[:100], m=8, priority=-5)
        )
        order = []
        original = service._execute

        def spy(job, started):
            order.append(job.job_id)
            return original(job, started)

        service._execute = spy
        service.process_all()
        assert order == [high.job_id, low.job_id]
        assert low.done and high.done

    def test_ab_join(self, rng):
        ref = rng.normal(size=(100, 3)).cumsum(axis=0)
        qry = rng.normal(size=(80, 3)).cumsum(axis=0)
        service = make_service()
        outcome = service.submit_and_wait(JobRequest(reference=ref, query=qry, m=8))
        assert outcome.result.profile.shape == (73, 3)

    def test_dimension_mismatch_rejected(self, rng):
        service = make_service()
        with pytest.raises(ValueError, match="d="):
            service.submit(
                JobRequest(
                    reference=rng.normal(size=(50, 2)),
                    query=rng.normal(size=(50, 3)),
                    m=8,
                )
            )

    def test_window_too_long_rejected(self, series):
        service = make_service()
        with pytest.raises(ValueError, match="too long"):
            service.submit(JobRequest(reference=series[:10], m=64))

    def test_worker_threads_drain_queue(self, series):
        service = make_service(n_workers=2)
        jobs = [
            service.submit(JobRequest(reference=series[: 100 + 5 * i], m=8))
            for i in range(6)
        ]
        with service:
            pass  # __exit__ drains then stops the workers
        assert all(job.done for job in jobs)
        assert all(job.outcome.status is JobStatus.COMPLETED for job in jobs)
        snap = service.metrics.snapshot()
        assert snap.jobs_completed == 6
        assert snap.jobs_in_flight == 0


class TestFailureHandling:
    def test_transient_failure_retried_on_other_gpu(self, series):
        attempts = []

        def injector(label, tile, gpu_id, attempt):
            attempts.append((tile.tile_id, gpu_id, attempt))
            if attempt == 0 and tile.tile_id == 0:
                raise TransientDeviceError(f"injected on gpu {gpu_id}")

        service = make_service(failure_injector=injector)
        outcome = service.submit_and_wait(
            JobRequest(reference=series, m=8, n_tiles=4)
        )
        assert outcome.status is JobStatus.COMPLETED
        assert outcome.tile_retries == 1
        tile0 = [(gpu, att) for tid, gpu, att in attempts if tid == 0]
        assert len(tile0) == 2
        assert tile0[0][0] != tile0[1][0]  # retried on a different device
        # The retry must not corrupt the numerics.
        expected = matrix_profile(series, m=8, n_tiles=outcome.result.n_tiles)
        np.testing.assert_allclose(outcome.result.profile, expected.profile)

    def test_retries_exhausted_fails_job(self, series):
        def always_fail(label, tile, gpu_id, attempt):
            raise TransientDeviceError("persistent fault")

        service = make_service(failure_injector=always_fail, max_retries=2)
        outcome = service.submit_and_wait(JobRequest(reference=series, m=8))
        assert outcome.status is JobStatus.FAILED
        assert outcome.result is None
        assert "TileRetryExhaustedError" in outcome.error
        assert service.metrics.snapshot().jobs_failed == 1

    def test_failed_job_releases_backlog(self, series):
        def always_fail(label, tile, gpu_id, attempt):
            raise TransientDeviceError("persistent fault")

        service = make_service(failure_injector=always_fail)
        service.submit_and_wait(JobRequest(reference=series, m=8))
        assert service.admission.queue_depth == 0

    def test_retry_exhausted_error_attributes(self):
        err = TileRetryExhaustedError(3, 2, TransientDeviceError("x"))
        assert err.tile_id == 3 and err.attempts == 2
        assert "tile 3" in str(err)

    def test_oom_triggers_replan_with_finer_tiling(self, rng):
        tiny = replace(A100, name="A100", mem_capacity=64 * 1024)
        service = make_service(device=tiny, n_gpus=1)
        # Disable the proactive planner so the job starts at one tile and
        # must recover through the reactive OOM -> re-tile loop.
        service._plan_tiles = lambda job, config: job.request.n_tiles or 1
        outcome = service.submit_and_wait(
            JobRequest(reference=rng.normal(size=(900, 4)), m=32)
        )
        assert outcome.status is JobStatus.COMPLETED
        assert outcome.result.n_tiles >= 16  # 1 -> 4 -> 16 at least
        assert np.all(np.isfinite(outcome.result.profile))

    def test_planner_avoids_oom_proactively(self, rng):
        tiny = replace(A100, name="A100", mem_capacity=64 * 1024)
        service = make_service(device=tiny, n_gpus=1)
        outcome = service.submit_and_wait(
            JobRequest(reference=rng.normal(size=(900, 4)), m=32)
        )
        assert outcome.status is JobStatus.COMPLETED
        assert outcome.result.n_tiles > 1


class TestDeadlineExpiry:
    def test_expired_deadline_yields_partial_upper_bound(self, series):
        # A frozen clock that only the per-tile injector advances: the
        # deadline expires after exactly three of the four tiles.
        clock = FakeClock(step=0.0)

        def tick(label, tile, gpu_id, attempt):
            clock.t += 1.0

        service = make_service(clock=clock, cache=None, failure_injector=tick)
        outcome = service.submit_and_wait(
            JobRequest(reference=series, m=8, deadline=2.5, n_tiles=4)
        )
        assert outcome.status is JobStatus.PARTIAL
        assert outcome.deadline_missed
        assert 0 < outcome.tiles_completed < outcome.tiles_total
        state = outcome.partial_state
        assert state is not None and 0 < state.fraction < 1
        # Partial profile is a valid upper bound on the true profile.
        true = matrix_profile(series, m=8, n_tiles=4)
        assert np.all(outcome.result.profile >= true.profile - 1e-9)
        snap = service.metrics.snapshot()
        assert snap.jobs_partial == 1 and snap.deadline_misses == 1

    def test_partial_results_not_cached(self, series):
        clock = FakeClock(step=0.0)

        def tick(label, tile, gpu_id, attempt):
            clock.t += 1.0

        service = make_service(clock=clock, failure_injector=tick)
        outcome = service.submit_and_wait(
            JobRequest(reference=series, m=8, deadline=2.5, n_tiles=4)
        )
        assert outcome.status is JobStatus.PARTIAL
        assert len(service.cache) == 0

    def test_generous_deadline_completes(self, series):
        service = make_service()
        outcome = service.submit_and_wait(
            JobRequest(reference=series, m=8, deadline=1e6, n_tiles=4)
        )
        assert outcome.status is JobStatus.COMPLETED
        assert not outcome.deadline_missed


class TestServiceDowngrades:
    def test_burst_downgrades_instead_of_dropping(self, series):
        # A deliberately pessimistic, non-learning estimator: every job
        # estimates far beyond the deadline budget once a backlog exists,
        # so the controller sheds precision; the real compute is fast and
        # every job still completes in full.
        estimator = LoadEstimator("A100", seconds_per_cell=1e-4, learn=False)
        service = make_service(estimator=estimator, use_cache=False)
        jobs = [
            service.submit(JobRequest(reference=series, m=8, deadline=10.0))
            for _ in range(8)
        ]
        service.process_all()
        outcomes = [job.outcome for job in jobs]
        assert all(o.status is JobStatus.COMPLETED for o in outcomes)
        assert outcomes[0].effective_mode is PrecisionMode.FP64
        assert any(o.degraded for o in outcomes)
        snap = service.metrics.snapshot()
        assert snap.precision_downgrades > 0
        assert snap.downgraded_jobs > 0
        assert snap.jobs_failed == 0


class TestServiceFaultTolerance:
    def test_corruption_escalates_and_reports(self, series):
        from repro.engine.faults import FaultPlan

        plan = FaultPlan(seed=11, corrupt_rate=1.0, corrupt_count=2)
        service = make_service(fault_plan=plan, use_cache=False)
        outcome = service.submit_and_wait(
            JobRequest(reference=series, m=8, mode="FP16", n_tiles=4)
        )
        assert outcome.status is JobStatus.COMPLETED
        assert outcome.tile_escalations == outcome.result.n_tiles
        assert set(outcome.result.escalations.values()) == {PrecisionMode.MIXED}
        assert np.isfinite(outcome.result.profile).all()
        snap = service.metrics.snapshot()
        assert snap.tile_escalations == outcome.tile_escalations
        assert snap.jobs_failed == 0

    def test_health_checks_disabled_lets_corruption_poison_merge(self, series):
        from repro.engine.faults import FaultPlan

        # Negative corrupted values win every strict-< merge: without
        # health checks the poisoned profile completes "successfully".
        plan = FaultPlan(seed=11, corrupt_rate=1.0)
        service = make_service(
            fault_plan=plan, health_checks=False, use_cache=False
        )
        outcome = service.submit_and_wait(
            JobRequest(reference=series, m=8, mode="FP16", n_tiles=4)
        )
        assert outcome.status is JobStatus.COMPLETED
        assert outcome.tile_escalations == 0
        assert (outcome.result.profile < 0).any()

    def test_injected_oom_splits_tiles_when_enabled(self, series):
        from repro.engine.faults import FaultPlan

        plan = FaultPlan(seed=9, oom_rate=1.0)
        service = make_service(
            fault_plan=plan, oom_tile_split=True, use_cache=False
        )
        outcome = service.submit_and_wait(
            JobRequest(reference=series, m=8, n_tiles=4)
        )
        assert outcome.status is JobStatus.COMPLETED
        assert outcome.tile_splits > 0
        assert plan.event_counts().get("oom", 0) > 0
        snap = service.metrics.snapshot()
        assert snap.tile_splits == outcome.tile_splits
        expected = matrix_profile(series, m=8, n_tiles=4)
        np.testing.assert_allclose(
            outcome.result.profile, expected.profile, atol=1e-3
        )


class TestMetricsAndReporting:
    def test_snapshot_to_rows_renders(self, series):
        from repro.reporting import render_service_metrics

        service = make_service()
        service.submit_and_wait(JobRequest(reference=series, m=8))
        service.submit_and_wait(JobRequest(reference=series, m=8))
        text = render_service_metrics(service.metrics.snapshot())
        assert "cache hit rate" in text and "50.0%" in text
        assert "jobs completed" in text

    def test_percentiles(self):
        from repro.service import percentile

        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 100) == 100.0
        assert percentile([], 50) == 0.0
        with pytest.raises(ValueError):
            percentile(values, 101)

    def test_latency_percentiles_populated(self, series):
        service = make_service()
        for _ in range(3):
            service.submit_and_wait(JobRequest(reference=series, m=8))
        snap = service.metrics.snapshot()
        assert 0 < snap.latency_p50 <= snap.latency_p95
        assert snap.jobs_per_second > 0


class TestServiceCLI:
    def test_serve_command(self, capsys):
        from repro.cli import main

        code = main([
            "serve", "--jobs", "4", "-n", "96", "-m", "8", "-d", "2",
            "--distinct", "2", "--workers", "1", "--show-ladder",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "service metrics" in out
        assert "downgrade ladder" in out
        assert "job 4" in out or "completed" in out

    def test_submit_command(self, tmp_path, capsys, rng):
        from repro.cli import main

        csv = tmp_path / "series.csv"
        np.savetxt(csv, rng.normal(size=(80, 2)).cumsum(axis=0), delimiter=",")
        code = main(["submit", str(csv), "-m", "8", "--mode", "FP32"])
        out = capsys.readouterr().out
        assert code == 0
        assert "status: completed" in out
        assert "ran FP32" in out
