"""Unit tests for the multi-tile / multi-GPU algorithm (Pseudocode 2)."""

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.multi_tile import compute_multi_tile, model_multi_tile
from repro.core.single_tile import compute_single_tile


class TestTiledEqualsSingleInFP64:
    @pytest.mark.parametrize("n_tiles", [2, 4, 9, 16])
    def test_ab_join(self, small_pair, n_tiles):
        ref, qry, m = small_pair
        single = compute_single_tile(ref, qry, m, RunConfig(mode="FP64"))
        tiled = compute_multi_tile(
            ref, qry, m, RunConfig(mode="FP64", n_tiles=n_tiles)
        )
        np.testing.assert_allclose(tiled.profile, single.profile, atol=1e-10)
        np.testing.assert_array_equal(tiled.index, single.index)

    @pytest.mark.parametrize("n_gpus", [1, 2, 3, 4])
    def test_gpu_count_does_not_change_results(self, small_pair, n_gpus):
        ref, qry, m = small_pair
        base = compute_multi_tile(ref, qry, m, RunConfig(mode="FP64", n_tiles=8))
        multi = compute_multi_tile(
            ref, qry, m, RunConfig(mode="FP64", n_tiles=8, n_gpus=n_gpus)
        )
        np.testing.assert_array_equal(multi.profile, base.profile)
        np.testing.assert_array_equal(multi.index, base.index)

    def test_self_join_tiled(self, small_pair):
        ref, _, m = small_pair
        single = compute_single_tile(ref, None, m, RunConfig(mode="FP64"))
        tiled = compute_multi_tile(ref, None, m, RunConfig(mode="FP64", n_tiles=4))
        np.testing.assert_allclose(tiled.profile, single.profile, atol=1e-10)
        np.testing.assert_array_equal(tiled.index, single.index)


class TestTilingBoundsError:
    def test_more_tiles_do_not_hurt_fp16_much(self, rng):
        # Smaller tiles restart the recurrence more often: the FP16 profile
        # error vs FP64 must not grow with the tile count (Fig. 7 trend).
        t = np.arange(1000)
        ref = (np.sin(2 * np.pi * t / 17)[:, None] + 0.2 * rng.normal(size=(1000, 2)))
        qry = (np.sin(2 * np.pi * t[:900] / 17)[:, None] + 0.2 * rng.normal(size=(900, 2)))
        m = 16
        base = compute_multi_tile(ref, qry, m, RunConfig(mode="FP64", n_tiles=1))
        errs = []
        for n_tiles in (1, 16, 64):
            r = compute_multi_tile(ref, qry, m, RunConfig(mode="FP16", n_tiles=n_tiles))
            errs.append(np.mean(np.abs(r.profile - base.profile)))
        assert errs[-1] <= errs[0] * 1.05

    def test_merge_time_grows_with_tiles(self, small_pair):
        ref, qry, m = small_pair
        few = compute_multi_tile(ref, qry, m, RunConfig(n_tiles=2))
        many = compute_multi_tile(ref, qry, m, RunConfig(n_tiles=16))
        assert many.merge_time > few.merge_time


class TestMultiGpuTimeline:
    def test_tiles_distributed_across_devices(self, small_pair):
        ref, qry, m = small_pair
        result = compute_multi_tile(ref, qry, m, RunConfig(n_tiles=8, n_gpus=4))
        devices = {op.device_index for op in result.timeline.ops}
        assert devices == {0, 1, 2, 3}

    def test_scaling_reduces_makespan(self, small_pair):
        ref, qry, m = small_pair
        t1 = compute_multi_tile(ref, qry, m, RunConfig(n_tiles=8, n_gpus=1))
        t4 = compute_multi_tile(ref, qry, m, RunConfig(n_tiles=8, n_gpus=4))
        assert t4.timeline.makespan < t1.timeline.makespan

    def test_costs_aggregated_over_tiles(self, small_pair):
        ref, qry, m = small_pair
        single = compute_single_tile(ref, qry, m, RunConfig())
        tiled = compute_multi_tile(ref, qry, m, RunConfig(n_tiles=4))
        # Distance traffic is identical in total (same matrix cells).
        assert tiled.costs["dist_calc"].bytes_dram == pytest.approx(
            single.costs["dist_calc"].bytes_dram, rel=0.01
        )
        # Precalculation repeats per tile => strictly more traffic.
        assert (
            tiled.costs["precalculation"].bytes_dram
            > single.costs["precalculation"].bytes_dram
        )


class TestModelMultiTile:
    def test_modeled_time_positive_and_scales(self):
        t1 = model_multi_tile(4096, 16, 64, RunConfig(n_tiles=4, n_gpus=1))
        t4 = model_multi_tile(4096, 16, 64, RunConfig(n_tiles=4, n_gpus=4))
        assert 0 < t4.timeline.makespan < t1.timeline.makespan

    def test_empty_profile(self):
        r = model_multi_tile(1024, 4, 16, RunConfig(n_tiles=2))
        assert r.profile.size == 0
        assert r.n_tiles == 2

    def test_parallel_efficiency_above_90_percent_when_divisible(self):
        # The Fig. 5 headline: >90% efficiency at 1/2/4/8 GPUs, 16 tiles,
        # at paper scale (small problems are merge-bound, Amdahl).
        base = model_multi_tile(2**16, 64, 64, RunConfig(device="V100", n_tiles=16))
        for g in (2, 4, 8):
            r = model_multi_tile(
                2**16, 64, 64, RunConfig(device="V100", n_tiles=16, n_gpus=g)
            )
            eff = base.modeled_time / (g * r.modeled_time)
            assert eff > 0.85, f"{g} GPUs: efficiency {eff:.2f}"

    def test_odd_gpu_counts_less_efficient(self):
        r4 = model_multi_tile(2**16, 64, 64, RunConfig(device="V100", n_tiles=16, n_gpus=4))
        r3 = model_multi_tile(2**16, 64, 64, RunConfig(device="V100", n_tiles=16, n_gpus=3))
        base = model_multi_tile(2**16, 64, 64, RunConfig(device="V100", n_tiles=16))
        eff4 = base.modeled_time / (4 * r4.modeled_time)
        eff3 = base.modeled_time / (3 * r3.modeled_time)
        assert eff3 < eff4
