"""Unit tests for the multi-tile / multi-GPU algorithm (Pseudocode 2)."""

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.multi_tile import compute_multi_tile, merge_tile_outputs, model_multi_tile
from repro.core.single_tile import compute_single_tile
from repro.core.tiling import Tile


class TestTiledEqualsSingleInFP64:
    @pytest.mark.parametrize("n_tiles", [2, 4, 9, 16])
    def test_ab_join(self, small_pair, n_tiles):
        ref, qry, m = small_pair
        single = compute_single_tile(ref, qry, m, RunConfig(mode="FP64"))
        tiled = compute_multi_tile(
            ref, qry, m, RunConfig(mode="FP64", n_tiles=n_tiles)
        )
        np.testing.assert_allclose(tiled.profile, single.profile, atol=1e-10)
        np.testing.assert_array_equal(tiled.index, single.index)

    @pytest.mark.parametrize("n_gpus", [1, 2, 3, 4])
    def test_gpu_count_does_not_change_results(self, small_pair, n_gpus):
        ref, qry, m = small_pair
        base = compute_multi_tile(ref, qry, m, RunConfig(mode="FP64", n_tiles=8))
        multi = compute_multi_tile(
            ref, qry, m, RunConfig(mode="FP64", n_tiles=8, n_gpus=n_gpus)
        )
        np.testing.assert_array_equal(multi.profile, base.profile)
        np.testing.assert_array_equal(multi.index, base.index)

    def test_self_join_tiled(self, small_pair):
        ref, _, m = small_pair
        single = compute_single_tile(ref, None, m, RunConfig(mode="FP64"))
        tiled = compute_multi_tile(ref, None, m, RunConfig(mode="FP64", n_tiles=4))
        np.testing.assert_allclose(tiled.profile, single.profile, atol=1e-10)
        np.testing.assert_array_equal(tiled.index, single.index)


class TestMergeTieBreaking:
    """Regression: merge_tile_outputs uses strict ``<``, so on exactly
    tied distances the earliest-merged tile — the lowest reference rows,
    in row-major tile order — keeps the index."""

    @staticmethod
    def _tile(tile_id, row_start, row_stop, col_start, col_stop):
        return Tile(
            tile_id=tile_id,
            row_start=row_start, row_stop=row_stop,
            col_start=col_start, col_stop=col_stop,
        )

    def test_tied_distance_keeps_earliest_reference_row(self):
        d, n_q = 2, 6
        profile = np.full((d, n_q), np.inf)
        index = np.full((d, n_q), -1, dtype=np.int64)
        # Two row-bands of the same query columns, merged in row-major
        # order, reporting *identical* distances for every column.
        lo = self._tile(0, 0, 4, 0, n_q)
        hi = self._tile(1, 4, 8, 0, n_q)
        tied = np.full((d, n_q), 1.25)
        lo_idx = np.tile(np.arange(n_q, dtype=np.int64), (d, 1))  # rows 0..3
        hi_idx = lo_idx + 4  # rows 4..7
        merge_tile_outputs(profile, index, lo, tied, lo_idx)
        merge_tile_outputs(profile, index, hi, tied.copy(), hi_idx)
        np.testing.assert_array_equal(profile, tied)
        # The later (higher-row) tile must NOT have overwritten the tie.
        np.testing.assert_array_equal(index, lo_idx)

    def test_strictly_better_distance_does_overwrite(self):
        d, n_q = 1, 4
        profile = np.full((d, n_q), 2.0)
        index = np.zeros((d, n_q), dtype=np.int64)
        tile = self._tile(1, 4, 8, 0, n_q)
        better = np.full((d, n_q), 1.0)
        new_idx = np.full((d, n_q), 7, dtype=np.int64)
        merge_tile_outputs(profile, index, tile, better, new_idx)
        np.testing.assert_array_equal(profile, better)
        np.testing.assert_array_equal(index, new_idx)

    def test_merge_only_touches_tile_columns(self):
        d, n_q = 1, 8
        profile = np.full((d, n_q), np.inf)
        index = np.full((d, n_q), -1, dtype=np.int64)
        tile = self._tile(0, 0, 4, 2, 5)  # columns [2, 5) only
        merge_tile_outputs(
            profile, index, tile,
            np.zeros((d, 3)), np.ones((d, 3), dtype=np.int64),
        )
        assert np.all(np.isinf(profile[:, :2])) and np.all(np.isinf(profile[:, 5:]))
        np.testing.assert_array_equal(profile[:, 2:5], 0.0)

    def test_three_band_merge_mixes_ties_and_improvements(self):
        # Row bands merged in order report, per column: (tie, tie, better).
        # Only the strictly better band may displace the first one.
        d, n_q = 1, 3
        profile = np.full((d, n_q), np.inf)
        index = np.full((d, n_q), -1, dtype=np.int64)
        bands = [self._tile(k, 4 * k, 4 * (k + 1), 0, n_q) for k in range(3)]
        dists = [
            np.array([[2.0, 2.0, 2.0]]),
            np.array([[2.0, 1.0, 2.0]]),  # improves column 1 only
            np.array([[2.0, 2.0, 0.5]]),  # improves column 2 only
        ]
        for band, dist in zip(bands, dists):
            idx = np.full((d, n_q), band.row_start, dtype=np.int64)
            merge_tile_outputs(profile, index, band, dist, idx)
        np.testing.assert_array_equal(profile, [[2.0, 1.0, 0.5]])
        # Column 0 stayed tied throughout: earliest band (row 0) wins.
        np.testing.assert_array_equal(index, [[0, 4, 8]])


class TestTilingBoundsError:
    def test_more_tiles_do_not_hurt_fp16_much(self, rng):
        # Smaller tiles restart the recurrence more often: the FP16 profile
        # error vs FP64 must not grow with the tile count (Fig. 7 trend).
        t = np.arange(1000)
        ref = (np.sin(2 * np.pi * t / 17)[:, None] + 0.2 * rng.normal(size=(1000, 2)))
        qry = (np.sin(2 * np.pi * t[:900] / 17)[:, None] + 0.2 * rng.normal(size=(900, 2)))
        m = 16
        base = compute_multi_tile(ref, qry, m, RunConfig(mode="FP64", n_tiles=1))
        errs = []
        for n_tiles in (1, 16, 64):
            r = compute_multi_tile(ref, qry, m, RunConfig(mode="FP16", n_tiles=n_tiles))
            errs.append(np.mean(np.abs(r.profile - base.profile)))
        assert errs[-1] <= errs[0] * 1.05

    def test_merge_time_grows_with_tiles(self, small_pair):
        ref, qry, m = small_pair
        few = compute_multi_tile(ref, qry, m, RunConfig(n_tiles=2))
        many = compute_multi_tile(ref, qry, m, RunConfig(n_tiles=16))
        assert many.merge_time > few.merge_time


class TestMultiGpuTimeline:
    def test_tiles_distributed_across_devices(self, small_pair):
        ref, qry, m = small_pair
        result = compute_multi_tile(ref, qry, m, RunConfig(n_tiles=8, n_gpus=4))
        devices = {op.device_index for op in result.timeline.ops}
        assert devices == {0, 1, 2, 3}

    def test_scaling_reduces_makespan(self, small_pair):
        ref, qry, m = small_pair
        t1 = compute_multi_tile(ref, qry, m, RunConfig(n_tiles=8, n_gpus=1))
        t4 = compute_multi_tile(ref, qry, m, RunConfig(n_tiles=8, n_gpus=4))
        assert t4.timeline.makespan < t1.timeline.makespan

    def test_costs_aggregated_over_tiles(self, small_pair):
        ref, qry, m = small_pair
        single = compute_single_tile(ref, qry, m, RunConfig())
        tiled = compute_multi_tile(ref, qry, m, RunConfig(n_tiles=4))
        # Distance traffic is identical in total (same matrix cells).
        assert tiled.costs["dist_calc"].bytes_dram == pytest.approx(
            single.costs["dist_calc"].bytes_dram, rel=0.01
        )
        # Precalculation repeats per tile => strictly more traffic.
        assert (
            tiled.costs["precalculation"].bytes_dram
            > single.costs["precalculation"].bytes_dram
        )


class TestModelMultiTile:
    def test_modeled_time_positive_and_scales(self):
        t1 = model_multi_tile(4096, 16, 64, RunConfig(n_tiles=4, n_gpus=1))
        t4 = model_multi_tile(4096, 16, 64, RunConfig(n_tiles=4, n_gpus=4))
        assert 0 < t4.timeline.makespan < t1.timeline.makespan

    def test_empty_profile(self):
        r = model_multi_tile(1024, 4, 16, RunConfig(n_tiles=2))
        assert r.profile.size == 0
        assert r.n_tiles == 2

    def test_parallel_efficiency_above_90_percent_when_divisible(self):
        # The Fig. 5 headline: >90% efficiency at 1/2/4/8 GPUs, 16 tiles,
        # at paper scale (small problems are merge-bound, Amdahl).
        base = model_multi_tile(2**16, 64, 64, RunConfig(device="V100", n_tiles=16))
        for g in (2, 4, 8):
            r = model_multi_tile(
                2**16, 64, 64, RunConfig(device="V100", n_tiles=16, n_gpus=g)
            )
            eff = base.modeled_time / (g * r.modeled_time)
            assert eff > 0.85, f"{g} GPUs: efficiency {eff:.2f}"

    def test_odd_gpu_counts_less_efficient(self):
        r4 = model_multi_tile(2**16, 64, 64, RunConfig(device="V100", n_tiles=16, n_gpus=4))
        r3 = model_multi_tile(2**16, 64, 64, RunConfig(device="V100", n_tiles=16, n_gpus=3))
        base = model_multi_tile(2**16, 64, 64, RunConfig(device="V100", n_tiles=16))
        eff4 = base.modeled_time / (4 * r4.modeled_time)
        eff3 = base.modeled_time / (3 * r3.modeled_time)
        assert eff3 < eff4
