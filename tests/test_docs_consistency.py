"""Documentation consistency: files referenced by the docs must exist and
the repo layout must match what README/DESIGN describe."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


def _read(name: str) -> str:
    return (ROOT / name).read_text()


class TestReadme:
    def test_example_scripts_exist(self):
        readme = _read("README.md")
        for match in re.finditer(r"`([a-z_]+\.py)`", readme):
            name = match.group(1)
            assert (ROOT / "examples" / name).exists(), name

    def test_declared_packages_exist(self):
        readme = _read("README.md")
        for pkg in re.findall(r"repro\.(\w+) ", readme):
            assert (
                (ROOT / "src" / "repro" / pkg).exists()
                or (ROOT / "src" / "repro" / f"{pkg}.py").exists()
            ), pkg

    def test_required_files_mentioned(self):
        readme = _read("README.md")
        for name in ("DESIGN.md", "EXPERIMENTS.md"):
            assert name in readme


class TestDesign:
    def test_bench_references_exist(self):
        design = _read("DESIGN.md")
        for match in re.finditer(r"benchmarks/(bench_\w+\.py)", design):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), match.group(1)

    def test_module_map_entries_exist(self):
        design = _read("DESIGN.md")
        # Every "name.py" mentioned in the inventory block must exist
        # somewhere under src/repro.
        src = ROOT / "src" / "repro"
        existing = {p.name for p in src.rglob("*.py")}
        for match in re.finditer(r"^\s{4}(\w+\.py)", design, re.MULTILINE):
            assert match.group(1) in existing, match.group(1)

    def test_paper_check_statement_present(self):
        assert "Paper-text check" in _read("DESIGN.md")


class TestExperiments:
    def test_every_section_names_a_bench(self):
        experiments = _read("EXPERIMENTS.md")
        benches = set(re.findall(r"bench_\w+\.py", experiments))
        assert len(benches) >= 12
        for bench in benches:
            assert (ROOT / "benchmarks" / bench).exists(), bench

    def test_headline_table_present(self):
        experiments = _read("EXPERIMENTS.md")
        assert "54.0×" in experiments or "54.0x" in experiments
        assert "41.6" in experiments


class TestDocsDirectory:
    @pytest.mark.parametrize(
        "name",
        ["architecture.md", "precision.md", "performance_model.md",
         "tutorial.md", "datasets.md", "porting.md", "faq.md"],
    )
    def test_doc_exists_and_nonempty(self, name):
        path = ROOT / "docs" / name
        assert path.exists()
        assert len(path.read_text()) > 500

    def test_tutorial_code_references_resolve(self):
        import repro
        import repro.apps as apps

        tutorial = (ROOT / "docs" / "tutorial.md").read_text()
        for name in re.findall(r"from repro import ([\w, ]+)", tutorial):
            for sym in [s.strip() for s in name.split(",")]:
                assert hasattr(repro, sym), sym
        for name in re.findall(r"from repro\.apps import \(([^)]+)\)", tutorial):
            for sym in [s.strip() for s in name.replace("\n", " ").split(",") if s.strip()]:
                assert hasattr(apps, sym), sym


class TestPackaging:
    def test_license_and_citation(self):
        assert (ROOT / "LICENSE").exists()
        assert "MIT" in _read("LICENSE")
        citation = _read("CITATION.cff")
        assert "10.1109/IPDPS53621.2022.00021" in citation

    def test_pyproject_entry_point(self):
        pyproject = _read("pyproject.toml")
        assert 'repro = "repro.cli:main"' in pyproject
