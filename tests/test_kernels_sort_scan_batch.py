"""Unit tests for the batch-based sort/scan alternative and the related
RunConfig strategy/fast-path knobs."""

import numpy as np
import pytest

from repro import matrix_profile
from repro.core.config import RunConfig
from repro.gpu.kernel import LaunchConfig
from repro.kernels.sort_scan import SortScanKernel
from repro.kernels.sort_scan_batch import (
    BatchSortScanKernel,
    insertion_sort_columns,
    sequential_inclusive_scan,
)
from repro.precision.modes import policy_for

CFG = LaunchConfig(grid=4, block=64)


class TestInsertionSort:
    @pytest.mark.parametrize("d", [1, 2, 3, 5, 8, 16])
    def test_sorts(self, rng, d):
        x = rng.normal(size=(d, 7))
        np.testing.assert_array_equal(
            insertion_sort_columns(x), np.sort(x, axis=0)
        )

    def test_op_count_zero_for_sorted(self, rng):
        x = np.sort(rng.normal(size=(6, 5)), axis=0)
        _, ops = insertion_sort_columns(x, count_ops=True)
        # No moves needed; only the comparison walks are charged.
        assert ops == 5 * 5  # (d-1) * n comparison passes

    def test_op_count_grows_for_reversed(self, rng):
        x = rng.normal(size=(8, 5))
        _, ops_rand = insertion_sort_columns(x, count_ops=True)
        _, ops_rev = insertion_sort_columns(np.sort(x, axis=0)[::-1], count_ops=True)
        assert ops_rev >= ops_rand


class TestSequentialScan:
    def test_matches_cumsum_fp64(self, rng):
        x = rng.normal(size=(7, 4))
        np.testing.assert_allclose(
            sequential_inclusive_scan(x, np.dtype(np.float64)),
            np.cumsum(x, axis=0),
            rtol=1e-12,
        )

    def test_differs_from_fanin_in_fp16(self):
        from repro.kernels.sort_scan import fanin_inclusive_scan

        x = np.full((64, 1), 0.1, dtype=np.float16)
        seq = sequential_inclusive_scan(x, np.dtype(np.float16))
        fan = fanin_inclusive_scan(x, np.dtype(np.float16))
        # Different summation orders round differently at depth 64.
        assert seq[-1, 0] != fan[-1, 0]


class TestBatchKernel:
    def test_same_output_as_cooperative_fp64(self, rng):
        plane = np.abs(rng.normal(size=(6, 9)))
        policy = policy_for("FP64")
        coop = SortScanKernel(config=CFG, policy=policy).run(plane)
        batch = BatchSortScanKernel(config=CFG, policy=policy).run(plane)
        np.testing.assert_allclose(batch, coop, rtol=1e-12)

    def test_cost_reflects_uncoalesced_serial_design(self, rng):
        plane = np.abs(rng.normal(size=(16, 64)))
        policy = policy_for("FP64")
        coop = SortScanKernel(config=CFG, policy=policy)
        coop.run(plane)
        batch = BatchSortScanKernel(config=CFG, policy=policy)
        batch.run(plane)
        # The rejected design moves far more effective DRAM bytes and has
        # no cooperative synchronisation.
        assert batch.cost.bytes_dram > coop.cost.bytes_dram
        assert batch.cost.syncs == 0


class TestRunConfigIntegration:
    def test_batch_strategy_identical_results_fp64(self, rng):
        ref = rng.normal(size=(200, 4))
        qry = rng.normal(size=(180, 4))
        a = matrix_profile(ref, qry, m=16, mode="FP64")
        b_cfg = RunConfig(mode="FP64", sort_strategy="batch")
        from repro.core.single_tile import compute_single_tile

        b = compute_single_tile(ref, qry, 16, b_cfg)
        np.testing.assert_allclose(a.profile, b.profile, atol=1e-12)
        np.testing.assert_array_equal(a.index, b.index)

    def test_batch_strategy_models_slower(self, rng):
        # Compare the *busy* (throughput) term: at tiny test sizes the
        # per-row launch overhead — identical for both strategies —
        # otherwise swamps the difference.
        from repro.core.single_tile import (
            compute_single_tile,
            tile_timing_from_output,
        )
        from repro.core.single_tile import run_tile
        from repro.kernels.layout import to_device_layout
        from repro.precision import policy_for
        from repro.gpu.device import A100

        ref = rng.normal(size=(300, 8))
        policy = policy_for("FP64")
        dev = to_device_layout(ref, policy.storage)
        cfg = RunConfig()
        coop = run_tile(dev, dev, 16, policy, cfg.launch, exclusion_zone=4)
        batch = run_tile(
            dev, dev, 16, policy, cfg.launch, exclusion_zone=4,
            sort_strategy="batch",
        )
        t_coop = tile_timing_from_output(coop, policy, A100)
        t_batch = tile_timing_from_output(batch, policy, A100)
        assert (
            t_batch.kernels["sort_&_incl_scan"].busy
            > 3 * t_coop.kernels["sort_&_incl_scan"].busy
        )

    def test_invalid_strategy(self):
        with pytest.raises(ValueError, match="sort_strategy"):
            RunConfig(sort_strategy="quick")

    def test_1d_fast_path_identical(self, rng):
        from repro.core.single_tile import compute_single_tile

        x = rng.normal(size=(400, 1)).cumsum(axis=0)
        fast = compute_single_tile(x, None, 16, RunConfig(fast_path_1d=True))
        full = compute_single_tile(x, None, 16, RunConfig(fast_path_1d=False))
        np.testing.assert_allclose(fast.profile, full.profile, atol=1e-12)
        np.testing.assert_array_equal(fast.index, full.index)

    def test_1d_fast_path_cheaper(self, rng):
        from repro.core.single_tile import compute_single_tile

        x = rng.normal(size=(400, 1)).cumsum(axis=0)
        fast = compute_single_tile(x, None, 16, RunConfig(fast_path_1d=True))
        full = compute_single_tile(x, None, 16, RunConfig(fast_path_1d=False))
        assert fast.costs["sort_&_incl_scan"].launches == 0
        assert full.costs["sort_&_incl_scan"].launches > 0
        assert fast.modeled_time <= full.modeled_time

    def test_fast_path_not_applied_above_1d(self, rng):
        from repro.core.single_tile import compute_single_tile

        x = rng.normal(size=(200, 3))
        r = compute_single_tile(x, None, 16, RunConfig(fast_path_1d=True))
        assert r.costs["sort_&_incl_scan"].launches > 0
