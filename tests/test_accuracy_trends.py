"""Directional accuracy-trend tests reproducing the paper's qualitative
claims (Section V-B) at reduced scale."""

import numpy as np
import pytest

from repro import matrix_profile
from repro.datasets.synthetic import make_stress_dataset
from repro.metrics.numerical import recall_rate, relative_accuracy


@pytest.fixture(scope="module")
def stress():
    ds = make_stress_dataset(n=1400, d=6, m=32, amplitude=4.0, seed=9)
    ref_result = matrix_profile(ds.reference, ds.query, m=ds.m, mode="FP64")
    return ds, ref_result


def _run(ds, mode, **kw):
    return matrix_profile(ds.reference, ds.query, m=ds.m, mode=mode, **kw)


class TestPrecisionOrdering:
    def test_fp32_accuracy_near_100(self, stress):
        ds, ref = stress
        r = _run(ds, "FP32")
        assert relative_accuracy(r.profile, ref.profile) > 99.0
        assert recall_rate(r.index, ref.index) > 95.0

    def test_fp16_below_fp32(self, stress):
        ds, ref = stress
        a32 = relative_accuracy(_run(ds, "FP32").profile, ref.profile)
        a16 = relative_accuracy(_run(ds, "FP16").profile, ref.profile)
        assert a16 < a32

    def test_mixed_at_least_fp16(self, stress):
        # Fig. 2: Mixed and FP16C roughly double the accuracy of FP16.
        ds, ref = stress
        r16 = recall_rate(_run(ds, "FP16").index, ref.index)
        rmx = recall_rate(_run(ds, "Mixed").index, ref.index)
        assert rmx >= r16 - 1.0  # never meaningfully worse

    def test_fp16c_tracks_mixed(self, stress):
        # Fig. 2: "Mixed and FP16C modes result in almost the same accuracy".
        ds, ref = stress
        amx = relative_accuracy(_run(ds, "Mixed").profile, ref.profile)
        acp = relative_accuracy(_run(ds, "FP16C").profile, ref.profile)
        assert abs(amx - acp) < 5.0

    def test_fp64_gpu_identical_to_reference(self, stress):
        # "The FP64 mode on the GPU can generate identical results as the
        # CPU-based implementation."
        ds, ref = stress
        from repro.baselines.mstamp import mstamp

        p_cpu, i_cpu = mstamp(ds.reference, ds.query, ds.m)
        assert relative_accuracy(ref.profile, p_cpu) > 99.999
        assert recall_rate(ref.index, i_cpu) == 100.0


class TestErrorGrowsWithStreamLength:
    def test_fp16_recall_decreases_with_n(self):
        # Fig. 2 top-left: accuracy decreases as n grows (e ~ n*eps).
        recalls = []
        for n in (600, 2000):
            ds = make_stress_dataset(n=n, d=4, m=32, amplitude=4.0, seed=13)
            ref = matrix_profile(ds.reference, ds.query, m=32, mode="FP64")
            r16 = matrix_profile(ds.reference, ds.query, m=32, mode="FP16")
            recalls.append(recall_rate(r16.index, ref.index))
        assert recalls[1] <= recalls[0] + 1.0


class TestTilingImprovesReducedPrecision:
    def test_recall_non_decreasing_with_tiles(self):
        # Fig. 7 / Fig. 10: more tiles => higher FP16 accuracy.
        ds = make_stress_dataset(n=1600, d=4, m=32, amplitude=4.0, seed=17)
        ref = matrix_profile(ds.reference, ds.query, m=32, mode="FP64")
        recalls = []
        for n_tiles in (1, 16, 64):
            r = matrix_profile(ds.reference, ds.query, m=32, mode="FP16", n_tiles=n_tiles)
            recalls.append(recall_rate(r.index, ref.index))
        assert recalls[2] >= recalls[0] - 1.0
        assert max(recalls[1:]) >= recalls[0]

    def test_tiling_does_not_change_fp64(self):
        ds = make_stress_dataset(n=800, d=3, m=24, seed=19)
        a = matrix_profile(ds.reference, ds.query, m=24, mode="FP64")
        b = matrix_profile(ds.reference, ds.query, m=24, mode="FP64", n_tiles=16)
        np.testing.assert_array_equal(a.index, b.index)


class TestPerformanceOrdering:
    def test_modeled_time_ordering(self, stress):
        # Lower precision must never model slower (Fig. 5).
        ds, _ = stress
        t64 = _run(ds, "FP64").modeled_time
        t32 = _run(ds, "FP32").modeled_time
        t16 = _run(ds, "FP16").modeled_time
        assert t16 <= t32 <= t64

    def test_fp16_family_performance_close(self, stress):
        # FP16, Mixed and FP16C perform alike (precalc is negligible).
        ds, _ = stress
        t16 = _run(ds, "FP16").modeled_time
        tmx = _run(ds, "Mixed").modeled_time
        tcp = _run(ds, "FP16C").modeled_time
        assert tmx == pytest.approx(t16, rel=0.1)
        assert tcp == pytest.approx(t16, rel=0.1)
