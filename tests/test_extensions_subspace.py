"""Unit tests for motif subspace recovery."""

import numpy as np
import pytest

from repro import matrix_profile
from repro.extensions.subspace import (
    motif_with_subspace,
    recover_subspace,
    segment_distances,
)


@pytest.fixture
def planted(rng):
    """Noise with one motif living in dimensions {1, 4}."""
    n, d, m = 600, 6, 32
    ref = rng.normal(size=(n, d))
    qry = rng.normal(size=(n, d))
    wave = 5.0 * np.sin(np.linspace(0, 4 * np.pi, m))
    for dim in (1, 4):
        ref[100 : 100 + m, dim] += wave
        qry[400 : 400 + m, dim] += wave
    return ref, qry, m


class TestSegmentDistances:
    def test_shape_and_nonnegative(self, planted):
        ref, qry, m = planted
        dists = segment_distances(ref, qry, 100, 400, m)
        assert dists.shape == (6,)
        assert np.all(dists >= 0)

    def test_motif_dims_closest(self, planted):
        ref, qry, m = planted
        dists = segment_distances(ref, qry, 100, 400, m)
        assert set(np.argsort(dists)[:2]) == {1, 4}

    def test_identical_segments_zero(self, rng):
        x = rng.normal(size=(100, 3))
        dists = segment_distances(x, x, 10, 10, 16)
        np.testing.assert_allclose(dists, 0.0, atol=1e-10)

    def test_out_of_range(self, planted):
        ref, qry, m = planted
        with pytest.raises(ValueError):
            segment_distances(ref, qry, 10_000, 0, m)


class TestRecoverSubspace:
    def test_recovers_planted_dims(self, planted):
        ref, qry, m = planted
        ss = recover_subspace(ref, qry, 100, 400, m, k=2)
        assert set(ss.dimensions) == {1, 4}
        assert ss.distances == tuple(sorted(ss.distances))

    def test_k_validation(self, planted):
        ref, qry, m = planted
        with pytest.raises(ValueError):
            recover_subspace(ref, qry, 100, 400, m, k=0)
        with pytest.raises(ValueError):
            recover_subspace(ref, qry, 100, 400, m, k=7)


class TestMotifWithSubspace:
    def test_full_pipeline(self, planted):
        ref, qry, m = planted
        result = matrix_profile(ref, qry, m=m, mode="FP64")
        ss = motif_with_subspace(result, ref, qry, k=2)
        assert set(ss.dimensions) == {1, 4}
        # Found at (approximately) the planted location.
        assert abs(ss.query_pos - 400) < m
        assert abs(ss.ref_pos - 100) < m

    def test_self_join_pipeline(self, rng):
        n, m = 500, 32
        x = rng.normal(size=(n, 4))
        wave = 5.0 * np.sin(np.linspace(0, 4 * np.pi, m))
        x[50 : 50 + m, 2] += wave
        x[350 : 350 + m, 2] += wave
        result = matrix_profile(x, m=m, mode="FP64")
        ss = motif_with_subspace(result, x, None, k=1)
        assert ss.dimensions == (2,)
