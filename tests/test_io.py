"""Unit tests for result persistence."""

import numpy as np
import pytest

from repro import matrix_profile
from repro.io import load_result, save_result
from repro.precision.modes import PrecisionMode


class TestSaveLoad:
    @pytest.fixture
    def result(self, rng):
        ref = rng.normal(size=(150, 3))
        qry = rng.normal(size=(120, 3))
        return matrix_profile(ref, qry, m=16, mode="Mixed", n_tiles=4, n_gpus=2)

    def test_roundtrip_arrays(self, result, tmp_path):
        path = save_result(result, tmp_path / "run")
        loaded = load_result(path)
        np.testing.assert_array_equal(loaded.profile, result.profile)
        np.testing.assert_array_equal(loaded.index, result.index)

    def test_roundtrip_metadata(self, result, tmp_path):
        loaded = load_result(save_result(result, tmp_path / "run.npz"))
        assert loaded.mode is PrecisionMode.MIXED
        assert loaded.m == result.m
        assert loaded.n_tiles == 4
        assert loaded.n_gpus == 2
        assert loaded.merge_time == result.merge_time

    def test_roundtrip_timeline(self, result, tmp_path):
        loaded = load_result(save_result(result, tmp_path / "run"))
        assert loaded.timeline.makespan == pytest.approx(result.timeline.makespan)
        assert loaded.modeled_time == pytest.approx(result.modeled_time)
        assert loaded.kernel_breakdown().keys() == result.kernel_breakdown().keys()

    def test_roundtrip_costs(self, result, tmp_path):
        loaded = load_result(save_result(result, tmp_path / "run"))
        for name, cost in result.costs.items():
            assert loaded.costs[name].bytes_dram == cost.bytes_dram
            assert loaded.costs[name].syncs == cost.syncs

    def test_suffix_appended(self, result, tmp_path):
        path = save_result(result, tmp_path / "noext")
        assert path.suffix == ".npz"

    def test_version_check(self, result, tmp_path):
        import json

        path = save_result(result, tmp_path / "run")
        with np.load(path) as data:
            header = json.loads(bytes(data["header"].tobytes()).decode())
            arrays = {k: data[k] for k in data.files if k != "header"}
        header["format_version"] = 999
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="unsupported result format"):
            load_result(path)
