"""Example-script hygiene: every example imports cleanly, has a main(),
a module docstring with a Run line, and only uses the public API."""

import ast
import importlib.util
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parents[1] / "examples").glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # imports only; main() is guarded
    return module


class TestExampleScripts:
    def test_at_least_eight_examples(self):
        assert len(EXAMPLES) >= 8

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_imports_cleanly_and_has_main(self, path):
        module = _load(path)
        assert hasattr(module, "main"), f"{path.name} lacks main()"
        assert callable(module.main)

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_docstring_with_run_line(self, path):
        tree = ast.parse(path.read_text())
        doc = ast.get_docstring(tree)
        assert doc and "Run:" in doc, f"{path.name} docstring must show how to run"

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_guarded_entry_point(self, path):
        source = path.read_text()
        assert 'if __name__ == "__main__":' in source, path.name

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_no_private_imports(self, path):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith("repro"):
                    for alias in node.names:
                        assert not alias.name.startswith("_"), (
                            f"{path.name} imports private {alias.name} "
                            f"from {node.module}"
                        )

    def test_quickstart_exists(self):
        names = {p.name for p in EXAMPLES}
        assert "quickstart.py" in names
