"""Golden bit-for-bit parity of the engine-backed execution paths.

``tests/golden/engine_parity.npz`` pins the profiles/indices the
pre-refactor loops produced (all five precision modes, self-join and
AB-join, single-tile and multi-tile) — regenerable via
``tests/golden/generate_engine_parity.py``.  These tests prove the
`repro.engine` adapters reproduce them exactly: same merge order, same
tile order, same kernel arguments, same exclusion-zone semantics.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.multi_tile import compute_multi_tile
from repro.core.single_tile import compute_single_tile
from repro.engine import (
    JobSpec,
    NumericBackend,
    ProfileAccumulator,
    execute_plan,
)
from repro.gpu.simulator import GPUSimulator
from repro.service.scheduler import TileScheduler

GOLDEN = Path(__file__).parent / "golden" / "engine_parity.npz"
MODES = ("FP64", "FP32", "FP16", "Mixed", "FP16C")
N_TILES, N_GPUS = 4, 2


@pytest.fixture(scope="module")
def golden():
    data = np.load(GOLDEN)
    return data


@pytest.fixture(scope="module")
def series(golden):
    return golden["reference"], golden["query"], int(golden["m"])


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("join", ["self", "ab"])
class TestGoldenParity:
    def test_single_tile_bit_identical(self, golden, series, mode, join):
        ref, qry, m = series
        query = None if join == "self" else qry
        result = compute_single_tile(ref, query, m, RunConfig(mode=mode))
        key = f"single_{mode}_{join}"
        assert np.array_equal(result.profile, golden[f"{key}_profile"])
        assert np.array_equal(result.index, golden[f"{key}_index"])

    def test_multi_tile_bit_identical(self, golden, series, mode, join):
        ref, qry, m = series
        query = None if join == "self" else qry
        result = compute_multi_tile(
            ref, query, m, RunConfig(mode=mode, n_tiles=N_TILES, n_gpus=N_GPUS)
        )
        key = f"multi_{mode}_{join}"
        assert np.array_equal(result.profile, golden[f"{key}_profile"])
        assert np.array_equal(result.index, golden[f"{key}_index"])

    def test_scheduler_path_matches_multi_tile_golden(
        self, golden, series, mode, join
    ):
        # The service scheduler runs the same engine loop (dynamic
        # placement, job-local timeline) — numerics must still match the
        # multi-tile golden exactly: placement only moves tiles between
        # identical simulated GPUs.
        ref, qry, m = series
        query = None if join == "self" else qry
        config = RunConfig(mode=mode, n_tiles=N_TILES, n_gpus=N_GPUS)
        spec = JobSpec.from_arrays(ref, query, m, config)
        tr, tq = spec.layouts()
        sim = GPUSimulator(config.device, N_GPUS, config.n_streams)
        scheduler = TileScheduler(sim)
        execution = scheduler.execute(
            tr, tq, m, config, spec.exclusion_zone, n_tiles=N_TILES
        )
        key = f"multi_{mode}_{join}"
        profile = np.ascontiguousarray(execution.profile.T.astype(np.float64))
        index = np.ascontiguousarray(execution.index.T)
        assert np.array_equal(profile, golden[f"{key}_profile"])
        assert np.array_equal(index, golden[f"{key}_index"])
        assert not execution.partial


class TestDirectEngineParity:
    """Driving execute_plan directly matches the adapter entry points."""

    def test_raw_engine_matches_golden(self, golden, series):
        ref, qry, m = series
        config = RunConfig(mode="Mixed", n_tiles=N_TILES, n_gpus=N_GPUS)
        spec = JobSpec.from_arrays(ref, qry, m, config)
        plan = spec.plan()
        sim = GPUSimulator(config.device, config.n_gpus, config.n_streams)
        acc = ProfileAccumulator(spec.d, spec.n_q_seg, spec.policy)
        report = execute_plan(
            plan, NumericBackend(discount_shared_h2d=True), sim, accumulator=acc
        )
        assert report.tiles_completed == plan.n_tiles
        assert np.array_equal(acc.host_profile(), golden["multi_Mixed_ab_profile"])
        assert np.array_equal(acc.host_index(), golden["multi_Mixed_ab_index"])

    def test_self_join_records_h2d_savings(self, series):
        # Diagonal tiles of a self-join share one upload; AB-joins never do.
        ref, qry, m = series
        config = RunConfig(n_tiles=N_TILES, n_gpus=N_GPUS)
        saved = compute_multi_tile(ref, None, m, config).h2d_saved_bytes
        assert saved > 0
        # 2x2 grid: two diagonal tiles, each saving its column slice.
        spec = JobSpec.from_arrays(ref, None, m, config)
        expected = sum(
            (t.sample_range_cols(m)[1] - t.sample_range_cols(m)[0])
            * spec.d
            * spec.policy.itemsize
            for t in spec.plan().tiles
            if t.sample_range_rows(m) == t.sample_range_cols(m)
        )
        assert saved == expected
        assert compute_multi_tile(ref, qry, m, config).h2d_saved_bytes == 0.0

    def test_h2d_savings_shrink_modeled_transfer_time(self, series):
        # The shared upload is not just bookkeeping: the modelled H2D time
        # of a diagonal tile drops, so the self-join makespan can only
        # improve relative to double-upload accounting.
        ref, _, m = series
        config = RunConfig(n_tiles=N_TILES, n_gpus=N_GPUS)
        result = compute_multi_tile(ref, None, m, config)
        h2d_busy = sum(
            op.duration
            for op in result.timeline.ops
            if op.engine == "h2d"
        )
        spec = JobSpec.from_arrays(ref, None, m, config)
        plan = spec.plan()
        sim = GPUSimulator(config.device, config.n_gpus, config.n_streams)
        acc = ProfileAccumulator(spec.d, spec.n_q_seg, spec.policy)
        execute_plan(plan, NumericBackend(), sim, accumulator=acc)
        h2d_busy_undiscounted = sum(
            op.duration for op in sim.timeline.ops if op.engine == "h2d"
        )
        assert h2d_busy < h2d_busy_undiscounted
