"""Unit tests for the tiling scheme (Pseudocode 2 support machinery)."""

import numpy as np
import pytest

from repro.core.tiling import Tile, assign_tiles, compute_tile_list, tile_grid_shape


class TestGridShape:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (1, (1, 1)),
            (2, (1, 2)),
            (4, (2, 2)),
            (16, (4, 4)),
            (32, (4, 8)),
            (256, (16, 16)),
            (1024, (32, 32)),
            (12, (3, 4)),
            (7, (1, 7)),
        ],
    )
    def test_near_square_factorisation(self, n, expected):
        assert tile_grid_shape(n) == expected

    def test_product_preserved(self):
        for n in range(1, 200):
            g_r, g_q = tile_grid_shape(n)
            assert g_r * g_q == n
            assert g_r <= g_q

    def test_invalid(self):
        with pytest.raises(ValueError):
            tile_grid_shape(0)


class TestComputeTileList:
    def test_full_coverage_no_overlap(self):
        tiles = compute_tile_list(100, 90, 16)
        cells = np.zeros((100, 90), dtype=int)
        for t in tiles:
            cells[t.row_start : t.row_stop, t.col_start : t.col_stop] += 1
        assert np.all(cells == 1)

    def test_single_tile(self):
        tiles = compute_tile_list(50, 60, 1)
        assert len(tiles) == 1
        assert tiles[0].n_rows == 50
        assert tiles[0].n_cols == 60

    def test_balanced_split(self):
        tiles = compute_tile_list(100, 100, 4)
        assert all(t.n_rows == 50 and t.n_cols == 50 for t in tiles)

    def test_uneven_split_differs_by_one(self):
        tiles = compute_tile_list(10, 10, 9)
        rows = {t.n_rows for t in tiles}
        assert rows <= {3, 4}

    def test_clamped_when_too_many_tiles(self):
        tiles = compute_tile_list(2, 3, 100)
        # grid clamps to 2 x 3 = 6 tiles at most
        assert len(tiles) <= 6
        assert all(t.n_rows >= 1 and t.n_cols >= 1 for t in tiles)

    def test_row_major_ordering(self):
        tiles = compute_tile_list(100, 100, 4)
        assert [t.tile_id for t in tiles] == [0, 1, 2, 3]
        assert tiles[0].row_start == tiles[1].row_start  # same row band
        assert tiles[2].row_start > tiles[0].row_start

    def test_sample_ranges_extend_by_m_minus_1(self):
        tile = Tile(0, 10, 20, 30, 50)
        assert tile.sample_range_rows(8) == (10, 27)
        assert tile.sample_range_cols(8) == (30, 57)

    def test_invalid_segments(self):
        with pytest.raises(ValueError):
            compute_tile_list(0, 10, 4)


class TestAssignTiles:
    def test_round_robin(self):
        tiles = compute_tile_list(100, 100, 8)
        assert assign_tiles(tiles, 4) == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_perfect_balance_when_divisible(self):
        tiles = compute_tile_list(64, 64, 16)
        assignment = assign_tiles(tiles, 4)
        counts = np.bincount(assignment)
        assert np.all(counts == 4)

    def test_imbalance_for_odd_gpu_counts(self):
        # 16 tiles on 3 GPUs: one GPU gets 6 tiles, the Fig. 5 dip.
        tiles = compute_tile_list(64, 64, 16)
        counts = np.bincount(assign_tiles(tiles, 3))
        assert counts.max() == 6
        assert counts.min() == 5

    def test_invalid_gpus(self):
        with pytest.raises(ValueError):
            assign_tiles([], 0)
