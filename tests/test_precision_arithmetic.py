"""Unit tests for repro.precision.arithmetic."""

import numpy as np
import pytest

from repro.precision.arithmetic import (
    quantize,
    rp_add,
    rp_div,
    rp_fma,
    rp_mul,
    rp_sqrt,
    rp_sub,
    saturate_cast,
    ulp_distance,
)


class TestQuantize:
    def test_fp16_rounding(self):
        # 1 + 2^-11 is not representable in binary16; rounds to 1.
        assert quantize(1.0 + 2.0**-11, np.float16) == np.float16(1.0)

    def test_fp16_overflow_to_inf(self):
        assert np.isinf(quantize(1e6, np.float16))

    def test_idempotent(self):
        x = np.linspace(-3, 3, 17)
        once = quantize(x, np.float16)
        twice = quantize(once, np.float16)
        assert np.array_equal(once, twice)

    def test_fp64_exact(self):
        x = np.array([1.23456789e-100, 9.87654321e100])
        assert np.array_equal(quantize(x, np.float64), x)


class TestSaturateCast:
    def test_saturates_instead_of_inf(self):
        out = saturate_cast(np.array([1e6, -1e6]), np.float16)
        assert out[0] == np.float16(65504.0)
        assert out[1] == np.float16(-65504.0)

    def test_propagates_nan(self):
        assert np.isnan(saturate_cast(np.array([np.nan]), np.float16))[0]

    def test_in_range_unchanged(self):
        assert saturate_cast(2.5, np.float16) == np.float16(2.5)


class TestRoundedOps:
    def test_add_rounds(self):
        # 2048 + 1 is not representable in fp16 (spacing is 2 there).
        assert rp_add(2048.0, 1.0, np.float16) == np.float16(2048.0)

    def test_sub(self):
        assert rp_sub(3.0, 1.0, np.float16) == np.float16(2.0)

    def test_mul_overflow(self):
        assert np.isinf(rp_mul(300.0, 300.0, np.float16))

    def test_div_by_zero_inf(self):
        with np.errstate(divide="ignore"):
            assert np.isinf(rp_div(1.0, 0.0, np.float16))

    def test_sqrt_negative_nan(self):
        assert np.isnan(rp_sqrt(-1.0, np.float32))

    def test_ops_return_requested_dtype(self):
        for op in (rp_add, rp_sub, rp_mul, rp_div):
            assert op(1.5, 2.5, np.float32).dtype == np.float32


class TestFma:
    def test_fma_single_rounding_differs_from_two(self):
        # Choose values where (a*b) rounds in fp16 but the fused result
        # differs: a*b = 1.0009765625^2 exact product needs 21 bits.
        a = np.float16(1.0 + 2.0**-10)
        two_step = rp_add(rp_mul(a, a, np.float16), np.float16(-1.0), np.float16)
        fused = rp_fma(a, a, np.float16(-1.0), np.float16)
        exact = float(a) * float(a) - 1.0
        # The fused result must be at least as accurate as the two-step.
        assert abs(float(fused) - exact) <= abs(float(two_step) - exact)

    def test_fma_fp64_matches_plain(self):
        a, b, c = 1.1, 2.2, 3.3
        assert rp_fma(a, b, c, np.float64) == a * b + c

    def test_fma_broadcasts(self):
        out = rp_fma(np.ones((2, 1)), np.ones((1, 3)), np.zeros((2, 3)), np.float32)
        assert out.shape == (2, 3)
        assert out.dtype == np.float32


class TestUlpDistance:
    def test_zero_for_equal(self):
        x = np.array([1.0, -2.0, 0.0])
        assert np.all(ulp_distance(x, x, np.float32) == 0)

    def test_one_ulp(self):
        x = np.float32(1.0)
        y = np.nextafter(x, np.float32(2.0), dtype=np.float32)
        assert ulp_distance(x, y, np.float32) == pytest.approx(1.0)

    def test_scales_with_magnitude(self):
        # Same absolute difference is fewer ulps at larger magnitude.
        d_small = ulp_distance(1.0, 1.0 + 1e-6, np.float32)
        d_big = ulp_distance(1000.0, 1000.0 + 1e-6, np.float32)
        assert d_small > d_big
