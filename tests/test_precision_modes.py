"""Unit tests for repro.precision.modes."""

import numpy as np
import pytest

from repro.precision.modes import (
    DTYPE_MAX,
    MACHINE_EPS,
    POLICIES,
    PrecisionMode,
    PrecisionPolicy,
    policy_for,
)


class TestPrecisionMode:
    def test_five_modes_exist(self):
        assert {m.value for m in PrecisionMode} == {
            "FP64",
            "FP32",
            "FP16",
            "Mixed",
            "FP16C",
        }

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("fp64", PrecisionMode.FP64),
            ("FP32", PrecisionMode.FP32),
            ("mixed", PrecisionMode.MIXED),
            ("Mixed", PrecisionMode.MIXED),
            ("fp16c", PrecisionMode.FP16C),
        ],
    )
    def test_parse_strings(self, text, expected):
        assert PrecisionMode.parse(text) is expected

    def test_parse_passthrough(self):
        assert PrecisionMode.parse(PrecisionMode.FP16) is PrecisionMode.FP16

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown precision mode"):
            PrecisionMode.parse("bf16")

    def test_str(self):
        assert str(PrecisionMode.FP16C) == "FP16C"


class TestPolicies:
    def test_every_mode_has_a_policy(self):
        assert set(POLICIES) == set(PrecisionMode)

    def test_fp64_policy(self):
        p = policy_for("FP64")
        assert p.storage == np.float64
        assert p.compute == np.float64
        assert p.precalc == np.float64
        assert not p.compensated

    def test_fp16_policy_is_half_everywhere(self):
        p = policy_for("FP16")
        assert p.storage == np.float16 == p.compute == p.precalc
        assert not p.compensated

    def test_mixed_lifts_precalc_to_fp32(self):
        p = policy_for("Mixed")
        assert p.storage == np.float16
        assert p.compute == np.float16
        assert p.precalc == np.float32
        assert not p.compensated

    def test_fp16c_is_mixed_plus_kahan(self):
        p = policy_for("FP16C")
        assert p.precalc == np.float32
        assert p.compensated

    def test_eps_values_match_paper(self):
        # Section V-B: eps64 = 2^-52, eps32 = 2^-23, eps16 = 2^-10.
        assert policy_for("FP64").eps == 2.0**-52
        assert policy_for("FP32").eps == 2.0**-23
        assert policy_for("FP16").eps == 2.0**-10

    def test_half_max_is_65504(self):
        assert policy_for("FP16").max_value == 65504.0

    def test_itemsize_drives_storage_bytes(self):
        assert policy_for("FP64").itemsize == 8
        assert policy_for("FP32").itemsize == 4
        assert policy_for("Mixed").itemsize == 2

    def test_precalc_eps_differs_for_mixed(self):
        p = policy_for("Mixed")
        assert p.precalc_eps == 2.0**-23
        assert p.eps == 2.0**-10

    def test_policy_rejects_non_float(self):
        with pytest.raises(TypeError):
            PrecisionPolicy(
                mode=PrecisionMode.FP64,
                storage=np.dtype(np.int32),
                compute=np.dtype(np.float64),
                precalc=np.dtype(np.float64),
                compensated=False,
            )

    def test_tables_cover_three_formats(self):
        assert len(MACHINE_EPS) == 3
        assert len(DTYPE_MAX) == 3
