"""Unit tests for the NVLink topology models."""

import networkx as nx
import pytest

from repro.gpu.topology import (
    best_broadcast_time,
    dgx1_topology,
    nvlink_broadcast_time,
    nvswitch_topology,
    pcie_broadcast_time,
)


class TestDGX1Graph:
    def test_eight_gpus(self):
        g = dgx1_topology()
        assert g.number_of_nodes() == 8

    def test_six_nvlink_ports_per_gpu(self):
        # Each V100 has 6 NVLink bricks: the sum of `links` on its edges.
        g = dgx1_topology()
        for node in g.nodes:
            ports = sum(g.edges[node, nbr]["links"] for nbr in g.neighbors(node))
            assert ports == 6, f"GPU {node} has {ports} bricks"

    def test_connected_and_not_complete(self):
        g = dgx1_topology()
        assert nx.is_connected(g)
        assert g.number_of_edges() < 28  # not a full crossbar

    def test_quad_edges_doubled(self):
        g = dgx1_topology()
        assert g.edges[0, 1]["links"] == 2
        assert g.edges[0, 3]["links"] == 1

    def test_cross_quad_links(self):
        g = dgx1_topology()
        for u in range(4):
            assert any(v >= 4 for v in g.neighbors(u))


class TestNVSwitch:
    def test_all_to_all(self):
        g = nvswitch_topology(4)
        assert g.number_of_edges() == 6
        assert nx.is_connected(g)

    def test_uniform_bandwidth(self):
        g = nvswitch_topology(4)
        bws = {g.edges[e]["bandwidth"] for e in g.edges}
        assert len(bws) == 1


class TestBroadcastTimes:
    NBYTES = 1 << 30  # 1 GiB payload

    def test_pcie_scales_with_gpus(self):
        t4 = pcie_broadcast_time(self.NBYTES, 4, "V100")
        t8 = pcie_broadcast_time(self.NBYTES, 8, "V100")
        assert t8 == pytest.approx(2 * t4)

    def test_nvlink_beats_pcie_for_large_payload_on_8_gpus(self):
        t_nv = nvlink_broadcast_time(self.NBYTES, dgx1_topology(), "V100")
        t_pcie = pcie_broadcast_time(self.NBYTES, 8, "V100")
        assert t_nv < t_pcie

    def test_invalid_root(self):
        with pytest.raises(ValueError):
            nvlink_broadcast_time(1.0, dgx1_topology(), "V100", root=99)

    def test_best_strategy_switches(self):
        big, strat_big = best_broadcast_time(self.NBYTES, 8, "V100")
        assert strat_big == "nvlink"
        tiny, strat_tiny = best_broadcast_time(4096, 2, "V100")
        assert strat_tiny in ("pcie", "nvlink")
        assert tiny < big

    def test_cpu_device_free_transfers(self):
        assert pcie_broadcast_time(self.NBYTES, 4, "Skylake16") == 0.0

    def test_broadcast_monotone_in_payload(self):
        g = dgx1_topology()
        t1 = nvlink_broadcast_time(1e6, g, "V100")
        t2 = nvlink_broadcast_time(1e9, g, "V100")
        assert t2 > t1

    def test_single_gpu_subgraph(self):
        t, strategy = best_broadcast_time(self.NBYTES, 1, "V100")
        assert t > 0
