"""Unit tests for the energy model."""

import numpy as np
import pytest

from repro import RunConfig, matrix_profile, model_multi_tile
from repro.gpu.energy import POWER_SPECS, estimate_energy


class TestEnergyModel:
    @pytest.fixture(scope="class")
    def result(self):
        rng = np.random.default_rng(4)
        return matrix_profile(rng.normal(size=(400, 4)), m=16, n_tiles=4)

    def test_positive_components(self, result):
        est = estimate_energy(result)
        assert est.busy_energy > 0
        assert est.total_energy >= est.busy_energy
        assert est.kilojoules == est.total_energy / 1e3

    def test_average_power_between_idle_and_tdp(self, result):
        est = estimate_energy(result)
        spec = POWER_SPECS[est.device]
        assert spec.idle * 0.5 < est.average_power <= spec.tdp

    def test_reduced_precision_saves_energy(self):
        # Paper-scale projection: FP16-family time saving carries to joules.
        e = {}
        for mode in ("FP64", "FP16"):
            r = model_multi_tile(2**14, 64, 64, RunConfig(mode=mode))
            e[mode] = estimate_energy(r, "A100").total_energy
        assert e["FP16"] < e["FP64"]
        assert e["FP64"] / e["FP16"] > 1.2

    def test_multi_gpu_idle_accounting(self):
        # Odd GPU counts idle more (load imbalance) => worse energy per
        # unit of work than the balanced count.
        r3 = model_multi_tile(2**14, 64, 64, RunConfig(n_tiles=16, n_gpus=3))
        r4 = model_multi_tile(2**14, 64, 64, RunConfig(n_tiles=16, n_gpus=4))
        e3 = estimate_energy(r3, "A100")
        e4 = estimate_energy(r4, "A100")
        assert e3.idle_energy > e4.idle_energy

    def test_explicit_device(self, result):
        v = estimate_energy(result, "V100")
        a = estimate_energy(result, "A100")
        assert v.device == "V100"
        assert a.device == "A100"

    def test_unknown_device_raises(self, result):
        from dataclasses import replace

        from repro.gpu.device import A100

        ghost = replace(A100, name="H100")
        with pytest.raises(ValueError, match="no power spec"):
            estimate_energy(result, ghost)
