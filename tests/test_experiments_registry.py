"""Unit tests for the experiment registry."""

from pathlib import Path

import pytest

from repro.experiments import EXPERIMENTS, list_experiments, results_path


class TestRegistry:
    def test_every_paper_item_covered(self):
        items = {e.paper_item for e in EXPERIMENTS}
        for required in ("Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6",
                         "Fig. 7", "Fig. 10", "Table I", "Figs. 11-12",
                         "Figs. 8-9"):
            assert required in items, f"missing {required}"

    def test_ids_unique(self):
        ids = [e.exp_id for e in EXPERIMENTS]
        assert len(ids) == len(set(ids))

    def test_bench_files_exist(self):
        bench_dir = Path(__file__).resolve().parents[1] / "benchmarks"
        for e in EXPERIMENTS:
            assert (bench_dir / e.bench).exists(), e.bench

    def test_kinds_valid(self):
        assert all(e.kind in ("executed", "modelled", "both") for e in EXPERIMENTS)

    def test_results_path(self):
        path = results_path("fig2")
        assert path.name == "fig2_numerical_accuracy.txt"
        assert path.parent.name == "results"

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            results_path("fig99")

    def test_list_returns_all(self):
        assert list_experiments() == EXPERIMENTS
