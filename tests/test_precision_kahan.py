"""Unit tests for repro.precision.kahan (compensated summation)."""

import numpy as np
import pytest

from repro.precision.kahan import (
    kahan_cumsum,
    kahan_dot,
    kahan_sum,
    naive_cumsum,
    naive_sum,
    neumaier_sum,
)

F16 = np.dtype(np.float16)
F32 = np.dtype(np.float32)
F64 = np.dtype(np.float64)


def _error(values, result):
    exact = np.sum(np.asarray(values, dtype=np.float64))
    return abs(float(result) - exact)


class TestNaiveSum:
    def test_matches_exact_in_fp64(self, rng):
        x = rng.normal(size=257)
        assert naive_sum(x, F64) == pytest.approx(x.sum(), rel=1e-12)

    def test_accumulates_error_in_fp16(self, rng):
        # Summing 4096 ones then tiny values: naive fp16 stalls at 2048
        # (spacing 2 swallows +1 contributions beyond 2048? no: spacing at
        # 2048 is 2, so adding 1.0 rounds to nearest even -> stalls).
        x = np.ones(4096, dtype=np.float16)
        s = naive_sum(x, F16)
        assert float(s) < 4096  # stalled before the true sum

    def test_axis_handling(self, rng):
        x = rng.normal(size=(3, 50))
        out = naive_sum(x, F64, axis=1)
        assert out.shape == (3,)
        np.testing.assert_allclose(out, x.sum(axis=1), rtol=1e-12)


class TestKahanSum:
    def test_beats_naive_in_fp16(self, rng):
        x = rng.uniform(0.01, 1.0, size=2000)
        naive_err = _error(x, naive_sum(x, F16))
        kahan_err = _error(x, kahan_sum(x, F16))
        assert kahan_err <= naive_err

    def test_classic_stall_case(self):
        # 2048 + many 1.0s: naive fp16 stalls, Kahan tracks the lost bits.
        x = np.concatenate([[2048.0], np.ones(512)])
        naive = float(naive_sum(x, F16))
        kahan = float(kahan_sum(x, F16))
        assert naive == 2048.0
        assert kahan == pytest.approx(2560.0, rel=0.01)

    def test_matches_exact_in_fp64(self, rng):
        x = rng.normal(size=1000)
        assert float(kahan_sum(x, F64)) == pytest.approx(x.sum(), rel=1e-12)

    def test_vectorised_over_rows(self, rng):
        x = rng.normal(size=(4, 300))
        out = kahan_sum(x, F64, axis=-1)
        np.testing.assert_allclose(out, x.sum(axis=-1), rtol=1e-12)


class TestKahanCumsum:
    def test_matches_cumsum_fp64(self, rng):
        x = rng.normal(size=(2, 100))
        np.testing.assert_allclose(
            kahan_cumsum(x, F64, axis=1), np.cumsum(x, axis=1), rtol=1e-12
        )

    def test_final_element_beats_naive_fp16(self, rng):
        x = rng.uniform(0.01, 1.0, size=3000)
        exact = np.cumsum(x)[-1]
        naive_last = float(naive_cumsum(x, F16)[-1])
        kahan_last = float(kahan_cumsum(x, F16)[-1])
        assert abs(kahan_last - exact) <= abs(naive_last - exact)

    def test_axis_roundtrip_shape(self, rng):
        x = rng.normal(size=(3, 5, 7))
        assert kahan_cumsum(x, F64, axis=1).shape == x.shape


class TestKahanDot:
    def test_matches_dot_fp64(self, rng):
        a = rng.normal(size=200)
        b = rng.normal(size=200)
        assert float(kahan_dot(a, b, F64)) == pytest.approx(a @ b, rel=1e-12)

    def test_better_than_naive_products_fp16(self, rng):
        a = rng.uniform(0.5, 1.0, size=1000)
        b = rng.uniform(0.5, 1.0, size=1000)
        exact = float(np.dot(a, b))
        prod = (a.astype(np.float16) * b.astype(np.float16)).astype(np.float16)
        naive = float(naive_sum(prod, F16))
        kahan = float(kahan_dot(a, b, F16))
        assert abs(kahan - exact) <= abs(naive - exact)


class TestNeumaier:
    def test_handles_large_then_small(self):
        # Kahan's weakness: first addend huge, rest small.
        x = np.concatenate([[30000.0], np.full(100, 0.25)])
        neu = float(neumaier_sum(x, F16))
        exact = 30025.0
        naive = float(naive_sum(x, F16))
        assert abs(neu - exact) <= abs(naive - exact)

    def test_matches_exact_fp64(self, rng):
        x = rng.normal(size=500)
        assert float(neumaier_sum(x, F64)) == pytest.approx(x.sum(), rel=1e-12)
