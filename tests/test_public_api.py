"""Public API surface checks: every exported name resolves, docstrings
exist on public items, and the top-level package re-exports what the
README promises."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.precision",
    "repro.gpu",
    "repro.kernels",
    "repro.core",
    "repro.baselines",
    "repro.datasets",
    "repro.metrics",
    "repro.apps",
    "repro.extensions",
    "repro.service",
]

MODULES = PACKAGES + [
    "repro.preprocessing",
    "repro.io",
    "repro.validation",
    "repro.reporting",
    "repro.experiments",
    "repro.cli",
    "repro.gpu.profiler",
    "repro.gpu.tracing",
    "repro.gpu.energy",
    "repro.gpu.occupancy",
    "repro.gpu.topology",
    "repro.core.pan",
    "repro.core.scrimp",
    "repro.core.anytime",
    "repro.core.planner",
    "repro.apps.mpdist",
    "repro.apps.snippets",
    "repro.apps.segmentation",
    "repro.apps.chains",
    "repro.apps.consensus",
    "repro.apps.annotation",
]


class TestExports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_names_resolve(self, name):
        module = importlib.import_module(name)
        assert hasattr(module, "__all__"), f"{name} has no __all__"
        for export in module.__all__:
            assert hasattr(module, export), f"{name}.{export} missing"

    @pytest.mark.parametrize("name", MODULES)
    def test_module_docstrings(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20, name

    def test_top_level_promises(self):
        import repro

        for name in (
            "matrix_profile",
            "anytime_matrix_profile",
            "plan_tiles",
            "MatrixProfileResult",
            "RunConfig",
            "PrecisionMode",
            "model_multi_tile",
            "GPUSimulator",
        ):
            assert hasattr(repro, name), name

    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)


class TestDocstringsOnPublicCallables:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_public_callables_documented(self, name):
        module = importlib.import_module(name)
        undocumented = []
        for export in getattr(module, "__all__", []):
            obj = getattr(module, export)
            if callable(obj) and not isinstance(obj, type(importlib)):
                doc = inspect.getdoc(obj)
                if not doc or len(doc.strip()) < 10:
                    undocumented.append(f"{name}.{export}")
        assert not undocumented, f"undocumented exports: {undocumented}"
