"""Integration tests: all implementations must agree, and the streaming
kernel must match direct evaluation at arbitrary rows."""

import numpy as np
import pytest

from repro import matrix_profile
from repro.baselines.brute_force import brute_force_mdmp
from repro.baselines.mstamp import mstamp
from repro.core.config import RunConfig
from repro.core.multi_tile import compute_multi_tile
from repro.gpu.kernel import LaunchConfig
from repro.gpu.perfmodel import single_tile_costs
from repro.kernels.layout import to_device_layout
from repro.kernels.precalc import naive_qt_row
from repro.precision.modes import policy_for


class TestThreeWayAgreement:
    """brute force == mSTAMP == simulated-GPU FP64 == tiled FP64."""

    def test_ab_join_chain(self, small_pair):
        ref, qry, m = small_pair
        p_bf, i_bf = brute_force_mdmp(ref, qry, m)
        p_ms, i_ms = mstamp(ref, qry, m)
        gpu = matrix_profile(ref, qry, m=m, mode="FP64")
        tiled = matrix_profile(ref, qry, m=m, mode="FP64", n_tiles=6, n_gpus=2)

        np.testing.assert_allclose(p_ms, p_bf, atol=1e-8)
        np.testing.assert_allclose(gpu.profile, p_ms, atol=1e-8)
        np.testing.assert_allclose(tiled.profile, gpu.profile, atol=1e-10)
        assert np.mean(i_ms == i_bf) > 0.999
        assert np.mean(gpu.index == i_ms) > 0.999
        np.testing.assert_array_equal(tiled.index, gpu.index)

    def test_self_join_chain(self, small_pair):
        ref, _, m = small_pair
        p_bf, i_bf = brute_force_mdmp(ref, None, m)
        gpu = matrix_profile(ref, m=m, mode="FP64")
        mask = np.isfinite(p_bf)
        np.testing.assert_allclose(gpu.profile[mask], p_bf[mask], atol=1e-8)
        assert np.mean(gpu.index == i_bf) > 0.999

    def test_sine_data(self, bounded_pair):
        ref, qry, m = bounded_pair
        p_ms, i_ms = mstamp(ref, qry, m)
        gpu = matrix_profile(ref, qry, m=m, mode="FP64")
        np.testing.assert_allclose(gpu.profile, p_ms, atol=1e-8)


class TestStreamingVsNaive:
    def test_streaming_qt_matches_naive_at_arbitrary_rows(self, rng):
        # Validates the diagonal recurrence against direct dot products at
        # rows far from the restart point, in FP64.
        from repro.kernels.dist_calc import DistCalcKernel
        from repro.kernels.precalc import PrecalcKernel

        ref = rng.normal(size=(150, 2)).cumsum(axis=0)
        qry = rng.normal(size=(130, 2)).cumsum(axis=0)
        m = 12
        policy = policy_for("FP64")
        cfg = LaunchConfig(4, 64)
        tr = to_device_layout(ref, policy.storage)
        tq = to_device_layout(qry, policy.storage)
        pre = PrecalcKernel(config=cfg, policy=policy).run(tr, tq, m)
        dk = DistCalcKernel(config=cfg, policy=policy)
        dk.bind(pre)
        for i in range(tr.shape[1] - m + 1):
            dk.run(i)
            if i in (50, 100, 138):
                direct = naive_qt_row(tr, tq, m, i, policy)
                np.testing.assert_allclose(dk.qt, direct, rtol=1e-6, atol=1e-8)


class TestAnalyticCostsMatchExecution:
    """The perfmodel's analytic formulas must agree with the costs the
    executed kernels record (keeps paper-scale projections honest)."""

    @pytest.mark.parametrize("mode", ["FP64", "FP32", "FP16", "Mixed", "FP16C"])
    def test_recorded_equals_analytic(self, rng, mode):
        ref = rng.normal(size=(90, 5))
        qry = rng.normal(size=(70, 5))
        m = 8
        cfg = RunConfig(mode=mode)
        result = compute_multi_tile(ref, qry, m, cfg)
        policy = policy_for(mode)
        analytic = single_tile_costs(
            90 - m + 1,
            70 - m + 1,
            5,
            m,
            policy.itemsize,
            cfg.launch,
            precalc_itemsize=policy.precalc.itemsize,
            compensated=policy.compensated,
        )
        for name in ("dist_calc", "sort_&_incl_scan", "update_mat_prof"):
            got = result.costs[name]
            want = analytic[name]
            assert got.bytes_dram == pytest.approx(want.bytes_dram, rel=1e-9), name
            assert got.bytes_l1 == pytest.approx(want.bytes_l1, rel=1e-9), name
            assert got.flops == pytest.approx(want.flops, rel=1e-9), name
            assert got.syncs == want.syncs, name
            assert got.launches == want.launches, name
        # Precalculation: same formulas by construction.
        got = result.costs["precalculation"]
        want = analytic["precalculation"]
        assert got.flops == pytest.approx(want.flops, rel=1e-9)
        assert got.bytes_dram == pytest.approx(want.bytes_dram, rel=1e-9)


class TestEndToEndScenario:
    def test_motif_discovery_pipeline(self, rng):
        """A planted motif must be discovered through the full public API
        in every precision mode (the Fig. 3 claim)."""
        n, m = 700, 32
        ref = rng.normal(size=(n, 2))
        qry = rng.normal(size=(n, 2))
        wave = 5.0 * np.sin(np.linspace(0, 6.28, m))
        ref[100 : 100 + m, 0] += wave
        qry[400 : 400 + m, 0] += wave
        for mode in ("FP64", "FP32", "FP16", "Mixed", "FP16C"):
            r = matrix_profile(ref, qry, m=m, mode=mode)
            assert abs(int(r.index[400, 0]) - 100) <= 1, mode
