"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.tiling import assign_tiles, compute_tile_list, tile_grid_shape
from repro.gpu.kernel import LaunchConfig, grid_stride_chunks
from repro.kernels.sort_scan import bitonic_sort, fanin_inclusive_scan
from repro.precision.arithmetic import quantize, saturate_cast
from repro.precision.kahan import kahan_sum, naive_sum

finite_floats = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)


class TestBitonicSortProperties:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 40), st.integers(1, 8)),
            elements=finite_floats,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_sorted_and_permutation(self, plane):
        out = bitonic_sort(plane)
        # Sorted ascending along axis 0...
        assert np.all(np.diff(out, axis=0) >= 0)
        # ...and a permutation of the input per column.
        np.testing.assert_array_equal(np.sort(out, axis=0), np.sort(plane, axis=0))

    @given(
        arrays(np.float16, st.tuples(st.integers(1, 20), st.integers(1, 4)),
               elements=st.floats(-100, 100, allow_nan=False, width=16))
    )
    @settings(max_examples=40, deadline=None)
    def test_fp16_matches_npsort(self, plane):
        np.testing.assert_array_equal(bitonic_sort(plane), np.sort(plane, axis=0))


class TestScanProperties:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 33), st.integers(1, 6)),
            elements=finite_floats,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_fanin_equals_cumsum_in_fp64(self, plane):
        out = fanin_inclusive_scan(plane, np.dtype(np.float64))
        np.testing.assert_allclose(out, np.cumsum(plane, axis=0), rtol=1e-9, atol=1e-9)


class TestQuantizationProperties:
    @given(arrays(np.float64, st.integers(1, 50), elements=finite_floats))
    @settings(max_examples=60, deadline=None)
    def test_quantize_idempotent(self, x):
        once = quantize(x, np.float16)
        np.testing.assert_array_equal(once, quantize(once, np.float16))

    @given(arrays(np.float64, st.integers(1, 50), elements=st.floats(
        min_value=-1e9, max_value=1e9, allow_nan=False)))
    @settings(max_examples=60, deadline=None)
    def test_saturate_cast_always_finite(self, x):
        out = saturate_cast(x, np.float16)
        assert np.all(np.isfinite(out))

    @given(arrays(np.float64, st.integers(1, 50), elements=finite_floats))
    @settings(max_examples=60, deadline=None)
    def test_quantize_error_within_half_ulp(self, x):
        q = quantize(x, np.float32).astype(np.float64)
        spacing = np.spacing(np.abs(x).astype(np.float32)).astype(np.float64)
        assert np.all(np.abs(q - x) <= spacing)


class TestKahanProperties:
    @given(
        arrays(np.float64, st.integers(2, 400), elements=st.floats(0.001, 1.0))
    )
    @settings(max_examples=40, deadline=None)
    def test_kahan_never_worse_than_naive_fp16(self, x):
        exact = float(np.sum(x))
        err_naive = abs(float(naive_sum(x, np.dtype(np.float16))) - exact)
        err_kahan = abs(float(kahan_sum(x, np.dtype(np.float16))) - exact)
        # Allow half-ulp slack at the result's magnitude.
        slack = float(np.spacing(np.float16(exact)))
        assert err_kahan <= err_naive + slack


class TestTilingProperties:
    @given(
        st.integers(1, 300),
        st.integers(1, 300),
        st.integers(1, 64),
    )
    @settings(max_examples=80, deadline=None)
    def test_tiles_partition_matrix(self, n_r, n_q, n_tiles):
        tiles = compute_tile_list(n_r, n_q, n_tiles)
        cells = np.zeros((n_r, n_q), dtype=np.int8)
        for t in tiles:
            assert t.n_rows >= 1 and t.n_cols >= 1
            cells[t.row_start : t.row_stop, t.col_start : t.col_stop] += 1
        assert np.all(cells == 1)

    @given(st.integers(1, 2048))
    @settings(max_examples=80, deadline=None)
    def test_grid_shape_factorises(self, n):
        g_r, g_q = tile_grid_shape(n)
        assert g_r * g_q == n
        assert 1 <= g_r <= g_q

    @given(st.integers(1, 64), st.integers(1, 9))
    @settings(max_examples=60, deadline=None)
    def test_round_robin_balance(self, n_tiles, n_gpus):
        tiles = compute_tile_list(512, 512, n_tiles)
        counts = np.bincount(assign_tiles(tiles, n_gpus), minlength=n_gpus)
        assert counts.max() - counts.min() <= 1


class TestGridStrideProperties:
    @given(st.integers(0, 5000), st.integers(1, 16), st.integers(1, 512))
    @settings(max_examples=60, deadline=None)
    def test_chunks_tile_the_index_space(self, n_items, grid, block):
        cfg = LaunchConfig(grid=grid, block=block)
        chunks = list(grid_stride_chunks(n_items, cfg))
        total = sum(c.stop - c.start for c in chunks)
        assert total == n_items
        for a, b in zip(chunks, chunks[1:]):
            assert a.stop == b.start
