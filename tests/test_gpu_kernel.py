"""Unit tests for repro.gpu.kernel (launch config, grid-stride, costs)."""

import numpy as np
import pytest

from repro.gpu.device import A100, V100
from repro.gpu.kernel import Kernel, KernelCost, LaunchConfig, grid_stride_chunks


class TestLaunchConfig:
    def test_tuned_matches_paper(self):
        # Section IV: grid 64, block 2560 on V100; block 3456 on A100.
        v = LaunchConfig.tuned_for(V100)
        a = LaunchConfig.tuned_for(A100)
        assert (v.grid, v.block) == (64, 2560)
        assert (a.grid, a.block) == (64, 3456)

    def test_tuned_fills_every_warp_slot(self):
        cfg = LaunchConfig.tuned_for(A100)
        assert cfg.total_threads == A100.max_threads

    def test_occupancy_capped_at_one(self):
        cfg = LaunchConfig(grid=1000, block=1024)
        assert cfg.occupancy(V100) == 1.0

    def test_partial_occupancy(self):
        cfg = LaunchConfig(grid=64, block=1280)  # half of V100's capacity
        assert cfg.occupancy(V100) == pytest.approx(0.5)

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            LaunchConfig(grid=0, block=128)


class TestGridStrideChunks:
    def test_covers_everything_once(self):
        cfg = LaunchConfig(grid=2, block=8)  # 16 threads
        chunks = list(grid_stride_chunks(50, cfg))
        covered = np.concatenate([np.arange(c.start, c.stop) for c in chunks])
        assert np.array_equal(covered, np.arange(50))

    def test_chunk_count_is_rounds(self):
        cfg = LaunchConfig(grid=2, block=8)
        assert len(list(grid_stride_chunks(50, cfg))) == 4  # ceil(50/16)

    def test_empty(self):
        cfg = LaunchConfig(grid=1, block=1)
        assert list(grid_stride_chunks(0, cfg)) == []

    def test_negative_raises(self):
        cfg = LaunchConfig(grid=1, block=1)
        with pytest.raises(ValueError):
            list(grid_stride_chunks(-1, cfg))


class TestKernelCost:
    def test_add_merges(self):
        a = KernelCost(name="k", bytes_dram=10, flops=5, syncs=1, launches=1)
        b = KernelCost(name="k", bytes_dram=20, flops=5, syncs=2, launches=1)
        c = a + b
        assert c.bytes_dram == 30
        assert c.syncs == 3
        assert c.launches == 2

    def test_add_mismatched_names_raises(self):
        with pytest.raises(ValueError):
            KernelCost(name="a") + KernelCost(name="b")

    def test_scaled(self):
        cost = KernelCost(name="k", bytes_dram=100, flops=10, syncs=2, launches=1)
        s = cost.scaled(3)
        assert s.bytes_dram == 300
        assert s.launches == 3

    def test_kernel_accounting_helper(self):
        class Dummy(Kernel):
            pass

        k = Dummy(config=LaunchConfig(1, 32))
        k._account(bytes_dram=100.0, flops=7.0, launches=1)
        k._account(bytes_dram=50.0)
        assert k.cost.bytes_dram == 150.0
        assert k.cost.flops == 7.0
        assert k.cost.launches == 1

    def test_nbytes_helper(self):
        a = np.zeros((4, 4), dtype=np.float64)
        b = np.zeros(10, dtype=np.float16)
        assert Kernel.nbytes(a, b) == 128 + 20
