"""Unit tests for the intro-motivated application dataset generators."""

import numpy as np
import pytest

from repro.datasets.applications import (
    GRID_EVENT_TYPES,
    make_pmu_dataset,
    make_seismic_dataset,
)


class TestSeismic:
    @pytest.fixture(scope="class")
    def ds(self):
        return make_seismic_dataset(n=8000, d=3, event_length=200, snr=8.0, seed=4)

    def test_shapes(self, ds):
        assert ds.trace.shape == (8000, 3)
        assert len(ds.events) == 6  # 2 families x 3 events

    def test_families_balanced(self, ds):
        families = [e.family for e in ds.events]
        assert families.count(0) == 3
        assert families.count(1) == 3

    def test_events_visible_above_background(self, ds):
        # RMS in an event window clearly exceeds background RMS.
        quiet = np.delete(
            np.arange(ds.n),
            np.concatenate(
                [np.arange(e.position, e.position + 200) for e in ds.events]
            ),
        )
        bg_rms = np.sqrt(np.mean(ds.trace[quiet] ** 2))
        ev = ds.events[0]
        ev_rms = np.sqrt(np.mean(ds.trace[ev.position : ev.position + 200] ** 2))
        assert ev_rms > 1.3 * bg_rms

    def test_same_family_events_correlate(self, ds):
        by_family = {}
        for e in ds.events:
            by_family.setdefault(e.family, []).append(e)
        for family, events in by_family.items():
            a = ds.trace[events[0].position : events[0].position + 200, 0]
            b = ds.trace[events[1].position : events[1].position + 200, 0]
            corr = np.corrcoef(a, b)[0, 1]
            assert corr > 0.5, f"family {family}: corr={corr:.2f}"

    def test_matrix_profile_finds_family_repeats(self, ds):
        from repro import matrix_profile

        result = matrix_profile(ds.trace, m=200, mode="FP64")
        # For at least one event, its best self-join match is another
        # event of the same family.
        hits = 0
        for e in ds.events:
            match = int(result.index[e.position, 2])
            same = [
                o for o in ds.events
                if o.family == e.family and o.position != e.position
            ]
            if any(abs(match - o.position) < 100 for o in same):
                hits += 1
        assert hits >= len(ds.events) // 2

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            make_seismic_dataset(n=500, event_length=400)


class TestPMU:
    @pytest.fixture(scope="class")
    def ds(self):
        return make_pmu_dataset(n=6000, n_pmus=3, event_duration=120, seed=9)

    def test_shapes(self, ds):
        assert ds.measurements.shape == (6000, 6)
        assert len(ds.events) == 6  # 3 types x 2

    def test_event_types_covered(self, ds):
        kinds = {e.kind for e in ds.events}
        assert kinds == set(GRID_EVENT_TYPES)

    def test_voltage_baseline_per_unit(self, ds):
        # Magnitude channels hover around 1.0 p.u.
        assert np.abs(ds.measurements[:, 0].mean() - 1.0) < 0.05

    def test_sag_reduces_voltage(self, ds):
        sag = next(e for e in ds.events if e.kind == "voltage_sag")
        window = ds.measurements[sag.position : sag.position + sag.duration, 0]
        assert window.min() < ds.measurements[:, 0].mean() - 0.03

    def test_recurring_events_matched_by_profile(self, ds):
        from repro import matrix_profile

        result = matrix_profile(ds.measurements, m=120, mode="FP64")
        by_kind = {}
        for e in ds.events:
            by_kind.setdefault(e.kind, []).append(e)
        hits = 0
        for kind, events in by_kind.items():
            probe = events[0]
            match = int(result.index[probe.position, 1])
            if abs(match - events[1].position) < 60:
                hits += 1
        assert hits >= 2  # at least two of the three types re-identified

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            make_pmu_dataset(n=300, event_duration=150)
