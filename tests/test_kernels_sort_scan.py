"""Unit tests for the sort_&_incl_scan kernel (bitonic sort + fan-in scan)."""

import numpy as np
import pytest

from repro.gpu.kernel import LaunchConfig
from repro.gpu.perfmodel import sort_stage_count
from repro.kernels.sort_scan import SortScanKernel, bitonic_sort, fanin_inclusive_scan
from repro.precision.modes import policy_for

CFG = LaunchConfig(grid=4, block=64)


class TestBitonicSort:
    @pytest.mark.parametrize("d", [1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 64])
    def test_sorts_every_width(self, rng, d):
        x = rng.normal(size=(d, 9))
        out = bitonic_sort(x)
        np.testing.assert_array_equal(out, np.sort(x, axis=0))

    def test_stage_count_matches_model(self, rng):
        for d in (2, 4, 8, 16, 64, 5, 9):
            _, stages = bitonic_sort(rng.normal(size=(d, 3)), count_stages=True)
            assert stages == sort_stage_count(d)[0]

    def test_input_not_mutated(self, rng):
        x = rng.normal(size=(8, 4))
        copy = x.copy()
        bitonic_sort(x)
        np.testing.assert_array_equal(x, copy)

    def test_fp16_padding_uses_max(self, rng):
        # d=3 padded to 4 with the largest finite half; padding must never
        # leak into the first d sorted outputs.
        x = rng.normal(size=(3, 5)).astype(np.float16)
        out = bitonic_sort(x)
        assert out.shape == (3, 5)
        np.testing.assert_array_equal(out, np.sort(x, axis=0))

    def test_duplicates(self):
        x = np.array([[2.0], [1.0], [2.0], [1.0]])
        np.testing.assert_array_equal(bitonic_sort(x)[:, 0], [1, 1, 2, 2])


class TestFaninScan:
    @pytest.mark.parametrize("d", [1, 2, 4, 7, 16])
    def test_matches_cumsum_fp64(self, rng, d):
        x = rng.normal(size=(d, 6))
        out = fanin_inclusive_scan(x, np.dtype(np.float64))
        np.testing.assert_allclose(out, np.cumsum(x, axis=0), rtol=1e-12)

    def test_stage_count(self, rng):
        _, stages = fanin_inclusive_scan(
            rng.normal(size=(16, 2)), np.dtype(np.float64), count_stages=True
        )
        assert stages == 4

    def test_fanin_order_rounding_differs_from_sequential(self):
        # In fp16 the tree summation order produces different (generally
        # better) rounding than a sequential cumsum — this asserts we do
        # model the fan-in order, not a sequential scan.
        x = np.full((64, 1), 0.1, dtype=np.float16)
        fan = fanin_inclusive_scan(x, np.dtype(np.float16))[-1, 0]
        seq = np.cumsum(x, axis=0)[-1, 0]
        exact = 6.4
        assert abs(float(fan) - exact) <= abs(float(seq) - exact)


class TestSortScanKernel:
    def test_inclusive_average_semantics(self, rng):
        plane = rng.normal(size=(5, 7)) ** 2
        k = SortScanKernel(config=CFG, policy=policy_for("FP64"))
        out = k.run(plane)
        s = np.sort(plane, axis=0)
        expected = np.cumsum(s, axis=0) / np.arange(1, 6)[:, None]
        np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_first_row_is_min(self, rng):
        plane = rng.normal(size=(6, 9)) ** 2
        out = SortScanKernel(config=CFG, policy=policy_for("FP64")).run(plane)
        np.testing.assert_allclose(out[0], plane.min(axis=0), rtol=1e-12)

    def test_last_row_is_mean(self, rng):
        plane = rng.normal(size=(6, 9)) ** 2
        out = SortScanKernel(config=CFG, policy=policy_for("FP64")).run(plane)
        np.testing.assert_allclose(out[-1], plane.mean(axis=0), rtol=1e-12)

    def test_rows_monotone_in_k_is_false_in_general(self, rng):
        # The inclusive average over *sorted* values is non-decreasing in k.
        plane = rng.normal(size=(8, 20)) ** 2
        out = SortScanKernel(config=CFG, policy=policy_for("FP64")).run(plane)
        assert np.all(np.diff(out, axis=0) >= -1e-12)

    def test_cost_syncs(self, rng):
        plane = rng.normal(size=(8, 5))
        k = SortScanKernel(config=CFG, policy=policy_for("FP64"))
        k.run(plane)
        k.run(plane)
        sort_stages, scan_stages = sort_stage_count(8)
        assert k.cost.syncs == 2 * (sort_stages + scan_stages)
        assert k.cost.launches == 2

    def test_d1_passthrough(self, rng):
        plane = np.abs(rng.normal(size=(1, 11)))
        out = SortScanKernel(config=CFG, policy=policy_for("FP64")).run(plane)
        np.testing.assert_allclose(out, plane, rtol=1e-12)
