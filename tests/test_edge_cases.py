"""API-level edge cases and input hardening."""

import numpy as np
import pytest

from repro import matrix_profile
from repro.baselines.mstamp import mstamp


class TestInputValidation:
    def test_nan_input_rejected(self, rng):
        x = rng.normal(size=(100, 2))
        x[50, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            matrix_profile(x, m=8)

    def test_inf_input_rejected(self, rng):
        x = rng.normal(size=(100, 2))
        x[10, 1] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            matrix_profile(x, m=8)

    def test_integer_input_accepted(self):
        x = np.arange(200).reshape(100, 2) % 7
        r = matrix_profile(x, m=8)
        assert r.profile.dtype == np.float64

    def test_list_input_accepted(self):
        x = [[float(i % 5), float(i % 3)] for i in range(80)]
        r = matrix_profile(np.array(x), m=8)
        assert r.profile.shape == (73, 2)


class TestMinimalSizes:
    def test_m_equals_2(self, rng):
        x = rng.normal(size=(50, 2))
        r = matrix_profile(x, m=2)
        assert r.profile.shape == (49, 2)
        assert np.all(np.isfinite(r.profile))

    def test_two_segments_only(self, rng):
        ref = rng.normal(size=(9, 1))
        qry = rng.normal(size=(9, 1))
        r = matrix_profile(ref, qry, m=8)
        assert r.profile.shape == (2, 1)

    def test_single_query_segment(self, rng):
        ref = rng.normal(size=(50, 1))
        qry = rng.normal(size=(8, 1))
        r = matrix_profile(ref, qry, m=8)
        assert r.profile.shape == (1, 1)
        assert 0 <= r.index[0, 0] < 43

    def test_m_longer_than_series_rejected(self, rng):
        with pytest.raises(ValueError):
            matrix_profile(rng.normal(size=(10, 1)), m=20)


class TestDegenerateData:
    def test_constant_series_does_not_crash(self):
        x = np.ones((100, 2))
        r = matrix_profile(x, m=8)
        # Flat windows are ill-conditioned by definition; the contract is
        # "no crash, finite outputs", not meaningful distances.
        assert np.all(np.isfinite(r.profile))

    def test_piecewise_constant(self, rng):
        x = np.repeat(rng.normal(size=(10, 1)), 12, axis=0)
        r = matrix_profile(x, m=8)
        assert r.profile.shape == (113, 1)

    def test_tiny_amplitudes(self, rng):
        x = 1e-150 * rng.normal(size=(100, 1))
        r = matrix_profile(x, m=8, mode="FP64")
        assert np.all(np.isfinite(r.profile))


class TestExclusionZoneEdges:
    def test_zone_covering_everything_yields_no_matches(self, rng):
        x = rng.normal(size=(60, 1))
        r = matrix_profile(x, m=8, exclusion_zone=100)
        assert np.all(r.index == -1)

    def test_zero_zone_allows_adjacent(self, rng):
        x = rng.normal(size=(60, 1))
        r = matrix_profile(x, m=8, exclusion_zone=0)
        positions = np.arange(r.n_q_seg)
        valid = r.index[:, 0] >= 0
        # Only the exact self-match is excluded.
        assert np.all(r.index[valid, 0] != positions[valid])

    def test_ab_join_ignores_zone_by_default(self, rng):
        ref = rng.normal(size=(60, 1))
        # AB joins may legitimately match the same position index.
        r = matrix_profile(ref, ref.copy(), m=8)
        positions = np.arange(r.n_q_seg)
        assert np.mean(r.index[:, 0] == positions) > 0.9  # near-diagonal

    def test_explicit_zone_on_ab_join(self, rng):
        ref = rng.normal(size=(60, 1))
        r = matrix_profile(ref, ref.copy(), m=8, exclusion_zone=4)
        positions = np.arange(r.n_q_seg)
        valid = r.index[:, 0] >= 0
        assert np.all(np.abs(r.index[valid, 0] - positions[valid]) > 4)


class TestAsymmetricJoins:
    def test_reference_much_longer(self, rng):
        ref = rng.normal(size=(500, 2))
        qry = rng.normal(size=(40, 2))
        r = matrix_profile(ref, qry, m=16)
        assert r.profile.shape == (25, 2)
        assert np.all(r.index < 485)

    def test_query_much_longer_tiled(self, rng):
        ref = rng.normal(size=(40, 2))
        qry = rng.normal(size=(500, 2))
        single = matrix_profile(ref, qry, m=16)
        tiled = matrix_profile(ref, qry, m=16, n_tiles=8, n_gpus=3)
        np.testing.assert_array_equal(tiled.index, single.index)

    def test_more_tiles_than_rows(self, rng):
        ref = rng.normal(size=(24, 1))  # 9 reference segments
        qry = rng.normal(size=(200, 1))
        r = matrix_profile(ref, qry, m=16, n_tiles=64)
        p, i = mstamp(ref, qry, 16)
        np.testing.assert_allclose(r.profile, p, atol=1e-10)

    def test_d1_multi_tile_fast_path(self, rng):
        x = rng.normal(size=(300, 1)).cumsum(axis=0)
        a = matrix_profile(x, m=16, n_tiles=9)
        b = matrix_profile(x, m=16)
        np.testing.assert_array_equal(a.index, b.index)


class TestConfigEdges:
    def test_one_stream(self, rng):
        x = rng.normal(size=(200, 2))
        r = matrix_profile(x, m=16, n_tiles=4, n_streams=1)
        assert r.timeline.makespan > 0

    def test_more_gpus_than_tiles(self, rng):
        x = rng.normal(size=(200, 2))
        r = matrix_profile(x, m=16, n_tiles=2, n_gpus=8)
        used = {op.device_index for op in r.timeline.ops}
        assert used == {0, 1}  # only two devices ever see work

    def test_v100_device(self, rng):
        x = rng.normal(size=(200, 2))
        a100 = matrix_profile(x, m=16, device="A100")
        v100 = matrix_profile(x, m=16, device="V100")
        np.testing.assert_array_equal(a100.index, v100.index)  # same math
        assert v100.modeled_time > a100.modeled_time  # older device slower
