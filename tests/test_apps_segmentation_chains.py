"""Unit tests for FLUSS segmentation and time-series chains."""

import numpy as np
import pytest

from repro import matrix_profile
from repro.apps.chains import (
    anchored_chain,
    left_right_profile,
    unanchored_chain,
)
from repro.apps.segmentation import (
    arc_curve,
    corrected_arc_curve,
    find_regime_changes,
    segment_regimes,
)


class TestArcCurve:
    def test_simple_arcs(self):
        # 0 <-> 3 and 1 <-> 2: the long arcs (0,3) cover positions 1 and
        # 2; the adjacent arcs (1,2) cover nothing strictly between.
        index = np.array([3, 2, 1, 0])
        arcs = arc_curve(index)
        assert arcs[0] == 0  # nothing crosses before position 1
        assert arcs[1] == 2  # the two directed long arcs
        assert arcs[2] == 2
        assert arcs.shape == (4,)

    def test_negative_indices_skipped(self):
        index = np.array([-1, -1, -1, -1])
        assert np.all(arc_curve(index) == 0)

    def test_1d_required(self):
        with pytest.raises(ValueError):
            arc_curve(np.zeros((3, 2), dtype=int))

    def test_cac_range(self, rng):
        index = rng.integers(0, 200, size=200)
        cac = corrected_arc_curve(index)
        assert np.all(cac >= 0)
        assert np.all(cac <= 1)
        assert cac[0] == 1.0 and cac[-1] == 1.0  # pinned edges

    def test_cac_too_short(self):
        with pytest.raises(ValueError):
            corrected_arc_curve(np.array([0, 1]))


class TestFindRegimes:
    def test_picks_deepest_minima(self):
        cac = np.ones(100)
        cac[30] = 0.1
        cac[70] = 0.2
        assert find_regime_changes(cac, 3, exclusion=10) == [30, 70]

    def test_exclusion_suppresses_neighbours(self):
        cac = np.ones(100)
        cac[30] = 0.1
        cac[33] = 0.15  # within exclusion of 30
        cac[70] = 0.3
        assert find_regime_changes(cac, 3, exclusion=10) == [30, 70]

    def test_single_regime_no_boundaries(self):
        assert find_regime_changes(np.ones(50), 1, exclusion=5) == []


class TestSegmentRegimes:
    def test_two_regime_signal(self, rng):
        # Regime A: fast sine; regime B: slow sawtooth — a clean change.
        t = np.arange(600)
        a = np.sin(2 * np.pi * t[:300] / 10)
        b = ((t[300:] % 40) / 40.0) * 2 - 1
        x = np.concatenate([a, b]) + 0.05 * rng.normal(size=600)
        result = matrix_profile(x, m=25, mode="FP64")
        seg = segment_regimes(result, n_regimes=2)
        assert len(seg.boundaries) == 1
        assert abs(seg.boundaries[0] - 300) < 50
        assert seg.regime_of(100) == 0
        assert seg.regime_of(500) == 1

    def test_cac_dips_at_boundary(self, rng):
        t = np.arange(600)
        a = np.sin(2 * np.pi * t[:300] / 10)
        b = np.sin(2 * np.pi * t[300:] / 37)
        x = np.concatenate([a, b]) + 0.05 * rng.normal(size=600)
        result = matrix_profile(x, m=25, mode="FP64")
        seg = segment_regimes(result, n_regimes=2)
        centre = seg.cac[250:330].min()
        elsewhere = np.median(seg.cac[50:200])
        assert centre < elsewhere * 0.7


class TestLeftRightProfile:
    @pytest.fixture(scope="class")
    def lr(self):
        rng = np.random.default_rng(12)
        x = rng.normal(size=(250, 1)).cumsum(axis=0)
        return left_right_profile(x, 16)

    def test_direction_constraints(self, lr):
        pos = np.arange(lr.n_seg)
        valid_l = lr.left_index >= 0
        assert np.all(lr.left_index[valid_l] < pos[valid_l])
        valid_r = lr.right_index >= 0
        assert np.all(lr.right_index[valid_r] > pos[valid_r])

    def test_min_of_both_is_full_profile(self, lr):
        rng = np.random.default_rng(12)
        x = rng.normal(size=(250, 1)).cumsum(axis=0)
        full = matrix_profile(x, m=16, mode="FP64")
        combined = np.minimum(lr.left_profile, lr.right_profile)
        np.testing.assert_allclose(combined, full.profile[:, 0], atol=1e-10)

    def test_first_position_has_no_left(self, lr):
        assert lr.left_index[0] == -1
        assert lr.right_index[-1] == -1

    def test_k_validation(self, rng):
        with pytest.raises(ValueError):
            left_right_profile(rng.normal(size=(100, 2)), 8, k=5)


class TestChains:
    def test_drifting_pattern_forms_chain(self, rng):
        # A wave whose frequency drifts: occurrence t matches occurrence
        # t+1 best in each direction -> a long chain.
        m = 32
        n_occ = 6
        x = 0.1 * rng.normal(size=(n_occ * 3 * m, 1))
        positions = []
        for t in range(n_occ):
            pos = t * 3 * m + m
            freq = 2.0 + 0.15 * t  # slow drift
            x[pos : pos + m, 0] += np.sin(
                2 * np.pi * freq * np.arange(m) / m
            )
            positions.append(pos)
        lr = left_right_profile(x, m)
        chain = unanchored_chain(lr)
        assert len(chain) >= n_occ - 2
        # Chain members sit at (or within a few samples of) occurrences.
        for link in chain:
            assert min(abs(link - p) for p in positions) < m

    def test_anchored_chain_starts_at_anchor(self, rng):
        x = rng.normal(size=(150, 1)).cumsum(axis=0)
        lr = left_right_profile(x, 12)
        chain = anchored_chain(lr, 5)
        assert chain[0] == 5
        assert all(a < b for a, b in zip(chain, chain[1:]))

    def test_anchor_out_of_range(self, rng):
        lr = left_right_profile(rng.normal(size=(100, 1)), 8)
        with pytest.raises(ValueError):
            anchored_chain(lr, 1000)
