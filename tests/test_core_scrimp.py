"""Unit tests for the SCRIMP-style diagonal traversal."""

import numpy as np
import pytest

from repro import matrix_profile
from repro.core.config import RunConfig
from repro.core.scrimp import (
    _diagonal_cells,
    diagonal_count,
    diagonal_matrix_profile,
)


class TestDiagonalGeometry:
    def test_count(self):
        assert diagonal_count(5, 7) == 11
        assert diagonal_count(1, 1) == 1

    def test_cells_cover_matrix_exactly_once(self):
        n_r, n_q = 6, 4
        seen = np.zeros((n_r, n_q), dtype=int)
        for k in range(diagonal_count(n_r, n_q)):
            i0, j0, length = _diagonal_cells(k, n_r, n_q)
            for t in range(length):
                seen[i0 + t, j0 + t] += 1
        assert np.all(seen == 1)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            _diagonal_cells(99, 3, 3)

    def test_main_diagonal_longest(self):
        n_r, n_q = 5, 8
        lengths = [
            _diagonal_cells(k, n_r, n_q)[2]
            for k in range(diagonal_count(n_r, n_q))
        ]
        assert max(lengths) == min(n_r, n_q)


class TestDiagonalProfile:
    @pytest.fixture(scope="class")
    def pair(self):
        rng = np.random.default_rng(8)
        ref = rng.normal(size=(150, 3)).cumsum(axis=0)
        qry = rng.normal(size=(130, 3)).cumsum(axis=0)
        return ref, qry, 12

    def test_full_run_matches_row_order(self, pair):
        ref, qry, m = pair
        row_order = matrix_profile(ref, qry, m=m, mode="FP64")
        diag = diagonal_matrix_profile(ref, qry, m)
        np.testing.assert_allclose(diag.profile, row_order.profile, atol=1e-8)
        assert np.mean(diag.index == row_order.index) > 0.99

    def test_self_join_matches(self, pair):
        ref, _, m = pair
        row_order = matrix_profile(ref, m=m, mode="FP64")
        diag = diagonal_matrix_profile(ref, None, m)
        np.testing.assert_allclose(diag.profile, row_order.profile, atol=1e-8)
        assert np.mean(diag.index == row_order.index) > 0.99

    def test_sampled_run_is_upper_bound(self, pair):
        ref, qry, m = pair
        exact = diagonal_matrix_profile(ref, qry, m)
        approx = diagonal_matrix_profile(ref, qry, m, fraction=0.3, seed=5)
        assert np.all(approx.profile >= exact.profile - 1e-9)

    def test_sampling_converges_fast(self, pair):
        # SCRIMP's selling point: half the diagonals nearly finish the job.
        ref, qry, m = pair
        exact = diagonal_matrix_profile(ref, qry, m)
        half = diagonal_matrix_profile(ref, qry, m, fraction=0.5, seed=7)
        rel = np.abs(half.profile - exact.profile) / np.maximum(exact.profile, 1e-9)
        # Dominates the linear baseline even on random-walk data (the
        # hard case; structured data converges far faster).
        assert np.mean(rel < 0.05) > 0.55

    def test_reduced_precision_runs(self, pair):
        ref, qry, m = pair
        r = diagonal_matrix_profile(ref, qry, m, config=RunConfig(mode="FP32"))
        assert np.all(np.isfinite(r.profile))

    def test_invalid_fraction(self, pair):
        ref, qry, m = pair
        with pytest.raises(ValueError):
            diagonal_matrix_profile(ref, qry, m, fraction=1.5)

    def test_dimension_mismatch(self, rng):
        # The unified JobSpec validation message shared by every entry point.
        with pytest.raises(ValueError, match="reference has d=2 but query d=3"):
            diagonal_matrix_profile(
                rng.normal(size=(60, 2)), rng.normal(size=(60, 3)), 8
            )
