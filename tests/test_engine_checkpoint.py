"""Checkpoint/resume: the tile journal and its bit-identity contract.

A killed run resumed from its journal recomputes zero journaled tiles
and produces a profile bit-identical to the uninterrupted run; the
crash window between the state snapshot and the log line costs exactly
one re-merged tile and stays bit-identical (the strict-< merge is
idempotent).
"""

import json

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.multi_tile import compute_multi_tile
from repro.engine import JobSpec, RunJournal, TileObserver, resume_plan
from repro.engine.checkpoint import JOURNAL_VERSION


class Counter(TileObserver):
    def __init__(self):
        self.started = []

    def on_tile_start(self, tile, gpu_id, attempt):
        self.started.append(tile.tile_id)


class KillPlan:
    """fault_plan stand-in that kills the run after ``allow`` tile starts.

    KeyboardInterrupt is deliberately not an engine-handled error: it
    rips through execute_plan exactly like a real SIGINT would.
    """

    corruptor = None

    def __init__(self, allow):
        self.allow = allow
        self.seen = 0

    def injector(self, label, tile, gpu_id, attempt):
        self.seen += 1
        if self.seen > self.allow:
            raise KeyboardInterrupt("killed mid-run")


def _series(n=220, d=2, seed=5):
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 16.0 * np.pi, n)
    base = np.sin(t)[:, None] * np.linspace(0.5, 1.5, d)
    return base + 0.1 * rng.normal(size=(n, d))


@pytest.fixture
def config():
    return RunConfig(mode="FP32", n_tiles=4, n_gpus=2)


class TestJournalLifecycle:
    def test_full_run_journal_contents(self, tmp_path, config):
        path = tmp_path / "journal"
        result = compute_multi_tile(_series(), None, 16, config, journal=path)
        journal = RunJournal.open(path)
        meta = journal.meta()
        assert meta["version"] == JOURNAL_VERSION
        assert meta["m"] == 16
        assert len(meta["tiles"]) == result.n_tiles
        assert journal.series_path.exists()
        assert journal.state_path.exists()
        records = journal.completed_records()
        assert len(records) == result.n_tiles
        assert {r["tile_id"] for r in records} == set(range(result.n_tiles))
        assert all(r["mode"] == "FP32" for r in records)

    def test_create_refuses_existing_journal(self, tmp_path, config):
        path = tmp_path / "journal"
        compute_multi_tile(_series(), None, 16, config, journal=path)
        spec = JobSpec.from_arrays(_series(), None, 16, config)
        with pytest.raises(FileExistsError, match="already exists"):
            RunJournal.create(path, spec, spec.plan())

    def test_open_missing_and_bad_version(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no journal"):
            RunJournal.open(tmp_path / "nope")
        path = tmp_path / "future"
        path.mkdir()
        (path / "meta.json").write_text(json.dumps({"version": 999}))
        with pytest.raises(ValueError, match="version"):
            RunJournal.open(path)

    def test_layout_only_spec_cannot_be_journaled(self, config):
        spec = JobSpec.from_arrays(_series(), None, 16, config)
        tr, tq = spec.layouts()
        layouts_only = JobSpec.from_layouts(tr, tq, 16, config)
        with pytest.raises(ValueError, match="host series"):
            RunJournal.create("/nonexistent", layouts_only, layouts_only.plan())


class TestKillAndResume:
    def _kill_mid_run(self, tmp_path, config, series, allow=2):
        path = tmp_path / "journal"
        with pytest.raises(KeyboardInterrupt):
            compute_multi_tile(
                series, None, 16, config,
                journal=path, fault_plan=KillPlan(allow),
            )
        return path

    def test_resume_recomputes_zero_journaled_tiles(self, tmp_path, config):
        series = _series()
        uninterrupted = compute_multi_tile(series, None, 16, config)
        path = self._kill_mid_run(tmp_path, config, series, allow=2)
        assert len(RunJournal.open(path).completed_records()) == 2

        counter = Counter()
        resumed = resume_plan(path, observers=(counter,))
        # Only the two missing tiles executed...
        assert sorted(counter.started) == [2, 3]
        assert resumed.resumed_tiles == 2
        # ...and the merged output is bit-identical to the run that was
        # never interrupted.
        assert np.array_equal(resumed.profile, uninterrupted.profile)
        assert np.array_equal(resumed.index, uninterrupted.index)
        assert resumed.merge_time == uninterrupted.merge_time
        assert resumed.costs.keys() == uninterrupted.costs.keys()
        for name, cost in resumed.costs.items():
            assert cost.flops == uninterrupted.costs[name].flops

    def test_resume_of_complete_run_executes_nothing(self, tmp_path, config):
        series = _series()
        path = tmp_path / "journal"
        full = compute_multi_tile(series, None, 16, config, journal=path)
        counter = Counter()
        resumed = resume_plan(path, observers=(counter,))
        assert counter.started == []
        assert resumed.resumed_tiles == full.n_tiles
        assert np.array_equal(resumed.profile, full.profile)
        assert np.array_equal(resumed.index, full.index)

    def test_kill_before_first_tile_resumes_from_zero(self, tmp_path, config):
        series = _series()
        uninterrupted = compute_multi_tile(series, None, 16, config)
        path = self._kill_mid_run(tmp_path, config, series, allow=0)
        journal = RunJournal.open(path)
        assert journal.completed_records() == []
        assert not journal.state_path.exists()
        resumed = resume_plan(path)
        assert resumed.resumed_tiles == 0
        assert np.array_equal(resumed.profile, uninterrupted.profile)

    def test_crash_window_remerge_is_idempotent(self, tmp_path, config):
        # Simulate the crash *between* the state snapshot and the log
        # line by deleting the last log line: the snapshot then already
        # holds that tile's merge, and resume re-executes + re-merges it.
        series = _series()
        uninterrupted = compute_multi_tile(series, None, 16, config)
        path = tmp_path / "journal"
        compute_multi_tile(series, None, 16, config, journal=path)
        journal = RunJournal.open(path)
        lines = journal.log_path.read_text().splitlines()
        dropped = json.loads(lines[-1])
        journal.log_path.write_text("\n".join(lines[:-1]) + "\n")

        counter = Counter()
        resumed = resume_plan(path, observers=(counter,))
        # Exactly the in-flight tile re-executed...
        assert counter.started == [dropped["tile_id"]]
        assert resumed.resumed_tiles == len(lines) - 1
        # ...and the repeated identical merge changed nothing.
        assert np.array_equal(resumed.profile, uninterrupted.profile)
        assert np.array_equal(resumed.index, uninterrupted.index)

    def test_resume_is_itself_resumable(self, tmp_path, config):
        series = _series()
        uninterrupted = compute_multi_tile(series, None, 16, config)
        path = self._kill_mid_run(tmp_path, config, series, allow=1)
        with pytest.raises(KeyboardInterrupt):
            resume_plan(path, fault_plan=KillPlan(allow=1))
        assert len(RunJournal.open(path).completed_records()) == 2
        resumed = resume_plan(path)
        assert resumed.resumed_tiles == 2
        assert np.array_equal(resumed.profile, uninterrupted.profile)

    def test_resume_carries_journaled_escalations(self, tmp_path):
        from repro.engine import HealthPolicy
        from repro.engine.faults import FaultPlan
        from repro.precision.modes import PrecisionMode

        config = RunConfig(mode="FP16", n_tiles=4, n_gpus=2)
        series = _series()
        path = tmp_path / "journal"
        first = compute_multi_tile(
            series, None, 16, config, journal=path,
            health=HealthPolicy(),
            fault_plan=FaultPlan(seed=11, corrupt_rate=1.0, corrupt_count=2),
        )
        assert first.escalations
        resumed = resume_plan(path)
        assert resumed.escalations == {
            tid: PrecisionMode.MIXED for tid in range(first.n_tiles)
        }
