"""Unit tests for the application layer (classifier and motif mining)."""

import numpy as np
import pytest

from repro import matrix_profile
from repro.apps.classifier import classify_hpcoda, nn_classify, smooth_predictions
from repro.apps.motif import top_discords, top_motifs
from repro.datasets.hpcoda import make_hpcoda_dataset
from repro.datasets.synthetic import make_stress_dataset


class TestNNClassify:
    def test_label_transfer(self):
        index = np.array([[0], [2], [1]])
        labels = np.array([10, 20, 30])
        np.testing.assert_array_equal(nn_classify(index, labels, 1), [10, 30, 20])

    def test_unmatched_predicts_minus_one(self):
        index = np.array([[-1], [0]])
        labels = np.array([5, 6])
        np.testing.assert_array_equal(nn_classify(index, labels, 1), [-1, 5])


class TestSmoothing:
    def test_removes_isolated_flip(self):
        preds = np.array([1, 1, 1, 2, 1, 1, 1])
        out = smooth_predictions(preds, 5)
        assert np.all(out == 1)

    def test_window_one_is_identity(self):
        preds = np.array([1, 2, 3])
        np.testing.assert_array_equal(smooth_predictions(preds, 1), preds)

    def test_preserves_long_blocks(self):
        preds = np.array([0] * 20 + [1] * 20)
        out = smooth_predictions(preds, 7)
        assert out[5] == 0 and out[35] == 1


class TestClassifyHPCODA:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_hpcoda_dataset(n_per_half=1024, d=8, phase_length=(96, 192), seed=11)

    def test_fp64_pipeline_accuracy(self, dataset):
        out = classify_hpcoda(dataset, m=32, mode="FP64")
        assert out.accuracy > 0.8
        assert out.f_score > 0.7
        assert out.runtime > 0

    def test_mixed_mode_close_to_fp64(self, dataset):
        base = classify_hpcoda(dataset, m=32, mode="FP64")
        mixed = classify_hpcoda(dataset, m=32, mode="Mixed")
        assert mixed.f_score > base.f_score - 0.15

    def test_prediction_shapes(self, dataset):
        out = classify_hpcoda(dataset, m=32)
        assert out.predictions.shape == out.truth.shape


class TestMotifMining:
    @pytest.fixture(scope="class")
    def result(self):
        ds = make_stress_dataset(n=900, d=3, m=32, amplitude=6.0, seed=21)
        res = matrix_profile(ds.reference, ds.query, m=32, mode="FP64")
        return ds, res

    def test_top_motif_is_an_embedded_pair(self, result):
        ds, res = result
        motifs = top_motifs(res, k=1, count=3)
        planted = {(mo.query_pos, mo.ref_pos) for mo in ds.motifs}
        hit = any(
            any(abs(m.query_pos - q) <= 1 and abs(m.ref_pos - r) <= 1 for q, r in planted)
            for m in motifs
        )
        assert hit

    def test_motifs_separated(self, result):
        _, res = result
        motifs = top_motifs(res, k=1, count=5)
        positions = [m.query_pos for m in motifs]
        for a in range(len(positions)):
            for b in range(a + 1, len(positions)):
                assert abs(positions[a] - positions[b]) >= res.m

    def test_motifs_sorted_by_distance(self, result):
        _, res = result
        motifs = top_motifs(res, k=1, count=5)
        dists = [m.distance for m in motifs]
        assert dists == sorted(dists)

    def test_discords_are_worst_matches(self, result):
        _, res = result
        discords = top_discords(res, k=1, count=3)
        motifs = top_motifs(res, k=1, count=1)
        assert discords[0].distance > motifs[0].distance

    def test_discords_sorted_descending(self, result):
        _, res = result
        discords = top_discords(res, k=1, count=4)
        dists = [m.distance for m in discords]
        assert dists == sorted(dists, reverse=True)
