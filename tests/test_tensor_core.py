"""Tensor-core execution path: kernel parity, fused sort, backend routing,
escalation composition and the autotuner's backend axis."""

import numpy as np
import pytest

from repro.autotune import AutoTuner, HostCostModel
from repro.baselines.brute_force import znormalized_distance_matrix
from repro.core.config import RunConfig
from repro.core.multi_tile import compute_multi_tile
from repro.core.single_tile import compute_single_tile
from repro.engine.backends import (
    NumericBackend,
    TensorCoreBackend,
    backend_for,
    run_tile,
)
from repro.engine.faults import FaultPlan
from repro.engine.health import HealthPolicy
from repro.gpu.device import SKYLAKE16
from repro.gpu.occupancy import launch_for_full_occupancy
from repro.kernels.layout import to_device_layout
from repro.kernels.precalc import PrecalcKernel
from repro.kernels.sort_scan import _batcher_pairs
from repro.kernels.tc_gemm import TcGemmKernel
from repro.kernels.update import UpdateKernel
from repro.precision.errors import tc_gemm_error_bound
from repro.precision.modes import TENSOR_CORE_MODES, PrecisionMode, policy_for

N_SEG = 96
D = 4
M = 16
BLOCK = 32
LAUNCH = launch_for_full_occupancy("a100")


def _series(seed, length, d=D):
    rng = np.random.default_rng(seed)
    t = np.arange(length)[:, None]
    base = np.sin(2 * np.pi * t / (7.0 + np.arange(d)[None, :]))
    return base + 0.35 * rng.standard_normal((length, d))


def _tc_corr_error(mode, ser_r, ser_q):
    """Max |corr - FP64 oracle| of the tensor-core dist_calc output."""
    policy = policy_for(mode)
    tr = to_device_layout(ser_r, policy.storage)
    tq = to_device_layout(ser_q, policy.storage)
    n_r = tr.shape[1] - M + 1
    ref = znormalized_distance_matrix(ser_r, ser_q, M)
    ref_corr = 1.0 - ref.transpose(2, 0, 1) ** 2 / (2.0 * M)
    dist = TcGemmKernel(config=LAUNCH, policy=policy)
    dist.bind(PrecalcKernel(config=LAUNCH, policy=policy).run(tr, tq, M))
    err = 0.0
    for i0 in range(0, n_r, BLOCK):
        b = min(BLOCK, n_r - i0)
        blk = dist.run_block(i0, b, None).astype(np.float64)
        corr = 1.0 - blk**2 / (2.0 * M)
        err = max(err, float(np.nanmax(np.abs(corr - ref_corr[:, i0:i0 + b]))))
    return err, dist


# ---------------------------------------------------------------------------
# Kernel parity against the brute-force oracle


class TestTcGemmParity:
    @pytest.mark.parametrize("mode", ["Mixed", "FP16C"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_self_join_within_bound(self, mode, seed):
        ser = _series(seed, N_SEG + M - 1)
        err, _ = _tc_corr_error(mode, ser, ser)
        assert err <= tc_gemm_error_bound(N_SEG, M, mode, row_block=BLOCK)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_ab_join_within_bound(self, seed):
        ser_r = _series(seed, N_SEG + M - 1)
        ser_q = _series(seed + 100, N_SEG + M - 1)
        err, _ = _tc_corr_error("Mixed", ser_r, ser_q)
        assert err <= tc_gemm_error_bound(N_SEG, M, "Mixed", row_block=BLOCK)

    def test_cost_record_marks_tensor_core(self):
        ser = _series(3, N_SEG + M - 1)
        _, dist = _tc_corr_error("Mixed", ser, ser)
        assert dist.cost.tensor_core
        # One modelled launch per super-step panel, not per row.
        assert dist.cost.launches == -(-N_SEG // BLOCK)

    @pytest.mark.parametrize("mode", ["FP64", "FP32", "FP16"])
    def test_rejects_non_tc_modes(self, mode):
        policy = policy_for(mode)
        ser = _series(0, N_SEG + M - 1)
        tr = to_device_layout(ser, policy.storage)
        kern = TcGemmKernel(config=LAUNCH, policy=policy)
        pre = PrecalcKernel(config=LAUNCH, policy=policy).run(tr, tr, M)
        with pytest.raises(ValueError, match="tensor-core"):
            kern.bind(pre)


class TestQuantiseF16:
    def test_matches_astype_roundtrip(self):
        rng = np.random.default_rng(0)
        # Normals, subnormal-landing products, overflow, inf/nan, zeros.
        vals = np.concatenate([
            rng.standard_normal(4096),
            rng.standard_normal(4096) * 2.0**-20,
            rng.standard_normal(16) * 1e6,
            [np.inf, -np.inf, np.nan, 0.0, -0.0, 65504.0, -65504.0, 65520.0],
        ]).astype(np.float32)
        buf = vals.copy().reshape(1, -1)
        kern = TcGemmKernel(config=LAUNCH, policy=policy_for("Mixed"))
        kern._quantise_f16(buf)
        with np.errstate(over="ignore"):
            ref = vals.astype(np.float16).astype(np.float32)
        # Bit-exact modulo the sign of zero (+ 0.0 normalises -0 to +0).
        assert np.array_equal(buf.ravel() + 0.0, ref + 0.0, equal_nan=True)


class TestBatcherNetwork:
    @pytest.mark.parametrize("d", range(1, 9))
    def test_zero_one_principle_exhaustive(self, d):
        pairs = _batcher_pairs(d)
        for bits in range(2**d):
            a = np.array([(bits >> i) & 1 for i in range(d)], dtype=np.float32)
            for i, j in pairs:
                if a[i] > a[j]:
                    a[i], a[j] = a[j], a[i]
            assert (np.diff(a) >= 0).all(), (d, bits)

    @pytest.mark.parametrize("d", [10, 13, 16])
    def test_sorts_random_inputs(self, d):
        rng = np.random.default_rng(d)
        pairs = _batcher_pairs(d)
        for _ in range(50):
            a = rng.standard_normal(d).astype(np.float32)
            ref = np.sort(a)
            for i, j in pairs:
                if a[i] > a[j]:
                    a[i], a[j] = a[j], a[i]
            assert np.array_equal(a, ref)


# ---------------------------------------------------------------------------
# Reduce-before-narrow update path


class TestUpdateWideBlock:
    def _blocks(self, seed=0, d=3, b=8, n_q=40):
        rng = np.random.default_rng(seed)
        # f16-representable values so wide and narrow reductions agree
        # bit-for-bit (the wide path's win on non-representable values is
        # covered by the oracle parity tests).
        narrow = np.abs(rng.standard_normal((d, b, n_q))).astype(np.float16)
        return narrow.astype(np.float32), narrow

    @pytest.mark.parametrize("masked", [False, True])
    def test_wide_block_matches_narrow(self, masked):
        wide, narrow = self._blocks()
        d, b, n_q = wide.shape
        policy = policy_for("Mixed")
        mask = None
        if masked:
            cols = np.arange(n_q)
            mask = np.abs(cols[None, :] - np.arange(b)[:, None]) <= 4
        k_w = UpdateKernel(config=LAUNCH, policy=policy)
        k_n = UpdateKernel(config=LAUNCH, policy=policy)
        k_w.allocate(d, n_q)
        k_n.allocate(d, n_q)
        k_w.run_block(wide, 0, mask=mask)
        k_n.run_block(narrow, 0, mask=mask)
        assert k_w.profile.dtype == policy.storage
        assert np.array_equal(
            k_w.profile.view(np.uint8), k_n.profile.view(np.uint8)
        )
        assert np.array_equal(k_w.indices, k_n.indices)

    def test_wide_block_input_not_aliased_into_profile(self):
        wide, _ = self._blocks(seed=1)
        policy = policy_for("Mixed")
        kern = UpdateKernel(config=LAUNCH, policy=policy)
        kern.allocate(*wide.shape[::2])
        kern.run_block(wide, 0)
        assert kern.profile.dtype == np.float16


# ---------------------------------------------------------------------------
# Backend routing and config plumbing


class TestBackendRouting:
    def test_tensor_core_honoured_for_tc_modes(self):
        for mode in TENSOR_CORE_MODES:
            cfg = RunConfig(mode=mode, backend="tensor_core")
            backend, reason = backend_for(cfg)
            assert isinstance(backend, TensorCoreBackend)
            assert reason is None

    @pytest.mark.parametrize("mode", ["FP64", "FP32", "FP16"])
    def test_non_tc_mode_falls_back_with_reason(self, mode):
        cfg = RunConfig(mode=mode, backend="tensor_core")
        backend, reason = backend_for(cfg)
        assert type(backend) is NumericBackend
        assert "no tensor-core formulation" in reason

    def test_device_without_tensor_cores_falls_back(self):
        cfg = RunConfig(
            mode="Mixed", device="skylake16", backend="tensor_core"
        )
        backend, reason = backend_for(cfg)
        assert type(backend) is NumericBackend
        assert "no tensor cores" in reason

    def test_numeric_request_never_reports_fallback(self):
        backend, reason = backend_for(RunConfig(mode="FP64"))
        assert type(backend) is NumericBackend
        assert reason is None

    def test_run_tile_rejects_tc_for_ineligible_mode(self):
        policy = policy_for("FP32")
        tr = to_device_layout(_series(0, 64 + M - 1), policy.storage)
        with pytest.raises(ValueError, match="tensor-core main loop"):
            run_tile(tr, tr, M, policy, LAUNCH, main_loop="tensor_core")

    def test_single_tile_records_backend(self):
        ser = _series(5, 120)
        res = compute_single_tile(
            ser, None, M, RunConfig(mode="Mixed", backend="tensor_core")
        )
        assert res.backend == "tensor_core"
        assert res.backend_fallback_reason is None
        assert np.isfinite(res.profile).all()

    def test_single_tile_records_fallback_reason(self):
        ser = _series(5, 120)
        res = compute_single_tile(
            ser, None, M, RunConfig(mode="FP64", backend="tensor_core")
        )
        assert res.backend == "numeric"
        assert "no tensor-core formulation" in res.backend_fallback_reason

    def test_multi_tile_records_backend(self):
        ser = _series(6, 260)
        res = compute_multi_tile(
            ser, None, M, RunConfig(mode="Mixed", n_tiles=2,
                                    backend="tensor_core")
        )
        assert res.backend == "tensor_core"
        assert res.backend_fallback_reason is None
        assert np.isfinite(res.profile).all()
        assert (res.index >= 0).all()


class TestRunConfigBackend:
    def test_round_trip(self):
        cfg = RunConfig(mode="Mixed", backend="tensor_core")
        clone = RunConfig.from_dict(cfg.to_dict())
        assert clone.backend == "tensor_core"
        assert clone.cache_key() == cfg.cache_key()

    def test_backend_is_numerics_visible_in_cache_key(self):
        vec = RunConfig(mode="Mixed")
        tc = RunConfig(mode="Mixed", backend="tensor_core")
        assert vec.cache_key() != tc.cache_key()

    def test_default_backend_is_numeric(self):
        assert RunConfig().backend == "numeric"
        assert RunConfig.from_dict(RunConfig().to_dict()).backend == "numeric"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            RunConfig(backend="wmma")

    def test_batch_sort_incompatible(self):
        with pytest.raises(ValueError, match="mma_scan"):
            RunConfig(mode="Mixed", backend="tensor_core",
                      sort_strategy="batch")


class TestEscalationComposition:
    def test_escalated_tile_leaves_tc_path(self):
        # A corrupted Mixed tile escalates to FP32, which has no
        # tensor-core formulation: the re-execution silently takes the
        # vector main loop while the job keeps its tensor-core backend.
        rng = np.random.default_rng(9)
        series = rng.normal(size=(260, 2)).cumsum(axis=0)
        series /= np.abs(series).max()
        res = compute_multi_tile(
            series, None, 16,
            RunConfig(mode="Mixed", n_tiles=2, backend="tensor_core"),
            health=HealthPolicy(),
            fault_plan=FaultPlan(seed=11, corrupt_rate=1.0),
        )
        assert res.backend == "tensor_core"
        assert set(res.escalations.values()) == {PrecisionMode.FP32}
        assert np.isfinite(res.profile).all()
        assert (res.index >= 0).all()


# ---------------------------------------------------------------------------
# Autotuner: backend axis, rescue, online correction


class TestAutotunerBackendAxis:
    def test_no_backend_axis_without_target(self):
        decision = AutoTuner().tune(400, 400, 4, 32, mode="Mixed")
        assert all(c.backend == "numeric" for c in decision.candidates)

    def test_backend_axis_under_target(self):
        decision = AutoTuner().tune(
            400, 400, 4, 32, mode="Mixed", target_error=0.1
        )
        tc = [c for c in decision.candidates if c.backend == "tensor_core"]
        assert tc and any(not c.rejected for c in tc)
        # Only the TC-eligible modes grow the axis.
        assert all(c.mode in TENSOR_CORE_MODES for c in tc)

    def test_gated_off_without_tensor_cores(self):
        tuner = AutoTuner()
        tuner.device = SKYLAKE16
        assert tuner._backends(PrecisionMode.MIXED, 0.1) == ("numeric",)

    def test_tc_rescue_when_vector_bound_explodes(self):
        # At this scale the vector Mixed bound is inf at any admissible
        # tiling, but the per-block TC bound stays under the target: the
        # rescue path must still surface viable tensor-core candidates.
        decision = AutoTuner().tune(
            4096, 4096, 8, 32, mode="Mixed", target_error=0.05
        )
        viable_tc = [
            c for c in decision.candidates
            if c.backend == "tensor_core" and not c.rejected
        ]
        viable_vec_mixed = [
            c for c in decision.candidates
            if c.backend == "numeric" and not c.rejected
            and c.mode is PrecisionMode.MIXED
        ]
        assert viable_tc
        assert not viable_vec_mixed

    def test_tc_candidates_rejected_above_target(self):
        decision = AutoTuner().tune(
            8192, 8192, 8, 32, mode="Mixed", target_error=0.05
        )
        tc = [c for c in decision.candidates if c.backend == "tensor_core"]
        assert tc
        assert all(c.rejected for c in tc)
        assert any("tc error bound above target" in (c.note or "") for c in tc)


class TestOnlineCorrection:
    def test_observe_candidate_reranks(self):
        tuner = AutoTuner()
        first = tuner.tune(400, 400, 3, 32, mode="FP32")
        chosen = first.chosen

        def key(c):
            return (c.mode.value, c.row_block, c.parallel_workers,
                    c.precalc_strategy, c.backend)

        # The chosen point turns out 50x slower than predicted: the next
        # tune of the same job must re-rank away from it.
        tuner.observe_candidate(chosen, chosen.predicted_seconds * 50)
        second = tuner.tune(400, 400, 3, 32, mode="FP32")
        assert key(second.chosen) != key(chosen)

    def test_correction_converges_not_compounds(self):
        cost = HostCostModel()
        args = (PrecisionMode.FP32, 64, 1, "exact", "numeric")
        f1 = cost.correct(*args, predicted=1.0, measured=2.0)
        assert f1 == pytest.approx(2.0)
        # Re-observing the now-correct prediction leaves the factor put.
        f2 = cost.correct(*args, predicted=2.0, measured=2.0)
        assert f2 == pytest.approx(2.0)

    def test_correction_ignores_garbage(self):
        cost = HostCostModel()
        args = (PrecisionMode.FP32, 64, 1, "exact", "numeric")
        cost.correct(*args, predicted=0.0, measured=1.0)
        cost.correct(*args, predicted=1.0, measured=float("nan"))
        assert cost.correction(*args) == 1.0

    def test_tc_pricing_uses_calibrated_factors(self):
        cost = HostCostModel()
        vec = cost.tile_time(256, 256, 8, PrecisionMode.MIXED, 32)
        tc = cost.tile_time(
            256, 256, 8, PrecisionMode.MIXED, 32, backend="tensor_core"
        )
        assert tc != vec
