"""Unit tests for repro.gpu.memory."""

import numpy as np
import pytest

from repro.gpu.device import A100
from repro.gpu.memory import DeviceMemory, DeviceOutOfMemoryError


@pytest.fixture
def mem():
    return DeviceMemory(A100)


class TestAllocation:
    def test_alloc_zeroed(self, mem):
        h = mem.alloc((4, 8), np.float32, label="x")
        assert h.array.shape == (4, 8)
        assert h.array.dtype == np.float32
        assert np.all(h.array == 0)

    def test_accounting(self, mem):
        h = mem.alloc((1024,), np.float64)
        assert mem.in_use == 8192
        assert mem.high_water == 8192
        h.free()
        assert mem.in_use == 0
        assert mem.high_water == 8192  # high water persists

    def test_free_idempotent(self, mem):
        h = mem.alloc(16, np.float16)
        h.free()
        h.free()
        assert mem.in_use == 0

    def test_scalar_shape(self, mem):
        h = mem.alloc(7, np.float64)
        assert h.array.shape == (7,)

    def test_oom_raises(self, mem):
        with pytest.raises(DeviceOutOfMemoryError) as err:
            mem.alloc((1 << 40,), np.float64)  # 8 TiB > 40 GB
        assert err.value.device == "A100"
        assert err.value.requested == (1 << 40) * 8

    def test_oom_leaves_state_clean(self, mem):
        before = mem.in_use
        with pytest.raises(DeviceOutOfMemoryError):
            mem.alloc((1 << 40,), np.float64)
        assert mem.in_use == before

    def test_capacity_exact_fit(self):
        # A shrunken device so the test doesn't allocate real gigabytes.
        from dataclasses import replace

        tiny = replace(A100, name="tinyA100", mem_capacity=1024)
        m = DeviceMemory(tiny)
        h = m.alloc((128,), np.float64)
        assert m.in_use == m.capacity
        with pytest.raises(DeviceOutOfMemoryError):
            m.alloc(1, np.float16)
        h.free()


class TestUpload:
    def test_upload_copies(self, mem):
        host = np.arange(12, dtype=np.float64).reshape(3, 4)
        h = mem.upload(host)
        host[0, 0] = 99
        assert h.array[0, 0] == 0.0

    def test_upload_converts_dtype(self, mem):
        host = np.linspace(0, 1, 10)
        h = mem.upload(host, dtype=np.float16)
        assert h.array.dtype == np.float16

    def test_free_all(self, mem):
        mem.alloc(10, np.float64)
        mem.alloc(20, np.float64)
        assert mem.in_use > 0
        mem.free_all()
        assert mem.in_use == 0
        assert len(list(mem.live_allocations)) == 0

    def test_report(self, mem):
        mem.alloc(10, np.float64)
        rpt = mem.report()
        assert rpt["in_use"] == 80
        assert rpt["n_live"] == 1
        assert rpt["capacity"] == A100.mem_capacity
