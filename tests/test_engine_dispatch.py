"""The engine dispatch loop: placement, retry, deadlines, observers.

Covers the production behaviours the service relies on — retry-on-a-
different-device up to exhaustion, anytime deadline cancellation with a
valid partial merge — through the engine's observer hooks, plus the
round-robin placement regression: the all-excluded fallback must advance
the cursor instead of pinning one GPU.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.multi_tile import compute_multi_tile
from repro.engine import (
    JobSpec,
    NumericBackend,
    ProfileAccumulator,
    RoundRobinPlacement,
    TileObserver,
    TileRetryExhaustedError,
    TransientDeviceError,
    execute_plan,
)
from repro.gpu.device import A100
from repro.gpu.memory import DeviceOutOfMemoryError
from repro.gpu.simulator import GPUSimulator
from repro.service.scheduler import TileScheduler


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class Recorder(TileObserver):
    def __init__(self):
        self.starts = []
        self.completes = []
        self.retries = []
        self.deadline_remaining = None

    def on_tile_start(self, tile, gpu_id, attempt):
        self.starts.append((tile.tile_id, gpu_id, attempt))

    def on_tile_complete(self, tile, gpu_id, execution):
        self.completes.append((tile.tile_id, gpu_id))

    def on_tile_retry(self, tile, gpu_id, attempt, error):
        self.retries.append((tile.tile_id, gpu_id, attempt))

    def on_deadline(self, remaining):
        self.deadline_remaining = [t.tile_id for t in remaining]


@pytest.fixture
def plan_and_sim(rng):
    ref = rng.normal(size=(200, 2))
    config = RunConfig(n_tiles=4, n_gpus=2)
    spec = JobSpec.from_arrays(ref, None, 24, config)
    plan = spec.plan()
    sim = GPUSimulator(config.device, config.n_gpus, config.n_streams)
    return spec, plan, sim


class TestRoundRobinPlacement:
    def test_skips_excluded_devices(self):
        placement = RoundRobinPlacement(2)
        assert [placement.pick(None, {0}) for _ in range(3)] == [1, 1, 1]

    def test_all_excluded_fallback_rotates(self):
        # Regression: the old scheduler's fallback returned the cursor
        # without advancing it, pinning every fallback pick to one GPU.
        placement = RoundRobinPlacement(3)
        excluded = {0, 1, 2}
        picks = [placement.pick(None, excluded) for _ in range(3)]
        assert sorted(picks) == [0, 1, 2]

    def test_scheduler_pick_gpu_fallback_rotates(self):
        sim = GPUSimulator("A100", n_gpus=2)
        scheduler = TileScheduler(sim)
        picks = {scheduler._pick_gpu({0, 1}) for _ in range(2)}
        assert picks == {0, 1}

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError, match="n_gpus"):
            RoundRobinPlacement(0)


class TestRetry:
    def test_retry_runs_on_a_different_gpu(self, plan_and_sim):
        spec, plan, sim = plan_and_sim

        def injector(label, tile, gpu_id, attempt):
            if tile.tile_id == 1 and attempt == 0:
                raise TransientDeviceError("injected")

        recorder = Recorder()
        acc = ProfileAccumulator(spec.d, spec.n_q_seg, spec.policy)
        report = execute_plan(
            plan,
            NumericBackend(),
            sim,
            accumulator=acc,
            placement=RoundRobinPlacement(sim.n_gpus),
            observers=[recorder],
            max_retries=2,
            failure_injector=injector,
        )
        assert report.tiles_completed == 4
        assert report.tile_retries == 1
        (failed,) = [s for s in recorder.starts if s[0] == 1 and s[2] == 0]
        (retried,) = [s for s in recorder.starts if s[0] == 1 and s[2] == 1]
        assert retried[1] != failed[1]  # different device on attempt 1
        assert recorder.retries == [(1, failed[1], 0)]

    def test_retry_exhaustion_raises(self, plan_and_sim):
        spec, plan, sim = plan_and_sim

        def injector(label, tile, gpu_id, attempt):
            if tile.tile_id == 2:
                raise TransientDeviceError("always down")

        recorder = Recorder()
        with pytest.raises(TileRetryExhaustedError) as excinfo:
            execute_plan(
                plan,
                NumericBackend(),
                sim,
                placement=RoundRobinPlacement(sim.n_gpus),
                observers=[recorder],
                max_retries=1,
                failure_injector=injector,
            )
        assert excinfo.value.tile_id == 2
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.last, TransientDeviceError)
        # One retry observed (attempt 0 -> 1); attempt 1 exhausted.
        assert recorder.retries == [(2, recorder.retries[0][1], 0)]

    def test_negative_max_retries_rejected(self, plan_and_sim):
        spec, plan, sim = plan_and_sim
        with pytest.raises(ValueError, match="max_retries"):
            execute_plan(plan, NumericBackend(), sim, max_retries=-1)


class TestDeadline:
    def test_deadline_partial_merge_is_upper_bound(self, rng):
        ref = rng.normal(size=(200, 2))
        config = RunConfig(n_tiles=4, n_gpus=2)
        spec = JobSpec.from_arrays(ref, None, 24, config)
        clock = FakeClock()

        def tick(label, tile, gpu_id, attempt):
            clock.t += 1.0

        recorder = Recorder()
        acc = ProfileAccumulator(spec.d, spec.n_q_seg, spec.policy)
        sim = GPUSimulator(config.device, config.n_gpus, config.n_streams)
        report = execute_plan(
            spec.plan(),
            NumericBackend(),
            sim,
            accumulator=acc,
            observers=[recorder],
            deadline_at=2.5,
            clock=clock,
            failure_injector=tick,
        )
        assert report.deadline_hit
        assert report.partial
        assert report.tiles_completed == 3
        assert recorder.deadline_remaining == [3]
        assert [c[0] for c in recorder.completes] == [0, 1, 2]
        # The partial merge is a valid upper bound of the exact profile.
        exact = compute_multi_tile(ref, None, 24, config)
        partial = acc.host_profile()
        assert np.all(partial >= exact.profile - 1e-12)
        # Columns only tile 3 could improve stay upper bounds; columns
        # covered by completed tiles are already exact.
        covered = np.zeros(spec.n_q_seg, dtype=bool)
        for tile in spec.plan().tiles[:2]:  # tiles 0, 1 span all columns
            covered[tile.col_start : tile.col_stop] = True
        assert covered.all()

    def test_deadline_before_any_tile_completes(self, plan_and_sim):
        # Already past the deadline at dispatch time: nothing executes,
        # observers see the *full* tile list abandoned, and the merge is
        # the accumulator's identity — every column parked at the dtype
        # limit with index -1 (a trivially valid upper bound).
        spec, plan, sim = plan_and_sim
        clock = FakeClock()
        clock.t = 1.0
        recorder = Recorder()
        acc = ProfileAccumulator(spec.d, spec.n_q_seg, spec.policy)
        report = execute_plan(
            plan,
            NumericBackend(),
            sim,
            accumulator=acc,
            observers=[recorder],
            deadline_at=0.5,
            clock=clock,
        )
        assert report.deadline_hit
        assert report.partial
        assert report.tiles_completed == 0
        assert recorder.starts == [] and recorder.completes == []
        assert recorder.deadline_remaining == [t.tile_id for t in plan.tiles]
        profile = acc.host_profile()
        limit = np.finfo(profile.dtype).max
        assert (profile == limit).all()
        assert (acc.host_index() == -1).all()

    def test_no_deadline_completes_everything(self, plan_and_sim):
        spec, plan, sim = plan_and_sim
        recorder = Recorder()
        report = execute_plan(
            plan, NumericBackend(), sim, observers=[recorder]
        )
        assert not report.deadline_hit
        assert not report.partial
        assert report.tiles_completed == 4
        assert recorder.deadline_remaining is None


class TestBackendCleanup:
    def test_oom_mid_tile_frees_partial_allocations(self, rng):
        # The workspace reservation OOMs after both uploads succeeded;
        # the context-managed backend must release them on the way out.
        tiny = replace(A100, mem_capacity=64 * 1024)
        ref = rng.normal(size=(900, 4))
        config = RunConfig(device=tiny)
        spec = JobSpec.from_arrays(ref, None, 32, config)
        sim = GPUSimulator(tiny, n_gpus=1)
        with pytest.raises(DeviceOutOfMemoryError):
            execute_plan(spec.plan(n_tiles=1, n_gpus=1), NumericBackend(), sim)
        assert sim.gpus[0].memory.in_use == 0

    def test_static_placement_follows_plan_assignment(self, plan_and_sim):
        spec, plan, sim = plan_and_sim
        recorder = Recorder()
        execute_plan(plan, NumericBackend(), sim, observers=[recorder])
        assert [gpu for _, gpu, _ in recorder.starts] == plan.assignment
