"""Unit tests for the dist_calc kernel (streaming Eq. 1)."""

import numpy as np
import pytest

from repro.baselines.brute_force import znormalized_distance_matrix
from repro.gpu.kernel import LaunchConfig
from repro.kernels.dist_calc import DistCalcKernel
from repro.kernels.layout import to_device_layout
from repro.kernels.precalc import PrecalcKernel
from repro.precision.modes import policy_for

CFG = LaunchConfig(grid=4, block=64)


def _run_all_rows(ref, qry, m, mode):
    policy = policy_for(mode)
    tr = to_device_layout(ref, policy.storage)
    tq = to_device_layout(qry, policy.storage)
    pre = PrecalcKernel(config=CFG, policy=policy).run(tr, tq, m)
    dk = DistCalcKernel(config=CFG, policy=policy)
    dk.bind(pre)
    n_r = tr.shape[1] - m + 1
    return [dk.run(i) for i in range(n_r)], dk


class TestStreamingCorrectness:
    def test_every_row_matches_oracle(self, rng):
        ref = rng.normal(size=(70, 2)).cumsum(axis=0)
        qry = rng.normal(size=(60, 2)).cumsum(axis=0)
        m = 8
        planes, _ = _run_all_rows(ref, qry, m, "FP64")
        oracle = znormalized_distance_matrix(ref, qry, m)
        for i, plane in enumerate(planes):
            np.testing.assert_allclose(plane.T, oracle[i], atol=1e-8)

    def test_self_join_diagonal_is_zero(self, rng):
        ref = rng.normal(size=(60, 2)).cumsum(axis=0)
        planes, _ = _run_all_rows(ref, ref, 8, "FP64")
        for i, plane in enumerate(planes):
            assert np.all(np.abs(plane[:, i]) < 1e-6)

    def test_rows_must_start_at_zero(self, rng):
        ref = rng.normal(size=(40, 1))
        policy = policy_for("FP64")
        tr = to_device_layout(ref, policy.storage)
        pre = PrecalcKernel(config=CFG, policy=policy).run(tr, tr, 8)
        dk = DistCalcKernel(config=CFG, policy=policy)
        dk.bind(pre)
        with pytest.raises(RuntimeError, match="rows must be visited in order"):
            dk.run(3)

    def test_distances_nonnegative(self, rng):
        ref = rng.normal(size=(60, 3))
        planes, _ = _run_all_rows(ref, ref, 12, "FP64")
        for plane in planes:
            assert np.all(plane >= 0)


class TestReducedPrecisionBehaviour:
    def test_fp16_distances_finite_after_saturation(self, rng):
        # Large-amplitude data overflows half precision; the kernel must
        # saturate to the max finite value, never emit inf/NaN.
        ref = 100.0 * rng.normal(size=(80, 1)).cumsum(axis=0)
        planes, _ = _run_all_rows(ref, ref, 8, "FP16")
        for plane in planes:
            assert np.all(np.isfinite(plane))

    def test_error_grows_along_stream(self, rng):
        # Rounding error of the recurrence accumulates with the row index
        # (e ~ rows * eps, Section V-B).
        ref = rng.normal(size=(260, 1)).cumsum(axis=0)
        qry = rng.normal(size=(260, 1)).cumsum(axis=0)
        m = 8
        planes16, _ = _run_all_rows(ref, qry, m, "FP16")
        oracle = znormalized_distance_matrix(ref, qry, m)
        n_r = len(planes16)
        errs = np.array(
            [np.mean(np.abs(planes16[i].T.astype(np.float64) - oracle[i])) for i in range(n_r)]
        )
        early = errs[: n_r // 4].mean()
        late = errs[-n_r // 4 :].mean()
        assert late > early

    def test_dtype_of_output(self, rng):
        ref = rng.normal(size=(40, 1))
        planes, _ = _run_all_rows(ref, ref, 8, "FP16")
        assert planes[0].dtype == np.float16


class TestDistCost:
    def test_per_row_accounting(self, rng):
        ref = rng.normal(size=(40, 2))
        planes, dk = _run_all_rows(ref, ref, 8, "FP64")
        n_r = len(planes)
        elems = planes[0].size
        assert dk.cost.launches == n_r
        assert dk.cost.bytes_dram == pytest.approx(3.0 * elems * 8 * n_r)
        assert dk.cost.flops == pytest.approx(8.0 * elems * n_r)
