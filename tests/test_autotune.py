"""The roofline autotuner: bit-identity contract, candidate space, wiring."""

import json
import math

import numpy as np
import pytest

from repro.autotune import AutoTuner, Candidate, HostCostModel, TuneDecision
from repro.core.api import matrix_profile
from repro.core.config import RunConfig
from repro.engine.plan import JobSpec
from repro.gpu.calibration import (
    CalibrationProfile,
    default_profile,
    load_profile,
    measure_host_profile,
    save_profile,
)
from repro.precision.modes import PrecisionMode
from repro.reporting import render_autotune_choices
from repro.service import JobRequest, MatrixProfileService
from repro.streams import StreamIngestService, TenantPolicy

MODES = ("FP64", "FP32", "FP16", "Mixed", "FP16C")


def _series(n, d, seed=5):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, d)).cumsum(axis=0)


# ---------------------------------------------------------------------------
# The bit-identity contract: no error target => identical output


class TestBitIdentity:
    @pytest.mark.parametrize("mode", MODES)
    def test_self_join_identical(self, mode):
        ts = _series(220, 3)
        base = matrix_profile(ts, m=20, mode=mode)
        auto = matrix_profile(ts, m=20, mode=mode, auto=True)
        assert np.array_equal(auto.profile, base.profile, equal_nan=True)
        assert np.array_equal(auto.index, base.index)

    @pytest.mark.parametrize("mode", MODES)
    def test_ab_join_identical(self, mode):
        ref = _series(200, 2, seed=6)
        qry = _series(160, 2, seed=7)
        base = matrix_profile(ref, qry, m=18, mode=mode)
        auto = matrix_profile(ref, qry, m=18, mode=mode, auto=True)
        assert np.array_equal(auto.profile, base.profile, equal_nan=True)
        assert np.array_equal(auto.index, base.index)

    def test_auto_config_shares_cache_key(self):
        cfg = RunConfig.auto(500, 500, 4, 32, mode="FP32")
        assert cfg.cache_key() == RunConfig(mode="FP32").cache_key()

    def test_explicit_knobs_override_tuner(self):
        ts = _series(150, 2)
        result = matrix_profile(ts, m=16, auto=True, row_block=1)
        base = matrix_profile(ts, m=16, row_block=1)
        assert np.array_equal(result.profile, base.profile, equal_nan=True)


# ---------------------------------------------------------------------------
# Candidate space and decision structure


class TestTuneDecision:
    def test_chosen_is_fastest_viable(self):
        decision = AutoTuner().tune(400, 400, 3, 32, mode="FP32")
        viable = [c for c in decision.candidates if not c.rejected]
        assert decision.chosen in viable
        assert decision.chosen.predicted_seconds == min(
            c.predicted_seconds for c in viable
        )

    def test_candidates_cover_row_block_grid(self):
        tuner = AutoTuner()
        decision = tuner.tune(400, 400, 3, 32, mode="FP64")
        blocks = {c.row_block for c in decision.candidates}
        assert blocks == {min(b, 400) for b in tuner.row_blocks}

    def test_row_block_clamped_to_tile_rows(self):
        decision = AutoTuner().tune(40, 40, 1, 8, mode="FP64")
        assert all(c.row_block <= 40 for c in decision.candidates)

    def test_workers_clamped_to_tile_count(self):
        decision = AutoTuner().tune(300, 300, 2, 16, mode="FP64")
        assert all(
            c.parallel_workers <= c.n_tiles for c in decision.candidates
        )

    def test_memoised_per_shape(self):
        tuner = AutoTuner()
        first = tuner.tune(256, 256, 2, 24, mode="FP32")
        second = tuner.tune(256, 256, 2, 24, mode="FP32")
        assert first is second
        assert tuner.tune(256, 256, 2, 25, mode="FP32") is not first

    def test_caller_tile_floor_respected(self):
        decision = AutoTuner().tune(300, 300, 2, 16, mode="FP64", n_tiles=4)
        assert decision.chosen.n_tiles >= 4

    def test_no_target_keeps_mode_and_exact_precalc(self):
        for mode in MODES:
            decision = AutoTuner().tune(200, 200, 2, 16, mode=mode)
            assert decision.chosen.mode == PrecisionMode.parse(mode)
            assert decision.chosen.precalc_strategy == "exact"
            assert not decision.mode_changed

    def test_explain_mentions_candidates_and_roofline(self):
        decision = AutoTuner().tune(256, 256, 4, 32, mode="FP16")
        report = decision.explain()
        assert "roofline" in report
        assert "dist_calc" in report
        assert "row_block" in report
        assert "chosen:" in report
        assert "occupancy" in report

    def test_config_carries_chosen_knobs(self):
        decision = AutoTuner().tune(300, 300, 2, 24, mode="FP32")
        cfg = decision.config
        assert cfg.row_block == decision.chosen.row_block
        assert cfg.parallel_workers == decision.chosen.parallel_workers
        assert cfg.n_tiles == decision.chosen.n_tiles
        assert cfg.mode == PrecisionMode.FP32


class TestErrorTargetTier:
    def test_tight_target_forces_wide_mode(self):
        decision = AutoTuner().tune(400, 400, 2, 64, mode="FP16",
                                    target_error=1e-10)
        assert decision.chosen.mode == PrecisionMode.FP64
        assert decision.chosen.error_bound <= 1e-10

    def test_infeasible_modes_rejected_with_reason(self):
        decision = AutoTuner().tune(400, 400, 2, 64, mode="FP16",
                                    target_error=1e-10)
        rejected = [c for c in decision.candidates if c.rejected]
        assert rejected
        assert all(c.note for c in rejected)
        assert any(c.mode == PrecisionMode.FP16 for c in rejected)

    def test_loose_target_admits_fft_candidates(self):
        decision = AutoTuner().tune(400, 400, 2, 64, mode="FP32",
                                    target_error=0.1)
        strategies = {
            c.precalc_strategy for c in decision.candidates if not c.rejected
        }
        assert "fft" in strategies

    def test_bound_respected_by_every_viable_candidate(self):
        target = 1e-4
        decision = AutoTuner().tune(300, 300, 2, 32, mode="FP64",
                                    target_error=target)
        for c in decision.candidates:
            if not c.rejected:
                assert c.error_bound <= target

    def test_impossible_target_falls_back_to_requested_mode(self):
        decision = AutoTuner().tune(5000, 5000, 2, 64, mode="FP64",
                                    target_error=1e-30)
        assert decision.chosen.mode == PrecisionMode.FP64
        assert math.isfinite(decision.chosen.predicted_seconds)


# ---------------------------------------------------------------------------
# Cost model


class TestHostCostModel:
    def test_row_block_one_is_slowest(self):
        model = HostCostModel()
        times = {
            b: model.tile_time(256, 256, 4, PrecisionMode.FP64, b)
            for b in (1, 32, 128)
        }
        assert times[1] > times[32] > times[128]

    def test_parallel_floored_at_critical_path(self):
        model = HostCostModel()
        tiles = [(256, 256)] * 4
        serial = model.job_time(tiles, 2, 32, PrecisionMode.FP64, 32, 1)
        quad = model.job_time(tiles, 2, 32, PrecisionMode.FP64, 32, 4)
        longest = model.tile_time(256, 256, 2, PrecisionMode.FP64, 32)
        assert quad < serial
        assert quad >= longest

    def test_estimator_overrides_calibration(self):
        class Estimator:
            seconds_per_cell = 1.0

            def mode_factor(self, mode):
                return 2.0

        model = HostCostModel(estimator=Estimator())
        assert model.cell_time(PrecisionMode.FP64) == 2.0


# ---------------------------------------------------------------------------
# Calibration persistence (satellite)


class TestCalibrationProfiles:
    def test_json_round_trip(self, tmp_path):
        profile = default_profile("V100")
        path = save_profile(profile, tmp_path / "cal.json")
        loaded = load_profile(path)
        assert loaded == profile
        assert loaded.device == "V100"

    def test_from_json_ignores_unknown_fields(self):
        payload = json.loads(default_profile().to_json())
        payload["future_field"] = 123
        profile = CalibrationProfile.from_json(json.dumps(payload))
        assert profile.device == "A100"

    def test_measured_profile_is_usable(self):
        profile = measure_host_profile(n_seg=48, d=2, m=12, repeats=1)
        assert profile.source == "measured"
        for mode in MODES:
            assert profile.cell_time(PrecisionMode.parse(mode)) > 0
            assert profile.step_time(PrecisionMode.parse(mode)) > 0
        tuner = AutoTuner(calibration=profile)
        decision = tuner.tune(128, 128, 2, 16, mode="FP32")
        assert decision.calibration_source == "measured"

    def test_unknown_mode_falls_back_to_fp64(self):
        profile = default_profile()
        assert profile.cell_time("NOPE") == profile.cell_time(
            PrecisionMode.FP64
        )


# ---------------------------------------------------------------------------
# Layer wiring: JobSpec, service, streams, reporting


class TestJobSpecWiring:
    def test_plan_auto_applies_tuned_knobs(self):
        ts = _series(200, 2)
        spec = JobSpec.from_arrays(ts, None, 16)
        default_block = spec.config.row_block
        spec.plan(auto=True)
        decision = AutoTuner().tune(spec.n_r_seg, spec.n_q_seg, 2, 16)
        assert spec.config.row_block == decision.chosen.row_block
        assert spec.config.row_block != default_block or default_block == 128

    def test_tune_with_target_rebuilds_layouts(self):
        ts = _series(200, 2)
        spec = JobSpec.from_arrays(ts, None, 16, RunConfig(mode="FP16"))
        spec.layouts()
        assert spec._tr_layout.dtype == np.float16
        spec.tune(target_error=1e-12)
        assert spec.config.mode == PrecisionMode.FP64
        tr, _ = spec.layouts()
        assert tr.dtype == np.float64

    def test_tune_returns_decision(self):
        spec = JobSpec.modeled(300, 300, 2, 32)
        decision = spec.tune()
        assert isinstance(decision, TuneDecision)
        assert isinstance(decision.chosen, Candidate)


class TestServiceWiring:
    def test_every_admitted_job_is_tuned(self):
        svc = MatrixProfileService(n_gpus=1, n_workers=1, use_cache=False)
        ts = _series(150, 2)
        for _ in range(3):
            svc.submit_and_wait(JobRequest(reference=ts, m=16))
        snap = svc.metrics.snapshot()
        assert snap.autotuned_jobs == 3
        assert sum(snap.autotune_choices.values()) == 3

    def test_service_output_unchanged_by_tuning(self):
        ts = _series(180, 3, seed=9)
        out_a = MatrixProfileService(
            n_gpus=1, n_workers=1
        ).submit_and_wait(JobRequest(reference=ts, m=20, mode="FP16"))
        out_b = MatrixProfileService(
            n_gpus=1, n_workers=1, autotune=False
        ).submit_and_wait(JobRequest(reference=ts, m=20, mode="FP16"))
        assert np.array_equal(
            out_a.result.profile, out_b.result.profile, equal_nan=True
        )
        assert np.array_equal(out_a.result.index, out_b.result.index)

    def test_autotune_off_records_nothing(self):
        svc = MatrixProfileService(n_gpus=1, n_workers=1, autotune=False)
        svc.submit_and_wait(JobRequest(reference=_series(120, 1), m=12))
        assert svc.metrics.snapshot().autotuned_jobs == 0

    def test_estimator_feedback_reaches_cost_model(self):
        svc = MatrixProfileService(n_gpus=1, n_workers=1, use_cache=False)
        model = svc.tuner.cost
        before = model.cell_time(PrecisionMode.FP64)
        # A wildly slow observed job drags the EMA, and with it the
        # tuner's absolute predictions, away from the calibration prior.
        svc.estimator.observe(100, 100, 1, PrecisionMode.FP64, 60.0)
        assert model.cell_time(PrecisionMode.FP64) != before


class TestStreamWiring:
    def _drive(self, autotune):
        svc = StreamIngestService(n_gpus=1, n_workers=1)
        data = _series(320, 2, seed=11)
        svc.register("t", TenantPolicy(m=16, mode="FP32", autotune=autotune),
                     initial=data[:80])
        for i in range(80, 320, 60):
            svc.ingest("t", data[i:i + 60])
        return svc

    def test_tuned_tenant_bit_identical(self):
        tuned, plain = self._drive(True), self._drive(False)
        pa, ia = tuned.profile("t")
        pb, ib = plain.profile("t")
        assert np.array_equal(pa, pb, equal_nan=True)
        assert np.array_equal(ia, ib)

    def test_micro_jobs_recorded(self):
        svc = self._drive(True)
        assert svc.metrics.snapshot().autotuned_jobs > 0
        assert self._drive(False).metrics.snapshot().autotuned_jobs == 0


class TestReporting:
    def test_render_autotune_choices(self):
        svc = MatrixProfileService(n_gpus=1, n_workers=1)
        svc.submit_and_wait(JobRequest(reference=_series(140, 2), m=16))
        text = render_autotune_choices(svc.metrics.snapshot())
        assert "autotune choices" in text
        assert "1 job(s) tuned" in text

    def test_empty_when_untuned(self):
        svc = MatrixProfileService(n_gpus=1, n_workers=1, autotune=False)
        assert render_autotune_choices(svc.metrics.snapshot()) == ""
