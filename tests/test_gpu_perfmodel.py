"""Unit tests for the calibrated roofline performance model.

Includes the calibration-anchor assertions: the modelled numbers must land
on the paper's published ratios (Figs. 4-6) within stated tolerances.
"""

import pytest

from repro.gpu.device import A100, SKYLAKE16, V100
from repro.gpu.kernel import KernelCost, LaunchConfig
from repro.gpu.perfmodel import (
    cpu_baseline_time,
    kernel_time,
    single_tile_costs,
    single_tile_timing,
    sort_stage_count,
    transfer_time,
)


class TestSortStageCount:
    @pytest.mark.parametrize(
        "d,expected",
        [
            (1, (0, 0)),
            (2, (1, 1)),
            (4, (3, 2)),
            (8, (6, 3)),
            (16, (10, 4)),
            (64, (21, 6)),
            (3, (3, 2)),  # padded to 4
        ],
    )
    def test_stage_counts(self, d, expected):
        assert sort_stage_count(d) == expected

    def test_invalid(self):
        with pytest.raises(ValueError):
            sort_stage_count(0)


class TestKernelTime:
    def test_memory_bound_kernel(self):
        # One second of DRAM traffic at the achieved bandwidth:
        # 0.8 (FP64 dist_calc efficiency) * 0.9 (A100 device scale) * peak.
        cost = KernelCost(name="dist_calc", bytes_dram=0.8 * 0.9 * A100.mem_bandwidth)
        t = kernel_time(cost, A100, itemsize=8)
        assert t.busy == pytest.approx(1.0, rel=1e-6)

    def test_overhead_separate(self):
        cost = KernelCost(name="dist_calc", syncs=100, launches=10)
        t = kernel_time(cost, A100, itemsize=8)
        assert t.busy == 0.0
        assert t.overhead == pytest.approx(
            100 * A100.sync_latency + 10 * A100.kernel_launch_overhead
        )

    def test_l2_residency_bonus(self):
        # The bonus applies only when the working set fits a quarter of L2
        # (concurrent tiles share the cache).
        cost = KernelCost(name="dist_calc", bytes_dram=1e9)
        slow = kernel_time(cost, A100, 8, working_set=A100.l2_capacity / 2)
        fast = kernel_time(cost, A100, 8, working_set=A100.l2_capacity / 8)
        assert fast.busy < slow.busy

    def test_narrower_dtype_lower_efficiency(self):
        # Same byte count moves slower in FP16 (Section V-C utilisation).
        cost = KernelCost(name="dist_calc", bytes_dram=1e9)
        t64 = kernel_time(cost, A100, 8)
        t16 = kernel_time(cost, A100, 2)
        assert t16.busy > t64.busy


class TestAnalyticCosts:
    def test_dist_calc_traffic_formula(self):
        cfg = LaunchConfig(64, 3456)
        costs = single_tile_costs(100, 80, 8, 16, 8, cfg)
        dist = costs["dist_calc"]
        # 3 planes * n_q*d elements * itemsize * n_r rows.
        assert dist.bytes_dram == 3.0 * 80 * 8 * 8 * 100
        assert dist.launches == 100

    def test_sort_syncs_scale_with_stages(self):
        cfg = LaunchConfig(64, 3456)
        costs8 = single_tile_costs(10, 10, 8, 16, 8, cfg)
        costs64 = single_tile_costs(10, 10, 64, 16, 8, cfg)
        assert costs8["sort_&_incl_scan"].syncs == (6 + 3) * 10
        assert costs64["sort_&_incl_scan"].syncs == (21 + 6) * 10

    def test_compensated_quadruples_precalc_flops(self):
        cfg = LaunchConfig(64, 3456)
        plain = single_tile_costs(50, 50, 4, 16, 2, cfg, precalc_itemsize=4)
        comp = single_tile_costs(
            50, 50, 4, 16, 2, cfg, precalc_itemsize=4, compensated=True
        )
        assert comp["precalculation"].flops == 4 * plain["precalculation"].flops

    def test_invalid_sizes(self):
        cfg = LaunchConfig(64, 3456)
        with pytest.raises(ValueError):
            single_tile_costs(0, 10, 4, 16, 8, cfg)


class TestCalibrationAnchors:
    """The modelled times must land on the paper's published anchors."""

    N = 2**16
    D = 2**6
    M = 2**6

    def _total(self, device):
        timing = single_tile_timing(self.N, self.N, self.D, self.M, device, 8)
        return timing.compute_total

    def test_a100_fp64_near_fig4(self):
        # Fig. 4: ~15 s of kernels at n=2^16, d=2^6 (we allow 12-22 s).
        total = self._total(A100)
        assert 12.0 < total < 22.0

    def test_cpu_speedup_54x_on_a100(self):
        # Fig. 6 headline: 54.0x on A100.
        speedup = cpu_baseline_time(self.N, self.N, self.D) / self._total(A100)
        assert speedup == pytest.approx(54.0, rel=0.15)

    def test_cpu_speedup_41x_on_v100(self):
        # Fig. 6 headline: 41.6x on V100.
        speedup = cpu_baseline_time(self.N, self.N, self.D) / self._total(V100)
        assert speedup == pytest.approx(41.6, rel=0.15)

    def test_reduced_precision_speedup_about_1_4x(self):
        # Section I: "an additional advantage of a factor of 1.4x".
        t64 = self._total(A100)
        t16 = single_tile_timing(
            self.N, self.N, self.D, self.M, A100, 2, precalc_itemsize=4
        ).compute_total
        assert 1.25 < t64 / t16 < 1.7

    def test_fp32_between_fp64_and_fp16(self):
        t64 = self._total(A100)
        t32 = single_tile_timing(self.N, self.N, self.D, self.M, A100, 4).compute_total
        t16 = single_tile_timing(self.N, self.N, self.D, self.M, A100, 2).compute_total
        assert t16 < t32 < t64

    def test_sort_dominant_at_large_d_dist_at_small_d(self):
        # Fig. 4: dimensionality decides the dominant kernel.
        big_d = single_tile_timing(2**14, 2**14, 64, 64, A100, 8)
        small_d = single_tile_timing(2**14, 2**14, 8, 64, A100, 8)
        assert (
            big_d.kernels["sort_&_incl_scan"].total
            > big_d.kernels["dist_calc"].total
        )
        assert (
            small_d.kernels["dist_calc"].total
            > small_d.kernels["sort_&_incl_scan"].total
        )

    def test_sort_nearly_precision_independent(self):
        # Section V-C: sort gains are "minimal" in reduced precision.
        t64 = single_tile_timing(self.N, self.N, self.D, self.M, A100, 8)
        t16 = single_tile_timing(self.N, self.N, self.D, self.M, A100, 2)
        ratio = (
            t64.kernels["sort_&_incl_scan"].total
            / t16.kernels["sort_&_incl_scan"].total
        )
        assert ratio < 1.5  # far from the 4x a pure-bandwidth kernel would get

    def test_m_independence(self):
        # Fig. 6: execution time is independent of segment length m.
        t_small_m = single_tile_timing(self.N, self.N, self.D, 8, A100, 8)
        t_large_m = single_tile_timing(self.N, self.N, self.D, 64, A100, 8)
        assert t_small_m.compute_total == pytest.approx(
            t_large_m.compute_total, rel=0.05
        )

    def test_quadratic_in_n(self):
        # Large-n regime: per-row launch/sync overheads are amortised and
        # the quadratic roofline terms dominate (the Fig. 6 slope).
        t1 = single_tile_timing(2**15, 2**15, self.D, self.M, A100, 8).compute_total
        t2 = single_tile_timing(2**16, 2**16, self.D, self.M, A100, 8).compute_total
        assert t2 / t1 == pytest.approx(4.0, rel=0.15)


class TestCpuBaseline:
    def test_quadratic_in_n(self):
        assert cpu_baseline_time(2000, 2000, 8) / cpu_baseline_time(
            1000, 1000, 8
        ) == pytest.approx(4.0)

    def test_linear_in_d_with_log_factor(self):
        r = cpu_baseline_time(1000, 1000, 16) / cpu_baseline_time(1000, 1000, 8)
        assert 2.0 < r < 2.5


class TestTransferTime:
    def test_pcie(self):
        assert transfer_time(A100.pcie_bandwidth, A100) == pytest.approx(1.0)

    def test_host_resident_free(self):
        assert transfer_time(1e9, SKYLAKE16) == 0.0
