"""Unit tests for the precalculation kernel."""

import numpy as np
import pytest

from repro.gpu.kernel import LaunchConfig
from repro.kernels.layout import to_device_layout
from repro.kernels.precalc import PrecalcKernel, naive_qt_row
from repro.precision.modes import policy_for

CFG = LaunchConfig(grid=4, block=64)


def _device_pair(rng, n_r=80, n_q=70, d=2, dtype=np.float64):
    ref = rng.normal(size=(n_r, d)).cumsum(axis=0)
    qry = rng.normal(size=(n_q, d)).cumsum(axis=0)
    return to_device_layout(ref, dtype), to_device_layout(qry, dtype), ref, qry


class TestPrecalcFP64:
    def test_windowed_mean(self, rng):
        tr, tq, ref, _ = _device_pair(rng)
        pre = PrecalcKernel(config=CFG, policy=policy_for("FP64")).run(tr, tq, 8)
        expected = np.lib.stride_tricks.sliding_window_view(ref[:, 0], 8).mean(axis=1)
        np.testing.assert_allclose(pre.mu_r[0], expected, rtol=1e-12)

    def test_inverse_centred_norm(self, rng):
        tr, tq, ref, _ = _device_pair(rng)
        m = 8
        pre = PrecalcKernel(config=CFG, policy=policy_for("FP64")).run(tr, tq, m)
        windows = np.lib.stride_tricks.sliding_window_view(ref[:, 1], m)
        norms = np.linalg.norm(windows - windows.mean(axis=1, keepdims=True), axis=1)
        np.testing.assert_allclose(pre.inv_r[1], 1.0 / norms, rtol=1e-9)

    def test_df_dg_zero_at_origin(self, rng):
        tr, tq, _, _ = _device_pair(rng)
        pre = PrecalcKernel(config=CFG, policy=policy_for("FP64")).run(tr, tq, 8)
        assert np.all(pre.df_r[:, 0] == 0)
        assert np.all(pre.dg_r[:, 0] == 0)

    def test_df_formula(self, rng):
        tr, tq, ref, _ = _device_pair(rng)
        m = 8
        pre = PrecalcKernel(config=CFG, policy=policy_for("FP64")).run(tr, tq, m)
        i = 5
        expected = (ref[i + m - 1, 0] - ref[i - 1, 0]) / 2.0
        assert pre.df_r[0, i] == pytest.approx(expected, rel=1e-12)

    def test_qt_row0_matches_direct_dot(self, rng):
        tr, tq, ref, qry = _device_pair(rng)
        m = 8
        pre = PrecalcKernel(config=CFG, policy=policy_for("FP64")).run(tr, tq, m)
        j = 11
        a = ref[:m, 0] - ref[:m, 0].mean()
        w = qry[j : j + m, 0]
        b = w - w.mean()
        assert pre.qt_row0[0, j] == pytest.approx(np.dot(a, b), rel=1e-9)

    def test_qt_col0_matches_direct_dot(self, rng):
        tr, tq, ref, qry = _device_pair(rng)
        m = 8
        pre = PrecalcKernel(config=CFG, policy=policy_for("FP64")).run(tr, tq, m)
        i = 17
        w = ref[i : i + m, 0]
        a = w - w.mean()
        b = qry[:m, 0] - qry[:m, 0].mean()
        assert pre.qt_col0[0, i] == pytest.approx(np.dot(a, b), rel=1e-9)

    def test_shapes(self, rng):
        tr, tq, _, _ = _device_pair(rng, n_r=80, n_q=70, d=3)
        pre = PrecalcKernel(config=CFG, policy=policy_for("FP64")).run(tr, tq, 8)
        assert pre.n_r_seg == 73
        assert pre.n_q_seg == 63
        assert pre.d == 3
        assert pre.mu_q.shape == (3, 63)
        assert pre.qt_row0.shape == (3, 63)
        assert pre.qt_col0.shape == (3, 73)


class TestPrecalcValidation:
    def test_m_too_small(self, rng):
        tr, tq, _, _ = _device_pair(rng)
        with pytest.raises(ValueError, match="m must be >= 2"):
            PrecalcKernel(config=CFG, policy=policy_for("FP64")).run(tr, tq, 1)

    def test_m_too_long(self, rng):
        tr, tq, _, _ = _device_pair(rng, n_r=20, n_q=20)
        with pytest.raises(ValueError, match="exceeds series lengths"):
            PrecalcKernel(config=CFG, policy=policy_for("FP64")).run(tr, tq, 50)

    def test_dim_mismatch(self, rng):
        tr, _, _, _ = _device_pair(rng, d=2)
        _, tq, _, _ = _device_pair(rng, d=3)
        with pytest.raises(ValueError, match="dimensionality mismatch"):
            PrecalcKernel(config=CFG, policy=policy_for("FP64")).run(tr, tq, 8)

    def test_1d_device_array_rejected(self, rng):
        with pytest.raises(ValueError):
            PrecalcKernel(config=CFG, policy=policy_for("FP64")).run(
                np.zeros(10), np.zeros(10), 4
            )


class TestPrecalcPrecision:
    def test_outputs_in_storage_dtype(self, rng):
        tr, tq, _, _ = _device_pair(rng, dtype=np.float16)
        pre = PrecalcKernel(config=CFG, policy=policy_for("Mixed")).run(tr, tq, 8)
        for arr in (pre.mu_r, pre.inv_q, pre.df_r, pre.qt_row0):
            assert arr.dtype == np.float16

    def test_mixed_more_accurate_than_fp16(self, rng):
        # The precalc in FP32 (Mixed) must track the FP64 reference better
        # than the all-FP16 precalc once the length-m accumulation error
        # dominates the final fp16 storage rounding (long windows, drift).
        n, m = 300, 64
        base = rng.normal(size=(n, 1)).cumsum(axis=0)
        tr64 = to_device_layout(base, np.float64)
        pre64 = PrecalcKernel(config=CFG, policy=policy_for("FP64")).run(tr64, tr64, m)

        tr16 = to_device_layout(base, np.float16)
        pre16 = PrecalcKernel(config=CFG, policy=policy_for("FP16")).run(tr16, tr16, m)
        premx = PrecalcKernel(config=CFG, policy=policy_for("Mixed")).run(tr16, tr16, m)

        ref = pre64.qt_row0.astype(np.float64)
        err16 = np.nanmean(np.abs(pre16.qt_row0.astype(np.float64) - ref))
        errmx = np.nanmean(np.abs(premx.qt_row0.astype(np.float64) - ref))
        assert errmx <= err16

    def test_fp16c_compensation_not_worse_than_mixed(self, rng):
        n, m = 200, 64
        base = rng.uniform(0, 1, size=(n, 1))
        tr64 = to_device_layout(base, np.float64)
        ref = PrecalcKernel(config=CFG, policy=policy_for("FP64")).run(tr64, tr64, m)

        tr16 = to_device_layout(base, np.float16)
        mx = PrecalcKernel(config=CFG, policy=policy_for("Mixed")).run(tr16, tr16, m)
        cp = PrecalcKernel(config=CFG, policy=policy_for("FP16C")).run(tr16, tr16, m)
        err_mx = np.nanmean(
            np.abs(mx.qt_row0.astype(np.float64) - ref.qt_row0.astype(np.float64))
        )
        err_cp = np.nanmean(
            np.abs(cp.qt_row0.astype(np.float64) - ref.qt_row0.astype(np.float64))
        )
        assert err_cp <= err_mx * 1.05  # compensation never meaningfully worse


class TestPrecalcCost:
    def test_cost_recorded_once(self, rng):
        tr, tq, _, _ = _device_pair(rng)
        k = PrecalcKernel(config=CFG, policy=policy_for("FP64"))
        k.run(tr, tq, 8)
        assert k.cost.launches == 1
        assert k.cost.bytes_dram > 0
        assert k.cost.flops > 0

    def test_kahan_quadruples_flops(self, rng):
        tr16, tq16, _, _ = _device_pair(rng, dtype=np.float16)
        k_mx = PrecalcKernel(config=CFG, policy=policy_for("Mixed"))
        k_mx.run(tr16, tq16, 8)
        k_cp = PrecalcKernel(config=CFG, policy=policy_for("FP16C"))
        k_cp.run(tr16, tq16, 8)
        assert k_cp.cost.flops == pytest.approx(4 * k_mx.cost.flops)


class TestNaiveQtRow:
    def test_matches_streaming_free_reference(self, rng):
        tr, tq, ref, qry = _device_pair(rng)
        m, row = 8, 13
        out = naive_qt_row(tr, tq, m, row, policy_for("FP64"))
        w = ref[row : row + m, 0]
        a = w - w.mean()
        j = 5
        wq = qry[j : j + m, 0]
        b = wq - wq.mean()
        assert out[0, j] == pytest.approx(np.dot(a, b), rel=1e-9)
