"""Amortised precalculation: plan-level plane cache, batched seeds, stats reuse.

The amortisation layer is a pure performance feature on its default
path: every tile's precalculation assembled from the plan-level plane
cache must be *bit-identical* to what ``PrecalcKernel.run`` produces on
that tile's device slices, for every precision mode (including the Kahan
FP16C path), join type and tile geometry.  The opt-in FFT seed strategy
is the one deliberate numerical deviation and is pinned against the
``precision/errors.py`` dot-product bound instead.  Cost accounting is
pinned too: seed work per tile, the one-off plane pass on exactly one
deterministic carrier, and honest ``precalc_saved_flops`` reporting.
"""

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.multi_tile import compute_multi_tile
from repro.core.tiling import Tile
from repro.engine import JobSpec
from repro.gpu.kernel import KernelCost
from repro.kernels.layout import to_device_layout
from repro.kernels.precalc import (
    PrecalcKernel,
    fft_seed_qt_rows,
    naive_qt_row,
    plane_cost,
    seed_cost,
    seed_qt_rows,
)
from repro.precision.errors import dot_product_error_bound
from repro.precision.modes import PrecisionMode, policy_for
from repro.reporting import render_precalc_savings
from repro.service import PrecalcStatsCache

MODES = ("FP64", "FP32", "FP16", "Mixed", "FP16C")

RESULT_FIELDS = (
    "mu_r", "inv_r", "df_r", "dg_r",
    "mu_q", "inv_q", "df_q", "dg_q",
    "qt_row0", "qt_col0",
)


def _spec_plan(rng, mode, ab, n_tiles, n=150, m=12, d=2, store=None, seed_shift=0):
    ref = rng.normal(size=(n, d)).cumsum(axis=0)
    qry = rng.normal(size=(n - 20, d)).cumsum(axis=0) if ab else None
    cfg = RunConfig(mode=mode, n_tiles=n_tiles)
    spec = JobSpec.from_arrays(ref, qry, m, cfg)
    return spec, spec.plan(precalc_store=store)


def _reference_precalc(plan, tile):
    """What the pre-amortisation per-tile kernel computes for ``tile``."""
    spec = plan.spec
    m = spec.m
    r0, r1 = tile.sample_range_rows(m)
    c0, c1 = tile.sample_range_cols(m)
    tr = np.ascontiguousarray(plan.tr_layout[:, r0:r1])
    shared = plan.tq_layout is plan.tr_layout and (r0, r1) == (c0, c1)
    tq = tr if shared else np.ascontiguousarray(plan.tq_layout[:, c0:c1])
    kernel = PrecalcKernel(config=spec.config.launch, policy=spec.policy)
    return kernel.run(tr, tq, m), kernel.cost


def _assert_results_identical(got, expected, label):
    for name in RESULT_FIELDS:
        a = getattr(got, name)
        b = getattr(expected, name)
        assert a.dtype == b.dtype, f"{name} dtype {label}"
        assert a.tobytes() == b.tobytes(), f"{name} bits {label}"


class TestPlaneBitIdentity:
    """Cache-assembled tiles == per-tile kernel, bit for bit."""

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("ab", [False, True])
    @pytest.mark.parametrize("n_tiles", [4, 6])
    def test_every_tile_matches_per_tile_kernel(self, rng, mode, ab, n_tiles):
        spec, plan = _spec_plan(rng, mode, ab, n_tiles)
        cache = plan.precalc_cache
        assert cache is not None
        assert cache.modes_built == ()  # lazy until the first prepare
        for tile in plan.tiles:
            prepared = cache.prepare(plan, tile)
            expected, _ = _reference_precalc(plan, tile)
            _assert_results_identical(
                prepared.result, expected,
                f"{mode} ab={ab} tile={tile.tile_id}/{n_tiles}",
            )
        assert cache.modes_built == (PrecisionMode.parse(mode),)

    def test_split_child_tile_gets_mid_band_seeds(self, rng):
        """OOM splits create tiles at starts the plan never listed; the
        cache must serve them on demand, still bit-identically."""
        spec, plan = _spec_plan(rng, "FP16", False, 4)
        parent = plan.tiles[3]
        mid = (parent.row_start + parent.row_stop) // 2
        next_id = max(t.tile_id for t in plan.tiles) + 1
        child = Tile(next_id, mid, parent.row_stop,
                     parent.col_start, parent.col_stop)
        prepared = plan.precalc_cache.prepare(plan, child)
        expected, _ = _reference_precalc(plan, child)
        _assert_results_identical(prepared.result, expected, "split child")
        # A split child can never be the plan's min tile_id, so it never
        # carries the plane charge.
        seed_only = seed_cost(
            child.n_rows, child.n_cols, spec.d, spec.m,
            child.n_rows + spec.m - 1, child.n_cols + spec.m - 1,
            spec.policy, spec.config.launch,
        )
        assert prepared.cost.flops == seed_only.flops


class TestFullProfileEquality:
    """Engine output with amortisation on == off, for every mode."""

    @pytest.mark.parametrize("mode", MODES)
    def test_self_join_bitwise(self, rng, mode):
        ref = rng.normal(size=(260, 3)).cumsum(axis=0)
        assert RunConfig().amortize_precalc  # amortisation is the default
        on = compute_multi_tile(ref, None, 16, RunConfig(mode=mode, n_tiles=4))
        off = compute_multi_tile(
            ref, None, 16,
            RunConfig(mode=mode, n_tiles=4, amortize_precalc=False),
        )
        assert np.array_equal(on.profile.view(np.uint8), off.profile.view(np.uint8))
        assert np.array_equal(on.index, off.index)
        assert off.precalc_saved_flops == 0.0
        assert on.precalc_saved_flops > 0.0

    def test_ab_join_bitwise(self, rng):
        ref = rng.normal(size=(240, 2)).cumsum(axis=0)
        qry = rng.normal(size=(200, 2)).cumsum(axis=0)
        on = compute_multi_tile(ref, qry, 12, RunConfig(mode="FP16C", n_tiles=6))
        off = compute_multi_tile(
            ref, qry, 12,
            RunConfig(mode="FP16C", n_tiles=6, amortize_precalc=False),
        )
        assert np.array_equal(on.profile.view(np.uint8), off.profile.view(np.uint8))
        assert np.array_equal(on.index, off.index)

    def test_api_amortize_flag(self, rng):
        from repro import matrix_profile

        ref = rng.normal(size=(180, 2)).cumsum(axis=0)
        r1 = matrix_profile(ref, m=12, mode="FP16", n_tiles=4)
        r2 = matrix_profile(ref, m=12, mode="FP16", n_tiles=4,
                            amortize_precalc=False)
        assert np.array_equal(r1.profile.view(np.uint8), r2.profile.view(np.uint8))
        assert np.array_equal(r1.index, r2.index)


class TestCostAccounting:
    def test_single_tile_cost_is_exactly_historical(self, rng):
        """A single-tile plan charges precisely the old per-tile formula
        and saves nothing."""
        spec, plan = _spec_plan(rng, "FP32", True, 1)
        (tile,) = plan.tiles
        prepared = plan.precalc_cache.prepare(plan, tile)
        _, expected_cost = _reference_precalc(plan, tile)
        assert vars(prepared.cost) == vars(expected_cost)
        assert prepared.saved_flops == 0.0

    def test_single_tile_result_saved_flops_zero(self, rng):
        from repro.core.single_tile import compute_single_tile

        ref = rng.normal(size=(120, 2)).cumsum(axis=0)
        result = compute_single_tile(ref, None, 10, RunConfig(mode="FP64"))
        assert result.precalc_saved_flops == 0.0

    @pytest.mark.parametrize("mode", ["FP64", "FP16C"])
    def test_carrier_and_saved_flops_decomposition(self, rng, mode):
        spec, plan = _spec_plan(rng, mode, False, 4)
        policy = spec.policy
        full_plane = plane_cost(spec.n_r_seg, spec.n_q_seg, spec.d, policy)
        min_id = min(t.tile_id for t in plan.tiles)
        total_saved = 0.0
        for tile in plan.tiles:
            prepared = plan.precalc_cache.prepare(plan, tile)
            seed = seed_cost(
                tile.n_rows, tile.n_cols, spec.d, spec.m,
                tile.n_rows + spec.m - 1, tile.n_cols + spec.m - 1,
                policy, spec.config.launch,
            )
            tile_plane = plane_cost(tile.n_rows, tile.n_cols, spec.d, policy)
            if tile.tile_id == min_id:
                # The deterministic carrier: charged the full plane pass,
                # idempotently on every (re-)execution.
                assert prepared.cost.flops == seed.flops + full_plane.flops
                assert prepared.saved_flops == (
                    tile_plane.flops - full_plane.flops
                )
                again = plan.precalc_cache.prepare(plan, tile)
                assert vars(again.cost) == vars(prepared.cost)
            else:
                assert prepared.cost.flops == seed.flops
                assert prepared.saved_flops == tile_plane.flops
            total_saved += prepared.saved_flops
        assert total_saved > 0.0

    def test_multi_tile_result_reports_total_savings(self, rng):
        ref = rng.normal(size=(260, 3)).cumsum(axis=0)
        cfg = RunConfig(mode="FP32", n_tiles=4)
        result = compute_multi_tile(ref, None, 16, cfg)
        spec = JobSpec.from_arrays(ref, None, 16, cfg)
        plan = spec.plan()
        policy = spec.policy
        expected = sum(
            plane_cost(t.n_rows, t.n_cols, spec.d, policy).flops
            for t in plan.tiles
        ) - plane_cost(spec.n_r_seg, spec.n_q_seg, spec.d, policy).flops
        assert result.precalc_saved_flops == pytest.approx(expected)
        assert expected > 0.0


class TestEscalation:
    def test_escalated_plan_shares_cache_and_builds_on_demand(self, rng):
        spec, plan = _spec_plan(rng, "FP16", False, 4)
        cache = plan.precalc_cache
        cache.prepare(plan, plan.tiles[0])
        assert cache.modes_built == (PrecisionMode.FP16,)

        esc = plan.escalated("FP32")
        assert esc.precalc_cache is cache
        prepared = cache.prepare(esc, esc.tiles[1])
        assert set(cache.modes_built) == {PrecisionMode.FP16, PrecisionMode.FP32}
        expected, _ = _reference_precalc(esc, esc.tiles[1])
        _assert_results_identical(prepared.result, expected, "escalated tile")

    def test_escalated_charge_claimed_once(self, rng):
        spec, plan = _spec_plan(rng, "FP16", False, 4)
        esc = plan.escalated("FP32")
        espec = esc.spec

        def seed_flops(tile):
            return seed_cost(
                tile.n_rows, tile.n_cols, espec.d, espec.m,
                tile.n_rows + espec.m - 1, tile.n_cols + espec.m - 1,
                espec.policy, espec.config.launch,
            ).flops

        # Escalated modes have no planned carrier: the first tile to
        # build the planes claims the charge, later tiles never do —
        # including tile 0, which would have been the base-mode carrier.
        first = plan.precalc_cache.prepare(esc, esc.tiles[2])
        assert first.cost.flops > seed_flops(esc.tiles[2])
        for tile in (esc.tiles[0], esc.tiles[2]):
            later = plan.precalc_cache.prepare(esc, tile)
            assert later.cost.flops == seed_flops(tile)


class TestFFTStrategy:
    @pytest.mark.parametrize("mode", ["FP64", "FP32"])
    def test_fft_seeds_within_error_bound(self, rng, mode):
        """The FFT seeds deviate from the sequential accumulation by at
        most the length-``nfft`` dot-product bound times the Cauchy-
        Schwarz magnitude of each output element."""
        policy = policy_for(mode)
        n, m, d = 220, 16, 2
        series = rng.normal(size=(n, d)).cumsum(axis=0)
        layout = to_device_layout(series, np.float64)
        n_seg = n - m + 1
        windows = np.lib.stride_tricks.sliding_window_view(layout, m, axis=1)
        mu = windows.mean(axis=2)
        centered = windows - mu[:, :, None]
        norms = np.linalg.norm(centered, axis=2)  # (d, n_seg)

        starts = [0, 37, 110]
        args = (layout.astype(policy.precalc), starts,
                layout.astype(policy.precalc),
                mu.astype(policy.precalc), mu.astype(policy.precalc),
                m, policy)
        exact = seed_qt_rows(*args).astype(np.float64)
        fft = fft_seed_qt_rows(*args).astype(np.float64)

        nfft = 1
        while nfft < n + m - 1:
            nfft *= 2
        gamma = dot_product_error_bound(nfft, policy.eps)
        scale = np.stack([norms[:, s] for s in starts])[:, :, None] * norms[None]
        assert np.all(np.abs(fft - exact) <= gamma * scale + 1e-12)

    def test_fft_profile_close_to_exact(self, rng):
        ref = rng.normal(size=(240, 2)).cumsum(axis=0)
        exact = compute_multi_tile(ref, None, 16, RunConfig(mode="FP64", n_tiles=4))
        fft = compute_multi_tile(
            ref, None, 16,
            RunConfig(mode="FP64", n_tiles=4, precalc_strategy="fft"),
        )
        np.testing.assert_allclose(
            fft.profile, exact.profile, rtol=1e-8, atol=1e-10
        )

    def test_strategy_validation(self):
        with pytest.raises(ValueError, match="precalc_strategy"):
            RunConfig(precalc_strategy="nope")
        with pytest.raises(ValueError, match="FP64 and FP32"):
            RunConfig(mode="FP16", precalc_strategy="fft")
        with pytest.raises(ValueError, match="amortize_precalc"):
            RunConfig(precalc_strategy="fft", amortize_precalc=False)

    def test_cache_key_semantics(self):
        # amortize_precalc is bit-exact -> excluded from the result key;
        # the fft strategy changes numerics -> included.
        assert (RunConfig(amortize_precalc=False).cache_key()
                == RunConfig().cache_key())
        assert (RunConfig(precalc_strategy="fft").cache_key()
                != RunConfig().cache_key())
        d = RunConfig().to_dict()
        assert d["amortize_precalc"] is True
        assert d["precalc_strategy"] == "exact"


class TestStatsStore:
    def test_second_plan_hits_and_drops_the_charge(self, rng):
        store = PrecalcStatsCache()
        ref = np.random.default_rng(7).normal(size=(150, 2)).cumsum(axis=0)
        cfg = RunConfig(mode="FP32", n_tiles=4)

        spec1 = JobSpec.from_arrays(ref, None, 12, cfg)
        plan1 = spec1.plan(precalc_store=store)
        first = [plan1.precalc_cache.prepare(plan1, t) for t in plan1.tiles]
        assert store.misses == 1 and store.hits == 0  # one role (self-join)
        assert len(store) == 1

        spec2 = JobSpec.from_arrays(ref, None, 12, cfg)
        plan2 = spec2.plan(precalc_store=store)
        second = [plan2.precalc_cache.prepare(plan2, t) for t in plan2.tiles]
        assert store.hits == 1

        policy = spec2.policy
        for tile, prep1, prep2 in zip(plan2.tiles, first, second):
            _assert_results_identical(prep2.result, prep1.result, "store reuse")
            # Store hit: nobody carries the plane charge, every tile
            # saves its full local plane work.
            seed = seed_cost(
                tile.n_rows, tile.n_cols, spec2.d, spec2.m,
                tile.n_rows + spec2.m - 1, tile.n_cols + spec2.m - 1,
                policy, spec2.config.launch,
            )
            assert prep2.cost.flops == seed.flops
            assert prep2.saved_flops == plane_cost(
                tile.n_rows, tile.n_cols, spec2.d, policy
            ).flops

    def test_ab_partial_hit_charges_missing_role_only(self, rng):
        store = PrecalcStatsCache()
        gen = np.random.default_rng(11)
        ref = gen.normal(size=(150, 2)).cumsum(axis=0)
        qry = gen.normal(size=(130, 2)).cumsum(axis=0)
        cfg = RunConfig(mode="FP32", n_tiles=2)

        spec1 = JobSpec.from_arrays(ref, None, 12, cfg)
        plan1 = spec1.plan(precalc_store=store)
        plan1.precalc_cache.prepare(plan1, plan1.tiles[0])

        spec2 = JobSpec.from_arrays(ref, qry, 12, cfg)
        plan2 = spec2.plan(precalc_store=store)
        carrier = plan2.precalc_cache.prepare(plan2, plan2.tiles[0])
        assert store.hits == 1  # the reference role
        policy = spec2.policy
        tile = plan2.tiles[0]
        seed = seed_cost(
            tile.n_rows, tile.n_cols, spec2.d, spec2.m,
            tile.n_rows + spec2.m - 1, tile.n_cols + spec2.m - 1,
            policy, spec2.config.launch,
        )
        missing = plane_cost(0, spec2.n_q_seg, spec2.d, policy)
        assert carrier.cost.flops == seed.flops + missing.flops

    def test_keying_separates_m_mode_and_series(self, rng):
        store = PrecalcStatsCache()
        gen = np.random.default_rng(3)
        ref = gen.normal(size=(120, 2)).cumsum(axis=0)
        for mode, m in (("FP32", 12), ("FP32", 10), ("FP64", 12)):
            spec = JobSpec.from_arrays(ref, None, m, RunConfig(mode=mode))
            plan = spec.plan(precalc_store=store)
            plan.precalc_cache.prepare(plan, plan.tiles[0])
        assert len(store) == 3 and store.hits == 0

    def test_lru_eviction_and_counters(self):
        store = PrecalcStatsCache(max_entries=1)
        a = {"mu": np.zeros((2, 8))}
        b = {"mu": np.ones((2, 8))}
        store.put("a", a)
        store.put("b", b)
        assert store.evictions == 1
        assert "a" not in store and "b" in store
        assert store.payload_bytes == a["mu"].nbytes
        assert store.get("a") is None and store.get("b") is b
        assert store.stats()["hit_rate"] == 0.5

    def test_on_lookup_callback(self):
        seen = []
        store = PrecalcStatsCache(on_lookup=seen.append)
        store.get("missing")
        store.put("k", {"mu": np.zeros(4)})
        store.get("k")
        assert seen == [False, True]


class TestServiceIntegration:
    def test_repeat_series_jobs_reuse_stats(self, rng):
        from repro.service import JobRequest, MatrixProfileService

        series = rng.normal(size=(200, 2)).cumsum(axis=0)
        service = MatrixProfileService(device="A100", n_gpus=1, n_workers=1)
        # Different tilings: the result cache misses (tiling changes the
        # reduced-precision numerics) but the stats cache hits.
        out1 = service.submit_and_wait(
            JobRequest(reference=series, m=16, mode="FP32", n_tiles=1)
        )
        out2 = service.submit_and_wait(
            JobRequest(reference=series, m=16, mode="FP32", n_tiles=4)
        )
        assert out1.status == "completed" and out2.status == "completed"
        assert not out2.cache_hit
        snap = service.metrics.snapshot()
        assert snap.stats_cache_misses >= 1
        assert snap.stats_cache_hits >= 1
        assert out2.result.precalc_saved_flops > 0.0

    def test_metrics_counters_and_rows(self):
        from repro.service import ServiceMetrics

        metrics = ServiceMetrics()
        metrics.record_stats_cache(True)
        metrics.record_stats_cache(False)
        metrics.record_stats_cache(False)
        snap = metrics.snapshot()
        assert snap.stats_cache_hits == 1
        assert snap.stats_cache_misses == 2
        rows = dict((r[0], r[1]) for r in snap.to_rows())
        assert rows["stats cache hits / misses"] == "1 / 2"


class TestJournalResume:
    def test_resume_restores_saved_flops(self, rng, tmp_path):
        ref = rng.normal(size=(220, 2)).cumsum(axis=0)
        path = tmp_path / "journal"
        cfg = RunConfig(mode="FP32", n_tiles=4)
        result = compute_multi_tile(ref, None, 16, cfg, journal=path)
        assert result.precalc_saved_flops > 0.0

        from repro.engine import RunJournal, resume_plan

        resumed = resume_plan(path)
        assert np.array_equal(resumed.profile, result.profile)
        assert resumed.precalc_saved_flops == result.precalc_saved_flops

        # Journals written before the amortisation layer lack the key;
        # restore must default it to zero, not crash.
        state_path = RunJournal.open(path).state_path
        with np.load(state_path) as data:
            kept = {k: data[k] for k in data.files if k != "precalc_saved_flops"}
        np.savez(state_path, **kept)
        legacy = resume_plan(path)
        assert np.array_equal(legacy.profile, result.profile)
        assert legacy.precalc_saved_flops == 0.0


class TestReportingAndCli:
    def test_render_precalc_savings(self):
        class Stub:
            precalc_saved_flops = 100.0
            costs = {"precalculation": KernelCost(name="PrecalcKernel", flops=300.0)}

        line = render_precalc_savings(Stub())
        assert "100" in line and "25.0%" in line

        class Bare:
            pass

        assert "saved 0 flops" in render_precalc_savings(Bare())

    def test_render_on_real_result(self, rng):
        ref = rng.normal(size=(200, 2)).cumsum(axis=0)
        result = compute_multi_tile(ref, None, 12, RunConfig(n_tiles=4))
        line = render_precalc_savings(result)
        assert "precalc amortisation saved" in line
        assert "%" in line

    def test_cli_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["profile", "x.csv", "-m", "16",
             "--precalc-strategy", "fft", "--no-amortize-precalc"]
        )
        assert args.precalc_strategy == "fft"
        assert args.no_amortize_precalc is True

    def test_api_fft_strategy(self, rng):
        from repro import matrix_profile

        ref = rng.normal(size=(160, 2)).cumsum(axis=0)
        exact = matrix_profile(ref, m=12, mode="FP64", n_tiles=2)
        fft = matrix_profile(ref, m=12, mode="FP64", n_tiles=2,
                             precalc_strategy="fft")
        np.testing.assert_allclose(
            fft.profile, exact.profile, rtol=1e-8, atol=1e-10
        )


class TestNaiveQtRowRegression:
    @pytest.mark.parametrize("mode", ["FP64", "FP16C"])
    def test_self_join_shares_stats_consistently(self, rng, mode):
        """`naive_qt_row(tr, tr, ...)` (aliased self-join) must agree
        bitwise with handing in an equal-valued copy of the series —
        the shared-stats shortcut changes no numerics."""
        policy = policy_for(mode)
        series = rng.normal(size=(100, 2)).cumsum(axis=0)
        tr = to_device_layout(series, policy.storage)
        aliased = naive_qt_row(tr, tr, 10, 7, policy)
        copied = naive_qt_row(tr, tr.copy(), 10, 7, policy)
        assert aliased.tobytes() == copied.tobytes()
