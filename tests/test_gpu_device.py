"""Unit tests for repro.gpu.device."""

import pytest

from repro.gpu.device import A100, DEVICES, RTX3090, SKYLAKE16, V100, get_device


class TestDeviceSpecs:
    def test_v100_matches_paper_section_va(self):
        # "8 NVIDIA Tesla V100 GPUs, each providing 7.8 TFLOP/s double-
        # precision performance, 32 GB device memory capacity, 900 GB/s
        # memory bandwidth and 80 Streaming Multiprocessors"
        assert V100.peak_flops_fp64 == 7.8e12
        assert V100.mem_capacity == 32 * 1024**3
        assert V100.mem_bandwidth == 900e9
        assert V100.n_sms == 80

    def test_a100_matches_paper_section_va(self):
        # "4 NVIDIA Tesla A100 GPUs, each providing 9.7 TFLOP/s ... 40 GB
        # device memory, 1,555 GB/s memory bandwidth and 108 SMs"
        assert A100.peak_flops_fp64 == 9.7e12
        assert A100.mem_capacity == 40 * 1024**3
        assert A100.mem_bandwidth == 1555e9
        assert A100.n_sms == 108

    def test_thread_capacity_matches_tuned_launches(self):
        # Paper: 163,840 threads on V100, 221,184 on A100.
        assert V100.max_threads == 163_840
        assert A100.max_threads == 221_184

    def test_peak_flops_by_itemsize(self):
        assert A100.peak_flops(8) == A100.peak_flops_fp64
        assert A100.peak_flops(4) == A100.peak_flops_fp32
        assert A100.peak_flops(2) == A100.peak_flops_fp16

    def test_peak_flops_rejects_unsupported_itemsize(self):
        # A hypothetical FP8 itemsize must fail loudly, not price at the
        # FP16 rate.
        with pytest.raises(ValueError, match="unsupported itemsize"):
            A100.peak_flops(1)
        with pytest.raises(ValueError, match="expected one of: 2, 4, 8"):
            V100.peak_flops(16)

    def test_peak_flops_table_is_authoritative(self):
        for dev in DEVICES.values():
            table = dev.peak_flops_table
            assert set(table) == {2, 4, 8}
            for itemsize, rate in table.items():
                assert dev.peak_flops(itemsize) == rate

    def test_tensor_core_presence(self):
        for dev in (V100, A100, RTX3090):
            assert dev.has_tensor_cores
            assert dev.peak_flops_tc > dev.peak_flops_fp16
            assert dev.mma_shape == (16, 16, 16)
        assert not SKYLAKE16.has_tensor_cores
        assert SKYLAKE16.peak_flops_tc == 0.0

    def test_cpu_is_host_resident(self):
        assert SKYLAKE16.kind == "cpu"
        assert SKYLAKE16.pcie_bandwidth == 0.0
        assert SKYLAKE16.max_streams == 1

    def test_specs_are_frozen(self):
        with pytest.raises(AttributeError):
            A100.n_sms = 1


class TestGetDevice:
    def test_lookup_by_name_case_insensitive(self):
        assert get_device("a100") is A100
        assert get_device("V100") is V100
        assert get_device("skylake16") is SKYLAKE16

    def test_passthrough(self):
        assert get_device(A100) is A100

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown device"):
            get_device("H100")

    def test_registry_complete(self):
        assert set(DEVICES) == {"v100", "a100", "rtx3090", "skylake16"}
