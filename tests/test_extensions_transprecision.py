"""Unit tests for the TF32/BFLOAT16 transprecision extension."""

import numpy as np
import pytest

from repro.baselines.mstamp import mstamp
from repro.extensions.transprecision import (
    BF16,
    SOFT_FP16,
    TF32,
    SoftFormat,
    round_to_format,
    transprecision_itemsize,
    transprecision_matrix_profile,
)


class TestFormats:
    def test_bf16_parameters(self):
        assert BF16.precision == 8
        assert BF16.eps == 2.0**-8
        # bfloat16 max = 0x7F7F ~ 3.39e38
        assert BF16.max_value == pytest.approx(3.3895e38, rel=1e-3)

    def test_tf32_parameters(self):
        assert TF32.precision == 11
        assert TF32.eps == 2.0**-11
        assert TF32.emax == 127  # float32 range, fp16 precision

    def test_itemsize(self):
        assert transprecision_itemsize(TF32) == 4
        assert transprecision_itemsize(BF16) == 2
        assert transprecision_itemsize(SOFT_FP16) == 2


class TestRounding:
    def test_soft_fp16_matches_native_normals(self, rng):
        x = rng.normal(size=5000) * 100
        soft = round_to_format(x, SOFT_FP16)
        native = x.astype(np.float16).astype(np.float64)
        # Identical on normal-range values (we flush subnormals; normals match).
        normal = np.abs(native) >= 2.0**-14
        assert np.array_equal(soft[normal], native[normal])

    def test_fp16_overflow_to_inf(self):
        assert np.isinf(round_to_format(np.array([1e5]), SOFT_FP16))[0]

    def test_bf16_keeps_float32_range(self):
        out = round_to_format(np.array([1e38]), BF16)
        assert np.isfinite(out[0])

    def test_bf16_coarse_mantissa(self):
        # 1 + 2^-9 is below bf16 resolution (eps = 2^-8): rounds to 1.
        assert round_to_format(np.array([1.0 + 2.0**-9]), BF16)[0] == 1.0
        # ...but within TF32 resolution.
        assert round_to_format(np.array([1.0 + 2.0**-9]), TF32)[0] != 1.0

    def test_round_to_nearest(self):
        # Halfway between two bf16 values rounds to even.
        x = np.array([1.0 + 2.0**-8 / 2.0])
        assert round_to_format(x, BF16)[0] == 1.0

    def test_zero_and_nan(self):
        out = round_to_format(np.array([0.0, np.nan, np.inf]), BF16)
        assert out[0] == 0.0
        assert np.isnan(out[1])
        assert np.isinf(out[2])

    def test_underflow_flushes(self):
        assert round_to_format(np.array([1e-40]), SOFT_FP16)[0] == 0.0

    def test_idempotent(self, rng):
        x = rng.normal(size=200)
        once = round_to_format(x, TF32)
        np.testing.assert_array_equal(once, round_to_format(once, TF32))


class TestTransprecisionProfile:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(3)
        ref = rng.normal(size=(200, 3))
        qry = rng.normal(size=(180, 3))
        return ref, qry, 16

    def test_tf32_high_recall(self, data):
        ref, qry, m = data
        p64, i64 = mstamp(ref, qry, m)
        p, i = transprecision_matrix_profile(ref, qry, m, TF32)
        assert np.mean(i == i64) > 0.95
        assert np.mean(np.abs(p - p64) / p64) < 0.01

    def test_bf16_worse_than_tf32(self, data):
        # TF32 has 3 more significand bits: it must track FP64 better.
        ref, qry, m = data
        p64, _ = mstamp(ref, qry, m)
        p_tf, _ = transprecision_matrix_profile(ref, qry, m, TF32)
        p_bf, _ = transprecision_matrix_profile(ref, qry, m, BF16)
        err_tf = np.mean(np.abs(p_tf - p64) / p64)
        err_bf = np.mean(np.abs(p_bf - p64) / p64)
        assert err_tf < err_bf

    def test_self_join(self, data):
        ref, _, m = data
        p, i = transprecision_matrix_profile(ref, None, m, TF32)
        pos = np.arange(p.shape[0])
        valid = i[:, 0] >= 0
        assert np.all(np.abs(i[valid, 0] - pos[valid]) > m // 4)

    def test_dim_mismatch(self, rng):
        with pytest.raises(ValueError):
            transprecision_matrix_profile(
                rng.normal(size=(50, 2)), rng.normal(size=(50, 3)), 8, BF16
            )

    def test_custom_format(self, data):
        # An 18-bit format should land between TF32 and FP64.
        ref, qry, m = data
        fmt = SoftFormat(name="FP18ish", precision=18, emax=127, emin=-126)
        p64, i64 = mstamp(ref, qry, m)
        p, i = transprecision_matrix_profile(ref, qry, m, fmt)
        assert np.mean(i == i64) > 0.99
