"""Unit tests for the dataset generators."""

import numpy as np
import pytest

from repro.datasets.genome import encode_bases, make_genome_dataset
from repro.datasets.hpcoda import (
    APPLICATION_CLASSES,
    SENSOR_NAMES,
    make_hpcoda_dataset,
)
from repro.datasets.patterns import PATTERN_NAMES, all_patterns, generate_pattern
from repro.datasets.synthetic import make_stress_dataset, noise_series
from repro.datasets.turbine import (
    PAIR_CATEGORIES,
    make_turbine_pairs,
    make_turbine_series,
    startup_pattern,
)


class TestPatterns:
    def test_eight_patterns(self):
        assert len(PATTERN_NAMES) == 8
        waves = all_patterns(64)
        assert set(waves) == set(PATTERN_NAMES)

    @pytest.mark.parametrize("name", PATTERN_NAMES)
    def test_normalised_to_unit_range(self, name):
        w = generate_pattern(name, 48)
        assert w.shape == (48,)
        assert np.max(np.abs(w)) == pytest.approx(1.0)

    def test_patterns_mutually_distinct(self):
        waves = all_patterns(64)
        names = list(waves)
        for a in range(len(names)):
            for b in range(a + 1, len(names)):
                assert not np.allclose(waves[names[a]], waves[names[b]], atol=0.1)

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            generate_pattern("P8", 32)

    def test_too_short(self):
        with pytest.raises(ValueError):
            generate_pattern("P0", 2)


class TestStressDataset:
    def test_shapes_and_ground_truth(self):
        ds = make_stress_dataset(n=800, d=4, m=32, seed=7)
        assert ds.reference.shape == (800, 4)
        assert ds.query.shape == (800, 4)
        assert len(ds.motifs) == 8  # one per pattern

    def test_motifs_actually_embedded(self):
        ds = make_stress_dataset(n=800, d=4, m=32, amplitude=6.0, seed=7)
        for mo in ds.motifs:
            seg_r = ds.reference[mo.ref_pos : mo.ref_pos + 32, mo.dim]
            seg_q = ds.query[mo.query_pos : mo.query_pos + 32, mo.dim]
            # The shared pattern dominates: segments correlate strongly.
            corr = np.corrcoef(seg_r, seg_q)[0, 1]
            assert corr > 0.8, f"{mo.pattern}: corr={corr:.2f}"

    def test_non_overlapping(self):
        ds = make_stress_dataset(n=2000, d=2, m=40, motifs_per_pattern=2, seed=3)
        pos = sorted(mo.ref_pos for mo in ds.motifs)
        assert all(b - a >= 40 for a, b in zip(pos, pos[1:]))

    def test_deterministic(self):
        a = make_stress_dataset(n=600, d=2, m=24, seed=5)
        b = make_stress_dataset(n=600, d=2, m=24, seed=5)
        np.testing.assert_array_equal(a.reference, b.reference)

    def test_too_small_n(self):
        with pytest.raises(ValueError):
            make_stress_dataset(n=100, d=2, m=32)

    def test_noise_series_shape(self, rng):
        assert noise_series(100, 3, rng).shape == (100, 3)


class TestHPCODA:
    def test_shapes_and_labels(self):
        ds = make_hpcoda_dataset(n_per_half=512, d=8, seed=1)
        assert ds.reference.shape == (512, 8)
        assert ds.query_labels.shape == (512,)
        assert set(np.unique(ds.reference_labels)) <= set(range(len(APPLICATION_CLASSES)))

    def test_round_robin_covers_classes(self):
        ds = make_hpcoda_dataset(n_per_half=4096, d=4, seed=2)
        # With ~16+ phases, every class should appear in both halves.
        assert len(np.unique(ds.reference_labels)) == len(APPLICATION_CLASSES)
        assert len(np.unique(ds.query_labels)) == len(APPLICATION_CLASSES)

    def test_segment_labels_midpoint(self):
        ds = make_hpcoda_dataset(n_per_half=512, d=4, seed=1)
        m = 32
        seg = ds.segment_labels(ds.reference_labels, m)
        assert seg.shape == (512 - m + 1,)
        assert seg[0] == ds.reference_labels[m // 2]

    def test_too_many_sensors(self):
        with pytest.raises(ValueError):
            make_hpcoda_dataset(d=len(SENSOR_NAMES) + 1)


class TestGenome:
    def test_encoding_map(self):
        np.testing.assert_array_equal(encode_bases("ACTG"), [1.0, 2.0, 3.0, 4.0])

    def test_unknown_base(self):
        with pytest.raises(ValueError):
            encode_bases("ACTN")

    def test_values_in_alphabet(self):
        ds = make_genome_dataset(n=1024, d=3, m=64, seed=2)
        assert set(np.unique(ds.reference)) <= {1.0, 2.0, 3.0, 4.0}

    def test_genes_planted_with_mutations(self):
        ds = make_genome_dataset(n=1024, d=2, m=64, mutation_rate=0.05, seed=2)
        for gene in ds.genes:
            ref_gene = ds.reference[gene.ref_pos : gene.ref_pos + 64, gene.chromosome]
            qry_gene = ds.query[gene.query_pos : gene.query_pos + 64, gene.chromosome]
            matches = np.mean(ref_gene == qry_gene)
            assert matches > 0.8  # conserved up to the mutation rate

    def test_gene_count(self):
        ds = make_genome_dataset(n=2048, d=4, m=64, genes_per_chromosome=3, seed=1)
        assert len(ds.genes) == 12

    def test_too_short(self):
        with pytest.raises(ValueError):
            make_genome_dataset(n=100, d=2, m=64)


class TestTurbine:
    def test_startup_patterns_rise_to_full_speed(self):
        for kind in ("P1", "P2"):
            w = startup_pattern(kind, 256)
            assert w[0] == pytest.approx(0.0, abs=0.02)
            assert w[-1] == pytest.approx(1.0, abs=0.02)
            assert np.all(np.diff(w) >= -1e-9)  # monotone ramps

    def test_p1_has_intermediate_plateau(self):
        w = startup_pattern("P1", 400)
        mid = w[int(0.35 * 400) : int(0.5 * 400)]
        assert np.ptp(mid) < 0.02  # flat hold stage
        assert 0.4 < mid.mean() < 0.75

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            startup_pattern("P3", 100)

    def test_series_minmax_normalised(self):
        ts = make_turbine_series(4096, 256, ("P1",), "GT2", seed=3)
        assert ts.values.min() == pytest.approx(0.0)
        assert ts.values.max() == pytest.approx(1.0)

    def test_startups_recorded(self):
        ts = make_turbine_series(6000, 256, ("P1", "P2"), seed=3)
        assert [k for k, _ in ts.startups] == ["P1", "P2"]
        assert ts.positions_of("P1") and ts.positions_of("P2")

    def test_machine_validation(self):
        with pytest.raises(ValueError):
            make_turbine_series(4096, 256, ("P1",), "GT3")

    def test_pair_categories_table1(self):
        names = [c.name for c in PAIR_CATEGORIES]
        assert names == ["P1-P1", "P2-P2", "both-P1", "both-P2"]
        both_p1 = PAIR_CATEGORIES[2]
        assert both_p1.reference_patterns == ("P1", "P2")
        assert both_p1.target == "P1"

    def test_make_pairs(self):
        pairs = make_turbine_pairs(PAIR_CATEGORIES[0], 3, 3000, 256, seed=5)
        assert len(pairs) == 3
        ref, qry = pairs[0]
        assert ref.machine == "GT1"
        assert ref.positions_of("P1")
