"""Unit tests for the MPdist sequence distance."""

import numpy as np
import pytest

from repro.apps.mpdist import mpdist, mpdist_profile


class TestMPdist:
    def test_identical_sequences_zero(self, rng):
        a = rng.normal(size=(60, 1))
        assert mpdist(a, a.copy()) == pytest.approx(0.0, abs=1e-6)

    def test_shift_tolerance(self, rng):
        # A periodic pattern shifted by a fraction of its period: z-norm
        # distance is large, MPdist stays near zero.
        t = np.arange(200)
        x = np.sin(2 * np.pi * t / 11)[:, None] + 0.01 * rng.normal(size=(200, 1))
        a = x[10:50]
        b = x[15:55]  # 5-sample shift
        from repro.apps.consensus import distance_profile

        znorm = float(distance_profile(a, b, 40)[0])
        assert mpdist(a, b) < 0.3
        assert znorm > 1.0  # the aligned distance is much larger

    def test_different_patterns_far(self, rng):
        t = np.arange(60)
        a = np.sin(2 * np.pi * t / 7)[:, None]
        b = ((t % 30) / 30.0)[:, None]
        assert mpdist(a, b) > 1.0

    def test_symmetryish(self, rng):
        a = rng.normal(size=(50, 1))
        b = rng.normal(size=(50, 1))
        assert mpdist(a, b) == pytest.approx(mpdist(b, a), rel=1e-9)

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            mpdist(rng.normal(size=(40, 1)), rng.normal(size=(40, 2)))

    def test_subm_validation(self, rng):
        with pytest.raises(ValueError):
            mpdist(rng.normal(size=(20, 1)), rng.normal(size=(20, 1)), subm=30)


class TestMPdistProfile:
    def test_shape(self, rng):
        q = rng.normal(size=(30, 1))
        t = rng.normal(size=(200, 1))
        prof = mpdist_profile(q, t)
        assert prof.shape == (171,)

    def test_self_location_near_zero(self, rng):
        t = rng.normal(size=(200, 1))
        q = t[80:110].copy()
        prof = mpdist_profile(q, t)
        assert prof[80] == pytest.approx(0.0, abs=1e-6)
        # MPdist's 5% quantile is generous to overlapping windows, but
        # windows far from the source must score clearly worse.
        far = np.concatenate([prof[: 80 - 30], prof[110 + 1 :]])
        assert far.min() > 0.5

    def test_profile_matches_pairwise_at_probe(self, rng):
        # The sliding profile at position j equals (up to the k quantile
        # convention) the pairwise mpdist against that window.
        t = np.arange(150)
        x = np.sin(2 * np.pi * t / 9)[:, None] + 0.05 * rng.normal(size=(150, 1))
        q = x[20:60]
        prof = mpdist_profile(q, x)
        direct = mpdist(q, x[70:110])
        assert prof[70] == pytest.approx(direct, abs=0.2)

    def test_series_too_short(self, rng):
        with pytest.raises(ValueError):
            mpdist_profile(rng.normal(size=(50, 1)), rng.normal(size=(30, 1)))
