"""Unit tests for the single-tile algorithm (Pseudocode 1)."""

import numpy as np
import pytest

from repro.baselines.mstamp import mstamp
from repro.core.config import RunConfig
from repro.core.single_tile import compute_single_tile, run_tile
from repro.gpu.kernel import LaunchConfig
from repro.kernels.layout import to_device_layout
from repro.precision.modes import PrecisionMode, policy_for

CFG = LaunchConfig(grid=4, block=64)


class TestComputeSingleTile:
    def test_matches_cpu_reference_fp64(self, small_pair):
        ref, qry, m = small_pair
        p_ref, i_ref = mstamp(ref, qry, m)
        result = compute_single_tile(ref, qry, m, RunConfig(mode="FP64"))
        np.testing.assert_allclose(result.profile, p_ref, atol=1e-10)
        np.testing.assert_array_equal(result.index, i_ref)

    def test_self_join_excludes_trivial_matches(self, small_pair):
        ref, _, m = small_pair
        result = compute_single_tile(ref, None, m, RunConfig(mode="FP64"))
        # No index may fall inside the exclusion zone of its own position.
        zone = int(np.ceil(m / 4))
        positions = np.arange(result.n_q_seg)
        for k in range(result.d):
            idx = result.index[:, k]
            valid = idx >= 0
            assert np.all(np.abs(idx[valid] - positions[valid]) > zone)

    def test_result_metadata(self, small_pair):
        ref, qry, m = small_pair
        result = compute_single_tile(ref, qry, m, RunConfig(mode="FP32"))
        assert result.mode is PrecisionMode.FP32
        assert result.m == m
        assert result.n_tiles == 1
        assert result.n_gpus == 1
        assert result.modeled_time > 0
        assert set(result.costs) == {
            "precalculation",
            "dist_calc",
            "sort_&_incl_scan",
            "update_mat_prof",
        }

    def test_timeline_has_transfers_and_kernels(self, small_pair):
        ref, qry, m = small_pair
        result = compute_single_tile(ref, qry, m, RunConfig())
        engines = {op.engine for op in result.timeline.ops}
        assert engines == {"h2d", "compute", "d2h"}
        breakdown = result.kernel_breakdown()
        assert len(breakdown) == 4

    def test_dimension_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="d="):
            compute_single_tile(
                rng.normal(size=(50, 2)), rng.normal(size=(50, 3)), 8, RunConfig()
            )

    def test_1d_input(self, rng):
        x = rng.normal(size=300).cumsum()
        result = compute_single_tile(x, None, 16, RunConfig())
        assert result.profile.shape == (285, 1)

    def test_profile_is_float64_host_side(self, small_pair):
        ref, qry, m = small_pair
        result = compute_single_tile(ref, qry, m, RunConfig(mode="FP16"))
        assert result.profile.dtype == np.float64
        assert result.index.dtype == np.int64


class TestRunTile:
    def test_offsets_make_indices_global(self, rng):
        ref = rng.normal(size=(60, 1)).cumsum(axis=0)
        qry = rng.normal(size=(50, 1)).cumsum(axis=0)
        m = 8
        policy = policy_for("FP64")
        out = run_tile(
            to_device_layout(ref, policy.storage),
            to_device_layout(qry, policy.storage),
            m,
            policy,
            CFG,
            row_offset=1000,
        )
        assert np.all(out.indices >= 1000)

    def test_exclusion_zone_with_offsets(self, rng):
        # A tile straddling the diagonal must exclude matches near it.
        series = rng.normal(size=(80, 1)).cumsum(axis=0)
        policy = policy_for("FP64")
        dev = to_device_layout(series, policy.storage)
        m = 8
        out = run_tile(dev, dev, m, policy, CFG, exclusion_zone=2)
        n_seg = dev.shape[1] - m + 1
        for j in range(n_seg):
            if out.indices[0, j] >= 0:
                assert abs(out.indices[0, j] - j) > 2

    def test_transfer_byte_accounting(self, rng):
        ref = rng.normal(size=(60, 2))
        policy = policy_for("FP16")
        dev = to_device_layout(ref, policy.storage)
        out = run_tile(dev, dev, 8, policy, CFG)
        assert out.h2d_bytes == 2 * 60 * 2 * 2  # both series, fp16
        n_seg = 53
        assert out.d2h_bytes == n_seg * 2 * (2 + 8)  # P (fp16) + I (int64)

    def test_m_leaves_no_segments(self, rng):
        policy = policy_for("FP64")
        dev = to_device_layout(rng.normal(size=(10, 1)), policy.storage)
        with pytest.raises(ValueError):
            run_tile(dev, dev, 11, policy, CFG)
