"""Unit tests for repro.gpu.stream (discrete-event stream scheduler)."""

import pytest

from repro.gpu.stream import DeviceQueues, Stream, Timeline, flush_streams


@pytest.fixture
def device():
    return DeviceQueues(name="A100", index=0)


@pytest.fixture
def timeline():
    return Timeline()


class TestSingleStream:
    def test_sequential_ops(self, device, timeline):
        s = Stream(device=device, stream_id=0)
        s.h2d("in", 1.0, timeline)
        s.kernel("k", 2.0, timeline)
        s.d2h("out", 0.5, timeline)
        assert timeline.makespan == 3.5
        assert [op.start for op in timeline.ops] == [0.0, 1.0, 3.0]

    def test_overhead_extends_stream_not_engine(self, device, timeline):
        s = Stream(device=device, stream_id=0)
        s.kernel("k1", 1.0, timeline, overhead=0.5)
        # The stream waits for the overhead...
        assert s.ready == 1.5
        # ...but the compute engine frees up after the busy part.
        assert device.engine_ready["compute"] == 1.0

    def test_negative_duration_raises(self, device, timeline):
        s = Stream(device=device, stream_id=0)
        with pytest.raises(ValueError):
            s.kernel("bad", -1.0, timeline)

    def test_unknown_engine_raises(self, device, timeline):
        s = Stream(device=device, stream_id=0)
        with pytest.raises(ValueError, match="unknown engine"):
            device.schedule(s, "dma3", "x", 1.0, timeline)


class TestConcurrency:
    def test_transfers_overlap_compute(self, device, timeline):
        # Stream 0 computes while stream 1 uploads: copy engine != SMs.
        s0 = Stream(device=device, stream_id=0)
        s1 = Stream(device=device, stream_id=1)
        s0.kernel("k0", 5.0, timeline)
        s1.h2d("in1", 3.0, timeline)
        assert timeline.makespan == 5.0  # upload hidden under compute

    def test_compute_serialises_across_streams(self, device, timeline):
        s0 = Stream(device=device, stream_id=0)
        s1 = Stream(device=device, stream_id=1)
        s0.kernel("k0", 5.0, timeline)
        s1.kernel("k1", 5.0, timeline)
        assert timeline.makespan == 10.0  # SMs are exclusive

    def test_overhead_hidden_under_concurrency(self, device, timeline):
        # The Fig. 7 effect: launch/sync gaps of one stream are filled by
        # another stream's kernels.
        s0 = Stream(device=device, stream_id=0)
        s1 = Stream(device=device, stream_id=1)
        s0.kernel("k0a", 1.0, timeline, overhead=1.0)
        s1.kernel("k1a", 1.0, timeline, overhead=1.0)
        s0.kernel("k0b", 1.0, timeline, overhead=1.0)
        s1.kernel("k1b", 1.0, timeline, overhead=1.0)
        # Busy time is 4.0; with a single stream the makespan would be 8.0.
        assert timeline.makespan < 8.0

    def test_single_stream_pays_overhead(self, device, timeline):
        s0 = Stream(device=device, stream_id=0)
        s0.kernel("a", 1.0, timeline, overhead=1.0)
        s0.kernel("b", 1.0, timeline, overhead=1.0)
        assert timeline.makespan == 4.0


class TestManyStreamEngineExclusivity:
    """The paper's 16-non-blocking-stream regime: engines stay exclusive
    no matter how many streams contend, while the copy engines overlap
    the SMs."""

    N_STREAMS = 16

    @pytest.fixture
    def flushed(self, device, timeline):
        # 16 streams, each enqueueing a full tile pipeline
        # (h2d -> 2 kernels -> d2h), placed by the event-driven scheduler.
        streams = [Stream(device=device, stream_id=s) for s in range(self.N_STREAMS)]
        for s in streams:
            s.enqueue("h2d", f"h2d:t{s.stream_id}", 0.3)
            s.enqueue("compute", f"dist:t{s.stream_id}", 1.0, overhead=0.2)
            s.enqueue("compute", f"update:t{s.stream_id}", 0.5, overhead=0.1)
            s.enqueue("d2h", f"d2h:t{s.stream_id}", 0.2)
        flush_streams(streams, timeline)
        return timeline

    @pytest.mark.parametrize("engine", ["compute", "h2d", "d2h"])
    def test_no_two_ops_overlap_on_one_engine(self, flushed, engine):
        # The engine-exclusive window is [start, start + busy]; the
        # trailing overhead only delays the issuing stream, not the engine.
        ops = sorted(
            (op for op in flushed.ops if op.engine == engine),
            key=lambda op: op.start,
        )
        assert len(ops) >= self.N_STREAMS
        for prev, nxt in zip(ops, ops[1:]):
            assert nxt.start >= prev.start + prev.busy, (
                f"{nxt.label} starts at {nxt.start} inside "
                f"{prev.label}'s busy window"
            )

    def test_transfers_overlap_compute_across_streams(self, flushed):
        # Some h2d/d2h op must run strictly inside some kernel's busy
        # window — the overlap that motivates non-blocking streams.
        kernels = [op for op in flushed.ops if op.engine == "compute"]
        copies = [op for op in flushed.ops if op.engine != "compute"]
        assert any(
            k.start < c.start and c.start + c.busy <= k.start + k.busy
            for k in kernels
            for c in copies
        )

    def test_concurrency_beats_serial_execution(self, flushed):
        # All three engines working: the makespan must be well under the
        # sum of all op durations (the single-engine serial bound).
        serial = sum(op.duration for op in flushed.ops)
        assert flushed.makespan < serial

    def test_makespan_bounded_below_by_busiest_engine(self, flushed):
        for engine in ("compute", "h2d", "d2h"):
            busy = sum(op.busy for op in flushed.ops if op.engine == engine)
            assert flushed.makespan >= busy

    def test_every_stream_ran_in_order(self, flushed):
        # Per-stream op order must match submission order (in-order streams).
        for sid in range(self.N_STREAMS):
            ops = [op for op in flushed.ops if op.stream == sid]
            labels = [op.label.split(":", 1)[0] for op in ops]
            assert labels == ["h2d", "dist", "update", "d2h"]
            starts = [op.start for op in ops]
            assert starts == sorted(starts)


class TestTimeline:
    def test_kernel_breakdown_groups_by_prefix(self, device, timeline):
        s = Stream(device=device, stream_id=0)
        s.kernel("dist_calc:tile0", 1.0, timeline)
        s.kernel("dist_calc:tile1", 2.0, timeline)
        s.kernel("sort_&_incl_scan:tile0", 4.0, timeline)
        bd = timeline.kernel_breakdown()
        assert bd["dist_calc"] == 3.0
        assert bd["sort_&_incl_scan"] == 4.0

    def test_breakdown_excludes_transfers(self, device, timeline):
        s = Stream(device=device, stream_id=0)
        s.h2d("h2d:tile0", 9.0, timeline)
        s.kernel("k:tile0", 1.0, timeline)
        assert "h2d" not in timeline.kernel_breakdown()
        assert timeline.transfer_time() == 9.0

    def test_device_busy_time(self, device, timeline):
        s = Stream(device=device, stream_id=0)
        s.kernel("k", 2.0, timeline)
        s.kernel("k2", 3.0, timeline)
        assert timeline.device_busy_time(0) == 5.0
        assert timeline.device_busy_time(1) == 0.0

    def test_empty_makespan_zero(self, timeline):
        assert timeline.makespan == 0.0
