"""Unit tests for repro.gpu.stream (discrete-event stream scheduler)."""

import pytest

from repro.gpu.stream import DeviceQueues, Stream, Timeline


@pytest.fixture
def device():
    return DeviceQueues(name="A100", index=0)


@pytest.fixture
def timeline():
    return Timeline()


class TestSingleStream:
    def test_sequential_ops(self, device, timeline):
        s = Stream(device=device, stream_id=0)
        s.h2d("in", 1.0, timeline)
        s.kernel("k", 2.0, timeline)
        s.d2h("out", 0.5, timeline)
        assert timeline.makespan == 3.5
        assert [op.start for op in timeline.ops] == [0.0, 1.0, 3.0]

    def test_overhead_extends_stream_not_engine(self, device, timeline):
        s = Stream(device=device, stream_id=0)
        s.kernel("k1", 1.0, timeline, overhead=0.5)
        # The stream waits for the overhead...
        assert s.ready == 1.5
        # ...but the compute engine frees up after the busy part.
        assert device.engine_ready["compute"] == 1.0

    def test_negative_duration_raises(self, device, timeline):
        s = Stream(device=device, stream_id=0)
        with pytest.raises(ValueError):
            s.kernel("bad", -1.0, timeline)

    def test_unknown_engine_raises(self, device, timeline):
        s = Stream(device=device, stream_id=0)
        with pytest.raises(ValueError, match="unknown engine"):
            device.schedule(s, "dma3", "x", 1.0, timeline)


class TestConcurrency:
    def test_transfers_overlap_compute(self, device, timeline):
        # Stream 0 computes while stream 1 uploads: copy engine != SMs.
        s0 = Stream(device=device, stream_id=0)
        s1 = Stream(device=device, stream_id=1)
        s0.kernel("k0", 5.0, timeline)
        s1.h2d("in1", 3.0, timeline)
        assert timeline.makespan == 5.0  # upload hidden under compute

    def test_compute_serialises_across_streams(self, device, timeline):
        s0 = Stream(device=device, stream_id=0)
        s1 = Stream(device=device, stream_id=1)
        s0.kernel("k0", 5.0, timeline)
        s1.kernel("k1", 5.0, timeline)
        assert timeline.makespan == 10.0  # SMs are exclusive

    def test_overhead_hidden_under_concurrency(self, device, timeline):
        # The Fig. 7 effect: launch/sync gaps of one stream are filled by
        # another stream's kernels.
        s0 = Stream(device=device, stream_id=0)
        s1 = Stream(device=device, stream_id=1)
        s0.kernel("k0a", 1.0, timeline, overhead=1.0)
        s1.kernel("k1a", 1.0, timeline, overhead=1.0)
        s0.kernel("k0b", 1.0, timeline, overhead=1.0)
        s1.kernel("k1b", 1.0, timeline, overhead=1.0)
        # Busy time is 4.0; with a single stream the makespan would be 8.0.
        assert timeline.makespan < 8.0

    def test_single_stream_pays_overhead(self, device, timeline):
        s0 = Stream(device=device, stream_id=0)
        s0.kernel("a", 1.0, timeline, overhead=1.0)
        s0.kernel("b", 1.0, timeline, overhead=1.0)
        assert timeline.makespan == 4.0


class TestTimeline:
    def test_kernel_breakdown_groups_by_prefix(self, device, timeline):
        s = Stream(device=device, stream_id=0)
        s.kernel("dist_calc:tile0", 1.0, timeline)
        s.kernel("dist_calc:tile1", 2.0, timeline)
        s.kernel("sort_&_incl_scan:tile0", 4.0, timeline)
        bd = timeline.kernel_breakdown()
        assert bd["dist_calc"] == 3.0
        assert bd["sort_&_incl_scan"] == 4.0

    def test_breakdown_excludes_transfers(self, device, timeline):
        s = Stream(device=device, stream_id=0)
        s.h2d("h2d:tile0", 9.0, timeline)
        s.kernel("k:tile0", 1.0, timeline)
        assert "h2d" not in timeline.kernel_breakdown()
        assert timeline.transfer_time() == 9.0

    def test_device_busy_time(self, device, timeline):
        s = Stream(device=device, stream_id=0)
        s.kernel("k", 2.0, timeline)
        s.kernel("k2", 3.0, timeline)
        assert timeline.device_busy_time(0) == 5.0
        assert timeline.device_busy_time(1) == 0.0

    def test_empty_makespan_zero(self, timeline):
        assert timeline.makespan == 0.0
