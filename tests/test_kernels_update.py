"""Unit tests for the update_mat_prof kernel (running min/argmin merge)."""

import numpy as np
import pytest

from repro.gpu.kernel import LaunchConfig
from repro.kernels.update import INDEX_DTYPE, UpdateKernel
from repro.precision.modes import policy_for

CFG = LaunchConfig(grid=2, block=32)


def _kernel(mode="FP64", d=3, n=10):
    k = UpdateKernel(config=CFG, policy=policy_for(mode))
    k.allocate(d, n)
    return k


class TestAllocate:
    def test_initial_state(self):
        k = _kernel()
        assert k.profile.shape == (3, 10)
        assert np.all(k.indices == -1)
        assert np.all(k.profile == np.finfo(np.float64).max)

    def test_fp16_initialises_to_half_max(self):
        k = _kernel("FP16")
        assert k.profile.dtype == np.float16
        assert np.all(k.profile == np.float16(65504.0))


class TestMerge:
    def test_min_semantics(self, rng):
        k = _kernel()
        a = np.abs(rng.normal(size=(3, 10)))
        b = np.abs(rng.normal(size=(3, 10)))
        k.run(a, 0)
        k.run(b, 1)
        np.testing.assert_array_equal(k.profile, np.minimum(a, b))
        np.testing.assert_array_equal(k.indices, np.where(b < a, 1, 0))

    def test_ties_keep_first_row(self):
        k = _kernel(d=1, n=3)
        plane = np.ones((1, 3))
        k.run(plane, 0)
        k.run(plane.copy(), 1)
        assert np.all(k.indices == 0)

    def test_row_offset_recorded_globally(self, rng):
        k = _kernel()
        k.run(np.abs(rng.normal(size=(3, 10))), 2, row_offset=100)
        assert np.all(k.indices == 102)

    def test_shape_mismatch_raises(self):
        k = _kernel()
        with pytest.raises(ValueError, match="plane shape"):
            k.run(np.zeros((3, 5)), 0)

    def test_index_dtype(self):
        assert INDEX_DTYPE == np.int64


class TestMaskedMerge:
    def test_excluded_columns_never_update(self, rng):
        k = _kernel(d=2, n=6)
        plane = np.full((2, 6), 0.5)
        mask = np.zeros((1, 6), dtype=bool)
        mask[0, 2:4] = True
        k.masked_run(plane, 0, mask)
        assert np.all(k.indices[:, 2:4] == -1)
        assert np.all(k.indices[:, :2] == 0)

    def test_mask_per_row(self, rng):
        k = _kernel(d=1, n=4)
        k.masked_run(np.full((1, 4), 3.0), 0, np.array([[True, False, False, False]]))
        k.masked_run(np.full((1, 4), 2.0), 1, np.array([[False, True, False, False]]))
        # col 0: only row 1 allowed; col 1: only row 0; cols 2-3: row 1 wins.
        np.testing.assert_array_equal(k.indices[0], [1, 0, 1, 1])
        np.testing.assert_array_equal(k.profile[0], [2.0, 3.0, 2.0, 2.0])


class TestUpdateCost:
    def test_accounting(self, rng):
        k = _kernel()
        plane = np.abs(rng.normal(size=(3, 10)))
        k.run(plane, 0)
        k.run(plane, 1)
        assert k.cost.launches == 2
        assert k.cost.bytes_dram == pytest.approx(2 * 2.0 * plane.size * 8)
