"""Unit tests for the cross-implementation validation harness."""

import numpy as np
import pytest

from repro.validation import Agreement, validate_implementations


class TestValidation:
    @pytest.fixture(scope="class")
    def report(self):
        rng = np.random.default_rng(17)
        ref = rng.normal(size=(180, 3)).cumsum(axis=0)
        qry = rng.normal(size=(160, 3)).cumsum(axis=0)
        return validate_implementations(ref, qry, 16)

    def test_five_implementations(self, report):
        assert set(report.implementations) == {
            "brute-force",
            "mstamp",
            "gpu-single",
            "gpu-tiled",
            "anytime",
        }

    def test_all_pairs_compared(self, report):
        assert len(report.agreements) == 10  # C(5, 2)

    def test_everything_agrees(self, report):
        assert report.all_ok, report.to_table()

    def test_worst_pair_still_tiny(self, report):
        assert report.worst().max_profile_diff < 1e-7

    def test_table_renders(self, report):
        text = report.to_table()
        assert "ok" in text
        assert "MISMATCH" not in text

    def test_self_join(self):
        rng = np.random.default_rng(23)
        ref = rng.normal(size=(150, 2)).cumsum(axis=0)
        report = validate_implementations(ref, None, 12)
        assert report.all_ok, report.to_table()

    def test_agreement_ok_thresholds(self):
        good = Agreement("a", "b", 1e-12, 1.0)
        bad = Agreement("a", "b", 1.0, 0.4)
        assert good.ok()
        assert not bad.ok()
