"""Unit tests for the reporting helpers."""

import pytest

from repro.reporting import banner, format_seconds, format_table, print_table


class TestFormatSeconds:
    def test_microseconds(self):
        assert format_seconds(2.5e-6) == "2.5 us"

    def test_milliseconds(self):
        assert format_seconds(0.0123) == "12.3 ms"

    def test_seconds(self):
        assert format_seconds(3.14159) == "3.14 s"

    def test_nan(self):
        assert format_seconds(float("nan")) == "nan"


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [10, 20]])
        lines = out.splitlines()
        assert lines[0].startswith("a ")
        assert "--" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"
        assert out.splitlines()[1] == "="

    def test_float_formatting(self):
        out = format_table(["v"], [[3.14159265]])
        assert "3.142" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_print_helpers(self, capsys):
        print_table(["h"], [[1]])
        banner("hello")
        captured = capsys.readouterr().out
        assert "h" in captured
        assert "# hello #" in captured
