"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_pair(rng):
    """A small (reference, query) pair of smooth 3-d series, m=16."""
    ref = rng.normal(size=(200, 3)).cumsum(axis=0)
    qry = rng.normal(size=(180, 3)).cumsum(axis=0)
    return ref, qry, 16


@pytest.fixture
def bounded_pair(rng):
    """A bounded-amplitude pair (safe for FP16), m=16."""
    t = np.arange(240)
    ref = np.stack(
        [np.sin(2 * np.pi * t / (12 + 3 * k)) for k in range(3)], axis=1
    ) + 0.1 * rng.normal(size=(240, 3))
    qry = np.stack(
        [np.sin(2 * np.pi * t[:220] / (12 + 3 * k) + 0.7) for k in range(3)], axis=1
    ) + 0.1 * rng.normal(size=(220, 3))
    return ref, qry, 16
