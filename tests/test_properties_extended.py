"""Second round of property-based tests: end-to-end invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import matrix_profile
from repro.core.planner import plan_tiles, tile_memory_bytes
from repro.extensions.transprecision import BF16, TF32, SOFT_FP16, round_to_format
from repro.preprocessing import minmax_normalize, zscore_normalize

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _series_from_seed(seed: int, n: int, d: int) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n, d)).cumsum(axis=0)


class TestTilingInvariance:
    @given(
        seed=st.integers(0, 100),
        n_tiles=st.integers(1, 12),
        n_gpus=st.integers(1, 5),
    )
    @SLOW
    def test_fp64_result_invariant_to_decomposition(self, seed, n_tiles, n_gpus):
        series = _series_from_seed(seed, 120, 2)
        base = matrix_profile(series, m=12, mode="FP64")
        decomposed = matrix_profile(
            series, m=12, mode="FP64", n_tiles=n_tiles, n_gpus=n_gpus
        )
        np.testing.assert_allclose(decomposed.profile, base.profile, atol=1e-10)
        np.testing.assert_array_equal(decomposed.index, base.index)


class TestNormalisationInvariance:
    @given(
        seed=st.integers(0, 100),
        scale=st.floats(0.1, 100.0),
        offset=st.floats(-50.0, 50.0),
    )
    @SLOW
    def test_profile_invariant_to_affine_maps(self, seed, scale, offset):
        series = _series_from_seed(seed, 100, 2)
        base = matrix_profile(series, m=10, mode="FP64")
        mapped = matrix_profile(series * scale + offset, m=10, mode="FP64")
        np.testing.assert_allclose(mapped.profile, base.profile, atol=1e-6)

    @given(seed=st.integers(0, 200))
    @SLOW
    def test_minmax_output_in_unit_interval(self, seed):
        series = _series_from_seed(seed, 80, 3) * 100
        out = minmax_normalize(series)
        assert out.min() >= -1e-12
        assert out.max() <= 1 + 1e-12

    @given(seed=st.integers(0, 200))
    @SLOW
    def test_zscore_then_zscore_idempotent(self, seed):
        series = _series_from_seed(seed, 80, 2)
        once = zscore_normalize(series)
        twice = zscore_normalize(once)
        np.testing.assert_allclose(once, twice, atol=1e-10)


class TestSoftFormatProperties:
    @given(
        seed=st.integers(0, 500),
        fmt=st.sampled_from([BF16, TF32, SOFT_FP16]),
    )
    @settings(max_examples=60, deadline=None)
    def test_rounding_idempotent_and_monotone(self, seed, fmt):
        rng = np.random.default_rng(seed)
        x = np.sort(rng.normal(size=64) * 10)
        r = round_to_format(x, fmt)
        np.testing.assert_array_equal(r, round_to_format(r, fmt))
        assert np.all(np.diff(r) >= 0)  # rounding preserves order

    @given(seed=st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_relative_error_bounded_by_eps(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0.1, 1000.0, size=64)
        for fmt in (BF16, TF32):
            r = round_to_format(x, fmt)
            rel = np.abs(r - x) / x
            assert np.all(rel <= fmt.eps * (1 + 1e-12))


class TestPlannerProperties:
    @given(
        n=st.integers(64, 1 << 20),
        d=st.integers(1, 128),
        m=st.sampled_from([16, 64, 256]),
    )
    @settings(max_examples=40, deadline=None)
    def test_tile_bytes_monotone(self, n, d, m):
        assert tile_memory_bytes(n, n, d, m, "FP16") <= tile_memory_bytes(
            n, n, d, m, "FP64"
        )

    @given(
        n=st.integers(256, 1 << 18),
        d=st.sampled_from([4, 16, 64]),
    )
    @settings(max_examples=20, deadline=None)
    def test_plan_respects_budget(self, n, d):
        plan = plan_tiles(n, n, d, 64, mode="FP64", device="A100")
        budget = 0.9 * 40 * 1024**3 / 16
        assert plan.tile_bytes <= budget


class TestStreamingEquivalence:
    @given(seed=st.integers(0, 50))
    @SLOW
    def test_streaming_matches_batch(self, seed):
        from repro.apps.streaming import StreamingMatrixProfile

        rng = np.random.default_rng(seed)
        ref = rng.normal(size=(90, 2))
        qry = rng.normal(size=(70, 2))
        batch = matrix_profile(ref, qry, m=10, mode="FP64")
        stream = StreamingMatrixProfile(ref, 10)
        profiles, indices = stream.extend(qry)
        np.testing.assert_allclose(profiles, batch.profile, atol=1e-8)
        assert np.mean(indices == batch.index) > 0.99
