"""Unit tests for the accuracy metrics (Section V-A)."""

import numpy as np
import pytest

from repro.metrics.classification import (
    accuracy,
    confusion_matrix,
    macro_f_score,
    precision_recall_f1,
)
from repro.metrics.numerical import recall_rate, relative_accuracy, relative_error
from repro.metrics.practical import detection_hits, embedded_motif_recall, relaxed_recall


class TestRecallRate:
    def test_perfect(self):
        i = np.arange(12).reshape(6, 2)
        assert recall_rate(i, i) == 100.0

    def test_half(self):
        ref = np.zeros((4, 1), dtype=int)
        test = np.array([[0], [0], [1], [1]])
        assert recall_rate(test, ref) == 50.0

    def test_ignores_excluded(self):
        ref = np.array([[0], [-1], [2]])
        test = np.array([[0], [5], [2]])
        assert recall_rate(test, ref) == 100.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            recall_rate(np.zeros((2, 1)), np.zeros((3, 1)))


class TestRelativeAccuracy:
    def test_identical_is_100(self, rng):
        p = np.abs(rng.normal(size=(10, 2)))
        assert relative_accuracy(p, p) == 100.0

    def test_error_clamps_at_zero_accuracy(self, rng):
        p = np.abs(rng.normal(size=(10, 2)))
        assert relative_accuracy(p * 10, p) == 0.0

    def test_small_perturbation(self, rng):
        p = 1.0 + np.abs(rng.normal(size=(50, 2)))
        a = relative_accuracy(p * 1.01, p)
        assert 98.0 < a < 100.0

    def test_near_zero_reference_handled(self):
        ref = np.array([[1e-30], [1.0]])
        test = np.array([[0.5], [1.0]])
        e = relative_error(test, ref)
        assert np.isfinite(e)

    def test_nonfinite_test_values_penalised(self):
        ref = np.ones((4, 1))
        test = np.array([[1.0], [np.inf], [1.0], [1.0]])
        assert relative_error(test, ref) > 0.2


class TestDetectionHits:
    def test_exact_hit(self):
        index = np.zeros((100, 1), dtype=int)
        index[50, 0] = 30
        assert detection_hits(index, [50], [30], m=16)[0]

    def test_one_sample_tolerance(self):
        index = np.full((100, 1), 31)
        assert detection_hits(index, [50], [30], m=16)[0]

    def test_miss(self):
        index = np.full((100, 1), 90)
        assert not detection_hits(index, [50], [30], m=16)[0]

    def test_relaxation_widens_tolerance(self):
        index = np.full((100, 1), 36)  # 6 samples off
        assert not detection_hits(index, [50], [30], m=16)[0]
        assert detection_hits(index, [50], [30], m=16, relaxation=0.5)[0]

    def test_neighbourhood_alignment(self):
        # The probe's neighbours point to correspondingly shifted targets.
        index = np.zeros((100, 1), dtype=int)
        for j in range(100):
            index[j, 0] = j + 17  # perfect alignment at shift 17
        assert detection_hits(index, [40], [57], m=16)[0]

    def test_1d_index_rejected(self):
        with pytest.raises(ValueError):
            detection_hits(np.zeros(10, dtype=int), [1], [2], m=4)


class TestEmbeddedRecall:
    def test_empty_motifs_is_100(self):
        assert embedded_motif_recall(np.zeros((10, 1), dtype=int), []) == 100.0

    def test_relaxed_recall_empty(self):
        assert relaxed_recall(np.zeros((10, 1), dtype=int), [], [], m=8) == 100.0

    def test_relaxed_recall_counts(self):
        index = np.zeros((100, 1), dtype=int)
        index[50, 0] = 30
        index[70, 0] = 500  # miss
        r = relaxed_recall(index, [50, 70], [30, 10], m=16, relaxation=0.05)
        assert r == 50.0


class TestClassification:
    def test_confusion_matrix(self):
        cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1], n_classes=2)
        np.testing.assert_array_equal(cm, [[1, 1], [0, 2]])

    def test_precision_recall_f1(self):
        p, r, f = precision_recall_f1([0, 0, 1, 1], [0, 1, 1, 1], n_classes=2)
        assert p[0] == 1.0 and r[0] == 0.5
        assert p[1] == pytest.approx(2 / 3)
        assert f[1] == pytest.approx(0.8)

    def test_macro_f_ignores_absent_classes(self):
        # Class 2 never occurs in y_true: excluded from the average.
        f = macro_f_score([0, 1], [0, 1], n_classes=3)
        assert f == 1.0

    def test_perfect_prediction(self):
        y = np.array([0, 1, 2, 1, 0])
        assert macro_f_score(y, y) == 1.0
        assert accuracy(y, y) == 1.0

    def test_accuracy_empty(self):
        assert accuracy(np.array([]), np.array([])) == 0.0

    def test_zero_division_safe(self):
        # A predicted class that never occurs: precision 0, no NaN.
        p, r, f = precision_recall_f1([0, 0], [1, 1], n_classes=2)
        assert not np.any(np.isnan(f))
        assert f[0] == 0.0
