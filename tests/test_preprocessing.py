"""Unit tests for the preprocessing module."""

import numpy as np
import pytest

from repro.preprocessing import (
    PreflightReport,
    denoise_moving_average,
    detrend,
    minmax_normalize,
    preflight_check,
    prepare_for_mode,
    zscore_normalize,
)


class TestMinMax:
    def test_range(self, rng):
        x = rng.normal(size=(200, 3)) * 1000
        out = minmax_normalize(x)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    def test_per_dimension(self, rng):
        x = np.stack([rng.normal(size=100), 100 + rng.normal(size=100)], axis=1)
        out = minmax_normalize(x)
        for k in range(2):
            assert out[:, k].min() == pytest.approx(0.0)
            assert out[:, k].max() == pytest.approx(1.0)

    def test_custom_range(self, rng):
        out = minmax_normalize(rng.normal(size=(50, 1)), feature_range=(-1, 1))
        assert out.min() == pytest.approx(-1.0)
        assert out.max() == pytest.approx(1.0)

    def test_constant_dim_maps_to_midpoint(self):
        x = np.ones((50, 1)) * 7
        out = minmax_normalize(x)
        assert np.all(out == 0.5)

    def test_invalid_range(self, rng):
        with pytest.raises(ValueError):
            minmax_normalize(rng.normal(size=(50, 1)), feature_range=(1, 0))

    def test_profile_invariance(self, rng):
        # Z-normalised matrix profile unchanged by min-max scaling.
        from repro.baselines import mstamp

        x = rng.normal(size=(150, 2)).cumsum(axis=0)
        p1, i1 = mstamp(x, None, 16)
        p2, i2 = mstamp(minmax_normalize(x), None, 16)
        mask = np.isfinite(p1)
        np.testing.assert_allclose(p1[mask], p2[mask], atol=1e-7)
        assert np.mean(i1 == i2) > 0.999


class TestZScore:
    def test_moments(self, rng):
        out = zscore_normalize(rng.normal(3, 5, size=(500, 2)))
        np.testing.assert_allclose(out.mean(axis=0), 0, atol=1e-12)
        np.testing.assert_allclose(out.std(axis=0), 1, atol=1e-12)

    def test_constant_dim(self):
        out = zscore_normalize(np.full((50, 1), 3.0))
        assert np.all(out == 0.0)


class TestDetrend:
    def test_removes_linear_trend(self):
        t = np.arange(300, dtype=np.float64)
        x = (5.0 + 0.3 * t)[:, None]
        out = detrend(x)
        np.testing.assert_allclose(out, 0.0, atol=1e-8)

    def test_preserves_oscillation(self):
        t = np.arange(300, dtype=np.float64)
        wave = np.sin(2 * np.pi * t / 25)
        x = (wave + 0.5 * t)[:, None]
        out = detrend(x)[:, 0]
        # The wave survives detrending (correlation stays high).
        assert np.corrcoef(out, wave)[0, 1] > 0.99


class TestDenoise:
    def test_identity_window_one(self, rng):
        x = rng.normal(size=(50, 2))
        np.testing.assert_array_equal(denoise_moving_average(x, 1), x)

    def test_constant_preserved(self):
        x = np.full((40, 1), 2.5)
        np.testing.assert_allclose(denoise_moving_average(x, 5), 2.5)

    def test_reduces_noise_variance(self, rng):
        x = rng.normal(size=(2000, 1))
        out = denoise_moving_average(x, 5)
        assert out.std() < x.std() * 0.6

    def test_invalid_window(self, rng):
        with pytest.raises(ValueError):
            denoise_moving_average(rng.normal(size=(10, 1)), 0)

    def test_mean_preserved(self, rng):
        x = rng.normal(size=(500, 2)) + 3.0
        out = denoise_moving_average(x, 7)
        assert out.mean() == pytest.approx(x.mean(), rel=0.01)


class TestPreflight:
    def test_clean_data_ok(self, rng):
        report = preflight_check(rng.uniform(0, 1, size=(300, 2)), 16, "FP16")
        assert isinstance(report, PreflightReport)
        assert report.ok
        assert report.overflow_fraction == 0.0

    def test_overflow_flagged(self, rng):
        big = rng.uniform(0, 1, size=(300, 1)) * 1e4
        report = preflight_check(big, 64, "FP16")
        assert not report.ok
        assert any("min-max" in r for r in report.recommendations)

    def test_fp64_never_overflows(self, rng):
        big = rng.uniform(0, 1, size=(300, 1)) * 1e4
        assert preflight_check(big, 64, "FP64").ok

    def test_flat_regions_advised(self):
        x = np.ones((300, 1))
        x[:60, 0] = np.linspace(0, 5, 60)
        report = preflight_check(x, 16, "FP16")
        assert any("flat" in r for r in report.recommendations)


class TestPrepareForMode:
    def test_passthrough_when_safe(self, rng):
        x = rng.uniform(0, 1, size=(200, 2))
        out, report = prepare_for_mode(x, 16, "FP16")
        np.testing.assert_array_equal(out, x)
        assert report.ok

    def test_normalises_when_needed(self, rng):
        x = rng.uniform(0, 1, size=(300, 1)) * 1e4
        out, report = prepare_for_mode(x, 64, "FP16")
        assert out.max() <= 1.0
        assert report.overflow_fraction == 0.0
        assert report.ok

    def test_end_to_end_fp16_mining_after_prepare(self, rng):
        from repro import matrix_profile

        x = rng.normal(size=(400, 2)).cumsum(axis=0) * 100  # overflow bait
        prepared, report = prepare_for_mode(x, 16, "FP16")
        assert report.ok
        r = matrix_profile(prepared, m=16, mode="FP16")
        assert np.all(np.isfinite(r.profile))
