"""Unit tests for snippet (representative summary) extraction."""

import numpy as np
import pytest

from repro.apps.snippets import Snippet, find_snippets


@pytest.fixture
def two_regime_series(rng):
    """First half fast sine, second half slow triangle."""
    t = np.arange(600)
    fast = np.sin(2 * np.pi * t[:300] / 11)
    tri = 2 * np.abs(((t[300:] % 44) / 44.0) - 0.5) * 2 - 1
    return (np.concatenate([fast, tri]) + 0.05 * rng.normal(size=600))[:, None]


class TestFindSnippets:
    def test_two_snippets_distinguish_regimes(self, two_regime_series):
        from repro.apps.mpdist import mpdist

        x = two_regime_series
        snippets = find_snippets(x, m=40, count=2)
        assert len(snippets) == 2
        positions = sorted(s.position for s in snippets)
        assert positions[1] - positions[0] >= 40  # distinct summaries
        # A mid-sine window and a mid-triangle window must prefer
        # different snippets of the pair (the pair separates the regimes).
        def nearest(snapshot_pos):
            probe = x[snapshot_pos : snapshot_pos + 40]
            return int(np.argmin([
                mpdist(probe, x[s.position : s.position + 40]) for s in snippets
            ]))

        assert nearest(100) != nearest(500)

    def test_coverage_sums_to_one(self, two_regime_series):
        snippets = find_snippets(two_regime_series, m=40, count=2)
        assert sum(s.coverage for s in snippets) == pytest.approx(1.0)

    def test_balanced_coverage_for_equal_regimes(self, two_regime_series):
        snippets = find_snippets(two_regime_series, m=40, count=2)
        for s in snippets:
            assert 0.3 < s.coverage < 0.7

    def test_single_snippet(self, rng):
        x = rng.normal(size=(200, 1))
        snippets = find_snippets(x, m=16, count=1)
        assert len(snippets) == 1
        assert snippets[0].coverage == 1.0

    def test_count_capped_by_candidates(self, rng):
        x = rng.normal(size=(60, 1))
        snippets = find_snippets(x, m=16, count=100, candidate_stride=16)
        assert len(snippets) <= 3

    def test_mean_distance_nonnegative(self, two_regime_series):
        for s in find_snippets(two_regime_series, m=40, count=3):
            assert s.mean_distance >= 0
            assert isinstance(s, Snippet)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            find_snippets(rng.normal(size=(10, 1)), m=20)
        with pytest.raises(ValueError):
            find_snippets(rng.normal(size=(50, 1)), m=8, count=0)
        with pytest.raises(ValueError):
            find_snippets(rng.normal(size=(50, 1)), m=8, candidate_stride=0)

    def test_multidimensional(self, rng):
        x = rng.normal(size=(200, 3))
        snippets = find_snippets(x, m=20, count=2)
        assert len(snippets) == 2
