"""Symmetric self-join tiling: mirrored upper-triangular tiles.

With ``RunConfig.symmetric_tiles`` on, the planner builds only diagonal
plus upper-triangular tiles and each off-diagonal tile's distance panel
is consumed twice — the usual column-wise min/argmin plus a row-wise
reduce whose transposed-index contribution covers the band the dropped
lower-triangle twin would have computed.  These tests pin the numerical
contract: FP64 agrees with brute force (engine convention: 1e-8 on the
profile, matching indices), reduced modes stay inside the Section V-B
bounds in both backends, ties still resolve to the earliest reference
index, the flag-off path is byte-identical to before, and the whole
fault stack (OOM split, escalation, journals, cluster re-shard)
composes with triangular grids.
"""

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_mdmp
from repro.core.config import RunConfig
from repro.core.multi_tile import compute_multi_tile
from repro.core.tiling import Tile, compute_symmetric_tile_list, tile_grid_shape
from repro.engine import HealthPolicy, JobSpec, RunJournal, resume_plan
from repro.engine.dispatch import _split_tile
from repro.engine.faults import FaultPlan
from repro.precision.errors import (
    implied_correlation,
    streaming_qt_error_bound,
    tc_gemm_error_bound,
)
from repro.precision.modes import TENSOR_CORE_MODES, PrecisionMode

MODES = ("FP64", "FP32", "FP16", "Mixed", "FP16C")


def _series(n=260, d=3, seed=5):
    """Bounded-amplitude multi-sine series (safe for FP16)."""
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    base = np.stack(
        [np.sin(2 * np.pi * t / (14 + 5 * k)) for k in range(d)], axis=1
    )
    return base + 0.1 * rng.normal(size=(n, d))


# ---------------------------------------------------------------------------
# The triangular grid itself


class TestSymmetricTileList:
    def test_counts_and_mirror_flags(self):
        tiles = compute_symmetric_tile_list(100, 16)
        g = max(tile_grid_shape(16))
        assert len(tiles) == g * (g + 1) // 2
        for t in tiles:
            assert t.col_start >= t.row_start  # upper triangle only
            assert t.mirror == (t.col_start > t.row_start)
        diag = [t for t in tiles if not t.mirror]
        assert len(diag) == g
        # ids are the lexicographic (band_row, band_col) order the merge
        # relies on for the tie-break proof.
        assert [t.tile_id for t in tiles] == list(range(len(tiles)))

    def test_bands_cover_every_pair_once(self):
        n = 37
        tiles = compute_symmetric_tile_list(n, 9)
        covered = np.zeros((n, n), dtype=int)
        for t in tiles:
            covered[t.row_start : t.row_stop, t.col_start : t.col_stop] += 1
            if t.mirror:  # the twin it stands in for
                covered[t.col_start : t.col_stop, t.row_start : t.row_stop] += 1
        assert (covered == 1).all()

    def test_grid_clamps_to_segments(self):
        tiles = compute_symmetric_tile_list(3, 64)
        assert max(t.row_stop for t in tiles) == 3
        g = 3
        assert len(tiles) == g * (g + 1) // 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            compute_symmetric_tile_list(0, 4)


class TestPlanGating:
    def test_ab_join_rejected(self):
        ref, qry = _series(120), _series(110, seed=7)
        config = RunConfig(mode="FP32", n_tiles=4, symmetric_tiles=True)
        spec = JobSpec.from_arrays(ref, qry, 16, config)
        with pytest.raises(ValueError, match="self-join"):
            spec.plan()

    def test_self_join_plan_is_triangular(self):
        config = RunConfig(mode="FP32", n_tiles=16, symmetric_tiles=True)
        spec = JobSpec.from_arrays(_series(200), None, 16, config)
        plan = spec.plan()
        g = max(tile_grid_shape(16))
        assert len(plan.tiles) == g * (g + 1) // 2
        assert any(t.mirror for t in plan.tiles)

    def test_cache_key_differs(self):
        base = RunConfig(mode="FP32", n_tiles=9)
        assert base.cache_key() != base.with_(symmetric_tiles=True).cache_key()
        # and round-trips through the dict form
        cfg = RunConfig.from_dict(base.with_(symmetric_tiles=True).to_dict())
        assert cfg.symmetric_tiles is True


# ---------------------------------------------------------------------------
# Numerical contract


class TestFP64Equality:
    @pytest.mark.parametrize("n_tiles", [4, 9, 16, 64])  # even and odd grids
    @pytest.mark.parametrize("d", [1, 2, 8])
    def test_matches_brute_force(self, n_tiles, d):
        series = _series(230, d=d)
        m = 16
        p_bf, i_bf = brute_force_mdmp(series, None, m)
        cfg = RunConfig(mode="FP64", n_tiles=n_tiles, symmetric_tiles=True)
        res = compute_multi_tile(series, None, m, cfg)
        np.testing.assert_allclose(res.profile, p_bf, atol=1e-8)
        assert np.mean(res.index == i_bf) > 0.999
        # Stronger: indices identical to the full-grid engine run (same
        # strict-< merge contract, just a different tile order).
        full = compute_multi_tile(
            series, None, m, RunConfig(mode="FP64", n_tiles=n_tiles)
        )
        np.testing.assert_array_equal(res.index, full.index)
        np.testing.assert_allclose(res.profile, full.profile, atol=1e-12)

    def test_zone_straddling_tiles(self):
        # A grid fine enough that the exclusion zone crosses several
        # diagonal-tile boundaries; fully-masked rows must keep index -1
        # semantics (here: every row has off-zone columns, so all finite).
        series = _series(150, d=2)
        m = 24  # zone = ceil(m/4) = 6, tiles ~ 16 rows each
        p_bf, i_bf = brute_force_mdmp(series, None, m)
        cfg = RunConfig(mode="FP64", n_tiles=64, symmetric_tiles=True)
        res = compute_multi_tile(series, None, m, cfg)
        np.testing.assert_allclose(res.profile, p_bf, atol=1e-8)
        assert np.mean(res.index == i_bf) > 0.999

    def test_wide_zone_override(self):
        series = _series(140, d=2)
        m = 16
        p_bf, i_bf = brute_force_mdmp(series, None, m, exclusion_zone=20)
        cfg = RunConfig(
            mode="FP64", n_tiles=9, exclusion_zone=20, symmetric_tiles=True
        )
        res = compute_multi_tile(series, None, m, cfg)
        np.testing.assert_allclose(res.profile, p_bf, atol=1e-8)
        assert np.mean(res.index == i_bf) > 0.999


class TestErrorBounds:
    """Section V-B bounds are *relative QT* (correlation) bounds, so the
    end-to-end check compares in correlation space via Eq. 1 inverted —
    the distance itself amplifies near ``corr -> 1`` (see
    ``correlation_condition_number``), on full grids just as much as on
    triangular ones."""

    @pytest.mark.parametrize("mode", MODES)
    def test_vector_backend_within_bound(self, mode):
        series = _series()
        m = 16
        n_tiles = 9
        ref = compute_multi_tile(
            series, None, m, RunConfig(mode="FP64", n_tiles=n_tiles)
        ).profile
        cfg = RunConfig(mode=mode, n_tiles=n_tiles, symmetric_tiles=True)
        res = compute_multi_tile(series, None, m, cfg)
        err = np.max(np.abs(
            implied_correlation(res.profile.astype(np.float64), m)
            - implied_correlation(ref, m)
        ))
        bound = streaming_qt_error_bound(ref.shape[0], m, mode)
        assert err <= max(bound, 1e-12)

    @pytest.mark.parametrize("mode", sorted(m.value for m in TENSOR_CORE_MODES))
    def test_tensor_core_backend_within_bound(self, mode):
        series = _series()
        m = 16
        n_tiles = 9
        ref = compute_multi_tile(
            series, None, m, RunConfig(mode="FP64", n_tiles=n_tiles)
        ).profile
        cfg = RunConfig(
            mode=mode, n_tiles=n_tiles, backend="tensor_core",
            symmetric_tiles=True,
        )
        res = compute_multi_tile(series, None, m, cfg)
        assert res.backend_fallback_reason is None
        err = np.max(np.abs(
            implied_correlation(res.profile.astype(np.float64), m)
            - implied_correlation(ref, m)
        ))
        bound = tc_gemm_error_bound(ref.shape[0], m, mode, row_block=cfg.row_block)
        assert err <= bound

    @pytest.mark.parametrize("backend", ["numeric", "tensor_core"])
    @pytest.mark.parametrize("mode", sorted(m.value for m in TENSOR_CORE_MODES))
    def test_mirroring_adds_no_error_over_full_grid(self, mode, backend):
        """The mirrored reduce consumes the very panel values the full
        grid computes, so the symmetric profile error never exceeds the
        full-grid error (tile-edge restarts aside, which only shrink the
        recurrence spans)."""
        series = _series()
        m = 16
        ref = implied_correlation(
            compute_multi_tile(
                series, None, m, RunConfig(mode="FP64", n_tiles=9)
            ).profile,
            m,
        )
        runs = {}
        for sym in (False, True):
            cfg = RunConfig(
                mode=mode, n_tiles=9, backend=backend, symmetric_tiles=sym
            )
            prof = compute_multi_tile(series, None, m, cfg).profile
            runs[sym] = np.max(np.abs(
                implied_correlation(prof.astype(np.float64), m) - ref
            ))
        assert runs[True] <= runs[False] * 1.5 + 1e-9


class TestTieBreak:
    def test_merge_mirrored_keeps_incumbent_on_exact_tie(self):
        from repro.engine.accumulate import merge_mirrored

        # Incumbent columns 2..4 hold value 1.0 from earlier (lower
        # reference-band) tiles; the mirrored contribution ties exactly,
        # so strict `<` must keep the earlier indices.
        profile = np.full((2, 6), 5.0)
        index = np.full((2, 6), -1, dtype=np.int64)
        profile[:, 2:4] = 1.0
        index[:, 2:4] = 7
        tile = Tile(0, 2, 4, 4, 6, mirror=True)
        mirror_p = np.array([[1.0, 0.5], [1.0, 1.0]])
        mirror_i = np.array([[40, 41], [40, 41]], dtype=np.int64)
        merge_mirrored(profile, index, tile, mirror_p, mirror_i)
        # exact ties keep index 7; the strict improvement replaces it
        np.testing.assert_array_equal(index[:, 2:4], [[7, 41], [7, 7]])
        np.testing.assert_array_equal(profile[:, 2:4], [[1.0, 0.5], [1.0, 1.0]])

    @pytest.mark.parametrize("dtype", [np.float16, np.float32, np.float64])
    def test_radix_argmin_is_first_occurrence(self, dtype):
        from repro.kernels.update import UpdateKernel

        block = np.array(
            [[3.0, 1.0, 2.0, 1.0], [0.0, 4.0, 0.0, 0.0]], dtype=dtype
        )
        np.testing.assert_array_equal(
            UpdateKernel._radix_argmin(block, axis=1), [1, 0]
        )

    def test_planted_duplicates_pick_a_true_minimizer(self):
        # An exactly periodic series: every segment has bit-identical
        # twins one period apart, so the minimum distance (0) is massively
        # tied.  The two recurrence paths of a mirrored pair differ by
        # O(eps), so the *winner among near-ties* may lawfully differ from
        # the full grid's — but every reported index must still achieve
        # the true minimum, and the run must be deterministic.
        t = np.arange(320)
        series = np.stack(
            [np.sin(2 * np.pi * t / 32), np.cos(2 * np.pi * t / 32)], axis=1
        )
        m = 16
        cfg = RunConfig(mode="FP64", n_tiles=16, symmetric_tiles=True)
        sym = compute_multi_tile(series, None, m, cfg)
        again = compute_multi_tile(series, None, m, cfg)
        np.testing.assert_array_equal(
            sym.profile.view(np.uint64), again.profile.view(np.uint64)
        )
        np.testing.assert_array_equal(sym.index, again.index)
        p_bf, i_bf = brute_force_mdmp(series, None, m)
        # atol sqrt-of-eps: D = sqrt(2m(1-corr)) has infinite slope at
        # the planted exact-zero minima, so eps-level QT noise surfaces
        # as ~3e-8 distances.
        np.testing.assert_allclose(sym.profile, p_bf, atol=1e-7)
        # each chosen index attains the brute-force minimum: it is a
        # bit-identical twin exactly one or more periods away
        assert (np.abs(sym.index - np.arange(len(sym.index))[:, None])
                % 32 == 0).all()

    def test_flag_off_byte_identical(self):
        series = _series()
        for mode in MODES:
            a = compute_multi_tile(
                series, None, 16, RunConfig(mode=mode, n_tiles=9)
            )
            b = compute_multi_tile(
                series, None, 16,
                RunConfig(mode=mode, n_tiles=9, symmetric_tiles=False),
            )
            np.testing.assert_array_equal(
                a.profile.view(np.uint64), b.profile.view(np.uint64)
            )
            np.testing.assert_array_equal(a.index, b.index)


# ---------------------------------------------------------------------------
# Fault-stack composition


class TestOOMSplitRules:
    def _tile(self, r0, r1, c0, c1, mirror=False):
        return Tile(0, r0, r1, c0, c1, mirror=mirror)

    def test_mirrored_parent_children_stay_mirrored(self):
        children = _split_tile(
            self._tile(0, 40, 40, 80, mirror=True), 10, symmetric=True
        )
        assert len(children) == 4
        assert all(c.mirror for c in children)
        covered = {(c.row_start, c.row_stop, c.col_start, c.col_stop)
                   for c in children}
        assert covered == {
            (0, 20, 40, 60), (0, 20, 60, 80), (20, 40, 40, 60), (20, 40, 60, 80)
        }

    def test_diagonal_parent_drops_lower_left(self):
        children = _split_tile(self._tile(0, 40, 0, 40), 10, symmetric=True)
        assert len(children) == 3
        keyed = {
            (c.row_start, c.row_stop, c.col_start, c.col_stop): c.mirror
            for c in children
        }
        assert keyed == {
            (0, 20, 0, 20): False,     # top diagonal
            (0, 20, 20, 40): True,     # upper-right, mirrored
            (20, 40, 20, 40): False,   # bottom diagonal
        }

    def test_single_row_diagonal_cannot_split(self):
        assert _split_tile(self._tile(0, 1, 0, 1), 10, symmetric=True) == []

    def test_injected_oom_split_completes_and_stays_close(self):
        series = _series()
        cfg = RunConfig(mode="FP32", n_tiles=16, n_gpus=2, symmetric_tiles=True)
        clean = compute_multi_tile(series, None, 16, cfg)
        fault_plan = FaultPlan(seed=9, oom_rate=0.4)
        res = compute_multi_tile(
            series, None, 16, cfg, fault_plan=fault_plan, oom_split=True
        )
        assert fault_plan.event_counts().get("oom", 0) > 0
        assert res.split_tiles
        assert np.allclose(res.profile, clean.profile, atol=1e-3)


class TestFaultComposition:
    def test_corruption_escalates_and_recovers(self):
        series = _series()
        cfg = RunConfig(mode="FP16", n_tiles=9, n_gpus=3, symmetric_tiles=True)
        clean = compute_multi_tile(series, None, 16, cfg)
        fault_plan = FaultPlan(seed=3, corrupt_rate=0.4)
        res = compute_multi_tile(
            series, None, 16, cfg,
            health=HealthPolicy(), fault_plan=fault_plan, max_retries=3,
        )
        assert fault_plan.event_counts().get("corrupt", 0) > 0
        assert res.escalations
        assert np.isfinite(res.profile).all()
        # escalated tiles run at a *more* accurate mode
        assert np.max(np.abs(
            res.profile.astype(np.float64) - clean.profile.astype(np.float64)
        )) <= streaming_qt_error_bound(clean.profile.shape[0], 16, "FP16")

    def test_transient_retries_are_bit_identical(self):
        series = _series()
        cfg = RunConfig(mode="FP32", n_tiles=9, n_gpus=3, symmetric_tiles=True)
        clean = compute_multi_tile(series, None, 16, cfg)
        res = compute_multi_tile(
            series, None, 16, cfg,
            fault_plan=FaultPlan(seed=11, transient_rate=0.4), max_retries=3,
        )
        np.testing.assert_array_equal(res.profile, clean.profile)
        np.testing.assert_array_equal(res.index, clean.index)


class KillPlan:
    """fault_plan stand-in killing the run after ``allow`` tile starts."""

    corruptor = None

    def __init__(self, allow):
        self.allow = allow
        self.seen = 0

    def injector(self, label, tile, gpu_id, attempt):
        self.seen += 1
        if self.seen > self.allow:
            raise KeyboardInterrupt("killed mid-run")


class TestJournalResume:
    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        series = _series()
        cfg = RunConfig(mode="FP32", n_tiles=16, symmetric_tiles=True)
        uninterrupted = compute_multi_tile(series, None, 16, cfg)
        path = tmp_path / "journal"
        with pytest.raises(KeyboardInterrupt):
            compute_multi_tile(
                series, None, 16, cfg,
                journal=path, fault_plan=KillPlan(allow=3),
            )
        journal = RunJournal.open(path)
        done = len(journal.completed_records())
        assert 0 < done < uninterrupted.n_tiles
        # the journal's tile table round-trips the mirror flag
        spec, plan = journal.rebuild()
        assert [t.mirror for t in plan.tiles] == [
            t.mirror for t in spec.plan().tiles
        ]
        resumed = resume_plan(path)
        assert resumed.resumed_tiles == done
        assert resumed.n_tiles == uninterrupted.n_tiles
        np.testing.assert_array_equal(resumed.profile, uninterrupted.profile)
        np.testing.assert_array_equal(resumed.index, uninterrupted.index)


class TestClusterComposition:
    def test_triangular_grid_reshards_after_node_loss(self):
        from repro.cluster import ClusterDispatcher, ClusterSpec, NodeFaultPlan

        series = _series()
        cfg = RunConfig(mode="FP32", n_tiles=16, symmetric_tiles=True)
        single = compute_multi_tile(series, None, 16, cfg)
        spec = JobSpec.from_arrays(series, None, 16, cfg)
        dispatcher = ClusterDispatcher(
            ClusterSpec(n_nodes=3, gpus_per_node=2),
            node_faults=NodeFaultPlan(seed=2, crash_nodes=(1,)),
        )
        result = dispatcher.run(spec, 16)
        assert result.tiles_total == single.n_tiles  # triangular count
        assert result.tiles_resharded > 0
        assert result.dropped_tiles == 0
        np.testing.assert_array_equal(result.profile, single.profile)
        np.testing.assert_array_equal(result.index, single.index)

    def test_resume_cluster_keeps_triangular_plan(self, tmp_path):
        from repro.cluster import ClusterDispatcher, ClusterSpec, resume_cluster

        series = _series()
        cfg = RunConfig(mode="FP32", n_tiles=16, symmetric_tiles=True)
        spec = JobSpec.from_arrays(series, None, 16, cfg)
        dispatcher = ClusterDispatcher(ClusterSpec(n_nodes=2, gpus_per_node=2))
        path = tmp_path / "cluster-journal"
        first = dispatcher.run_journaled(spec, path)
        resumed = resume_cluster(path)
        # the resumed run must shard the journal-rebuilt triangular plan,
        # not re-plan a rectangular grid from the triangular tile count
        assert resumed.tiles_total == first.tiles_total
        assert resumed.tiles_restored == first.tiles_total
        np.testing.assert_array_equal(resumed.profile, first.profile)
        np.testing.assert_array_equal(resumed.index, first.index)


# ---------------------------------------------------------------------------
# Autotuner integration


class TestAutoSelection:
    def test_auto_picks_symmetric_for_self_join_under_target(self):
        from repro.autotune import AutoTuner

        tuner = AutoTuner()
        dec = tuner.tune(
            2048, 2048, 4, 64, mode="FP32", self_join=True,
            target_error=1e-2, n_tiles=64,
        )
        assert dec.chosen.symmetric_tiles
        assert dec.config.symmetric_tiles

    def test_never_symmetric_without_target_or_for_ab_joins(self):
        from repro.autotune import AutoTuner

        tuner = AutoTuner()
        no_target = tuner.tune(
            2048, 2048, 4, 64, mode="FP32", self_join=True, n_tiles=64
        )
        assert not any(c.symmetric_tiles for c in no_target.candidates)
        ab = tuner.tune(
            2048, 1024, 4, 64, mode="FP32", self_join=False,
            target_error=1e-2, n_tiles=64,
        )
        assert not any(c.symmetric_tiles for c in ab.candidates)

    def test_symmetric_correction_keyed_separately(self):
        """A measured triangular-grid job must not perturb the full-grid
        point's correction EMA (and vice versa)."""
        from repro.autotune import AutoTuner

        tuner = AutoTuner()
        dec = tuner.tune(
            1024, 1024, 4, 64, mode="FP32", self_join=True,
            target_error=1e-2, n_tiles=16,
        )
        sym = dec.chosen
        assert sym.symmetric_tiles
        tuner.observe_candidate(sym, sym.predicted_seconds * 4.0)
        keys = set(tuner.cost._corrections)
        assert all(k[-1] is True for k in keys)
        corrected = tuner.cost.correction(
            sym.mode, sym.row_block, sym.parallel_workers,
            sym.precalc_strategy, backend=sym.backend, symmetric=True,
        )
        uncorrected = tuner.cost.correction(
            sym.mode, sym.row_block, sym.parallel_workers,
            sym.precalc_strategy, backend=sym.backend, symmetric=False,
        )
        assert corrected > 1.0
        assert uncorrected == 1.0


class TestLiveFeedback:
    """Satellite: measured tile timings flow back into the tuner."""

    def test_auto_job_feeds_observed_time_to_tuner(self):
        from repro import matrix_profile
        from repro.autotune import AutoTuner

        series = _series(200, d=2)
        tuner = AutoTuner()
        assert not tuner.cost._corrections
        matrix_profile(
            series, m=16, mode="FP32", n_tiles=9, auto=True, tuner=tuner
        )
        # the dispatch observer measured the run and fed it back
        assert tuner.cost._corrections

    def test_mispriced_candidate_reranks_after_one_job(self):
        from repro.autotune import AutoTuner

        tuner = AutoTuner()
        first = tuner.tune(
            1024, 1024, 4, 64, mode="FP32", self_join=True,
            target_error=1e-2, n_tiles=16,
        )
        viable = [c for c in first.candidates if not c.rejected]
        runner_up = next(
            c for c in sorted(viable, key=lambda c: c.predicted_seconds)
            if (c.mode, c.row_block, c.parallel_workers, c.precalc_strategy,
                c.backend, c.symmetric_tiles)
            != (first.chosen.mode, first.chosen.row_block,
                first.chosen.parallel_workers, first.chosen.precalc_strategy,
                first.chosen.backend, first.chosen.symmetric_tiles)
        )
        # one observed job shows the chosen point is badly mispriced
        factor = 4.0 * runner_up.predicted_seconds / first.chosen.predicted_seconds
        tuner.observe_candidate(
            first.chosen, first.chosen.predicted_seconds * factor
        )
        second = tuner.tune(
            1024, 1024, 4, 64, mode="FP32", self_join=True,
            target_error=1e-2, n_tiles=16,
        )
        assert (
            second.chosen.mode, second.chosen.row_block,
            second.chosen.parallel_workers, second.chosen.precalc_strategy,
            second.chosen.backend, second.chosen.symmetric_tiles,
        ) != (
            first.chosen.mode, first.chosen.row_block,
            first.chosen.parallel_workers, first.chosen.precalc_strategy,
            first.chosen.backend, first.chosen.symmetric_tiles,
        )

    def test_flush_noop_without_completed_tiles(self):
        from repro.autotune import AutoTuner, TuningObserver

        tuner = AutoTuner()
        dec = tuner.tune(400, 400, 3, 32, mode="FP32")
        obs = TuningObserver(tuner, dec.chosen)
        # a fully journal-restored resume never starts a tile
        assert obs.flush() == 0.0
        assert not tuner.cost._corrections


class TestWorkspacePlanes:
    """Satellite: the capacity model prices the backend's real workspace
    plane count — 3 for the tensor-core layout against the vector path's
    4 — so TC jobs stop being over-split near the cache budget."""

    def test_plane_counts(self):
        from repro.engine.backends import WORKSPACE_HALF_PLANES

        assert WORKSPACE_HALF_PLANES == {"vector": 4, "tensor_core": 3}

    def test_tc_spill_penalty_never_exceeds_vector(self):
        from repro.autotune import AutoTuner

        tuner = AutoTuner()
        mode = PrecisionMode.MIXED
        for row_block in (32, 64, 128, 256):
            for plane_elems in (1 << 16, 1 << 20, 1 << 22):
                vec = tuner.cost._spill_penalty(
                    row_block, plane_elems, mode, backend="numeric"
                )
                tc = tuner.cost._spill_penalty(
                    row_block, plane_elems, mode, backend="tensor_core"
                )
                assert tc <= vec
        # and the gap is real in the spill ramp: size the workspace so
        # the 4-plane estimate sits at twice the cache budget (penalty
        # ramps up to saturation at 4x), where 3 planes must price lower
        from repro.precision.modes import policy_for

        budget = tuner.cost.calibration.workspace_bytes
        plane_elems = 1 << 16
        itemsize = policy_for(mode).itemsize
        spill_block = max(1, int(2 * budget / (4 * plane_elems * itemsize)))
        assert tuner.cost._spill_penalty(
            spill_block, plane_elems, mode, backend="tensor_core"
        ) < tuner.cost._spill_penalty(
            spill_block, plane_elems, mode, backend="numeric"
        )
