"""Unit tests for the CPU baselines (brute force oracle and mSTAMP)."""

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_mdmp, znormalized_distance_matrix
from repro.baselines.mstamp import mstamp, precompute_statistics


class TestBruteForceDistances:
    def test_identical_segments_distance_zero(self, rng):
        x = rng.normal(size=(60, 1))
        x[30:40, 0] = x[5:15, 0]  # plant an exact repeat
        D = znormalized_distance_matrix(x, x, 10)
        assert D[5, 30, 0] == pytest.approx(0.0, abs=1e-6)

    def test_symmetry_of_self_join(self, rng):
        x = rng.normal(size=(40, 2))
        D = znormalized_distance_matrix(x, x, 8)
        np.testing.assert_allclose(D, np.swapaxes(D, 0, 1), atol=1e-10)

    def test_scale_invariance(self, rng):
        # Z-normalised distance ignores per-dimension affine transforms.
        x = rng.normal(size=(50, 1))
        y = 3.0 * x + 7.0
        D1 = znormalized_distance_matrix(x, x, 8)
        D2 = znormalized_distance_matrix(y, y, 8)
        # Near-zero distances emerge from a cancellation, so sqrt amplifies
        # fp64 noise to ~1e-5 absolute; the comparison is loose accordingly.
        np.testing.assert_allclose(D1, D2, atol=1e-4)

    def test_max_distance_bound(self, rng):
        # Z-normalised Euclidean distance is at most 2*sqrt(m).
        x = rng.normal(size=(60, 1))
        D = znormalized_distance_matrix(x, x, 16)
        assert np.all(D <= 2.0 * np.sqrt(16) + 1e-9)

    def test_dim_mismatch(self, rng):
        with pytest.raises(ValueError):
            znormalized_distance_matrix(
                rng.normal(size=(30, 1)), rng.normal(size=(30, 2)), 8
            )


class TestBruteForceProfile:
    def test_profile_columns_non_decreasing_in_k(self, rng):
        # Averaging over more (sorted) dimensions can only increase the
        # inclusive mean of the best match... per column of one row, but
        # after the min over rows the k-profile is still non-decreasing.
        p, _ = brute_force_mdmp(rng.normal(size=(60, 4)), rng.normal(size=(50, 4)), 8)
        assert np.all(np.diff(p, axis=1) >= -1e-12)

    def test_self_join_index_outside_zone(self, rng):
        x = rng.normal(size=(60, 2))
        p, i = brute_force_mdmp(x, None, 8)
        pos = np.arange(p.shape[0])
        valid = i[:, 0] >= 0
        assert np.all(np.abs(i[valid, 0] - pos[valid]) > 2)


class TestMStampStatistics:
    def test_mu_matches_sliding_mean(self, rng):
        x = rng.normal(size=(50, 2))
        mu, inv, df, dg = precompute_statistics(x, 8)
        expected = np.lib.stride_tricks.sliding_window_view(x[:, 0], 8).mean(axis=1)
        np.testing.assert_allclose(mu[:, 0], expected, rtol=1e-12)

    def test_too_short_raises(self, rng):
        with pytest.raises(ValueError):
            precompute_statistics(rng.normal(size=(5, 1)), 10)


class TestMStampVsBruteForce:
    def test_ab_join_agrees(self, small_pair):
        ref, qry, m = small_pair
        p_bf, i_bf = brute_force_mdmp(ref, qry, m)
        p_ms, i_ms = mstamp(ref, qry, m)
        np.testing.assert_allclose(p_ms, p_bf, atol=1e-8)
        assert np.mean(i_ms == i_bf) > 0.999

    def test_self_join_agrees(self, small_pair):
        ref, _, m = small_pair
        p_bf, i_bf = brute_force_mdmp(ref, None, m)
        p_ms, i_ms = mstamp(ref, None, m)
        mask = np.isfinite(p_bf)
        np.testing.assert_allclose(p_ms[mask], p_bf[mask], atol=1e-8)
        assert np.mean(i_ms == i_bf) > 0.999

    def test_1d_input(self, rng):
        x = rng.normal(size=120).cumsum()
        p, i = mstamp(x, None, 12)
        assert p.shape == (109, 1)

    def test_planted_motif_found(self, rng):
        ref = rng.normal(size=(200, 1))
        qry = rng.normal(size=(200, 1))
        wave = np.sin(np.linspace(0, 4 * np.pi, 24))
        ref[40:64, 0] += 5 * wave
        qry[130:154, 0] += 5 * wave
        p, i = mstamp(ref, qry, 24)
        assert abs(int(i[130, 0]) - 40) <= 1
