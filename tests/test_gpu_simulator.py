"""Unit tests for the GPUSimulator container and event-driven flush."""

import pytest

from repro.gpu.perfmodel import KernelTiming, TileTiming
from repro.gpu.simulator import GPUSimulator, schedule_tile_timing
from repro.gpu.stream import flush_streams


def _timing(busy=1.0, overhead=0.5, h2d=0.0, d2h=0.0):
    t = TileTiming(h2d_bytes=h2d, d2h_bytes=d2h)
    t.kernels["dist_calc"] = KernelTiming(busy=busy, overhead=overhead)
    return t


class TestGPUSimulator:
    def test_construction(self):
        sim = GPUSimulator("A100", n_gpus=4)
        assert sim.n_gpus == 4
        assert len(sim.gpus[0].streams) == 16

    def test_stream_count_validation(self):
        with pytest.raises(ValueError):
            GPUSimulator("A100", n_streams=17)
        with pytest.raises(ValueError):
            GPUSimulator("A100", n_gpus=0)

    def test_round_robin_streams(self):
        sim = GPUSimulator("A100", n_streams=3)
        gpu = sim.gpus[0]
        ids = [gpu.next_stream().stream_id for _ in range(5)]
        assert ids == [0, 1, 2, 0, 1]

    def test_reset_timeline(self):
        sim = GPUSimulator("A100")
        gpu = sim.gpus[0]
        schedule_tile_timing(gpu, gpu.next_stream(), sim.timeline, _timing(), "t0")
        sim.flush()
        assert sim.timeline.makespan > 0
        sim.reset_timeline()
        assert sim.timeline.makespan == 0.0
        assert all(s.ready == 0.0 for s in gpu.streams)

    def test_memory_report(self):
        sim = GPUSimulator("V100", n_gpus=2)
        assert len(sim.memory_report()) == 2


class TestFlushBackfill:
    def test_backfills_overhead_gaps(self):
        # Two tiles on two streams: tile B's kernel fills tile A's
        # overhead gap, so the makespan is below the serial sum.
        sim = GPUSimulator("A100", n_streams=2)
        gpu = sim.gpus[0]
        for label in ("a", "b"):
            t = TileTiming()
            t.kernels["k1"] = KernelTiming(busy=1.0, overhead=1.0)
            t.kernels["k2"] = KernelTiming(busy=1.0, overhead=0.0)
            schedule_tile_timing(gpu, gpu.next_stream(), sim.timeline, t, label)
        sim.flush()
        serial = 2 * (1.0 + 1.0 + 1.0)
        assert sim.timeline.makespan < serial
        # Busy time is exactly 4s; makespan can't be below that.
        assert sim.timeline.makespan >= 4.0

    def test_flush_idempotent(self):
        sim = GPUSimulator("A100")
        gpu = sim.gpus[0]
        schedule_tile_timing(gpu, gpu.next_stream(), sim.timeline, _timing(), "t")
        sim.flush()
        before = sim.timeline.makespan
        sim.flush()  # nothing pending
        assert sim.timeline.makespan == before

    def test_flush_requires_same_device(self):
        sim = GPUSimulator("A100", n_gpus=2)
        s0 = sim.gpus[0].streams[0]
        s1 = sim.gpus[1].streams[0]
        s0.enqueue("compute", "x", 1.0)
        with pytest.raises(ValueError):
            flush_streams([s0, s1], sim.timeline)
        s0.pending.clear()

    def test_ops_ordered_within_stream(self):
        sim = GPUSimulator("A100", n_streams=1)
        gpu = sim.gpus[0]
        t = TileTiming(h2d_bytes=1e9, d2h_bytes=1e9)
        t.kernels["k"] = KernelTiming(busy=1.0, overhead=0.0)
        schedule_tile_timing(gpu, gpu.next_stream(), sim.timeline, t, "t")
        sim.flush()
        ops = sorted(sim.timeline.ops, key=lambda o: o.start)
        assert [o.engine for o in ops] == ["h2d", "compute", "d2h"]
        for a, b in zip(ops, ops[1:]):
            assert b.start >= a.end
