"""Unit tests for the chrome-trace exporter."""

import json

import numpy as np
import pytest

from repro import matrix_profile
from repro.gpu.tracing import export_chrome_trace, timeline_to_trace_events


@pytest.fixture(scope="module")
def result():
    rng = np.random.default_rng(3)
    ref = rng.normal(size=(300, 4))
    return matrix_profile(ref, None, m=16, n_tiles=4, n_gpus=2)


class TestTraceEvents:
    def test_complete_events_for_every_op(self, result):
        events = timeline_to_trace_events(result.timeline)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == len(result.timeline.ops)

    def test_metadata_per_device(self, result):
        events = timeline_to_trace_events(result.timeline)
        proc_names = [e for e in events if e.get("name") == "process_name"]
        assert len(proc_names) == 2  # two GPUs

    def test_timestamps_microseconds(self, result):
        events = timeline_to_trace_events(result.timeline)
        op = result.timeline.ops[0]
        match = next(e for e in events if e["ph"] == "X" and e["name"] == op.label)
        assert match["ts"] == pytest.approx(op.start * 1e6)
        assert match["dur"] == pytest.approx(op.duration * 1e6)

    def test_kernel_arg_groups_by_family(self, result):
        events = timeline_to_trace_events(result.timeline)
        kernels = {
            e["args"]["kernel"]
            for e in events
            if e["ph"] == "X" and e["cat"] == "compute"
        }
        assert "dist_calc" in kernels
        assert "sort_&_incl_scan" in kernels


class TestExport:
    def test_valid_json_written(self, result, tmp_path):
        path = export_chrome_trace(result, tmp_path / "trace")
        assert path.suffix == ".json"
        data = json.loads(path.read_text())
        assert "traceEvents" in data
        assert len(data["traceEvents"]) > 0

    def test_merge_event_appended(self, result, tmp_path):
        path = export_chrome_trace(result, tmp_path / "trace.json")
        data = json.loads(path.read_text())
        merge = [e for e in data["traceEvents"] if e.get("name") == "merge_tiles"]
        assert len(merge) == 1
        assert merge[0]["args"]["tiles"] == 4
        # The merge starts after the GPU makespan.
        assert merge[0]["ts"] == pytest.approx(result.timeline.makespan * 1e6)

    def test_raw_timeline_export(self, result, tmp_path):
        path = export_chrome_trace(result.timeline, tmp_path / "raw")
        data = json.loads(path.read_text())
        assert all(e.get("name") != "merge_tiles" for e in data["traceEvents"])
