"""Unit tests for the chroma-song generator (MIR domain)."""

import numpy as np
import pytest

from repro.datasets.music import PITCH_CLASSES, make_chroma_song


class TestChromaSong:
    @pytest.fixture(scope="class")
    def song(self):
        return make_chroma_song(seed=5)

    def test_twelve_pitch_classes(self, song):
        assert song.chroma.shape[1] == 12
        assert len(PITCH_CLASSES) == 12

    def test_structure_recorded(self, song):
        kinds = [s.kind for s in song.sections]
        assert kinds == ["verse", "chorus", "verse", "chorus", "bridge", "chorus"]
        assert song.occurrences("chorus")[0].kind == "chorus"

    def test_sections_tile_the_song(self, song):
        cursor = 0
        for s in song.sections:
            assert s.start == cursor
            cursor += s.length
        assert cursor == song.n_frames

    def test_choruses_correlate(self, song):
        choruses = song.occurrences("chorus")
        a = song.chroma[choruses[0].start : choruses[0].start + choruses[0].length]
        b = song.chroma[choruses[1].start : choruses[1].start + choruses[1].length]
        corr = np.corrcoef(a.ravel(), b.ravel())[0, 1]
        assert corr > 0.9

    def test_verse_and_chorus_differ(self, song):
        verse = song.occurrences("verse")[0]
        chorus = song.occurrences("chorus")[0]
        a = song.chroma[verse.start : verse.start + verse.length]
        b = song.chroma[chorus.start : chorus.start + chorus.length]
        corr = np.corrcoef(a.ravel(), b.ravel())[0, 1]
        assert corr < 0.8

    def test_unknown_section_kind(self):
        with pytest.raises(ValueError, match="unknown section kind"):
            make_chroma_song(structure=("verse", "drop"))

    def test_matrix_profile_recovers_chorus_repeats(self, song):
        from repro import matrix_profile

        m = song.frames_per_bar * 2  # half-section windows
        result = matrix_profile(song.chroma, m=m, mode="FP64")
        choruses = song.occurrences("chorus")
        probe = choruses[0].start + 4
        match = int(result.index[probe, 5])
        others = [c.start + 4 for c in choruses[1:]]
        assert any(abs(match - o) <= song.frames_per_bar for o in others)
