"""Unit tests for the profiling report generator."""

import numpy as np
import pytest

from repro import matrix_profile
from repro.gpu.profiler import profile_result, render_report


@pytest.fixture(scope="module")
def result():
    rng = np.random.default_rng(2)
    ref = rng.normal(size=(400, 8))
    return matrix_profile(ref, None, m=32, mode="FP64")


class TestProfileResult:
    def test_all_kernels_present(self, result):
        names = {p.name for p in profile_result(result)}
        assert names == {
            "precalculation",
            "dist_calc",
            "sort_&_incl_scan",
            "update_mat_prof",
        }

    def test_sorted_by_time(self, result):
        times = [p.time for p in profile_result(result)]
        assert times == sorted(times, reverse=True)

    def test_shares_sum_to_one(self, result):
        shares = [p.share for p in profile_result(result)]
        assert sum(shares) == pytest.approx(1.0)

    def test_achieved_bw_below_peak(self, result):
        from repro.gpu.device import A100

        for p in profile_result(result, "A100"):
            if p.time > 0:
                # Achieved bandwidth (incl. overhead in time) stays below
                # the device's theoretical peak.
                assert p.achieved_dram_bw <= A100.mem_bandwidth

    def test_memory_bound_kernels(self, result):
        for p in profile_result(result):
            assert p.bound_by in ("DRAM", "L2", "L1/TEX", "SM")
            if p.name == "dist_calc":
                assert p.bound_by != "SM"  # the paper: memory-bound

    def test_low_arithmetic_intensity(self, result):
        # Matrix profile kernels do a handful of flops per byte — far
        # below the ~10 flops/byte ridge of an A100 roofline.
        for p in profile_result(result):
            if p.name != "precalculation":
                assert p.arithmetic_intensity < 2.0

    def test_modeled_only_result_rejected(self):
        from repro import RunConfig, model_multi_tile

        modelled = model_multi_tile(1024, 8, 32, RunConfig())
        with pytest.raises(ValueError, match="no kernel costs"):
            profile_result(modelled)


class TestRenderReport:
    def test_render_contains_kernels_and_device(self, result):
        text = render_report(result, "A100")
        assert "dist_calc" in text
        assert "A100" in text
        assert "GB/s" in text

    def test_render_v100(self, result):
        text = render_report(result, "V100")
        assert "900 GB/s" in text  # V100 peak quoted in the footer
