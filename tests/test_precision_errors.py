"""Unit tests for repro.precision.errors (Section V-B error analysis)."""

import math

import numpy as np
import pytest

from repro.precision.errors import (
    ErrorBudget,
    correlation_condition_number,
    dot_product_error_bound,
    estimate_error_budget,
    flat_region_fraction,
    overflow_risk_fraction,
    streaming_qt_error_bound,
    tile_edge_for_target_error,
)
from repro.precision.modes import PrecisionMode


class TestDotProductBound:
    def test_proportional_to_n_eps(self):
        # e ~ n*eps in the small-n regime (paper: e ∝ n × ε).
        eps = 2.0**-23
        assert dot_product_error_bound(100, eps) == pytest.approx(100 * eps, rel=1e-3)

    def test_monotone_in_n(self):
        eps = 2.0**-10
        bounds = [dot_product_error_bound(n, eps) for n in (10, 100, 500)]
        assert bounds[0] < bounds[1] < bounds[2]

    def test_infinite_when_n_eps_exceeds_one(self):
        assert math.isinf(dot_product_error_bound(2048, 2.0**-10))

    def test_zero_length(self):
        assert dot_product_error_bound(0, 2.0**-10) == 0.0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            dot_product_error_bound(-1, 2.0**-10)


class TestStreamingBound:
    def test_fp16_worse_than_fp32(self):
        b16 = streaming_qt_error_bound(100, 32, "FP16")
        b32 = streaming_qt_error_bound(100, 32, "FP32")
        assert b16 > b32

    def test_mixed_better_than_fp16(self):
        # Mixed lifts the m-length precalc part to FP32.
        b16 = streaming_qt_error_bound(50, 256, "FP16")
        bmx = streaming_qt_error_bound(50, 256, "Mixed")
        assert bmx < b16

    def test_fp16c_beats_mixed_precalc_term(self):
        bc = streaming_qt_error_bound(1, 4096, "FP16C")
        bm = streaming_qt_error_bound(1, 4096, "Mixed")
        assert bc <= bm

    def test_grows_with_rows(self):
        a = streaming_qt_error_bound(10, 32, "FP16")
        b = streaming_qt_error_bound(200, 32, "FP16")
        assert b > a


class TestTileEdge:
    def test_inverts_bound(self):
        target = 0.05
        edge = tile_edge_for_target_error(target, 32, "FP16")
        assert streaming_qt_error_bound(edge, 32, "FP16") < target
        assert streaming_qt_error_bound(edge + 1, 32, "FP16") >= target

    def test_fp64_allows_huge_tiles(self):
        assert tile_edge_for_target_error(1e-6, 32, "FP64") > 1e9

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            tile_edge_for_target_error(0.0, 32, "FP16")

    def test_minimum_is_one(self):
        # Even an impossible target yields a valid tile edge of 1.
        assert tile_edge_for_target_error(1e-12, 4096, "FP16") == 1


class TestConditionNumber:
    def test_diverges_near_perfect_correlation(self):
        kappa = correlation_condition_number(np.array([0.0, 0.9, 0.999999]))
        assert kappa[0] == 0.0
        assert kappa[2] > kappa[1] > kappa[0]

    def test_infinite_at_one(self):
        assert np.isinf(correlation_condition_number(np.array([1.0]))[0])


class TestDataDiagnostics:
    def test_overflow_fraction_zero_for_normalised(self, rng):
        x = rng.uniform(0, 1, size=(300, 2))
        assert overflow_risk_fraction(x, 16, np.float16) == 0.0

    def test_overflow_fraction_positive_for_huge(self, rng):
        x = rng.uniform(0, 1, size=(300, 1)) * 1e4
        assert overflow_risk_fraction(x, 64, np.float16) > 0.0

    def test_flat_fraction_detects_constants(self):
        x = np.ones((200, 1))
        x[:50, 0] = np.linspace(0, 10, 50)
        frac = flat_region_fraction(x, 16)
        assert frac > 0.5

    def test_flat_fraction_zero_for_noise(self, rng):
        x = rng.normal(size=(300, 1))
        assert flat_region_fraction(x, 16) == 0.0


class TestErrorBudget:
    def test_budget_fields(self, rng):
        x = rng.uniform(0, 1, size=(300, 2))
        budget = estimate_error_budget(x, 16, "FP16", tile_rows=64)
        assert isinstance(budget, ErrorBudget)
        assert budget.mode is PrecisionMode.FP16
        assert budget.tile_rows == 64
        assert budget.overflow_fraction == 0.0

    def test_usable_flag(self, rng):
        x = rng.uniform(0, 1, size=(300, 2))
        good = estimate_error_budget(x, 16, "FP64")
        assert good.usable
        bad = estimate_error_budget(x, 16, "FP16", tile_rows=10_000)
        assert not bad.usable

    def test_too_short_raises(self, rng):
        with pytest.raises(ValueError):
            estimate_error_budget(rng.normal(size=(10, 1)), 16, "FP64")
