"""Unit tests for the pan matrix profile, consensus motifs and annotation
vectors."""

import numpy as np
import pytest

from repro.apps.annotation import (
    corrected_profile,
    flat_region_annotation,
    interval_annotation,
)
from repro.apps.consensus import ConsensusMotif, consensus_motif, distance_profile
from repro.core.pan import geometric_window_range, pan_matrix_profile


class TestGeometricRange:
    def test_endpoints_included(self):
        ws = geometric_window_range(8, 128, 5)
        assert ws[0] == 8
        assert ws[-1] == 128

    def test_sorted_unique(self):
        ws = geometric_window_range(8, 64, 10)
        assert ws == sorted(set(ws))

    def test_invalid(self):
        with pytest.raises(ValueError):
            geometric_window_range(1, 64)
        with pytest.raises(ValueError):
            geometric_window_range(64, 8)


class TestPanProfile:
    @pytest.fixture(scope="class")
    def pan(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(500, 1))
        # Plant a motif of natural length 48.
        wave = 4 * np.sin(np.linspace(0, 4 * np.pi, 48))
        x[60:108, 0] += wave
        x[300:348, 0] += wave
        return pan_matrix_profile(x, windows=[12, 24, 48, 96])

    def test_results_per_window(self, pan):
        assert pan.n_windows == 4
        assert set(pan.results) == {12, 24, 48, 96}

    def test_normalised_profiles_in_unit_range(self, pan):
        for m in pan.windows:
            prof = pan.normalized_profile(m)
            assert np.all(prof >= 0) and np.all(prof <= 1)

    def test_global_motif_found_near_plant(self, pan):
        m, j, i = pan.global_motif()
        locs = sorted([j, i])
        assert abs(locs[0] - 60) < 48
        assert abs(locs[1] - 300) < 48

    def test_best_window_prefers_motif_length(self, pan):
        m, value = pan.best_window_for(60)
        assert m >= 24  # short windows match noise; the motif is long
        assert value < 0.4

    def test_position_out_of_range(self, pan):
        with pytest.raises(ValueError):
            pan.best_window_for(10_000)


class TestDistanceProfile:
    def test_self_match_zero(self, rng):
        x = rng.normal(size=(100, 2))
        prof = distance_profile(x[10:26], x, 16)
        assert prof[10] == pytest.approx(0.0, abs=1e-6)

    def test_shape(self, rng):
        x = rng.normal(size=(100, 1))
        assert distance_profile(x[:16], x, 16).shape == (85,)

    def test_bad_window_shape(self, rng):
        x = rng.normal(size=(100, 2))
        with pytest.raises(ValueError):
            distance_profile(x[:10], x, 16)


class TestConsensusMotif:
    def test_shared_pattern_found(self, rng):
        m = 24
        wave = 4 * np.sin(np.linspace(0, 4 * np.pi, m))
        collection = []
        truth = []
        for s in range(3):
            x = rng.normal(size=(300, 1))
            pos = 50 + 70 * s
            x[pos : pos + m, 0] += wave
            collection.append(x)
            truth.append(pos)
        motif = consensus_motif(collection, m, candidate_stride=4)
        assert isinstance(motif, ConsensusMotif)
        # The canonical occurrence and every match land on the plants.
        for sid, pos in motif.matches:
            assert abs(pos - truth[sid]) < m, (sid, pos, truth[sid])
        assert motif.radius < 3.0

    def test_radius_is_max_distance(self, rng):
        collection = [rng.normal(size=(80, 1)) for _ in range(2)]
        motif = consensus_motif(collection, 16, candidate_stride=8)
        assert motif.radius >= 0
        assert len(motif.matches) == 2

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            consensus_motif([rng.normal(size=(50, 1))], 16)
        with pytest.raises(ValueError):
            consensus_motif(
                [rng.normal(size=(50, 1)), rng.normal(size=(50, 2))], 16
            )


class TestAnnotation:
    def test_corrected_profile_formula(self):
        profile = np.array([1.0, 2.0, 4.0])
        av = np.array([1.0, 0.5, 0.0])
        out = corrected_profile(profile, av)
        np.testing.assert_allclose(out, [1.0, 4.0, 8.0])

    def test_annotation_range_checked(self):
        with pytest.raises(ValueError):
            corrected_profile(np.ones(3), np.array([0.0, 2.0, 1.0]))

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            corrected_profile(np.ones(3), np.ones(4))

    def test_flat_region_annotation(self):
        x = np.concatenate([np.zeros(100), np.sin(np.arange(100))])[:, None]
        av = flat_region_annotation(x, 16)
        assert av[:60].max() < 0.5  # flat half suppressed
        assert av[120:].min() > 0.5  # active half kept

    def test_interval_annotation(self):
        av = interval_annotation(50, [(10, 20), (45, 99)])
        assert np.all(av[10:20] == 0)
        assert np.all(av[45:] == 0)
        assert np.all(av[:10] == 1)

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            interval_annotation(10, [(5, 3)])

    def test_guided_motif_skips_suppressed(self, rng):
        from repro import matrix_profile
        from repro.apps.annotation import apply_annotation

        m = 16
        x = rng.normal(size=(300, 1))
        wave = 5 * np.sin(np.linspace(0, 6.28, m))
        # Two motif pairs; annotate away the stronger one.
        x[20 : 20 + m, 0] += wave
        x[100 : 100 + m, 0] += wave
        x[200 : 200 + m, 0] += 0.8 * wave + 0.2 * rng.normal(size=m)
        x[250 : 250 + m, 0] += 0.8 * wave + 0.2 * rng.normal(size=m)
        result = matrix_profile(x, m=m)
        av = interval_annotation(result.n_q_seg, [(0, 140)])
        corrected = apply_annotation(result, av, k=1)
        j = int(np.argmin(corrected))
        assert j >= 140  # best remaining motif is the un-suppressed pair
