"""Row-blocked kernel execution: bit-identity, workspaces, parallel dispatch.

The row-blocked main loop (``RunConfig.row_block``) and the parallel
tile dispatcher (``execute_plan(parallel_workers=...)``) are pure
performance features: every test here pins the contract that they change
*nothing* observable — profiles, indices, per-kernel costs and the
modelled timeline are bit-for-bit those of the original per-row,
serial execution, for every precision mode, dimensionality, block size,
join type and sort strategy, including the degenerate inputs that force
the half-precision fast paths onto their scalar fallbacks.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.multi_tile import compute_multi_tile
from repro.engine import (
    JobSpec,
    NumericBackend,
    ProfileAccumulator,
    execute_plan,
)
from repro.engine.backends import WorkspacePool, run_tile
from repro.engine.dispatch import TransientDeviceError
from repro.engine.health import HealthPolicy
from repro.gpu.simulator import GPUSimulator
from repro.kernels._f16fast import (
    f16_keys19,
    f16_lut19,
    round_f16_inplace,
    round_f16_nonneg_inplace,
)
from repro.kernels.layout import to_device_layout

MODES = ("FP64", "FP32", "FP16", "Mixed", "FP16C")


def _run(tr, tq, m, cfg, row_block, strategy="bitonic", ez=None):
    out = run_tile(
        tr, tq, m, cfg.policy, cfg.launch,
        exclusion_zone=ez, sort_strategy=strategy, row_block=row_block,
    )
    costs = {k: vars(v).copy() for k, v in out.costs.items()}
    return out.profile, out.indices, costs


def _assert_same(ref, got, label):
    p0, i0, c0 = ref
    p, i, c = got
    assert np.array_equal(p.view(np.uint8), p0.view(np.uint8)), f"profile {label}"
    assert np.array_equal(i, i0), f"indices {label}"
    assert c == c0, f"costs {label}"


class TestKernelBitIdentity:
    """Blocked execution == per-row execution at the run_tile level."""

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("d", [1, 2, 3, 8])
    def test_blocked_matches_per_row(self, rng, mode, d):
        n, m = 64, 8
        ref = rng.normal(size=(n, d)).cumsum(axis=0)
        qry = rng.normal(size=(48, d)).cumsum(axis=0)
        cfg = RunConfig(mode=mode)
        tr = to_device_layout(ref, cfg.policy.storage)
        tq = to_device_layout(qry, cfg.policy.storage)
        for strategy in ("bitonic", "batch"):
            for tq_used, ez in ((tr, m // 2), (tq, None)):  # self- and AB-join
                base = _run(tr, tq_used, m, cfg, 1, strategy, ez)
                for blk in (7, 64, 500):  # incl. one block > n_r_seg
                    got = _run(tr, tq_used, m, cfg, blk, strategy, ez)
                    _assert_same(base, got, f"{mode} d={d} {strategy} blk={blk}")

    @pytest.mark.parametrize("mode", ["FP16", "FP32"])
    def test_degenerate_inputs_hit_fallbacks_identically(self, rng, mode):
        """Constant windows (inf/0 normalisers -> NaN products), huge
        amplitudes (QT overflow -> inf) and tiny amplitudes (half
        subnormals) push the blocked half fast paths onto their scalar
        fallbacks — results must still be bit-identical."""
        n, m, d = 72, 8, 3
        series = []
        a = rng.normal(size=(n, d)).cumsum(axis=0)
        a[20:40] = 1.5  # constant windows
        series.append(a)
        series.append((rng.normal(size=(n, d)) * 500).cumsum(axis=0))  # overflow
        series.append(rng.normal(size=(n, d)).cumsum(axis=0) * 1e-4)  # subnormal
        cfg = RunConfig(mode=mode)
        for ref in series:
            tr = to_device_layout(ref, cfg.policy.storage)
            base = _run(tr, tr, m, cfg, 1, ez=m // 2)
            for blk in (16, 500):
                got = _run(tr, tr, m, cfg, blk, ez=m // 2)
                _assert_same(base, got, f"degenerate {mode} blk={blk}")

    def test_dist_calc_loop_rounds_are_arithmetic(self, rng):
        """The grid-stride round count is ceil(plane/threads) per logical
        row — identical for any block size (regression for the cost
        model's per-row accounting)."""
        import math

        n, d, m = 96, 4, 8
        ref = rng.normal(size=(n, d)).cumsum(axis=0)
        cfg = RunConfig(mode="FP16")
        tr = to_device_layout(ref, cfg.policy.storage)
        n_seg = n - m + 1
        expected = n_seg * math.ceil(d * n_seg / cfg.launch.total_threads)
        for blk in (1, 13, 64):
            out = run_tile(tr, tr, m, cfg.policy, cfg.launch,
                           exclusion_zone=m // 2, row_block=blk)
            assert out.costs["dist_calc"].loop_rounds == expected


class TestEngineDefaultBlocking:
    """Blocking is on by default; the engine output must equal per-row."""

    def test_default_equals_row_block_1_including_timeline(self, rng):
        ref = rng.normal(size=(300, 3)).cumsum(axis=0)
        m = 16
        assert RunConfig().row_block > 1  # blocking is the default
        r_blocked = compute_multi_tile(ref, None, m, RunConfig(mode="FP16", n_tiles=4))
        r_perrow = compute_multi_tile(
            ref, None, m, RunConfig(mode="FP16", n_tiles=4, row_block=1)
        )
        assert np.array_equal(
            r_blocked.profile.view(np.uint8), r_perrow.profile.view(np.uint8)
        )
        assert np.array_equal(r_blocked.index, r_perrow.index)
        assert r_blocked.timeline.makespan == r_perrow.timeline.makespan
        assert vars(r_blocked.costs["dist_calc"]) == vars(r_perrow.costs["dist_calc"])

    def test_row_block_excluded_from_cache_key(self):
        a = RunConfig(row_block=1)
        b = RunConfig(row_block=64)
        assert a.cache_key() == b.cache_key()
        assert a.to_dict()["row_block"] == 1
        assert b.to_dict()["row_block"] == 64

    def test_row_block_validation(self):
        with pytest.raises(ValueError):
            RunConfig(row_block=0)


class _DelayingBackend(NumericBackend):
    """Numeric backend that delays early tiles so completion order is the
    reverse of submission order — the merge must not care."""

    def run(self, plan, tile, gpu):
        time.sleep(0.03 if tile.tile_id < 2 else 0.0)
        return super().run(plan, tile, gpu)


class TestParallelDispatch:
    def _dispatch(self, spec, plan, backend, **kwargs):
        sim = GPUSimulator(spec.config.device, spec.config.n_gpus,
                          spec.config.n_streams)
        acc = ProfileAccumulator(spec.d, spec.n_q_seg, spec.policy)
        report = execute_plan(plan, backend, sim, accumulator=acc, **kwargs)
        return acc.host_profile(), acc.host_index(), sim.timeline.makespan, report

    @pytest.fixture
    def spec_plan(self, rng):
        ref = rng.normal(size=(230, 3)).cumsum(axis=0)
        config = RunConfig(mode="FP16", n_tiles=9, n_gpus=3, row_block=32)
        spec = JobSpec.from_arrays(ref, None, 16, config)
        return spec, spec.plan()

    def test_workers_deterministic_vs_serial(self, spec_plan):
        spec, plan = spec_plan
        base = self._dispatch(spec, plan, NumericBackend())
        for workers in (1, 2, 4):
            got = self._dispatch(
                spec, plan, NumericBackend(), parallel_workers=workers
            )
            assert np.array_equal(got[0], base[0]), f"profile workers={workers}"
            assert np.array_equal(got[1], base[1]), f"index workers={workers}"
            assert got[2] == base[2], f"timeline workers={workers}"
            assert got[3].tiles_completed == base[3].tiles_completed

    def test_shuffled_completion_order_is_invisible(self, spec_plan):
        """Tiles finishing out of order must merge in tile-id order."""
        spec, plan = spec_plan
        base = self._dispatch(spec, plan, NumericBackend())
        got = self._dispatch(
            spec, plan, _DelayingBackend(), parallel_workers=4
        )
        assert np.array_equal(got[0], base[0])
        assert np.array_equal(got[1], base[1])
        assert got[2] == base[2]

    def test_parallel_composes_with_retry_and_escalation(self, spec_plan):
        """A deterministic transient failure plus a health escalation must
        recover under parallel dispatch exactly as under serial dispatch.

        Profile *values* and the recovery counters must match serial
        exactly; the parallel result must additionally be reproducible
        run-to-run (the serial loop re-queues failed tiles at the back of
        the deque, so its merge order — and therefore fp16 argmin
        tie-breaks — legitimately differs from the tile-id-ordered
        parallel merge once a fault fires)."""
        spec, plan = spec_plan

        def injector(label, tile, gpu_id, attempt):
            if tile.tile_id == 3 and attempt == 0:
                raise TransientDeviceError("injected")

        def corruptor(label, tile, gpu_id, attempt, output):
            if tile.tile_id == 5 and attempt == 0:
                output.profile[...] = np.float16(np.nan)

        kwargs = dict(
            max_retries=2,
            failure_injector=injector,
            corruptor=corruptor,
            health=HealthPolicy(),
        )
        base = self._dispatch(spec, plan, NumericBackend(), **kwargs)
        got = self._dispatch(
            spec, plan, NumericBackend(), parallel_workers=3, **kwargs
        )
        again = self._dispatch(
            spec, plan, NumericBackend(), parallel_workers=3, **kwargs
        )
        assert np.array_equal(got[0], base[0])  # same profile values
        assert got[3].tile_retries == base[3].tile_retries == 1
        assert got[3].escalations.keys() == base[3].escalations.keys() == {5}
        # Parallel recovery is reproducible bit-for-bit, indices included.
        assert np.array_equal(got[0], again[0])
        assert np.array_equal(got[1], again[1])
        assert got[2] == again[2]

    def test_parallel_workers_validation(self, spec_plan):
        spec, plan = spec_plan
        sim = GPUSimulator(spec.config.device, 1, None)
        with pytest.raises(ValueError):
            execute_plan(plan, NumericBackend(), sim, parallel_workers=0)

    def test_api_parallel_workers(self, rng):
        from repro import matrix_profile

        ref = rng.normal(size=(180, 2)).cumsum(axis=0)
        r1 = matrix_profile(ref, m=12, mode="FP16", n_tiles=4)
        r2 = matrix_profile(ref, m=12, mode="FP16", n_tiles=4, parallel_workers=3)
        assert np.array_equal(r1.profile.view(np.uint8), r2.profile.view(np.uint8))
        assert np.array_equal(r1.index, r2.index)


class TestWorkspacePool:
    def test_lease_reuses_buffer(self):
        pool = WorkspacePool()
        with pool.lease((2, 3), np.float16) as a:
            first = a
        with pool.lease((2, 3), np.float16) as b:
            assert b is first  # same buffer back
        with pool.lease((2, 3), np.float32) as c:
            assert c is not first  # dtype keys differ

    def test_lease_returns_buffer_on_exception(self):
        pool = WorkspacePool()
        try:
            with pool.lease((4, 4), np.float32) as a:
                leaked = a
                raise RuntimeError("mid-tile fault")
        except RuntimeError:
            pass
        with pool.lease((4, 4), np.float32) as b:
            assert b is leaked  # returned to the pool despite the raise

    def test_backend_pools_are_per_thread(self):
        backend = NumericBackend()
        pools = {}

        def grab(name):
            pools[name] = backend._workspace_pool()

        t = threading.Thread(target=grab, args=("worker",))
        t.start()
        t.join()
        grab("main")
        assert pools["main"] is not pools["worker"]
        assert pools["main"] is backend._workspace_pool()  # stable per thread


class TestHalfRoundingPrimitives:
    """The float32-domain half rounding that powers the blocked fast
    paths must agree with ``astype(float16)`` everywhere it is used."""

    def _reference(self, x):
        with np.errstate(over="ignore", invalid="ignore"):
            return x.astype(np.float16).astype(np.float32)

    def test_boundaries_and_special_values(self):
        cases = np.array([
            0.0, -0.0, 1.0, -1.0,
            65504.0, 65519.9, 65520.0, 65536.0, 1e30,      # overflow edge
            -65520.0, -1e30,
            2.0 ** -14, 2.0 ** -14 * (1 + 1e-4),           # smallest normal
            2.0 ** -24, 2.0 ** -25, 2.0 ** -26, 1e-7,      # subnormals
            6.0e-5, 6.104e-5, 6.1e-8,
            np.inf, -np.inf, np.nan,
        ], dtype=np.float32)
        got = cases.copy()
        round_f16_inplace(got)
        ref = self._reference(cases)
        assert np.array_equal(got.view(np.uint32), ref.view(np.uint32))

    def test_random_full_range_bits(self, rng):
        bits = rng.integers(0, 1 << 32, size=200_000, dtype=np.uint64)
        x = bits.astype(np.uint32).view(np.float32)
        got = x.copy()
        round_f16_inplace(got)
        ref = self._reference(x)
        assert np.array_equal(got.view(np.uint32), ref.view(np.uint32))

    def test_nonneg_variant_on_half_pair_sums(self, rng):
        """The scan-stage domain: float32 sums of two non-negative half
        values (numpy's half add is exactly this sum plus one rounding)."""
        a = rng.integers(0, 0x7C01, size=100_000, dtype=np.uint16).view(np.float16)
        b = rng.integers(0, 0x7C01, size=100_000, dtype=np.uint16).view(np.float16)
        with np.errstate(over="ignore"):
            ref = (a + b).astype(np.float32)  # half add, widened
        got = a.astype(np.float32) + b.astype(np.float32)
        round_f16_nonneg_inplace(got)
        assert np.array_equal(got.view(np.uint32), ref.view(np.uint32))

    def test_lut19_keys_are_unique_per_half_value(self):
        vals = np.arange(65536, dtype=np.uint16).view(np.float16)
        keys = f16_keys19(vals.astype(np.float32))
        assert len(np.unique(keys)) == 65536

    def test_lut19_gather_matches_u16_table(self, rng):
        table16 = rng.normal(size=65536).astype(np.float16)
        table19 = f16_lut19(table16)
        sample = rng.integers(0, 1 << 16, size=4096, dtype=np.uint16)
        x32 = sample.view(np.float16).astype(np.float32)
        assert np.array_equal(
            np.take(table19, f16_keys19(x32)), np.take(table16, sample)
        )
