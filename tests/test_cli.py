"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_profile_args(self):
        args = build_parser().parse_args(
            ["profile", "x.csv", "-m", "32", "--mode", "FP16", "--tiles", "4"]
        )
        assert args.window == 32
        assert args.mode == "FP16"
        assert args.tiles == 4


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "A100" in out and "V100" in out and "Skylake16" in out

    def test_model(self, capsys):
        assert main(["model", "-n", "4096", "-d", "8", "--tiles", "4"]) == 0
        out = capsys.readouterr().out
        for mode in ("FP64", "FP32", "FP16", "Mixed", "FP16C"):
            assert mode in out

    def test_demo(self, capsys):
        assert main(["demo", "-n", "400", "-d", "2", "-m", "16", "--mode", "FP32"]) == 0
        out = capsys.readouterr().out
        assert "found motif" in out

    def test_profile_roundtrip(self, tmp_path, capsys, rng):
        data = rng.normal(size=(200, 2))
        wave = 4 * np.sin(np.linspace(0, 6.28, 16))
        data[30:46, 0] += wave
        data[130:146, 0] += wave
        csv = tmp_path / "ts.csv"
        np.savetxt(csv, data, delimiter=",")
        out_prefix = tmp_path / "out"
        assert (
            main(
                ["profile", str(csv), "-m", "16", "--output", str(out_prefix)]
            )
            == 0
        )
        profile = np.loadtxt(f"{out_prefix}_profile.csv", delimiter=",")
        index = np.loadtxt(f"{out_prefix}_index.csv", delimiter=",")
        assert profile.shape == (185, 2)
        assert index.shape == (185, 2)
        text = capsys.readouterr().out
        assert "modelled device time" in text

    def test_profile_ab_join(self, tmp_path, capsys, rng):
        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        np.savetxt(a, rng.normal(size=(120, 2)), delimiter=",")
        np.savetxt(b, rng.normal(size=(100, 2)), delimiter=",")
        assert main(["profile", str(a), "--query", str(b), "-m", "16"]) == 0

    def test_profile_report_flag(self, tmp_path, capsys, rng):
        csv = tmp_path / "ts.csv"
        np.savetxt(csv, rng.normal(size=(150, 2)), delimiter=",")
        assert main(["profile", str(csv), "-m", "16", "--report"]) == 0
        out = capsys.readouterr().out
        assert "dist_calc" in out
        assert "bound by" in out

    def test_validate_command(self, capsys):
        assert main(["validate", "-n", "100", "-d", "2", "-m", "10"]) == 0
        out = capsys.readouterr().out
        assert "all implementations agree" in out

    def test_plan_command(self, capsys):
        assert main(
            ["plan", "-n", "4096", "-d", "8", "--mode", "FP16",
             "--target-error", "0.2"]
        ) == 0
        out = capsys.readouterr().out
        assert "tiles" in out
        assert "limited by" in out

    def test_plan_explain(self, capsys):
        assert main(
            ["plan", "-n", "512", "-d", "2", "--mode", "FP16", "--explain"]
        ) == 0
        out = capsys.readouterr().out
        assert "autotune report" in out
        assert "chosen:" in out
        assert "row_block" in out

    def test_profile_auto_flag(self, tmp_path, capsys, rng):
        csv = tmp_path / "ts.csv"
        np.savetxt(csv, rng.normal(size=(150, 2)), delimiter=",")
        assert main(["profile", str(csv), "-m", "16", "--auto"]) == 0
        assert "modelled device time" in capsys.readouterr().out

    def test_calibrate_writes_profile(self, tmp_path, capsys):
        out_path = tmp_path / "cal.json"
        assert main(
            ["calibrate", "-n", "64", "--repeats", "1",
             "--output", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert out_path.exists()
        assert "measured host rates" in out
        assert "wrote" in out

    def test_experiments_listing(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "Table I" in out

    def test_experiments_show_missing(self, capsys, monkeypatch, tmp_path):
        import repro.experiments as exps

        monkeypatch.setattr(exps, "RESULTS_DIR", tmp_path)
        assert main(["experiments", "--show", "fig2"]) == 1

    def test_model_includes_energy(self, capsys):
        assert main(["model", "-n", "2048", "-d", "8"]) == 0
        out = capsys.readouterr().out
        assert "kJ" in out
