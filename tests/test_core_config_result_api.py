"""Unit tests for RunConfig, MatrixProfileResult and the public API."""

import numpy as np
import pytest

from repro import matrix_profile
from repro.core.config import RunConfig, default_exclusion_zone
from repro.core.result import MatrixProfileResult
from repro.gpu.device import A100, V100
from repro.precision.modes import PrecisionMode


class TestRunConfig:
    def test_defaults(self):
        cfg = RunConfig()
        assert cfg.mode is PrecisionMode.FP64
        assert cfg.device is A100
        assert cfg.launch.total_threads == A100.max_threads
        assert cfg.n_tiles == 1

    def test_device_by_name(self):
        cfg = RunConfig(device="V100")
        assert cfg.device is V100
        assert cfg.launch.block == 2560

    def test_mode_by_string(self):
        assert RunConfig(mode="fp16c").mode is PrecisionMode.FP16C

    def test_with_copies(self):
        cfg = RunConfig()
        cfg2 = cfg.with_(n_tiles=8)
        assert cfg.n_tiles == 1
        assert cfg2.n_tiles == 8
        assert cfg2.device is cfg.device

    def test_invalid_tiles(self):
        with pytest.raises(ValueError):
            RunConfig(n_tiles=0)

    def test_exclusion_zone_default(self):
        assert default_exclusion_zone(16) == 4
        assert default_exclusion_zone(10) == 3


class TestRunConfigSerialisation:
    def test_to_dict_round_trip(self):
        cfg = RunConfig(
            mode="FP16", device="V100", n_tiles=8, n_gpus=2, n_streams=4,
            exclusion_zone=7, sort_strategy="batch", fast_path_1d=False,
        )
        restored = RunConfig.from_dict(cfg.to_dict())
        assert restored == cfg

    def test_to_dict_is_json_serialisable(self):
        import json

        payload = json.dumps(RunConfig().to_dict(), sort_keys=True)
        assert json.loads(payload)["mode"] == "FP64"

    def test_round_trip_preserves_tuned_launch(self):
        # A config carrying V100-tuned launch parameters must reconstruct
        # them explicitly, not re-derive them for the default device.
        cfg = RunConfig(device="V100")
        restored = RunConfig.from_dict(cfg.to_dict())
        assert restored.launch == cfg.launch
        assert restored.launch.block == 2560

    def test_cache_key_stable_across_equal_configs(self):
        a = RunConfig(mode="Mixed", n_tiles=4)
        b = RunConfig(mode="Mixed", n_tiles=4)
        assert a is not b
        assert a.cache_key() == b.cache_key()

    @pytest.mark.parametrize(
        "changes",
        [
            {"mode": "FP32"},
            {"n_tiles": 2},
            {"exclusion_zone": 3},
            {"sort_strategy": "batch"},
            {"fast_path_1d": False},
            {"device": "V100"},
        ],
    )
    def test_cache_key_sensitive_to_numerics_knobs(self, changes):
        # Every knob that can change the computed numbers must change the
        # key — in reduced precision even the tile count alters results.
        base = RunConfig()
        assert base.with_(**changes).cache_key() != base.cache_key()

    def test_cache_key_round_trips_through_dict(self):
        cfg = RunConfig(mode="FP16", n_tiles=16)
        assert RunConfig.from_dict(cfg.to_dict()).cache_key() == cfg.cache_key()


class TestMatrixProfileResult:
    def _result(self, rng):
        p = np.abs(rng.normal(size=(20, 3)))
        i = rng.integers(0, 20, size=(20, 3))
        return MatrixProfileResult(
            profile=p, index=i, mode=PrecisionMode.FP64, m=8
        )

    def test_profile_for_1_based(self, rng):
        r = self._result(rng)
        np.testing.assert_array_equal(r.profile_for(1), r.profile[:, 0])
        np.testing.assert_array_equal(r.profile_for(3), r.profile[:, 2])

    def test_profile_for_out_of_range(self, rng):
        r = self._result(rng)
        with pytest.raises(ValueError):
            r.profile_for(0)
        with pytest.raises(ValueError):
            r.index_for(4)

    def test_motif_location(self, rng):
        r = self._result(rng)
        j, i = r.motif_location(2)
        assert j == int(np.argmin(r.profile[:, 1]))
        assert i == int(r.index[j, 1])

    def test_dims(self, rng):
        r = self._result(rng)
        assert r.n_q_seg == 20
        assert r.d == 3


class TestPublicAPI:
    def test_dispatches_single_tile(self, rng):
        r = matrix_profile(rng.normal(size=(100, 2)), m=8)
        assert r.n_tiles == 1

    def test_dispatches_multi_tile(self, rng):
        r = matrix_profile(rng.normal(size=(100, 2)), m=8, n_tiles=4)
        assert r.n_tiles == 4

    def test_shapes(self, rng):
        r = matrix_profile(
            rng.normal(size=(128, 4)), rng.normal(size=(96, 4)), m=16
        )
        assert r.profile.shape == (81, 4)
        assert r.index.shape == (81, 4)

    def test_mode_string(self, rng):
        r = matrix_profile(rng.normal(size=(100, 2)), m=8, mode="mixed")
        assert r.mode is PrecisionMode.MIXED

    def test_docstring_example(self):
        rng = np.random.default_rng(0)
        ts = rng.normal(size=(512, 4))
        result = matrix_profile(ts, m=32, mode="FP32", n_tiles=4)
        assert result.profile.shape == (481, 4)
