"""Unit tests for the anytime algorithm and the tile planner."""

import numpy as np
import pytest

from repro import matrix_profile
from repro.core.anytime import AnytimeState, anytime_matrix_profile, convergence_curve
from repro.core.config import RunConfig
from repro.core.planner import plan_tiles, tile_memory_bytes


class TestAnytime:
    @pytest.fixture(scope="class")
    def pair(self):
        rng = np.random.default_rng(5)
        ref = rng.normal(size=(300, 2)).cumsum(axis=0)
        qry = rng.normal(size=(260, 2)).cumsum(axis=0)
        return ref, qry, 16

    def test_full_fraction_matches_batch(self, pair):
        ref, qry, m = pair
        batch = matrix_profile(ref, qry, m=m, mode="FP64")
        anytime = anytime_matrix_profile(ref, qry, m, fraction=1.0)
        np.testing.assert_allclose(anytime.profile, batch.profile, atol=1e-8)
        assert np.mean(anytime.index == batch.index) > 0.999

    def test_partial_is_upper_bound(self, pair):
        ref, qry, m = pair
        exact = matrix_profile(ref, qry, m=m, mode="FP64")
        approx = anytime_matrix_profile(ref, qry, m, fraction=0.3, seed=1)
        # Processing fewer rows can only leave profile values too high.
        assert np.all(approx.profile >= exact.profile - 1e-9)

    def test_convergence_faster_than_linear(self, pair):
        ref, qry, m = pair
        curve = convergence_curve(ref, qry, m, fractions=(0.25, 0.5, 1.0), seed=2)
        fractions = [c[0] for c in curve]
        converged = [c[1] for c in curve]
        assert converged[-1] == 1.0
        # Anytime property: convergence beats the linear diagonal — at 25%
        # of the work, clearly more than 25% of the entries are already
        # within 5% of their final value (random-walk data is the hard
        # case; structured data converges much faster still).
        assert converged[0] > 0.3
        assert converged[1] > 0.55
        assert converged == sorted(converged)

    def test_callback_and_early_stop(self, pair):
        ref, qry, m = pair
        seen = []

        def cb(state: AnytimeState):
            seen.append(state.fraction)
            if state.fraction >= 0.2:
                raise StopIteration

        anytime_matrix_profile(ref, qry, m, fraction=1.0, callback=cb)
        assert seen  # callback fired
        assert max(seen) < 0.5  # stopped early

    def test_self_join(self, pair):
        ref, _, m = pair
        r = anytime_matrix_profile(ref, None, m, fraction=1.0)
        pos = np.arange(r.n_q_seg)
        valid = r.index[:, 0] >= 0
        assert np.all(np.abs(r.index[valid, 0] - pos[valid]) > m // 4)

    def test_invalid_fraction(self, pair):
        ref, qry, m = pair
        with pytest.raises(ValueError):
            anytime_matrix_profile(ref, qry, m, fraction=0.0)

    def test_reduced_precision_mode(self, pair):
        ref, qry, m = pair
        r = anytime_matrix_profile(
            ref, qry, m, config=RunConfig(mode="FP32"), fraction=0.5
        )
        assert np.all(np.isfinite(r.profile))


class TestTileMemory:
    def test_grows_with_tile_size(self):
        small = tile_memory_bytes(100, 100, 8, 32, "FP64")
        big = tile_memory_bytes(1000, 1000, 8, 32, "FP64")
        assert big > small

    def test_fp16_half_of_fp32(self):
        b16 = tile_memory_bytes(1000, 1000, 8, 32, "FP16")
        b32 = tile_memory_bytes(1000, 1000, 8, 32, "FP32")
        assert b16 < b32


class TestPlanTiles:
    def test_small_problem_single_tile(self):
        plan = plan_tiles(1000, 1000, 8, 32, device="A100")
        assert plan.n_tiles == 1
        assert plan.limited_by == "memory"

    def test_huge_problem_needs_tiles(self):
        # 2^26 segments x 64 dims in FP64 cannot sit in 40 GB per stream.
        plan = plan_tiles(2**26, 2**26, 64, 64, mode="FP64", device="A100")
        assert plan.n_tiles > 1
        assert plan.tile_bytes <= 0.9 * 40 * 1024**3 / 16

    def test_accuracy_target_drives_tiles(self):
        plan_loose = plan_tiles(2**16, 2**16, 8, 32, mode="FP16", device="A100")
        plan_tight = plan_tiles(
            2**16, 2**16, 8, 32, mode="FP16", device="A100", target_error=0.05
        )
        assert plan_tight.n_tiles > plan_loose.n_tiles
        assert plan_tight.limited_by == "accuracy"
        assert plan_tight.predicted_error_bound < 0.05 * 1.6  # near the target

    def test_fp64_ignores_accuracy_easily(self):
        plan = plan_tiles(2**16, 2**16, 8, 32, mode="FP64", target_error=0.05)
        assert plan.accuracy_bound_tiles == 1

    def test_plan_consistent_with_grid(self):
        plan = plan_tiles(5000, 4000, 4, 16, target_error=None)
        g_r, g_q = plan.grid
        assert g_r * g_q == plan.n_tiles

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_tiles(0, 10, 4, 16)

    def test_planned_run_meets_target(self, rng):
        # End-to-end: plan for 10% FP16 error on a small problem, execute,
        # and verify the measured error honours the bound's intent.
        from repro.baselines import mstamp

        ref = rng.uniform(0, 1, size=(800, 3))
        qry = rng.uniform(0, 1, size=(800, 3))
        m = 32
        plan = plan_tiles(769, 769, 3, m, mode="FP16", target_error=0.10)
        r = matrix_profile(ref, qry, m=m, mode="FP16", n_tiles=plan.n_tiles)
        p64, _ = mstamp(ref, qry, m)
        err = np.mean(np.abs(r.profile - p64) / np.maximum(p64, 1e-9))
        assert err < 0.10
