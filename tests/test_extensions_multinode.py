"""Unit tests for the multi-node scaling extension."""

import pytest

from repro.extensions.multinode import ClusterSpec, model_multi_node


class TestClusterSpec:
    def test_defaults(self):
        c = ClusterSpec(4)
        assert c.total_gpus == 16
        assert c.device_spec.name == "A100"

    def test_invalid(self):
        with pytest.raises(ValueError):
            ClusterSpec(0)


class TestModelMultiNode:
    N, D, M = 2**16, 64, 64

    def test_single_node_matches_gpu_only_plus_overheads(self):
        r = model_multi_node(self.N, self.D, self.M, ClusterSpec(1))
        assert r.broadcast_time == 0.0  # no peers to broadcast to
        assert r.gather_time == 0.0
        assert r.gpu_makespan > 0
        assert r.total_time > r.gpu_makespan  # merge still happens

    def test_every_node_gets_tiles(self):
        r = model_multi_node(self.N, self.D, self.M, ClusterSpec(4))
        assert len(r.nodes) == 4
        assert all(n.n_tiles > 0 for n in r.nodes)
        assert sum(n.n_tiles for n in r.nodes) == 4 * ClusterSpec(4).total_gpus

    def test_two_nodes_speed_up(self):
        t1 = model_multi_node(self.N, self.D, self.M, ClusterSpec(1)).total_time
        t2 = model_multi_node(self.N, self.D, self.M, ClusterSpec(2)).total_time
        assert t2 < t1

    def test_efficiency_decreases_with_nodes(self):
        base = model_multi_node(self.N, self.D, self.M, ClusterSpec(1))
        effs = [
            model_multi_node(self.N, self.D, self.M, ClusterSpec(nn)).efficiency_vs(base)
            for nn in (2, 4, 8)
        ]
        assert effs[0] > effs[2]  # strong scaling saturates

    def test_bigger_problems_scale_better(self):
        # The paper's claim that the workload is not communication-bound:
        # at 4x the problem area the 8-node efficiency must improve.
        small_base = model_multi_node(2**14, self.D, self.M, ClusterSpec(1))
        small = model_multi_node(2**14, self.D, self.M, ClusterSpec(8))
        big_base = model_multi_node(2**16, self.D, self.M, ClusterSpec(1))
        big = model_multi_node(2**16, self.D, self.M, ClusterSpec(8))
        assert big.efficiency_vs(big_base) > small.efficiency_vs(small_base)

    def test_communication_grows_with_nodes(self):
        r2 = model_multi_node(self.N, self.D, self.M, ClusterSpec(2))
        r8 = model_multi_node(self.N, self.D, self.M, ClusterSpec(8))
        assert r8.broadcast_time > r2.broadcast_time
        assert r8.gather_time > r2.gather_time

    def test_reduced_precision_cheaper_transfers(self):
        r64 = model_multi_node(self.N, self.D, self.M, ClusterSpec(4), mode="FP64")
        r16 = model_multi_node(self.N, self.D, self.M, ClusterSpec(4), mode="FP16")
        assert r16.broadcast_time < r64.broadcast_time
        assert r16.total_time < r64.total_time

    def test_explicit_tile_count(self):
        r = model_multi_node(self.N, self.D, self.M, ClusterSpec(2), n_tiles=64)
        assert sum(n.n_tiles for n in r.nodes) == 64
