"""Failure-injection tests: device out-of-memory and how tiling solves it.

The tiling scheme's first purpose (Section III-B) is processing problems
larger than device memory.  These tests shrink the simulated device until
an untiled run *fails* with the allocator's OOM error, then verify that
the planner-recommended tiling makes the same problem succeed — the
end-to-end version of the paper's claim.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.multi_tile import compute_multi_tile
from repro.core.planner import plan_tiles
from repro.core.single_tile import compute_single_tile
from repro.gpu.device import A100
from repro.gpu.memory import DeviceOutOfMemoryError


@pytest.fixture
def tiny_device():
    """An A100 shrunk to 64 KiB of device memory."""
    return replace(A100, name="A100", mem_capacity=64 * 1024)


@pytest.fixture
def series(rng):
    return rng.normal(size=(900, 4)), rng.normal(size=(900, 4))


class TestOOMInjection:
    def test_untiled_run_oom(self, tiny_device, series):
        ref, qry = series
        # 900 samples x 4 dims x 8 B x 2 series ~ 57.6 KiB of inputs plus
        # the precalc vectors: exceeds the 64 KiB device.
        with pytest.raises(DeviceOutOfMemoryError):
            compute_single_tile(ref, qry, 32, RunConfig(device=tiny_device))

    def test_tiled_run_succeeds(self, tiny_device, series):
        ref, qry = series
        result = compute_multi_tile(
            ref, qry, 32, RunConfig(device=tiny_device, n_tiles=64)
        )
        assert np.all(np.isfinite(result.profile))

    def test_tiled_matches_untiled_results(self, tiny_device, series):
        ref, qry = series
        on_tiny = compute_multi_tile(
            ref, qry, 32, RunConfig(device=tiny_device, n_tiles=64)
        )
        on_big = compute_single_tile(ref, qry, 32, RunConfig(device="A100"))
        np.testing.assert_allclose(on_tiny.profile, on_big.profile, atol=1e-10)
        np.testing.assert_array_equal(on_tiny.index, on_big.index)

    def test_planner_avoids_oom(self, tiny_device, series):
        ref, qry = series
        n_seg = ref.shape[0] - 32 + 1
        plan = plan_tiles(
            n_seg, n_seg, 4, 32, mode="FP64", device=tiny_device,
            concurrent_tiles_per_gpu=1,
        )
        assert plan.n_tiles > 1  # the planner knows one tile can't fit
        result = compute_multi_tile(
            ref, qry, 32, RunConfig(device=tiny_device, n_tiles=plan.n_tiles)
        )
        assert result.n_tiles == plan.n_tiles

    def test_memory_freed_between_tiles(self, tiny_device, series):
        # If per-tile allocations leaked, 64 sequential tiles could not
        # all fit the 64 KiB device.
        ref, qry = series
        compute_multi_tile(ref, qry, 32, RunConfig(device=tiny_device, n_tiles=64))
        # Running again on the same config must also work (no global state).
        compute_multi_tile(ref, qry, 32, RunConfig(device=tiny_device, n_tiles=64))

    def test_fp16_fits_where_fp64_does_not(self, series, rng):
        # FP16's footprint is ~1/3 of FP64's (the profile index stays
        # int64); 200 KiB sits between the two for this problem.
        ref, qry = series
        cap = 200 * 1024
        device = replace(A100, name="A100", mem_capacity=cap)
        with pytest.raises(DeviceOutOfMemoryError):
            compute_single_tile(ref, qry, 32, RunConfig(device=device, mode="FP64"))
        result = compute_single_tile(
            ref, qry, 32, RunConfig(device=device, mode="FP16")
        )
        assert result.profile.shape[1] == 4
