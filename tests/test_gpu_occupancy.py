"""Unit tests for the SM occupancy model."""

import pytest

from repro.gpu.device import A100, V100
from repro.gpu.occupancy import (
    SM_RESOURCES,
    best_block_size,
    launch_for_full_occupancy,
    occupancy,
)


class TestOccupancy:
    def test_full_occupancy_baseline(self):
        # 256-thread blocks at 32 regs/thread: 8 blocks x 8 warps = 64
        # warps — full occupancy on both architectures.
        for dev in ("V100", "A100"):
            r = occupancy(dev, 256, registers_per_thread=32)
            assert r.full
            assert r.warps_per_sm == 64

    def test_register_limited(self):
        # 128 regs/thread: 65536 / (128*32*aligned) ~ 16 warps/SM max.
        r = occupancy("V100", 256, registers_per_thread=128)
        assert r.limiter == "registers"
        assert r.occupancy < 0.5

    def test_shared_memory_limited(self):
        # 48 KiB/block on V100 (96 KiB SM budget) => 2 blocks.
        r = occupancy("V100", 128, shared_memory_per_block=48 * 1024)
        assert r.limiter == "shared_memory"
        assert r.blocks_per_sm == 2

    def test_a100_more_shared_memory(self):
        v = occupancy("V100", 128, shared_memory_per_block=32 * 1024)
        a = occupancy("A100", 128, shared_memory_per_block=32 * 1024)
        assert a.blocks_per_sm > v.blocks_per_sm

    def test_block_count_limited_small_blocks(self):
        # 32-thread blocks: 32-block cap -> 32 warps -> 50% occupancy.
        r = occupancy("A100", 32, registers_per_thread=16)
        assert r.limiter in ("blocks", "threads")
        assert r.occupancy == 0.5

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            occupancy("A100", 2048)

    def test_unknown_device(self):
        with pytest.raises(ValueError):
            occupancy("Skylake16", 128)


class TestBestBlockSize:
    def test_prefers_larger_among_full(self):
        size, result = best_block_size("A100", registers_per_thread=32)
        assert result.full
        assert size == 1024  # largest candidate with full occupancy

    def test_adapts_to_register_pressure(self):
        size_lo, res_lo = best_block_size("A100", registers_per_thread=32)
        size_hi, res_hi = best_block_size("A100", registers_per_thread=255)
        assert res_hi.occupancy <= res_lo.occupancy


class TestLaunchForFullOccupancy:
    def test_reproduces_paper_totals(self):
        # With a lean kernel the derived launch covers every warp slot:
        # 163,840 threads on V100 and 221,184 on A100 (Section V-A).
        v = launch_for_full_occupancy("V100", registers_per_thread=32)
        a = launch_for_full_occupancy("A100", registers_per_thread=32)
        assert v.total_threads == V100.max_threads == 163_840
        assert a.total_threads == A100.max_threads == 221_184

    def test_resource_hungry_kernel_fewer_threads(self):
        lean = launch_for_full_occupancy("A100", registers_per_thread=32)
        fat = launch_for_full_occupancy("A100", registers_per_thread=200)
        assert fat.total_threads < lean.total_threads

    def test_tables_exist(self):
        assert set(SM_RESOURCES) == {"V100", "A100", "RTX3090"}
