"""Unit tests for repro.kernels.layout (dimension-wise data layout)."""

import numpy as np
import pytest

from repro.kernels.layout import to_device_layout, to_host_layout, validate_series


class TestValidateSeries:
    def test_1d_becomes_column(self, rng):
        x = rng.normal(size=50)
        out = validate_series(x)
        assert out.shape == (50, 1)

    def test_2d_passthrough(self, rng):
        x = rng.normal(size=(50, 3))
        assert validate_series(x).shape == (50, 3)

    def test_int_input_converted_to_float(self):
        out = validate_series(np.arange(10))
        assert np.issubdtype(out.dtype, np.floating)

    def test_3d_rejected(self):
        with pytest.raises(ValueError, match="1-d or 2-d"):
            validate_series(np.zeros((2, 2, 2)))

    def test_too_short_rejected(self):
        with pytest.raises(ValueError, match="at least 2 samples"):
            validate_series(np.zeros(1))

    def test_non_finite_rejected_naming_dimension_and_range(self, rng):
        # The message must localise the bad data so the user can find
        # the sensor/segment without bisecting the series.
        x = rng.normal(size=(100, 3))
        x[40:45, 1] = np.nan
        x[43, 1] = np.inf
        with pytest.raises(ValueError, match=r"dimension 1, indices 40..44"):
            validate_series(x)

    def test_non_finite_message_counts_extra_dimensions(self, rng):
        x = rng.normal(size=(60, 3))
        x[10, 0] = np.inf
        x[20, 2] = np.nan
        with pytest.raises(ValueError, match=r"and 1 more dimension"):
            validate_series(x)

    def test_non_finite_rejected_at_every_entry_point(self, rng):
        # The same validation guards matrix_profile and service submit.
        from repro.core.api import matrix_profile
        from repro.service import JobRequest, MatrixProfileService

        x = rng.normal(size=(120, 2))
        x[33:36, 0] = np.nan
        with pytest.raises(ValueError, match=r"dimension 0, indices 33..35"):
            matrix_profile(x, m=16)
        with pytest.raises(ValueError, match=r"dimension 0, indices 33..35"):
            MatrixProfileService().submit(JobRequest(reference=x, m=16))


class TestDeviceLayout:
    def test_roundtrip(self, rng):
        x = rng.normal(size=(40, 5))
        dev = to_device_layout(x, np.float64)
        back = to_host_layout(dev)
        np.testing.assert_array_equal(back, x)

    def test_device_layout_is_dimension_major_contiguous(self, rng):
        x = rng.normal(size=(40, 5))
        dev = to_device_layout(x, np.float64)
        assert dev.shape == (5, 40)
        assert dev.flags["C_CONTIGUOUS"]

    def test_dtype_conversion(self, rng):
        x = rng.normal(size=(40, 2))
        dev = to_device_layout(x, np.float16)
        assert dev.dtype == np.float16

    def test_host_layout_rejects_1d(self):
        with pytest.raises(ValueError):
            to_host_layout(np.zeros(5))
