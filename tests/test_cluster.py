"""Cluster tier tests: sharding, node storms, recovery, elasticity.

The cluster chaos matrix: node storms (crash / straggler / degraded
link) are reproduced across >= 3 seeds, both placement policies, and
both join shapes, and every stormed run must finish with zero dropped
tiles and a profile bit-identical to the fault-free run on the same
fleet — the tier's headline node-loss recovery claim.  The acceptance
storm kills 25% of an eight-node fleet in every precision mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    BackpressureError,
    ClusterAutoscaler,
    ClusterDispatcher,
    ClusterSpec,
    HeartbeatDetector,
    NodeFaultPlan,
    QuotaExceededError,
    TenantQuota,
    resume_cluster,
)
from repro.core.config import RetryPolicy, RunConfig
from repro.engine.checkpoint import RunJournal
from repro.engine.dispatch import TileRetryExhaustedError
from repro.engine.plan import JobSpec
from repro.precision.modes import PrecisionMode


def _series(n=220, d=2, seed=5):
    """Bounded-amplitude series (safe for FP16 storms)."""
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    base = np.stack(
        [np.sin(2 * np.pi * t / (16 + 5 * k)) for k in range(d)], axis=1
    )
    return base + 0.1 * rng.standard_normal((n, d))


def _spec(join="self", mode=PrecisionMode.FP64, m=24):
    ref = _series(seed=5)
    qry = None if join == "self" else _series(n=200, seed=6)
    config = RunConfig(mode=mode)
    return JobSpec.from_arrays(ref, qry, m, config)


# Fault-free baselines, cached per (join, placement, mode, fleet shape).
_BASELINES: dict = {}


def _baseline(join, cluster, mode=PrecisionMode.FP64, n_tiles=8):
    key = (join, cluster.placement, cluster.n_nodes, cluster.gpus_per_node,
           mode, n_tiles)
    if key not in _BASELINES:
        spec = _spec(join, mode)
        _BASELINES[key] = ClusterDispatcher(cluster).run(spec, n_tiles=n_tiles)
    return _BASELINES[key]


class TestClusterSpecValidation:
    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError, match="at least one node"):
            ClusterSpec(n_nodes=0)
        with pytest.raises(ValueError, match="at least one node"):
            ClusterSpec(n_nodes=2, gpus_per_node=0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError, match="interconnect_bandwidth"):
            ClusterSpec(n_nodes=2, interconnect_bandwidth=0.0)
        with pytest.raises(ValueError, match="interconnect_bandwidth"):
            ClusterSpec(n_nodes=2, interconnect_bandwidth=-1.0)

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ValueError, match="mpi_latency"):
            ClusterSpec(n_nodes=2, mpi_latency=0.0)

    def test_rejects_device_typo_with_named_field(self):
        with pytest.raises(ValueError, match="device"):
            ClusterSpec(n_nodes=2, device="A100, V100")
        with pytest.raises(ValueError, match="heterogeneous"):
            ClusterSpec(n_nodes=2, device="NotADevice")

    def test_rejects_unknown_placement(self):
        with pytest.raises(ValueError, match="placement"):
            ClusterSpec(n_nodes=2, placement="random")

    @pytest.mark.parametrize("placement", ["round_robin", "block"])
    def test_tile_mapping_stays_in_fleet(self, placement):
        cluster = ClusterSpec(n_nodes=3, gpus_per_node=2, placement=placement)
        n_tiles = 17
        for tid in range(n_tiles):
            assert 0 <= cluster.node_of(tid, n_tiles) < cluster.n_nodes
            assert 0 <= cluster.gpu_of(tid) < cluster.gpus_per_node

    def test_block_placement_is_contiguous(self):
        cluster = ClusterSpec(n_nodes=4, placement="block")
        nodes = [cluster.node_of(t, 16) for t in range(16)]
        assert nodes == sorted(nodes)
        assert set(nodes) == {0, 1, 2, 3}

    def test_roundtrip(self):
        cluster = ClusterSpec(
            n_nodes=3, gpus_per_node=2, device="V100",
            interconnect_bandwidth=1e9, mpi_latency=5e-6, placement="block",
        )
        assert ClusterSpec.from_dict(cluster.to_dict()) == cluster


class TestRetryPolicy:
    def test_default_is_immediate(self):
        policy = RetryPolicy()
        assert policy.delay("tile", 0) == 0.0
        assert policy.delay("tile", 5) == 0.0

    def test_deterministic_and_seeded(self):
        a = RetryPolicy(base_delay=0.1, seed=7)
        b = RetryPolicy(base_delay=0.1, seed=7)
        c = RetryPolicy(base_delay=0.1, seed=8)
        assert a.delay("k", 2) == b.delay("k", 2)
        assert a.delay("k", 2) != c.delay("k", 2)

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.35,
                             jitter=0.0)
        assert policy.delay("k", 0) == pytest.approx(0.1)
        assert policy.delay("k", 1) == pytest.approx(0.2)
        assert policy.delay("k", 2) == pytest.approx(0.35)  # capped
        assert policy.delay("k", 9) == pytest.approx(0.35)

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=1.0, jitter=0.5)
        for attempt in range(8):
            d = policy.delay("k", attempt)
            assert 0.05 < d <= 0.1

    def test_validation(self):
        with pytest.raises(ValueError, match="base_delay"):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_config_roundtrip_and_cache_key(self):
        cfg = RunConfig(retry_policy=RetryPolicy(base_delay=0.2, seed=3))
        again = RunConfig.from_dict(cfg.to_dict())
        assert again.retry_policy == cfg.retry_policy
        # Host-side knob: never part of the numeric identity.
        assert cfg.cache_key() == RunConfig().cache_key()

    def test_execute_plan_applies_backoff(self):
        from repro.engine.backends import NumericBackend
        from repro.engine.dispatch import execute_plan
        from repro.engine.faults import FaultPlan
        from repro.gpu.simulator import GPUSimulator

        spec = _spec()
        plan = spec.plan(n_tiles=4)
        slept = []

        fault_plan = FaultPlan(seed=3, transient_rate=0.4)
        policy = RetryPolicy(base_delay=0.01, seed=1)
        report = execute_plan(
            plan, NumericBackend(), GPUSimulator("A100", 2),
            max_retries=3,
            failure_injector=fault_plan.injector,
            retry_policy=policy,
            sleeper=slept.append,
        )
        assert report.tile_retries > 0
        assert len(slept) == report.tile_retries
        assert report.backoff_seconds == pytest.approx(sum(slept))
        assert report.backoff_seconds > 0.0

    def test_exhausted_error_carries_node_trail(self):
        err = TileRetryExhaustedError(
            3, 2, RuntimeError("boom"), gpu_ids=(0, 1), node_ids=(2, 5)
        )
        assert err.node_ids == (2, 5)
        assert "nodes tried" in str(err)


class TestHeartbeat:
    def test_detection_latency_window(self):
        det = HeartbeatDetector(interval=0.5, miss_threshold=3, seed=4)
        for node in range(6):
            lat = det.detection_latency(node)
            assert 1.5 <= lat < 2.0
            assert lat == det.detection_latency(node)  # deterministic

    def test_validation(self):
        with pytest.raises(ValueError, match="interval"):
            HeartbeatDetector(interval=0.0)
        with pytest.raises(ValueError, match="miss_threshold"):
            HeartbeatDetector(miss_threshold=0)


class TestNodeFaultPlan:
    def test_rate_validation(self):
        with pytest.raises(ValueError, match="crash_rate"):
            NodeFaultPlan(crash_rate=1.5)
        with pytest.raises(ValueError, match="straggler_factor"):
            NodeFaultPlan(straggler_factor=0.5)
        with pytest.raises(ValueError, match="degraded_link_factor"):
            NodeFaultPlan(degraded_link_factor=0.0)

    def test_seeded_decisions_reproduce(self):
        a = NodeFaultPlan(seed=11, crash_rate=0.5)
        b = NodeFaultPlan(seed=11, crash_rate=0.5)
        assert [a.crashes(n) for n in range(8)] == [
            b.crashes(n) for n in range(8)
        ]
        assert any(a.crashes(n) for n in range(8))


# ----------------------------------------------------------------------
# The chaos matrix: >= 3 seeds x 3 fault kinds x both placements x both
# join shapes, every cell bit-identical to the fault-free fleet.

@pytest.mark.parametrize("seed", [3, 17, 29])
@pytest.mark.parametrize("placement", ["round_robin", "block"])
@pytest.mark.parametrize("kind", ["crash", "straggler", "degraded"])
@pytest.mark.parametrize("join", ["self", "ab"])
class TestNodeStormMatrix:
    def _storm(self, kind, seed, n_nodes):
        if kind == "crash":
            return NodeFaultPlan(seed=seed, crash_nodes=(seed % n_nodes,))
        if kind == "straggler":
            return NodeFaultPlan(seed=seed, straggler_rate=0.6)
        return NodeFaultPlan(seed=seed, degraded_link_rate=0.6)

    def test_storm_is_bit_identical(self, seed, placement, kind, join):
        cluster = ClusterSpec(n_nodes=4, gpus_per_node=1, placement=placement)
        clean = _baseline(join, cluster)
        faults = self._storm(kind, seed, cluster.n_nodes)
        run = ClusterDispatcher(cluster, node_faults=faults).run(
            _spec(join), n_tiles=8
        )
        assert run.dropped_tiles == 0
        assert run.tiles_completed == clean.tiles_completed == 8
        np.testing.assert_array_equal(run.profile, clean.profile)
        np.testing.assert_array_equal(run.index, clean.index)
        if kind == "crash":
            assert run.node_deaths == (seed % cluster.n_nodes,)
            assert run.tiles_resharded > 0
            assert run.recovery_overhead > 0.0
            assert run.total_time > clean.total_time
        elif kind == "straggler":
            assert run.node_deaths == ()
            if faults.event_counts().get("straggler"):
                assert run.gpu_makespan > clean.gpu_makespan
        else:
            assert run.node_deaths == ()
            if faults.event_counts().get("degraded_link"):
                assert run.broadcast_time > clean.broadcast_time


# ----------------------------------------------------------------------
# Acceptance storm: kill 25% of an eight-node fleet in every mode.

@pytest.mark.parametrize("mode", list(PrecisionMode))
class TestQuarterFleetKill:
    def test_zero_dropped_bit_identical(self, mode):
        cluster = ClusterSpec(n_nodes=8, gpus_per_node=1)
        spec = _spec("self", mode)
        clean = _baseline("self", cluster, mode, n_tiles=16)
        faults = NodeFaultPlan(seed=1, crash_nodes=(1, 5))  # 25% of the fleet
        run = ClusterDispatcher(cluster, node_faults=faults).run(
            spec, n_tiles=16
        )
        assert run.dropped_tiles == 0
        assert sorted(run.node_deaths) == [1, 5]
        np.testing.assert_array_equal(run.profile, clean.profile)
        np.testing.assert_array_equal(run.index, clean.index)


class TestRecovery:
    def test_whole_fleet_dead_raises_with_node_trail(self):
        cluster = ClusterSpec(n_nodes=2, gpus_per_node=1)
        faults = NodeFaultPlan(seed=2, crash_nodes=(0, 1))
        with pytest.raises(TileRetryExhaustedError) as info:
            ClusterDispatcher(cluster, node_faults=faults).run(
                _spec(), n_tiles=4
            )
        assert info.value.node_ids == (0, 1)

    def test_anytime_partial_when_fleet_dies(self):
        cluster = ClusterSpec(n_nodes=2, gpus_per_node=1)
        faults = NodeFaultPlan(seed=2, crash_nodes=(0, 1))
        run = ClusterDispatcher(cluster, node_faults=faults).run(
            _spec(), n_tiles=4, anytime=True
        )
        assert run.dropped_tiles > 0
        assert run.tiles_completed < run.tiles_total

    def test_backoff_priced_into_recovery(self):
        cluster = ClusterSpec(n_nodes=4, gpus_per_node=1)
        faults = NodeFaultPlan(seed=1, crash_nodes=(0,))
        policy = RetryPolicy(base_delay=0.5, seed=9)
        with_backoff = ClusterDispatcher(
            cluster, node_faults=faults, retry_policy=policy
        ).run(_spec(), n_tiles=8)
        without = ClusterDispatcher(cluster, node_faults=faults).run(
            _spec(), n_tiles=8
        )
        assert with_backoff.backoff_seconds > 0.0
        assert with_backoff.recovery_overhead > without.recovery_overhead
        np.testing.assert_array_equal(with_backoff.profile, without.profile)


class TestCoordinatorCrashResume:
    def test_resume_mid_recovery_is_bit_identical(self, tmp_path):
        cluster = ClusterSpec(n_nodes=4, gpus_per_node=1)
        spec = _spec()
        clean = _baseline("self", cluster)

        path = tmp_path / "journal"
        dispatcher = ClusterDispatcher(
            cluster, node_faults=NodeFaultPlan(seed=1, crash_nodes=(0, 2))
        )
        journal = RunJournal.create(
            path, spec, spec.plan(n_tiles=8),
            extra={"cluster": cluster.to_dict()},
        )
        real_record = journal.record
        calls = {"n": 0}

        def crashing_record(execution, accumulator):
            if calls["n"] >= 5:
                raise KeyboardInterrupt("coordinator dies mid-recovery")
            calls["n"] += 1
            real_record(execution, accumulator)

        journal.record = crashing_record
        with pytest.raises(KeyboardInterrupt):
            dispatcher.run(spec, n_tiles=8, journal=journal)

        # Resume under a *different* storm: the surviving work must slot
        # into the same ascending-prefix merge order.
        resumed = resume_cluster(
            path, node_faults=NodeFaultPlan(seed=2, crash_nodes=(1,))
        )
        assert resumed.tiles_restored == 5
        assert resumed.tiles_completed == 8
        assert resumed.dropped_tiles == 0
        np.testing.assert_array_equal(resumed.profile, clean.profile)
        np.testing.assert_array_equal(resumed.index, clean.index)

    def test_resume_requires_cluster_meta(self, tmp_path):
        spec = _spec()
        RunJournal.create(tmp_path / "j", spec, spec.plan(n_tiles=4))
        with pytest.raises(ValueError, match="cluster"):
            resume_cluster(tmp_path / "j")


class TestElasticity:
    def test_quota_validation_and_check(self):
        with pytest.raises(ValueError, match="max_pending"):
            TenantQuota(max_pending=0)
        quota = TenantQuota(max_pending=2, max_cells=1000.0)
        quota.check("t", pending=1, cells=10.0)
        with pytest.raises(QuotaExceededError, match="max_pending"):
            quota.check("t", pending=2, cells=10.0)
        with pytest.raises(QuotaExceededError, match="max_cells"):
            quota.check("t", pending=0, cells=5000.0)

    def test_autoscaler_hysteresis_and_cooldown(self):
        scaler = ClusterAutoscaler(
            min_nodes=1, max_nodes=4, scale_up_backlog=10.0,
            scale_down_backlog=1.0, cooldown=2,
        )
        assert scaler.observe(50.0, 2) == 3     # up
        assert scaler.observe(50.0, 3) == 3     # cooldown holds
        assert scaler.observe(50.0, 3) == 3     # still cooling
        assert scaler.observe(50.0, 3) == 4     # up again, clamped next
        assert scaler.observe(5.0, 4) == 4      # inside the deadband
        assert len(scaler.events) == 2

    def test_autoscaler_validation(self):
        with pytest.raises(ValueError, match="max_nodes"):
            ClusterAutoscaler(min_nodes=4, max_nodes=2)
        with pytest.raises(ValueError, match="scale_down_backlog"):
            ClusterAutoscaler(scale_up_backlog=1.0, scale_down_backlog=2.0)

    def test_dispatcher_resize(self):
        dispatcher = ClusterDispatcher(ClusterSpec(n_nodes=2))
        dispatcher.resize(4)
        assert dispatcher.cluster.n_nodes == 4
        assert dispatcher.resize_events == [(2, 4)]
        with pytest.raises(ValueError):
            dispatcher.resize(0)


class TestClusterService:
    def _ts(self):
        return _series(n=240, d=2, seed=9)

    def test_storm_service_matches_fault_free(self):
        from repro.service import JobRequest, MatrixProfileService

        ts = self._ts()
        clean = MatrixProfileService(
            n_gpus=2, cluster=ClusterSpec(n_nodes=4, gpus_per_node=2)
        ).submit_and_wait(JobRequest(ts, m=24))
        stormy_service = MatrixProfileService(
            n_gpus=2,
            cluster=ClusterSpec(n_nodes=4, gpus_per_node=2),
            node_faults=NodeFaultPlan(seed=7, crash_nodes=(1,)),
        )
        out = stormy_service.submit_and_wait(JobRequest(ts, m=24))
        assert out.status.value == "completed"
        np.testing.assert_array_equal(out.result.profile, clean.result.profile)
        np.testing.assert_array_equal(out.result.index, clean.result.index)
        snap = stormy_service.metrics.snapshot()
        assert snap.cluster_jobs == 1
        assert snap.node_deaths == 1
        assert snap.tiles_resharded > 0
        assert snap.recovery_seconds > 0.0
        assert dict(snap.to_rows())["node deaths"] == 1

    def test_quota_and_backpressure_shed_and_count(self):
        from repro.service import JobRequest, MatrixProfileService

        ts = self._ts()
        service = MatrixProfileService(
            n_gpus=2,
            cluster=ClusterSpec(n_nodes=2, gpus_per_node=2),
            default_quota=TenantQuota(max_pending=1),
            max_queue_depth=2,
        )
        service.submit(JobRequest(ts, m=24, tenant="a"))
        with pytest.raises(QuotaExceededError):
            service.submit(JobRequest(ts, m=24, tenant="a"))
        service.submit(JobRequest(ts, m=24, tenant="b"))
        with pytest.raises(BackpressureError):
            service.submit(JobRequest(ts, m=24, tenant="c"))
        service.process_all()
        snap = service.metrics.snapshot()
        assert snap.quota_rejections == 1
        assert snap.backpressure_rejections == 1
        assert snap.jobs_completed == 2

    def test_autoscaler_grows_fleet_under_backlog(self):
        from repro.service import JobRequest, MatrixProfileService

        ts = self._ts()
        service = MatrixProfileService(
            n_gpus=2,
            cluster=ClusterSpec(n_nodes=1, gpus_per_node=2),
            autoscaler=ClusterAutoscaler(
                min_nodes=1, max_nodes=4, scale_up_backlog=1e-4,
                scale_down_backlog=0.0, cooldown=0,
            ),
        )
        for _ in range(3):
            service.submit(JobRequest(ts, m=24))
        service.process_all()
        snap = service.metrics.snapshot()
        assert snap.autoscale_events >= 1
        assert service.cluster_dispatcher.cluster.n_nodes > 1

    def test_tenant_validation(self):
        from repro.service import JobRequest

        with pytest.raises(ValueError, match="tenant"):
            JobRequest(self._ts(), m=24, tenant="")


class TestClusterHealthReport:
    def test_render_cluster_health(self):
        from repro.reporting import render_cluster_health

        cluster = ClusterSpec(n_nodes=4, gpus_per_node=1)
        run = ClusterDispatcher(
            cluster, node_faults=NodeFaultPlan(seed=1, crash_nodes=(2,))
        ).run(_spec(), n_tiles=8)
        text = render_cluster_health(run)
        assert "cluster health" in text
        assert "dead" in text
        assert "re-sharded" in text
        assert "recovery overhead" in text
