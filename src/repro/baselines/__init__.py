"""CPU reference implementations: brute-force oracle and mSTAMP/(MP)^N."""

from .brute_force import brute_force_mdmp, znormalized_distance_matrix
from .mstamp import mstamp, precompute_statistics

__all__ = [
    "brute_force_mdmp",
    "znormalized_distance_matrix",
    "mstamp",
    "precompute_statistics",
]
