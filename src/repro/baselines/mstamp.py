"""CPU reference: mSTAMP / (MP)^N-style multi-dimensional matrix profile.

This is the "state-of-the-art CPU-based implementation" role of the paper's
evaluation: FP64 throughout, numpy-vectorised, using the mean-centred
streaming dot product of STOMP (Eq. 1), ``np.sort`` for the dimension sort
and a sequential ``np.cumsum`` for the inclusive averaging.  It is both the
accuracy ground truth for all reduced-precision comparisons and the
comparator whose modelled runtime anchors Fig. 6.

The code path is deliberately *independent* of the GPU kernels (library
sort instead of the bitonic network, sequential instead of fan-in scan,
plain ufuncs instead of the rounded-FMA helpers) so agreement between the
two is a meaningful cross-validation.
"""

from __future__ import annotations

import numpy as np

from ..kernels.layout import validate_series

__all__ = ["mstamp", "precompute_statistics"]


def precompute_statistics(series: np.ndarray, m: int):
    """Windowed means, inverse centred norms and df/dg vectors (FP64).

    ``series`` is (n, d) host layout.  Returns arrays of shape (n_seg, d).
    """
    series = np.asarray(series, dtype=np.float64)
    n, d = series.shape
    n_seg = n - m + 1
    if n_seg < 1:
        raise ValueError(f"m={m} too long for series of length {n}")

    zeros = np.zeros((1, d))
    cs = np.concatenate([zeros, np.cumsum(series, axis=0)], axis=0)
    cs2 = np.concatenate([zeros, np.cumsum(series * series, axis=0)], axis=0)
    win_sum = cs[m : m + n_seg] - cs[:n_seg]
    win_sq = cs2[m : m + n_seg] - cs2[:n_seg]
    mu = win_sum / m
    cent_sq = np.maximum(win_sq - m * mu * mu, np.finfo(np.float64).tiny)
    inv = 1.0 / np.sqrt(cent_sq)

    df = np.zeros((n_seg, d))
    dg = np.zeros((n_seg, d))
    if n_seg > 1:
        head = series[m : m + n_seg - 1]
        tail = series[: n_seg - 1]
        df[1:] = (head - tail) / 2.0
        dg[1:] = (head - mu[1:]) + (tail - mu[:-1])
    return mu, inv, df, dg


def _centered_first_row(
    fixed: np.ndarray, fixed_mu: np.ndarray, series: np.ndarray, mu: np.ndarray, m: int
) -> np.ndarray:
    """QT of one fixed segment against all segments, per dimension.

    ``fixed`` is (m, d); returns (n_seg, d).
    """
    n_seg = mu.shape[0]
    windows = np.lib.stride_tricks.sliding_window_view(series, m, axis=0)[:n_seg]
    centered_fixed = fixed - fixed_mu  # (m, d)
    # windows: (n_seg, d, m); subtract window means and contract over m.
    centered_windows = windows - mu[:, :, None]
    return np.einsum("jdm,md->jd", centered_windows, centered_fixed)


def mstamp(
    reference: np.ndarray,
    query: np.ndarray | None,
    m: int,
    exclusion_zone: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Multi-dimensional matrix profile, CPU FP64 reference.

    Returns ``(P, I)`` of shape ``(n_q_seg, d)``: ``P[j, k]`` is the
    (k+1)-dimensional profile value of query segment ``j`` and ``I[j, k]``
    the matching reference position.  ``query=None`` computes a self-join
    (default exclusion zone ceil(m/4)).
    """
    reference = validate_series(reference, "reference")
    self_join = query is None
    query_arr = reference if self_join else validate_series(query, "query")
    if reference.shape[1] != query_arr.shape[1]:
        raise ValueError("dimensionality mismatch")
    if self_join and exclusion_zone is None:
        exclusion_zone = int(np.ceil(m / 4))

    ref = np.asarray(reference, dtype=np.float64)
    qry = np.asarray(query_arr, dtype=np.float64)
    d = ref.shape[1]
    n_r_seg = ref.shape[0] - m + 1
    n_q_seg = qry.shape[0] - m + 1

    mu_r, inv_r, df_r, dg_r = precompute_statistics(ref, m)
    mu_q, inv_q, df_q, dg_q = precompute_statistics(qry, m)
    qt_row0 = _centered_first_row(ref[:m], mu_r[0], qry, mu_q, m)  # (n_q, d)
    qt_col0 = _centered_first_row(qry[:m], mu_q[0], ref, mu_r, m)  # (n_r, d)

    two_m = 2.0 * m
    profile = np.full((n_q_seg, d), np.inf)
    index = np.full((n_q_seg, d), -1, dtype=np.int64)
    cols = np.arange(n_q_seg)
    divisors = np.arange(1, d + 1, dtype=np.float64)

    qt = qt_row0.copy()
    for i in range(n_r_seg):
        if i > 0:
            qt[1:] = qt[:-1] + df_r[i] * dg_q[1:] + df_q[1:] * dg_r[i]
            qt[0] = qt_col0[i]
        corr = qt * inv_r[i] * inv_q
        dist = np.sqrt(two_m * np.maximum(1.0 - corr, 0.0))
        if exclusion_zone is not None:
            dist = np.where(
                (np.abs(cols - i) <= exclusion_zone)[:, None], np.inf, dist
            )
        inclusive = np.cumsum(np.sort(dist, axis=1), axis=1) / divisors
        improved = inclusive < profile
        profile[improved] = inclusive[improved]
        index[improved] = i

    return profile, index
