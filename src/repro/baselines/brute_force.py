"""Brute-force multi-dimensional matrix profile (validation oracle).

Evaluates every pairwise z-normalised Euclidean distance directly from its
definition — O(n^2 * m * d) work, no streaming recurrence, no correlation
shortcut — then applies the mSTAMP dimension connection (sort, inclusive
average, column-wise min).  Far too slow for real sizes but numerically
transparent: the integration tests validate every other implementation
against it on small inputs.
"""

from __future__ import annotations

import numpy as np

from ..kernels.layout import validate_series

__all__ = ["brute_force_mdmp", "znormalized_distance_matrix"]


def _znormalize_segments(series_1d: np.ndarray, m: int) -> np.ndarray:
    """All z-normalised length-m segments of a 1-d series, shape (n_seg, m).

    Flat segments (zero std) normalise to all-zeros, the standard
    convention (their distance to anything is then sqrt(m) -ish via the
    other operand).
    """
    windows = np.lib.stride_tricks.sliding_window_view(series_1d, m)
    mu = windows.mean(axis=1, keepdims=True)
    sigma = windows.std(axis=1, keepdims=True)
    safe = np.where(sigma == 0, 1.0, sigma)
    out = (windows - mu) / safe
    return np.where(sigma == 0, 0.0, out)


def znormalized_distance_matrix(
    reference: np.ndarray, query: np.ndarray, m: int
) -> np.ndarray:
    """The full 3-d distance matrix D[i, j, k] (reference i, query j, dim k)."""
    reference = validate_series(reference, "reference")
    query = validate_series(query, "query")
    if reference.shape[1] != query.shape[1]:
        raise ValueError("dimensionality mismatch")
    d = reference.shape[1]
    n_r = reference.shape[0] - m + 1
    n_q = query.shape[0] - m + 1
    if n_r < 1 or n_q < 1:
        raise ValueError(f"m={m} too long for inputs")
    dist = np.empty((n_r, n_q, d), dtype=np.float64)
    for k in range(d):
        ref_segs = _znormalize_segments(reference[:, k].astype(np.float64), m)
        qry_segs = _znormalize_segments(query[:, k].astype(np.float64), m)
        # ||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b ; z-normalised segments all
        # have squared norm m (or 0 for flat segments).
        dots = ref_segs @ qry_segs.T
        sq_r = np.sum(ref_segs**2, axis=1)[:, None]
        sq_q = np.sum(qry_segs**2, axis=1)[None, :]
        dist[:, :, k] = np.sqrt(np.maximum(sq_r + sq_q - 2.0 * dots, 0.0))
    return dist


def brute_force_mdmp(
    reference: np.ndarray,
    query: np.ndarray | None,
    m: int,
    exclusion_zone: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Multi-dimensional matrix profile by direct evaluation.

    Returns ``(P, I)`` with shapes ``(n_q_seg, d)``; self-join when
    ``query`` is None (callers supply the exclusion zone in that case,
    conventionally ceil(m/4)).
    """
    reference = validate_series(reference, "reference")
    self_join = query is None
    query_arr = reference if self_join else validate_series(query, "query")
    dist = znormalized_distance_matrix(reference, query_arr, m)
    n_r, n_q, d = dist.shape

    if self_join and exclusion_zone is None:
        exclusion_zone = int(np.ceil(m / 4))
    if exclusion_zone is not None:
        rows = np.arange(n_r)[:, None]
        cols = np.arange(n_q)[None, :]
        excluded = np.abs(rows - cols) <= exclusion_zone
        dist = np.where(excluded[:, :, None], np.inf, dist)

    # mSTAMP dimension connection: sort over dims, inclusive average.
    dist_sorted = np.sort(dist, axis=2)
    inclusive = np.cumsum(dist_sorted, axis=2) / np.arange(1, d + 1)
    profile = inclusive.min(axis=0).astype(np.float64)  # (n_q, d)
    index = inclusive.argmin(axis=0).astype(np.int64)
    index[~np.isfinite(profile)] = -1
    return profile, index
