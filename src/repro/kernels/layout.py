"""Dimension-wise data layout helpers.

The paper's first GPU optimisation (Section III-A) is a *dimension-wise*
data layout: "consecutive elements of each dimension reside next to each
other in memory ... for all the data involved in the computations".  In
numpy terms every device-side array is shaped ``(d, n)`` and C-contiguous,
so a kernel sweeping segments within one dimension walks unit-stride memory
— the coalesced-access pattern the grid-stride loops rely on.

The public API accepts the conventional time-major ``(n, d)`` layout (as
produced by sensor pipelines and used by STUMPY); these helpers convert at
the host/device boundary.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "to_device_layout",
    "to_host_layout",
    "validate_series",
    "validate_stream_samples",
]


def validate_series(series: np.ndarray, name: str = "series") -> np.ndarray:
    """Normalise a host time series to a 2-d float array of shape (n, d).

    1-d input is treated as a single-dimensional series (d = 1).
    """
    arr = np.asarray(series)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 1-d or 2-d, got shape {arr.shape}")
    if arr.shape[0] < 2:
        raise ValueError(f"{name} must have at least 2 samples, got {arr.shape[0]}")
    if not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(np.float64)
    finite = np.isfinite(arr)
    if not finite.all():
        # Name the offending dimension and index range so the user can
        # find the bad sensor/segment without bisecting the series.
        bad = np.nonzero(~finite)
        dims = np.unique(bad[1])
        rows = bad[0][bad[1] == dims[0]]
        where = (
            f"dimension {int(dims[0])}, indices {int(rows.min())}"
            f"..{int(rows.max())}"
        )
        if dims.size > 1:
            where += f" (and {dims.size - 1} more dimension(s))"
        raise ValueError(
            f"{name} contains {int((~finite).sum())} non-finite values "
            f"(NaN/inf) at {where}; impute or drop them before mining — "
            "z-normalised distances are undefined there"
        )
    return arr


def validate_stream_samples(
    samples: np.ndarray, name: str = "samples", offset: int = 0
) -> np.ndarray:
    """Normalise an ingest batch to a 2-d float array of shape (k, d).

    The streaming analogue of :func:`validate_series`: a batch may be a
    single sample (k = 1 is fine), and non-finite values are reported at
    their *global stream offsets* (``offset`` is the number of samples
    the stream has already accepted), so the error names the exact live
    positions rather than batch-local indices.
    """
    arr = np.asarray(samples)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 1-d or 2-d, got shape {arr.shape}")
    if arr.shape[0] < 1:
        raise ValueError(f"{name} must have at least 1 sample")
    if not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(np.float64)
    finite = np.isfinite(arr)
    if not finite.all():
        bad = np.nonzero(~finite)
        dims = np.unique(bad[1])
        rows = bad[0][bad[1] == dims[0]]
        where = (
            f"dimension {int(dims[0])}, stream offsets "
            f"{int(rows.min()) + offset}..{int(rows.max()) + offset}"
        )
        if dims.size > 1:
            where += f" (and {dims.size - 1} more dimension(s))"
        raise ValueError(
            f"{name} contains {int((~finite).sum())} non-finite values "
            f"(NaN/inf) at {where}; impute or drop them before mining — "
            "z-normalised distances are undefined there"
        )
    return arr


def to_device_layout(series: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """(n, d) host layout -> C-contiguous (d, n) device layout in ``dtype``."""
    arr = validate_series(series)
    return np.ascontiguousarray(arr.T, dtype=dtype)


def to_host_layout(plane: np.ndarray) -> np.ndarray:
    """(d, n) device layout -> (n, d) host layout (C-contiguous copy)."""
    if plane.ndim != 2:
        raise ValueError(f"device plane must be 2-d, got shape {plane.shape}")
    return np.ascontiguousarray(plane.T)
