"""The ``dist_calc`` kernel (Pseudocode 1, line 4).

Computes one row (plane) of the 3-d distance matrix from the previous row
using the mean-centred streaming dot product, Eq. (1) of the paper::

    QT[i,j,k] = QT[i-1,j-1,k] + df_r[i,k]*dg_q[j,k] + df_q[j,k]*dg_r[i,k]
    D[i,j,k]  = sqrt( 2*m * (1 - QT[i,j,k] * inv_r[i,k] * inv_q[j,k]) )

Each device thread evaluates one ``(j, k)`` element of the new plane; the
update costs two FMAs per element per dimension ("only four floating-point
operations per dimension in each iteration").  All arithmetic rounds to the
mode's compute dtype after every operation, exactly like the ``__half``
intrinsics path of the CUDA implementation.

Overflow handling: half-precision QT values beyond 65504 become ``inf`` in
the FMA pipeline (the large-deviation failure mode of Section V-B); the
resulting non-finite distances are saturated to the dtype's largest finite
value so that the downstream sort and min-merge remain well defined — they
then simply never win a nearest-neighbour slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.kernel import Kernel, grid_stride_chunks
from ..precision.arithmetic import rp_fma
from ..precision.modes import DTYPE_MAX, PrecisionPolicy
from .precalc import PrecalcResult

__all__ = ["DistCalcKernel"]


@dataclass
class DistCalcKernel(Kernel):
    """Streaming distance-row computation for one tile.

    Holds the running QT plane between invocations (the diagonal-wise
    dependency of Eq. (1)); call :meth:`run` with consecutive row indices
    ``i = 0, 1, ..., n_r_seg-1``.
    """

    policy: PrecisionPolicy = field(kw_only=True)

    def bind(self, pre: PrecalcResult) -> None:
        """Attach a tile's precalculation outputs and reset the recurrence."""
        dtype = self.policy.compute
        self.pre = pre
        self.qt = None  # current row's QT plane, (d, n_q_seg)
        self._two_m = dtype.type(2 * pre.m)
        self._one = dtype.type(1)
        # Cache compute-dtype views of the per-row vectors (storage and
        # compute dtypes coincide in every mode, so these are no-copy).
        self._df_r = pre.df_r.astype(dtype, copy=False)
        self._dg_r = pre.dg_r.astype(dtype, copy=False)
        self._inv_r = pre.inv_r.astype(dtype, copy=False)
        self._df_q = pre.df_q.astype(dtype, copy=False)
        self._dg_q = pre.dg_q.astype(dtype, copy=False)
        self._inv_q = pre.inv_q.astype(dtype, copy=False)
        self._qt_col0 = pre.qt_col0.astype(dtype, copy=False)

    def run(self, i: int) -> np.ndarray:
        """Compute distance plane for reference row ``i``; returns (d, n_q)."""
        pre = self.pre
        dtype = self.policy.compute
        if i == 0:
            self.qt = pre.qt_row0.astype(dtype, copy=True)
        else:
            if self.qt is None:
                raise RuntimeError("rows must be visited in order starting at 0")
            qt_prev = self.qt
            qt_new = np.empty_like(qt_prev)
            # j = 0 has no top-left predecessor: take the precalculated
            # first-column entry.
            qt_new[:, 0] = self._qt_col0[:, i]
            # Two rounded FMAs per element, matching the __hfma2 pipeline:
            # QT[i, j] = QT[i-1, j-1] + df_r[i]*dg_q[j] + df_q[j]*dg_r[i].
            step = rp_fma(
                self._df_r[:, i : i + 1],
                self._dg_q[:, 1:],
                qt_prev[:, :-1],
                dtype,
            )
            qt_new[:, 1:] = rp_fma(
                self._df_q[:, 1:],
                self._dg_r[:, i : i + 1],
                step,
                dtype,
            )
            self.qt = qt_new

        with np.errstate(over="ignore", invalid="ignore"):
            corr = (
                (self.qt * self._inv_r[:, i : i + 1]).astype(dtype) * self._inv_q
            ).astype(dtype)
            gap = (self._one - corr).astype(dtype)
            # Rounding can push corr slightly above 1 for perfect matches;
            # clamp so sqrt stays real (SCAMP does the same).
            np.maximum(gap, dtype.type(0), out=gap)
            dist = np.sqrt((self._two_m * gap).astype(dtype)).astype(dtype)
        limit = dtype.type(DTYPE_MAX[np.dtype(dtype)])
        dist = np.where(np.isfinite(dist), dist, limit).astype(dtype)

        self._record_cost(dist)
        return dist

    def _record_cost(self, plane: np.ndarray) -> None:
        """Per-row cost per the conventions in ``repro.gpu.perfmodel``."""
        elems = float(plane.size)
        size = self.policy.storage.itemsize
        rounds = len(list(grid_stride_chunks(plane.size, self.config)))
        self._account(
            bytes_dram=3.0 * elems * size,
            bytes_l2=6.0 * elems * size,
            flops=8.0 * elems,
            launches=1,
            loop_rounds=rounds,
        )
