"""The ``dist_calc`` kernel (Pseudocode 1, line 4).

Computes one row (plane) of the 3-d distance matrix from the previous row
using the mean-centred streaming dot product, Eq. (1) of the paper::

    QT[i,j,k] = QT[i-1,j-1,k] + df_r[i,k]*dg_q[j,k] + df_q[j,k]*dg_r[i,k]
    D[i,j,k]  = sqrt( 2*m * (1 - QT[i,j,k] * inv_r[i,k] * inv_q[j,k]) )

Each device thread evaluates one ``(j, k)`` element of the new plane; the
update costs two FMAs per element per dimension ("only four floating-point
operations per dimension in each iteration").  All arithmetic rounds to the
mode's compute dtype after every operation, exactly like the ``__half``
intrinsics path of the CUDA implementation.

Overflow handling: half-precision QT values beyond 65504 become ``inf`` in
the FMA pipeline (the large-deviation failure mode of Section V-B); the
resulting non-finite distances are saturated to the dtype's largest finite
value so that the downstream sort and min-merge remain well defined — they
then simply never win a nearest-neighbour slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..gpu.kernel import Kernel
from ..precision.arithmetic import rp_fma
from ..precision.modes import DTYPE_MAX, PrecisionPolicy
from ._f16fast import f16_keys19, f16_lut19, round_f16_inplace
from .precalc import PrecalcResult

__all__ = ["DistCalcKernel"]


@lru_cache(maxsize=32)
def _qt_to_dist_lut_f16(m: int) -> np.ndarray:
    """The half-precision correlation -> distance map as a 65536-entry
    table: ``saturate(sqrt(2m * max(1 - corr, 0)))``.

    Everything after ``corr`` is a unary function of ``corr``, and half
    precision has only 2^16 values, so the row-blocked path replaces the
    whole per-element chain (five software-emulated half ufunc passes)
    with a single gather.  The table is built by running the *original*
    op sequence over every representable half — bit-identical to the
    per-row path by construction, NaN and infinity patterns included.
    """
    dtype = np.dtype(np.float16)
    vals = np.arange(65536, dtype=np.uint16).view(np.float16)
    one = np.float16(1)
    two_m = np.float16(2 * m)
    with np.errstate(over="ignore", invalid="ignore"):
        gap = (one - vals).astype(np.float16)
        np.maximum(gap, np.float16(0), out=gap)
        dist = np.sqrt((two_m * gap).astype(np.float16)).astype(np.float16)
    limit = np.float16(DTYPE_MAX[dtype])
    out = np.where(np.isfinite(dist), dist, limit).astype(np.float16)
    out.setflags(write=False)
    return out


@lru_cache(maxsize=32)
def _qt_to_dist_lut19_f16(m: int) -> np.ndarray:
    """:func:`_qt_to_dist_lut_f16` re-keyed to the 19-bit float32 key
    space, so correlations held as half-valued float32 gather their
    distances without materialising a half array first."""
    return f16_lut19(_qt_to_dist_lut_f16(m))


@dataclass
class DistCalcKernel(Kernel):
    """Streaming distance-row computation for one tile.

    Holds the running QT plane between invocations (the diagonal-wise
    dependency of Eq. (1)); call :meth:`run` with consecutive row indices
    ``i = 0, 1, ..., n_r_seg-1``.
    """

    policy: PrecisionPolicy = field(kw_only=True)

    def bind(self, pre: PrecalcResult) -> None:
        """Attach a tile's precalculation outputs and reset the recurrence."""
        dtype = self.policy.compute
        self.pre = pre
        self.qt = None  # current row's QT plane, (d, n_q_seg)
        self._two_m = dtype.type(2 * pre.m)
        self._one = dtype.type(1)
        # Cache compute-dtype views of the per-row vectors (storage and
        # compute dtypes coincide in every mode, so these are no-copy).
        self._df_r = pre.df_r.astype(dtype, copy=False)
        self._dg_r = pre.dg_r.astype(dtype, copy=False)
        self._inv_r = pre.inv_r.astype(dtype, copy=False)
        self._df_q = pre.df_q.astype(dtype, copy=False)
        self._dg_q = pre.dg_q.astype(dtype, copy=False)
        self._inv_q = pre.inv_q.astype(dtype, copy=False)
        self._qt_col0 = pre.qt_col0.astype(dtype, copy=False)
        self._blk_ready = False  # wide mirrors built lazily by run_block

    def _ensure_block_state(self) -> None:
        """Build the wide-dtype operand mirrors and scratch buffers the
        inlined block recurrence uses (see :meth:`_advance_qt_block`).

        ``rp_fma`` evaluates each FMA in the next-wider format and rounds
        once; the block path runs the identical pipeline but hoists the
        operand widening out of the row loop and reuses preallocated
        scratch, so the per-row cost is just the arithmetic itself.
        """
        if self._blk_ready:
            return
        dtype = self.policy.compute
        wide = np.dtype(np.float32) if dtype == np.float16 else np.dtype(np.float64)
        d, n_q = self._inv_q.shape
        self._wide = wide
        self._df_r_w = self._df_r.astype(wide)
        self._dg_r_w = self._dg_r.astype(wide)
        self._df_q_w = self._df_q.astype(wide)
        self._dg_q_w = self._dg_q.astype(wide)
        self._inv_r_w = self._inv_r.astype(wide)
        self._inv_q_w = self._inv_q.astype(wide)
        self._blk_step_q = np.empty((d, n_q - 1), dtype=dtype)
        self._blk_prod1 = None  # (d, rows, n_q-1) wide, grown on demand
        self._blk_prod2 = None
        self._blk_ready = True

    def _prod_buffers(self, rows: int) -> tuple[np.ndarray, np.ndarray]:
        """Reusable wide buffers for the hoisted a*b block products."""
        d, n_q = self._inv_q.shape
        if self._blk_prod1 is None or self._blk_prod1.shape[1] < rows:
            self._blk_prod1 = np.empty((d, rows, n_q - 1), dtype=self._wide)
            self._blk_prod2 = np.empty_like(self._blk_prod1)
        return (
            self._blk_prod1[:, :rows],
            self._blk_prod2[:, :rows],
        )

    def _advance_qt_block(self, i0: int, rows: int, ws: np.ndarray) -> None:
        """Fill ``ws[:, r, :]`` with the QT planes of rows ``i0..i0+rows-1``.

        The same sequential Eq. (1) recurrence as :meth:`_advance_qt`
        (two wide-evaluated, once-rounded FMAs per row) with the
        ``rp_fma`` wrapper inlined: quantisation happens through
        cast-assignments into preallocated buffers — numpy assignment
        rounds to the destination dtype exactly like ``astype`` — and
        each FMA's ``c`` operand is added in its narrow dtype directly
        (numpy promotes it through an exact widening cast inside the
        add), so no per-row widening passes or temporaries remain.
        Bit-identical to the per-row path.
        """
        self._ensure_block_state()
        step_q = self._blk_step_q
        # The previous QT row, in compute dtype: the last row of the
        # preceding block (saved by run_block) or, within the block, a
        # view of the row just written.
        prev = self.qt
        with np.errstate(over="ignore", invalid="ignore"):
            # The a*b products of both FMAs depend only on the row index,
            # not on the running QT state — hoist them out of the
            # sequential loop as two vectorised block multiplies
            # (element-wise, so the same wide products bit-for-bit).
            prod1, prod2 = self._prod_buffers(rows)
            np.multiply(
                self._df_r_w[:, i0 : i0 + rows, None],
                self._dg_q_w[:, None, 1:],
                out=prod1,
            )
            np.multiply(
                self._df_q_w[:, None, 1:],
                self._dg_r_w[:, i0 : i0 + rows, None],
                out=prod2,
            )
            # Column 0 never enters the recurrence of rows inside this
            # block (row r reads prev[:, :-1], i.e. the *previous* row's
            # column 0) — pre-write the whole strip in one assignment.
            ws[:, :rows, 0] = self._qt_col0[:, i0 : i0 + rows]
            for r in range(rows):
                i = i0 + r
                row = ws[:, r, :]
                if i == 0:
                    row[...] = self.pre.qt_row0
                else:
                    t = prod1[:, r]  # consumed once, so += in place is fine
                    np.add(t, prev[:, :-1], out=t)  # c widened in the add
                    step_q[...] = t  # single rounding of the fused a*b + c
                    t = prod2[:, r]
                    np.add(t, step_q, out=t)  # exact widening in the add
                    row[:, 1:] = t  # single rounding of the second FMA
                prev = row

    def _advance_qt(self, i: int, out: np.ndarray, qt_prev: np.ndarray | None) -> None:
        """Write row ``i``'s QT plane into ``out`` (Eq. 1 recurrence)."""
        if i == 0:
            out[...] = self.pre.qt_row0
            return
        if qt_prev is None:
            raise RuntimeError("rows must be visited in order starting at 0")
        dtype = self.policy.compute
        # Two rounded FMAs per element, matching the __hfma2 pipeline:
        # QT[i, j] = QT[i-1, j-1] + df_r[i]*dg_q[j] + df_q[j]*dg_r[i].
        step = rp_fma(
            self._df_r[:, i : i + 1],
            self._dg_q[:, 1:],
            qt_prev[:, :-1],
            dtype,
        )
        out[:, 1:] = rp_fma(
            self._df_q[:, 1:],
            self._dg_r[:, i : i + 1],
            step,
            dtype,
        )
        # j = 0 has no top-left predecessor: take the precalculated
        # first-column entry.  (Written after the FMAs so ``out`` may
        # alias ``qt_prev``.)
        out[:, 0] = self._qt_col0[:, i]

    def _distances_block_f16(self, qt: np.ndarray, i0: int, rows: int) -> np.ndarray:
        """Half-precision :meth:`_distances` over a ``(d, rows, n_q)`` QT
        block, with the two genuine binary multiplies evaluated the way
        numpy's half ufuncs define them — float32 product (exact, both
        operands are half-valued) followed by one RNE rounding to half —
        but vectorised (``_f16fast``), and the unary tail collapsed into
        a single gather (``_qt_to_dist_lut19_f16``).  Bit-identical to
        the per-row chain; degenerate planes (half subnormals, NaNs from
        inf * 0) divert to the scalar rounding inside
        ``round_f16_inplace`` and still match.
        """
        self._ensure_block_state()
        with np.errstate(over="ignore", invalid="ignore"):
            corr = qt.astype(np.float32)
            corr *= self._inv_r_w[:, i0 : i0 + rows, None]
            round_f16_inplace(corr)
            corr *= self._inv_q_w[:, None, :]
            round_f16_inplace(corr)
        return np.take(_qt_to_dist_lut19_f16(self.pre.m), f16_keys19(corr))

    def _distances(self, qt: np.ndarray, inv_r: np.ndarray) -> np.ndarray:
        """QT -> saturated z-normalised distances; element-wise, so the
        result per element is independent of how many rows are batched."""
        dtype = self.policy.compute
        blocked = qt.ndim == 3
        inv_q = self._inv_q[:, None, :] if blocked else self._inv_q
        with np.errstate(over="ignore", invalid="ignore"):
            corr = ((qt * inv_r).astype(dtype) * inv_q).astype(dtype)
            gap = (self._one - corr).astype(dtype)
            # Rounding can push corr slightly above 1 for perfect matches;
            # clamp so sqrt stays real (SCAMP does the same).
            np.maximum(gap, dtype.type(0), out=gap)
            dist = np.sqrt((self._two_m * gap).astype(dtype)).astype(dtype)
        limit = dtype.type(DTYPE_MAX[np.dtype(dtype)])
        return np.where(np.isfinite(dist), dist, limit).astype(dtype)

    def run(self, i: int) -> np.ndarray:
        """Compute distance plane for reference row ``i``; returns (d, n_q)."""
        dtype = self.policy.compute
        if i == 0:
            self.qt = self.pre.qt_row0.astype(dtype, copy=True)
        else:
            qt_new = None if self.qt is None else np.empty_like(self.qt)
            self._advance_qt(i, qt_new, self.qt)
            self.qt = qt_new
        dist = self._distances(self.qt, self._inv_r[:, i : i + 1])
        self._record_cost(dist.size)
        return dist

    def run_block(self, i0: int, rows: int, workspace: np.ndarray) -> np.ndarray:
        """Compute distance planes for rows ``i0 .. i0+rows-1`` at once.

        ``workspace`` is a preallocated ``(d, rows, n_q)`` compute-dtype
        buffer the sequential QT recurrence fills row by row (no per-row
        temporaries); the QT -> distance conversion then runs once over
        the whole block.  Every operation is element-wise, so the result
        is bit-for-bit identical to ``rows`` consecutive :meth:`run`
        calls, and the cost is recorded per logical row so the modelled
        timings stay identical too.  Returns a fresh (d, rows, n_q)
        distance block (``workspace`` keeps the QT planes for the next
        block's recurrence).
        """
        if rows < 1:
            raise ValueError(f"rows must be >= 1, got {rows}")
        if i0 != 0 and self.qt is None:
            raise RuntimeError("rows must be visited in order starting at 0")
        self._advance_qt_block(i0, rows, workspace)
        # The workspace is reused by the caller; keep the recurrence state
        # in a private copy of the last row.
        self.qt = workspace[:, rows - 1, :].copy()
        block = workspace[:, :rows, :]
        if self.policy.compute == np.float16:
            dist = self._distances_block_f16(block, i0, rows)
        else:
            dist = self._distances(block, self._inv_r[:, i0 : i0 + rows, None])
        self._record_cost(dist[:, 0, :].size, rows=rows)
        return dist

    def _record_cost(self, plane_size: int, rows: int = 1) -> None:
        """Cost of ``rows`` logical row invocations, per the conventions
        in ``repro.gpu.perfmodel``; ``plane_size`` is one row's d*n_q."""
        elems = float(plane_size)
        size = self.policy.storage.itemsize
        step = self.config.total_threads
        rounds = -(-plane_size // step)  # ceil; one grid-stride round per span
        self._account(
            bytes_dram=rows * 3.0 * elems * size,
            bytes_l2=rows * 6.0 * elems * size,
            flops=rows * 8.0 * elems,
            launches=rows,
            loop_rounds=rows * rounds,
        )
