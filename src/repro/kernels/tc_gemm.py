"""Tensor-core main loop: the ``dist_calc`` recurrence as chained GEMMs.

The streaming recurrence of Eq. (1),

    QT[i, j] = QT[i-1, j-1] + df_r[i]*dg_q[j] + df_q[j]*dg_r[i]

advances one row per step, which on hardware costs one kernel launch per
row and keeps the FMA pipes at vector-FP16 rates.  This kernel executes a
whole ``row_block x n_q`` panel per super-step on the (simulated)
tensor-core unit instead, following the playbook of Curless (*Mixed
Precision Euclidean Distance Using Tensor Cores*) and Navarro et al.
(*Tensor Cores for Arithmetic Reductions*):

1. **Rank-2 update GEMM.**  The per-row update term
   ``u[t, j] = df_r[i0+t]*dg_q[j] + df_q[j]*dg_r[i0+t]`` over the whole
   panel is exactly a k=2 GEMM with FP16 operands (``df``/``dg`` are
   storage-dtype halves) and an FP32 accumulator — each product of two
   halves is exact in float32, so the batched ``(T, 2) @ (2, n_q)``
   matmul below *is* the WMMA result bit-for-bit.

2. **Diagonal shear.**  In diagonal coordinates ``q = j - t`` the
   recurrence decouples: ``QT[i0+t, q+t] = QT[i0-1, q-1] + sum_{s<=t}
   U[s, q]`` with ``U[s, q] = u[s, q+s]``.  The shear is a zero-copy
   strided view of the zero-padded update panel; the base row is
   *independent of t*, so it folds into the accumulator's initial value.

3. **Chained-MMA prefix sum.**  The column prefix over ``t`` is a matmul
   with the lower-triangular all-ones matrix, evaluated in chained
   ``mma_k``-row chunks whose running carry lives in the FP32 accumulator
   fragment (Navarro's chained-reduction trick).  To enter the chain each
   update term is first demoted to FP16 — the *per-operation operand
   rounding* of WMMA semantics — but every addition thereafter rounds in
   FP32.  That flips the error structure of the vector half loop: the
   per-step ``eps16`` growth becomes a constant, and only an ``eps32``
   growth term remains (see ``precision.errors.tc_gemm_error_bound``).

4. **Corner chains.**  Diagonals entering through column 0 *inside* the
   block (``j <= t``) restart from the precalculated ``qt_col0`` entries;
   they form a second, ``row_block``-wide sheared panel fed through the
   same chained prefix with ``qt_col0`` as the initial carry.

5. **Fused FP32 epilogue.**  The panel's QT values end the chain in the
   FP32 accumulator, so the correlation -> distance conversion runs in
   float32 *before* anything is stored: on hardware the normalisation
   multiplies and the square root execute on the accumulator fragment in
   registers, and the distance panel flows to the sort stage through
   shared memory without a half round-trip.  Only two narrow stores
   remain per chain: the block-boundary QT row and (after sort/update)
   the winning profile entry.  The distance block this kernel returns is
   therefore float32 — ``SortScanKernel`` (``mma_scan``) and
   ``UpdateKernel`` consume it in that form, and cost accounting keeps
   charging storage-dtype planes (the modelled device still moves FP16;
   register-file conversions are free on hardware).

Only the FP16-storage wide-precalc modes (Mixed, FP16C) are eligible —
see ``precision.modes.TENSOR_CORE_MODES``; the backend falls back to the
vector path for everything else.  The result is numerically *different*
from the vector modes (that is the point: FP32 accumulation), so the
tensor-core path is a distinct cache-key axis, not a bit-identical
rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np
from numpy.lib.stride_tricks import as_strided

from ..precision.modes import DTYPE_MAX, TENSOR_CORE_MODES
from .dist_calc import DistCalcKernel
from .precalc import PrecalcResult

__all__ = ["TcGemmKernel"]

#: Flops of one dense 16x16x16 MMA (2*m*n*k).
_MMA_FLOPS = 2 * 16 * 16 * 16

#: FP16 saturation value used by the fused epilogue (the storage format's
#: largest finite value, kept in float32).
_F16_LIMIT = np.float32(DTYPE_MAX[np.dtype(np.float16)])

# Bit thresholds of the float32 -> float16 quantiser below: |x| < 2^-14
# (the result is an FP16 subnormal) and |x| >= 65520 (the result
# overflows to infinity; 65520 is the exact rounding boundary).
_MAG_MASK = np.uint32(0x7FFFFFFF)
_SUBNORMAL_LIM = np.uint32(0x38800000)
_OVERFLOW_LIM = np.uint32(0x477FF000)
#: Round-to-grid constant: adding then subtracting 0.75 rounds any
#: |x| < 2^-14 to the FP16 subnormal grid (2^-24) with RNE, exactly.
_GRID_C = np.float32(0.75)


@lru_cache(maxsize=16)
def _ltri_f32(k: int) -> np.ndarray:
    """Lower-triangular all-ones (k, k) float32 matrix — the inclusive
    prefix-sum operator ``S = L @ U``.  Ones and zeros are exact halves,
    so using it as an FP16 MMA operand loses nothing."""
    tri = np.tril(np.ones((k, k), dtype=np.float32))
    tri.setflags(write=False)
    return tri


@lru_cache(maxsize=32)
def _corner_indices(T: int, n_q: int, pad_w: int):
    """Gather indices and mask for the corner chains of a ``T x n_q``
    panel whose padded update panel is ``pad_w`` wide.

    * ``idx_w``: ``W[s, a] = Pd[s, max(s-a, 0)]`` — the corner shear;
      clipped indices land on the padded panel's all-zero column 0, which
      is exactly the ``s <= a`` zero prefix the corner chain needs.
    * ``idx_corner`` + ``mask_corner``: ``out[t, j] = P[t, t-j]`` where
      ``1 <= j <= t`` (P is the corner chain's prefix panel).
    """
    s = np.arange(T, dtype=np.intp)[:, None]
    a = np.arange(T, dtype=np.intp)[None, :]
    idx_w = (s * pad_w + np.maximum(s - a, 0)).ravel()
    t = np.arange(T, dtype=np.intp)[:, None]
    cj = min(T, n_q)
    jc = np.arange(cj, dtype=np.intp)[None, :]
    idx_corner = (t * T + np.clip(t - jc, 0, T - 1)).ravel()
    mask_corner = ((jc >= 1) & (jc <= t))[None, :, :]
    out = (idx_w, idx_corner, mask_corner)
    for arr in out:
        arr.setflags(write=False)
    return out


@dataclass
class TcGemmKernel(DistCalcKernel):
    """Packed-panel tensor-core execution of the ``dist_calc`` main loop.

    Reuses the parent's operand binding and cost-plane conventions but
    replaces the sequential per-row recurrence of :meth:`run_block` with
    the sheared chained-GEMM panel described in the module docstring.
    :meth:`run_block` returns the distance block as *float32* (the fused
    epilogue's accumulator contents); pair it with
    ``SortScanKernel(mma_scan=True)`` and the stock ``UpdateKernel``,
    which reduce the wide panel before the single FP16 store.
    """

    #: Chunk height of the chained prefix — the ``k`` of the device's MMA
    #: fragment shape (16 on every shipping NVIDIA part).
    mma_k: int = field(default=16, kw_only=True)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mma_k < 1:
            raise ValueError(f"mma_k must be >= 1, got {self.mma_k}")
        self.cost.tensor_core = True
        self._tc_round = None  # quantiser scratch; usable before bind()

    def bind(self, pre: PrecalcResult) -> None:
        if self.policy.mode not in TENSOR_CORE_MODES:
            eligible = ", ".join(m.value for m in TENSOR_CORE_MODES)
            raise ValueError(
                f"tensor-core main loop requires an FP16-storage wide-precalc"
                f" mode ({eligible}), got {self.policy.mode.value}"
            )
        super().bind(pre)
        self._tc_buffers: dict[tuple[str, int], np.ndarray] = {}
        self._tc_B = None  # (d, 2, W) rank-2 update right operand
        self._tc_round = None  # quantiser scratch, per panel shape

    def _ensure_block_state(self) -> None:
        if self._blk_ready:
            return
        super()._ensure_block_state()
        self._qt_col0_w = self._qt_col0.astype(self._wide)
        # The fused epilogue folds the 2m distance scale into the row
        # normaliser: D^2 = 2m - QT * (2m * inv_r) * inv_q.
        self._two_m_w = np.float32(2 * self.pre.m)
        self._inv_r_2m = (self._inv_r_w * self._two_m_w).astype(np.float32)

    def _tc_buf(self, kind: str, T: int, cols: int) -> np.ndarray:
        """Per-(kind, block-height) float32 scratch panel.  Contents are
        fully overwritten by each use; nothing relies on stale state."""
        buf = self._tc_buffers.get((kind, T))
        if buf is None:
            d = self._inv_q.shape[0]
            buf = np.empty((d, T, cols), dtype=np.float32)
            self._tc_buffers[(kind, T)] = buf
        return buf

    def _tc_operands(self, T: int) -> tuple[np.ndarray, np.ndarray]:
        """The per-block left operand ``A`` and the tile-wide right
        operand ``B`` of the rank-2 update GEMM, with ``B`` zero-padded
        so the batched matmul writes the sheared panel's zero border
        directly (column 0 and the ``T`` wrap-around columns)."""
        d, n_q = self._inv_q.shape
        W = n_q + T
        if self._tc_B is None or self._tc_B.shape[2] < W:
            B = np.zeros((d, 2, W), dtype=np.float32)
            B[:, 0, 1:n_q] = self._dg_q_w[:, 1:]
            B[:, 1, 1:n_q] = self._df_q_w[:, 1:]
            self._tc_B = B
        A = self._tc_buf("A", T, 2)
        return A, self._tc_B[:, :, :W]

    def _quantise_f16(self, buf: np.ndarray) -> None:
        """In-place float32 -> FP16-valued float32 quantisation (RNE) —
        the operand rounding that loads ``buf`` into MMA fragments.

        Equivalent to ``buf.astype(float16).astype(float32)`` except the
        sign of a negative zero may flip (irrelevant: the values feed
        additions only).  Normal-range values round via the classic
        mantissa bit trick; subnormal results via an exact add/subtract
        against 0.75, which forces RNE onto the 2^-24 grid — both fully
        vectorised, unlike the boolean-gather fallback of
        ``_f16fast.round_f16_inplace``, whose cost explodes as soon as a
        single update term lands below 2^-14 (common for df*dg products).
        Overflow/NaN/inf entries take a gathered scalar fallback, rare by
        the same magnitude argument.
        """
        scratch = self._tc_round
        if scratch is None or scratch[0].shape != buf.shape:
            scratch = (
                np.empty(buf.shape, dtype=np.uint32),
                np.empty(buf.shape, dtype=np.uint32),
                np.empty(buf.shape, dtype=np.float32),
                np.empty(buf.shape, dtype=bool),
            )
            self._tc_round = scratch
        mag, gbuf, tmp32, small = scratch
        v = buf.view(np.uint32)
        np.bitwise_and(v, _MAG_MASK, out=mag)
        top = mag.max()
        ext_mask = ext_vals = None
        if top >= _OVERFLOW_LIM:
            ext_mask = mag >= _OVERFLOW_LIM
            with np.errstate(over="ignore"):
                ext_vals = buf[ext_mask].astype(np.float16).astype(np.float32)
        np.less(mag, _SUBNORMAL_LIM, out=small)
        has_small = bool(small.any())
        if has_small:
            np.add(buf, _GRID_C, out=tmp32)
            np.subtract(tmp32, _GRID_C, out=tmp32)
        # RNE bit trick for the normal range, in place.
        np.right_shift(v, np.uint32(13), out=gbuf)
        np.bitwise_and(gbuf, np.uint32(1), out=gbuf)
        np.add(gbuf, v, out=gbuf)
        np.add(gbuf, np.uint32(0x0FFF), out=gbuf)
        np.bitwise_and(gbuf, np.uint32(0xFFFFE000), out=v)
        if has_small:
            np.copyto(buf, tmp32, where=small)
        if ext_mask is not None:
            buf[ext_mask] = ext_vals

    def _panel(self, i_start: int, T: int, base_f16: np.ndarray) -> np.ndarray:
        """QT planes of rows ``i_start .. i_start+T-1`` given the previous
        row ``base_f16`` — returned as a reused (d, T, n_q) float32 panel
        (the FP32 accumulator contents)."""
        d, n_q = self._inv_q.shape
        out = self._tc_buf("out", T, n_q)
        if n_q == 1:
            out[:, :, 0] = self._qt_col0_w[:, i_start : i_start + T]
            return out

        # Rank-2 update GEMM: exact FP16xFP16 products accumulated in
        # FP32, then one demotion to FP16 — the operand quantisation
        # feeding the prefix chain's MMA fragments.  The zero-padded
        # right operand makes the matmul emit the sheared panel's zero
        # border for free.
        A, B = self._tc_operands(T)
        A[:, :, 0] = self._df_r_w[:, i_start : i_start + T]
        A[:, :, 1] = self._dg_r_w[:, i_start : i_start + T]
        pad = self._tc_buf("pad", T, n_q + T)
        with np.errstate(over="ignore", invalid="ignore"):
            np.matmul(A, B, out=pad)
            self._quantise_f16(pad)

        # Diagonal shear as a zero-copy strided view:
        # main[k, s, q'] = pad[k, s, q'+1+s].
        sd, sr, sc = pad.strides
        main_v = as_strided(
            pad[:, :, 1:], shape=(d, T, n_q - 1), strides=(sd, sr + sc, sc)
        )
        idx_w, idx_corner, mask_corner = _corner_indices(T, n_q, n_q + T)
        cornerW = self._tc_buf("cornerW", T, T)
        np.take(pad.reshape(d, -1), idx_w, axis=1, out=cornerW.reshape(d, -1))

        # Chained-MMA prefix: mma_k-row chunks, FP32 carry in the
        # accumulator fragment.  The base QT row (main diagonals) and the
        # qt_col0 entries (corner diagonals) seed the carries.  The scan
        # buffer carries T-1 left-padding columns so the un-shear below
        # is a strided copy instead of a gather.
        SB = self._tc_buf("scanS", T, (T - 1) + (n_q - 1))
        real = SB[:, :, T - 1 :]
        scanP = self._tc_buf("scanP", T, T)
        tmpc = self._tc_buf("chunk", min(self.mma_k, T), n_q - 1)
        carry_s = base_f16.astype(np.float32)[:, None, : n_q - 1]
        carry_p = self._qt_col0_w[:, None, i_start : i_start + T]
        mk = self.mma_k
        with np.errstate(over="ignore", invalid="ignore"):
            for c0 in range(0, T, mk):
                r = min(mk, T - c0)
                tri = _ltri_f32(r)
                chunk = tmpc[:, :r]
                np.matmul(tri, main_v[:, c0 : c0 + r], out=chunk)
                np.add(chunk, carry_s, out=chunk)
                real[:, c0 : c0 + r] = chunk
                carry_s = real[:, c0 + r - 1 : c0 + r]
                np.matmul(tri, cornerW[:, c0 : c0 + r], out=scanP[:, c0 : c0 + r])
                np.add(
                    scanP[:, c0 : c0 + r], carry_p, out=scanP[:, c0 : c0 + r]
                )
                carry_p = scanP[:, c0 + r - 1 : c0 + r]

        # Un-shear back to row coordinates: strided copy for the main
        # diagonals, gathered overlay for the corner chains, and the
        # direct column-0 strip.
        ssd, ssr, ssc = SB.strides
        un_v = as_strided(
            SB[:, :, T - 1 :], shape=(d, T, n_q - 1), strides=(ssd, ssr - ssc, ssc)
        )
        np.copyto(out[:, :, 1:], un_v)
        cj = min(T, n_q)
        corner_vals = np.take(scanP.reshape(d, -1), idx_corner, axis=1)
        np.copyto(out[:, :, :cj], corner_vals.reshape(d, T, cj), where=mask_corner)
        out[:, :, 0] = self._qt_col0_w[:, i_start : i_start + T]
        return out

    def run_block(self, i0: int, rows: int, workspace: np.ndarray | None) -> np.ndarray:
        """Tensor-core super-step: one packed-panel launch for ``rows``
        reference rows.  ``workspace`` (the vector path's QT block buffer)
        is unused — the panel lives in the FP32 accumulator scratch and
        only the block-boundary row is demoted to FP16 storage.  Returns
        the (d, rows, n_q) *float32* distance block (see the module
        docstring on the fused epilogue)."""
        if rows < 1:
            raise ValueError(f"rows must be >= 1, got {rows}")
        if i0 != 0 and self.qt is None:
            raise RuntimeError("rows must be visited in order starting at 0")
        self._ensure_block_state()
        d, n_q = self._inv_q.shape
        if i0 == 0:
            out_w = self._tc_buf("out0", rows, n_q)
            out_w[:, 0] = self.pre.qt_row0
            if rows > 1:
                out_w[:, 1:] = self._panel(1, rows - 1, self.pre.qt_row0)
        else:
            out_w = self._panel(i0, rows, self.qt)
        with np.errstate(over="ignore", invalid="ignore"):
            # Block-boundary FP16 store: the only narrow QT rounding per
            # chain.
            self.qt = out_w[:, rows - 1].astype(self.policy.compute)
            # Fused FP32 epilogue on the accumulator fragment:
            # D = sqrt(2m - QT * (2m * inv_r) * inv_q), saturated.
            np.multiply(out_w, self._inv_r_2m[:, i0 : i0 + rows, None], out=out_w)
            np.multiply(out_w, self._inv_q_w[:, None, :], out=out_w)
            np.subtract(self._two_m_w, out_w, out=out_w)
            np.maximum(out_w, np.float32(0.0), out=out_w)
            np.sqrt(out_w, out=out_w)
            top = np.max(out_w)
            if not np.isfinite(top) or top > _F16_LIMIT:
                fin = np.isfinite(out_w)
                np.invert(fin, out=fin)
                np.copyto(out_w, _F16_LIMIT, where=fin)
                np.minimum(out_w, _F16_LIMIT, out=out_w)
        self._record_cost_tc(n_q, rows)
        return out_w

    def _record_cost_tc(self, n_q: int, rows: int) -> None:
        """One super-step launch; flops in whole 16x16x16 MMA fragments.

        DRAM/L2 planes keep the parent's per-row conventions (the operand
        streams and the distance write are unchanged, still priced at the
        FP16 storage width); what moves is the arithmetic — priced on the
        tensor-core unit via the cost's ``tensor_core`` flag — and the
        launch count, now one per panel instead of one per row.
        """
        d = self._inv_q.shape[0]
        elems = float(d * n_q)
        size = self.policy.storage.itemsize
        chunks = -(-rows // self.mma_k)
        frag_rows = -(-rows // 16)
        mmas_update = frag_rows * (-(-n_q // 16))  # k=2 rank-2 update
        mmas_scan = chunks * (
            -(-max(n_q - 1, 1) // 16) + -(-rows // 16)  # main + corner chains
        )
        flops = float(d) * (
            mmas_update * (2.0 * 16 * 16 * 2) + mmas_scan * float(_MMA_FLOPS)
        )
        step = self.config.total_threads
        self._account(
            bytes_dram=rows * 3.0 * elems * size,
            bytes_l2=rows * 6.0 * elems * size,
            flops=flops,
            syncs=chunks,
            launches=1,
            loop_rounds=-(-(rows * int(elems)) // step),
        )
