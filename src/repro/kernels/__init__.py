"""The four GPU kernels of Pseudocode 1, executing real numpy arithmetic in
the requested precision while recording hardware-cost counters."""

from .dist_calc import DistCalcKernel
from .layout import to_device_layout, to_host_layout, validate_series
from .precalc import PrecalcKernel, PrecalcResult, naive_qt_row
from .sort_scan import SortScanKernel, bitonic_sort, fanin_inclusive_scan
from .sort_scan_batch import (
    BatchSortScanKernel,
    insertion_sort_columns,
    sequential_inclusive_scan,
)
from .update import INDEX_DTYPE, UpdateKernel

__all__ = [
    "DistCalcKernel",
    "PrecalcKernel",
    "PrecalcResult",
    "naive_qt_row",
    "SortScanKernel",
    "BatchSortScanKernel",
    "bitonic_sort",
    "fanin_inclusive_scan",
    "insertion_sort_columns",
    "sequential_inclusive_scan",
    "UpdateKernel",
    "INDEX_DTYPE",
    "to_device_layout",
    "to_host_layout",
    "validate_series",
]
