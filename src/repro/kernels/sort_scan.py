"""The ``sort_&_incl_scan`` kernel (Pseudocode 1, line 5).

For every query column ``j`` of the current distance plane, the ``d``
per-dimension distances are sorted ascending and then progressively
averaged (Eq. 2): ``D''[j, k]`` is the mean of the ``k+1`` smallest
distances, realised as an inclusive scan divided by ``k+1``.

The paper's kernel uses a custom **bitonic sort** — O(log^2 d) stages of
compare-exchange networks, chosen over CUB/ModernGPU for performance — and
an O(log d) **fan-in (Hillis–Steele) inclusive scan**, both executed
cooperatively by a thread group per column with coarse-grained
synchronisation between stages (Section III-A, IV).

This implementation runs the *same networks*: every compare-exchange stage
and every scan stage is one vectorised numpy operation across all columns,
with per-stage rounding in the mode's compute dtype and one synchronisation
accounted per stage.  Sorting is exact (comparisons don't round); the scan
adds in fan-in order, which on real hardware differs from a sequential
cumsum — our emulation reproduces that summation order bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..gpu.kernel import Kernel
from ..precision.modes import DTYPE_MAX, PrecisionPolicy

__all__ = ["SortScanKernel", "bitonic_sort", "fanin_inclusive_scan"]


def _next_pow2(d: int) -> int:
    return 1 << (d - 1).bit_length()


def bitonic_sort(plane: np.ndarray, count_stages: bool = False):
    """Bitonic-sort each column of ``plane`` (axis 0) ascending.

    ``plane`` is (d, n) and is padded to the next power of two with the
    dtype's largest finite value (padding sorts to the bottom and is
    stripped before returning).  Returns the sorted (d, n) array, plus the
    stage count when ``count_stages`` is set.

    The network is the standard iterative formulation: for each ``size``
    (2, 4, ..., p) and each ``stride`` (size/2 ... 1) a full compare-
    exchange pass runs; on the device every pass ends with a group
    synchronisation.
    """
    d, n = plane.shape
    p = _next_pow2(d)
    dtype = plane.dtype
    pad_value = DTYPE_MAX.get(np.dtype(dtype), np.inf)
    if p != d:
        padding = np.full((p - d, n), pad_value, dtype=dtype)
        work = np.concatenate([plane, padding], axis=0)
    else:
        work = plane.copy()

    stages = 0
    idx = np.arange(p)
    size = 2
    while size <= p:
        stride = size // 2
        while stride >= 1:
            partner = idx ^ stride
            lower = idx < partner
            ascending = (idx & size) == 0
            # For each pair (i, i^stride) with i < partner, keep min at i
            # when the subsequence is ascending, max otherwise.
            i_lo = idx[lower]
            i_hi = partner[lower]
            a = work[i_lo]
            b = work[i_hi]
            asc = ascending[lower][:, None]
            swap = np.where(asc, a > b, a < b)
            a_new = np.where(swap, b, a)
            b_new = np.where(swap, a, b)
            work[i_lo] = a_new
            work[i_hi] = b_new
            stages += 1
            stride //= 2
        size *= 2

    out = work[:d]
    if count_stages:
        return out, stages
    return out


def fanin_inclusive_scan(plane: np.ndarray, dtype: np.dtype, count_stages: bool = False):
    """Hillis–Steele inclusive scan along axis 0 with per-stage rounding.

    ``out[t] = sum(plane[0..t])`` evaluated in ``ceil(log2 d)`` fan-in
    stages; each stage's additions round to ``dtype``.
    """
    d = plane.shape[0]
    work = plane.astype(dtype, copy=True)
    stages = 0
    offset = 1
    with np.errstate(over="ignore", invalid="ignore"):
        while offset < d:
            shifted = work[:-offset]
            work[offset:] = (work[offset:] + shifted).astype(dtype)
            stages += 1
            offset *= 2
    if count_stages:
        return work, stages
    return work


@dataclass
class SortScanKernel(Kernel):
    """Sort + inclusive-average of one distance plane (d, n_q)."""

    policy: PrecisionPolicy = field(kw_only=True)

    def run(self, plane: np.ndarray) -> np.ndarray:
        """Returns D'' — the (d, n_q) plane of inclusive averages, where row
        ``k`` holds the mean of the k+1 best per-dimension distances."""
        dtype = self.policy.compute
        d = plane.shape[0]
        sorted_plane, sort_stages = bitonic_sort(
            plane.astype(dtype, copy=False), count_stages=True
        )
        scanned, scan_stages = fanin_inclusive_scan(
            sorted_plane, dtype, count_stages=True
        )
        divisors = (np.arange(1, d + 1, dtype=np.float64)[:, None]).astype(dtype)
        with np.errstate(over="ignore", invalid="ignore"):
            averaged = (scanned / divisors).astype(dtype)
        self._record_cost(plane, sort_stages + scan_stages)
        return averaged

    def _record_cost(self, plane: np.ndarray, stages: int) -> None:
        """Per-row cost per the conventions in ``repro.gpu.perfmodel``."""
        d, n_q = plane.shape
        p = _next_pow2(d)
        size = self.policy.storage.itemsize
        elems = float(d * n_q)
        rounds = math.ceil(n_q * p / self.config.total_threads)
        self._account(
            bytes_dram=2.0 * elems * size,
            bytes_l2=2.0 * elems * size,
            bytes_l1=float(stages * n_q * p * size),
            flops=float(stages * n_q * p),
            syncs=stages,
            launches=1,
            loop_rounds=rounds,
        )
