"""The ``sort_&_incl_scan`` kernel (Pseudocode 1, line 5).

For every query column ``j`` of the current distance plane, the ``d``
per-dimension distances are sorted ascending and then progressively
averaged (Eq. 2): ``D''[j, k]`` is the mean of the ``k+1`` smallest
distances, realised as an inclusive scan divided by ``k+1``.

The paper's kernel uses a custom **bitonic sort** — O(log^2 d) stages of
compare-exchange networks, chosen over CUB/ModernGPU for performance — and
an O(log d) **fan-in (Hillis–Steele) inclusive scan**, both executed
cooperatively by a thread group per column with coarse-grained
synchronisation between stages (Section III-A, IV).

This implementation runs the *same networks*: every compare-exchange stage
and every scan stage is one vectorised numpy operation across all columns,
with per-stage rounding in the mode's compute dtype and one synchronisation
accounted per stage.  Sorting is exact (comparisons don't round); the scan
adds in fan-in order, which on real hardware differs from a sequential
cumsum — our emulation reproduces that summation order bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..gpu.kernel import Kernel
from ..precision.modes import DTYPE_MAX, PrecisionPolicy
from ._f16fast import f16_keys19, f16_lut19, round_f16_nonneg_inplace

__all__ = ["SortScanKernel", "bitonic_sort", "fanin_inclusive_scan"]


def _next_pow2(d: int) -> int:
    return 1 << (d - 1).bit_length()


@lru_cache(maxsize=64)
def _bitonic_network(p: int) -> tuple[tuple[np.ndarray, np.ndarray, np.ndarray], ...]:
    """Compare-exchange passes of the ``p``-input bitonic network.

    The network depends only on the padded size ``p``, so the index
    arrays — for each pass the lower/upper partner rows and the
    per-pair ascending flag column — are built once and cached instead
    of being rebuilt on every kernel invocation.  Arrays are marked
    read-only; a pass is ``(i_lo, i_hi, ascending[:, None])``.
    """
    passes = []
    idx = np.arange(p)
    size = 2
    while size <= p:
        stride = size // 2
        while stride >= 1:
            partner = idx ^ stride
            lower = idx < partner
            i_lo = idx[lower]
            i_hi = partner[lower]
            asc = ((idx & size) == 0)[lower][:, None]
            for arr in (i_lo, i_hi, asc):
                arr.setflags(write=False)
            passes.append((i_lo, i_hi, asc))
            stride //= 2
        size *= 2
    return tuple(passes)


@lru_cache(maxsize=64)
def _divisor_column(d: int, dtype: np.dtype) -> np.ndarray:
    """The (d, 1) inclusive-average divisor column ``[1, 2, ..., d]`` in
    ``dtype``, cached per (d, dtype) instead of rebuilt per run."""
    col = (np.arange(1, d + 1, dtype=np.float64)[:, None]).astype(dtype)
    col.setflags(write=False)
    return col


def _network_stage_count(p: int) -> int:
    """Pass count of the ``p``-input bitonic network without running it
    (``size`` = 2..p contributes ``log2(size)`` strides)."""
    k = (p - 1).bit_length()
    return k * (k + 1) // 2


_U16_SIGN = np.uint16(0x8000)
_U16_REST = np.uint16(0x7FFF)

#: Column counts small enough that an odd-even transposition network
#: (d rounds of vectorised integer min/max over the whole plane) beats
#: ``np.sort`` along the short, strided axis.
_NETWORK_MAX_D = 8

#: Largest ``d`` the fused tensor-core path sorts with a Batcher
#: odd-even merge network (19 comparators at d=8, versus the 28 of the
#: transposition network); larger planes fall back to ``np.sort``.
_BATCHER_MAX_D = 16


@lru_cache(maxsize=64)
def _transposition_pairs(d: int) -> tuple[tuple[int, int], ...]:
    """Compare-exchange pairs of the ``d``-input odd-even transposition
    sorting network, in execution order (d rounds, alternating parity)."""
    return tuple(
        (i, i + 1)
        for rnd in range(d)
        for i in range(rnd & 1, d - 1, 2)
    )


def _sort_keys_network(keys: np.ndarray) -> np.ndarray:
    """Ascending in-place sort of ``keys`` (shape ``(d, n)``, integer)
    along axis 0 via the odd-even transposition network — each
    compare-exchange is two vectorised min/max over an ``n``-element
    row, which for small ``d`` is far cheaper than ``np.sort`` striding
    down the columns.  Any correct ascending sort of the same key
    multiset yields the same key sequence, so the output is identical
    to ``np.sort(keys, axis=0)``."""
    lo = np.empty_like(keys[0])
    hi = np.empty_like(keys[0])
    for i, j in _transposition_pairs(keys.shape[0]):
        np.minimum(keys[i], keys[j], out=lo)
        np.maximum(keys[i], keys[j], out=hi)
        keys[i] = lo
        keys[j] = hi
    return keys


@lru_cache(maxsize=64)
def _batcher_pairs(d: int) -> tuple[tuple[int, int], ...]:
    """Compare-exchange pairs of Batcher's odd-even merge sorting network
    for ``d`` inputs, in execution order.

    Built for the next power of two and filtered to comparators whose
    wires both lie below ``d`` — the dropped wires would carry +inf
    padding, which never swaps downward, so the filtered network sorts
    any ``d`` inputs (verified exhaustively by the zero-one principle in
    the tests).  At ``d = 8`` this is the optimal 19-comparator network,
    versus the 28 of the odd-even transposition network above.
    """
    p = 1 << (d - 1).bit_length()
    pairs: list[tuple[int, int]] = []

    def merge(lo: int, n: int, r: int) -> None:
        step = r * 2
        if step < n:
            merge(lo, n, step)
            merge(lo + r, n, step)
            for i in range(lo + r, lo + n - r, step):
                pairs.append((i, i + r))
        else:
            pairs.append((lo, lo + r))

    def sort(lo: int, hi: int) -> None:
        if hi - lo >= 1:
            mid = lo + (hi - lo) // 2
            sort(lo, mid)
            sort(mid + 1, hi)
            merge(lo, hi - lo + 1, 1)

    sort(0, p - 1)
    return tuple((i, j) for (i, j) in pairs if j < d)


def _sort_f32_inplace(plane: np.ndarray) -> np.ndarray:
    """Ascending in-place per-column sort of a NaN-free float32 plane —
    the fused tensor-core path's sort, run directly on the FP32 distance
    fragment with native float min/max (no radix-key transform needed).
    Value-identical to ``np.sort(plane, axis=0)``."""
    d = plane.shape[0]
    if d > _BATCHER_MAX_D:
        plane[...] = np.sort(plane, axis=0)
        return plane
    lo = np.empty_like(plane[0])
    for i, j in _batcher_pairs(d):
        np.minimum(plane[i], plane[j], out=lo)
        np.maximum(plane[i], plane[j], out=plane[j])
        plane[i] = lo
    return plane


def _sort_columns_exact(plane: np.ndarray) -> np.ndarray:
    """Ascending per-column sort whose output *values* are identical to
    the bitonic network's — any correct ascending sort of a NaN-free
    column yields the same value sequence, so only the emulation
    fidelity (stage-by-stage execution) is given up, never a bit of the
    result.

    Half precision is the point of doing this: numpy's ``float16``
    comparisons run a scalar convert-to-float loop, so executing the
    compare-exchange passes costs ~5x a native integer sort.  IEEE half
    bit patterns order like their values once negative patterns are
    flipped (the classic radix-key transform), so halves are sorted as
    ``uint16`` keys.  Wider dtypes go straight to ``np.sort``.  Columns
    must be NaN-free (distance planes are by construction; the network's
    behaviour under NaN is unspecified anyway).
    """
    if plane.dtype != np.float16:
        return np.sort(plane, axis=0)
    u = np.ascontiguousarray(plane).view(np.uint16)
    neg = u >> np.uint16(15)
    keys = u ^ (neg * _U16_REST + _U16_SIGN)
    if plane.shape[0] <= _NETWORK_MAX_D:
        keys = _sort_keys_network(keys)
    else:
        keys = np.sort(keys, axis=0)
    pos = keys >> np.uint16(15)
    return (keys ^ ((pos ^ np.uint16(1)) * _U16_REST + _U16_SIGN)).view(np.float16)


@lru_cache(maxsize=64)
def _divide_lut_f16(k: int) -> np.ndarray:
    """All 65536 half values divided by ``k`` and rounded, as one table.

    ``x / k`` is a unary function of ``x`` for a fixed divisor, and half
    precision has only 2^16 values — so the whole inclusive-average
    division collapses to a gather.  Built with the very numpy ops the
    per-row path runs, hence bit-identical by construction (NaN payloads
    included).
    """
    vals = np.arange(65536, dtype=np.uint16).view(np.float16)
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        out = (vals / np.float16(k)).astype(np.float16)
    out.setflags(write=False)
    return out


@lru_cache(maxsize=64)
def _divide_lut19_f16(k: int) -> np.ndarray:
    """:func:`_divide_lut_f16` re-keyed to the 19-bit float32 key space,
    so scan results held as half-valued float32 are divided without ever
    materialising a half array."""
    return f16_lut19(_divide_lut_f16(k))


@lru_cache(maxsize=16)
def _divide_lut19_stack_f16(d: int) -> np.ndarray:
    """The divisor tables for k = 1..d concatenated into one flat array,
    so the whole (d, n) inclusive-average division is a single gather
    with ``key + (k << 19)`` indices instead of d separate takes."""
    stack = np.concatenate([_divide_lut19_f16(k + 1) for k in range(d)])
    stack.setflags(write=False)
    return stack


def _fanin_scan_f16_block(sorted16: np.ndarray) -> np.ndarray:
    """:func:`fanin_inclusive_scan` for half precision, evaluated in
    float32 storage with explicit half rounding after each stage.

    numpy's half add *is* a float32 add followed by one RNE conversion
    per element (scalar loop); this runs the identical pipeline with the
    conversion vectorised (``_f16fast``), so every stage's bits match.
    Inputs are sorted saturated distances — non-negative and NaN-free,
    the ``round_f16_nonneg_inplace`` domain.  Returns the scanned plane
    as half-valued float32 (gather keys via :func:`f16_keys19`).
    """
    work = sorted16.astype(np.float32)
    d = work.shape[0]
    tmp = np.empty_like(work[1:]) if d > 1 else None
    offset = 1
    while offset < d:
        seg = tmp[: d - offset]
        np.add(work[offset:], work[:-offset], out=seg)
        round_f16_nonneg_inplace(seg)
        work[offset:] = seg
        offset *= 2
    return work


def bitonic_sort(plane: np.ndarray, count_stages: bool = False):
    """Bitonic-sort each column of ``plane`` (axis 0) ascending.

    ``plane`` is (d, n) and is padded to the next power of two with the
    dtype's largest finite value (padding sorts to the bottom and is
    stripped before returning).  Returns the sorted (d, n) array, plus the
    stage count when ``count_stages`` is set.

    The network is the standard iterative formulation: for each ``size``
    (2, 4, ..., p) and each ``stride`` (size/2 ... 1) a full compare-
    exchange pass runs; on the device every pass ends with a group
    synchronisation.
    """
    d, n = plane.shape
    p = _next_pow2(d)
    dtype = plane.dtype
    pad_value = DTYPE_MAX.get(np.dtype(dtype), np.inf)
    if p != d:
        padding = np.full((p - d, n), pad_value, dtype=dtype)
        work = np.concatenate([plane, padding], axis=0)
    else:
        work = plane.copy()

    stages = 0
    for i_lo, i_hi, asc in _bitonic_network(p):
        # For each pair (i, i^stride) with i < partner, keep min at i
        # when the subsequence is ascending, max otherwise.
        a = work[i_lo]
        b = work[i_hi]
        swap = np.where(asc, a > b, a < b)
        a_new = np.where(swap, b, a)
        b_new = np.where(swap, a, b)
        work[i_lo] = a_new
        work[i_hi] = b_new
        stages += 1

    out = work[:d]
    if count_stages:
        return out, stages
    return out


def fanin_inclusive_scan(plane: np.ndarray, dtype: np.dtype, count_stages: bool = False):
    """Hillis–Steele inclusive scan along axis 0 with per-stage rounding.

    ``out[t] = sum(plane[0..t])`` evaluated in ``ceil(log2 d)`` fan-in
    stages; each stage's additions round to ``dtype``.
    """
    d = plane.shape[0]
    work = plane.astype(dtype, copy=True)
    stages = 0
    offset = 1
    with np.errstate(over="ignore", invalid="ignore"):
        while offset < d:
            shifted = work[:-offset]
            work[offset:] = (work[offset:] + shifted).astype(dtype)
            stages += 1
            offset *= 2
    if count_stages:
        return work, stages
    return work


@lru_cache(maxsize=16)
def _scan_tri_f32(d: int) -> np.ndarray:
    """Lower-triangular all-ones (d, d) float32 matrix — Eq. (2)'s
    inclusive scan as a single MMA operand (``d <= 16`` fits one
    fragment row, so the chain has length one)."""
    tri = np.tril(np.ones((d, d), dtype=np.float32))
    tri.setflags(write=False)
    return tri


@dataclass
class SortScanKernel(Kernel):
    """Sort + inclusive-average of one distance plane (d, n_q)."""

    policy: PrecisionPolicy = field(kw_only=True)

    #: Fused tensor-core mode: accept the float32 distance fragment from
    #: ``TcGemmKernel``, sort it with native float min/max, and run
    #: Eq. (2)'s fan-in scan as one lower-triangular MMA with FP32
    #: accumulation (``d <= 16`` is a single fragment row; the chained
    #: form of ``TcGemmKernel`` applies above that).  The inclusive
    #: average divides in float32 — no half rounding happens here at
    #: all; the single narrow store is the update kernel's profile
    #: merge.  Cost accounting is unchanged (the network/stage
    #: conventions stay, conservatively).
    mma_scan: bool = field(default=False, kw_only=True)

    def run(self, plane: np.ndarray, rows: int = 1) -> np.ndarray:
        """Returns D'' — the (d, n_q) plane of inclusive averages, where row
        ``k`` holds the mean of the k+1 best per-dimension distances.

        Both networks are column-independent, so a row-blocked caller may
        pass ``rows`` logical distance rows side by side as one
        ``(d, rows*n_q)`` plane: the same compare-exchange and fan-in
        stages run once over all columns, producing bit-for-bit the
        per-row results.  ``rows`` only affects the cost accounting,
        which stays per *logical* row (``rows`` launches, per-row loop
        rounds and syncs) so blocked and per-row timings are identical.
        """
        dtype = self.policy.compute
        d = plane.shape[0]
        if (
            self.mma_scan
            and plane.dtype == np.float32
            and dtype == np.float16
        ):
            return self._run_mma(plane, rows)
        plane_c = plane.astype(dtype, copy=False)
        if rows > 1:
            # Blocked fast path: value-exact sort, float32-domain scan
            # and LUT division.  The per-row path below stays the
            # faithful stage-by-stage network emulation; both produce
            # the same bits.
            sorted_plane = _sort_columns_exact(plane_c)
            sort_stages = _network_stage_count(_next_pow2(d))
            scan_stages = max(d - 1, 0).bit_length()
            if dtype == np.float16:
                keys = f16_keys19(_fanin_scan_f16_block(sorted_plane))
                keys += (
                    np.arange(d, dtype=np.uint32)[:, None] << np.uint32(19)
                )
                averaged = np.take(_divide_lut19_stack_f16(d), keys)
            else:
                scanned, _ = fanin_inclusive_scan(
                    sorted_plane, dtype, count_stages=True
                )
                divisors = _divisor_column(d, dtype)
                with np.errstate(over="ignore", invalid="ignore"):
                    averaged = (scanned / divisors).astype(dtype)
        else:
            sorted_plane, sort_stages = bitonic_sort(plane_c, count_stages=True)
            scanned, scan_stages = fanin_inclusive_scan(
                sorted_plane, dtype, count_stages=True
            )
            divisors = _divisor_column(d, dtype)
            with np.errstate(over="ignore", invalid="ignore"):
                averaged = (scanned / divisors).astype(dtype)
        self._record_cost(plane, sort_stages + scan_stages, rows)
        return averaged

    def _run_mma(self, plane: np.ndarray, rows: int) -> np.ndarray:
        """Fused tensor-core sort+scan on the FP32 distance fragment.

        ``plane`` is treated as scratch (it is ``TcGemmKernel``'s reused
        panel) and sorted in place; the scanned inclusive averages come
        back in a reused float32 buffer of the same shape.  Saturated
        distance planes are non-negative and NaN-free, so native float
        min/max networks sort them exactly.
        """
        d = plane.shape[0]
        sorted_plane = _sort_f32_inplace(plane)
        out = getattr(self, "_mma_out", None)
        if out is None or out.shape != plane.shape:
            out = np.empty_like(plane)
            self._mma_out = out
        np.matmul(_scan_tri_f32(d), sorted_plane, out=out)
        np.divide(out, _divisor_column(d, np.dtype(np.float32)), out=out)
        sort_stages = _network_stage_count(_next_pow2(d))
        scan_stages = max(d - 1, 0).bit_length()
        self._record_cost(plane, sort_stages + scan_stages, rows)
        return out

    def _record_cost(self, plane: np.ndarray, stages: int, rows: int = 1) -> None:
        """Cost of ``rows`` logical per-row invocations, per the
        conventions in ``repro.gpu.perfmodel``."""
        d, cols = plane.shape
        n_q = cols // rows
        p = _next_pow2(d)
        size = self.policy.storage.itemsize
        elems = float(d * n_q)
        rounds = math.ceil(n_q * p / self.config.total_threads)
        self._account(
            bytes_dram=rows * 2.0 * elems * size,
            bytes_l2=rows * 2.0 * elems * size,
            bytes_l1=float(rows * stages * n_q * p * size),
            flops=float(rows * stages * n_q * p),
            syncs=rows * stages,
            launches=rows,
            loop_rounds=rows * rounds,
        )
