"""Batch-based sort + scan — the design alternative the paper rejected.

Section III-A: "Compared to the more intuitive batch-based
parallelization, where only one thread performs a single sort and scan,
our choice [cooperative bitonic] results in better utilization of the GPU
resources".  Section IV adds that the custom bitonic sort also beat CUB
and ModernGPU segmented sorts.

This module implements that alternative for real so the comparison is an
executable ablation, not a claim: one logical thread per query column
performs an insertion sort over the d dimension values followed by a
sequential inclusive scan.  Numerically the output is identical to the
cooperative kernel (sorting is exact; the sequential scan's rounding
differs from the fan-in order in reduced precision).  The cost accounting
reflects the design's weaknesses: per-thread serial work with uncoalesced
(dimension-strided) accesses and zero cooperative synchronisation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..gpu.kernel import Kernel
from ..precision.modes import PrecisionPolicy

__all__ = ["BatchSortScanKernel", "insertion_sort_columns", "sequential_inclusive_scan"]


def insertion_sort_columns(plane: np.ndarray, count_ops: bool = False):
    """Insertion-sort each column of ``plane`` along axis 0.

    Emulates one device thread per column walking its d values.  The
    element moves are counted (the cost model charges them as serial,
    uncoalesced accesses).  Vectorised across columns per step, so the
    Python cost stays manageable while the *operation count* matches the
    serial algorithm.
    """
    d, n = plane.shape
    work = plane.copy()
    ops = 0
    for i in range(1, d):
        # Standard insertion step, vectorised over columns: repeatedly
        # bubble row i down while it is smaller than its predecessor.
        j = i
        while j > 0:
            swap = work[j] < work[j - 1]
            if not np.any(swap):
                break
            upper = np.where(swap, work[j], work[j - 1])
            lower = np.where(swap, work[j - 1], work[j])
            work[j - 1] = upper
            work[j] = lower
            ops += int(swap.sum())
            j -= 1
        ops += n  # the comparison walk itself
    if count_ops:
        return work, ops
    return work


def sequential_inclusive_scan(plane: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Per-column sequential inclusive scan with per-step rounding.

    This is the summation order a single thread produces — *different*
    rounding from the cooperative fan-in scan in reduced precision.
    """
    work = plane.astype(dtype, copy=True)
    with np.errstate(over="ignore", invalid="ignore"):
        for t in range(1, work.shape[0]):
            work[t] = (work[t] + work[t - 1]).astype(dtype)
    return work


@dataclass
class BatchSortScanKernel(Kernel):
    """Drop-in alternative to :class:`SortScanKernel` (batch strategy)."""

    policy: PrecisionPolicy = field(kw_only=True)

    def run(self, plane: np.ndarray, rows: int = 1) -> np.ndarray:
        """One logical thread per column; column-independent, so a
        row-blocked caller may pass ``rows`` logical rows side by side as
        a ``(d, rows*n_q)`` plane (bit-identical values; the per-column
        move counts are additive, so the traffic accounting agrees with
        ``rows`` separate invocations exactly — only launches and loop
        rounds need the per-logical-row split)."""
        from .sort_scan import _divisor_column

        dtype = self.policy.compute
        d = plane.shape[0]
        sorted_plane, move_ops = insertion_sort_columns(
            plane.astype(dtype, copy=False), count_ops=True
        )
        scanned = sequential_inclusive_scan(sorted_plane, dtype)
        divisors = _divisor_column(d, dtype)
        with np.errstate(over="ignore", invalid="ignore"):
            averaged = (scanned / divisors).astype(dtype)
        self._record_cost(plane, move_ops, rows)
        return averaged

    def _record_cost(self, plane: np.ndarray, move_ops: int, rows: int = 1) -> None:
        """Batch-strategy accounting: every touched element is a serial,
        dimension-strided access.  A warp's 32 threads hit 32 distinct
        cache lines per step (one useful element per 64-byte sector: 8x
        waste in FP64), and the per-thread dependent compare-swap chain
        serialises issue for roughly another 2x — an effective-traffic
        multiplier of 16.  No cooperative syncs exist to hide."""
        d, cols = plane.shape
        n_q = cols // rows
        size = self.policy.storage.itemsize
        touched = float(move_ops * 2 + d * cols)  # moves r/w + scan pass
        sector_waste = 16.0
        self._account(
            bytes_dram=touched * size * sector_waste,
            bytes_l2=touched * size * sector_waste,
            flops=touched,
            launches=rows,
            loop_rounds=rows * math.ceil(n_q / self.config.total_threads),
        )
