"""The ``precalculation`` kernel (Pseudocode 1, line 2).

Prepares, in a single pass over the two input series, everything the main
iteration loop needs (Section II-B / III-A):

* windowed means ``mu`` and inverse centred norms ``inv = 1/||T_i - mu_i||``
  (the paper's ``dr^-1`` / ``dq^-1`` up to the constant ``m`` folded in),
* the streaming-update coefficient vectors ``df`` and ``dg``,
* the first row and first column of the correlation matrix ``QT`` via a
  naive (non-streaming) centred dot product.

Windowed sums are realised with *cumulative summations* exactly as the
paper describes ("this kernel computes the variables df, dg, ... using
cumulative summations").  In FP16 those running sums are where the severe
cancellation originates; the Mixed mode lifts them to FP32, and FP16C
additionally applies Kahan compensation (Section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.kernel import Kernel, grid_stride_chunks
from ..precision.modes import PrecisionPolicy

__all__ = ["PrecalcResult", "PrecalcKernel"]


@dataclass
class PrecalcResult:
    """Device-resident precalculation outputs, all in dimension-wise layout.

    Shapes: ``*_r`` arrays are ``(d, n_r_seg)``, ``*_q`` are ``(d, n_q_seg)``,
    ``qt_row0`` is ``(d, n_q_seg)`` (correlation of reference segment 0 with
    every query segment) and ``qt_col0`` is ``(d, n_r_seg)`` (every reference
    segment with query segment 0).  Storage dtype follows the precision
    policy; the main loop never needs the wider precalc dtype again.
    """

    m: int
    mu_r: np.ndarray
    inv_r: np.ndarray
    df_r: np.ndarray
    dg_r: np.ndarray
    mu_q: np.ndarray
    inv_q: np.ndarray
    df_q: np.ndarray
    dg_q: np.ndarray
    qt_row0: np.ndarray
    qt_col0: np.ndarray

    @property
    def n_r_seg(self) -> int:
        return self.mu_r.shape[1]

    @property
    def n_q_seg(self) -> int:
        return self.mu_q.shape[1]

    @property
    def d(self) -> int:
        return self.mu_r.shape[0]


class _Accumulator:
    """Sequential (optionally Kahan-compensated) accumulator in ``dtype``.

    Models one device thread's register accumulation: every addition
    rounds to the target format; with compensation enabled the classic
    Kahan recurrence runs entirely in that format.
    """

    def __init__(self, shape: tuple[int, ...], dtype: np.dtype, compensated: bool):
        self.dtype = dtype
        self.value = np.zeros(shape, dtype=dtype)
        self.comp = np.zeros(shape, dtype=dtype) if compensated else None

    def add(self, term: np.ndarray) -> None:
        # The astype calls only guard against accidental promotion — when
        # both operands are already in ``dtype`` the op result is too, so
        # ``copy=False`` makes them free instead of a full copy each.
        term = term.astype(self.dtype, copy=False)
        if self.comp is None:
            self.value = (self.value + term).astype(self.dtype, copy=False)
        else:
            y = (term - self.comp).astype(self.dtype, copy=False)
            total = (self.value + y).astype(self.dtype, copy=False)
            self.comp = (
                (total - self.value).astype(self.dtype, copy=False) - y
            ).astype(self.dtype, copy=False)
            self.value = total


def _window_stats(
    series: np.ndarray, m: int, policy: PrecisionPolicy
) -> tuple[np.ndarray, np.ndarray]:
    """Windowed means and inverse centred norms, per-window accumulation.

    ``series`` is (d, len) in the precalc dtype.  Each output element is
    accumulated over its own m samples ("each thread computes ... the
    corresponding cumulative summations for each element", Section III-A)
    with a two-pass centred second moment — so the rounding error is the
    length-m dot-product error of the precalc format, which FP16C further
    compresses with Kahan compensation.
    """
    dtype = policy.precalc
    d, length = series.shape
    n_seg = length - m + 1

    acc = _Accumulator((d, n_seg), dtype, policy.compensated)
    for t in range(m):
        acc.add(series[:, t : t + n_seg])
    with np.errstate(over="ignore", invalid="ignore"):
        mu = (acc.value / dtype.type(m)).astype(dtype)

    acc2 = _Accumulator((d, n_seg), dtype, policy.compensated)
    with np.errstate(over="ignore", invalid="ignore"):
        for t in range(m):
            diff = (series[:, t : t + n_seg] - mu).astype(dtype, copy=False)
            acc2.add((diff * diff).astype(dtype, copy=False))
    cent_sq = acc2.value
    # Flat windows give non-positive centred energy after rounding; clamp to
    # the smallest normal so the reciprocal stays finite (ill-conditioned
    # regions then produce the large errors Section V-B describes).
    tiny = np.finfo(dtype).tiny
    cent_sq = np.maximum(cent_sq, dtype.type(tiny))
    with np.errstate(over="ignore", invalid="ignore"):
        inv = (dtype.type(1.0) / np.sqrt(cent_sq).astype(dtype)).astype(dtype)
    return mu, inv


def _delta_coefficients(
    series: np.ndarray, mu: np.ndarray, m: int, dtype: np.dtype
) -> tuple[np.ndarray, np.ndarray]:
    """The streaming-update coefficients df, dg (SCAMP formulation).

    ``df[i] = (T[i+m-1] - T[i-1]) / 2``
    ``dg[i] = (T[i+m-1] - mu[i]) + (T[i-1] - mu[i-1])``, with index 0 = 0.
    """
    d, length = series.shape
    n_seg = length - m + 1
    df = np.zeros((d, n_seg), dtype=dtype)
    dg = np.zeros((d, n_seg), dtype=dtype)
    if n_seg > 1:
        head = series[:, m : m + n_seg - 1]  # T[i+m-1] for i >= 1
        tail = series[:, 0 : n_seg - 1]  # T[i-1]   for i >= 1
        df[:, 1:] = ((head - tail).astype(dtype) * dtype.type(0.5)).astype(dtype)
        dg[:, 1:] = (
            (head - mu[:, 1:]).astype(dtype) + (tail - mu[:, :-1]).astype(dtype)
        ).astype(dtype)
    return df, dg


def _centered_dot_against(
    fixed_seg: np.ndarray,
    fixed_mu: np.ndarray,
    series: np.ndarray,
    mu: np.ndarray,
    m: int,
    policy: PrecisionPolicy,
) -> np.ndarray:
    """Naive centred dot products of one fixed segment against all segments.

    ``out[k, j] = sum_t (fixed[k, t] - fixed_mu[k]) * (series[k, j+t] - mu[k, j])``

    Accumulated sequentially over ``t`` in the precalc dtype (one rounded
    FMA per step), with optional Kahan compensation — this is the "naive
    (non-streaming) dot product formulation" of Section III-A, one thread
    per output element on the device.
    """
    dtype = policy.precalc
    d, n_seg = mu.shape
    acc = _Accumulator((d, n_seg), dtype, policy.compensated)
    fixed_centered = (fixed_seg - fixed_mu[:, None]).astype(dtype, copy=False)
    with np.errstate(over="ignore", invalid="ignore"):
        for t in range(m):
            term = (
                fixed_centered[:, t : t + 1]
                * (series[:, t : t + n_seg] - mu).astype(dtype, copy=False)
            ).astype(dtype, copy=False)
            acc.add(term)
    return acc.value


@dataclass
class PrecalcKernel(Kernel):
    """Executes the precalculation for one tile and records its cost."""

    policy: PrecisionPolicy = field(kw_only=True)

    def run(self, tr_dev: np.ndarray, tq_dev: np.ndarray, m: int) -> PrecalcResult:
        """``tr_dev``/``tq_dev`` are (d, len) device arrays in storage dtype."""
        if tr_dev.ndim != 2 or tq_dev.ndim != 2:
            raise ValueError("device series must be 2-d (d, n)")
        if tr_dev.shape[0] != tq_dev.shape[0]:
            raise ValueError(
                f"dimensionality mismatch: {tr_dev.shape[0]} vs {tq_dev.shape[0]}"
            )
        if m < 2:
            raise ValueError(f"segment length m must be >= 2, got {m}")
        if m > min(tr_dev.shape[1], tq_dev.shape[1]):
            raise ValueError(
                f"m={m} exceeds series lengths {tr_dev.shape[1]}, {tq_dev.shape[1]}"
            )
        policy = self.policy
        pdtype = policy.precalc
        sdtype = policy.storage

        # Diagonal self-join tiles hand in the *same* device array for
        # both roles (the backend shares the upload).  Every q-side
        # quantity is then the same function of the same input as its
        # r-side twin — including qt_col0, whose arguments become exactly
        # qt_row0's — so computing them once is bit-identical.
        same = tq_dev is tr_dev

        tr = tr_dev.astype(pdtype, copy=False)
        tq = tr if same else tq_dev.astype(pdtype, copy=False)

        mu_r, inv_r = _window_stats(tr, m, policy)
        mu_q, inv_q = (mu_r, inv_r) if same else _window_stats(tq, m, policy)
        df_r, dg_r = _delta_coefficients(tr, mu_r, m, pdtype)
        df_q, dg_q = (
            (df_r, dg_r) if same else _delta_coefficients(tq, mu_q, m, pdtype)
        )

        qt_row0 = _centered_dot_against(tr[:, :m], mu_r[:, 0], tq, mu_q, m, policy)
        qt_col0 = (
            qt_row0
            if same
            else _centered_dot_against(tq[:, :m], mu_q[:, 0], tr, mu_r, m, policy)
        )

        result = PrecalcResult(
            m=m,
            mu_r=mu_r.astype(sdtype),
            inv_r=inv_r.astype(sdtype),
            df_r=df_r.astype(sdtype),
            dg_r=dg_r.astype(sdtype),
            mu_q=mu_q.astype(sdtype),
            inv_q=inv_q.astype(sdtype),
            df_q=df_q.astype(sdtype),
            dg_q=dg_q.astype(sdtype),
            qt_row0=qt_row0.astype(sdtype),
            qt_col0=qt_col0.astype(sdtype),
        )
        self._record_cost(result, tr_dev, tq_dev, m)
        return result

    def _record_cost(
        self,
        result: PrecalcResult,
        tr_dev: np.ndarray,
        tq_dev: np.ndarray,
        m: int,
    ) -> None:
        """Cost per the conventions in ``repro.gpu.perfmodel``."""
        d = result.d
        n_r, n_q = result.n_r_seg, result.n_q_seg
        psize = self.policy.precalc.itemsize
        pre_elems = float((n_r + n_q) * d)
        flops = 2.0 * m * pre_elems + 8.0 * pre_elems
        if self.policy.compensated:
            flops *= 4.0
        rounds = len(list(grid_stride_chunks(int(pre_elems), self.config)))
        self._account(
            bytes_dram=(
                float((tr_dev.shape[1] + tq_dev.shape[1]) * d * psize)
                + 8.0 * pre_elems * psize
                + pre_elems * psize
            ),
            bytes_l2=2.0 * m * pre_elems * psize,
            flops=flops,
            launches=1,
            loop_rounds=rounds,
        )


def naive_qt_row(
    tr_dev: np.ndarray,
    tq_dev: np.ndarray,
    m: int,
    row: int,
    policy: PrecisionPolicy,
) -> np.ndarray:
    """Reference helper: centred QT of reference segment ``row`` against all
    query segments, computed naively in the precalc precision.

    Used by tests to validate the streaming recurrence against direct
    evaluation at arbitrary rows.
    """
    pdtype = policy.precalc
    tr = tr_dev.astype(pdtype, copy=False)
    tq = tq_dev.astype(pdtype, copy=False)
    mu_r, _ = _window_stats(tr, m, policy)
    mu_q, _ = _window_stats(tq, m, policy)
    return _centered_dot_against(
        tr[:, row : row + m], mu_r[:, row], tq, mu_q, m, policy
    )
