"""The ``precalculation`` kernel (Pseudocode 1, line 2).

Prepares, in a single pass over the two input series, everything the main
iteration loop needs (Section II-B / III-A):

* windowed means ``mu`` and inverse centred norms ``inv = 1/||T_i - mu_i||``
  (the paper's ``dr^-1`` / ``dq^-1`` up to the constant ``m`` folded in),
* the streaming-update coefficient vectors ``df`` and ``dg``,
* the first row and first column of the correlation matrix ``QT`` via a
  naive (non-streaming) centred dot product.

Windowed sums are realised with *cumulative summations* exactly as the
paper describes ("this kernel computes the variables df, dg, ... using
cumulative summations").  In FP16 those running sums are where the severe
cancellation originates; the Mixed mode lifts them to FP32, and FP16C
additionally applies Kahan compensation (Section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.kernel import Kernel, KernelCost, LaunchConfig, grid_stride_chunks
from ..precision.modes import PrecisionPolicy

__all__ = [
    "PrecalcResult",
    "PrecalcKernel",
    "PreparedPrecalc",
    "seed_qt_rows",
    "fft_seed_qt_rows",
    "seed_cost",
    "plane_cost",
    "naive_qt_row",
]


@dataclass
class PrecalcResult:
    """Device-resident precalculation outputs, all in dimension-wise layout.

    Shapes: ``*_r`` arrays are ``(d, n_r_seg)``, ``*_q`` are ``(d, n_q_seg)``,
    ``qt_row0`` is ``(d, n_q_seg)`` (correlation of reference segment 0 with
    every query segment) and ``qt_col0`` is ``(d, n_r_seg)`` (every reference
    segment with query segment 0).  Storage dtype follows the precision
    policy; the main loop never needs the wider precalc dtype again.
    """

    m: int
    mu_r: np.ndarray
    inv_r: np.ndarray
    df_r: np.ndarray
    dg_r: np.ndarray
    mu_q: np.ndarray
    inv_q: np.ndarray
    df_q: np.ndarray
    dg_q: np.ndarray
    qt_row0: np.ndarray
    qt_col0: np.ndarray

    @property
    def n_r_seg(self) -> int:
        return self.mu_r.shape[1]

    @property
    def n_q_seg(self) -> int:
        return self.mu_q.shape[1]

    @property
    def d(self) -> int:
        return self.mu_r.shape[0]


class _Accumulator:
    """Sequential (optionally Kahan-compensated) accumulator in ``dtype``.

    Models one device thread's register accumulation: every addition
    rounds to the target format; with compensation enabled the classic
    Kahan recurrence runs entirely in that format.
    """

    def __init__(self, shape: tuple[int, ...], dtype: np.dtype, compensated: bool):
        self.dtype = dtype
        self.value = np.zeros(shape, dtype=dtype)
        if compensated:
            self.comp = np.zeros(shape, dtype=dtype)
            # Persistent Kahan scratch: the y/total intermediates live for
            # the whole accumulation instead of being reallocated per add.
            self._y = np.empty(shape, dtype=dtype)
            self._total = np.empty(shape, dtype=dtype)
        else:
            self.comp = None

    def add(self, term: np.ndarray) -> None:
        # Guard against accidental promotion only when it would actually
        # occur — every in-repo caller already hands in ``dtype`` terms,
        # so the common path skips the astype entirely.
        if term.dtype != self.dtype:
            term = term.astype(self.dtype)
        if self.comp is None:
            np.add(self.value, term, out=self.value)
        else:
            y, total = self._y, self._total
            np.subtract(term, self.comp, out=y)
            np.add(self.value, y, out=total)
            np.subtract(total, self.value, out=self.comp)
            np.subtract(self.comp, y, out=self.comp)
            # Swap buffers: the old value array becomes next round's
            # ``total`` scratch.
            self.value, self._total = total, self.value


def _window_stats(
    series: np.ndarray, m: int, policy: PrecisionPolicy
) -> tuple[np.ndarray, np.ndarray]:
    """Windowed means and inverse centred norms, per-window accumulation.

    ``series`` is (d, len) in the precalc dtype.  Each output element is
    accumulated over its own m samples ("each thread computes ... the
    corresponding cumulative summations for each element", Section III-A)
    with a two-pass centred second moment — so the rounding error is the
    length-m dot-product error of the precalc format, which FP16C further
    compresses with Kahan compensation.
    """
    dtype = policy.precalc
    d, length = series.shape
    n_seg = length - m + 1

    acc = _Accumulator((d, n_seg), dtype, policy.compensated)
    for t in range(m):
        acc.add(series[:, t : t + n_seg])
    with np.errstate(over="ignore", invalid="ignore"):
        mu = (acc.value / dtype.type(m)).astype(dtype)

    acc2 = _Accumulator((d, n_seg), dtype, policy.compensated)
    # Reused per-iteration scratch: same subtract/multiply ufuncs as the
    # temporaries they replace, so the rounding is bit-identical.
    diff = np.empty((d, n_seg), dtype=dtype)
    sq = np.empty((d, n_seg), dtype=dtype)
    with np.errstate(over="ignore", invalid="ignore"):
        for t in range(m):
            np.subtract(series[:, t : t + n_seg], mu, out=diff)
            np.multiply(diff, diff, out=sq)
            acc2.add(sq)
    cent_sq = acc2.value
    # Flat windows give non-positive centred energy after rounding; clamp to
    # the smallest normal so the reciprocal stays finite (ill-conditioned
    # regions then produce the large errors Section V-B describes).
    tiny = np.finfo(dtype).tiny
    cent_sq = np.maximum(cent_sq, dtype.type(tiny))
    with np.errstate(over="ignore", invalid="ignore"):
        inv = (dtype.type(1.0) / np.sqrt(cent_sq).astype(dtype)).astype(dtype)
    return mu, inv


def _delta_coefficients(
    series: np.ndarray, mu: np.ndarray, m: int, dtype: np.dtype
) -> tuple[np.ndarray, np.ndarray]:
    """The streaming-update coefficients df, dg (SCAMP formulation).

    ``df[i] = (T[i+m-1] - T[i-1]) / 2``
    ``dg[i] = (T[i+m-1] - mu[i]) + (T[i-1] - mu[i-1])``, with index 0 = 0.
    """
    d, length = series.shape
    n_seg = length - m + 1
    df = np.zeros((d, n_seg), dtype=dtype)
    dg = np.zeros((d, n_seg), dtype=dtype)
    if n_seg > 1:
        head = series[:, m : m + n_seg - 1]  # T[i+m-1] for i >= 1
        tail = series[:, 0 : n_seg - 1]  # T[i-1]   for i >= 1
        df[:, 1:] = ((head - tail).astype(dtype) * dtype.type(0.5)).astype(dtype)
        dg[:, 1:] = (
            (head - mu[:, 1:]).astype(dtype) + (tail - mu[:, :-1]).astype(dtype)
        ).astype(dtype)
    return df, dg


def _centered_dot_against(
    fixed_seg: np.ndarray,
    fixed_mu: np.ndarray,
    series: np.ndarray,
    mu: np.ndarray,
    m: int,
    policy: PrecisionPolicy,
) -> np.ndarray:
    """Naive centred dot products of one fixed segment against all segments.

    ``out[k, j] = sum_t (fixed[k, t] - fixed_mu[k]) * (series[k, j+t] - mu[k, j])``

    Accumulated sequentially over ``t`` in the precalc dtype (one rounded
    FMA per step), with optional Kahan compensation — this is the "naive
    (non-streaming) dot product formulation" of Section III-A, one thread
    per output element on the device.
    """
    dtype = policy.precalc
    d, n_seg = mu.shape
    acc = _Accumulator((d, n_seg), dtype, policy.compensated)
    fixed_centered = (fixed_seg - fixed_mu[:, None]).astype(dtype, copy=False)
    # Hoisted column views + reused scratch buffers: the per-iteration
    # subtract/multiply are the same ufuncs on the same values as the
    # temporaries they replace — bit-identical, just allocation-free.
    cols = [fixed_centered[:, t : t + 1] for t in range(m)]
    diff = np.empty((d, n_seg), dtype=dtype)
    term = np.empty((d, n_seg), dtype=dtype)
    with np.errstate(over="ignore", invalid="ignore"):
        for t in range(m):
            np.subtract(series[:, t : t + n_seg], mu, out=diff)
            np.multiply(cols[t], diff, out=term)
            acc.add(term)
    return acc.value


def seed_qt_rows(
    series_fixed: np.ndarray,
    starts: "list[int] | tuple[int, ...]",
    series_other: np.ndarray,
    mu_fixed: np.ndarray,
    mu_other: np.ndarray,
    m: int,
    policy: PrecisionPolicy,
) -> np.ndarray:
    """Batched seed QT: the centred dot of *several* fixed segments of one
    series against all segments of the other, in one vectorised pass.

    ``out[b, k, j] = sum_t (fixed[b, k, t] - fixed_mu[b, k]) *
    (other[k, j+t] - mu_other[k, j])`` where ``fixed[b] =
    series_fixed[:, starts[b]:starts[b]+m]``.  Each band ``b`` undergoes the
    exact elementwise subtract/multiply/(Kahan-)add sequence of
    :func:`_centered_dot_against`, so every slice ``out[b]`` is bit-identical
    to the per-tile seed — the batching only amortises the Python-level
    length-``m`` loop across all tiles sharing a reference band.
    """
    dtype = policy.precalc
    d, n_seg = mu_other.shape
    n_bands = len(starts)
    if n_bands == 0:
        return np.empty((0, d, n_seg), dtype=dtype)
    fixed = np.stack([series_fixed[:, s : s + m] for s in starts])
    fmu = np.stack([mu_fixed[:, s] for s in starts])
    fixed_centered = (fixed - fmu[:, :, None]).astype(dtype, copy=False)
    acc = _Accumulator((n_bands, d, n_seg), dtype, policy.compensated)
    diff = np.empty((d, n_seg), dtype=dtype)
    term = np.empty((n_bands, d, n_seg), dtype=dtype)
    with np.errstate(over="ignore", invalid="ignore"):
        for t in range(m):
            np.subtract(series_other[:, t : t + n_seg], mu_other, out=diff)
            np.multiply(fixed_centered[:, :, t : t + 1], diff[None], out=term)
            acc.add(term)
    return acc.value


def fft_seed_qt_rows(
    series_fixed: np.ndarray,
    starts: "list[int] | tuple[int, ...]",
    series_other: np.ndarray,
    mu_fixed: np.ndarray,
    mu_other: np.ndarray,
    m: int,
    policy: PrecisionPolicy,
) -> np.ndarray:
    """MASS-style sliding-dot-product seeds via FFT correlation.

    Computes the same quantity as :func:`seed_qt_rows` but through a
    double-precision FFT convolution (O(n log n) instead of O(n·m)), then
    casts to the precalc dtype.  NOT bit-identical to the sequential
    accumulation — the error stays within the ``precision/errors.py``
    dot-product bound for FP64/FP32 (validated in tests), which is why the
    ``"fft"`` strategy is opt-in and restricted to those modes.
    """
    dtype = policy.precalc
    d, n_seg = mu_other.shape
    n_bands = len(starts)
    if n_bands == 0:
        return np.empty((0, d, n_seg), dtype=dtype)
    x = series_other.astype(np.float64, copy=False)
    length = x.shape[1]
    fc = np.stack(
        [
            series_fixed[:, s : s + m].astype(np.float64)
            - mu_fixed[:, s].astype(np.float64)[:, None]
            for s in starts
        ]
    )  # (B, d, m) centred fixed segments
    nfft = 1
    while nfft < length + m - 1:
        nfft *= 2
    spec_x = np.fft.rfft(x, nfft)  # (d, nfft//2+1)
    spec_k = np.fft.rfft(fc[:, :, ::-1], nfft)  # (B, d, nfft//2+1)
    # conv(x, reversed(fc))[j+m-1] == sum_t x[j+t] * fc[t]
    corr = np.fft.irfft(spec_x[None] * spec_k, nfft)[:, :, m - 1 : m - 1 + n_seg]
    out = corr - mu_other.astype(np.float64)[None] * fc.sum(axis=2)[:, :, None]
    return out.astype(dtype)


def seed_cost(
    n_r_seg: int,
    n_q_seg: int,
    d: int,
    m: int,
    len_r: int,
    len_q: int,
    policy: PrecisionPolicy,
    launch: LaunchConfig,
) -> KernelCost:
    """Cost of one tile's seed-dot work: the per-tile part of precalc.

    Covers reading both device series, the two length-m centred dot
    products (2m flops per output element, L2-resident operands) and
    writing the seed rows.  One launch; grid-stride rounds over the
    tile's precalc elements.
    """
    psize = policy.precalc.itemsize
    pre = float((n_r_seg + n_q_seg) * d)
    flops = 2.0 * m * pre
    if policy.compensated:
        flops *= 4.0
    rounds = len(list(grid_stride_chunks(int(pre), launch)))
    return KernelCost(
        name="PrecalcKernel",
        bytes_dram=float((len_r + len_q) * d) * psize + pre * psize,
        bytes_l2=2.0 * m * pre * psize,
        flops=flops,
        launches=1,
        loop_rounds=rounds,
    )


def plane_cost(n_r_seg: int, n_q_seg: int, d: int, policy: PrecisionPolicy) -> KernelCost:
    """Cost of the window-statistics planes (mu/inv/df/dg) for a segment
    range: the amortisable part of precalc (8 flops + 8 bytes written per
    precalc element, folded into the seed launch so no extra launch or
    loop rounds).

    ``seed_cost + plane_cost`` over a tile's own segments reproduces the
    historical per-tile precalculation cost exactly, field by field.
    """
    psize = policy.precalc.itemsize
    pre = float((n_r_seg + n_q_seg) * d)
    flops = 8.0 * pre
    if policy.compensated:
        flops *= 4.0
    return KernelCost(
        name="PrecalcKernel",
        bytes_dram=8.0 * pre * psize,
        flops=flops,
        launches=0,
        loop_rounds=0,
    )


@dataclass
class PreparedPrecalc:
    """A tile's precalculation assembled by the plan-level plane cache.

    ``result`` is bit-identical to what :meth:`PrecalcKernel.run` would
    produce for the tile; ``cost`` is what the tile should be charged
    (its seed-dot work, plus the one-off plane pass if this tile is the
    designated charge carrier); ``saved_flops`` is the plane work this
    tile did *not* redo.  For the charge carrier the full-series plane
    charge is subtracted from its tile-local figure, which can make its
    contribution negative — the sum over a whole plan is always >= 0
    (and exactly 0 for a single-tile plan).
    """

    result: PrecalcResult
    cost: KernelCost
    saved_flops: float = 0.0


@dataclass
class PrecalcKernel(Kernel):
    """Executes the precalculation for one tile and records its cost."""

    policy: PrecisionPolicy = field(kw_only=True)

    def run(self, tr_dev: np.ndarray, tq_dev: np.ndarray, m: int) -> PrecalcResult:
        """``tr_dev``/``tq_dev`` are (d, len) device arrays in storage dtype."""
        if tr_dev.ndim != 2 or tq_dev.ndim != 2:
            raise ValueError("device series must be 2-d (d, n)")
        if tr_dev.shape[0] != tq_dev.shape[0]:
            raise ValueError(
                f"dimensionality mismatch: {tr_dev.shape[0]} vs {tq_dev.shape[0]}"
            )
        if m < 2:
            raise ValueError(f"segment length m must be >= 2, got {m}")
        if m > min(tr_dev.shape[1], tq_dev.shape[1]):
            raise ValueError(
                f"m={m} exceeds series lengths {tr_dev.shape[1]}, {tq_dev.shape[1]}"
            )
        policy = self.policy
        pdtype = policy.precalc
        sdtype = policy.storage

        # Diagonal self-join tiles hand in the *same* device array for
        # both roles (the backend shares the upload).  Every q-side
        # quantity is then the same function of the same input as its
        # r-side twin — including qt_col0, whose arguments become exactly
        # qt_row0's — so computing them once is bit-identical.
        same = tq_dev is tr_dev

        tr = tr_dev.astype(pdtype, copy=False)
        tq = tr if same else tq_dev.astype(pdtype, copy=False)

        mu_r, inv_r = _window_stats(tr, m, policy)
        mu_q, inv_q = (mu_r, inv_r) if same else _window_stats(tq, m, policy)
        df_r, dg_r = _delta_coefficients(tr, mu_r, m, pdtype)
        df_q, dg_q = (
            (df_r, dg_r) if same else _delta_coefficients(tq, mu_q, m, pdtype)
        )

        qt_row0 = _centered_dot_against(tr[:, :m], mu_r[:, 0], tq, mu_q, m, policy)
        qt_col0 = (
            qt_row0
            if same
            else _centered_dot_against(tq[:, :m], mu_q[:, 0], tr, mu_r, m, policy)
        )

        result = PrecalcResult(
            m=m,
            mu_r=mu_r.astype(sdtype),
            inv_r=inv_r.astype(sdtype),
            df_r=df_r.astype(sdtype),
            dg_r=dg_r.astype(sdtype),
            mu_q=mu_q.astype(sdtype),
            inv_q=inv_q.astype(sdtype),
            df_q=df_q.astype(sdtype),
            dg_q=dg_q.astype(sdtype),
            qt_row0=qt_row0.astype(sdtype),
            qt_col0=qt_col0.astype(sdtype),
        )
        self._record_cost(result, tr_dev, tq_dev, m)
        return result

    def _record_cost(
        self,
        result: PrecalcResult,
        tr_dev: np.ndarray,
        tq_dev: np.ndarray,
        m: int,
    ) -> None:
        """Cost per the conventions in ``repro.gpu.perfmodel``.

        Decomposed into the per-tile seed-dot work plus the window-plane
        pass so the amortisation layer can charge each part separately;
        the sum is the historical per-tile formula, field by field.
        """
        total = seed_cost(
            result.n_r_seg,
            result.n_q_seg,
            result.d,
            m,
            tr_dev.shape[1],
            tq_dev.shape[1],
            self.policy,
            self.config,
        ) + plane_cost(result.n_r_seg, result.n_q_seg, result.d, self.policy)
        self._account(
            bytes_dram=total.bytes_dram,
            bytes_l2=total.bytes_l2,
            flops=total.flops,
            launches=total.launches,
            loop_rounds=total.loop_rounds,
        )


def naive_qt_row(
    tr_dev: np.ndarray,
    tq_dev: np.ndarray,
    m: int,
    row: int,
    policy: PrecisionPolicy,
) -> np.ndarray:
    """Reference helper: centred QT of reference segment ``row`` against all
    query segments, computed naively in the precalc precision.

    Used by tests to validate the streaming recurrence against direct
    evaluation at arbitrary rows.
    """
    pdtype = policy.precalc
    # Share the self-join stats exactly as PrecalcKernel.run does — the
    # second _window_stats pass was pure recomputation when both roles
    # alias the same device array.
    same = tq_dev is tr_dev
    tr = tr_dev.astype(pdtype, copy=False)
    tq = tr if same else tq_dev.astype(pdtype, copy=False)
    mu_r, _ = _window_stats(tr, m, policy)
    mu_q = mu_r if same else _window_stats(tq, m, policy)[0]
    return _centered_dot_against(
        tr[:, row : row + m], mu_r[:, row], tq, mu_q, m, policy
    )
