"""Vectorised half-precision rounding for the row-blocked fast path.

numpy's ``float16`` ufuncs are scalar C loops: every element is widened
to ``float32``, computed there, and rounded back to half.  That makes
each half-precision operation ~7x slower than the same ``float32``
vector op.  The row-blocked kernels therefore evaluate half arithmetic
the way the hardware pipeline (and numpy itself) defines it — a
``float32`` vector op followed by one round-to-nearest-even conversion
to half — but keep the values *in* ``float32`` storage and perform the
conversion with integer bit manipulation instead of the scalar loop:

* a ``float32`` value is half-valued iff its mantissa bits below bit 13
  are zero (half has 10 explicit mantissa bits against single's 23), so
  rounding to half precision in the normal half range is
  ``(bits + 0xFFF + lsb) & ~0x1FFF`` — textbook RNE with the carry into
  the exponent handling the mantissa wrap for free;
* magnitudes that carry to >= 2^16 overflow to infinity, exactly like
  ``astype(float16)``;
* subnormal-half magnitudes and zeros round via an exact add/subtract
  against 0.75 that lands them on the 2^-24 subnormal grid with RNE
  (the same vectorised quantiser as ``TcGemmKernel``); only
  overflow-adjacent magnitudes and NaNs take the ``astype`` round trip.

Both entry points are verified against ``astype(np.float16)`` — the
checks in ``tests/test_row_blocking.py`` sample the full bit range and
every boundary (subnormal limits, 65504/65520, infinities, NaNs).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "round_f16_inplace",
    "round_f16_nonneg_inplace",
    "f16_lut19",
    "f16_keys19",
]

_MAG_MASK = np.uint32(0x7FFFFFFF)
_SIGN_MASK = np.uint32(0x80000000)
_MIN_NORM16 = np.uint32(0x38800000)  # 2^-14, smallest normal half, as f32 bits
_INF_F32 = np.uint32(0x7F800000)
_CARRY_INF = np.uint32(0x47800000)  # 65536.0f: rounded magnitudes here and up -> inf
_NEAR_INF = np.uint32(0x477F0000)  # conservative "might round to inf" threshold
#: 65520.0f — the smallest magnitude whose RNE half rounding overflows to
#: inf; from here up (and for NaNs) the gathered ``astype`` fallback runs.
_OVERFLOW_LIM = np.uint32(0x477FF000)
#: Adding then subtracting 0.75 forces RNE onto the half-subnormal 2^-24
#: grid: for |x| < 2^-14 the sum lands in [0.75 - 2^-14, 0.75 + 2^-14],
#: where the float32 mantissa ulp is exactly 2^-24, and the subtraction
#: is exact by Sterbenz.
_GRID_C = np.float32(0.75)


def _rne_trick_inplace(u: np.ndarray) -> None:
    """Round the f32 bit patterns in ``u`` (uint32 view) to half-valued
    patterns, round-to-nearest-even.  Domain: zeros, infinities and
    magnitudes in the normal half range (carry to inf handled by the
    callers); subnormal-half magnitudes and NaNs must not be present."""
    odd = (u >> np.uint32(13)) & np.uint32(1)
    odd += np.uint32(0x0FFF)
    u += odd
    u &= np.uint32(0xFFFFE000)


def _carry_fix_inplace(u: np.ndarray, mag_hint: int) -> None:
    """Replace rounded magnitudes >= 2^16 with signed infinity (the
    overflow behaviour of the half conversion).  Skipped entirely when
    ``mag_hint`` shows no element can be near the boundary."""
    if mag_hint < int(_NEAR_INF):
        return
    mag = u & _MAG_MASK
    np.copyto(u, (u & _SIGN_MASK) | _INF_F32, where=mag >= _CARRY_INF)


def round_f16_nonneg_inplace(buf: np.ndarray) -> None:
    """In-place ``buf = buf.astype(float16).astype(float32)`` for
    non-negative, NaN-free float32 data whose values are either zero,
    exactly representable in half (e.g. sums of two subnormal-range
    halves, which land on the half grid and pass through the trick
    unchanged), or in the normal/overflow half range.

    This is the scan-stage case: sums of sorted, saturated distances.
    """
    u = buf.view(np.uint32)
    mag_hint = int(u.max()) if u.size else 0
    _rne_trick_inplace(u)
    _carry_fix_inplace(u, mag_hint)


def round_f16_inplace(buf: np.ndarray) -> None:
    """In-place ``buf = buf.astype(float16).astype(float32)`` for any
    float32 data.

    The bit trick covers the normal half range; half-subnormal
    magnitudes and zeros (any correlation within ~6e-5 of zero lands
    here, so a large block almost always contains a few) round via an
    exact add/subtract against ``_GRID_C`` that forces RNE onto the
    2^-24 subnormal grid — fully vectorised, where the old
    boolean-gather patch degraded as soon as a single update term fell
    below 2^-14.  The trick returns ``+0.0`` for magnitudes that round
    to zero, so the original sign bit is OR-ed back (IEEE rounding never
    flips a sign), keeping ``-0.0`` and negative underflow bit-exact.
    Only overflow-adjacent magnitudes (>= 65520, which RNE sends to inf)
    and NaNs still take the gathered scalar ``astype`` round trip, rare
    in saturated distance data.
    """
    u = buf.view(np.uint32)
    mag = u & _MAG_MASK
    top = int(mag.max()) if mag.size else 0
    ext_mask = ext_vals = None
    if top >= int(_OVERFLOW_LIM):
        ext_mask = mag >= _OVERFLOW_LIM
        with np.errstate(over="ignore", invalid="ignore"):
            ext_vals = buf[ext_mask].astype(np.float16).astype(np.float32)
    small = mag < _MIN_NORM16
    has_small = bool(small.any())
    if has_small:
        sign_small = np.where(small, u & _SIGN_MASK, np.uint32(0))
        # errstate: a signaling NaN elsewhere in the buffer would raise
        # "invalid" here; NaN entries are patched by the ext gather.
        with np.errstate(invalid="ignore"):
            grid = buf + _GRID_C
            grid -= _GRID_C
    _rne_trick_inplace(u)
    if has_small:
        np.copyto(buf, grid, where=small)
        u |= sign_small
    if ext_mask is not None:
        buf[ext_mask] = ext_vals


def f16_keys19(buf: np.ndarray) -> np.ndarray:
    """The 19-bit table key (sign + exponent + 10 mantissa bits) of each
    half-valued float32 element — distinct half values give distinct
    keys, so a 2^19 table gathers any per-value map in one pass."""
    return buf.view(np.uint32) >> np.uint32(13)


def f16_lut19(lut16: np.ndarray) -> np.ndarray:
    """Re-key a 65536-entry half-indexed table to the 19-bit float32 key
    space of :func:`f16_keys19` (entries at unreachable keys stay 0)."""
    vals = np.arange(65536, dtype=np.uint16).view(np.float16)
    keys = vals.astype(np.float32).view(np.uint32) >> np.uint32(13)
    table = np.zeros(1 << 19, dtype=lut16.dtype)
    table[keys] = lut16
    table.setflags(write=False)
    return table
