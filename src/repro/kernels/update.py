"""The ``update_mat_prof`` kernel (Pseudocode 1, line 6).

Merges the inclusive-average plane of iteration ``i`` into the running
matrix profile with a column-wise min/argmin (Eq. 3)::

    P[j,k] = min(P[j,k], D''[i,j,k]);   I[j,k] = i  where it improved

Each thread owns one ``(j, k)`` element — "embarrassingly parallel" in the
paper's words.  Strict ``<`` keeps the *first* minimising row on ties,
matching the sequential iteration order of the CPU reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..gpu.kernel import Kernel
from ..precision.modes import DTYPE_MAX, PrecisionPolicy

__all__ = ["UpdateKernel", "INDEX_DTYPE"]

#: Matrix-profile index dtype; int64 comfortably covers any segment count.
INDEX_DTYPE = np.dtype(np.int64)


@dataclass
class UpdateKernel(Kernel):
    """Running min/argmin merge for one tile."""

    policy: PrecisionPolicy = field(kw_only=True)

    # Mirrored outputs (symmetric self-join tiles); (re)set by allocate().
    mirror_profile = None
    mirror_indices = None

    def allocate(
        self, d: int, n_q_seg: int, mirror_rows: int | None = None
    ) -> None:
        """Initialise the running profile to +max and indices to -1.

        ``mirror_rows`` (the tile's reference-row count) additionally
        allocates the mirrored outputs of a symmetric self-join tile: a
        second profile/index pair indexed by tile-local *row*, filled by
        the row-wise reduce of the same distance planes (D(i, j) =
        D(j, i), so row i's minimum over columns is the profile
        contribution of global column ``row_offset + i``).
        """
        dtype = self.policy.storage
        limit = dtype.type(DTYPE_MAX[np.dtype(dtype)])
        self.profile = np.full((d, n_q_seg), limit, dtype=dtype)
        self.indices = np.full((d, n_q_seg), -1, dtype=INDEX_DTYPE)
        self.mirror_profile = self.mirror_indices = None
        if mirror_rows is not None:
            self.mirror_profile = np.full((d, mirror_rows), limit, dtype=dtype)
            self.mirror_indices = np.full(
                (d, mirror_rows), -1, dtype=INDEX_DTYPE
            )

    @staticmethod
    def _radix_argmin(block: np.ndarray, axis: int) -> np.ndarray:
        """First-occurrence argmin, vectorised for the half/single planes.

        The planes here are saturated inclusive averages — non-negative
        and NaN-free — so their unsigned bit patterns order exactly like
        their values and an integer argmin (first minimum, same
        tie-break) returns identical indices without the scalar
        convert-to-float comparison loops of half precision.
        """
        if block.dtype == np.float16:
            return np.argmin(block.view(np.uint16), axis=axis)
        if block.dtype == np.float32:
            return np.argmin(block.view(np.uint32), axis=axis)
        return np.argmin(block, axis=axis)

    def _merge_mirror_rows(
        self,
        block: np.ndarray,
        row0: int,
        col_offset: int,
        wide_block: bool = False,
    ) -> None:
        """Row-wise reduce of a masked ``(d, rows, n_q)`` block into the
        mirrored outputs for tile-local rows ``row0 .. row0+rows-1``.

        The column axis is reduced with the same radix-key argmin
        (first-occurrence keeps the earliest global column = earliest
        mirrored reference index) and merged strict-``<`` against the
        limit-initialised mirror profile, so fully-excluded rows keep
        index -1.  Wide (FP32 accumulator) blocks reduce *before*
        narrowing, mirroring the column path's reduce-then-store.
        """
        rows = block.shape[1]
        best_col = self._radix_argmin(block, axis=2)  # (d, rows)
        best_val = np.take_along_axis(
            block, best_col[:, :, None], axis=2
        )[:, :, 0]
        if wide_block:
            with np.errstate(over="ignore", invalid="ignore"):
                best_val = best_val.astype(self.policy.storage)
        target = self.mirror_profile[:, row0 : row0 + rows]
        improved = best_val < target
        np.copyto(target, best_val, where=improved)
        np.copyto(
            self.mirror_indices[:, row0 : row0 + rows],
            best_col.astype(INDEX_DTYPE) + INDEX_DTYPE.type(col_offset),
            where=improved,
        )

    def run(
        self,
        plane: np.ndarray,
        row: int,
        row_offset: int = 0,
        col_offset: int = 0,
    ) -> None:
        """Merge plane ``D''`` of (tile-local) reference row ``row``.

        ``row_offset`` maps the tile-local row to the global reference
        index recorded in ``I`` (multi-tile runs pass the tile's origin);
        ``col_offset`` is the tile's global column origin, used only by
        the mirrored row-wise reduce of symmetric self-join tiles.
        """
        if plane.shape != self.profile.shape:
            raise ValueError(
                f"plane shape {plane.shape} != profile shape {self.profile.shape}"
            )
        plane = plane.astype(self.policy.storage, copy=False)
        improved = plane < self.profile
        np.copyto(self.profile, plane, where=improved)
        np.copyto(self.indices, INDEX_DTYPE.type(row + row_offset), where=improved)
        if self.mirror_profile is not None:
            self._merge_mirror_rows(plane[:, None, :], row, col_offset)
        self._record_cost(plane)

    def masked_run(
        self,
        plane: np.ndarray,
        row: int,
        mask: np.ndarray,
        row_offset: int = 0,
        col_offset: int = 0,
    ) -> None:
        """Merge with an exclusion mask (True = excluded column).

        Self-joins exclude trivial matches around the diagonal; the mask is
        applied per row before the min-merge.
        """
        plane = plane.astype(self.policy.storage, copy=False)
        improved = (plane < self.profile) & ~mask
        np.copyto(self.profile, plane, where=improved)
        np.copyto(self.indices, INDEX_DTYPE.type(row + row_offset), where=improved)
        if self.mirror_profile is not None:
            storage = self.policy.storage
            limit = storage.type(DTYPE_MAX[np.dtype(storage)])
            lifted = np.where(np.broadcast_to(mask, plane.shape), limit, plane)
            self._merge_mirror_rows(lifted[:, None, :], row, col_offset)
        self._record_cost(plane)

    def run_block(
        self,
        block: np.ndarray,
        row0: int,
        row_offset: int = 0,
        mask: np.ndarray | None = None,
        col_offset: int = 0,
    ) -> None:
        """Merge a ``(d, rows, n_q)`` block of D'' planes for tile-local
        reference rows ``row0 .. row0+rows-1`` in one step.

        Equivalent to ``rows`` consecutive :meth:`run`/:meth:`masked_run`
        calls, bit for bit: the block is first reduced over its row axis
        with ``argmin`` (first occurrence wins, preserving the sequential
        first-minimising-row tie-break), then the single winner per
        column is merged into the running profile with the same strict
        ``<``.  ``mask`` is the (rows, n_q) exclusion mask (True =
        excluded); masked entries are lifted to the dtype limit, which
        can never win a strict-``<`` merge against a profile that starts
        at that limit.  Cost is recorded per logical row.
        """
        d, rows, n_q = block.shape
        if (d, n_q) != self.profile.shape:
            raise ValueError(
                f"block shape {block.shape} != profile shape {self.profile.shape}"
            )
        storage = self.policy.storage
        wide_block = block.dtype.itemsize > storage.itemsize
        if wide_block:
            # Fused tensor-core path: the block is the FP32 accumulator
            # fragment from the mma sort/scan (and that kernel's scratch,
            # so masking in place is fine).  Reduce over the row axis
            # *before* narrowing — on hardware the min-merge runs in
            # registers and only the winning entry is stored — so the
            # single FP16 rounding per column happens at the store below.
            # Ties are decided on the wide values; columns whose wide
            # values differ only below storage precision may therefore
            # pick a different (equally minimal after rounding) row than
            # the storage-domain networks.
            if mask is not None:
                limit = block.dtype.type(DTYPE_MAX[np.dtype(storage)])
                np.copyto(block, limit, where=mask[None, :, :])
        else:
            block = block.astype(storage, copy=False)
            if mask is not None:
                limit = storage.type(DTYPE_MAX[np.dtype(storage)])
                block = np.where(mask[None, :, :], limit, block)
        # First-occurrence argmin over the row axis (radix keys for the
        # half/single planes — see :meth:`_radix_argmin`).
        best_row = self._radix_argmin(block, axis=1)  # (d, n_q), first min row
        best_val = np.take_along_axis(block, best_row[:, None, :], axis=1)[:, 0, :]
        if wide_block:
            with np.errstate(over="ignore", invalid="ignore"):
                best_val = best_val.astype(storage)
        improved = best_val < self.profile
        np.copyto(self.profile, best_val, where=improved)
        np.copyto(
            self.indices,
            best_row.astype(INDEX_DTYPE) + INDEX_DTYPE.type(row0 + row_offset),
            where=improved,
        )
        if self.mirror_profile is not None:
            self._merge_mirror_rows(
                block, row0, col_offset, wide_block=wide_block
            )
        self._record_cost(block[:, 0, :], rows=rows)

    def _record_cost(self, plane: np.ndarray, rows: int = 1) -> None:
        """Cost of ``rows`` logical per-row invocations, per the
        conventions in ``repro.gpu.perfmodel``."""
        elems = float(plane.size)
        size = self.policy.storage.itemsize
        rounds = math.ceil(plane.size / self.config.total_threads)
        mirror = self.mirror_profile is not None
        self._account(
            # The mirrored row-wise reduce re-reads the plane from L2 and
            # adds one compare per element; it stores only one winner per
            # row, so DRAM traffic barely moves.
            bytes_dram=rows * 2.0 * elems * size,
            bytes_l2=rows * (6.0 if mirror else 5.0) * elems * size,
            flops=rows * (3.0 if mirror else 2.0) * elems,
            launches=rows,
            loop_rounds=rows * rounds * (2 if mirror else 1),
        )
