"""`repro.streams`: the online matrix-profile ingestion tier.

The batch engine answers "what is the matrix profile of this series";
this package answers "keep it current as the series grows".  Three
layers, bottom up:

* :mod:`~repro.streams.incremental` — the exact tier.
  :class:`IncrementalMatrixProfile` extends a self-join or AB-join
  profile when new samples arrive by covering the new L-shaped band with
  ordinary engine tiles, appending to cached window-statistics planes
  (:class:`StreamPlaneCache`) instead of recomputing them.  Bit-identical
  to a batch recompute over :meth:`~IncrementalMatrixProfile.
  equivalent_tiles` in all five precision modes.
* :mod:`~repro.streams.sketch` — the approximate gate.
  :class:`SketchMonitor` keeps Johnson–Lindenstrauss sketches of every
  window online and scores each append's approximate discord distance;
  only alarms admit exact tile work.
* :mod:`~repro.streams.tenant` / :mod:`~repro.streams.ingest` — the
  serving tier.  :class:`StreamIngestService` multiplexes per-tenant
  :class:`TenantPolicy` streams (windowing, retention, backpressure,
  deadlines) over a :class:`~repro.service.MatrixProfileService`'s GPU
  pool, reusing its admission shedding, health escalation, fault
  injection and metrics.

``repro stream`` runs a synthetic multi-tenant demo from the CLI.
"""

from .incremental import AppendResult, IncrementalMatrixProfile, StreamPlaneCache
from .ingest import IngestReport, StreamIngestService
from .sketch import SketchMonitor, SketchScore
from .tenant import StreamCounters, TenantPolicy, TenantStream

__all__ = [
    "AppendResult",
    "IncrementalMatrixProfile",
    "IngestReport",
    "SketchMonitor",
    "SketchScore",
    "StreamCounters",
    "StreamIngestService",
    "StreamPlaneCache",
    "TenantPolicy",
    "TenantStream",
]
