"""Incremental matrix profile: extend a join when new rows arrive.

The tiling argument that makes the engine's tiles independent (each tile
restarts the diagonal recurrence from its own naive ``qt_row0``/
``qt_col0`` seeds, Section IV) also makes the matrix profile *extensible*:
when ``k`` new samples arrive, the segment grid grows by ``k`` rows/
columns and the only uncovered region is an L-shaped band.  Covering the
band with ordinary engine tiles and min/argmin-merging them into the
running accumulator yields the profile a full recompute over the same
tile list would produce — bit for bit, in all five precision modes:

* the window-statistics planes ``mu``/``inv``/``df``/``dg`` are strictly
  window-local, so the new windows' entries are computed from the suffix
  of the series with the exact per-window ``_Accumulator`` (Kahan for
  FP16C) semantics of :mod:`repro.kernels.precalc` and appended to the
  cached planes (:class:`StreamPlaneCache`, the streaming sibling of the
  PR-5 :class:`~repro.engine.precalc_cache.PrecalcPlaneCache`);
* the per-tile seeds are naive centred dots evaluated per output column,
  so computing them over the band's column slice is bit-identical to the
  full-pass-then-slice values;
* the strict-``<`` merge keeps the earliest reference row on ties, and
  the band decomposition below merges every query column's tiles in
  strictly increasing row order — the same order a batch dispatch of the
  equivalent tile list uses.

For a **self-join** the step from ``old`` to ``new`` covered segments
emits two tiles, merged B-then-A so per-column row order stays
increasing::

    B: rows [0, old)    x cols [old, new)   (history vs new columns)
    A: rows [old, new)  x cols [0, new)     (new rows vs everything)

For an **AB join** (fixed reference, streaming query) one tile suffices:
all reference rows x the new query columns.

Because tiling *changes* the numerics in reduced precision (each tile
restarts the recurrence), "bit-identical" is pinned against a full
recompute over the stream's :meth:`~IncrementalMatrixProfile.
equivalent_tiles` — the deterministic tile list the append schedule
induces.  ``tests/test_streams_incremental.py`` pins this across modes,
join types and append schedules.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..core.config import RunConfig, default_exclusion_zone
from ..core.tiling import Tile, assign_tiles
from ..engine.accumulate import ProfileAccumulator
from ..engine.backends import NumericBackend
from ..engine.dispatch import DispatchReport, execute_plan
from ..engine.plan import JobSpec
from ..gpu.simulator import GPUSimulator
from ..gpu.stream import Timeline
from ..kernels.layout import to_device_layout, validate_stream_samples
from ..kernels.precalc import (
    PrecalcResult,
    PreparedPrecalc,
    _delta_coefficients,
    _window_stats,
    plane_cost,
    seed_cost,
    seed_qt_rows,
)
from ..precision.modes import PrecisionMode

__all__ = ["StreamPlaneCache", "IncrementalMatrixProfile", "AppendResult"]


class _StreamRole:
    """One series role's growing planes in one precision mode."""

    __slots__ = ("series_pd", "mu_pd", "mu", "inv", "df", "dg", "n_seg")

    def __init__(self, d: int, pdtype, sdtype):
        self.series_pd = np.empty((d, 0), dtype=pdtype)
        self.mu_pd = np.empty((d, 0), dtype=pdtype)
        self.mu = np.empty((d, 0), dtype=sdtype)
        self.inv = np.empty((d, 0), dtype=sdtype)
        self.df = np.empty((d, 0), dtype=sdtype)
        self.dg = np.empty((d, 0), dtype=sdtype)
        self.n_seg = 0


class _StreamModePlanes:
    """Per-mode pair of role entries plus the pending plane charge."""

    __slots__ = ("r", "q", "pending_charge")

    def __init__(self, r: _StreamRole, q: _StreamRole):
        self.r = r
        self.q = q  # aliases ``r`` for self-joins
        self.pending_charge = None  # KernelCost of un-claimed plane work


class StreamPlaneCache:
    """Incrementally extending window-statistics planes for a stream.

    Duck-types the :class:`~repro.engine.precalc_cache.PrecalcPlaneCache`
    ``prepare(plan, tile)`` contract the
    :class:`~repro.engine.backends.NumericBackend` consumes, but instead
    of building full-series planes once, it *appends* to them as the
    plan's layouts grow between calls: new windows' ``mu``/``inv`` come
    from a suffix :func:`~repro.kernels.precalc._window_stats` pass and
    ``df``/``dg`` from a one-window-overlap suffix
    :func:`~repro.kernels.precalc._delta_coefficients` pass — both
    bit-identical to the full-pass values because every output element is
    a function of its own ``m`` samples only.

    Seeds are *not* cached: each stream tile's band/column-slice pair is
    used exactly once, so :meth:`prepare` evaluates
    :func:`~repro.kernels.precalc.seed_qt_rows` over the tile's slices
    directly (bit-identical to slicing a full-width pass, the
    accumulation being per-output-column).

    Planes are keyed per precision mode and derived from the *plan's*
    layouts, so health escalation and admission shedding (which dispatch
    the same tiles through :meth:`ExecutionPlan.escalated`) lazily grow a
    consistent per-mode copy — escalated layouts are deterministic casts
    of the base layouts, so suffix extension of an escalated mode's
    planes matches a from-scratch build.

    Cost accounting mirrors the batch cache: tiles are charged their
    seed-dot work; plane work accrues per extension and is claimed by the
    next prepared tile of that mode, so aggregates stay honest without a
    plan-global carrier.
    """

    def __init__(self):
        self._modes: dict[PrecisionMode, _StreamModePlanes] = {}
        self._lock = threading.RLock()

    @property
    def modes_built(self) -> tuple:
        with self._lock:
            return tuple(self._modes)

    # ------------------------------------------------------------------

    @staticmethod
    def _extend_role(role: _StreamRole, layout, m: int, policy) -> int:
        """Append planes for ``layout``'s new windows; returns new segs."""
        pdtype = policy.precalc
        sdtype = policy.storage
        n_seg = max(0, layout.shape[1] - m + 1)
        old = role.n_seg
        if n_seg <= old:
            return 0
        series_pd = layout.astype(pdtype, copy=False)
        # The already-cached prefix is a cast of the same layout prefix —
        # only the suffix is new (layouts grow by appending samples).
        role.series_pd = np.concatenate(
            [role.series_pd, series_pd[:, role.series_pd.shape[1]:]], axis=1
        )
        mu_new, inv_new = _window_stats(series_pd[:, old:], m, policy)
        role.mu_pd = np.concatenate([role.mu_pd, mu_new], axis=1)
        role.mu = np.concatenate([role.mu, mu_new.astype(sdtype)], axis=1)
        role.inv = np.concatenate([role.inv, inv_new.astype(sdtype)], axis=1)
        if old == 0:
            df_new, dg_new = _delta_coefficients(
                series_pd, role.mu_pd, m, pdtype
            )
        else:
            # One window of overlap supplies T[i-1] and mu[i-1] for the
            # first new window; its own (recomputed) column 0 is dropped.
            df_loc, dg_loc = _delta_coefficients(
                series_pd[:, old - 1:], role.mu_pd[:, old - 1:], m, pdtype
            )
            df_new, dg_new = df_loc[:, 1:], dg_loc[:, 1:]
        role.df = np.concatenate([role.df, df_new.astype(sdtype)], axis=1)
        role.dg = np.concatenate([role.dg, dg_new.astype(sdtype)], axis=1)
        role.n_seg = n_seg
        return n_seg - old

    def _sync(self, plan) -> _StreamModePlanes:
        spec = plan.spec
        policy = spec.policy
        mode = PrecisionMode.parse(spec.config.mode)
        self_join = plan.tq_layout is plan.tr_layout
        entry = self._modes.get(mode)
        if entry is None:
            r = _StreamRole(spec.d, policy.precalc, policy.storage)
            q = r if self_join else _StreamRole(
                spec.d, policy.precalc, policy.storage
            )
            entry = _StreamModePlanes(r, q)
            self._modes[mode] = entry
        new_r = self._extend_role(entry.r, plan.tr_layout, spec.m, policy)
        new_q = (
            new_r
            if entry.q is entry.r
            else self._extend_role(entry.q, plan.tq_layout, spec.m, policy)
        )
        if new_r or new_q:
            # Self-joins charge both roles, matching the batch cache's
            # historical per-tile accounting convention.
            charge = plane_cost(
                new_r, new_r if entry.q is entry.r else new_q, spec.d, policy
            )
            entry.pending_charge = (
                charge
                if entry.pending_charge is None
                else entry.pending_charge + charge
            )
        return entry

    def _seed(self, fixed: _StreamRole, start: int, other: _StreamRole,
              c0: int, c1: int, m: int, policy):
        """Naive centred seed dot of one fixed segment vs a column slice."""
        return seed_qt_rows(
            fixed.series_pd,
            [start],
            other.series_pd[:, c0 : c1 + m - 1],
            fixed.mu_pd,
            other.mu_pd[:, c0:c1],
            m,
            policy,
        )[0].astype(policy.storage)

    def prepare(self, plan, tile) -> PreparedPrecalc:
        """Assemble ``tile``'s precalculation from the growing planes."""
        spec = plan.spec
        policy = spec.policy
        m = spec.m
        with self._lock:
            planes = self._sync(plan)
            r0, r1 = tile.row_start, tile.row_stop
            c0, c1 = tile.col_start, tile.col_stop
            df_r = planes.r.df[:, r0:r1].copy()
            dg_r = planes.r.dg[:, r0:r1].copy()
            df_r[:, 0] = 0
            dg_r[:, 0] = 0
            df_q = planes.q.df[:, c0:c1].copy()
            dg_q = planes.q.dg[:, c0:c1].copy()
            df_q[:, 0] = 0
            dg_q[:, 0] = 0
            result = PrecalcResult(
                m=m,
                mu_r=planes.r.mu[:, r0:r1],
                inv_r=planes.r.inv[:, r0:r1],
                df_r=df_r,
                dg_r=dg_r,
                mu_q=planes.q.mu[:, c0:c1],
                inv_q=planes.q.inv[:, c0:c1],
                df_q=df_q,
                dg_q=dg_q,
                qt_row0=self._seed(planes.r, r0, planes.q, c0, c1, m, policy),
                qt_col0=self._seed(planes.q, c0, planes.r, r0, r1, m, policy),
            )
            cost = seed_cost(
                tile.n_rows,
                tile.n_cols,
                spec.d,
                m,
                tile.n_rows + m - 1,
                tile.n_cols + m - 1,
                policy,
                spec.config.launch,
            )
            saved = plane_cost(tile.n_rows, tile.n_cols, spec.d, policy).flops
            if planes.pending_charge is not None:
                cost = cost + planes.pending_charge
                saved -= planes.pending_charge.flops
                planes.pending_charge = None
            return PreparedPrecalc(result=result, cost=cost, saved_flops=saved)


@dataclass
class AppendResult:
    """Outcome of one stream step (append, cover or probe)."""

    new_segments: int
    tiles: tuple[Tile, ...]
    mode: PrecisionMode
    n_q_seg: int
    report: DispatchReport | None = None

    @property
    def tiles_executed(self) -> int:
        return 0 if self.report is None else self.report.tiles_completed


class IncrementalMatrixProfile:
    """An online matrix profile grown one append at a time.

    Two join shapes:

    * ``reference=None`` — **self-join stream**: the appended samples form
      the one series; every append extends both the row and the column
      axis of the segment grid (exclusion zone applies as usual).
    * ``reference=<series>`` — **AB join**: the reference is fixed, the
      appended samples extend the query axis only.

    :meth:`append` validates + ingests samples and immediately covers the
    new band with exact engine tiles (the incremental tier).  Gated
    tenants instead use :meth:`ingest` (extend only) plus :meth:`probe`
    (exact columns on sketch alarms) — see :mod:`repro.streams.sketch`.

    The engine hooks (``health``, ``failure_injector``, ``corruptor``,
    ``oom_split``, ``max_retries``, shared ``lock``/``placement``) are the
    same knobs the service's :class:`~repro.service.scheduler.
    TileScheduler` threads into :func:`~repro.engine.dispatch.
    execute_plan`, so a stream dispatched by the ingest service shares the
    pool's retry/escalation/split machinery.
    """

    def __init__(
        self,
        m: int,
        config: RunConfig | None = None,
        *,
        reference: np.ndarray | None = None,
        initial: np.ndarray | None = None,
        sim: GPUSimulator | None = None,
        max_retries: int = 0,
        failure_injector=None,
        health=None,
        corruptor=None,
        oom_split: bool = False,
        placement=None,
        lock=None,
        clock=time.monotonic,
    ):
        if m < 2:
            raise ValueError(f"segment length m must be >= 2, got {m}")
        self.m = m
        self.config = config or RunConfig()
        self.policy = self.config.policy
        self.self_join = reference is None
        self.sim = sim if sim is not None else GPUSimulator(
            self.config.device, self.config.n_gpus, self.config.n_streams
        )
        self.max_retries = max_retries
        self.failure_injector = failure_injector
        self.health = health
        self.corruptor = corruptor
        self.oom_split = oom_split
        self.clock = clock
        self._placement = placement
        self._lock = lock
        self._backend = NumericBackend(lock=lock, label="stream")
        self.timeline = Timeline()

        if self.self_join:
            self._ref_layout = None
            zone = self.config.exclusion_zone
            self.exclusion_zone = (
                zone if zone is not None else default_exclusion_zone(m)
            )
        else:
            self._ref_layout = to_device_layout(reference, self.policy.storage)
            if self._ref_layout.shape[1] < m:
                raise ValueError(
                    f"m={m} too long for reference of "
                    f"{self._ref_layout.shape[1]} samples"
                )
            self.exclusion_zone = self.config.exclusion_zone

        self.d = None if self._ref_layout is None else self._ref_layout.shape[0]
        self._stream: np.ndarray | None = (
            None
            if self.d is None
            else np.empty((self.d, 0), dtype=self.policy.storage)
        )
        self.samples_ingested = 0
        self._covered = 0  # stream segments covered by exact L-step tiles
        self._next_tile_id = 0
        self._tiles: list[Tile] = []
        self._acc: ProfileAccumulator | None = None
        self._planes = StreamPlaneCache() if self.config.amortize_precalc else None
        self.tile_retries = 0
        self.tiles_split = 0
        self.health_failures = 0
        self.escalations: dict[int, PrecisionMode] = {}
        if initial is not None:
            self.append(initial)

    # ------------------------------------------------------------------
    # Geometry

    @property
    def n_samples(self) -> int:
        return 0 if self._stream is None else self._stream.shape[1]

    @property
    def n_q_seg(self) -> int:
        """Completed stream (query) segments."""
        return max(0, self.n_samples - self.m + 1)

    @property
    def n_r_seg(self) -> int:
        """Reference segments the stream joins against."""
        if self.self_join:
            return self.n_q_seg
        return self._ref_layout.shape[1] - self.m + 1

    @property
    def covered_segments(self) -> int:
        return self._covered

    def equivalent_tiles(self) -> tuple[Tile, ...]:
        """The executed tile list, in merge order.

        A batch dispatch of exactly these tiles over the final series
        (``JobSpec.plan(tiles=...)``) reproduces the stream's profile bit
        for bit — the definition of incremental correctness under tiled
        reduced-precision numerics.  (OOM splits replace a planned tile
        with its children at dispatch time; the list records the planned
        geometry.)
        """
        return tuple(self._tiles)

    def window(self, seg: int) -> np.ndarray:
        """The ``(d, m)`` float64 samples of stream segment ``seg``."""
        if seg < 0 or seg >= self.n_q_seg:
            raise IndexError(f"segment {seg} out of range 0..{self.n_q_seg - 1}")
        return self._stream[:, seg : seg + self.m].astype(np.float64)

    # ------------------------------------------------------------------
    # Ingest / cover / probe

    def ingest(self, samples: np.ndarray) -> tuple[int, int]:
        """Validate + append samples without computing anything.

        Returns ``(old_n_q_seg, new_n_q_seg)``.  Non-finite samples are
        rejected with their dimension and global stream offset named —
        the entry-point contract of :func:`repro.kernels.layout.
        validate_series`, adapted to an unbounded stream.
        """
        arr = validate_stream_samples(
            samples, name="stream samples", offset=self.samples_ingested
        )
        if self.d is None:
            self.d = arr.shape[1]
            self._stream = np.empty((self.d, 0), dtype=self.policy.storage)
        elif arr.shape[1] != self.d:
            raise ValueError(
                f"stream has d={self.d} but samples have d={arr.shape[1]}"
            )
        old = self.n_q_seg
        # Chunked casts append-equal the one-shot ``to_device_layout``
        # cast of the full host series: the cast is elementwise.
        self._stream = np.concatenate(
            [
                self._stream,
                np.ascontiguousarray(arr.T, dtype=self.policy.storage),
            ],
            axis=1,
        )
        self.samples_ingested += arr.shape[0]
        return old, self.n_q_seg

    def append(self, samples: np.ndarray, mode=None) -> AppendResult:
        """Ingest samples and cover the new band with exact tiles.

        ``mode`` optionally dispatches this step's tiles at a different
        precision (admission shedding); the merged accumulator stays in
        the stream's base storage dtype.  Bit-identity to a batch
        recompute holds for un-shed streams (same mode every step).
        """
        self.ingest(samples)
        return self.cover(mode=mode)

    def cover(self, mode=None) -> AppendResult:
        """Cover all uncovered stream segments with the L-step tiles."""
        n_seg = self.n_q_seg
        old = self._covered
        eff = PrecisionMode.parse(mode if mode is not None else self.config.mode)
        if n_seg <= old:
            return AppendResult(0, (), eff, n_seg)
        tiles = []
        if self.self_join:
            if old > 0:
                tiles.append(Tile(self._next_tile_id, 0, old, old, n_seg))
                self._next_tile_id += 1
            tiles.append(Tile(self._next_tile_id, old, n_seg, 0, n_seg))
            self._next_tile_id += 1
        else:
            tiles.append(Tile(self._next_tile_id, 0, self.n_r_seg, old, n_seg))
            self._next_tile_id += 1
        report = self._dispatch(tiles, eff)
        self._covered = n_seg
        return AppendResult(n_seg - old, tuple(tiles), eff, n_seg, report)

    def probe(self, col_start: int, col_stop: int, mode=None) -> AppendResult:
        """Exact distances for columns ``[col_start, col_stop)`` against
        all current reference rows (the sketch-alarm escalation path).

        Unlike :meth:`cover` this leaves the coverage frontier untouched:
        a gated stream's profile is exact only at probed columns, columns
        never probed keep the accumulator's upper-bound initial state.
        """
        if not 0 <= col_start < col_stop <= self.n_q_seg:
            raise ValueError(
                f"probe range [{col_start}, {col_stop}) outside "
                f"0..{self.n_q_seg}"
            )
        eff = PrecisionMode.parse(mode if mode is not None else self.config.mode)
        tile = Tile(self._next_tile_id, 0, self.n_r_seg, col_start, col_stop)
        self._next_tile_id += 1
        report = self._dispatch([tile], eff)
        return AppendResult(0, (tile,), eff, self.n_q_seg, report)

    # ------------------------------------------------------------------

    def _dispatch(self, tiles: list[Tile], mode: PrecisionMode) -> DispatchReport:
        tr = self._stream if self.self_join else self._ref_layout
        spec = JobSpec.from_layouts(
            tr, self._stream, self.m, self.config,
            exclusion_zone=self.exclusion_zone,
        )
        plan = spec.plan(
            tiles=tiles, assignment=assign_tiles(tiles, self.sim.n_gpus)
        )
        plan.precalc_cache = self._planes
        if mode != PrecisionMode.parse(self.config.mode):
            plan = plan.escalated(mode)
        if self._acc is None:
            self._acc = ProfileAccumulator(self.d, self.n_q_seg, self.policy)
        else:
            self._acc.extend_columns(self.n_q_seg)
        report = execute_plan(
            plan,
            self._backend,
            self.sim,
            accumulator=self._acc,
            placement=self._placement,
            timeline=self.timeline,
            max_retries=self.max_retries,
            clock=self.clock,
            failure_injector=self.failure_injector,
            label="stream",
            flush_per_tile=True,
            lock=self._lock,
            health=self.health,
            corruptor=self.corruptor,
            oom_split=self.oom_split,
        )
        self._tiles.extend(tiles)
        self.tile_retries += report.tile_retries
        self.tiles_split += len(report.splits)
        self.health_failures += report.health_failures
        self.escalations.update(report.escalations)
        return report

    # ------------------------------------------------------------------
    # Results

    @property
    def accumulator(self) -> ProfileAccumulator | None:
        return self._acc

    def profile(self) -> tuple[np.ndarray, np.ndarray]:
        """Host ``(n_q_seg, d)`` float64 profile + int64 index."""
        if self._acc is None:
            d = self.d or 0
            return (
                np.empty((0, d)),
                np.empty((0, d), dtype=np.int64),
            )
        return self._acc.host_profile(), self._acc.host_index()

    # ------------------------------------------------------------------
    # Checkpoint / resume

    def save(self, path) -> None:
        """Checkpoint the stream to ``path`` (npz).

        Saves the stream layout, accumulator state and tile bookkeeping;
        :meth:`load` resumes bit-identically (modelled cost aggregates
        and the timeline restart empty — they are observability, not
        state).
        """
        if self._acc is None:
            raise ValueError("nothing to checkpoint: no segments covered yet")
        meta = {
            "m": self.m,
            "mode": PrecisionMode.parse(self.config.mode).value,
            "self_join": self.self_join,
            "exclusion_zone": self.exclusion_zone,
            "covered": self._covered,
            "next_tile_id": self._next_tile_id,
            "samples_ingested": self.samples_ingested,
        }
        tiles = np.array(
            [
                [t.tile_id, t.row_start, t.row_stop, t.col_start, t.col_stop]
                for t in self._tiles
            ],
            dtype=np.int64,
        ).reshape(-1, 5)
        np.savez_compressed(
            path,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            stream=self._stream,
            reference=(
                np.empty((0, 0)) if self._ref_layout is None else self._ref_layout
            ),
            tiles=tiles,
            profile=self._acc.profile,
            index=self._acc.index,
            merge_elements=np.int64(self._acc.merge_elements),
            h2d_saved_bytes=np.float64(self._acc.h2d_saved_bytes),
            precalc_saved_flops=np.float64(self._acc.precalc_saved_flops),
        )

    @classmethod
    def load(cls, path, config: RunConfig | None = None, **kwargs) -> "IncrementalMatrixProfile":
        """Restore a checkpointed stream; engine hooks via ``kwargs``.

        ``config`` defaults to ``RunConfig(mode=<saved mode>)``; a config
        whose storage dtype disagrees with the checkpoint is rejected
        (resume is bit-identical, not a cast).
        """
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"]).decode())
            stream = data["stream"]
            reference = data["reference"]
            tiles = data["tiles"]
            profile = data["profile"]
            index = data["index"]
            merge_elements = int(data["merge_elements"])
            h2d_saved = float(data["h2d_saved_bytes"])
            saved_flops = float(data["precalc_saved_flops"])
        config = config or RunConfig(mode=meta["mode"])
        if config.policy.storage != stream.dtype:
            raise ValueError(
                f"checkpoint storage dtype {stream.dtype} does not match "
                f"config mode {config.mode} (storage "
                f"{np.dtype(config.policy.storage)})"
            )
        obj = cls(
            meta["m"],
            config.with_(exclusion_zone=meta["exclusion_zone"])
            if meta["self_join"]
            else config,
            reference=None if meta["self_join"] else reference.T,
            **kwargs,
        )
        obj.d = stream.shape[0]
        obj._stream = stream
        obj.exclusion_zone = meta["exclusion_zone"]
        obj.samples_ingested = meta["samples_ingested"]
        obj._covered = meta["covered"]
        obj._next_tile_id = meta["next_tile_id"]
        obj._tiles = [Tile(*(int(v) for v in row)) for row in tiles]
        obj._acc = ProfileAccumulator(obj.d, profile.shape[1], obj.policy)
        obj._acc.restore_state(
            profile, index, merge_elements, h2d_saved,
            precalc_saved_flops=saved_flops,
        )
        return obj
