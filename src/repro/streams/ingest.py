"""The streaming ingestion service: tenants multiplexed over the pool.

:class:`StreamIngestService` is the always-on counterpart of the one-shot
:class:`~repro.service.MatrixProfileService`: tenants register a
:class:`~repro.streams.tenant.TenantPolicy`, then push sample batches
through :meth:`ingest`.  Each call walks the full serving pipeline the
batch service already has — reused, not reimplemented:

1. **validation** — non-finite samples rejected with dimension + global
   stream offset (:func:`~repro.kernels.layout.validate_stream_samples`);
2. **backpressure** — batches beyond ``policy.max_batch`` are truncated
   and the overflow counted as dropped (fresh data beats a deep queue
   for monitoring);
3. **admission** — tenants with a per-append ``deadline`` pass through
   the service's :class:`~repro.service.AdmissionController`, which may
   shed this step's tiles down the FP64→FP32→Mixed→FP16 ladder under
   backlog; observed step runtimes feed the same
   :class:`~repro.service.LoadEstimator` the batch jobs train;
4. **gate or cover** — ungated tenants cover the new band exactly
   (bit-identical incremental tier); gated tenants sketch-score each new
   window and probe exact tiles only for alarmed column runs, counting
   suppressed columns as saved work;
5. **retention** — sliding tenants re-base in amortised chunks;
6. **observability** — every step lands in per-tenant
   :class:`~repro.streams.tenant.StreamCounters` *and* the shared
   :class:`~repro.service.ServiceMetrics` stream counters that
   ``repro stream`` / :func:`repro.reporting.render_service_metrics`
   display.

The engine tiles dispatch over the *service's* simulated GPU pool
(shared scheduler lock, placement cursor, health policy, fault
injectors, OOM splitting), so stream tiles and batch job tiles coexist
on the same devices with the same recovery machinery.  Checkpoint and
restore delegate to the stream's npz journal (:meth:`checkpoint` /
:meth:`restore`) for kill-and-resume without recomputation.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

import numpy as np

from ..precision.modes import PrecisionMode
from ..service.service import MatrixProfileService
from .incremental import IncrementalMatrixProfile
from .sketch import SketchMonitor, SketchScore
from .tenant import StreamCounters, TenantPolicy, TenantStream

__all__ = ["StreamIngestService", "IngestReport"]


@dataclass
class IngestReport:
    """Outcome of one ingest call for one tenant."""

    tenant_id: str
    accepted: int  # samples accepted this call
    dropped: int  # samples dropped by backpressure
    new_segments: int  # windows completed this call
    mode: PrecisionMode  # effective dispatch mode (after shedding)
    shed_steps: int = 0  # admission downgrade steps applied
    tiles: int = 0  # engine tiles dispatched
    exact_columns: int = 0  # profile columns computed exactly
    suppressed_columns: int = 0  # columns the sketch gate suppressed
    alarms: tuple[SketchScore, ...] = ()  # alarmed window scores
    rebased: bool = False  # sliding re-base happened this call
    elapsed: float = 0.0


@dataclass
class _Tenant:
    session: TenantStream
    reference: np.ndarray | None = None  # kept for sliding re-bases
    scores: list = field(default_factory=list)


class StreamIngestService:
    """Multiplexes always-on tenant streams over a matrix-profile service.

    Parameters
    ----------
    service:
        An existing :class:`~repro.service.MatrixProfileService` whose
        GPU pool, admission controller and metrics the streams share;
        one is constructed from ``service_kwargs`` when omitted.
    """

    def __init__(self, service: MatrixProfileService | None = None, **service_kwargs):
        self.service = service or MatrixProfileService(**service_kwargs)
        self.metrics = self.service.metrics
        self._tenants: dict[str, _Tenant] = {}
        # Stream micro-jobs share the admission backlog with batch jobs;
        # negative ids keep the two id spaces disjoint.
        self._job_ids = itertools.count(1)
        self._clock = self.service.scheduler.clock

    # ------------------------------------------------------------------
    # Registration

    def register(
        self,
        tenant_id: str,
        policy: TenantPolicy,
        reference: np.ndarray | None = None,
        initial: np.ndarray | None = None,
    ) -> TenantStream:
        """Register a tenant stream; ``reference`` fixes an AB join."""
        if tenant_id in self._tenants:
            raise ValueError(f"tenant {tenant_id!r} is already registered")
        stream = self._build_stream(policy, reference)
        session = TenantStream(
            tenant_id=tenant_id,
            policy=policy,
            stream=stream,
            monitor=(
                self._build_monitor(policy, d=stream.d or 1)
                if policy.sketch_gate
                else None
            ),
        )
        self._tenants[tenant_id] = _Tenant(
            session=session,
            reference=None if reference is None else np.asarray(reference),
        )
        if initial is not None:
            self.ingest(tenant_id, initial)
        return session

    def _build_stream(self, policy: TenantPolicy, reference) -> IncrementalMatrixProfile:
        scheduler = self.service.scheduler
        return IncrementalMatrixProfile(
            policy.m,
            policy.run_config(),
            reference=reference,
            sim=self.service.sim,
            max_retries=scheduler.max_retries,
            failure_injector=scheduler.failure_injector,
            health=scheduler.health,
            corruptor=scheduler.corruptor,
            oom_split=scheduler.oom_split,
            placement=scheduler._placement,
            lock=scheduler._lock,
            clock=scheduler.clock,
        )

    def _build_monitor(self, policy: TenantPolicy, d: int) -> SketchMonitor:
        return SketchMonitor(
            policy.m,
            d=d,
            k=policy.sketch_k,
            threshold=policy.sketch_threshold,
            zscore=policy.sketch_zscore,
            warmup=policy.sketch_warmup,
            shrink=policy.sketch_shrink,
            exclusion=policy.exclusion_zone,
            seed=policy.sketch_seed,
            rolling=policy.sketch_rolling,
        )

    def _tune_band(self, entry: "_Tenant", rows: int, cols: int,
                   effective: PrecisionMode) -> PrecisionMode:
        """Autotune one append's band micro-job (rows x cols segments).

        Sets the stream's ``row_block`` for the band geometry (bit-exact
        always) and, when the policy carries a ``target_error``, returns
        the faster of the admission mode and the tuner's bound-respecting
        pick.  Decisions are memoised in the tuner, so constant-batch
        appends pay the planner once.
        """
        session = entry.session
        policy = session.policy
        tuner = self.service.tuner
        if tuner is None or rows < 1 or cols < 1:
            return effective
        stream = session.stream
        decision = tuner.tune(
            rows, cols, max(stream.d or 1, 1), policy.m,
            mode=policy.mode, self_join=False,
            target_error=policy.target_error,
            exclusion_zone=policy.exclusion_zone,
        )
        chosen = decision.chosen
        if chosen.row_block != stream.config.row_block:
            stream.config = stream.config.with_(row_block=chosen.row_block)
        self.metrics.record_autotune(
            chosen.row_block, chosen.predicted_seconds
        )
        if policy.target_error is not None:
            # Two independent reasons to leave the requested mode: load
            # shedding (admission) and the error budget (tuner).  Take
            # whichever sits further down the ladder — both contracts
            # allow it, and further down is faster.
            from ..service.admission import _LADDER_POSITION

            if _LADDER_POSITION.get(chosen.mode, 0) > _LADDER_POSITION.get(
                effective, 0
            ):
                effective = chosen.mode
        return effective

    def tenant(self, tenant_id: str) -> TenantStream:
        try:
            return self._tenants[tenant_id].session
        except KeyError:
            raise KeyError(f"unknown tenant {tenant_id!r}") from None

    def tenants(self) -> tuple[str, ...]:
        return tuple(self._tenants)

    # ------------------------------------------------------------------
    # Ingest

    def ingest(self, tenant_id: str, samples: np.ndarray) -> IngestReport:
        """Push one batch of samples through a tenant's pipeline."""
        entry = self._tenants.get(tenant_id)
        if entry is None:
            raise KeyError(f"unknown tenant {tenant_id!r}")
        session = entry.session
        policy = session.policy
        stream = session.stream
        counters = session.counters
        started = self._clock()

        arr = np.asarray(samples)
        if arr.ndim == 1:
            arr = arr[:, None]
        dropped = max(0, arr.shape[0] - policy.max_batch)
        if dropped:
            arr = arr[: policy.max_batch]

        # Admission: size the micro-job as (history rows x new columns).
        n_new = arr.shape[0]
        n_rows = max(stream.n_r_seg + (n_new if stream.self_join else 0), 1)
        effective = PrecisionMode.parse(policy.mode)
        shed_steps = 0
        job_id = None
        if policy.deadline is not None:
            job_id = -next(self._job_ids)
            decision = self.service.admission.admit(
                job_id, n_rows, max(n_new, 1), max(stream.d or arr.shape[1], 1),
                policy.mode, policy.deadline,
            )
            effective = decision.effective
            shed_steps = decision.downgrade_steps
        if policy.autotune:
            effective = self._tune_band(entry, n_rows, max(n_new, 1), effective)

        esc_before = len(stream.escalations)
        try:
            old_seg, new_seg = stream.ingest(arr)
            if session.gated:
                report = self._gated_step(
                    entry, old_seg, new_seg, effective
                )
            else:
                result = stream.cover(mode=effective)
                report = IngestReport(
                    tenant_id=tenant_id,
                    accepted=arr.shape[0],
                    dropped=dropped,
                    new_segments=result.new_segments,
                    mode=effective,
                    tiles=len(result.tiles),
                    exact_columns=result.new_segments,
                )
            report.accepted = arr.shape[0]
            report.dropped = dropped
            report.shed_steps = shed_steps
        finally:
            if job_id is not None:
                self.service.admission.complete(job_id)
        report.rebased = self._maybe_rebase(entry)
        report.elapsed = self._clock() - started
        if policy.deadline is not None and report.exact_columns > 0:
            self.service.estimator.observe(
                stream.n_r_seg, report.exact_columns, stream.d or 1,
                effective, report.elapsed,
            )

        # Per-tenant counters + the shared service metrics.
        counters.appends += 1
        counters.samples += report.accepted
        counters.dropped += report.dropped
        counters.segments += report.new_segments
        counters.alarms += len(report.alarms)
        counters.suppressed_columns += report.suppressed_columns
        counters.exact_columns += report.exact_columns
        counters.exact_tiles += report.tiles
        counters.shed_steps += report.shed_steps
        escalated = len(stream.escalations) - esc_before
        counters.escalations += escalated
        if report.rebased:
            counters.rebases += 1
        self.metrics.record_stream(
            tenant_id,
            appends=1,
            samples=report.accepted,
            dropped=report.dropped,
            segments=report.new_segments,
            alarms=len(report.alarms),
            suppressed=report.suppressed_columns,
            exact_columns=report.exact_columns,
            exact_tiles=report.tiles,
            shed_steps=report.shed_steps,
            escalations=escalated,
        )
        if shed_steps:
            self.metrics.record_downgrade(shed_steps)
        return report

    def _gated_step(
        self, entry: _Tenant, old_seg: int, new_seg: int,
        effective: PrecisionMode,
    ) -> IngestReport:
        """Sketch-score the new windows; probe exact tiles on alarms."""
        session = entry.session
        stream = session.stream
        monitor = session.monitor
        if new_seg > old_seg and monitor.d != stream.d:
            # The first ingest fixes the dimensionality: rebuild the
            # monitor with the real d (it has scored nothing yet).
            if monitor.n_windows:
                raise RuntimeError("monitor dimensionality changed mid-stream")
            session.monitor = monitor = self._build_monitor(
                session.policy, d=stream.d
            )
        alarms = []
        scores = []
        for seg in range(old_seg, new_seg):
            score = monitor.score(stream.window(seg))
            scores.append(score)
            if score.alarm:
                alarms.append(score)
        entry.scores.extend(scores)
        tiles = 0
        exact_cols = 0
        for c0, c1 in _alarm_runs(alarms):
            result = stream.probe(c0, c1, mode=effective)
            tiles += len(result.tiles)
            exact_cols += c1 - c0
        return IngestReport(
            tenant_id=session.tenant_id,
            accepted=0,  # filled by caller
            dropped=0,
            new_segments=new_seg - old_seg,
            mode=effective,
            tiles=tiles,
            exact_columns=exact_cols,
            suppressed_columns=(new_seg - old_seg) - exact_cols,
            alarms=tuple(alarms),
        )

    def _maybe_rebase(self, entry: _Tenant) -> bool:
        """Amortised sliding-window re-base (see TenantPolicy)."""
        session = entry.session
        policy = session.policy
        stream = session.stream
        if policy.window != "sliding":
            return False
        limit = int(policy.retention * (1.0 + policy.rebase_slack))
        if stream.n_samples <= limit:
            return False
        keep = policy.retention
        suffix = stream._stream[:, -keep:].T.astype(np.float64)
        session.base_offset += stream.n_samples - keep
        fresh = self._build_stream(policy, entry.reference)
        if session.gated:
            # Gated tenants re-prime the sketch state over the retained
            # suffix; the exact profile restarts (probes are on-alarm).
            fresh.ingest(suffix)
            monitor = self._build_monitor(policy, d=stream.d)
            monitor.prime(
                fresh.window(seg) for seg in range(fresh.n_q_seg)
            )
            session.monitor = monitor
        else:
            fresh.append(suffix)
        session.stream = fresh
        return True

    # ------------------------------------------------------------------
    # Results / observability

    def profile(self, tenant_id: str) -> tuple[np.ndarray, np.ndarray]:
        """The tenant's current (n_q_seg, d) profile + index."""
        return self.tenant(tenant_id).stream.profile()

    def scores(self, tenant_id: str) -> tuple[SketchScore, ...]:
        """All sketch scores a gated tenant has produced."""
        entry = self._tenants.get(tenant_id)
        if entry is None:
            raise KeyError(f"unknown tenant {tenant_id!r}")
        return tuple(entry.scores)

    # ------------------------------------------------------------------
    # Checkpoint / restore

    def checkpoint(self, tenant_id: str, path) -> None:
        """Journal a tenant's stream state to ``path`` (npz)."""
        self.tenant(tenant_id).stream.save(path)

    def restore(
        self, tenant_id: str, path, policy: TenantPolicy
    ) -> TenantStream:
        """Re-register a tenant from a checkpoint (bit-identical resume)."""
        if tenant_id in self._tenants:
            raise ValueError(f"tenant {tenant_id!r} is already registered")
        scheduler = self.service.scheduler
        stream = IncrementalMatrixProfile.load(
            path,
            policy.run_config(),
            sim=self.service.sim,
            max_retries=scheduler.max_retries,
            failure_injector=scheduler.failure_injector,
            health=scheduler.health,
            corruptor=scheduler.corruptor,
            oom_split=scheduler.oom_split,
            placement=scheduler._placement,
            lock=scheduler._lock,
            clock=scheduler.clock,
        )
        session = TenantStream(
            tenant_id=tenant_id,
            policy=policy,
            stream=stream,
            monitor=None,
            counters=StreamCounters(),
        )
        self._tenants[tenant_id] = _Tenant(session=session)
        return session


def _alarm_runs(alarms) -> list[tuple[int, int]]:
    """Contiguous [start, stop) column runs of alarmed window positions."""
    runs: list[tuple[int, int]] = []
    for score in alarms:
        if runs and runs[-1][1] == score.position:
            runs[-1] = (runs[-1][0], score.position + 1)
        else:
            runs.append((score.position, score.position + 1))
    return runs
