"""Per-tenant streaming policies and session state.

A tenant is one always-on monitoring stream: a sensor feed, a telemetry
channel, a turbine.  :class:`TenantPolicy` is the immutable contract the
tenant registered with — precision mode, windowing/retention, ingest
backpressure caps, per-append deadline (admission shedding) and the
sketch-gate configuration.  :class:`TenantStream` is the live session:
the policy plus the incremental engine, the optional sketch monitor and
the per-tenant counters the service metrics render.

Two windowing policies, per the streaming literature:

* ``"landmark"`` — the stream grows without bound from its first sample;
  every window ever seen stays matchable.
* ``"sliding"`` — only the most recent ``retention`` samples matter.
  Rather than pay an O(n) shift per append, the stream is *re-based* in
  amortised chunks: once it exceeds ``retention * (1 + rebase_slack)``
  samples, a fresh incremental stream is rebuilt over the retained
  suffix (one batch-sized step) and ``base_offset`` records how many
  samples were dropped, keeping reported positions global.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import RunConfig
from ..precision.modes import PrecisionMode

__all__ = ["TenantPolicy", "TenantStream", "StreamCounters"]

_WINDOWS = ("landmark", "sliding")


@dataclass(frozen=True)
class TenantPolicy:
    """The registration-time contract of one streaming tenant."""

    m: int
    mode: str = "FP64"
    #: ``"landmark"`` (unbounded history) or ``"sliding"`` (retention cap).
    window: str = "landmark"
    #: Samples kept under the sliding policy (required there).
    retention: int | None = None
    #: Amortisation headroom before a sliding stream is re-based.
    rebase_slack: float = 0.5
    #: Backpressure: samples admitted per ingest call; the overflow is
    #: dropped and counted (a monitoring stream prefers fresh data over
    #: an unbounded queue).
    max_batch: int = 4096
    #: Wall-seconds budget per append for admission control; ``None``
    #: disables precision shedding (best-effort exact mode).
    deadline: float | None = None
    #: Sketch gate: when on, appends only extend the series + sketches,
    #: and exact tiles run on sketch alarms (approximate tier — the
    #: bit-identity contract applies to ungated tenants).
    sketch_gate: bool = False
    sketch_k: int = 16
    sketch_threshold: "float | str" = "auto"
    sketch_zscore: float = 3.0
    sketch_warmup: int = 16
    sketch_shrink: float = 0.75
    sketch_seed: int = 0
    #: Auto-threshold memory for the sketch gate: ``None`` keeps the
    #: cumulative baseline, an integer computes mean/std over only the
    #: last that-many scores (recovers from baseline drift; see
    #: :class:`~repro.streams.sketch.SketchMonitor`).
    sketch_rolling: int | None = None
    exclusion_zone: int | None = None
    n_tiles: int = 1
    row_block: int = 32
    #: Route every exact micro-job (cover/probe band) through the
    #: roofline autotuner: ``row_block`` is then picked per band geometry
    #: instead of taken from this policy.  Numerics-inert — tuned knobs
    #: are cache-key-excluded, so gated/ungated outputs are unchanged.
    autotune: bool = False
    #: Error budget for the autotuner: when set, the tuner may also pick
    #: a cheaper precision mode per band, provided its Section V-B bound
    #: stays inside the budget (combined with admission shedding by
    #: taking the faster of the two on the downgrade ladder).
    target_error: float | None = None

    def __post_init__(self):
        if self.m < 2:
            raise ValueError(f"segment length m must be >= 2, got {self.m}")
        if self.window not in _WINDOWS:
            raise ValueError(
                f"window must be one of {_WINDOWS}, got {self.window!r}"
            )
        if self.window == "sliding":
            if self.retention is None or self.retention < 2 * self.m:
                raise ValueError(
                    "sliding retention must be set and >= 2*m, got "
                    f"{self.retention}"
                )
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        PrecisionMode.parse(self.mode)  # validate eagerly

    def run_config(self) -> RunConfig:
        """The engine configuration this policy induces."""
        return RunConfig(
            mode=self.mode,
            exclusion_zone=self.exclusion_zone,
            row_block=self.row_block,
        )


@dataclass
class StreamCounters:
    """Per-tenant observability counters (mirrored into ServiceMetrics)."""

    appends: int = 0  # ingest calls
    samples: int = 0  # samples accepted
    dropped: int = 0  # samples dropped by backpressure
    segments: int = 0  # stream segments completed
    alarms: int = 0  # sketch alarms raised
    suppressed_columns: int = 0  # exact profile columns the gate skipped
    exact_columns: int = 0  # profile columns computed exactly
    exact_tiles: int = 0  # engine tiles dispatched
    shed_steps: int = 0  # admission downgrade ladder steps
    escalations: int = 0  # health escalations inside the engine
    rebases: int = 0  # sliding-window re-bases

    @property
    def suppression_ratio(self) -> float:
        total = self.suppressed_columns + self.exact_columns
        return self.suppressed_columns / total if total else 0.0


@dataclass
class TenantStream:
    """One tenant's live session: policy + engine + monitor + counters."""

    tenant_id: str
    policy: TenantPolicy
    stream: object  # IncrementalMatrixProfile
    monitor: object | None = None  # SketchMonitor when gated
    counters: StreamCounters = field(default_factory=StreamCounters)
    #: Global sample offset of the stream's first sample (re-bases bump
    #: this so reported segment positions stay global).
    base_offset: int = 0

    @property
    def gated(self) -> bool:
        return self.monitor is not None

    @property
    def n_samples_global(self) -> int:
        return self.base_offset + self.stream.n_samples
