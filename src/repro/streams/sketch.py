"""Online normalized-projection sketches: the work-shedding gate.

Yeh et al.'s *Sketching Multidimensional Time Series for Fast Discord
Mining* (PAPERS.md) is the work-shedding analogue of the paper's
precision ladder: instead of making every exact distance cheaper, keep a
cheap random-projection sketch of every window online and spend exact
(reduced-precision) tile work only where the sketch says something
interesting is happening.

:class:`SketchMonitor` maintains, per window, the Johnson–Lindenstrauss
projection of the per-dimension z-normalised window (unit-normed, so the
projected Euclidean distance estimates the z-normalised distance the
matrix profile measures, up to the ``sqrt(2m)`` scale).  Each append is
scored in O(history x k): the estimated nearest-neighbour distance of
the new window against all sketched history, shrunk by a confidence
factor into a *lower-bound style* score.  A score above the tenant
threshold is a **discord alarm** — only then does the ingest tier admit
an exact tile job (:meth:`~repro.streams.incremental.
IncrementalMatrixProfile.probe`); everything else is suppressed and
counted as saved exact work.

The threshold can be a fixed float (sketch-distance units) or
``"auto"``: alarm when the score exceeds ``mean + zscore * std`` of all
previously seen scores, with the first ``warmup`` windows always
escalated while the baseline accumulates.  Sketching is a host-side
float64 filter — deliberately precision-independent, so the gate
behaves identically for every tenant mode and never perturbs the exact
tier's bit-identical numerics.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["SketchMonitor", "SketchScore"]


@dataclass(frozen=True)
class SketchScore:
    """One window's sketch verdict."""

    position: int  # global segment index of the scored window
    estimate: float  # shrunk approximate NN distance (sketch units)
    threshold: float  # threshold in force when scored (inf during warmup)
    alarm: bool

    @property
    def suppressed(self) -> bool:
        return not self.alarm


class SketchMonitor:
    """Scores each appended window's approximate discord distance.

    Parameters
    ----------
    m, d:
        Window length and dimensionality of the stream.
    k:
        Sketch width (projection dimension); O(history x k) per score.
    threshold:
        Fixed alarm threshold in sketch-distance units, or ``"auto"``
        (mean + ``zscore`` x std of past scores, warmup always alarms).
    zscore, warmup:
        Auto-threshold parameters.
    shrink:
        Confidence factor in (0, 1]: the raw JL estimate is multiplied
        by this to act as a lower-bound style score (JL concentrates but
        does not strictly bound; shrinking trades a few extra alarms for
        not missing discords).
    exclusion:
        Trivial-match radius: the most recent ``exclusion`` windows are
        excluded from a new window's neighbour search (defaults to
        ``ceil(m / 4)``, the profile's own exclusion zone).
    seed:
        Projection RNG seed (the projection is fixed per monitor).
    rolling:
        Auto-threshold memory: ``None`` accumulates score statistics over
        the monitor's whole life (the original behaviour), an integer
        ``N`` computes them over only the last ``N`` scores.  A rolling
        baseline tracks a drifting tenant — after a level shift the
        cumulative mean/std stay inflated forever and mask subsequent
        discords, while the rolling window re-centres within ``N``
        appends.
    """

    def __init__(
        self,
        m: int,
        d: int,
        k: int = 16,
        threshold: "float | str" = "auto",
        zscore: float = 3.0,
        warmup: int = 16,
        shrink: float = 0.75,
        exclusion: int | None = None,
        seed: int = 0,
        rolling: int | None = None,
    ):
        if m < 2 or d < 1 or k < 1:
            raise ValueError(f"invalid sketch geometry m={m}, d={d}, k={k}")
        if not 0.0 < shrink <= 1.0:
            raise ValueError(f"shrink must be in (0, 1], got {shrink}")
        if threshold != "auto" and not isinstance(threshold, (int, float)):
            raise ValueError(f"threshold must be a float or 'auto', got {threshold!r}")
        self.m = m
        self.d = d
        self.k = k
        self.threshold = threshold
        self.zscore = zscore
        self.warmup = warmup
        self.shrink = shrink
        self.exclusion = (
            exclusion if exclusion is not None else math.ceil(m / 4)
        )
        rng = np.random.default_rng(seed)
        # JL projection of the flattened (d*m) z-normalised window;
        # 1/sqrt(k) makes projected distances estimate input distances.
        self._proj = rng.standard_normal((k, d * m)) / math.sqrt(k)
        if rolling is not None and rolling < 2:
            raise ValueError(f"rolling must be >= 2, got {rolling}")
        self.rolling = rolling
        self._sketches = np.empty((0, k), dtype=np.float64)
        # Running score statistics for the auto threshold: cumulative
        # Welford, plus (when ``rolling``) the bounded recent-score
        # window the threshold is actually computed from.
        self._n_scores = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._recent: "deque[float] | None" = (
            deque(maxlen=rolling) if rolling is not None else None
        )

    # ------------------------------------------------------------------

    @property
    def n_windows(self) -> int:
        return self._sketches.shape[0]

    def _sketch(self, window: np.ndarray) -> np.ndarray:
        """Project one (d, m) window, z-normalised per dimension."""
        w = np.asarray(window, dtype=np.float64)
        if w.shape != (self.d, self.m):
            raise ValueError(
                f"window must have shape ({self.d}, {self.m}), got {w.shape}"
            )
        centered = w - w.mean(axis=1, keepdims=True)
        norms = np.linalg.norm(centered, axis=1, keepdims=True)
        z = centered / np.maximum(norms, np.finfo(np.float64).tiny)
        return self._proj @ z.ravel()

    def _current_threshold(self) -> float:
        if self.threshold != "auto":
            return float(self.threshold)
        if self._n_scores < self.warmup:
            return float("inf")  # placeholder; warmup always alarms
        if self._recent is not None:
            scores = np.asarray(self._recent)
            mean = float(scores.mean())
            var = float(scores.var(ddof=1)) if scores.size > 1 else 0.0
            return mean + self.zscore * math.sqrt(max(var, 0.0))
        var = self._m2 / max(self._n_scores - 1, 1)
        return self._mean + self.zscore * math.sqrt(max(var, 0.0))

    def _observe(self, score: float) -> None:
        if not math.isfinite(score):
            return
        self._n_scores += 1
        delta = score - self._mean
        self._mean += delta / self._n_scores
        self._m2 += delta * (score - self._mean)
        if self._recent is not None:
            self._recent.append(score)

    # ------------------------------------------------------------------

    def prime(self, windows) -> None:
        """Add historical windows ((d, m) each) without scoring them."""
        for w in windows:
            self._sketches = np.vstack([self._sketches, self._sketch(w)])

    def score(self, window: np.ndarray) -> SketchScore:
        """Score one new window against sketched history, then add it."""
        s = self._sketch(window)
        position = self.n_windows
        eligible = self._sketches[: max(position - self.exclusion, 0)]
        if eligible.shape[0] == 0:
            # Nothing to compare against: cannot suppress what we cannot
            # bound, so the first windows escalate.
            estimate = float("inf")
            alarm = True
            threshold = self._current_threshold()
        else:
            nn = float(np.sqrt(((eligible - s) ** 2).sum(axis=1).min()))
            estimate = self.shrink * nn
            threshold = self._current_threshold()
            in_warmup = (
                self.threshold == "auto" and self._n_scores < self.warmup
            )
            alarm = in_warmup or estimate > threshold
            self._observe(estimate)
        self._sketches = np.vstack([self._sketches, s])
        return SketchScore(
            position=position,
            estimate=estimate,
            threshold=threshold,
            alarm=alarm,
        )
