"""Tile backends: how one tile actually gets executed.

The dispatcher (:mod:`repro.engine.dispatch`) is backend-agnostic: it
hands a :class:`~repro.engine.plan.ExecutionPlan` tile to a
:class:`TileBackend` and gets back a :class:`TileExecution` carrying the
modelled :class:`~repro.gpu.perfmodel.TileTiming` and (for numeric
backends) the tile's :class:`TileOutput`.  Two backends exist:

* :class:`NumericBackend` — Pseudocode 1 for real: slice + upload the
  device layouts, reserve the workspace, run the four kernels via
  :func:`run_tile`, and free everything afterwards.  Allocation cleanup
  is context-managed, so an injected failure or OOM mid-tile can no
  longer leak pool memory the way the old hand-rolled
  ``alloc.free()`` choreography could.  For self-join *diagonal* tiles
  (identical row/col sample ranges on a shared layout) the query slice
  reuses the reference allocation — one upload instead of two — and the
  saved H2D bytes are recorded on the execution.
* :class:`AnalyticBackend` — no data at all: per-tile timings from the
  roofline cost model (:func:`~repro.gpu.perfmodel.single_tile_timing`),
  enabling paper-scale projections (n = 2^16 and beyond) and the
  multi-node deployment model.

This module is also the home of the tile *primitive* itself
(:func:`run_tile`, :class:`TileOutput`, :func:`schedule_tile`,
:func:`tile_timing_from_output`), re-exported by
:mod:`repro.core.single_tile` for backwards compatibility.
"""

from __future__ import annotations

import threading
from contextlib import ExitStack, contextmanager, nullcontext
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Protocol, runtime_checkable

import numpy as np

from ..gpu.kernel import KernelCost, LaunchConfig
from ..gpu.perfmodel import TileTiming, kernel_time, single_tile_timing
from ..gpu.simulator import SimulatedGPU, schedule_tile_timing
from ..gpu.stream import Stream, Timeline
from ..kernels.dist_calc import DistCalcKernel
from ..kernels.precalc import PrecalcKernel, PreparedPrecalc
from ..kernels.sort_scan import SortScanKernel
from ..kernels.sort_scan_batch import BatchSortScanKernel
from ..kernels.tc_gemm import TcGemmKernel
from ..kernels.update import INDEX_DTYPE, UpdateKernel
from ..precision.modes import TENSOR_CORE_MODES, PrecisionMode, PrecisionPolicy
from .plan import ExecutionPlan, Tile

__all__ = [
    "TileOutput",
    "TileExecution",
    "TileBackend",
    "NumericBackend",
    "TensorCoreBackend",
    "AnalyticBackend",
    "WorkspacePool",
    "backend_for",
    "run_tile",
    "schedule_tile",
    "tile_timing_from_output",
    "workspace_bytes",
    "KERNEL_ORDER",
]

KERNEL_ORDER = ("precalculation", "dist_calc", "sort_&_incl_scan", "update_mat_prof")


#: Workspace row planes the main loop keeps live, priced in half-plane
#: units (each plane is double-buffered in row halves by the streaming
#: recurrence).  The vector path streams 4 — the QT and D planes, each
#: double-buffered — while the tensor-core panel kernel holds ~3: its
#: FP32 pad/accumulate/scan fragments cover 16-row MMA chunks rather
#: than full row planes, so the capacity model must not charge it the
#: vector path's footprint (it over-splits on OOM otherwise).
WORKSPACE_HALF_PLANES = {"vector": 4, "tensor_core": 3}


def workspace_bytes(
    n_r_seg: int,
    n_q_seg: int,
    d: int,
    policy: PrecisionPolicy,
    main_loop: str = "vector",
    mirror: bool = False,
) -> int:
    """Device footprint of a tile's intermediates beyond the raw inputs:
    the eight precalculated vectors, the main loop's workspace planes
    (backend-dependent — see :data:`WORKSPACE_HALF_PLANES`), and the
    running P/I output planes (cf. ``core.planner.tile_memory_bytes``).
    ``mirror`` adds the second, row-indexed P/I pair a symmetric
    self-join tile writes."""
    s = policy.itemsize
    precalc = (4 * n_r_seg + 4 * n_q_seg) * d * s
    half_planes = WORKSPACE_HALF_PLANES.get(main_loop, 4)
    planes = half_planes * n_q_seg * d * s // 2
    outputs = n_q_seg * d * (s + INDEX_DTYPE.itemsize)
    if mirror:
        outputs += n_r_seg * d * (s + INDEX_DTYPE.itemsize)
    return int(precalc + planes + outputs)


@lru_cache(maxsize=64)
def _cached_arange(n: int) -> np.ndarray:
    """Read-only ``np.arange(n)``, cached per length — the exclusion-zone
    column-index vector is the same for every row and every tile of a
    given width, so it is built once instead of per ``run_tile`` call."""
    idx = np.arange(n)
    idx.setflags(write=False)
    return idx


class WorkspacePool:
    """Reusable host-side kernel workspaces, one buffer per (shape, dtype).

    The row-blocked main loop leases its ``(d, B, n_q)`` QT block buffer
    from here, amortising the allocation across blocks, rows *and* tiles
    executed by the same worker.  :meth:`lease` is a context manager: the
    buffer returns to the pool on every exit path, so an injected fault
    or device OOM mid-tile can neither leak the buffer nor leave it
    checked out.  Pools are per-worker (see ``NumericBackend``), so no
    locking is needed.
    """

    def __init__(self):
        self._free: dict[tuple, np.ndarray] = {}

    @contextmanager
    def lease(self, shape: tuple[int, ...], dtype):
        key = (tuple(shape), np.dtype(dtype))
        buf = self._free.pop(key, None)
        if buf is None:
            buf = np.empty(key[0], dtype=key[1])
        try:
            yield buf
        finally:
            self._free[key] = buf


#: Maps kernel class cost names to the paper's kernel labels.
_KERNEL_LABELS = {
    "PrecalcKernel": "precalculation",
    "DistCalcKernel": "dist_calc",
    "TcGemmKernel": "dist_calc",
    "SortScanKernel": "sort_&_incl_scan",
    "BatchSortScanKernel": "sort_&_incl_scan",
    "UpdateKernel": "update_mat_prof",
}


@dataclass
class TileOutput:
    """Numerical output + hardware costs of one executed tile."""

    profile: np.ndarray  # (d, n_q_seg), storage dtype, dimension-wise layout
    indices: np.ndarray  # (d, n_q_seg), int64, *global* reference positions
    costs: dict[str, KernelCost] = field(default_factory=dict)
    h2d_bytes: float = 0.0
    d2h_bytes: float = 0.0
    #: Mirrored contribution of a symmetric self-join tile (row-wise
    #: reduce of the same distance panels, indexed by tile-local row;
    #: indices are global *column* positions).  ``None`` unless the tile
    #: ran with ``mirror=True``.
    mirror_profile: np.ndarray | None = None
    mirror_indices: np.ndarray | None = None


def run_tile(
    tr_dev: np.ndarray,
    tq_dev: np.ndarray,
    m: int,
    policy: PrecisionPolicy,
    launch: LaunchConfig,
    row_offset: int = 0,
    col_offset: int = 0,
    exclusion_zone: int | None = None,
    sort_strategy: str = "bitonic",
    fast_path_1d: bool = True,
    row_block: int = 1,
    workspace: "WorkspacePool | None" = None,
    precalc: "PreparedPrecalc | None" = None,
    main_loop: str = "vector",
    mirror: bool = False,
) -> TileOutput:
    """Execute the kernels of one tile; pure numerics + cost accounting.

    ``tr_dev``/``tq_dev`` are (d, len) device-layout arrays in the storage
    dtype.  ``row_offset``/``col_offset`` locate the tile inside the global
    distance matrix (indices recorded in the output are global).
    ``exclusion_zone`` (for self-joins) suppresses matches with
    ``|global_row - global_col| <= zone``.  ``sort_strategy`` selects the
    cooperative bitonic kernel or the batch-based ablation alternative;
    ``fast_path_1d`` skips the sort/scan entirely for d == 1 (identity).

    ``row_block > 1`` executes the main loop in super-steps of that many
    reference rows: ``dist_calc`` fills a leased ``(d, B, n_q)`` QT
    workspace (sequential recurrence, no per-row temporaries), the
    column-independent sort/scan runs once per block on the reshaped
    ``(d, B*n_q)`` plane and the update reduces the block before one
    merge into the running profile.  Output, kernel costs and therefore
    modelled timings are bit-for-bit identical to the per-row path —
    blocking only amortises the host dispatch overhead.  ``workspace``
    is an optional :class:`WorkspacePool` reused across calls.

    ``precalc`` is an optional :class:`~repro.kernels.precalc.
    PreparedPrecalc` assembled by the plan-level
    :class:`~repro.engine.precalc_cache.PrecalcPlaneCache`: its result
    (bit-identical to running :class:`PrecalcKernel` here) is used
    directly and its pre-computed cost stands in for the kernel's.  The
    device uploads are unchanged either way — the tile still needs both
    series resident for the main loop, so H2D accounting and the memory
    footprint stay as they were.

    ``main_loop`` selects the main-loop execution path: ``"vector"`` (the
    paper's per-row/row-blocked recurrence) or ``"tensor_core"`` (the
    packed-panel chained-GEMM kernel of :class:`~repro.kernels.tc_gemm.
    TcGemmKernel`).  The tensor-core path always runs row-blocked (its
    unit of work *is* the panel), keeps the distance panel in the FP32
    accumulator through a fused sort/scan (``SortScanKernel(mma_scan=
    True)``) and reduce-then-store update, and is only valid for the
    ``TENSOR_CORE_MODES`` — callers route ineligible jobs back to
    ``"vector"`` (see :func:`backend_for`).  It is *not* bit-identical
    to the vector path: FP32 accumulation is the point.

    ``mirror=True`` (symmetric self-join tiles) additionally reduces
    every distance panel row-wise: the returned output carries a second
    ``(d, n_r_seg)`` profile/index pair — the transposed contribution of
    the lower-triangle twin this tile replaces (D(i, j) = D(j, i)), with
    indices recording global *column* positions.  The exclusion mask is
    symmetric in global coordinates, so the same lifted panel feeds both
    reduces.
    """
    d = tr_dev.shape[0]
    n_r_seg = tr_dev.shape[1] - m + 1
    n_q_seg = tq_dev.shape[1] - m + 1
    if n_r_seg < 1 or n_q_seg < 1:
        raise ValueError(f"m={m} leaves no segments for tile of shape "
                         f"{tr_dev.shape} x {tq_dev.shape}")
    if main_loop not in ("vector", "tensor_core"):
        raise ValueError(
            f"main_loop must be 'vector' or 'tensor_core', got {main_loop!r}"
        )
    tensor_core = main_loop == "tensor_core"
    if tensor_core and policy.mode not in TENSOR_CORE_MODES:
        eligible = ", ".join(mode.value for mode in TENSOR_CORE_MODES)
        raise ValueError(
            f"tensor-core main loop requires one of ({eligible}), got"
            f" {policy.mode.value}; route ineligible modes to the vector"
            f" path (backend_for does)"
        )

    if tensor_core:
        dist = TcGemmKernel(config=launch, policy=policy)
        # The fused path hands the sort stage the FP32 accumulator panel;
        # mma_scan consumes it without intermediate half roundings.  The
        # batch-sort ablation has no wide-panel path, so the strategy
        # knob is rejected upstream (RunConfig) for this backend.
        sort_scan = SortScanKernel(config=launch, policy=policy, mma_scan=True)
    else:
        dist = DistCalcKernel(config=launch, policy=policy)
        if sort_strategy == "batch":
            sort_scan = BatchSortScanKernel(config=launch, policy=policy)
        else:
            sort_scan = SortScanKernel(config=launch, policy=policy)
    update = UpdateKernel(config=launch, policy=policy)
    skip_sort = fast_path_1d and d == 1

    if precalc is None:
        precalc_kernel = PrecalcKernel(config=launch, policy=policy)
        pre = precalc_kernel.run(tr_dev, tq_dev, m)
        precalc_cost = precalc_kernel.cost
    else:
        pre = precalc.result
        precalc_cost = precalc.cost
    dist.bind(pre)
    update.allocate(d, n_q_seg, mirror_rows=n_r_seg if mirror else None)

    cols_global = _cached_arange(n_q_seg) + col_offset
    block = max(1, min(row_block, n_r_seg))
    if tensor_core:
        # The panel kernel's super-step *is* the blocked loop; it keeps
        # the QT panel in its own FP32 accumulator scratch, so the leased
        # compute-dtype QT workspace of the vector path is never needed.
        for i0 in range(0, n_r_seg, block):
            b = min(block, n_r_seg - i0)
            dist_blk = dist.run_block(i0, b, None)
            if skip_sort:
                avg_blk = dist_blk
            else:
                flat = dist_blk.reshape(d, b * n_q_seg)
                avg_blk = sort_scan.run(flat, rows=b).reshape(d, b, n_q_seg)
            if exclusion_zone is None:
                update.run_block(avg_blk, i0, row_offset=row_offset,
                                 col_offset=col_offset)
            else:
                rows_global = _cached_arange(n_r_seg)[i0 : i0 + b] + row_offset
                mask = (
                    np.abs(cols_global[None, :] - rows_global[:, None])
                    <= exclusion_zone
                )
                update.run_block(avg_blk, i0, row_offset=row_offset,
                                 mask=mask, col_offset=col_offset)
    elif block == 1:
        for i in range(n_r_seg):
            plane = dist.run(i)
            averaged = plane if skip_sort else sort_scan.run(plane)
            if exclusion_zone is None:
                update.run(averaged, i, row_offset=row_offset,
                           col_offset=col_offset)
            else:
                mask = (np.abs(cols_global - (i + row_offset)) <= exclusion_zone)[None, :]
                update.masked_run(averaged, i, mask, row_offset=row_offset,
                                  col_offset=col_offset)
    else:
        pool = workspace if workspace is not None else WorkspacePool()
        with pool.lease((d, block, n_q_seg), policy.compute) as qt_ws:
            for i0 in range(0, n_r_seg, block):
                b = min(block, n_r_seg - i0)
                dist_blk = dist.run_block(i0, b, qt_ws[:, :b, :])
                if skip_sort:
                    avg_blk = dist_blk
                else:
                    flat = dist_blk.reshape(d, b * n_q_seg)
                    avg_blk = sort_scan.run(flat, rows=b).reshape(d, b, n_q_seg)
                if exclusion_zone is None:
                    update.run_block(avg_blk, i0, row_offset=row_offset,
                                 col_offset=col_offset)
                else:
                    rows_global = (
                        _cached_arange(n_r_seg)[i0 : i0 + b] + row_offset
                    )
                    mask = (
                        np.abs(cols_global[None, :] - rows_global[:, None])
                        <= exclusion_zone
                    )
                    update.run_block(avg_blk, i0, row_offset=row_offset,
                                 mask=mask, col_offset=col_offset)

    itemsize = policy.itemsize
    h2d_bytes = float((tr_dev.shape[1] + tq_dev.shape[1]) * d * itemsize)
    d2h_bytes = float(n_q_seg * d * (itemsize + INDEX_DTYPE.itemsize))
    if mirror:
        # The mirrored P/I pair rides the same download.
        d2h_bytes += float(n_r_seg * d * (itemsize + INDEX_DTYPE.itemsize))
    costs = {
        _KERNEL_LABELS[c.name]: replace(c, name=_KERNEL_LABELS[c.name])
        for c in (precalc_cost, dist.cost, sort_scan.cost, update.cost)
    }
    return TileOutput(
        profile=update.profile,
        indices=update.indices,
        costs=costs,
        h2d_bytes=h2d_bytes,
        d2h_bytes=d2h_bytes,
        mirror_profile=update.mirror_profile,
        mirror_indices=update.mirror_indices,
    )


def tile_timing_from_output(
    output: TileOutput, policy: PrecisionPolicy, device
) -> TileTiming:
    """Convert an executed tile's recorded costs to modelled timings."""
    d, n_q_seg = output.profile.shape
    working_set = 6.0 * n_q_seg * d * policy.itemsize
    timing = TileTiming(h2d_bytes=output.h2d_bytes, d2h_bytes=output.d2h_bytes)
    for name in KERNEL_ORDER:
        cost = output.costs[name]
        itemsize = (
            policy.precalc.itemsize if name == "precalculation" else policy.itemsize
        )
        timing.kernels[name] = kernel_time(
            cost, device, itemsize, working_set=working_set
        )
    return timing


def schedule_tile(
    gpu: SimulatedGPU,
    stream: Stream,
    timeline: Timeline,
    output: TileOutput,
    policy: PrecisionPolicy,
    label: str = "tile0",
) -> None:
    """Place one executed tile's operations on a simulated stream.

    The four kernels are aggregated over rows: the engine-exclusive total
    is identical to interleaved per-row scheduling.
    """
    timing = tile_timing_from_output(output, policy, gpu.spec)
    schedule_tile_timing(gpu, stream, timeline, timing, label)


@dataclass
class TileExecution:
    """One tile's run as seen by the dispatcher and accumulator."""

    tile: Tile
    timing: TileTiming
    output: TileOutput | None = None  # None for analytic backends
    gpu_id: int = -1  # filled in by the dispatcher
    h2d_saved_bytes: float = 0.0  # diagonal-tile shared-upload savings
    mode: "PrecisionMode | None" = None  # precision the tile executed at
    precalc_saved_flops: float = 0.0  # plane work amortised away for this tile


@runtime_checkable
class TileBackend(Protocol):
    """Executes one tile of a plan on one simulated GPU."""

    def run(self, plan: ExecutionPlan, tile: Tile, gpu: SimulatedGPU) -> TileExecution:
        ...


class NumericBackend:
    """Real numerics: upload → :func:`run_tile` → free, context-managed.

    Parameters
    ----------
    lock:
        Context manager serialising allocator traffic (the service shares
        one GPU pool across worker threads; numerics stay outside it).
    label:
        Prefix for allocation labels (the service tags them per job).
    discount_shared_h2d:
        When a self-join diagonal tile reuses the reference upload for
        its query slice, also subtract the second upload from the
        modelled H2D bytes.  ``compute_multi_tile`` enables this; the
        single-tile path keeps the paper's original both-series transfer
        accounting for continuity with the calibrated figures.
    """

    #: Main-loop execution path handed to :func:`run_tile`; the
    #: tensor-core subclass overrides it.
    main_loop: str = "vector"

    def __init__(
        self,
        lock=None,
        label: str = "",
        discount_shared_h2d: bool = False,
    ):
        self._lock = lock if lock is not None else nullcontext()
        self._label = f"{label}:" if label else ""
        self.discount_shared_h2d = discount_shared_h2d
        # Host workspace pools are per worker thread: row-blocked tiles
        # reuse their QT block buffer across rows and tiles without any
        # cross-worker contention.
        self._workspaces = threading.local()

    def ensure_serialised_allocator(self) -> None:
        """Install a real lock around allocator traffic if none was given
        (called by the dispatcher before running tiles on worker threads)."""
        if isinstance(self._lock, nullcontext):
            self._lock = threading.RLock()

    def _workspace_pool(self) -> WorkspacePool:
        pool = getattr(self._workspaces, "pool", None)
        if pool is None:
            pool = WorkspacePool()
            self._workspaces.pool = pool
        return pool

    def run(self, plan: ExecutionPlan, tile: Tile, gpu: SimulatedGPU) -> TileExecution:
        spec = plan.spec
        policy = spec.policy
        config = spec.config
        m = spec.m
        r0, r1 = tile.sample_range_rows(m)
        c0, c1 = tile.sample_range_cols(m)
        # Self-join diagonal tile: row and column slices are the same
        # samples of the same layout — upload once, bind twice.
        shared = plan.tq_layout is plan.tr_layout and (r0, r1) == (c0, c1)
        # Amortised precalculation: assembled host-side before any device
        # allocation, so a device OOM cannot strand a half-built plane
        # cache and the (locked) plane build never holds device memory.
        prepared = None
        cache = getattr(plan, "precalc_cache", None)
        if cache is not None:
            prepared = cache.prepare(plan, tile)
        with ExitStack() as stack:
            with self._lock:
                tr_alloc = gpu.memory.upload(
                    np.ascontiguousarray(plan.tr_layout[:, r0:r1]),
                    label=f"{self._label}Tr{tile.tile_id}",
                )
                stack.callback(self._free, tr_alloc)
                if shared:
                    tq_alloc = tr_alloc
                else:
                    tq_alloc = gpu.memory.upload(
                        np.ascontiguousarray(plan.tq_layout[:, c0:c1]),
                        label=f"{self._label}Tq{tile.tile_id}",
                    )
                    stack.callback(self._free, tq_alloc)
            # Per-plan eligibility: an escalated plan may have widened the
            # mode past the tensor-core formats (FP16 -> FP32 on a sick
            # tile), in which case *that* execution silently takes the
            # vector path — escalation composes without special-casing.
            main_loop = self.main_loop
            if policy.mode not in TENSOR_CORE_MODES:
                main_loop = "vector"
            mirror = getattr(tile, "mirror", False)
            with self._lock:
                workspace = gpu.memory.reserve(
                    workspace_bytes(
                        tile.n_rows,
                        tile.n_cols,
                        spec.d,
                        policy,
                        main_loop=main_loop,
                        mirror=mirror,
                    ),
                    label=f"{self._label}ws{tile.tile_id}",
                )
                stack.callback(self._free, workspace)
            output = run_tile(
                tr_alloc.array,
                tq_alloc.array,
                m,
                policy,
                config.launch,
                row_offset=tile.row_start,
                col_offset=tile.col_start,
                exclusion_zone=spec.exclusion_zone,
                sort_strategy=config.sort_strategy,
                fast_path_1d=config.fast_path_1d,
                row_block=plan.row_block,
                workspace=self._workspace_pool(),
                precalc=prepared,
                main_loop=main_loop,
                mirror=mirror,
            )
        saved = 0.0
        if shared and self.discount_shared_h2d:
            saved = float((c1 - c0) * spec.d * policy.itemsize)
            output.h2d_bytes -= saved
        timing = tile_timing_from_output(output, policy, gpu.spec)
        return TileExecution(
            tile=tile, timing=timing, output=output, h2d_saved_bytes=saved,
            mode=policy.mode,
            precalc_saved_flops=prepared.saved_flops if prepared else 0.0,
        )

    def _free(self, alloc) -> None:
        with self._lock:
            alloc.free()


class TensorCoreBackend(NumericBackend):
    """Numeric backend running the tensor-core main loop.

    Identical to :class:`NumericBackend` in allocation, upload and cost
    plumbing; only the main loop differs — :func:`run_tile` executes
    :class:`~repro.kernels.tc_gemm.TcGemmKernel` super-steps with the
    fused FP32 sort/scan/update epilogue instead of the vector
    recurrence.  Tiles whose (possibly escalated) precision mode falls
    outside ``TENSOR_CORE_MODES`` transparently run the vector path, so
    health-check escalation up the precision ladder composes unchanged.

    Use :func:`backend_for` to build one from a :class:`~repro.core.
    config.RunConfig` — it owns the eligibility routing and the recorded
    fallback reason.
    """

    main_loop = "tensor_core"


def backend_for(
    config,
    *,
    lock=None,
    label: str = "",
    discount_shared_h2d: bool = False,
) -> "tuple[NumericBackend, str | None]":
    """The numeric backend a :class:`~repro.core.config.RunConfig` asks
    for, plus the fallback reason when the request cannot be honoured.

    ``config.backend == "tensor_core"`` yields a
    :class:`TensorCoreBackend` when the precision mode has a tensor-core
    formulation (``TENSOR_CORE_MODES``: FP16 storage, wide precalc) *and*
    the modelled device has tensor cores; otherwise — and for the default
    ``"numeric"`` — a plain :class:`NumericBackend` with ``reason``
    explaining the downgrade (``None`` when the request was honoured).
    Callers surface the reason on
    :attr:`~repro.core.result.MatrixProfileResult.backend_fallback_reason`.
    """
    kwargs = dict(lock=lock, label=label, discount_shared_h2d=discount_shared_h2d)
    requested = getattr(config, "backend", "numeric")
    if requested != "tensor_core":
        return NumericBackend(**kwargs), None
    mode = config.policy.mode
    if mode not in TENSOR_CORE_MODES:
        eligible = ", ".join(m.value for m in TENSOR_CORE_MODES)
        return NumericBackend(**kwargs), (
            f"mode {mode.value} has no tensor-core formulation"
            f" (eligible: {eligible})"
        )
    if not getattr(config.device, "has_tensor_cores", False):
        return NumericBackend(**kwargs), (
            f"device {config.device.name} has no tensor cores"
        )
    return TensorCoreBackend(**kwargs), None


class AnalyticBackend:
    """Roofline-model timings only — no data touched.

    Serves ``model_multi_tile`` and the multi-node deployment model: the
    tile's dimensions and the precision policy fully determine the
    modelled cost, so paper-scale problems plan in microseconds.
    """

    def run(self, plan: ExecutionPlan, tile: Tile, gpu: SimulatedGPU) -> TileExecution:
        spec = plan.spec
        policy = spec.policy
        timing = single_tile_timing(
            tile.n_rows,
            tile.n_cols,
            spec.d,
            spec.m,
            gpu.spec,
            policy.itemsize,
            config=spec.config.launch,
            precalc_itemsize=policy.precalc.itemsize,
            compensated=policy.compensated,
        )
        return TileExecution(tile=tile, timing=timing, mode=policy.mode)
