"""CPU-side result accumulation: the merge node of the tile DAG.

Pseudocode 2's second loop — min/argmin-merge every tile's profile into
the global one — plus the bookkeeping every caller used to duplicate:
kernel-cost aggregation, merge-element counting and the modelled CPU
merge time.  :class:`ProfileAccumulator` is fed one
:class:`~repro.engine.backends.TileExecution` at a time by the
dispatcher, in plan order, so the strict-``<`` tie-breaking contract of
:func:`merge_tile_outputs` (earliest reference row wins) is preserved
exactly.

For analytic runs (no numerical output) the accumulator still counts
merge elements from the tile geometry, so :meth:`merge_time` models the
same CPU cost the numeric path would pay.
"""

from __future__ import annotations

import numpy as np

from ..core.tiling import Tile
from ..gpu.calibration import MERGE_TIME_PER_ELEMENT, TILE_DISPATCH_OVERHEAD
from ..gpu.kernel import KernelCost
from ..kernels.update import INDEX_DTYPE
from ..precision.modes import DTYPE_MAX, PrecisionPolicy

__all__ = ["merge_tile_outputs", "merge_mirrored", "ProfileAccumulator"]


def merge_tile_outputs(
    profile: np.ndarray,
    index: np.ndarray,
    tile: Tile,
    tile_profile: np.ndarray,
    tile_index: np.ndarray,
) -> None:
    """CPU-side min/argmin merge of one tile into the global profile.

    ``profile``/``index`` are global (d, n_q_seg) accumulators; the tile
    contributes its query-column slice.  Strict ``<`` keeps the earliest
    reference row on ties (tiles are merged in row-major tile order, so
    this matches the sequential single-tile iteration order).
    """
    sl = slice(tile.col_start, tile.col_stop)
    target_p = profile[:, sl]
    target_i = index[:, sl]
    improved = tile_profile < target_p
    np.copyto(target_p, tile_profile, where=improved)
    np.copyto(target_i, tile_index, where=improved)


def merge_mirrored(
    profile: np.ndarray,
    index: np.ndarray,
    tile: Tile,
    mirror_profile: np.ndarray,
    mirror_indices: np.ndarray,
) -> None:
    """Merge a symmetric tile's mirrored (row-wise) contribution.

    By symmetry D(i, j) = D(j, i), the row-wise minimum of an
    upper-triangular tile's panel is the profile contribution of global
    columns ``[row_start, row_stop)`` — the band its lower-triangle twin
    would have covered — with the recorded indices already global column
    positions.  The same strict ``<`` applies: together with the
    triangular grid's (band_row, band_col) tile order, every profile
    column still receives its contributions in ascending reference-band
    order, so the earliest-index tie-break matches the full grid's.
    """
    sl = slice(tile.row_start, tile.row_stop)
    target_p = profile[:, sl]
    target_i = index[:, sl]
    improved = mirror_profile < target_p
    np.copyto(target_p, mirror_profile, where=improved)
    np.copyto(target_i, mirror_indices, where=improved)


class ProfileAccumulator:
    """Accumulates tile executions into the global profile + cost totals.

    Parameters
    ----------
    d, n_q_seg:
        Global profile shape (dimension-wise device layout).
    policy:
        Precision policy; the profile starts at the storage dtype's
        distance limit with index -1, so untouched columns of a partial
        (anytime/deadline) run remain a valid upper bound.
    materialize:
        ``False`` for analytic runs — no arrays are allocated, only the
        merge-element and cost accounting is kept.
    """

    def __init__(
        self,
        d: int,
        n_q_seg: int,
        policy: PrecisionPolicy,
        materialize: bool = True,
    ):
        self.d = d
        self.n_q_seg = n_q_seg
        self.policy = policy
        if materialize:
            limit = policy.storage.type(DTYPE_MAX[policy.storage])
            self.profile = np.full((d, n_q_seg), limit, dtype=policy.storage)
            self.index = np.full((d, n_q_seg), -1, dtype=INDEX_DTYPE)
        else:
            self.profile = None
            self.index = None
        self.costs: dict[str, KernelCost] = {}
        self.merge_elements = 0
        self.h2d_saved_bytes = 0.0
        self.precalc_saved_flops = 0.0

    def add(self, execution) -> None:
        """Merge one completed tile (numeric or analytic)."""
        self.h2d_saved_bytes += execution.h2d_saved_bytes
        self.precalc_saved_flops += getattr(execution, "precalc_saved_flops", 0.0)
        output = execution.output
        if output is None:
            # Analytic tile: the merge would touch n_cols columns x d dims
            # (plus the n_rows-column mirrored band of a symmetric tile).
            self.merge_elements += execution.tile.n_cols * self.d
            if getattr(execution.tile, "mirror", False):
                self.merge_elements += execution.tile.n_rows * self.d
            return
        merge_tile_outputs(
            self.profile, self.index, execution.tile,
            output.profile, output.indices,
        )
        self.merge_elements += output.profile.size
        if getattr(output, "mirror_profile", None) is not None:
            merge_mirrored(
                self.profile, self.index, execution.tile,
                output.mirror_profile, output.mirror_indices,
            )
            self.merge_elements += output.mirror_profile.size
        for name, cost in output.costs.items():
            self.costs[name] = (
                cost if name not in self.costs else self.costs[name] + cost
            )

    def extend_columns(self, n_q_seg: int) -> None:
        """Grow the accumulator to ``n_q_seg`` query columns in place.

        New columns start at the storage dtype's distance limit with
        index -1 — exactly the initial state — so a stream that appends
        query segments and then merges the new-band tiles is in the same
        state as an accumulator built at the larger size from scratch.
        Existing columns are untouched (the arrays are copied, values
        preserved bit for bit).
        """
        if n_q_seg < self.n_q_seg:
            raise ValueError(
                f"cannot shrink accumulator from {self.n_q_seg} to "
                f"{n_q_seg} columns"
            )
        if n_q_seg == self.n_q_seg:
            return
        if self.profile is not None:
            limit = self.policy.storage.type(DTYPE_MAX[self.policy.storage])
            profile = np.full(
                (self.d, n_q_seg), limit, dtype=self.policy.storage
            )
            index = np.full((self.d, n_q_seg), -1, dtype=INDEX_DTYPE)
            profile[:, : self.n_q_seg] = self.profile
            index[:, : self.n_q_seg] = self.index
            self.profile = profile
            self.index = index
        self.n_q_seg = n_q_seg

    def state_arrays(self) -> dict[str, np.ndarray]:
        """The accumulator's mergeable state as plain arrays (for
        checkpoint journals; costs are serialised separately)."""
        if self.profile is None:
            raise ValueError("an analytic accumulator has no state to save")
        return {
            "profile": self.profile,
            "index": self.index,
            "merge_elements": np.int64(self.merge_elements),
            "h2d_saved_bytes": np.float64(self.h2d_saved_bytes),
            "precalc_saved_flops": np.float64(self.precalc_saved_flops),
        }

    def restore_state(
        self,
        profile: np.ndarray,
        index: np.ndarray,
        merge_elements: int,
        h2d_saved_bytes: float,
        costs: dict[str, KernelCost] | None = None,
        precalc_saved_flops: float = 0.0,
    ) -> None:
        """Adopt journaled state (checkpoint/resume).  The arrays must
        match the accumulator's shape and storage dtype exactly — resume
        is bit-identical, not a cast."""
        if self.profile is None:
            raise ValueError("cannot restore into an analytic accumulator")
        if profile.shape != self.profile.shape:
            raise ValueError(
                f"journal profile shape {profile.shape} does not match "
                f"accumulator {self.profile.shape}"
            )
        if profile.dtype != self.profile.dtype:
            raise ValueError(
                f"journal dtype {profile.dtype} does not match accumulator "
                f"storage {self.profile.dtype}"
            )
        self.profile[...] = profile
        self.index[...] = index
        self.merge_elements = int(merge_elements)
        self.h2d_saved_bytes = float(h2d_saved_bytes)
        self.precalc_saved_flops = float(precalc_saved_flops)
        if costs is not None:
            self.costs = dict(costs)

    def merge_time(self, dispatch_count: int) -> float:
        """Modelled CPU merge time for ``dispatch_count`` dispatched tiles
        (callers pass completed tiles for partial runs)."""
        return (
            self.merge_elements * MERGE_TIME_PER_ELEMENT
            + dispatch_count * TILE_DISPATCH_OVERHEAD
        )

    def host_profile(self) -> np.ndarray:
        """The (n_q_seg, d) float64 time-major profile for results."""
        return np.ascontiguousarray(self.profile.T.astype(np.float64))

    def host_index(self) -> np.ndarray:
        """The (n_q_seg, d) int64 time-major index for results."""
        return np.ascontiguousarray(self.index.T)
