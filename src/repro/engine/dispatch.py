"""The one tile-execution loop (Pseudocode 2, second half).

Every entry point used to carry its own copy of this loop — core
multi-tile, analytic model, single tile, service scheduler, multi-node
model — each with a different subset of the production behaviours
(retry, deadlines, locking, metrics).  :func:`execute_plan` is the single
loop now, with the variation points made explicit:

* **backend** — numeric or analytic (:mod:`repro.engine.backends`);
* **placement** — static Pseudocode 2 round-robin by default
  (:class:`StaticPlacement` over the plan's assignment), or a dynamic
  :class:`RoundRobinPlacement` with device exclusion for
  retry-around-a-sick-GPU (the service shares one cursor pool-wide);
* **retry** — :class:`TransientDeviceError` re-queues the tile at the
  back of the work deque on a different device, up to ``max_retries``
  attempts, then :class:`TileRetryExhaustedError`;
* **deadline / anytime cancellation** — when ``clock()`` passes
  ``deadline_at`` the remaining tiles are abandoned; completed tiles
  already merged make the accumulator a valid anytime upper bound;
* **observers** — per-tile hooks (:class:`TileObserver`) feeding service
  metrics, anytime-style progress callbacks and trace annotation without
  the loop knowing about any of them.

Fault tolerance (all opt-in; the happy path stays bit-identical):

* **health checks / escalation** — pass a
  :class:`~repro.engine.health.HealthPolicy` and every tile's output is
  validated (non-finite or negative distances, implausible implied
  correlations); a sick tile re-executes one rung up the
  FP16 -> Mixed -> FP32 -> FP64 ladder until it passes or
  :class:`~repro.engine.health.TileHealthError` ends the run;
* **OOM splitting** — with ``oom_split=True`` a tile that cannot fit is
  quartered (halved along a 1-segment axis) and its children re-queued,
  instead of aborting the job;
* **journaling** — pass a :class:`~repro.engine.checkpoint.RunJournal`
  and completed tiles are recorded (tile log + accumulator snapshot);
  a journaled dispatch skips already-completed tiles on resume.

Without ``oom_split``, device OOM
(:class:`~repro.gpu.memory.DeviceOutOfMemoryError`) is *not* retried —
it propagates so callers can re-plan with a finer tiling, the paper's
own answer to memory pressure.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.tiling import Tile
from ..gpu.memory import DeviceOutOfMemoryError
from ..gpu.simulator import GPUSimulator, schedule_tile_timing
from ..gpu.stream import Timeline, flush_streams
from ..precision.modes import PrecisionMode
from .accumulate import ProfileAccumulator
from .backends import TileBackend, TileExecution
from .health import HealthPolicy, TileHealthError, escalation_next
from .plan import ExecutionPlan

__all__ = [
    "TransientDeviceError",
    "TileRetryExhaustedError",
    "TilePlacement",
    "StaticPlacement",
    "RoundRobinPlacement",
    "TileObserver",
    "CallbackObserver",
    "DispatchReport",
    "execute_plan",
]


class TransientDeviceError(RuntimeError):
    """A recoverable per-tile device failure (injected or simulated)."""


class TileRetryExhaustedError(RuntimeError):
    """A tile failed on every allowed attempt."""

    def __init__(
        self,
        tile_id: int,
        attempts: int,
        last: Exception,
        gpu_ids: tuple[int, ...] = (),
        node_ids: tuple[int, ...] = (),
    ):
        self.tile_id = tile_id
        self.attempts = attempts
        self.last = last
        self.gpu_ids = tuple(gpu_ids)
        self.node_ids = tuple(node_ids)
        tried = (
            f" (GPUs tried: {', '.join(str(g) for g in self.gpu_ids)})"
            if self.gpu_ids
            else ""
        )
        nodes = (
            f" (nodes tried: {', '.join(str(n) for n in self.node_ids)})"
            if self.node_ids
            else ""
        )
        super().__init__(
            f"tile {tile_id} failed after {attempts} attempts{tried}{nodes}: "
            f"{last}"
        )


class StaticPlacement:
    """Pseudocode 2's static assignment: the plan already mapped tiles to
    GPUs (round-robin by tile id, or the multi-node flat-GPU map)."""

    def __init__(self, plan: ExecutionPlan):
        self._by_id = {
            tile.tile_id: gpu for tile, gpu in zip(plan.tiles, plan.assignment)
        }
        self._n_gpus = max(plan.assignment, default=0) + 1

    def pick(self, tile: Tile, excluded: set[int]) -> int:
        gpu = self._by_id.get(tile.tile_id)
        if gpu is None:
            # Tiles born after planning (OOM splits): same round-robin-
            # by-id rule the static assignment used.
            gpu = tile.tile_id % self._n_gpus
        return gpu


class RoundRobinPlacement:
    """Dynamic round-robin with device exclusion, shared across jobs.

    The cursor advances on every probe, so concurrent jobs interleave
    over the pool.  When *every* device is excluded the fallback still
    advances the cursor — successive fallback picks rotate through the
    pool instead of pinning one GPU (regression: the old scheduler
    returned ``self._rr % n`` without advancing).
    """

    def __init__(self, n_gpus: int, lock=None):
        if n_gpus < 1:
            raise ValueError(f"n_gpus must be >= 1, got {n_gpus}")
        self.n_gpus = n_gpus
        self._lock = lock if lock is not None else threading.RLock()
        self._rr = 0

    def pick(self, tile: Tile | None = None, excluded: set[int] = frozenset()) -> int:
        with self._lock:
            n = self.n_gpus
            for _ in range(n):
                gpu_id = self._rr % n
                self._rr += 1
                if gpu_id not in excluded:
                    return gpu_id
            # Every device excluded: plain round-robin, cursor advances.
            gpu_id = self._rr % n
            self._rr += 1
            return gpu_id


#: Anything with a ``pick(tile, excluded) -> int`` method.
TilePlacement = StaticPlacement | RoundRobinPlacement


class TileObserver:
    """Per-tile lifecycle hooks; subclass and override what you need."""

    def on_tile_start(self, tile: Tile, gpu_id: int, attempt: int) -> None:
        """A tile is about to execute (fires again on each retry)."""

    def on_tile_complete(self, tile: Tile, gpu_id: int, execution: TileExecution) -> None:
        """A tile finished and was merged into the accumulator."""

    def on_tile_retry(self, tile: Tile, gpu_id: int, attempt: int, error: Exception) -> None:
        """A transient failure re-queued the tile (``attempt`` was the
        failing attempt number; the device is now excluded for it)."""

    def on_deadline(self, remaining: list[Tile]) -> None:
        """The deadline expired; ``remaining`` tiles were abandoned."""

    def on_tile_escalate(
        self,
        tile: Tile,
        gpu_id: int,
        from_mode: PrecisionMode,
        to_mode: PrecisionMode,
        issues: list[str],
    ) -> None:
        """A tile failed its health checks and was re-queued one rung up
        the escalation ladder."""

    def on_tile_split(
        self, tile: Tile, children: list[Tile], error: Exception
    ) -> None:
        """A tile hit device OOM and was replaced by ``children``."""


class CallbackObserver(TileObserver):
    """Adapter turning plain callables into a :class:`TileObserver`."""

    def __init__(
        self,
        on_complete: Callable | None = None,
        on_retry: Callable | None = None,
        on_deadline: Callable | None = None,
        on_start: Callable | None = None,
        on_escalate: Callable | None = None,
        on_split: Callable | None = None,
    ):
        self._complete = on_complete
        self._retry = on_retry
        self._deadline = on_deadline
        self._start = on_start
        self._escalate = on_escalate
        self._split = on_split

    def on_tile_start(self, tile, gpu_id, attempt):
        if self._start:
            self._start(tile, gpu_id, attempt)

    def on_tile_complete(self, tile, gpu_id, execution):
        if self._complete:
            self._complete(tile, gpu_id, execution)

    def on_tile_retry(self, tile, gpu_id, attempt, error):
        if self._retry:
            self._retry(tile, gpu_id, attempt, error)

    def on_deadline(self, remaining):
        if self._deadline:
            self._deadline(remaining)

    def on_tile_escalate(self, tile, gpu_id, from_mode, to_mode, issues):
        if self._escalate:
            self._escalate(tile, gpu_id, from_mode, to_mode, issues)

    def on_tile_split(self, tile, children, error):
        if self._split:
            self._split(tile, children, error)


@dataclass
class _TileWork:
    tile: Tile
    attempt: int = 0
    excluded: set[int] = field(default_factory=set)
    mode: PrecisionMode | None = None  # escalated execution mode
    devices: list[int] = field(default_factory=list)  # attempted GPU ids
    split_depth: int = 0
    preflighted: bool = False


def _split_tile(tile: Tile, next_id: int, symmetric: bool = False) -> list[Tile]:
    """Quarter a tile (halve along any axis with >= 2 segments).

    Children keep global segment coordinates, so their outputs merge into
    the accumulator exactly like planned tiles.  A 1x1 tile cannot split
    (returns ``[]``; the OOM then propagates).

    ``symmetric`` (symmetric self-join plans) preserves the triangular
    grid's invariants: children of a mirrored tile stay mirrored (their
    row range still precedes their column range), and a *diagonal* tile
    splits into two diagonal children plus one mirrored off-diagonal
    child — the lower-triangle quarter is covered by that child's
    mirrored contribution and is never materialised.
    """
    mirrored = symmetric and getattr(tile, "mirror", False)
    diagonal = (
        symmetric
        and not mirrored
        and (tile.row_start, tile.row_stop) == (tile.col_start, tile.col_stop)
    )
    if diagonal:
        if tile.n_rows < 2:
            return []
        mid = tile.row_start + tile.n_rows // 2
        return [
            Tile(next_id, tile.row_start, mid, tile.col_start, mid),
            Tile(next_id + 1, tile.row_start, mid, mid, tile.col_stop,
                 mirror=True),
            Tile(next_id + 2, mid, tile.row_stop, mid, tile.col_stop),
        ]
    row_halves = [(tile.row_start, tile.row_stop)]
    if tile.n_rows >= 2:
        mid = tile.row_start + tile.n_rows // 2
        row_halves = [(tile.row_start, mid), (mid, tile.row_stop)]
    col_halves = [(tile.col_start, tile.col_stop)]
    if tile.n_cols >= 2:
        mid = tile.col_start + tile.n_cols // 2
        col_halves = [(tile.col_start, mid), (mid, tile.col_stop)]
    if len(row_halves) == 1 and len(col_halves) == 1:
        return []
    children = []
    for r0, r1 in row_halves:
        for c0, c1 in col_halves:
            children.append(Tile(next_id, r0, r1, c0, c1, mirror=mirrored))
            next_id += 1
    return children


@dataclass
class DispatchReport:
    """Bookkeeping of one plan's dispatch."""

    tiles_total: int
    tiles_completed: int = 0
    tile_retries: int = 0
    deadline_hit: bool = False
    executions: list[TileExecution] = field(default_factory=list)
    #: tile id -> final precision mode, for tiles escalated off the
    #: plan's base mode (health failures or pre-flight risk).
    escalations: dict[int, PrecisionMode] = field(default_factory=dict)
    #: parent tile id -> child tile ids, for tiles split on device OOM.
    splits: dict[int, tuple[int, ...]] = field(default_factory=dict)
    #: health-check failures observed (each one escalated or fatal).
    health_failures: int = 0
    #: tiles skipped because a journal already had them (resume).
    tiles_restored: int = 0
    #: wall seconds spent in retry backoff (``RetryPolicy`` delays).
    backoff_seconds: float = 0.0

    @property
    def partial(self) -> bool:
        return self.tiles_completed < self.tiles_total


def _retry_backoff(policy, tile, attempt, sleeper, report) -> None:
    """Pace one re-dispatch: seeded delay keyed on tile geometry.

    Geometry (not tile id) keys the draw so the schedule survives OOM
    splits and cross-placement renumbering, matching ``FaultPlan``.
    """
    if policy is None:
        return
    key = (tile.row_start, tile.row_stop, tile.col_start, tile.col_stop)
    delay = policy.delay(key, attempt)
    if delay > 0.0:
        report.backoff_seconds += delay
        sleeper(delay)


def execute_plan(
    plan: ExecutionPlan,
    backend: TileBackend,
    sim: GPUSimulator,
    accumulator: ProfileAccumulator | None = None,
    placement: "TilePlacement | None" = None,
    timeline: Timeline | None = None,
    observers: Sequence[TileObserver] = (),
    max_retries: int = 0,
    deadline_at: float | None = None,
    clock: Callable[[], float] = time.monotonic,
    failure_injector: Callable | None = None,
    label: str | None = None,
    flush_per_tile: bool = False,
    lock=None,
    keep_executions: bool = False,
    health: HealthPolicy | None = None,
    corruptor: Callable | None = None,
    oom_split: bool = False,
    journal=None,
    parallel_workers: int = 1,
    retry_policy=None,
    sleeper: Callable[[float], None] = time.sleep,
) -> DispatchReport:
    """Run every tile of ``plan`` on ``sim`` through ``backend``.

    Tiles run in plan order (row-major), so CPU-side merges via the
    ``accumulator`` reproduce the sequential single-tile iteration order
    — the tie-breaking contract of :func:`merge_tile_outputs`.

    ``timeline`` defaults to ``sim.timeline``; pass a fresh
    :class:`~repro.gpu.stream.Timeline` for job-local accounting (the
    service does).  ``flush_per_tile`` places each tile's stream ops
    eagerly (required when several jobs share the pool); otherwise one
    event-driven flush at the end lets streams interleave maximally.
    ``failure_injector(label, tile, gpu_id, attempt)`` may raise
    :class:`TransientDeviceError` before a tile allocates anything.
    ``lock`` serialises stream bookkeeping across concurrent dispatches.
    ``keep_executions`` retains per-tile :class:`TileExecution` records
    on the report (off by default to keep big runs lean).

    Fault tolerance (all opt-in, see the module docstring): ``health``
    validates every tile output and escalates sick tiles up the precision
    ladder; ``corruptor(label, tile, gpu_id, attempt, output)`` may
    scribble over a base-mode tile's output *before* the health check
    (fault injection — escalated re-executions stay clean, so recovery
    converges); ``oom_split`` splits a tile on device OOM instead of
    propagating; ``journal`` (a :class:`~repro.engine.checkpoint
    .RunJournal`-like object) records completed tiles and skips tiles it
    already holds.

    ``retry_policy`` (a :class:`~repro.core.config.RetryPolicy`; defaults
    to ``plan.spec.config.retry_policy``) paces re-dispatch after a
    transient failure with seeded, jittered exponential backoff — keyed
    on tile *geometry* so schedules reproduce across renumbering, like
    :class:`~repro.engine.faults.FaultPlan` draws.  ``sleeper`` is the
    injectable wait primitive (tests pass a recorder; cluster simulation
    prices delays into the modelled makespan instead of sleeping).

    ``parallel_workers > 1`` executes independent tiles concurrently on a
    thread pool (see :func:`_execute_plan_parallel`): workers run only
    the numerics, the coordinator keeps every non-thread-safe decision
    (placement, retries, escalation, splitting, journaling), and results
    merge in tile-id order regardless of completion order — so the
    output is deterministic and, on the failure-free path, bit-identical
    to the serial loop, timeline included.
    """
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    if parallel_workers < 1:
        raise ValueError(
            f"parallel_workers must be >= 1, got {parallel_workers}"
        )
    if retry_policy is None:
        retry_policy = getattr(plan.spec.config, "retry_policy", None)
    if parallel_workers > 1:
        return _execute_plan_parallel(
            plan, backend, sim,
            accumulator=accumulator, placement=placement, timeline=timeline,
            observers=observers, max_retries=max_retries,
            deadline_at=deadline_at, clock=clock,
            failure_injector=failure_injector, label=label,
            flush_per_tile=flush_per_tile, lock=lock,
            keep_executions=keep_executions, health=health,
            corruptor=corruptor, oom_split=oom_split, journal=journal,
            workers=parallel_workers,
            retry_policy=retry_policy, sleeper=sleeper,
        )
    timeline = timeline if timeline is not None else sim.timeline
    placement = placement if placement is not None else StaticPlacement(plan)
    lock = lock if lock is not None else nullcontext()
    tile_label = f"{label}:tile" if label else "tile"
    report = DispatchReport(tiles_total=plan.n_tiles)
    base_mode = PrecisionMode.parse(plan.spec.config.mode)

    symmetric = (
        getattr(plan.spec.config, "symmetric_tiles", False)
        and plan.spec.self_join
    )
    completed_keys = journal.completed_keys() if journal is not None else frozenset()
    next_id = max((t.tile_id for t in plan.tiles), default=-1) + 1
    work: deque[_TileWork] = deque()
    for tile in plan.tiles:
        if journal is not None and journal.key(tile) in completed_keys:
            report.tiles_completed += 1
            report.tiles_restored += 1
            continue
        work.append(_TileWork(tile))

    while work:
        if deadline_at is not None and clock() >= deadline_at:
            # Anytime-style: merge what finished, abandon the rest.
            report.deadline_hit = True
            remaining = [w.tile for w in work]
            for obs in observers:
                obs.on_deadline(remaining)
            break
        item = work.popleft()
        if (
            health is not None
            and health.preflight
            and not item.preflighted
            and item.mode is None
            and plan.spec.reference is not None
        ):
            # Pre-flight risk scoring: start overflow-doomed tiles at the
            # first rung their own data cannot overflow.
            item.preflighted = True
            target = health.preflight_mode(plan.spec, item.tile)
            if target != base_mode:
                item.mode = target
                report.escalations[item.tile.tile_id] = target
        active_plan = plan if item.mode is None else plan.escalated(item.mode)
        gpu_id = placement.pick(item.tile, item.excluded)
        gpu = sim.gpus[gpu_id]
        item.devices.append(gpu_id)
        for obs in observers:
            obs.on_tile_start(item.tile, gpu_id, item.attempt)
        try:
            # The injector fires *before* device allocations, so an
            # injected failure never leaks pool memory.
            if failure_injector is not None:
                failure_injector(label, item.tile, gpu_id, item.attempt)
            execution = backend.run(active_plan, item.tile, gpu)
        except TransientDeviceError as exc:
            if item.attempt >= max_retries:
                raise TileRetryExhaustedError(
                    item.tile.tile_id, item.attempt + 1, exc,
                    gpu_ids=tuple(item.devices),
                ) from exc
            for obs in observers:
                obs.on_tile_retry(item.tile, gpu_id, item.attempt, exc)
            _retry_backoff(
                retry_policy, item.tile, item.attempt, sleeper, report
            )
            item.attempt += 1
            item.excluded.add(gpu_id)
            report.tile_retries += 1
            work.append(item)  # re-queue at the back, different device
            continue
        except DeviceOutOfMemoryError as exc:
            if not oom_split:
                raise
            children = _split_tile(item.tile, next_id, symmetric=symmetric)
            if not children:
                raise  # 1x1 tile: nothing left to split off
            next_id += len(children)
            report.splits[item.tile.tile_id] = tuple(
                c.tile_id for c in children
            )
            report.tiles_total += len(children) - 1
            for obs in observers:
                obs.on_tile_split(item.tile, children, exc)
            for child in children:
                if journal is not None and journal.key(child) in completed_keys:
                    report.tiles_completed += 1
                    report.tiles_restored += 1
                    continue
                work.append(
                    _TileWork(
                        child,
                        mode=item.mode,
                        split_depth=item.split_depth + 1,
                        preflighted=item.preflighted,
                    )
                )
            continue
        if (
            corruptor is not None
            and item.mode is None
            and execution.output is not None
        ):
            corruptor(label, item.tile, gpu_id, item.attempt, execution.output)
        if health is not None and execution.output is not None:
            issues = health.check(execution.output, plan.spec.m)
            if issues:
                report.health_failures += 1
                current = execution.mode if execution.mode is not None else base_mode
                nxt = escalation_next(current) if health.escalate else None
                if nxt is None:
                    raise TileHealthError(item.tile.tile_id, current, issues)
                for obs in observers:
                    obs.on_tile_escalate(item.tile, gpu_id, current, nxt, issues)
                item.mode = nxt
                report.escalations[item.tile.tile_id] = nxt
                work.append(item)  # re-execute one rung up the ladder
                continue
        execution.gpu_id = gpu_id
        with lock:
            stream = gpu.next_stream()
            schedule_tile_timing(
                gpu, stream, timeline, execution.timing,
                f"{tile_label}{item.tile.tile_id}",
            )
            if flush_per_tile:
                flush_streams(gpu.streams, timeline)
        if accumulator is not None:
            accumulator.add(execution)
            if journal is not None:
                journal.record(execution, accumulator)
        report.tiles_completed += 1
        if keep_executions:
            report.executions.append(execution)
        for obs in observers:
            obs.on_tile_complete(item.tile, gpu_id, execution)

    if not flush_per_tile:
        for gpu in sim.gpus:
            flush_streams(gpu.streams, timeline)
    return report


def _run_tile_on_worker(backend, active_plan, item, gpu_id, gpu,
                        failure_injector, label):
    """The worker-thread slice of one tile attempt: injected failure
    check plus the backend numerics — nothing that touches coordinator
    state.  ``NumericBackend`` keeps workspace pools per thread and the
    dispatcher has already serialised its allocator."""
    if failure_injector is not None:
        failure_injector(label, item.tile, gpu_id, item.attempt)
    return backend.run(active_plan, item.tile, gpu)


def _execute_plan_parallel(
    plan: ExecutionPlan,
    backend: TileBackend,
    sim: GPUSimulator,
    *,
    accumulator,
    placement,
    timeline,
    observers,
    max_retries,
    deadline_at,
    clock,
    failure_injector,
    label,
    flush_per_tile,
    lock,
    keep_executions,
    health,
    corruptor,
    oom_split,
    journal,
    workers: int,
    retry_policy=None,
    sleeper: Callable[[float], None] = time.sleep,
) -> DispatchReport:
    """The ``parallel_workers > 1`` body of :func:`execute_plan`.

    Division of labour:

    * **workers** run only :func:`_run_tile_on_worker` — upload, kernels,
      free.  The backend's per-thread workspace pools and serialised
      allocator make that safe.
    * the **coordinator** (this thread) owns everything with shared
      state: the work queue, placement picks, ``plan.escalated()``'s
      cache, retry/split/escalation decisions, observers, stream
      scheduling, the accumulator and the journal.

    Determinism: completed tiles are buffered and merged *after* the
    run, in tile-id order — the same order the serial loop uses on its
    failure-free path — so profile, indices, tie-breaks, journal
    contents and the simulated timeline are independent of which worker
    finished first.  A deadline stops new submissions and abandons the
    queue; tiles already in flight finish and still merge (their work is
    done — discarding it would only lose coverage).
    """
    timeline = timeline if timeline is not None else sim.timeline
    placement = placement if placement is not None else StaticPlacement(plan)
    lock = lock if lock is not None else nullcontext()
    tile_label = f"{label}:tile" if label else "tile"
    report = DispatchReport(tiles_total=plan.n_tiles)
    base_mode = PrecisionMode.parse(plan.spec.config.mode)

    ensure = getattr(backend, "ensure_serialised_allocator", None)
    if ensure is not None:
        ensure()

    symmetric = (
        getattr(plan.spec.config, "symmetric_tiles", False)
        and plan.spec.self_join
    )
    completed_keys = journal.completed_keys() if journal is not None else frozenset()
    next_id = max((t.tile_id for t in plan.tiles), default=-1) + 1
    work: deque[_TileWork] = deque()
    for tile in plan.tiles:
        if journal is not None and journal.key(tile) in completed_keys:
            report.tiles_completed += 1
            report.tiles_restored += 1
            continue
        work.append(_TileWork(tile))

    # tile id -> (_TileWork, gpu_id, TileExecution), merged in id order below.
    finished: dict[int, tuple[_TileWork, int, TileExecution]] = {}
    pending: dict = {}
    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="tile-worker"
    ) as pool:
        try:
            while work or pending:
                if (
                    not report.deadline_hit
                    and deadline_at is not None
                    and clock() >= deadline_at
                ):
                    report.deadline_hit = True
                    remaining = [w.tile for w in work]
                    work.clear()
                    for obs in observers:
                        obs.on_deadline(remaining)
                while work and len(pending) < workers:
                    item = work.popleft()
                    if (
                        health is not None
                        and health.preflight
                        and not item.preflighted
                        and item.mode is None
                        and plan.spec.reference is not None
                    ):
                        item.preflighted = True
                        target = health.preflight_mode(plan.spec, item.tile)
                        if target != base_mode:
                            item.mode = target
                            report.escalations[item.tile.tile_id] = target
                    active_plan = (
                        plan if item.mode is None else plan.escalated(item.mode)
                    )
                    gpu_id = placement.pick(item.tile, item.excluded)
                    gpu = sim.gpus[gpu_id]
                    item.devices.append(gpu_id)
                    for obs in observers:
                        obs.on_tile_start(item.tile, gpu_id, item.attempt)
                    fut = pool.submit(
                        _run_tile_on_worker, backend, active_plan, item,
                        gpu_id, gpu, failure_injector, label,
                    )
                    pending[fut] = (item, gpu_id)
                if not pending:
                    continue  # deadline drained the queue; loop exits
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                # Process batches in tile-id order: re-queues (retries,
                # escalations, splits) then happen in a reproducible
                # order for any given completion grouping.
                for fut in sorted(done, key=lambda f: pending[f][0].tile.tile_id):
                    item, gpu_id = pending.pop(fut)
                    try:
                        execution = fut.result()
                    except TransientDeviceError as exc:
                        if item.attempt >= max_retries:
                            raise TileRetryExhaustedError(
                                item.tile.tile_id, item.attempt + 1, exc,
                                gpu_ids=tuple(item.devices),
                            ) from exc
                        for obs in observers:
                            obs.on_tile_retry(item.tile, gpu_id, item.attempt, exc)
                        _retry_backoff(
                            retry_policy, item.tile, item.attempt,
                            sleeper, report,
                        )
                        item.attempt += 1
                        item.excluded.add(gpu_id)
                        report.tile_retries += 1
                        work.append(item)
                        continue
                    except DeviceOutOfMemoryError as exc:
                        if not oom_split:
                            raise
                        children = _split_tile(item.tile, next_id, symmetric=symmetric)
                        if not children:
                            raise
                        next_id += len(children)
                        report.splits[item.tile.tile_id] = tuple(
                            c.tile_id for c in children
                        )
                        report.tiles_total += len(children) - 1
                        for obs in observers:
                            obs.on_tile_split(item.tile, children, exc)
                        for child in children:
                            if (
                                journal is not None
                                and journal.key(child) in completed_keys
                            ):
                                report.tiles_completed += 1
                                report.tiles_restored += 1
                                continue
                            work.append(
                                _TileWork(
                                    child,
                                    mode=item.mode,
                                    split_depth=item.split_depth + 1,
                                    preflighted=item.preflighted,
                                )
                            )
                        continue
                    if (
                        corruptor is not None
                        and item.mode is None
                        and execution.output is not None
                    ):
                        corruptor(
                            label, item.tile, gpu_id, item.attempt,
                            execution.output,
                        )
                    if health is not None and execution.output is not None:
                        issues = health.check(execution.output, plan.spec.m)
                        if issues:
                            report.health_failures += 1
                            current = (
                                execution.mode
                                if execution.mode is not None
                                else base_mode
                            )
                            nxt = (
                                escalation_next(current)
                                if health.escalate
                                else None
                            )
                            if nxt is None:
                                raise TileHealthError(
                                    item.tile.tile_id, current, issues
                                )
                            for obs in observers:
                                obs.on_tile_escalate(
                                    item.tile, gpu_id, current, nxt, issues
                                )
                            item.mode = nxt
                            report.escalations[item.tile.tile_id] = nxt
                            work.append(item)
                            continue
                    finished[item.tile.tile_id] = (item, gpu_id, execution)
        except BaseException:
            for fut in pending:
                fut.cancel()  # queued-but-unstarted attempts; in-flight drain
            raise

    # Deterministic epilogue: merge in tile-id order, whatever order the
    # workers delivered — stream assignment, accumulator tie-breaks and
    # journal records all match the serial failure-free loop.
    for tile_id in sorted(finished):
        item, gpu_id, execution = finished[tile_id]
        execution.gpu_id = gpu_id
        gpu = sim.gpus[gpu_id]
        with lock:
            stream = gpu.next_stream()
            schedule_tile_timing(
                gpu, stream, timeline, execution.timing,
                f"{tile_label}{item.tile.tile_id}",
            )
            if flush_per_tile:
                flush_streams(gpu.streams, timeline)
        if accumulator is not None:
            accumulator.add(execution)
            if journal is not None:
                journal.record(execution, accumulator)
        report.tiles_completed += 1
        if keep_executions:
            report.executions.append(execution)
        for obs in observers:
            obs.on_tile_complete(item.tile, gpu_id, execution)

    if not flush_per_tile:
        for gpu in sim.gpus:
            flush_streams(gpu.streams, timeline)
    return report
