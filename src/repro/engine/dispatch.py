"""The one tile-execution loop (Pseudocode 2, second half).

Every entry point used to carry its own copy of this loop — core
multi-tile, analytic model, single tile, service scheduler, multi-node
model — each with a different subset of the production behaviours
(retry, deadlines, locking, metrics).  :func:`execute_plan` is the single
loop now, with the variation points made explicit:

* **backend** — numeric or analytic (:mod:`repro.engine.backends`);
* **placement** — static Pseudocode 2 round-robin by default
  (:class:`StaticPlacement` over the plan's assignment), or a dynamic
  :class:`RoundRobinPlacement` with device exclusion for
  retry-around-a-sick-GPU (the service shares one cursor pool-wide);
* **retry** — :class:`TransientDeviceError` re-queues the tile at the
  back of the work deque on a different device, up to ``max_retries``
  attempts, then :class:`TileRetryExhaustedError`;
* **deadline / anytime cancellation** — when ``clock()`` passes
  ``deadline_at`` the remaining tiles are abandoned; completed tiles
  already merged make the accumulator a valid anytime upper bound;
* **observers** — per-tile hooks (:class:`TileObserver`) feeding service
  metrics, anytime-style progress callbacks and trace annotation without
  the loop knowing about any of them.

Device OOM (:class:`~repro.gpu.memory.DeviceOutOfMemoryError`) is *not*
retried — it propagates so callers can re-plan with a finer tiling, the
paper's own answer to memory pressure.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.tiling import Tile
from ..gpu.simulator import GPUSimulator, schedule_tile_timing
from ..gpu.stream import Timeline, flush_streams
from .accumulate import ProfileAccumulator
from .backends import TileBackend, TileExecution
from .plan import ExecutionPlan

__all__ = [
    "TransientDeviceError",
    "TileRetryExhaustedError",
    "TilePlacement",
    "StaticPlacement",
    "RoundRobinPlacement",
    "TileObserver",
    "CallbackObserver",
    "DispatchReport",
    "execute_plan",
]


class TransientDeviceError(RuntimeError):
    """A recoverable per-tile device failure (injected or simulated)."""


class TileRetryExhaustedError(RuntimeError):
    """A tile failed on every allowed attempt."""

    def __init__(self, tile_id: int, attempts: int, last: Exception):
        self.tile_id = tile_id
        self.attempts = attempts
        self.last = last
        super().__init__(
            f"tile {tile_id} failed after {attempts} attempts: {last}"
        )


class StaticPlacement:
    """Pseudocode 2's static assignment: the plan already mapped tiles to
    GPUs (round-robin by tile id, or the multi-node flat-GPU map)."""

    def __init__(self, plan: ExecutionPlan):
        self._by_id = {
            tile.tile_id: gpu for tile, gpu in zip(plan.tiles, plan.assignment)
        }

    def pick(self, tile: Tile, excluded: set[int]) -> int:
        return self._by_id[tile.tile_id]


class RoundRobinPlacement:
    """Dynamic round-robin with device exclusion, shared across jobs.

    The cursor advances on every probe, so concurrent jobs interleave
    over the pool.  When *every* device is excluded the fallback still
    advances the cursor — successive fallback picks rotate through the
    pool instead of pinning one GPU (regression: the old scheduler
    returned ``self._rr % n`` without advancing).
    """

    def __init__(self, n_gpus: int, lock=None):
        if n_gpus < 1:
            raise ValueError(f"n_gpus must be >= 1, got {n_gpus}")
        self.n_gpus = n_gpus
        self._lock = lock if lock is not None else threading.RLock()
        self._rr = 0

    def pick(self, tile: Tile | None = None, excluded: set[int] = frozenset()) -> int:
        with self._lock:
            n = self.n_gpus
            for _ in range(n):
                gpu_id = self._rr % n
                self._rr += 1
                if gpu_id not in excluded:
                    return gpu_id
            # Every device excluded: plain round-robin, cursor advances.
            gpu_id = self._rr % n
            self._rr += 1
            return gpu_id


#: Anything with a ``pick(tile, excluded) -> int`` method.
TilePlacement = StaticPlacement | RoundRobinPlacement


class TileObserver:
    """Per-tile lifecycle hooks; subclass and override what you need."""

    def on_tile_start(self, tile: Tile, gpu_id: int, attempt: int) -> None:
        """A tile is about to execute (fires again on each retry)."""

    def on_tile_complete(self, tile: Tile, gpu_id: int, execution: TileExecution) -> None:
        """A tile finished and was merged into the accumulator."""

    def on_tile_retry(self, tile: Tile, gpu_id: int, attempt: int, error: Exception) -> None:
        """A transient failure re-queued the tile (``attempt`` was the
        failing attempt number; the device is now excluded for it)."""

    def on_deadline(self, remaining: list[Tile]) -> None:
        """The deadline expired; ``remaining`` tiles were abandoned."""


class CallbackObserver(TileObserver):
    """Adapter turning plain callables into a :class:`TileObserver`."""

    def __init__(
        self,
        on_complete: Callable | None = None,
        on_retry: Callable | None = None,
        on_deadline: Callable | None = None,
        on_start: Callable | None = None,
    ):
        self._complete = on_complete
        self._retry = on_retry
        self._deadline = on_deadline
        self._start = on_start

    def on_tile_start(self, tile, gpu_id, attempt):
        if self._start:
            self._start(tile, gpu_id, attempt)

    def on_tile_complete(self, tile, gpu_id, execution):
        if self._complete:
            self._complete(tile, gpu_id, execution)

    def on_tile_retry(self, tile, gpu_id, attempt, error):
        if self._retry:
            self._retry(tile, gpu_id, attempt, error)

    def on_deadline(self, remaining):
        if self._deadline:
            self._deadline(remaining)


@dataclass
class _TileWork:
    tile: Tile
    attempt: int = 0
    excluded: set[int] = field(default_factory=set)


@dataclass
class DispatchReport:
    """Bookkeeping of one plan's dispatch."""

    tiles_total: int
    tiles_completed: int = 0
    tile_retries: int = 0
    deadline_hit: bool = False
    executions: list[TileExecution] = field(default_factory=list)

    @property
    def partial(self) -> bool:
        return self.tiles_completed < self.tiles_total


def execute_plan(
    plan: ExecutionPlan,
    backend: TileBackend,
    sim: GPUSimulator,
    accumulator: ProfileAccumulator | None = None,
    placement: "TilePlacement | None" = None,
    timeline: Timeline | None = None,
    observers: Sequence[TileObserver] = (),
    max_retries: int = 0,
    deadline_at: float | None = None,
    clock: Callable[[], float] = time.monotonic,
    failure_injector: Callable | None = None,
    label: str | None = None,
    flush_per_tile: bool = False,
    lock=None,
    keep_executions: bool = False,
) -> DispatchReport:
    """Run every tile of ``plan`` on ``sim`` through ``backend``.

    Tiles run in plan order (row-major), so CPU-side merges via the
    ``accumulator`` reproduce the sequential single-tile iteration order
    — the tie-breaking contract of :func:`merge_tile_outputs`.

    ``timeline`` defaults to ``sim.timeline``; pass a fresh
    :class:`~repro.gpu.stream.Timeline` for job-local accounting (the
    service does).  ``flush_per_tile`` places each tile's stream ops
    eagerly (required when several jobs share the pool); otherwise one
    event-driven flush at the end lets streams interleave maximally.
    ``failure_injector(label, tile, gpu_id, attempt)`` may raise
    :class:`TransientDeviceError` before a tile allocates anything.
    ``lock`` serialises stream bookkeeping across concurrent dispatches.
    ``keep_executions`` retains per-tile :class:`TileExecution` records
    on the report (off by default to keep big runs lean).
    """
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    timeline = timeline if timeline is not None else sim.timeline
    placement = placement if placement is not None else StaticPlacement(plan)
    lock = lock if lock is not None else nullcontext()
    tile_label = f"{label}:tile" if label else "tile"
    report = DispatchReport(tiles_total=plan.n_tiles)

    work = deque(_TileWork(tile) for tile in plan.tiles)
    while work:
        if deadline_at is not None and clock() >= deadline_at:
            # Anytime-style: merge what finished, abandon the rest.
            report.deadline_hit = True
            remaining = [w.tile for w in work]
            for obs in observers:
                obs.on_deadline(remaining)
            break
        item = work.popleft()
        gpu_id = placement.pick(item.tile, item.excluded)
        gpu = sim.gpus[gpu_id]
        for obs in observers:
            obs.on_tile_start(item.tile, gpu_id, item.attempt)
        try:
            # The injector fires *before* device allocations, so an
            # injected failure never leaks pool memory.
            if failure_injector is not None:
                failure_injector(label, item.tile, gpu_id, item.attempt)
            execution = backend.run(plan, item.tile, gpu)
        except TransientDeviceError as exc:
            if item.attempt >= max_retries:
                raise TileRetryExhaustedError(
                    item.tile.tile_id, item.attempt + 1, exc
                ) from exc
            for obs in observers:
                obs.on_tile_retry(item.tile, gpu_id, item.attempt, exc)
            item.attempt += 1
            item.excluded.add(gpu_id)
            report.tile_retries += 1
            work.append(item)  # re-queue at the back, different device
            continue
        execution.gpu_id = gpu_id
        with lock:
            stream = gpu.next_stream()
            schedule_tile_timing(
                gpu, stream, timeline, execution.timing,
                f"{tile_label}{item.tile.tile_id}",
            )
            if flush_per_tile:
                flush_streams(gpu.streams, timeline)
        if accumulator is not None:
            accumulator.add(execution)
        report.tiles_completed += 1
        if keep_executions:
            report.executions.append(execution)
        for obs in observers:
            obs.on_tile_complete(item.tile, gpu_id, execution)

    if not flush_per_tile:
        for gpu in sim.gpus:
            flush_streams(gpu.streams, timeline)
    return report
