"""Job specification and tile planning — the one place a run is described.

Before this layer existed the repo carried six copies of the same
prologue (validate the series, default the exclusion zone, build the
device layouts, partition into tiles, assign GPUs) spread over
``core.multi_tile``, ``core.single_tile``, ``service.scheduler``,
``extensions.multinode``, ``core.anytime`` and ``core.scrimp`` — and
they had drifted (``anytime`` skipped the dimension-count check the
tiled path enforced).  :class:`JobSpec` owns that prologue now:

* :meth:`JobSpec.from_arrays` — validate host series (shape, finiteness,
  dimension agreement, window length) and resolve join semantics;
* :meth:`JobSpec.from_layouts` — adopt already-prepared device layouts
  (the service path validates at submission and keeps layouts cached);
* :meth:`JobSpec.modeled` — an analytic-only problem description with no
  data at all (paper-scale projections, multi-node models);
* :meth:`JobSpec.plan` — materialise the tile list, device assignment
  and device layouts into an :class:`ExecutionPlan` that
  :func:`repro.engine.dispatch.execute_plan` can run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import RunConfig, default_exclusion_zone
from ..core.tiling import (
    Tile,
    assign_tiles,
    compute_symmetric_tile_list,
    compute_tile_list,
)
from ..kernels.layout import to_device_layout, validate_series
from ..precision.modes import PrecisionPolicy
from .precalc_cache import PrecalcPlaneCache

__all__ = ["JobSpec", "ExecutionPlan"]


@dataclass
class JobSpec:
    """A fully validated matrix profile problem.

    Carries the logical description (segment counts, dimensionality,
    window, join semantics, resolved exclusion zone) plus — depending on
    the constructor — the validated host series or prebuilt device
    layouts.  ``reference``/``query`` are ``None`` for modeled specs;
    ``query`` is also ``None`` for self-joins.
    """

    m: int
    config: RunConfig
    d: int
    n_r_seg: int
    n_q_seg: int
    self_join: bool
    exclusion_zone: int | None
    reference: np.ndarray | None = None  # validated (n, d) host series
    query: np.ndarray | None = None
    _tr_layout: np.ndarray | None = field(default=None, repr=False)
    _tq_layout: np.ndarray | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Constructors

    @classmethod
    def from_arrays(
        cls,
        reference: np.ndarray,
        query: np.ndarray | None,
        m: int,
        config: RunConfig | None = None,
    ) -> "JobSpec":
        """Validate host series and build the spec.

        ``query=None`` requests a self-join with the default exclusion
        zone (unless ``config.exclusion_zone`` overrides it).  Raises the
        canonical :class:`ValueError` family every entry point shares:
        dimension-count mismatch and window-too-long.
        """
        config = config or RunConfig()
        reference = validate_series(reference, "reference")
        self_join = query is None
        query_arr = reference if self_join else validate_series(query, "query")
        if query_arr.shape[1] != reference.shape[1]:
            raise ValueError(
                f"reference has d={reference.shape[1]} but query "
                f"d={query_arr.shape[1]}"
            )
        zone = config.exclusion_zone
        if self_join and zone is None:
            zone = default_exclusion_zone(m)
        n_r_seg = reference.shape[0] - m + 1
        n_q_seg = query_arr.shape[0] - m + 1
        if n_r_seg < 1 or n_q_seg < 1:
            raise ValueError(f"m={m} too long for the input series")
        return cls(
            m=m,
            config=config,
            d=reference.shape[1],
            n_r_seg=n_r_seg,
            n_q_seg=n_q_seg,
            self_join=self_join,
            exclusion_zone=zone,
            reference=reference,
            query=None if self_join else query_arr,
        )

    @classmethod
    def from_layouts(
        cls,
        tr_layout: np.ndarray,
        tq_layout: np.ndarray,
        m: int,
        config: RunConfig,
        exclusion_zone: int | None = None,
    ) -> "JobSpec":
        """Adopt device-layout ``(d, n)`` series already in the storage
        dtype (``tq_layout is tr_layout`` marks a self-join).  The caller
        has validated the host series; the zone is taken as given."""
        n_r_seg = tr_layout.shape[1] - m + 1
        n_q_seg = tq_layout.shape[1] - m + 1
        if n_r_seg < 1 or n_q_seg < 1:
            raise ValueError(f"m={m} too long for the input series")
        spec = cls(
            m=m,
            config=config,
            d=tr_layout.shape[0],
            n_r_seg=n_r_seg,
            n_q_seg=n_q_seg,
            self_join=tq_layout is tr_layout,
            exclusion_zone=exclusion_zone,
        )
        spec._tr_layout = tr_layout
        spec._tq_layout = tq_layout
        return spec

    @classmethod
    def modeled(
        cls,
        n_r_seg: int,
        n_q_seg: int,
        d: int,
        m: int,
        config: RunConfig | None = None,
    ) -> "JobSpec":
        """An analytic-only spec: segment counts without any data.

        Plans built from it carry no layouts; only the
        :class:`~repro.engine.backends.AnalyticBackend` can run them.
        """
        if n_r_seg < 1 or n_q_seg < 1:
            raise ValueError("need at least one segment in each direction")
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        return cls(
            m=m,
            config=config or RunConfig(),
            d=d,
            n_r_seg=n_r_seg,
            n_q_seg=n_q_seg,
            self_join=True,
            exclusion_zone=None,
        )

    # ------------------------------------------------------------------

    @property
    def policy(self) -> PrecisionPolicy:
        return self.config.policy

    @property
    def row_block(self) -> int:
        """Main-loop rows per super-step (``RunConfig.row_block``).

        Bit-exact for any value; ``run_tile`` clamps it to the tile's row
        count, so one knob serves every tile geometry of the plan.
        """
        return self.config.row_block

    def escalated(self, mode) -> "JobSpec":
        """A copy of this spec running at ``mode`` (precision escalation).

        With host series present the layouts are rebuilt from them
        (lazily); a layouts-only spec upcasts its device layouts instead
        — exact for every ladder step, since escalation only ever widens
        the storage dtype.  Modeled specs cannot escalate.
        """
        from ..precision.modes import PrecisionMode, policy_for

        mode = PrecisionMode.parse(mode)
        config = self.config.with_(mode=mode)
        spec = JobSpec(
            m=self.m,
            config=config,
            d=self.d,
            n_r_seg=self.n_r_seg,
            n_q_seg=self.n_q_seg,
            self_join=self.self_join,
            exclusion_zone=self.exclusion_zone,
            reference=self.reference,
            query=self.query,
        )
        if self.reference is None:
            if self._tr_layout is None:
                raise ValueError("a modeled JobSpec cannot be escalated")
            storage = policy_for(mode).storage
            spec._tr_layout = np.ascontiguousarray(
                self._tr_layout.astype(storage)
            )
            spec._tq_layout = (
                spec._tr_layout
                if self.self_join
                else np.ascontiguousarray(self._tq_layout.astype(storage))
            )
        return spec

    @property
    def is_modeled(self) -> bool:
        """True when the spec carries no data (analytic-only)."""
        return self.reference is None and self._tr_layout is None

    def layouts(self) -> tuple[np.ndarray, np.ndarray]:
        """The ``(d, n)`` storage-dtype device layouts (built lazily;
        ``tq is tr`` for self-joins, so diagonal tiles can share uploads).
        """
        if self._tr_layout is None:
            if self.reference is None:
                raise ValueError("a modeled JobSpec has no device layouts")
            self._tr_layout = to_device_layout(self.reference, self.policy.storage)
            self._tq_layout = (
                self._tr_layout
                if self.self_join
                else to_device_layout(self.query, self.policy.storage)
            )
        return self._tr_layout, self._tq_layout

    def tune(self, target_error: float | None = None, tuner=None):
        """Replace the config's performance knobs with planner outputs.

        Runs the roofline autotuner (:mod:`repro.autotune`) on this
        spec's shape and folds the chosen knobs back into ``config``.
        Without a ``target_error`` only the numerics-inert knobs move
        (``row_block``, ``parallel_workers``, and the tile floor the
        memory planner would force anyway); with one, the mode and
        ``precalc_strategy`` may change too, in which case any built
        layouts are re-materialised at the new storage dtype.  Returns
        the :class:`~repro.autotune.TuneDecision` for inspection.
        """
        from ..autotune import AutoTuner

        if tuner is None:
            tuner = AutoTuner(device=self.config.device)
        decision = tuner.tune_spec(self, target_error=target_error)
        chosen = decision.chosen
        changes = {
            "row_block": chosen.row_block,
            "parallel_workers": chosen.parallel_workers,
            "n_tiles": chosen.n_tiles,
        }
        if target_error is not None:
            changes["mode"] = chosen.mode
            changes["precalc_strategy"] = chosen.precalc_strategy
            # The main-loop backend is numerics-visible (the tensor-core
            # path accumulates in FP32), so like the mode it only moves
            # under an explicit error budget.
            changes["backend"] = getattr(chosen, "backend", "numeric")
        new_config = self.config.with_(**changes)
        if new_config.mode != self.config.mode:
            from ..precision.modes import policy_for

            if self.reference is not None:
                # Host series present: drop the layouts so they rebuild
                # lazily at the new storage dtype.
                self._tr_layout = self._tq_layout = None
            elif self._tr_layout is not None:
                storage = policy_for(new_config.mode).storage
                self._tr_layout = np.ascontiguousarray(
                    self._tr_layout.astype(storage)
                )
                self._tq_layout = (
                    self._tr_layout
                    if self.self_join
                    else np.ascontiguousarray(self._tq_layout.astype(storage))
                )
        self.config = new_config
        return decision

    def plan(
        self,
        n_tiles: int | None = None,
        n_gpus: int | None = None,
        tiles: list[Tile] | None = None,
        assignment: list[int] | None = None,
        precalc_store=None,
        auto: bool = False,
        target_error: float | None = None,
        tuner=None,
    ) -> "ExecutionPlan":
        """Materialise the execution plan.

        ``n_tiles``/``n_gpus`` default to the config's values.  ``tiles``
        overrides the computed tile list (the multi-node model plans one
        node's subset); ``assignment`` overrides the static round-robin
        device assignment (pass ``None`` with ``static=False`` semantics
        by giving the dispatcher a placement policy instead).
        ``precalc_store`` is an optional cross-job stats store (the
        service's content-addressed cache) handed to the plan's
        :class:`~repro.engine.precalc_cache.PrecalcPlaneCache`; the
        cache itself is created empty and populates lazily on the first
        numeric tile execution, so planning stays cheap.

        ``auto=True`` runs :meth:`tune` first (optionally with a
        ``target_error`` budget and/or a reusable ``tuner``), so the
        materialised plan carries planner-chosen knobs instead of the
        constructor defaults.
        """
        if auto or target_error is not None:
            self.tune(target_error=target_error, tuner=tuner)
        if self.config.symmetric_tiles and not self.self_join:
            raise ValueError(
                "symmetric_tiles exploits self-join symmetry "
                "(D(i, j) = D(j, i)); AB-joins have no mirrored twin"
            )
        if tiles is None:
            n_tiles = n_tiles if n_tiles is not None else self.config.n_tiles
            if self.config.symmetric_tiles:
                tiles = compute_symmetric_tile_list(self.n_r_seg, n_tiles)
            else:
                tiles = compute_tile_list(self.n_r_seg, self.n_q_seg, n_tiles)
        if assignment is None:
            n_gpus = n_gpus if n_gpus is not None else self.config.n_gpus
            assignment = assign_tiles(tiles, n_gpus)
        tr_layout = tq_layout = None
        precalc_cache = None
        if not self.is_modeled:
            tr_layout, tq_layout = self.layouts()
            if self.config.amortize_precalc:
                precalc_cache = PrecalcPlaneCache(
                    store=precalc_store, base_mode=self.config.mode
                )
        return ExecutionPlan(
            spec=self,
            tiles=tiles,
            assignment=assignment,
            tr_layout=tr_layout,
            tq_layout=tq_layout,
            precalc_cache=precalc_cache,
        )


@dataclass
class ExecutionPlan:
    """A :class:`JobSpec` resolved into runnable tiles.

    ``assignment`` is the *static* tile→GPU map (Pseudocode 2's
    round-robin); the dispatcher may override it with a dynamic
    placement policy (the service does, for retry-with-exclusion).
    ``tr_layout``/``tq_layout`` are ``None`` for modeled plans.
    """

    spec: JobSpec
    tiles: list[Tile]
    assignment: list[int]
    tr_layout: np.ndarray | None = None
    tq_layout: np.ndarray | None = None
    #: Plan-level amortised precalculation (None for modeled plans or
    #: when ``config.amortize_precalc`` is off); escalated plans share
    #: their parent's instance so escalation populates new mode planes
    #: in the same cache.
    precalc_cache: "PrecalcPlaneCache | None" = None
    _escalated: dict = field(default_factory=dict, repr=False)

    @property
    def n_tiles(self) -> int:
        return len(self.tiles)

    @property
    def row_block(self) -> int:
        """Main-loop rows per super-step, as threaded into the backend."""
        return self.spec.row_block

    def static_gpu_of(self, tile: Tile) -> int:
        """The statically assigned GPU of ``tile`` (by position)."""
        return self.assignment[self.tiles.index(tile)]

    def escalated(self, mode) -> "ExecutionPlan":
        """This plan with its spec escalated to ``mode`` (cached).

        Same tiles, same assignment — only the precision (and therefore
        the layouts) changes, so an escalated tile re-executes on exactly
        the geometry it failed on.
        """
        from ..precision.modes import PrecisionMode

        mode = PrecisionMode.parse(mode)
        if mode == PrecisionMode.parse(self.spec.config.mode):
            return self
        cached = self._escalated.get(mode)
        if cached is None:
            spec = self.spec.escalated(mode)
            tr, tq = (None, None) if spec.is_modeled else spec.layouts()
            cached = ExecutionPlan(
                spec=spec,
                tiles=self.tiles,
                assignment=self.assignment,
                tr_layout=tr,
                tq_layout=tq,
                precalc_cache=self.precalc_cache,
            )
            self._escalated[mode] = cached
        return cached
