"""Plan-level amortisation of the precalculation kernel.

The tiling scheme restarts ``precalculation`` per tile to bound error
propagation (Section IV) — but only the *seed* QT dot products carry
that role.  The windowed means ``mu``, inverse norms ``inv`` and the
streaming coefficients ``df``/``dg`` are strictly window-local: each
output element is a function of its own ``m`` samples, so a tile's
planes are elementwise slices of the full-series planes, bit for bit.
:class:`PrecalcPlaneCache` exploits that:

* the full-series planes are computed **once per (series role,
  precision mode)** with the exact per-window ``_Accumulator``
  semantics of :mod:`repro.kernels.precalc` (including the Kahan FP16C
  path), then every tile receives zero-copy ``mu``/``inv`` slices and
  ``df``/``dg`` slice-copies with the tile-local ``df[0] = dg[0] = 0``
  restored;
* the per-tile seeds ``qt_row0``/``qt_col0`` stay per-tile semantically
  (the error-containment argument is untouched: each is still the naive
  centred dot of that tile's first row/column band) but all tiles
  sharing a band are evaluated in one vectorised
  :func:`~repro.kernels.precalc.seed_qt_rows` pass over the full other
  series, then sliced per tile — bit-identical because every ufunc in
  the accumulation chain is elementwise;
* with ``precalc_strategy="fft"`` (opt-in, FP64/FP32 only) the seeds
  come from the MASS-style FFT correlation instead — O(n log n) but not
  bit-identical, validated against the ``precision/errors.py`` bound.

Population is *lazy*: building the cache at plan time costs nothing, the
planes and seeds materialise on the first :meth:`prepare` call (plans
built for analytic modelling or the anytime paths never pay).  Precision
escalation lands here naturally — an escalated plan shares the cache
object and the first escalated tile populates that mode's planes on
demand.  All state is guarded by one re-entrant lock, so parallel tile
workers share a single plane build.

Cost accounting stays honest: each tile is charged only its seed-dot
work (:func:`~repro.kernels.precalc.seed_cost`); the one-off plane pass
(:func:`~repro.kernels.precalc.plane_cost` over the full series — both
roles, matching the historical per-tile formula) is carried by exactly
one deterministic tile per mode, so serial, parallel and resumed runs
agree bit-for-bit:

* base mode: the tile with the smallest planned ``tile_id`` claims the
  charge every time it executes (idempotent across retries — discarded
  attempts discard their costs too);
* escalated modes: the first tile to build the planes claims it.

If a fault path permanently discards the claiming attempt (escalation
away from the charged mode, an OOM split of the carrier), the plane
charge vanishes from the aggregates with it — consistent with how every
other cost of a discarded attempt is dropped.

A cross-job ``store`` (the service's content-addressed stats cache) can
be plugged in: entries are keyed on the series-layout digest plus shape,
dtype, ``m`` and mode, and hold the stats planes only (seeds depend on
the tiling).  The planes are strategy-independent, so jobs differing
only in ``precalc_strategy`` share them — by design.  A store hit skips
the plane pass entirely and nobody carries the charge.
"""

from __future__ import annotations

import hashlib
import threading

from ..gpu.kernel import KernelCost
from ..kernels.precalc import (
    PrecalcResult,
    PreparedPrecalc,
    _delta_coefficients,
    _window_stats,
    fft_seed_qt_rows,
    plane_cost,
    seed_cost,
    seed_qt_rows,
)
from ..precision.modes import PrecisionMode

__all__ = ["PrecalcPlaneCache"]


class _ModePlanes:
    """One precision mode's full-series planes and per-band seeds."""

    __slots__ = (
        "tr_pd",
        "tq_pd",
        "r",
        "q",
        "row_seeds",
        "col_seeds",
        "charge",
        "charge_claimed",
    )

    def __init__(self, tr_pd, tq_pd, r, q, charge):
        self.tr_pd = tr_pd
        self.tq_pd = tq_pd  # aliases tr_pd for self-joins
        self.r = r  # role entry: mu_pd + storage-dtype mu/inv/df/dg
        self.q = q  # the same entry object for self-joins
        self.row_seeds: dict = {}  # band start -> (d, n_q_seg) storage seeds
        # One dict serves both directions on self-joins: the row seed of
        # band s and the col seed of band s are the same function of the
        # same inputs there.
        self.col_seeds: dict = self.row_seeds if q is r else {}
        self.charge: KernelCost | None = charge  # None when served from store
        self.charge_claimed = False


class PrecalcPlaneCache:
    """Shares window-statistics planes and batched seeds across a plan's
    tiles (and, through ``store``, across jobs on the same series).

    Attach one instance per :class:`~repro.engine.plan.ExecutionPlan`
    (done by ``JobSpec.plan``); escalated plans share their parent's
    instance.  ``store`` is any mapping-like object with ``get(key)`` /
    ``put(key, entry)`` — the service provides its
    :class:`~repro.service.cache.PrecalcStatsCache`.
    """

    def __init__(self, store=None, base_mode=PrecisionMode.FP64):
        self._store = store
        self._base_mode = PrecisionMode.parse(base_mode)
        self._planes: dict = {}
        self._lock = threading.RLock()

    @property
    def modes_built(self) -> tuple:
        """Precision modes whose planes have materialised (tests/metrics)."""
        with self._lock:
            return tuple(self._planes)

    # ------------------------------------------------------------------

    def prepare(self, plan, tile) -> PreparedPrecalc:
        """Assemble ``tile``'s precalculation from the cached planes.

        Returns a :class:`~repro.kernels.precalc.PreparedPrecalc` whose
        ``result`` is bit-identical to ``PrecalcKernel.run`` on the
        tile's device slices (for the default ``"exact"`` strategy),
        whose ``cost`` charges the tile's seed work plus — for the
        designated carrier — the one-off plane pass, and whose
        ``saved_flops`` records the plane work this tile did not redo.
        """
        spec = plan.spec
        policy = spec.policy
        m = spec.m
        mode = PrecisionMode.parse(spec.config.mode)
        with self._lock:
            planes = self._planes.get(mode)
            if planes is None:
                planes = self._build_planes(plan)
                self._planes[mode] = planes
            self._ensure_seeds(planes, plan, tile)

            claimed = False
            if planes.charge is not None:
                if mode == self._base_mode:
                    claimed = tile.tile_id == min(
                        t.tile_id for t in plan.tiles
                    )
                elif not planes.charge_claimed:
                    planes.charge_claimed = True
                    claimed = True

            r0, r1 = tile.row_start, tile.row_stop
            c0, c1 = tile.col_start, tile.col_stop
            # df/dg need the tile-boundary fixup (each tile's streaming
            # recurrence starts fresh at its own row/col 0), so those
            # slices are copies; mu/inv are served zero-copy.
            df_r = planes.r["df"][:, r0:r1].copy()
            dg_r = planes.r["dg"][:, r0:r1].copy()
            df_r[:, 0] = 0
            dg_r[:, 0] = 0
            df_q = planes.q["df"][:, c0:c1].copy()
            dg_q = planes.q["dg"][:, c0:c1].copy()
            df_q[:, 0] = 0
            dg_q[:, 0] = 0
            result = PrecalcResult(
                m=m,
                mu_r=planes.r["mu"][:, r0:r1],
                inv_r=planes.r["inv"][:, r0:r1],
                df_r=df_r,
                dg_r=dg_r,
                mu_q=planes.q["mu"][:, c0:c1],
                inv_q=planes.q["inv"][:, c0:c1],
                df_q=df_q,
                dg_q=dg_q,
                qt_row0=planes.row_seeds[r0][:, c0:c1],
                qt_col0=planes.col_seeds[c0][:, r0:r1],
            )
            cost = seed_cost(
                tile.n_rows,
                tile.n_cols,
                spec.d,
                m,
                tile.n_rows + m - 1,
                tile.n_cols + m - 1,
                policy,
                spec.config.launch,
            )
            saved = plane_cost(tile.n_rows, tile.n_cols, spec.d, policy).flops
            if claimed:
                cost = cost + planes.charge
                saved -= planes.charge.flops
            return PreparedPrecalc(result=result, cost=cost, saved_flops=saved)

    # ------------------------------------------------------------------

    def _store_key(self, layout, spec):
        digest = hashlib.sha256(layout.tobytes()).hexdigest()
        mode = PrecisionMode.parse(spec.config.mode)
        return (digest, layout.shape, str(layout.dtype), spec.m, mode.value)

    @staticmethod
    def _build_role(series_pd, m, policy, pdtype, sdtype) -> dict:
        """One series role's planes, exactly as ``PrecalcKernel.run``
        computes them over the full series."""
        mu_pd, inv_pd = _window_stats(series_pd, m, policy)
        df_pd, dg_pd = _delta_coefficients(series_pd, mu_pd, m, pdtype)
        return {
            "mu_pd": mu_pd,  # precalc-dtype mean plane: seed-dot input
            "mu": mu_pd.astype(sdtype),
            "inv": inv_pd.astype(sdtype),
            "df": df_pd.astype(sdtype),
            "dg": dg_pd.astype(sdtype),
        }

    def _build_planes(self, plan) -> _ModePlanes:
        spec = plan.spec
        policy = spec.policy
        m = spec.m
        pdtype = policy.precalc
        sdtype = policy.storage
        self_join = plan.tq_layout is plan.tr_layout
        tr_pd = plan.tr_layout.astype(pdtype, copy=False)
        tq_pd = tr_pd if self_join else plan.tq_layout.astype(pdtype, copy=False)

        def fetch(layout, series_pd):
            key = self._store_key(layout, spec) if self._store is not None else None
            entry = self._store.get(key) if self._store is not None else None
            if entry is not None:
                return entry, False
            entry = self._build_role(series_pd, m, policy, pdtype, sdtype)
            if self._store is not None:
                self._store.put(key, entry)
            return entry, True

        r_entry, miss_r = fetch(plan.tr_layout, tr_pd)
        if self_join:
            q_entry, miss_q = r_entry, miss_r
        else:
            q_entry, miss_q = fetch(plan.tq_layout, tq_pd)

        # Historical per-tile accounting charges both roles even on
        # self-joins (where one pass serves both); keep that so a
        # single-tile plan reproduces the old precalc cost exactly.
        if self_join:
            charge = (
                plane_cost(spec.n_r_seg, spec.n_q_seg, spec.d, policy)
                if miss_r
                else None
            )
        elif miss_r or miss_q:
            charge = plane_cost(
                spec.n_r_seg if miss_r else 0,
                spec.n_q_seg if miss_q else 0,
                spec.d,
                policy,
            )
        else:
            charge = None
        return _ModePlanes(tr_pd, tq_pd, r_entry, q_entry, charge)

    def _ensure_seeds(self, planes: _ModePlanes, plan, tile) -> None:
        """Batch-compute any seed bands the plan (or this tile — OOM
        splits create mid-band starts after planning) still needs."""
        spec = plan.spec
        policy = spec.policy
        m = spec.m
        sdtype = policy.storage
        strategy = getattr(spec.config, "precalc_strategy", "exact")
        seeds_fn = fft_seed_qt_rows if strategy == "fft" else seed_qt_rows

        row_needed = {t.row_start for t in plan.tiles}
        row_needed.add(tile.row_start)
        col_needed = {t.col_start for t in plan.tiles}
        col_needed.add(tile.col_start)
        if planes.col_seeds is planes.row_seeds:  # self-join: one direction
            row_needed |= col_needed
            col_needed = set()

        rows_missing = sorted(row_needed - planes.row_seeds.keys())
        if rows_missing:
            batch = seeds_fn(
                planes.tr_pd,
                rows_missing,
                planes.tq_pd,
                planes.r["mu_pd"],
                planes.q["mu_pd"],
                m,
                policy,
            ).astype(sdtype)
            for i, s in enumerate(rows_missing):
                planes.row_seeds[s] = batch[i]
        cols_missing = sorted(col_needed - planes.col_seeds.keys())
        if cols_missing:
            batch = seeds_fn(
                planes.tq_pd,
                cols_missing,
                planes.tr_pd,
                planes.q["mu_pd"],
                planes.r["mu_pd"],
                m,
                policy,
            ).astype(sdtype)
            for i, s in enumerate(cols_missing):
                planes.col_seeds[s] = batch[i]
