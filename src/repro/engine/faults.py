"""Deterministic fault injection: every recovery path exercisable in CI.

A :class:`FaultPlan` decides per (tile, attempt) whether to inject a
failure, using counter-based draws — each decision hashes
``(seed, kind, tile geometry, attempt)`` — so the same seed reproduces
the same storm regardless of dispatch order, placement policy, or how a
split renumbers tile ids (geometry, not id, keys the draw).  Four fault
kinds, matching the hazards the engine must survive:

* **transient** — :class:`~repro.engine.dispatch.TransientDeviceError`
  raised before the tile allocates anything (the retry path);
* **oom** — :class:`~repro.gpu.memory.DeviceOutOfMemoryError` (the
  tile-split path when ``oom_split`` is on, re-plan otherwise);
* **corrupt** — NaN / +inf / negative values written into the tile's
  distance plane after execution (the health-check + escalation path;
  the mix matters: NaN and +inf would be *silently dropped* by the
  strict-``<`` merge, negatives would *poison* it — health checks must
  catch both classes);
* **sick GPU** — a device in ``sick_gpus`` fails every tile, every
  attempt (the route-around-a-device path; needs a placement with
  exclusion, i.e. round-robin).

Wire a plan into a dispatch with ``failure_injector=plan.injector`` and
``corruptor=plan.corruptor`` (or pass ``fault_plan=`` to
:func:`repro.core.multi_tile.compute_multi_tile` /
:class:`repro.service.MatrixProfileService`).  Injected events are
recorded on :attr:`FaultPlan.events` for assertions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..gpu.memory import DeviceOutOfMemoryError
from .dispatch import TransientDeviceError

__all__ = ["FaultEvent", "FaultPlan", "seeded_uniform"]


def seeded_uniform(seed: int, kind: str, key: object, attempt: int = 0) -> float:
    """Counter-based uniform draw in [0, 1) from ``(seed, kind, key, attempt)``.

    The shared primitive behind every deterministic schedule in the repo:
    :class:`FaultPlan` tile storms, :class:`~repro.core.config.RetryPolicy`
    jitter, and :class:`~repro.cluster.NodeFaultPlan` node storms.  Same
    inputs => same draw, independent of call order or process.
    """
    token = f"{seed}:{kind}:{key}:{attempt}"
    digest = hashlib.sha256(token.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64

#: Values the corruptor writes, cycled: silent-loss (NaN, +inf — strict-<
#: merge would drop them) and merge-poisoning (negative wins every min).
_CORRUPT_VALUES = (np.nan, np.inf, -1.0)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for post-run assertions."""

    kind: str  # "transient" | "oom" | "corrupt" | "sick"
    tile_id: int
    tile_key: tuple[int, int, int, int]  # row/col geometry (split-stable)
    gpu_id: int
    attempt: int


class FaultPlan:
    """Seedable per-tile fault schedule.

    Parameters
    ----------
    seed:
        Base of every hashed draw; same seed => same storm.
    transient_rate, oom_rate, corrupt_rate:
        Per-tile probabilities in [0, 1] for each fault kind.
    sick_gpus:
        Device ids that fail *every* tile on *every* attempt.
    first_attempt_only:
        Inject transient/OOM/corruption only on ``attempt == 0`` (the
        default), so retries converge; sick GPUs stay sick regardless.
    """

    def __init__(
        self,
        seed: int = 0,
        transient_rate: float = 0.0,
        oom_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        sick_gpus: "tuple[int, ...] | frozenset[int]" = (),
        first_attempt_only: bool = True,
        corrupt_count: int = 3,
    ):
        for name, rate in (
            ("transient_rate", transient_rate),
            ("oom_rate", oom_rate),
            ("corrupt_rate", corrupt_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if corrupt_count < 1:
            raise ValueError(f"corrupt_count must be >= 1, got {corrupt_count}")
        self.seed = seed
        self.transient_rate = transient_rate
        self.oom_rate = oom_rate
        self.corrupt_rate = corrupt_rate
        self.sick_gpus = frozenset(sick_gpus)
        self.first_attempt_only = first_attempt_only
        self.corrupt_count = corrupt_count
        self.events: list[FaultEvent] = []

    # ------------------------------------------------------------------

    @staticmethod
    def _key(tile) -> tuple[int, int, int, int]:
        return (tile.row_start, tile.row_stop, tile.col_start, tile.col_stop)

    def _draw(self, kind: str, tile, attempt: int) -> float:
        """Deterministic uniform in [0, 1) for one (kind, tile, attempt)."""
        return seeded_uniform(self.seed, kind, self._key(tile), attempt)

    def _record(self, kind: str, tile, gpu_id: int, attempt: int) -> None:
        self.events.append(
            FaultEvent(kind, tile.tile_id, self._key(tile), gpu_id, attempt)
        )

    def event_counts(self) -> dict[str, int]:
        """Injected events by kind (empty kinds omitted)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def corrupted_tile_keys(self) -> set[tuple[int, int, int, int]]:
        """Geometry keys of every tile whose output was corrupted."""
        return {e.tile_key for e in self.events if e.kind == "corrupt"}

    def _inside_oomed(self, tile) -> bool:
        """True for a tile strictly contained in an already-OOMed one.

        Injected OOM models *capacity*, not bad luck: a split child
        covers less area than its OOMed parent, so it allocates less and
        must succeed — otherwise the split recovery could never
        terminate (every split would draw four fresh OOM chances).
        """
        r0, r1, c0, c1 = self._key(tile)
        for event in self.events:
            if event.kind != "oom":
                continue
            er0, er1, ec0, ec1 = event.tile_key
            contained = er0 <= r0 and r1 <= er1 and ec0 <= c0 and c1 <= ec1
            if contained and (r0, r1, c0, c1) != event.tile_key:
                return True
        return False

    # ------------------------------------------------------------------
    # The two dispatch hooks

    def injector(self, label, tile, gpu_id: int, attempt: int) -> None:
        """``failure_injector`` hook: fires before any device allocation."""
        if gpu_id in self.sick_gpus:
            self._record("sick", tile, gpu_id, attempt)
            raise TransientDeviceError(f"injected sick GPU {gpu_id}")
        if self.first_attempt_only and attempt > 0:
            return
        if self._draw("transient", tile, attempt) < self.transient_rate:
            self._record("transient", tile, gpu_id, attempt)
            raise TransientDeviceError(
                f"injected transient fault on tile {tile.tile_id}"
            )
        if (
            self._draw("oom", tile, attempt) < self.oom_rate
            and not self._inside_oomed(tile)
        ):
            self._record("oom", tile, gpu_id, attempt)
            raise DeviceOutOfMemoryError(0, 0, f"gpu{gpu_id} (injected)")

    def corruptor(self, label, tile, gpu_id: int, attempt: int, output) -> None:
        """``corruptor`` hook: may scribble over the tile's distance plane.

        The dispatcher only calls this for executions at the plan's base
        mode — the escalated re-execution is the *recovery* and stays
        clean, so every corrupted tile converges up the ladder.
        """
        if self.first_attempt_only and attempt > 0:
            return
        if self._draw("corrupt", tile, attempt) >= self.corrupt_rate:
            return
        # Only entries holding a real match (index >= 0) are corrupted:
        # saturated limit-valued columns are invisible to health checks.
        d_idx, c_idx = np.nonzero(output.indices >= 0)
        if d_idx.size == 0:
            return
        self._record("corrupt", tile, gpu_id, attempt)
        n = min(self.corrupt_count, d_idx.size)
        # Deterministic positions: spread evenly over the valid entries.
        picks = np.linspace(0, d_idx.size - 1, n).astype(np.int64)
        for j, p in enumerate(picks):
            output.profile[d_idx[p], c_idx[p]] = _CORRUPT_VALUES[
                j % len(_CORRUPT_VALUES)
            ]
