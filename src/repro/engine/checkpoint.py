"""Checkpoint/resume: a tile journal + accumulator snapshots.

Long mining runs (the paper's n=2^18 genome study) used to restart from
zero when killed.  A :class:`RunJournal` makes a multi-tile dispatch
resumable: :func:`~repro.engine.dispatch.execute_plan` records every
completed tile into it, and :func:`resume_plan` rebuilds the spec/plan
from the journal, restores the accumulator, and re-dispatches *only* the
tiles the journal does not hold — producing a profile bit-identical to
an uninterrupted run.

Journal directory layout::

    meta.json   -- format version, m, RunConfig.to_dict(), resolved
                   exclusion zone, tile list + static assignment
    series.npz  -- the validated host series (reference [+ query])
    state.npz   -- accumulator snapshot after the last journaled tile
                   (profile, index, counters, aggregated kernel costs)
    tiles.log   -- one JSON line per completed tile: geometry + the
                   precision mode it finally executed at

Crash-window safety: :meth:`RunJournal.record` writes ``state.npz``
first (tmp + atomic rename), *then* appends the ``tiles.log`` line.  A
crash between the two leaves a state snapshot that already contains the
in-flight tile but no log line for it — so resume re-executes and
re-merges that one tile.  The strict-``<`` min/argmin merge is
idempotent under an identical repeated merge, so the resumed profile is
still bit-identical.

Tiles are keyed by *geometry* (row/col segment ranges), not tile id:
OOM splits renumber tiles, and geometry is what makes a journaled output
reusable.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from ..core.config import RunConfig
from ..core.result import MatrixProfileResult
from ..core.tiling import Tile
from ..gpu.simulator import GPUSimulator
from ..precision.modes import PrecisionMode
from .accumulate import ProfileAccumulator
from .backends import NumericBackend
from .plan import ExecutionPlan, JobSpec

__all__ = ["RunJournal", "resume_plan", "tile_key"]

JOURNAL_VERSION = 1


def tile_key(tile: Tile) -> tuple[int, int, int, int]:
    """A tile's geometry key (split-stable; ids are not)."""
    return (tile.row_start, tile.row_stop, tile.col_start, tile.col_stop)


class RunJournal:
    """On-disk journal of one multi-tile run (see the module docstring)."""

    def __init__(self, path: "str | Path"):
        self.path = Path(path)
        self.meta_path = self.path / "meta.json"
        self.series_path = self.path / "series.npz"
        self.state_path = self.path / "state.npz"
        self.log_path = self.path / "tiles.log"

    # ------------------------------------------------------------------
    # Creation / opening

    @classmethod
    def create(
        cls,
        path: "str | Path",
        spec: JobSpec,
        plan: ExecutionPlan,
        extra: dict | None = None,
    ) -> "RunJournal":
        """Start a fresh journal for ``plan`` (refuses an existing one).

        ``extra`` is an optional JSON-serialisable dict stored verbatim
        under ``meta["extra"]`` — higher tiers (the cluster dispatcher)
        stash their own context (e.g. the :class:`ClusterSpec`) there so
        a coordinator crash can resume with the same sharding.
        """
        if spec.reference is None:
            raise ValueError(
                "journaling needs host series (JobSpec.from_arrays); "
                "layout-only and modeled specs cannot be journaled"
            )
        journal = cls(path)
        if journal.meta_path.exists():
            raise FileExistsError(
                f"journal already exists at {journal.path}; use "
                f"resume_plan() to continue it or choose a fresh path"
            )
        journal.path.mkdir(parents=True, exist_ok=True)
        meta = {
            "version": JOURNAL_VERSION,
            "m": spec.m,
            "config": spec.config.to_dict(),
            "exclusion_zone": spec.exclusion_zone,
            "self_join": spec.self_join,
            "tiles": [
                # mirror rides as a 6th element; rebuild() tolerates the
                # 5-element rows of journals written before it existed.
                [t.tile_id, t.row_start, t.row_stop, t.col_start, t.col_stop,
                 bool(getattr(t, "mirror", False))]
                for t in plan.tiles
            ],
            "assignment": list(plan.assignment),
        }
        if extra is not None:
            meta["extra"] = extra
        arrays = {"reference": spec.reference}
        if spec.query is not None:
            arrays["query"] = spec.query
        np.savez_compressed(journal.series_path, **arrays)
        journal.meta_path.write_text(json.dumps(meta))
        return journal

    @classmethod
    def open(cls, path: "str | Path") -> "RunJournal":
        """Open an existing journal, validating its format version."""
        journal = cls(path)
        if not journal.meta_path.exists():
            raise FileNotFoundError(f"no journal at {journal.path}")
        meta = journal.meta()
        if meta.get("version") != JOURNAL_VERSION:
            raise ValueError(
                f"unsupported journal version {meta.get('version')!r}"
            )
        return journal

    def meta(self) -> dict:
        return json.loads(self.meta_path.read_text())

    def extra(self) -> dict:
        """The creator-supplied ``extra`` metadata ({} when absent)."""
        return self.meta().get("extra", {})

    # ------------------------------------------------------------------
    # The dispatch-facing protocol

    key = staticmethod(tile_key)

    def completed_records(self) -> list[dict]:
        """The journaled tile lines, in completion order."""
        if not self.log_path.exists():
            return []
        return [
            json.loads(line)
            for line in self.log_path.read_text().splitlines()
            if line.strip()
        ]

    def completed_keys(self) -> set[tuple[int, int, int, int]]:
        """Geometry keys of every journaled tile."""
        return {
            (r["row_start"], r["row_stop"], r["col_start"], r["col_stop"])
            for r in self.completed_records()
        }

    def record(self, execution, accumulator: ProfileAccumulator) -> None:
        """Journal one completed tile: state snapshot, then log line."""
        from ..io import _costs_to_records

        state = accumulator.state_arrays()
        costs_json = json.dumps(_costs_to_records(accumulator.costs))
        tmp = self.state_path.with_suffix(".tmp.npz")
        np.savez(
            tmp,
            costs=np.frombuffer(costs_json.encode(), dtype=np.uint8),
            **state,
        )
        os.replace(tmp, self.state_path)
        tile = execution.tile
        line = {
            "tile_id": tile.tile_id,
            "row_start": tile.row_start,
            "row_stop": tile.row_stop,
            "col_start": tile.col_start,
            "col_stop": tile.col_stop,
            "mode": execution.mode.value if execution.mode is not None else None,
        }
        with self.log_path.open("a") as fh:
            fh.write(json.dumps(line) + "\n")

    # ------------------------------------------------------------------
    # Resume

    def restore(self, accumulator: ProfileAccumulator) -> None:
        """Load the journaled snapshot into ``accumulator`` (no-op when
        the run died before its first tile completed)."""
        from ..io import _costs_from_records

        if not self.state_path.exists():
            return
        with np.load(self.state_path) as data:
            costs = _costs_from_records(
                json.loads(bytes(data["costs"].tobytes()).decode())
            )
            accumulator.restore_state(
                profile=data["profile"],
                index=data["index"],
                merge_elements=int(data["merge_elements"]),
                h2d_saved_bytes=float(data["h2d_saved_bytes"]),
                costs=costs,
                # Absent in journals written before the amortisation layer.
                precalc_saved_flops=(
                    float(data["precalc_saved_flops"])
                    if "precalc_saved_flops" in data.files
                    else 0.0
                ),
            )

    def rebuild(self) -> tuple[JobSpec, ExecutionPlan]:
        """Reconstruct the spec and plan the journal was created for."""
        meta = self.meta()
        config = RunConfig.from_dict(meta["config"])
        with np.load(self.series_path) as data:
            reference = data["reference"]
            query = data["query"] if "query" in data.files else None
        spec = JobSpec.from_arrays(reference, query, int(meta["m"]), config)
        spec.exclusion_zone = meta["exclusion_zone"]
        tiles = [
            Tile(*row[:5], mirror=bool(row[5]) if len(row) > 5 else False)
            for row in meta["tiles"]
        ]
        plan = spec.plan(tiles=tiles, assignment=list(meta["assignment"]))
        return spec, plan


def resume_plan(
    path: "str | Path",
    observers=(),
    max_retries: int = 0,
    health=None,
    fault_plan=None,
    oom_split: bool = False,
    failure_injector=None,
    corruptor=None,
) -> MatrixProfileResult:
    """Continue a journaled run, recomputing zero journaled tiles.

    Rebuilds the spec/plan from the journal, restores the accumulator
    snapshot, and dispatches only the missing tiles (journaling them as
    they complete, so resume itself is resumable).  The returned profile,
    index, costs and merge time are bit-identical to an uninterrupted
    run; the timeline covers only the resumed portion.
    """
    from .dispatch import RoundRobinPlacement, execute_plan

    journal = RunJournal.open(path)
    spec, plan = journal.rebuild()
    config = spec.config
    if fault_plan is not None:
        failure_injector = failure_injector or fault_plan.injector
        corruptor = corruptor or fault_plan.corruptor
    # Retries need a placement that can move a tile off the failing GPU
    # (mirrors compute_multi_tile; the journaled static assignment is
    # only a preference, not part of the numerical contract).
    placement = RoundRobinPlacement(config.n_gpus) if max_retries > 0 else None
    sim = GPUSimulator(config.device, config.n_gpus, config.n_streams)
    accumulator = ProfileAccumulator(spec.d, spec.n_q_seg, spec.policy)
    journal.restore(accumulator)
    base_mode = PrecisionMode.parse(config.mode)
    # Escalations the interrupted run already journaled.
    escalations = {
        r["tile_id"]: PrecisionMode.parse(r["mode"])
        for r in journal.completed_records()
        if r["mode"] is not None and PrecisionMode.parse(r["mode"]) != base_mode
    }
    report = execute_plan(
        plan,
        NumericBackend(discount_shared_h2d=True),
        sim,
        accumulator=accumulator,
        placement=placement,
        observers=observers,
        max_retries=max_retries,
        health=health,
        oom_split=oom_split,
        failure_injector=failure_injector,
        corruptor=corruptor,
        journal=journal,
    )
    escalations.update(report.escalations)
    return MatrixProfileResult(
        profile=accumulator.host_profile(),
        index=accumulator.host_index(),
        mode=spec.policy.mode,
        m=spec.m,
        n_tiles=report.tiles_total,
        n_gpus=config.n_gpus,
        timeline=sim.timeline,
        merge_time=accumulator.merge_time(report.tiles_total),
        costs=accumulator.costs,
        h2d_saved_bytes=accumulator.h2d_saved_bytes,
        precalc_saved_flops=accumulator.precalc_saved_flops,
        escalations=escalations,
        split_tiles=dict(report.splits),
        resumed_tiles=report.tiles_restored,
    )
