"""Per-tile numerical health: output validation, risk scoring, escalation.

The paper's error analysis (Section V-B) is *offline*: bounds computed
before a run tell you which precision is safe for which tile size.  This
module turns those bounds into runtime guarantees.  Two mechanisms:

* **output validation** — :func:`check_tile_output` inspects a tile's
  distance plane after execution: NaN/Inf entries, negative distances,
  and distances whose implied correlation (Eq. 1 inverted,
  :func:`repro.precision.errors.implied_correlation`) falls outside
  ``[-1 - tol, 1 + tol]`` are all impossible for genuine data and mark
  the tile as numerically sick;
* **pre-flight risk scoring** — :func:`preflight_tile_risk` applies the
  Section V-B diagnostics (:func:`overflow_risk_fraction`,
  :func:`flat_region_fraction`, :func:`streaming_qt_error_bound`) to a
  tile's own data slice *before* dispatch, so overflow-doomed FP16 tiles
  can start at a wider mode instead of failing first.

A sick tile is re-executed up the **escalation ladder**

    FP16 -> Mixed -> FP32 -> FP64

— the exact inverse of the service's shedding ladder
(:data:`repro.service.admission.DOWNGRADE_LADDER`), with FP16C entering
at the Mixed rung (it already widens the precalculation, so the next
meaningful step is FP32).  :class:`HealthPolicy` bundles the knobs the
dispatcher consumes; everything defaults to *off* so the happy path
stays bit-identical to the golden parity suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..precision.errors import (
    flat_region_fraction,
    implied_correlation,
    overflow_risk_fraction,
    streaming_qt_error_bound,
)
from ..precision.modes import PrecisionMode

__all__ = [
    "ESCALATION_LADDER",
    "escalation_next",
    "check_tile_output",
    "HealthPolicy",
    "TileHealthError",
    "TileRisk",
    "preflight_tile_risk",
]

#: The recovery ladder, fastest/least-accurate first — the inverse of the
#: service's :data:`~repro.service.admission.DOWNGRADE_LADDER`.
ESCALATION_LADDER: tuple[PrecisionMode, ...] = (
    PrecisionMode.FP16,
    PrecisionMode.MIXED,
    PrecisionMode.FP32,
    PrecisionMode.FP64,
)

#: Next rung per mode; FP16C already widens the precalculation, so its
#: next meaningful step is FP32 (same as Mixed).  FP64 has nowhere to go.
_NEXT_MODE: dict[PrecisionMode, PrecisionMode | None] = {
    PrecisionMode.FP16: PrecisionMode.MIXED,
    PrecisionMode.MIXED: PrecisionMode.FP32,
    PrecisionMode.FP16C: PrecisionMode.FP32,
    PrecisionMode.FP32: PrecisionMode.FP64,
    PrecisionMode.FP64: None,
}


def escalation_next(mode: "PrecisionMode | str") -> PrecisionMode | None:
    """The next (more accurate) rung above ``mode``; None at the top."""
    return _NEXT_MODE[PrecisionMode.parse(mode)]


class TileHealthError(RuntimeError):
    """A tile failed its health checks with no escalation rung left."""

    def __init__(self, tile_id: int, mode: PrecisionMode, issues: list[str]):
        self.tile_id = tile_id
        self.mode = mode
        self.issues = list(issues)
        super().__init__(
            f"tile {tile_id} failed health checks at {mode} with no "
            f"escalation left: {'; '.join(issues)}"
        )


def check_tile_output(
    profile: np.ndarray,
    indices: np.ndarray,
    m: int,
    correlation_tol: float = 0.25,
) -> list[str]:
    """Validate one tile's distance plane; returns the list of issues.

    Only entries with a recorded match (``indices >= 0``) are checked:
    saturated / fully-excluded columns legitimately sit at the dtype
    limit with index -1 and carry no numerical information.
    """
    valid = indices >= 0
    if not valid.any():
        return []
    values = profile[valid].astype(np.float64)
    issues: list[str] = []
    n_nan = int(np.isnan(values).sum())
    if n_nan:
        issues.append(f"{n_nan} NaN distance(s)")
    n_inf = int(np.isinf(values).sum())
    if n_inf:
        issues.append(f"{n_inf} infinite distance(s)")
    finite = values[np.isfinite(values)]
    n_neg = int((finite < 0).sum())
    if n_neg:
        issues.append(f"{n_neg} negative distance(s)")
    corr = implied_correlation(finite[finite >= 0], m)
    n_out = int((corr < -1.0 - correlation_tol).sum())
    n_out += int((corr > 1.0 + correlation_tol).sum())
    if n_out:
        issues.append(
            f"{n_out} distance(s) imply correlation outside "
            f"[-1-{correlation_tol:g}, 1+{correlation_tol:g}]"
        )
    return issues


@dataclass(frozen=True)
class TileRisk:
    """Pre-flight Section V-B diagnostics for one tile's data slice."""

    tile_id: int
    mode: PrecisionMode
    overflow_fraction: float  # segments whose dot product overflows compute
    flat_fraction: float  # ill-conditioned near-flat segments
    qt_error_bound: float  # relative QT bound for the tile's row count

    @property
    def risky(self) -> bool:
        """Expected to produce unusable numbers at this mode (overflow or
        a meaningless >= 50% error bound — the ErrorBudget heuristic)."""
        return self.overflow_fraction > 0.0 or not self.qt_error_bound < 0.5


def preflight_tile_risk(spec, tile, mode: "PrecisionMode | str | None" = None) -> TileRisk:
    """Score one tile of ``spec`` before dispatch (host series required).

    Applies the offline bounds to the tile's *own* row/col slices, so a
    single large-deviation region flags only the tiles covering it.
    """
    if spec.reference is None:
        raise ValueError("pre-flight risk scoring needs host series "
                         "(JobSpec.from_arrays)")
    from ..precision.modes import policy_for

    policy = policy_for(mode if mode is not None else spec.config.mode)
    m = spec.m
    r0, r1 = tile.sample_range_rows(m)
    c0, c1 = tile.sample_range_cols(m)
    query = spec.reference if spec.self_join else spec.query
    rows = spec.reference[r0:r1]
    cols = query[c0:c1]
    overflow = max(
        overflow_risk_fraction(rows, m, policy.compute),
        overflow_risk_fraction(cols, m, policy.compute),
    )
    flat = max(
        flat_region_fraction(rows, m),
        flat_region_fraction(cols, m),
    )
    return TileRisk(
        tile_id=tile.tile_id,
        mode=policy.mode,
        overflow_fraction=overflow,
        flat_fraction=flat,
        qt_error_bound=streaming_qt_error_bound(tile.n_rows, m, policy.mode),
    )


@dataclass(frozen=True)
class HealthPolicy:
    """What the dispatcher checks and how it recovers.

    Parameters
    ----------
    correlation_tol:
        Slack on the implied-correlation range ``[-1 - tol, 1 + tol]``.
        Generous by default: legitimate FP16 rounding stays inside it,
        corruption and overflow blow-ups do not.
    escalate:
        Re-execute a sick tile one rung up the ladder.  With ``False``
        the first failed check raises :class:`TileHealthError` directly.
    preflight:
        Score each tile with :func:`preflight_tile_risk` before its first
        dispatch and start risky tiles at the first safe rung (requires
        host series on the spec; silently skipped otherwise).
    """

    correlation_tol: float = 0.25
    escalate: bool = True
    preflight: bool = False

    def check(self, output, m: int) -> list[str]:
        """Issues in one :class:`~repro.engine.backends.TileOutput`."""
        return check_tile_output(
            output.profile, output.indices, m, self.correlation_tol
        )

    def preflight_mode(self, spec, tile) -> PrecisionMode:
        """First ladder rung at/above the spec's mode the tile's own data
        is not expected to overflow (pre-flight risk scoring)."""
        mode = PrecisionMode.parse(spec.config.mode)
        while True:
            if not preflight_tile_risk(spec, tile, mode).risky:
                return mode
            nxt = escalation_next(mode)
            if nxt is None:
                return mode
            mode = nxt
