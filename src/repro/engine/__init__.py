"""The execution engine: one runtime layer for every tile-dispatch path.

The paper's Pseudocode 2 is a single loop — partition into tiles, assign
GPUs round-robin, execute each tile on a stream, min/argmin-merge on the
CPU — and this package is that loop's one implementation:

* :mod:`repro.engine.plan` — :class:`JobSpec` (validation, exclusion-zone
  defaulting, device layouts) and :class:`ExecutionPlan` (tile list +
  static GPU assignment);
* :mod:`repro.engine.backends` — :class:`TileBackend` protocol with
  :class:`NumericBackend` (real kernels via :func:`run_tile`) and
  :class:`AnalyticBackend` (roofline timings only);
* :mod:`repro.engine.dispatch` — :func:`execute_plan`, the loop itself:
  pluggable placement, transient-failure retry, deadline cancellation,
  per-tile observers;
* :mod:`repro.engine.accumulate` — :class:`ProfileAccumulator` over
  :func:`merge_tile_outputs` + cost and merge-time accounting;
* :mod:`repro.engine.health` — per-tile output validation and the
  FP16 -> Mixed -> FP32 -> FP64 escalation ladder;
* :mod:`repro.engine.faults` — deterministic, seedable fault injection
  (:class:`FaultPlan`) so every recovery path is exercisable in CI;
* :mod:`repro.engine.checkpoint` — :class:`RunJournal` tile journaling
  and :func:`resume_plan` for kill-and-resume without recomputation.

``compute_multi_tile``, ``model_multi_tile``, ``compute_single_tile``,
the service ``TileScheduler`` and the multi-node model are all thin
adapters over these modules.
"""

from .accumulate import ProfileAccumulator, merge_tile_outputs
from .backends import (
    KERNEL_ORDER,
    AnalyticBackend,
    NumericBackend,
    TileBackend,
    TileExecution,
    TileOutput,
    run_tile,
    schedule_tile,
    tile_timing_from_output,
    workspace_bytes,
)
from .checkpoint import RunJournal, resume_plan, tile_key
from .dispatch import (
    CallbackObserver,
    DispatchReport,
    RoundRobinPlacement,
    StaticPlacement,
    TileObserver,
    TilePlacement,
    TileRetryExhaustedError,
    TransientDeviceError,
    execute_plan,
)
from .faults import FaultEvent, FaultPlan, seeded_uniform
from .health import (
    ESCALATION_LADDER,
    HealthPolicy,
    TileHealthError,
    TileRisk,
    check_tile_output,
    escalation_next,
    preflight_tile_risk,
)
from .plan import ExecutionPlan, JobSpec
from .precalc_cache import PrecalcPlaneCache

__all__ = [
    "JobSpec",
    "ExecutionPlan",
    "PrecalcPlaneCache",
    "TileBackend",
    "NumericBackend",
    "AnalyticBackend",
    "TileExecution",
    "TileOutput",
    "run_tile",
    "schedule_tile",
    "tile_timing_from_output",
    "workspace_bytes",
    "KERNEL_ORDER",
    "execute_plan",
    "DispatchReport",
    "StaticPlacement",
    "RoundRobinPlacement",
    "TilePlacement",
    "TileObserver",
    "CallbackObserver",
    "TransientDeviceError",
    "TileRetryExhaustedError",
    "ProfileAccumulator",
    "merge_tile_outputs",
    "ESCALATION_LADDER",
    "HealthPolicy",
    "TileHealthError",
    "TileRisk",
    "check_tile_output",
    "escalation_next",
    "preflight_tile_risk",
    "FaultPlan",
    "seeded_uniform",
    "FaultEvent",
    "RunJournal",
    "resume_plan",
    "tile_key",
]
