"""The execution engine: one runtime layer for every tile-dispatch path.

The paper's Pseudocode 2 is a single loop — partition into tiles, assign
GPUs round-robin, execute each tile on a stream, min/argmin-merge on the
CPU — and this package is that loop's one implementation:

* :mod:`repro.engine.plan` — :class:`JobSpec` (validation, exclusion-zone
  defaulting, device layouts) and :class:`ExecutionPlan` (tile list +
  static GPU assignment);
* :mod:`repro.engine.backends` — :class:`TileBackend` protocol with
  :class:`NumericBackend` (real kernels via :func:`run_tile`) and
  :class:`AnalyticBackend` (roofline timings only);
* :mod:`repro.engine.dispatch` — :func:`execute_plan`, the loop itself:
  pluggable placement, transient-failure retry, deadline cancellation,
  per-tile observers;
* :mod:`repro.engine.accumulate` — :class:`ProfileAccumulator` over
  :func:`merge_tile_outputs` + cost and merge-time accounting.

``compute_multi_tile``, ``model_multi_tile``, ``compute_single_tile``,
the service ``TileScheduler`` and the multi-node model are all thin
adapters over these four modules.
"""

from .accumulate import ProfileAccumulator, merge_tile_outputs
from .backends import (
    KERNEL_ORDER,
    AnalyticBackend,
    NumericBackend,
    TileBackend,
    TileExecution,
    TileOutput,
    run_tile,
    schedule_tile,
    tile_timing_from_output,
    workspace_bytes,
)
from .dispatch import (
    CallbackObserver,
    DispatchReport,
    RoundRobinPlacement,
    StaticPlacement,
    TileObserver,
    TilePlacement,
    TileRetryExhaustedError,
    TransientDeviceError,
    execute_plan,
)
from .plan import ExecutionPlan, JobSpec

__all__ = [
    "JobSpec",
    "ExecutionPlan",
    "TileBackend",
    "NumericBackend",
    "AnalyticBackend",
    "TileExecution",
    "TileOutput",
    "run_tile",
    "schedule_tile",
    "tile_timing_from_output",
    "workspace_bytes",
    "KERNEL_ORDER",
    "execute_plan",
    "DispatchReport",
    "StaticPlacement",
    "RoundRobinPlacement",
    "TilePlacement",
    "TileObserver",
    "CallbackObserver",
    "TransientDeviceError",
    "TileRetryExhaustedError",
    "ProfileAccumulator",
    "merge_tile_outputs",
]
