"""Plain-text reporting helpers shared by benchmarks and examples.

The benchmark harness regenerates the paper's tables and figures as text:
each figure becomes a table of the series it plots.  These helpers keep
that output consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "format_table",
    "print_table",
    "format_seconds",
    "banner",
    "render_service_metrics",
    "render_precalc_savings",
    "render_stream_tenants",
    "render_autotune_choices",
    "render_cluster_health",
]


def format_seconds(value: float) -> str:
    """Human-friendly duration: µs/ms/s with three significant digits."""
    if value != value:  # NaN
        return "nan"
    if value < 1e-3:
        return f"{value * 1e6:.3g} us"
    if value < 1.0:
        return f"{value * 1e3:.3g} ms"
    return f"{value:.3g} s"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule, GitHub-markdown-ish."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> None:
    print(format_table(headers, rows, title))
    print()


def render_service_metrics(snapshot) -> str:
    """Render a :class:`repro.service.MetricsSnapshot` as a metrics table.

    Accepts any object with the snapshot's ``to_rows()`` contract, so the
    reporting layer stays import-independent of the service subsystem.
    """
    return format_table(["metric", "value"], snapshot.to_rows(),
                        title="service metrics")


def render_stream_tenants(sessions) -> str:
    """Per-tenant table for the streaming ingestion tier.

    Accepts any iterable of objects with the :class:`repro.streams.
    TenantStream` surface (``tenant_id``, ``policy``, ``counters``,
    ``n_samples_global``), so the reporting layer stays import-
    independent of the streams subsystem.
    """
    rows = []
    for session in sessions:
        policy = session.policy
        c = session.counters
        rows.append([
            session.tenant_id,
            policy.mode,
            policy.window + ("*" if policy.sketch_gate else ""),
            session.n_samples_global,
            c.appends,
            c.dropped,
            c.alarms,
            f"{c.suppression_ratio:.0%}",
            c.exact_tiles,
            c.shed_steps,
            c.rebases,
        ])
    return format_table(
        [
            "tenant", "mode", "window", "samples", "appends", "dropped",
            "alarms", "suppressed", "tiles", "shed", "rebases",
        ],
        rows,
        title="stream tenants (* = sketch-gated)",
    )


def render_autotune_choices(snapshot) -> str:
    """Table of the roofline autotuner's per-job choices in a snapshot.

    Accepts any object with the :class:`repro.service.MetricsSnapshot`
    autotune surface (``autotuned_jobs``, ``autotune_choices``,
    ``autotune_predicted_seconds``), so the reporting layer stays
    import-independent of the service subsystem.  Empty string when no
    job was tuned.
    """
    tuned = int(getattr(snapshot, "autotuned_jobs", 0))
    if not tuned:
        return ""
    choices = getattr(snapshot, "autotune_choices", None) or {}
    rows = [
        [block, count, f"{count / tuned:.0%}"]
        for block, count in sorted(choices.items())
    ]
    table = format_table(
        ["row_block", "jobs", "share"], rows, title="autotune choices"
    )
    predicted = float(getattr(snapshot, "autotune_predicted_seconds", 0.0))
    return (
        f"{table}\n{tuned} job(s) tuned; predicted host time "
        f"{format_seconds(predicted)} total"
    )


def render_cluster_health(run) -> str:
    """Health report for one cluster run: per-node shards, then the
    resilience story (deaths, re-shards, recovery overhead).

    Accepts any object with the :class:`repro.cluster.ClusterRunResult`
    surface (``nodes`` of ``(node, round, n_tiles, gpu_time)`` shards,
    ``node_deaths``, ``tiles_*``, ``recovery_overhead``, ...), so the
    reporting layer stays import-independent of the cluster subsystem.
    """
    dead = set(getattr(run, "node_deaths", ()) or ())
    per_node: dict[int, list] = {}
    for shard in getattr(run, "nodes", ()):
        per_node.setdefault(shard.node, []).append(shard)
    rows = []
    for node in sorted(set(per_node) | dead):
        shards = per_node.get(node, [])
        rows.append([
            node,
            "dead" if node in dead else "alive",
            len(shards),
            sum(s.n_tiles for s in shards),
            format_seconds(sum(s.gpu_time for s in shards)),
        ])
    table = format_table(
        ["node", "state", "rounds", "tiles", "gpu time"], rows,
        title="cluster health",
    )
    lines = [
        table,
        f"tiles: {run.tiles_completed}/{run.tiles_total} completed, "
        f"{run.tiles_resharded} re-sharded, {run.dropped_tiles} dropped",
    ]
    if dead:
        lines.append(
            f"node deaths: {sorted(dead)}; detection latency "
            f"{format_seconds(run.detection_latency)}; recovery overhead "
            f"{format_seconds(run.recovery_overhead)}"
        )
    restored = int(getattr(run, "tiles_restored", 0))
    if restored:
        lines.append(f"resumed: {restored} tile(s) restored from the journal")
    return "\n".join(lines)


def render_precalc_savings(result) -> str:
    """One-line summary of the precalc plane work amortised away.

    Accepts any object with ``precalc_saved_flops`` (and optionally a
    ``costs`` dict carrying the charged ``precalculation`` cost), so it
    works for :class:`~repro.core.result.MatrixProfileResult` and duck
    typed stand-ins alike.  When the charged precalc flops are known the
    saved fraction of the total plane+seed work is appended.
    """
    saved = float(getattr(result, "precalc_saved_flops", 0.0))
    line = f"precalc amortisation saved {saved:.4g} flops"
    cost = (getattr(result, "costs", None) or {}).get("precalculation")
    if cost is not None and cost.flops + saved > 0:
        fraction = saved / (cost.flops + saved)
        line += f" ({fraction:.1%} of the unamortised precalc work)"
    return line


def banner(text: str) -> None:
    """Section banner for example/benchmark output."""
    line = "#" * (len(text) + 4)
    print(f"\n{line}\n# {text} #\n{line}")


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
