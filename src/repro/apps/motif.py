"""Motif and discord extraction from matrix profile results.

Utilities for the pattern-mining use cases: top-k motifs (the best-matching
segment pairs at a chosen dimensionality) and discords (the segments whose
nearest neighbour is farthest — anomaly candidates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.result import MatrixProfileResult

__all__ = ["Motif", "top_motifs", "top_discords"]


@dataclass(frozen=True)
class Motif:
    """One motif hit: matched (query, reference) segment positions."""

    query_pos: int
    ref_pos: int
    distance: float
    k: int  # dimensionality of the match


def top_motifs(
    result: MatrixProfileResult,
    k: int = 1,
    count: int = 3,
    min_separation: int | None = None,
) -> list[Motif]:
    """The ``count`` best k-dimensional motifs, greedily de-duplicated.

    Consecutive query segments match almost identically; hits closer than
    ``min_separation`` (default m) to an already-selected motif are
    skipped so the list covers distinct events.
    """
    profile = result.profile_for(k).copy()
    index = result.index_for(k)
    sep = result.m if min_separation is None else min_separation
    motifs: list[Motif] = []
    taken: list[int] = []
    order = np.argsort(profile, kind="stable")
    for j in order:
        if not np.isfinite(profile[j]) or index[j] < 0:
            continue
        if any(abs(int(j) - t) < sep for t in taken):
            continue
        motifs.append(
            Motif(
                query_pos=int(j),
                ref_pos=int(index[j]),
                distance=float(profile[j]),
                k=k,
            )
        )
        taken.append(int(j))
        if len(motifs) >= count:
            break
    return motifs


def top_discords(
    result: MatrixProfileResult,
    k: int = 1,
    count: int = 3,
    min_separation: int | None = None,
) -> list[Motif]:
    """The ``count`` strongest k-dimensional discords (largest profile
    values = worst nearest-neighbour matches), de-duplicated like motifs."""
    profile = result.profile_for(k)
    index = result.index_for(k)
    sep = result.m if min_separation is None else min_separation
    discords: list[Motif] = []
    taken: list[int] = []
    order = np.argsort(profile, kind="stable")[::-1]
    for j in order:
        if not np.isfinite(profile[j]) or index[j] < 0:
            continue
        if any(abs(int(j) - t) < sep for t in taken):
            continue
        discords.append(
            Motif(
                query_pos=int(j),
                ref_pos=int(index[j]),
                distance=float(profile[j]),
                k=k,
            )
        )
        taken.append(int(j))
        if len(discords) >= count:
            break
    return discords
