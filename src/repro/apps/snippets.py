"""Snippets: representative summaries of a time series.

A snippet (Imani et al., "Matrix Profile XIII") is the opposite of a
motif: not the *most repeated* window but the window that *best
represents* the series — the one minimising the total distance from every
window to its nearest chosen snippet.  Two snippets of a turbine record,
for example, are "a typical idle stretch" and "a typical run stretch".

Greedy coverage algorithm: repeatedly pick the candidate whose selection
most reduces the sum over all windows of the distance to the closest
already-chosen snippet, using the same z-normalised distance profiles as
the rest of the library.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.layout import validate_series
from .consensus import distance_profile

__all__ = ["Snippet", "find_snippets"]


@dataclass(frozen=True)
class Snippet:
    """One representative window."""

    position: int
    m: int
    coverage: float  # fraction of windows this snippet is closest to
    mean_distance: float  # average distance of its covered windows


def find_snippets(
    series: np.ndarray,
    m: int,
    count: int = 2,
    candidate_stride: int | None = None,
    metric: str = "mpdist",
) -> list[Snippet]:
    """Greedy minimum-coverage snippet selection.

    ``candidate_stride`` (default m/2) subsamples candidate positions —
    snippets summarise regimes spanning many windows, so a half-window
    grid loses essentially nothing while cutting the O(candidates x n x m)
    cost.

    ``metric`` selects how "a window is represented by a snippet" is
    scored: ``"mpdist"`` (default, as in the original snippets paper) is
    shift-tolerant — a periodic regime is covered by *one* snippet
    regardless of phase; ``"znorm"`` is the strict sample-aligned
    distance.
    """
    arr = validate_series(series, "series")
    n_seg = arr.shape[0] - m + 1
    if n_seg < 1:
        raise ValueError(f"series too short for m={m}")
    if count < 1:
        raise ValueError("count must be >= 1")
    stride = max(1, m // 2) if candidate_stride is None else candidate_stride
    if stride < 1:
        raise ValueError("candidate_stride must be >= 1")
    if metric not in ("mpdist", "znorm"):
        raise ValueError(f"metric must be 'mpdist' or 'znorm', got {metric!r}")
    candidates = list(range(0, n_seg, stride))

    # Distance profile of every candidate against the whole series.
    if metric == "mpdist":
        from .mpdist import mpdist_profile

        profiles = {
            pos: mpdist_profile(arr[pos : pos + m], arr) for pos in candidates
        }
    else:
        profiles = {
            pos: distance_profile(arr[pos : pos + m], arr, m) for pos in candidates
        }

    chosen: list[int] = []
    # Initialise coverage at the z-normalised distance ceiling (2*sqrt(m))
    # so the first pick simply minimises total distance.
    best_so_far = np.full(n_seg, 2.0 * np.sqrt(m))
    for _ in range(min(count, len(candidates))):
        best_pos, best_total = None, np.inf
        for pos in candidates:
            if pos in chosen:
                continue
            total = float(np.sum(np.minimum(best_so_far, profiles[pos])))
            if total < best_total:
                best_pos, best_total = pos, total
        assert best_pos is not None
        chosen.append(best_pos)
        best_so_far = np.minimum(best_so_far, profiles[best_pos])

    # Assign every window to its nearest snippet for coverage stats.
    stacked = np.stack([profiles[pos] for pos in chosen])
    owner = np.argmin(stacked, axis=0)
    snippets = []
    for rank, pos in enumerate(chosen):
        mask = owner == rank
        covered = stacked[rank][mask]
        snippets.append(
            Snippet(
                position=pos,
                m=m,
                coverage=float(np.mean(mask)),
                mean_distance=float(covered.mean()) if covered.size else 0.0,
            )
        )
    return snippets
