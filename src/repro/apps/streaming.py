"""Incremental (streaming) matrix profile against a fixed reference.

Monitoring scenarios (the paper's HPC-ODA and turbine studies) consume
*live* query data: new samples arrive continuously and each completed
segment should be matched against the historical reference immediately.
:class:`StreamingMatrixProfile` supports that pattern — append samples,
get the per-segment profile/index as soon as each window completes —
computing each new query segment's distance profile with the same
precision policy (and rounded arithmetic) as the batch kernels.

Per-append cost is O(n_ref * d * m) via vectorised naive dot products;
the streaming axis here is the *query*, so there is no recurrence to
restart and reduced precision only sees the length-m accumulation error.
"""

from __future__ import annotations

import numpy as np

from ..core.config import RunConfig
from ..kernels.layout import to_device_layout, validate_series
from ..kernels.precalc import PrecalcResult, PrecalcKernel
from ..kernels.sort_scan import bitonic_sort, fanin_inclusive_scan
from ..kernels.update import INDEX_DTYPE
from ..precision.modes import DTYPE_MAX

__all__ = ["StreamingMatrixProfile"]


class StreamingMatrixProfile:
    """Match an unbounded query stream against a fixed reference series.

    Parameters
    ----------
    reference:
        Historical reference series, (n, d) time-major.
    m:
        Segment length.
    config:
        Precision/device configuration (only the precision policy affects
        the numerics here).
    """

    def __init__(self, reference: np.ndarray, m: int, config: RunConfig | None = None):
        self.config = config or RunConfig()
        self.policy = self.config.policy
        reference = validate_series(reference, "reference")
        if m < 2 or m > reference.shape[0]:
            raise ValueError(f"invalid m={m} for reference of {reference.shape[0]}")
        self.m = m
        self.d = reference.shape[1]
        self._ref_dev = to_device_layout(reference, self.policy.storage)
        self.n_ref_seg = self._ref_dev.shape[1] - m + 1

        # Reference-side statistics via the precalculation kernel (self
        # pairing only to reuse the kernel; query stats are not used).
        kernel = PrecalcKernel(config=self.config.launch, policy=self.policy)
        pre: PrecalcResult = kernel.run(self._ref_dev, self._ref_dev, m)
        dtype = self.policy.compute
        self._mu_r = pre.mu_r.astype(dtype, copy=False)
        self._inv_r = pre.inv_r.astype(dtype, copy=False)
        # Centred reference windows, precomputed once: (d, n_ref_seg, m).
        windows = np.lib.stride_tricks.sliding_window_view(
            self._ref_dev.astype(dtype, copy=False), m, axis=1
        )
        self._centered_ref = (windows - self._mu_r[:, :, None]).astype(dtype)

        self._buffer: list[np.ndarray] = []  # pending samples, each (d,)
        self._window: np.ndarray = np.empty((self.d, 0), dtype=dtype)
        self.profiles: list[np.ndarray] = []  # per completed segment, (d,)
        self.indices: list[np.ndarray] = []

    @property
    def n_segments(self) -> int:
        """Completed query segments so far."""
        return len(self.profiles)

    def append(self, sample: np.ndarray) -> "tuple[np.ndarray, np.ndarray] | None":
        """Feed one time sample (shape (d,) or scalar for d=1).

        Returns ``(profile_row, index_row)`` for the newly completed
        segment once at least m samples have arrived, else ``None``.
        """
        sample = np.atleast_1d(np.asarray(sample, dtype=np.float64))
        if sample.shape != (self.d,):
            raise ValueError(f"sample must have shape ({self.d},), got {sample.shape}")
        dtype = self.policy.compute
        col = sample.astype(dtype)[:, None]
        self._window = (
            col if self._window.shape[1] == 0 else np.concatenate(
                [self._window, col], axis=1
            )
        )
        if self._window.shape[1] > self.m:
            self._window = self._window[:, -self.m :]
        if self._window.shape[1] < self.m:
            return None
        return self._evaluate_segment()

    def extend(self, samples: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Feed many samples; returns stacked (profiles, indices) for the
        segments completed during this call (possibly empty arrays)."""
        samples = validate_series(samples, "samples")
        outs = [self.append(row) for row in samples]
        done = [o for o in outs if o is not None]
        if not done:
            return (np.empty((0, self.d)), np.empty((0, self.d), dtype=INDEX_DTYPE))
        return (np.stack([p for p, _ in done]), np.stack([i for _, i in done]))

    def _evaluate_segment(self) -> tuple[np.ndarray, np.ndarray]:
        dtype = self.policy.compute
        seg = self._window  # (d, m)
        with np.errstate(over="ignore", invalid="ignore"):
            mu = (seg.sum(axis=1, dtype=dtype) / dtype.type(self.m)).astype(dtype)
            centered = (seg - mu[:, None]).astype(dtype)
            energy = (centered * centered).astype(dtype).sum(axis=1, dtype=dtype)
            tiny = np.finfo(dtype).tiny
            inv_q = (dtype.type(1.0) / np.sqrt(np.maximum(energy, tiny))).astype(dtype)

            # QT against every reference window: rounded per-step FMA chain.
            qt = np.zeros((self.d, self.n_ref_seg), dtype=dtype)
            for t in range(self.m):
                term = (self._centered_ref[:, :, t] * centered[:, t : t + 1]).astype(
                    dtype
                )
                qt = (qt + term).astype(dtype)
            corr = ((qt * self._inv_r).astype(dtype) * inv_q[:, None]).astype(dtype)
            gap = np.maximum((dtype.type(1.0) - corr).astype(dtype), dtype.type(0))
            dist = np.sqrt((dtype.type(2 * self.m) * gap).astype(dtype)).astype(dtype)
        limit = dtype.type(DTYPE_MAX[np.dtype(dtype)])
        dist = np.where(np.isfinite(dist), dist, limit).astype(dtype)

        # mSTAMP dimension connection for this single query segment: the
        # plane is (d, n_ref_seg); sort along dims, fan-in average, then
        # min/argmin across reference positions.
        sorted_plane = bitonic_sort(dist)
        scanned = fanin_inclusive_scan(sorted_plane, dtype)
        divisors = np.arange(1, self.d + 1, dtype=np.float64)[:, None].astype(dtype)
        with np.errstate(over="ignore", invalid="ignore"):
            averaged = (scanned / divisors).astype(dtype)
        profile_row = averaged.min(axis=1).astype(np.float64)
        index_row = averaged.argmin(axis=1).astype(INDEX_DTYPE)
        self.profiles.append(profile_row)
        self.indices.append(index_row)
        return profile_row, index_row

    def result(self) -> tuple[np.ndarray, np.ndarray]:
        """All completed segments as (n_seg, d) arrays (batch layout)."""
        if not self.profiles:
            return (np.empty((0, self.d)), np.empty((0, self.d), dtype=INDEX_DTYPE))
        return np.stack(self.profiles), np.stack(self.indices)
