"""Incremental (streaming) matrix profile against a fixed reference.

Monitoring scenarios (the paper's HPC-ODA and turbine studies) consume
*live* query data: new samples arrive continuously and each completed
segment should be matched against the historical reference immediately.
:class:`StreamingMatrixProfile` supports that pattern — append samples,
get the per-segment profile/index as soon as each window completes —
computing each new query segment's distance profile with the same
precision policy (and rounded arithmetic) as the batch kernels.

Per-append cost is O(n_ref * d * m) via vectorised naive dot products;
the streaming axis here is the *query*, so there is no recurrence to
restart and reduced precision only sees the length-m accumulation error.
The hot path allocates nothing: the query window lives in a fixed
(d, 2m) ring buffer (amortised O(1) appends) and the per-segment QT /
correlation planes reuse preallocated scratch.  :meth:`extend` batches
the whole QT chain across every segment a call completes, bit-identical
to the equivalent sequence of :meth:`append` calls (the arithmetic is
elementwise per segment and every reduction runs over the same
unit-stride length-m axis).

.. note::
   This class matches a stream against a **fixed reference** and keeps
   the whole history in host lists — the right tool for a single
   monitoring probe.  For growing self-joins, cached window-statistics
   planes, sketch-gated escalation and multi-tenant serving, use the
   :mod:`repro.streams` ingestion tier (:class:`repro.streams.
   IncrementalMatrixProfile` / :class:`repro.streams.
   StreamIngestService`), which runs the same distances through the
   tiled engine; this class is kept as the lightweight delegate for the
   fixed-reference probe pattern.
"""

from __future__ import annotations

import numpy as np

from ..core.config import RunConfig
from ..kernels.layout import (
    to_device_layout,
    validate_series,
    validate_stream_samples,
)
from ..kernels.precalc import PrecalcResult, PrecalcKernel
from ..kernels.sort_scan import bitonic_sort, fanin_inclusive_scan
from ..kernels.update import INDEX_DTYPE
from ..precision.modes import DTYPE_MAX

__all__ = ["StreamingMatrixProfile"]

#: Segments evaluated per block in :meth:`StreamingMatrixProfile.extend`
#: — bounds the (d, block, n_ref_seg) batch scratch; block boundaries do
#: not affect the numerics (all per-segment arithmetic is independent).
_EXTEND_BLOCK = 512


class StreamingMatrixProfile:
    """Match an unbounded query stream against a fixed reference series.

    Parameters
    ----------
    reference:
        Historical reference series, (n, d) time-major.
    m:
        Segment length.
    config:
        Precision/device configuration (only the precision policy affects
        the numerics here).
    """

    def __init__(self, reference: np.ndarray, m: int, config: RunConfig | None = None):
        self.config = config or RunConfig()
        self.policy = self.config.policy
        reference = validate_series(reference, "reference")
        if m < 2 or m > reference.shape[0]:
            raise ValueError(f"invalid m={m} for reference of {reference.shape[0]}")
        self.m = m
        self.d = reference.shape[1]
        self._ref_dev = to_device_layout(reference, self.policy.storage)
        self.n_ref_seg = self._ref_dev.shape[1] - m + 1

        # Reference-side statistics via the precalculation kernel (self
        # pairing only to reuse the kernel; query stats are not used).
        kernel = PrecalcKernel(config=self.config.launch, policy=self.policy)
        pre: PrecalcResult = kernel.run(self._ref_dev, self._ref_dev, m)
        dtype = self.policy.compute
        self._mu_r = pre.mu_r.astype(dtype, copy=False)
        self._inv_r = pre.inv_r.astype(dtype, copy=False)
        # Centred reference windows, precomputed once: (d, n_ref_seg, m).
        windows = np.lib.stride_tricks.sliding_window_view(
            self._ref_dev.astype(dtype, copy=False), m, axis=1
        )
        self._centered_ref = (windows - self._mu_r[:, :, None]).astype(dtype)

        # Query ring buffer: the live window is always the ``m`` columns
        # before ``_pos``; a full ring compacts its tail to the front
        # (amortised O(1) per append, no per-append allocation).
        self._ring = np.empty((self.d, 2 * m), dtype=dtype)
        self._pos = 0  # next write column
        self._have = 0  # valid samples ending at _pos (capped at m)
        self.samples_seen = 0  # global stream offset for validation
        # Per-append scratch planes, written with ``out=`` (hot path).
        self._qt = np.empty((self.d, self.n_ref_seg), dtype=dtype)
        self._term = np.empty((self.d, self.n_ref_seg), dtype=dtype)
        self._centered_q = np.empty((self.d, m), dtype=dtype)

        self.profiles: list[np.ndarray] = []  # per completed segment, (d,)
        self.indices: list[np.ndarray] = []

    @property
    def n_segments(self) -> int:
        """Completed query segments so far."""
        return len(self.profiles)

    def append(self, sample: np.ndarray) -> "tuple[np.ndarray, np.ndarray] | None":
        """Feed one time sample (shape (d,) or scalar for d=1).

        Returns ``(profile_row, index_row)`` for the newly completed
        segment once at least m samples have arrived, else ``None``.
        Non-finite samples are rejected with their dimension and global
        stream offset named.
        """
        sample = np.atleast_1d(np.asarray(sample, dtype=np.float64))
        if sample.shape != (self.d,):
            raise ValueError(f"sample must have shape ({self.d},), got {sample.shape}")
        validate_stream_samples(
            sample[None, :], name="sample", offset=self.samples_seen
        )
        if self._pos == self._ring.shape[1]:
            # Ring full: compact the live tail to the front.
            self._ring[:, : self.m - 1] = self._ring[
                :, self._pos - (self.m - 1) : self._pos
            ]
            self._pos = self.m - 1
        self._ring[:, self._pos] = sample.astype(self._ring.dtype)
        self._pos += 1
        self._have = min(self._have + 1, self.m)
        self.samples_seen += 1
        if self._have < self.m:
            return None
        return self._evaluate_segment(self._ring[:, self._pos - self.m : self._pos])

    def extend(self, samples: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Feed many samples; returns stacked (profiles, indices) for the
        segments completed during this call (possibly empty arrays).

        The QT chain is evaluated batched across all completed segments —
        bit-identical to the equivalent :meth:`append` sequence, at a
        fraction of the Python overhead.
        """
        arr = validate_stream_samples(
            samples, name="samples", offset=self.samples_seen
        )
        if arr.shape[1] != self.d:
            raise ValueError(
                f"samples must have d={self.d} dimensions, got {arr.shape[1]}"
            )
        dtype = self.policy.compute
        new = np.ascontiguousarray(arr.T, dtype=dtype)  # (d, k)
        k = new.shape[1]
        # Stitch the live tail (at most m-1 samples back the new windows
        # reach into) to the new block; every window ending at a new
        # sample lives contiguously in ``combined``.
        h = min(self._have, self.m - 1)
        tail = self._ring[:, self._pos - h : self._pos]
        combined = np.concatenate([tail, new], axis=1)
        n_windows = combined.shape[1] - self.m + 1  # all end at new samples
        rows: list[np.ndarray] = []
        idxs: list[np.ndarray] = []
        if n_windows > 0:
            wins = np.lib.stride_tricks.sliding_window_view(
                combined, self.m, axis=1
            )  # (d, n_windows, m), unit-stride window axis
            for b0 in range(0, n_windows, _EXTEND_BLOCK):
                b1 = min(b0 + _EXTEND_BLOCK, n_windows)
                p, i = self._evaluate_block(wins[:, b0:b1, :])
                rows.extend(p)
                idxs.extend(i)
            self.profiles.extend(rows)
            self.indices.extend(idxs)
        # Re-anchor the ring on the stream's new tail.
        keep = min(self.m, combined.shape[1])
        self._ring[:, :keep] = combined[:, combined.shape[1] - keep :]
        self._pos = keep
        self._have = keep
        self.samples_seen += k
        if not rows:
            return (np.empty((0, self.d)), np.empty((0, self.d), dtype=INDEX_DTYPE))
        return np.stack(rows), np.stack(idxs)

    def _evaluate_segment(self, seg: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One (d, m) window against the reference, scratch-reusing."""
        dtype = self.policy.compute
        centered = self._centered_q
        qt = self._qt
        term = self._term
        with np.errstate(over="ignore", invalid="ignore"):
            mu = (seg.sum(axis=1, dtype=dtype) / dtype.type(self.m)).astype(dtype)
            np.subtract(seg, mu[:, None], out=centered)
            energy = (centered * centered).astype(dtype).sum(axis=1, dtype=dtype)
            tiny = np.finfo(dtype).tiny
            inv_q = (dtype.type(1.0) / np.sqrt(np.maximum(energy, tiny))).astype(dtype)

            # QT against every reference window: rounded per-step FMA chain.
            qt[...] = 0
            for t in range(self.m):
                np.multiply(
                    self._centered_ref[:, :, t], centered[:, t : t + 1], out=term
                )
                np.add(qt, term, out=qt)
            np.multiply(qt, self._inv_r, out=term)
            np.multiply(term, inv_q[:, None], out=term)  # corr
            np.subtract(dtype.type(1.0), term, out=term)
            np.maximum(term, dtype.type(0), out=term)  # gap
            np.multiply(term, dtype.type(2 * self.m), out=term)
            dist = np.sqrt(term).astype(dtype)
        limit = dtype.type(DTYPE_MAX[np.dtype(dtype)])
        dist = np.where(np.isfinite(dist), dist, limit).astype(dtype)
        profile_row, index_row = self._connect_dimensions(dist)
        self.profiles.append(profile_row)
        self.indices.append(index_row)
        return profile_row, index_row

    def _evaluate_block(self, wins: np.ndarray) -> tuple[list, list]:
        """Batch of (d, S, m) windows → per-segment profile/index rows.

        Every operation is elementwise per segment or reduces the same
        unit-stride length-m axis the per-append path reduces, so each
        segment's outputs match :meth:`_evaluate_segment` bit for bit.
        """
        dtype = self.policy.compute
        S = wins.shape[1]
        with np.errstate(over="ignore", invalid="ignore"):
            mu = (wins.sum(axis=2, dtype=dtype) / dtype.type(self.m)).astype(dtype)
            centered = (wins - mu[:, :, None]).astype(dtype)  # (d, S, m)
            energy = (centered * centered).astype(dtype).sum(axis=2, dtype=dtype)
            tiny = np.finfo(dtype).tiny
            inv_q = (dtype.type(1.0) / np.sqrt(np.maximum(energy, tiny))).astype(dtype)

            qt = np.zeros((self.d, S, self.n_ref_seg), dtype=dtype)
            term = np.empty_like(qt)
            for t in range(self.m):
                np.multiply(
                    self._centered_ref[:, None, :, t],
                    centered[:, :, t, None],
                    out=term,
                )
                np.add(qt, term, out=qt)
            np.multiply(qt, self._inv_r[:, None, :], out=term)
            np.multiply(term, inv_q[:, :, None], out=term)  # corr
            np.subtract(dtype.type(1.0), term, out=term)
            np.maximum(term, dtype.type(0), out=term)  # gap
            np.multiply(term, dtype.type(2 * self.m), out=term)
            dist = np.sqrt(term).astype(dtype)
        limit = dtype.type(DTYPE_MAX[np.dtype(dtype)])
        dist = np.where(np.isfinite(dist), dist, limit).astype(dtype)
        # Sort/scan operate columnwise along the dimension axis, so the
        # batch folds into one (d, S * n_ref_seg) plane.
        plane = np.ascontiguousarray(dist.reshape(self.d, S * self.n_ref_seg))
        averaged = self._averaged_plane(plane).reshape(self.d, S, self.n_ref_seg)
        rows = []
        idxs = []
        for s in range(S):
            rows.append(averaged[:, s, :].min(axis=1).astype(np.float64))
            idxs.append(averaged[:, s, :].argmin(axis=1).astype(INDEX_DTYPE))
        return rows, idxs

    def _connect_dimensions(self, dist: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """mSTAMP dimension connection of one (d, n_ref_seg) plane: sort
        along dims, fan-in average, then min/argmin across positions."""
        averaged = self._averaged_plane(dist)
        profile_row = averaged.min(axis=1).astype(np.float64)
        index_row = averaged.argmin(axis=1).astype(INDEX_DTYPE)
        return profile_row, index_row

    def _averaged_plane(self, dist: np.ndarray) -> np.ndarray:
        dtype = self.policy.compute
        sorted_plane = bitonic_sort(dist)
        scanned = fanin_inclusive_scan(sorted_plane, dtype)
        divisors = np.arange(1, self.d + 1, dtype=np.float64)[:, None].astype(dtype)
        with np.errstate(over="ignore", invalid="ignore"):
            return (scanned / divisors).astype(dtype)

    def result(self) -> tuple[np.ndarray, np.ndarray]:
        """All completed segments as (n_seg, d) arrays (batch layout)."""
        if not self.profiles:
            return (np.empty((0, self.d)), np.empty((0, self.d), dtype=INDEX_DTYPE))
        return np.stack(self.profiles), np.stack(self.indices)
