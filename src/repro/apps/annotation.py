"""Annotation vectors: guiding the matrix profile with domain knowledge.

The "guided motif search" idea (Dau & Keogh, "Matrix Profile V"): a
user-supplied annotation vector ``av[j] in [0, 1]`` expresses how
*interesting* each window is; the corrected matrix profile

    CMP[j] = P[j] + (1 - av[j]) * max(P)

pushes uninteresting windows towards the worst distance so motif/discord
extraction skips them — without recomputing anything.  Includes the two
stock annotation generators most often needed in practice: suppressing
flat (idle) regions and suppressing user-specified intervals.
"""

from __future__ import annotations

import numpy as np

from ..core.result import MatrixProfileResult
from ..kernels.layout import validate_series

__all__ = [
    "apply_annotation",
    "corrected_profile",
    "flat_region_annotation",
    "interval_annotation",
]


def corrected_profile(
    profile: np.ndarray, annotation: np.ndarray
) -> np.ndarray:
    """The corrected profile ``P + (1 - av) * max(P)`` (1-d arrays)."""
    profile = np.asarray(profile, dtype=np.float64)
    annotation = np.asarray(annotation, dtype=np.float64)
    if profile.shape != annotation.shape:
        raise ValueError(
            f"annotation shape {annotation.shape} != profile shape {profile.shape}"
        )
    if np.any((annotation < 0) | (annotation > 1)):
        raise ValueError("annotation values must lie in [0, 1]")
    finite = profile[np.isfinite(profile)]
    peak = float(finite.max()) if finite.size else 1.0
    return profile + (1.0 - annotation) * peak


def apply_annotation(
    result: MatrixProfileResult, annotation: np.ndarray, k: int = 1
) -> np.ndarray:
    """Corrected k-dimensional profile of a result (for motif extraction
    with :func:`repro.apps.motif.top_motifs`, pass a result whose profile
    column you replaced, or rank on the returned array directly)."""
    return corrected_profile(result.profile_for(k), annotation)


def flat_region_annotation(
    series: np.ndarray, m: int, rel_tol: float = 0.05
) -> np.ndarray:
    """Annotation suppressing windows with near-zero variance.

    Idle machinery produces flat telemetry whose z-normalisation
    amplifies noise into spurious "perfect" matches; this is the standard
    fix.  Values: 1 for active windows, scaling to 0 as the window's
    standard deviation falls below ``rel_tol`` times the series'.
    """
    arr = validate_series(series)
    flat = arr.reshape(arr.shape[0], -1)
    windows = np.lib.stride_tricks.sliding_window_view(flat, m, axis=0)
    stds = windows.std(axis=-1).mean(axis=1)  # mean over dimensions
    global_std = float(flat.std()) or 1.0
    return np.clip(stds / (rel_tol * global_std), 0.0, 1.0)


def interval_annotation(
    n_seg: int, suppressed: "list[tuple[int, int]]"
) -> np.ndarray:
    """Annotation of ones with zeros over the given [start, stop) windows
    (known artefacts, calibration phases, maintenance intervals...)."""
    av = np.ones(n_seg)
    for start, stop in suppressed:
        if start < 0 or stop < start:
            raise ValueError(f"invalid interval [{start}, {stop})")
        av[start:min(stop, n_seg)] = 0.0
    return av
