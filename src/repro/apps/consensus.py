"""Consensus motifs across a collection of series (Ostinato).

A consensus motif (Kamgar et al., "Matrix Profile XV") is the pattern
*every* series in a collection contains: the window whose worst-case
nearest-neighbour distance across all other series (its *radius*) is
smallest.  The turbine fleet of the paper's case study is the natural
setting — one startup signature shared by every unit.

The algorithm evaluates, for each candidate window of each series, its
best match in every other series (via the same z-normalised distance
machinery as the baselines) and minimises the maximum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.layout import validate_series

__all__ = ["ConsensusMotif", "distance_profile", "consensus_motif"]


def distance_profile(
    query_window: np.ndarray, series: np.ndarray, m: int
) -> np.ndarray:
    """Z-normalised distances of one (m, d) window against all windows of
    ``series``; the per-position values average over dimensions."""
    series = validate_series(series, "series")
    d = series.shape[1]
    if query_window.shape != (m, d):
        raise ValueError(
            f"query window must have shape ({m}, {d}), got {query_window.shape}"
        )
    n_seg = series.shape[0] - m + 1
    if n_seg < 1:
        raise ValueError(f"series too short for m={m}")
    out = np.zeros(n_seg)
    for k in range(d):
        q = query_window[:, k].astype(np.float64)
        q = q - q.mean()
        q_norm = np.linalg.norm(q)
        q_unit = q / q_norm if q_norm > 0 else q
        windows = np.lib.stride_tricks.sliding_window_view(
            series[:, k].astype(np.float64), m
        )
        mu = windows.mean(axis=1, keepdims=True)
        centered = windows - mu
        norms = np.linalg.norm(centered, axis=1)
        safe = np.where(norms == 0, 1.0, norms)
        corr = (centered @ q_unit) / safe
        corr = np.where(norms == 0, 0.0, corr)
        out += np.sqrt(np.maximum(2.0 * m * (1.0 - corr), 0.0))
    return out / d


@dataclass(frozen=True)
class ConsensusMotif:
    """The collection-wide consensus pattern."""

    series_id: int  # which series hosts the canonical occurrence
    position: int
    m: int
    radius: float  # worst-case match distance across the collection
    matches: tuple[tuple[int, int], ...]  # (series_id, position) per series


def consensus_motif(
    collection: "list[np.ndarray]",
    m: int,
    candidate_stride: int = 1,
) -> ConsensusMotif:
    """Ostinato-style search for the consensus motif of ``collection``.

    ``candidate_stride`` subsamples candidate windows for speed (the
    radius landscape is smooth; stride ~m/4 loses little).  Exact when 1.
    """
    if len(collection) < 2:
        raise ValueError("need at least two series for a consensus motif")
    arrays = [validate_series(s, f"series {i}") for i, s in enumerate(collection)]
    d = arrays[0].shape[1]
    for i, arr in enumerate(arrays):
        if arr.shape[1] != d:
            raise ValueError(f"series {i} has d={arr.shape[1]}, expected {d}")
        if arr.shape[0] < m:
            raise ValueError(f"series {i} shorter than m={m}")
    if candidate_stride < 1:
        raise ValueError("candidate_stride must be >= 1")

    best: ConsensusMotif | None = None
    for sid, host in enumerate(arrays):
        n_seg = host.shape[0] - m + 1
        for pos in range(0, n_seg, candidate_stride):
            window = host[pos : pos + m]
            radius = 0.0
            matches = [(sid, pos)]
            alive = True
            for oid, other in enumerate(arrays):
                if oid == sid:
                    continue
                profile = distance_profile(window, other, m)
                j = int(np.argmin(profile))
                dist = float(profile[j])
                matches.append((oid, j))
                radius = max(radius, dist)
                if best is not None and radius >= best.radius:
                    alive = False  # early abandon: cannot beat the best
                    break
            if alive and (best is None or radius < best.radius):
                best = ConsensusMotif(
                    series_id=sid,
                    position=pos,
                    m=m,
                    radius=radius,
                    matches=tuple(sorted(matches)),
                )
    assert best is not None
    return best
