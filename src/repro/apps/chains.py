"""Time series chains: directional nearest neighbours and drift tracking.

A *chain* (Zhu et al., "Matrix Profile VII") links segments whose nearest
neighbours consistently point forward in time: x -> y -> z where y is
x's right nearest neighbour and x is y's left nearest neighbour.  Chains
expose *drifting* patterns — a motif that slowly evolves — which plain
motifs (symmetric nearest neighbours) miss.

Requires the **left** and **right** matrix profiles: the best match
strictly before / strictly after each position.  This module computes
both with the same kernels and precision machinery as the main pipeline
(self-join only; the split is meaningless for AB joins).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import RunConfig, default_exclusion_zone
from ..kernels.dist_calc import DistCalcKernel
from ..kernels.layout import to_device_layout, validate_series
from ..kernels.precalc import PrecalcKernel
from ..kernels.sort_scan import SortScanKernel
from ..kernels.update import INDEX_DTYPE, UpdateKernel

__all__ = ["LeftRightProfile", "left_right_profile", "anchored_chain", "unanchored_chain"]


@dataclass
class LeftRightProfile:
    """Left/right split of a self-join matrix profile (one k column)."""

    m: int
    left_profile: np.ndarray  # (n_seg,) best match strictly before
    left_index: np.ndarray
    right_profile: np.ndarray  # (n_seg,) best match strictly after
    right_index: np.ndarray

    @property
    def n_seg(self) -> int:
        return self.left_profile.shape[0]


def left_right_profile(
    series: np.ndarray,
    m: int,
    config: RunConfig | None = None,
    k: int = 1,
) -> LeftRightProfile:
    """Compute the left and right k-dimensional matrix profiles.

    Same kernel pipeline as the batch computation, with two running
    min-merges: row i contributes to the *left* profile of columns
    j > i + zone and to the *right* profile of columns j < i - zone.
    """
    config = config or RunConfig()
    policy = config.policy
    series = validate_series(series, "series")
    zone = (
        config.exclusion_zone
        if config.exclusion_zone is not None
        else default_exclusion_zone(m)
    )

    dev = to_device_layout(series, policy.storage)
    d = dev.shape[0]
    if not 1 <= k <= d:
        raise ValueError(f"k must be in [1, {d}], got {k}")
    n_seg = dev.shape[1] - m + 1

    precalc = PrecalcKernel(config=config.launch, policy=policy)
    dist = DistCalcKernel(config=config.launch, policy=policy)
    sort_scan = SortScanKernel(config=config.launch, policy=policy)
    left = UpdateKernel(config=config.launch, policy=policy)
    right = UpdateKernel(config=config.launch, policy=policy)

    pre = precalc.run(dev, dev, m)
    dist.bind(pre)
    left.allocate(d, n_seg)
    right.allocate(d, n_seg)

    cols = np.arange(n_seg)
    for i in range(n_seg):
        averaged = sort_scan.run(dist.run(i))
        # Row i is a *left* neighbour for columns after it...
        left_mask = (cols <= i + zone)[None, :]
        left.masked_run(averaged, i, left_mask)
        # ...and a *right* neighbour for columns before it.
        right_mask = (cols >= i - zone)[None, :]
        right.masked_run(averaged, i, right_mask)

    col = k - 1
    return LeftRightProfile(
        m=m,
        left_profile=left.profile[col].astype(np.float64),
        left_index=left.indices[col].astype(INDEX_DTYPE),
        right_profile=right.profile[col].astype(np.float64),
        right_index=right.indices[col].astype(INDEX_DTYPE),
    )


def anchored_chain(lr: LeftRightProfile, start: int) -> list[int]:
    """The chain anchored at ``start``: follow right-neighbour links while
    the backward (left) link agrees — the bidirectional-consistency rule
    that makes chains meaningful rather than arbitrary walks."""
    if not 0 <= start < lr.n_seg:
        raise ValueError(f"start {start} out of range")
    chain = [start]
    current = start
    while True:
        nxt = int(lr.right_index[current])
        if nxt < 0:
            break
        if int(lr.left_index[nxt]) != current:
            break
        chain.append(nxt)
        current = nxt
    return chain


def unanchored_chain(lr: LeftRightProfile) -> list[int]:
    """The longest chain in the series (ties: earliest anchor).

    Computed in O(n) by following each link once (chain membership is a
    forest under the bidirectional-consistency rule).
    """
    lengths = np.ones(lr.n_seg, dtype=np.int64)
    order = np.argsort(-np.arange(lr.n_seg))  # right to left
    for j in order:
        nxt = int(lr.right_index[j])
        if nxt >= 0 and int(lr.left_index[nxt]) == j:
            lengths[j] = lengths[nxt] + 1
    best = int(np.argmax(lengths))
    return anchored_chain(lr, best)
