"""Nearest-neighbour application classifier on matrix profile indices.

The HPC-ODA case study (Section VI-A) builds "a simple classical nearest
neighbor classifier on top of the matrix profile analysis: it uses the
labels of the matching (based on matrix profile index) segments in [the]
reference set to determine the application class of the segments in [the]
query set."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.api import matrix_profile
from ..core.result import MatrixProfileResult
from ..datasets.hpcoda import HPCODataset
from ..metrics.classification import accuracy, macro_f_score

__all__ = ["ClassificationOutcome", "nn_classify", "classify_hpcoda"]


@dataclass
class ClassificationOutcome:
    """Predictions and scores of one classifier run."""

    predictions: np.ndarray  # per query segment
    truth: np.ndarray
    f_score: float
    accuracy: float
    mp_result: MatrixProfileResult

    @property
    def runtime(self) -> float:
        """Modelled analysis runtime (the paper's Fig. 9 right panel)."""
        return self.mp_result.modeled_time


def nn_classify(
    index: np.ndarray,
    reference_segment_labels: np.ndarray,
    k: int,
) -> np.ndarray:
    """Label transfer: query segment j gets the label of its matched
    reference segment ``index[j, k-1]``.  Unmatched (-1) predicts -1."""
    idx = np.asarray(index)[:, k - 1]
    labels = np.asarray(reference_segment_labels)
    out = np.full(idx.shape, -1, dtype=labels.dtype)
    valid = idx >= 0
    out[valid] = labels[idx[valid]]
    return out


def smooth_predictions(predictions: np.ndarray, window: int) -> np.ndarray:
    """Sliding-mode (majority) filter over per-segment predictions.

    Application phases span many consecutive segments (the coloured blocks
    of the paper's Fig. 8 timeline), so isolated label flips are noise; a
    majority vote over ``window`` neighbouring segments removes them.
    """
    predictions = np.asarray(predictions)
    if window <= 1:
        return predictions.copy()
    n = predictions.shape[0]
    half = window // 2
    out = np.empty_like(predictions)
    for j in range(n):
        lo = max(0, j - half)
        hi = min(n, j + half + 1)
        vals, counts = np.unique(predictions[lo:hi], return_counts=True)
        out[j] = vals[np.argmax(counts)]
    return out


def classify_hpcoda(
    dataset: HPCODataset,
    m: int,
    mode: str = "FP64",
    k: int | None = None,
    smooth_window: int | None = None,
    **mp_kwargs,
) -> ClassificationOutcome:
    """Run the full case-study pipeline on an HPC-ODA-style dataset.

    Computes the multi-dimensional matrix profile of the query half
    against the reference half in the requested precision, transfers
    labels through the k-dimensional profile index (default: a quarter of
    the sensors — deep-enough consensus without averaging in the noisiest
    dimensions), majority-smooths the per-segment predictions over
    ``smooth_window`` segments (default 2m; application phases span many
    segments, cf. the Fig. 8 timeline), and scores macro F and accuracy
    against the query ground truth.
    """
    # Per-sensor min-max normalisation to [0, 1] over both halves.  The
    # z-normalised matrix profile is invariant to per-sensor affine maps,
    # so FP64 results are unchanged; for the FP16-family modes this is the
    # overflow mitigation the paper applies explicitly in the turbine case
    # study ("min-max normalization to avoid overflow in reduced
    # precision") — raw counter magnitudes would overflow half precision
    # in the precalculation's running sums.
    lo = np.minimum(dataset.reference.min(axis=0), dataset.query.min(axis=0))
    hi = np.maximum(dataset.reference.max(axis=0), dataset.query.max(axis=0))
    span = np.where(hi > lo, hi - lo, 1.0)
    reference = (dataset.reference - lo) / span
    query = (dataset.query - lo) / span

    result = matrix_profile(reference, query, m=m, mode=mode, **mp_kwargs)
    k = k if k is not None else max(1, dataset.d // 4)
    smooth_window = smooth_window if smooth_window is not None else 2 * m
    ref_seg_labels = dataset.segment_labels(dataset.reference_labels, m)
    qry_seg_labels = dataset.segment_labels(dataset.query_labels, m)
    preds = smooth_predictions(
        nn_classify(result.index, ref_seg_labels, k), smooth_window
    )
    return ClassificationOutcome(
        predictions=preds,
        truth=qry_seg_labels,
        f_score=macro_f_score(qry_seg_labels, preds),
        accuracy=accuracy(qry_seg_labels, preds),
        mp_result=result,
    )
