"""MPdist: the matrix-profile-based sequence distance (Matrix Profile XII).

Z-normalised Euclidean distance compares two sequences *sample by
sample*, so a pattern shifted by a few samples looks dissimilar.  MPdist
(Gharghabi et al.) fixes this: two sequences are close if **most of their
subsequences have a close match somewhere in the other sequence**.
Formally, with subsequence length ``subm``, collect the two cross
nearest-neighbour profiles P_AB and P_BA and take the k-th smallest of
their concatenation (k = 5% of the combined length) — robust to shifts
and to a few disagreeing regions.

This module provides the pairwise distance and the sliding *MPdist
profile* of a query sequence against a long series (computed with a
sliding-minimum filter, O(n·m) per query), which powers shift-tolerant
snippet extraction.
"""

from __future__ import annotations

import numpy as np

from ..kernels.layout import validate_series
from .consensus import distance_profile

__all__ = ["mpdist", "mpdist_profile"]


def _cross_distance_matrix(
    query: np.ndarray, series: np.ndarray, subm: int
) -> np.ndarray:
    """D[i, j]: z-norm distance of query subwindow i to series subwindow j."""
    n_q_sub = query.shape[0] - subm + 1
    rows = [
        distance_profile(query[i : i + subm], series, subm) for i in range(n_q_sub)
    ]
    return np.stack(rows)


def mpdist(a: np.ndarray, b: np.ndarray, subm: int | None = None) -> float:
    """MPdist between two sequences of equal dimensionality.

    ``subm`` defaults to half the shorter sequence.  Returns 0 for
    (nearly) identical sequences regardless of internal alignment.
    """
    a = validate_series(a, "a")
    b = validate_series(b, "b")
    if a.shape[1] != b.shape[1]:
        raise ValueError("dimensionality mismatch")
    shorter = min(a.shape[0], b.shape[0])
    subm = max(2, shorter // 2) if subm is None else subm
    if subm > shorter:
        raise ValueError(f"subm={subm} longer than the shorter sequence")
    d_ab = _cross_distance_matrix(a, b, subm)  # (n_a_sub, n_b_sub)
    p_ab = d_ab.min(axis=1)
    p_ba = d_ab.min(axis=0)
    combined = np.concatenate([p_ab, p_ba])
    k = max(1, int(np.ceil(0.05 * 2 * max(a.shape[0], b.shape[0]))))
    k = min(k, combined.shape[0])
    return float(np.sort(combined)[k - 1])


def mpdist_profile(
    query: np.ndarray,
    series: np.ndarray,
    subm: int | None = None,
) -> np.ndarray:
    """Sliding MPdist of ``query`` (length m) against every length-m window
    of ``series``.

    Vectorised with a sliding minimum: the cross-distance matrix of the
    query's subwindows against *all* series subwindows is computed once;
    each series window's P_AB entries are windowed minima along columns
    and its P_BA entries are a windowed slice of the column minima.
    """
    query = validate_series(query, "query")
    series = validate_series(series, "series")
    if query.shape[1] != series.shape[1]:
        raise ValueError("dimensionality mismatch")
    m = query.shape[0]
    if series.shape[0] < m:
        raise ValueError("series shorter than the query")
    subm = max(2, m // 2) if subm is None else subm
    if subm > m:
        raise ValueError(f"subm={subm} longer than the query")

    d = _cross_distance_matrix(query, series, subm)  # (n_q_sub, n_t_sub)
    width = m - subm + 1  # subwindows inside one length-m window
    n_windows = series.shape[0] - m + 1

    # P_AB per window j: for each query subwindow, min over columns
    # [j, j+width) — exact trailing sliding minima.
    p_ab = np.lib.stride_tricks.sliding_window_view(d, width, axis=1).min(axis=-1)
    assert p_ab.shape[1] == n_windows

    colmin = d.min(axis=0)  # (n_t_sub,)
    k = max(1, int(np.ceil(0.05 * 2 * m)))
    out = np.empty(n_windows)
    for j in range(n_windows):
        combined = np.concatenate([p_ab[:, j], colmin[j : j + width]])
        kk = min(k, combined.shape[0])
        out[j] = np.partition(combined, kk - 1)[kk - 1]
    return out
