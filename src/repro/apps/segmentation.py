"""Semantic segmentation from matrix profile indices (FLUSS).

The matrix profile index is more than nearest-neighbour lookup: the *arc*
from every segment to its match crosses regime boundaries rarely (windows
match within their own regime), so the number of arcs over each position
— normalised by the count an ideal single-regime series would produce —
dips sharply at regime changes.  This is the FLUSS algorithm (Gharghabi
et al.), the standard matrix-profile companion for detecting when a
system's behaviour *changes*; it complements the paper's classification
case study (which labels regimes a reference already knows).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.result import MatrixProfileResult

__all__ = [
    "arc_curve",
    "corrected_arc_curve",
    "find_regime_changes",
    "RegimeSegmentation",
    "segment_regimes",
]


def arc_curve(index: np.ndarray) -> np.ndarray:
    """Number of nearest-neighbour arcs crossing each position.

    ``index`` is a 1-d array of match positions (one column of the matrix
    profile index); entry ``index[j] = i`` contributes an arc over every
    position strictly between i and j.  Computed in O(n) with a
    difference array.
    """
    index = np.asarray(index)
    if index.ndim != 1:
        raise ValueError(f"index must be 1-d, got shape {index.shape}")
    n = index.shape[0]
    diff = np.zeros(n + 1, dtype=np.int64)
    for j in range(n):
        i = int(index[j])
        if i < 0:
            continue
        lo, hi = (i, j) if i < j else (j, i)
        diff[lo + 1] += 1  # arcs cover the open interval (lo, hi)
        diff[hi] -= 1
    return np.cumsum(diff[:-1])


def _ideal_arc_counts(n: int) -> np.ndarray:
    """Expected arc counts for random (uniform) matches: the parabola
    ``2 * p * (n - p) / n`` over positions p."""
    p = np.arange(n, dtype=np.float64)
    return 2.0 * p * (n - p) / n


def corrected_arc_curve(index: np.ndarray, excl: int | None = None) -> np.ndarray:
    """The FLUSS Corrected Arc Curve (CAC), values in [0, 1].

    Low values = few arcs relative to chance = likely regime boundary.
    The first/last ``excl`` positions (default 5% of n) are pinned to 1 —
    edge windows have one-sided arcs and would otherwise always dip.
    """
    index = np.asarray(index)
    n = index.shape[0]
    if n < 4:
        raise ValueError("need at least 4 segments for a meaningful CAC")
    excl = max(2, n // 20) if excl is None else excl
    with np.errstate(divide="ignore", invalid="ignore"):
        cac = arc_curve(index) / _ideal_arc_counts(n)
    cac = np.nan_to_num(cac, nan=1.0, posinf=1.0)
    cac = np.minimum(cac, 1.0)
    cac[:excl] = 1.0
    cac[n - excl :] = 1.0
    return cac


def find_regime_changes(
    cac: np.ndarray, n_regimes: int, exclusion: int
) -> list[int]:
    """The ``n_regimes - 1`` deepest CAC minima, greedily non-overlapping.

    ``exclusion`` suppresses further picks within that many positions of
    an accepted boundary (conventionally the window length m).
    """
    if n_regimes < 2:
        return []
    cac = np.asarray(cac, dtype=np.float64).copy()
    boundaries: list[int] = []
    for _ in range(n_regimes - 1):
        pos = int(np.argmin(cac))
        if not np.isfinite(cac[pos]) or cac[pos] >= 1.0:
            break
        boundaries.append(pos)
        lo = max(0, pos - exclusion)
        hi = min(len(cac), pos + exclusion + 1)
        cac[lo:hi] = np.inf
    return sorted(boundaries)


@dataclass
class RegimeSegmentation:
    """Outcome of a FLUSS run."""

    cac: np.ndarray
    boundaries: list[int] = field(default_factory=list)

    def regime_of(self, position: int) -> int:
        """Regime id (0-based, left to right) of a segment position."""
        return int(np.searchsorted(self.boundaries, position, side="right"))


def segment_regimes(
    result: MatrixProfileResult, n_regimes: int, k: int = 1
) -> RegimeSegmentation:
    """FLUSS on a self-join matrix profile result.

    Uses the k-dimensional index column; exclusion between boundaries is
    the window length m.
    """
    index = result.index_for(k)
    cac = corrected_arc_curve(index)
    return RegimeSegmentation(
        cac=cac,
        boundaries=find_regime_changes(cac, n_regimes, exclusion=result.m),
    )
