"""Applications built on the matrix profile: NN classification (HPC-ODA
case study), motif/discord mining, and streaming analysis."""

from .annotation import (
    apply_annotation,
    corrected_profile,
    flat_region_annotation,
    interval_annotation,
)
from .chains import (
    LeftRightProfile,
    anchored_chain,
    left_right_profile,
    unanchored_chain,
)
from .consensus import ConsensusMotif, consensus_motif, distance_profile
from .mpdist import mpdist, mpdist_profile
from .snippets import Snippet, find_snippets
from .classifier import (
    ClassificationOutcome,
    classify_hpcoda,
    nn_classify,
    smooth_predictions,
)
from .motif import Motif, top_discords, top_motifs
from .segmentation import (
    RegimeSegmentation,
    arc_curve,
    corrected_arc_curve,
    find_regime_changes,
    segment_regimes,
)
from .streaming import StreamingMatrixProfile

__all__ = [
    "apply_annotation",
    "corrected_profile",
    "flat_region_annotation",
    "interval_annotation",
    "ConsensusMotif",
    "consensus_motif",
    "distance_profile",
    "mpdist",
    "mpdist_profile",
    "Snippet",
    "find_snippets",
    "LeftRightProfile",
    "anchored_chain",
    "left_right_profile",
    "unanchored_chain",
    "RegimeSegmentation",
    "arc_curve",
    "corrected_arc_curve",
    "find_regime_changes",
    "segment_regimes",
    "ClassificationOutcome",
    "classify_hpcoda",
    "nn_classify",
    "smooth_predictions",
    "Motif",
    "top_discords",
    "top_motifs",
    "StreamingMatrixProfile",
]
