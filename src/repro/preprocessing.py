"""Input preprocessing for reduced-precision time series mining.

Half-precision mining is only viable when the input respects the format's
range and conditioning limits (Section V-B: overflow in large-deviation
regions, ill-conditioning in flat regions).  The paper's turbine study
min-max normalises explicitly "to avoid overflow in reduced precision
computation"; this module packages that and the related conditioning
transforms, plus a pre-flight check that inspects a series against a
precision mode and recommends fixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .kernels.layout import validate_series
from .precision.errors import flat_region_fraction, overflow_risk_fraction
from .precision.modes import PrecisionMode, policy_for

__all__ = [
    "minmax_normalize",
    "zscore_normalize",
    "detrend",
    "denoise_moving_average",
    "PreflightReport",
    "preflight_check",
    "prepare_for_mode",
]


def minmax_normalize(
    series: np.ndarray,
    feature_range: tuple[float, float] = (0.0, 1.0),
    per_dimension: bool = True,
) -> np.ndarray:
    """Scale each dimension (or the whole series) into ``feature_range``.

    The paper's overflow mitigation: z-normalised matrix profile results
    are invariant to per-dimension affine maps, so this changes nothing in
    FP64 but keeps every intermediate inside FP16's finite range.
    Constant dimensions map to the range midpoint.
    """
    arr = validate_series(series).astype(np.float64)
    lo_t, hi_t = feature_range
    if hi_t <= lo_t:
        raise ValueError(f"invalid feature range {feature_range}")
    axis = 0 if per_dimension else None
    lo = arr.min(axis=axis, keepdims=True)
    hi = arr.max(axis=axis, keepdims=True)
    span = hi - lo
    mid = (lo_t + hi_t) / 2.0
    safe = np.where(span == 0, 1.0, span)
    out = (arr - lo) / safe * (hi_t - lo_t) + lo_t
    return np.where(span == 0, mid, out)


def zscore_normalize(series: np.ndarray, per_dimension: bool = True) -> np.ndarray:
    """Zero-mean unit-variance scaling (constant dims become zero)."""
    arr = validate_series(series).astype(np.float64)
    axis = 0 if per_dimension else None
    mu = arr.mean(axis=axis, keepdims=True)
    sd = arr.std(axis=axis, keepdims=True)
    safe = np.where(sd == 0, 1.0, sd)
    return np.where(sd == 0, 0.0, (arr - mu) / safe)


def detrend(series: np.ndarray) -> np.ndarray:
    """Remove each dimension's least-squares linear trend.

    Long monotone drifts (the cumulative counters of monitoring data) put
    every window at a different offset, inflating the dynamic range FP16
    must represent; detrending collapses it.
    """
    arr = validate_series(series).astype(np.float64)
    n = arr.shape[0]
    t = np.arange(n, dtype=np.float64)
    t_centered = t - t.mean()
    denom = float(t_centered @ t_centered)
    slope = (t_centered @ (arr - arr.mean(axis=0))) / denom
    return arr - arr.mean(axis=0) - np.outer(t_centered, slope)


def denoise_moving_average(series: np.ndarray, window: int = 3) -> np.ndarray:
    """Centred moving-average smoothing (edges use shrinking windows).

    Mild smoothing raises the signal-to-rounding-noise ratio of FP16
    matching on very noisy sensors; window=1 is the identity.
    """
    arr = validate_series(series).astype(np.float64)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window == 1:
        return arr.copy()
    n = arr.shape[0]
    cs = np.concatenate([np.zeros((1, arr.shape[1])), np.cumsum(arr, axis=0)])
    half = window // 2
    starts = np.clip(np.arange(n) - half, 0, n)
    stops = np.clip(np.arange(n) + window - half, 0, n)
    sums = cs[stops] - cs[starts]
    counts = (stops - starts)[:, None].astype(np.float64)
    return sums / counts


@dataclass
class PreflightReport:
    """Outcome of checking a series against a precision mode."""

    mode: PrecisionMode
    m: int
    overflow_fraction: float
    flat_fraction: float
    dynamic_range: float  # max|x| / rms, a conditioning indicator
    recommendations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No blocking issue for the requested mode."""
        return not any(r.startswith("required") for r in self.recommendations)


def preflight_check(
    series: np.ndarray, m: int, mode: "PrecisionMode | str"
) -> PreflightReport:
    """Inspect ``series`` for the failure modes of Section V-B under
    ``mode`` and recommend preprocessing steps."""
    arr = validate_series(series).astype(np.float64)
    policy = policy_for(mode)
    overflow = overflow_risk_fraction(arr, m, policy.compute)
    flat = flat_region_fraction(arr, m)
    rms = float(np.sqrt(np.mean(arr**2))) or 1.0
    dyn = float(np.max(np.abs(arr))) / rms

    recs: list[str] = []
    if overflow > 0:
        recs.append(
            "required: min-max normalise — "
            f"{overflow:.1%} of windows overflow {policy.compute} "
            "(the paper's turbine mitigation)"
        )
    if flat > 0.01:
        recs.append(
            f"advised: {flat:.1%} of windows are numerically flat; "
            "their z-normalisation is ill-conditioned — consider adding "
            "dither or excluding constant regions"
        )
    if dyn > 50 and policy.itemsize <= 2:
        recs.append(
            "advised: large dynamic range relative to RMS; detrend() "
            "before half-precision mining"
        )
    return PreflightReport(
        mode=policy.mode,
        m=m,
        overflow_fraction=overflow,
        flat_fraction=flat,
        dynamic_range=dyn,
        recommendations=recs,
    )


def prepare_for_mode(
    series: np.ndarray, m: int, mode: "PrecisionMode | str"
) -> tuple[np.ndarray, PreflightReport]:
    """Apply the minimal preprocessing that makes ``series`` safe for
    ``mode``: min-max normalisation when overflow is possible, otherwise
    the input is passed through unchanged.  Returns the (possibly
    transformed) series and the post-transform report."""
    report = preflight_check(series, m, mode)
    arr = validate_series(series)
    if report.overflow_fraction > 0:
        arr = minmax_normalize(arr)
        report = preflight_check(arr, m, mode)
    return arr, report
