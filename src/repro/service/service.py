"""The multi-tenant matrix-profile job service.

:class:`MatrixProfileService` is the serving layer over the library's
one-shot compute path: it queues :class:`~repro.service.job.JobRequest`
objects by priority, runs admission control (precision-aware load
shedding), decomposes each job into its tile DAG and dispatches the tiles
across a shared pool of simulated GPUs, caches results content-addressed,
retries tiles around injected device failures, and merges anytime-style
partials when a deadline expires.

Two execution styles:

* **worker threads** — ``service.start()`` spins up ``n_workers``
  threads draining the queue concurrently (tile numerics run outside the
  pool lock, so jobs genuinely overlap);
* **inline** — ``service.process_all()`` drains the queue on the caller
  thread in strict priority order, which makes backlog-driven admission
  decisions deterministic (benchmarks and tests use this).

Every job's story — requested vs effective precision, cache hit, retries,
partial fraction — is recorded on its :class:`JobOutcome` and aggregated
in :class:`~repro.service.metrics.ServiceMetrics`.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time

import numpy as np

from ..cluster import (
    BackpressureError,
    ClusterAutoscaler,
    ClusterDispatcher,
    ClusterSpec,
    QuotaExceededError,
)
from ..core.anytime import AnytimeState
from ..core.config import RunConfig, default_exclusion_zone
from ..core.planner import plan_tiles
from ..core.result import MatrixProfileResult
from ..engine.plan import JobSpec
from ..gpu.calibration import MERGE_TIME_PER_ELEMENT, TILE_DISPATCH_OVERHEAD
from ..gpu.device import DeviceSpec
from ..gpu.memory import DeviceOutOfMemoryError
from ..gpu.simulator import GPUSimulator
from ..kernels.layout import to_device_layout, validate_series
from ..precision.modes import policy_for
from .admission import AdmissionController, LoadEstimator
from .cache import PrecalcStatsCache, ResultCache, cache_key
from .job import Job, JobOutcome, JobRequest, JobStatus, QueuedJob, series_digest
from .metrics import ServiceMetrics
from .scheduler import HealthPolicy, TileRetryExhaustedError, TileScheduler

__all__ = ["MatrixProfileService"]


class MatrixProfileService:
    """Job queue + scheduler + cache + admission control over a GPU pool.

    Parameters
    ----------
    device:
        Simulated device model shared by every pool GPU.
    n_gpus:
        Pool size; tiles of one job spread round-robin across it.
    n_workers:
        Worker threads started by :meth:`start` (also the parallelism
        divisor the admission controller applies to the backlog).
    cache:
        A :class:`ResultCache`, or ``None`` to disable caching.
    estimator / admission:
        Override the load estimator / admission controller (tests and
        benchmarks inject deterministic ones).
    max_retries:
        Per-tile retry budget for transient device failures.
    failure_injector:
        Optional ``(label, tile, gpu_id, attempt) -> None`` hook that may
        raise :class:`~repro.service.scheduler.TransientDeviceError`.
    max_replans:
        How many times a job may be re-tiled (4x tiles each step) after
        device OOM before failing.
    health_checks / health:
        ``health_checks=True`` validates every tile's output and
        escalates numerically sick tiles up the precision ladder
        (:class:`~repro.engine.health.HealthPolicy`); pass ``health`` to
        override the policy.  Escalations are recorded per job
        (:attr:`JobOutcome.tile_escalations`) and in the metrics.
    fault_plan:
        Optional :class:`~repro.engine.faults.FaultPlan`; its injector
        and corruptor hooks exercise the recovery paths (a separately
        supplied ``failure_injector`` takes precedence for injection).
    oom_tile_split:
        Split the offending tile in place on device OOM instead of
        re-planning the whole job with a finer tiling.
    cluster:
        Optional :class:`~repro.cluster.ClusterSpec` — jobs then execute
        over a sharded node fleet (:class:`~repro.cluster
        .ClusterDispatcher`) instead of the single GPU pool, with
        node-loss recovery and, when ``autoscaler`` is given, EMA-
        backlog-driven pool resizing.  ``node_faults`` injects a
        deterministic node storm (chaos tests).
    quotas / default_quota / max_queue_depth:
        Per-tenant admission ceilings and the global queue-depth
        backpressure cap, forwarded to the default
        :class:`AdmissionController`.  Shed jobs raise
        :class:`~repro.cluster.QuotaExceededError` /
        :class:`~repro.cluster.BackpressureError` at :meth:`submit`.
    """

    def __init__(
        self,
        device: "DeviceSpec | str" = "A100",
        n_gpus: int = 2,
        n_workers: int = 2,
        n_streams: int | None = None,
        cache: "ResultCache | None" = None,
        use_cache: bool = True,
        estimator: LoadEstimator | None = None,
        admission: AdmissionController | None = None,
        max_retries: int = 2,
        failure_injector=None,
        max_replans: int = 4,
        clock=time.monotonic,
        health_checks: bool = True,
        health: "HealthPolicy | None" = None,
        fault_plan=None,
        oom_tile_split: bool = False,
        autotune: bool = True,
        calibration=None,
        cluster: "ClusterSpec | None" = None,
        node_faults=None,
        autoscaler: "ClusterAutoscaler | None" = None,
        quotas=None,
        default_quota=None,
        max_queue_depth: int | None = None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.sim = GPUSimulator(device, n_gpus, n_streams)
        health_policy = health or (HealthPolicy() if health_checks else None)
        corruptor = None
        if fault_plan is not None:
            corruptor = fault_plan.corruptor
            if failure_injector is None:
                failure_injector = fault_plan.injector
        self.cache = cache if cache is not None else (
            ResultCache() if use_cache else None
        )
        self.metrics = ServiceMetrics(clock)
        # Cross-job window-statistics store: enabled alongside the result
        # cache (same dominant traffic pattern — repeated series).  Even
        # when the *result* misses (different tiling, m, or mode pairing)
        # the stats planes often hit, and the engine then skips the
        # O(n·m·d) precalc statistics pass.
        self.stats_cache = (
            PrecalcStatsCache(on_lookup=self.metrics.record_stats_cache)
            if self.cache is not None
            else None
        )
        self.scheduler = TileScheduler(
            self.sim, max_retries=max_retries,
            failure_injector=failure_injector, clock=clock,
            health=health_policy, corruptor=corruptor,
            oom_split=oom_tile_split,
            stats_cache=self.stats_cache,
        )
        self.estimator = estimator or LoadEstimator(self.sim.spec)
        self.admission = admission or AdmissionController(
            self.estimator,
            parallelism=n_workers,
            quotas=quotas,
            default_quota=default_quota,
            max_queue_depth=max_queue_depth,
        )
        # Cluster pool: jobs shard over a node fleet instead of the
        # single simulated GPU pool.
        self.autoscaler = autoscaler
        self.cluster_dispatcher = None
        if cluster is not None:
            self.cluster_dispatcher = ClusterDispatcher(
                cluster,
                node_faults=node_faults,
                fault_plan=fault_plan,
                health=health_policy,
                max_retries=max_retries,
                oom_split=oom_tile_split,
            )
        # Roofline autotuner: every admitted job's row_block comes from
        # the planner instead of the constructor default.  The tuner
        # shares the admission estimator, so its seconds-per-cell EMA
        # (updated by ``estimator.observe`` after each completion) feeds
        # straight back into the cost model — predictions improve online.
        # Tile-level parallelism inside one job stays at 1: the service's
        # worker threads are the parallelism here.
        self.tuner = None
        if autotune:
            from ..autotune import AutoTuner

            self.tuner = AutoTuner(
                device=self.sim.spec,
                calibration=calibration,
                estimator=self.estimator,
                workers=(1,),
            )
        self.n_workers = n_workers
        self.max_replans = max_replans
        self.clock = clock
        self._queue: "queue.PriorityQueue[QueuedJob]" = queue.PriorityQueue()
        self._seq = itertools.count()
        self._workers: list[threading.Thread] = []
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # Submission

    def submit(self, request: JobRequest) -> Job:
        """Queue a request; admission control runs *now*, so the decision
        reflects the backlog ahead of this job.  Returns the job handle."""
        now = self.clock()
        job = Job(request, submitted_at=now)
        reference = validate_series(request.reference, "reference")
        self_join = request.query is None
        query = reference if self_join else validate_series(request.query, "query")
        if query.shape[1] != reference.shape[1]:
            raise ValueError(
                f"reference has d={reference.shape[1]} but query "
                f"d={query.shape[1]}"
            )
        n_r_seg = reference.shape[0] - request.m + 1
        n_q_seg = query.shape[0] - request.m + 1
        if n_r_seg < 1 or n_q_seg < 1:
            raise ValueError(f"m={request.m} too long for the input series")
        job.reference = reference
        job.query = None if self_join else query
        slack = request.deadline  # full budget at submission time
        try:
            job.decision = self.admission.admit(
                job.job_id, n_r_seg, n_q_seg, reference.shape[1],
                request.mode, slack, tenant=request.tenant,
            )
        except BackpressureError:
            self.metrics.record_rejection("backpressure")
            raise
        except QuotaExceededError:
            self.metrics.record_rejection("quota")
            raise
        self.metrics.record_submission()
        self.metrics.record_downgrade(job.decision.downgrade_steps)
        self._queue.put(QueuedJob(request.priority, next(self._seq), job))
        return job

    def submit_and_wait(
        self, request: JobRequest, timeout: float | None = None
    ) -> JobOutcome:
        """Submit one request and block for its outcome.

        With no workers running the job is processed inline on the
        calling thread.
        """
        job = self.submit(request)
        if not self._workers:
            self.process_all()
        outcome = job.wait(timeout)
        if outcome is None:
            raise TimeoutError(f"job {job.job_id} did not finish in {timeout}s")
        return outcome

    # ------------------------------------------------------------------
    # Execution

    def process_all(self) -> int:
        """Drain the queue inline, in priority order; returns the number
        of jobs processed."""
        processed = 0
        while True:
            try:
                entry = self._queue.get_nowait()
            except queue.Empty:
                return processed
            try:
                self._process(entry.job)
            finally:
                self._queue.task_done()
            processed += 1

    def start(self) -> "MatrixProfileService":
        """Start the worker threads (idempotent)."""
        if self._workers:
            return self
        self._stop.clear()
        for i in range(self.n_workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"mp-service-worker-{i}",
                daemon=True,
            )
            t.start()
            self._workers.append(t)
        return self

    def stop(self) -> None:
        """Stop the workers after their current job (idempotent)."""
        if not self._workers:
            return
        self._stop.set()
        for t in self._workers:
            t.join()
        self._workers = []

    def drain(self) -> None:
        """Block until every queued job has been fully processed."""
        self._queue.join()

    def __enter__(self) -> "MatrixProfileService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        if self._workers:
            self.drain()
        self.stop()

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                entry = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            try:
                self._process(entry.job)
            finally:
                self._queue.task_done()

    # ------------------------------------------------------------------
    # One job

    def _plan_tiles(self, job: Job, config: RunConfig) -> int:
        """Planner floor for the tile count (memory-safe decomposition)."""
        reference, query = job.reference, self._query_of(job)
        m = job.request.m
        n_r_seg = reference.shape[0] - m + 1
        n_q_seg = query.shape[0] - m + 1
        requested = job.request.n_tiles or 1
        try:
            plan = plan_tiles(
                n_r_seg, n_q_seg, reference.shape[1], m,
                mode=config.mode, device=self.sim.spec,
                concurrent_tiles_per_gpu=self.n_workers,
            )
            return max(requested, plan.n_tiles)
        except ValueError:
            return requested

    def _query_of(self, job: Job) -> np.ndarray:
        return job.reference if job.query is None else job.query

    def _process(self, job: Job) -> None:
        decision = job.decision
        started = self.clock()
        job.status = JobStatus.RUNNING
        try:
            self._execute(job, started)
        except Exception as exc:  # noqa: BLE001 - jobs must not kill workers
            if isinstance(exc, TileRetryExhaustedError):
                retries = self.scheduler.max_retries + 1
            else:
                retries = 0
            latency = self.clock() - job.submitted_at
            self.metrics.record_failure(latency, retries=retries)
            self.admission.complete(job.job_id)
            job.finish(
                JobOutcome(
                    status=JobStatus.FAILED,
                    result=None,
                    requested_mode=decision.requested,
                    effective_mode=decision.effective,
                    downgrade_steps=decision.downgrade_steps,
                    latency=latency,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )

    def _execute(self, job: Job, started: float) -> None:
        request = job.request
        decision = job.decision
        reference, query = job.reference, self._query_of(job)
        self_join = job.query is None
        m = request.m
        d = reference.shape[1]
        n_r_seg = reference.shape[0] - m + 1
        n_q_seg = query.shape[0] - m + 1
        zone = request.exclusion_zone
        if self_join and zone is None:
            zone = default_exclusion_zone(m)

        config = RunConfig(
            mode=decision.effective,
            device=self.sim.spec,
            n_gpus=self.sim.n_gpus,
            n_streams=self.sim.n_streams,
            exclusion_zone=request.exclusion_zone,
        )
        config = config.with_(n_tiles=self._plan_tiles(job, config))
        if self.tuner is not None:
            tune = self.tuner.tune(
                n_r_seg, n_q_seg, d, m,
                mode=decision.effective, self_join=self_join,
                n_gpus=self.sim.n_gpus, n_streams=self.sim.n_streams,
                exclusion_zone=request.exclusion_zone,
                n_tiles=config.n_tiles if config.n_tiles > 1 else None,
            )
            # Numerics-preserving tier: only the cache-key-excluded host
            # knob moves.  Mode stays the admission decision's, and the
            # tile count stays with `_plan_tiles` — the service planner
            # owns tiling (OOM recovery bumps it reactively), so the
            # tuner's own memory floor is advisory here.
            config = config.with_(row_block=tune.chosen.row_block)
            self.metrics.record_autotune(
                tune.chosen.row_block, tune.chosen.predicted_seconds
            )

        if self.cluster_dispatcher is not None:
            self._autoscale()
            fleet = self.cluster_dispatcher.cluster
            config = config.with_(
                device=fleet.device_spec,
                n_gpus=fleet.gpus_per_node,
                n_tiles=max(config.n_tiles, 4 * fleet.total_gpus),
            )

        ref_digest = series_digest(reference)
        qry_digest = None if self_join else series_digest(query)

        cached = self._cache_lookup(ref_digest, qry_digest, m, config)
        if cached is not None:
            self._finish_from_cache(job, decision, cached)
            return

        if self.cluster_dispatcher is not None:
            self._execute_cluster(
                job, decision, config, reference, m,
                n_r_seg, n_q_seg, d, started, ref_digest, qry_digest,
            )
            return

        policy = policy_for(decision.effective)
        tr_layout = to_device_layout(reference, policy.storage)
        tq_layout = (
            tr_layout if self_join else to_device_layout(query, policy.storage)
        )

        replans = 0
        while True:
            try:
                execution = self.scheduler.execute(
                    tr_layout, tq_layout, m, config, zone,
                    n_tiles=config.n_tiles, deadline_at=job.deadline_at,
                    label=f"job{job.job_id}",
                )
                break
            except DeviceOutOfMemoryError:
                # The paper's answer to memory pressure: tile finer.
                if replans >= self.max_replans:
                    raise
                replans += 1
                finer = min(config.n_tiles * 4, n_r_seg * n_q_seg)
                if finer == config.n_tiles:
                    raise
                config = config.with_(n_tiles=finer)
                cached = self._cache_lookup(ref_digest, qry_digest, m, config)
                if cached is not None:
                    self._finish_from_cache(job, decision, cached)
                    return

        merge_time = (
            execution.merge_elements * MERGE_TIME_PER_ELEMENT
            + execution.tiles_completed * TILE_DISPATCH_OVERHEAD
        )
        result = MatrixProfileResult(
            profile=np.ascontiguousarray(execution.profile.T.astype(np.float64)),
            index=np.ascontiguousarray(execution.index.T),
            mode=decision.effective,
            m=m,
            n_tiles=config.n_tiles,
            n_gpus=self.sim.n_gpus,
            timeline=execution.timeline,
            merge_time=merge_time,
            costs=execution.costs,
            precalc_saved_flops=execution.precalc_saved_flops,
            escalations=dict(execution.escalations),
        )

        finished = self.clock()
        latency = finished - job.submitted_at
        partial = execution.partial
        deadline_missed = (
            job.deadline_at is not None and finished > job.deadline_at
        )
        partial_state = None
        if partial:
            partial_state = AnytimeState(
                profile=result.profile,
                index=result.index,
                rows_done=execution.tiles_completed,
                rows_total=execution.tiles_total,
            )
        else:
            if self.cache is not None:
                self.cache.put(
                    cache_key(ref_digest, qry_digest, m, config), result
                )
            self.estimator.observe(
                n_r_seg, n_q_seg, d, decision.effective, finished - started
            )

        self.metrics.record_completion(
            latency,
            partial=partial,
            tiles=execution.tiles_completed,
            retries=execution.tile_retries,
            deadline_missed=deadline_missed,
            escalations=len(execution.escalations),
            splits=execution.tiles_split,
        )
        self.admission.complete(job.job_id)
        job.finish(
            JobOutcome(
                status=JobStatus.PARTIAL if partial else JobStatus.COMPLETED,
                result=result,
                requested_mode=decision.requested,
                effective_mode=decision.effective,
                downgrade_steps=decision.downgrade_steps,
                cache_hit=False,
                latency=latency,
                tiles_total=execution.tiles_total,
                tiles_completed=execution.tiles_completed,
                tile_retries=execution.tile_retries,
                tile_escalations=len(execution.escalations),
                tile_splits=execution.tiles_split,
                deadline_missed=deadline_missed,
                partial_state=partial_state,
            )
        )

    def _autoscale(self) -> None:
        """One autoscaler observation: resize the node fleet against the
        admission controller's EMA backlog (no-op without an autoscaler)."""
        if self.autoscaler is None or self.cluster_dispatcher is None:
            return
        current = self.cluster_dispatcher.cluster.n_nodes
        target = self.autoscaler.observe(
            self.admission.ema_backlog_seconds(), current
        )
        if target != current:
            self.cluster_dispatcher.resize(target)
            self.metrics.record_autoscale(target)

    def _execute_cluster(
        self, job, decision, config, reference, m,
        n_r_seg, n_q_seg, d, started, ref_digest, qry_digest,
    ) -> None:
        """Run one job over the sharded node fleet.

        Deadline jobs run in anytime mode: if the whole fleet dies the
        dispatcher returns the merged prefix instead of raising, and the
        job finishes PARTIAL with a valid anytime state (graceful
        degradation).  Complete runs are cached exactly like pool runs.
        """
        request = job.request
        dispatcher = self.cluster_dispatcher
        spec = JobSpec.from_arrays(reference, job.query, m, config)
        run = dispatcher.run(
            spec, n_tiles=config.n_tiles,
            anytime=job.deadline_at is not None,
        )
        result = run.to_result(spec)
        partial = run.dropped_tiles > 0

        finished = self.clock()
        latency = finished - job.submitted_at
        deadline_missed = (
            job.deadline_at is not None and finished > job.deadline_at
        )
        partial_state = None
        if partial:
            partial_state = AnytimeState(
                profile=result.profile,
                index=result.index,
                rows_done=run.tiles_completed,
                rows_total=run.tiles_total,
            )
        else:
            if self.cache is not None:
                self.cache.put(
                    cache_key(ref_digest, qry_digest, m, config), result
                )
            self.estimator.observe(
                n_r_seg, n_q_seg, d, decision.effective, finished - started
            )

        self.metrics.record_cluster(
            nodes=dispatcher.cluster.n_nodes,
            deaths=len(run.node_deaths),
            resharded=run.tiles_resharded,
            recovery_seconds=run.recovery_overhead,
        )
        self.metrics.record_completion(
            latency,
            partial=partial,
            tiles=run.tiles_completed,
            deadline_missed=deadline_missed,
            escalations=len(run.escalations),
        )
        self.admission.complete(job.job_id)
        job.finish(
            JobOutcome(
                status=JobStatus.PARTIAL if partial else JobStatus.COMPLETED,
                result=result,
                requested_mode=decision.requested,
                effective_mode=decision.effective,
                downgrade_steps=decision.downgrade_steps,
                cache_hit=False,
                latency=latency,
                tiles_total=run.tiles_total,
                tiles_completed=run.tiles_completed,
                tile_escalations=len(run.escalations),
                deadline_missed=deadline_missed,
                partial_state=partial_state,
            )
        )

    def _cache_lookup(
        self, ref_digest: str, qry_digest: str | None, m: int, config: RunConfig
    ) -> MatrixProfileResult | None:
        if self.cache is None:
            return None
        result = self.cache.get(cache_key(ref_digest, qry_digest, m, config))
        self.metrics.record_cache(hit=result is not None)
        return result

    def _finish_from_cache(self, job, decision, result: MatrixProfileResult) -> None:
        latency = self.clock() - job.submitted_at
        deadline_missed = (
            job.deadline_at is not None and self.clock() > job.deadline_at
        )
        self.metrics.record_completion(latency, deadline_missed=deadline_missed)
        self.admission.complete(job.job_id)
        job.finish(
            JobOutcome(
                status=JobStatus.COMPLETED,
                result=result,
                requested_mode=decision.requested,
                effective_mode=decision.effective,
                downgrade_steps=decision.downgrade_steps,
                cache_hit=True,
                latency=latency,
                deadline_missed=deadline_missed,
            )
        )
