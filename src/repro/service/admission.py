"""Admission control: precision-aware load shedding.

The paper's five precision modes form an accuracy/throughput ladder
(Fig. 1 + Fig. 4): halving the storage width roughly doubles the
memory-bound kernel throughput at a bounded, tiling-controlled accuracy
cost.  That is exactly the knob a serving layer wants for graceful
degradation — instead of queueing past deadlines or dropping work, the
admission controller walks a job down the

    FP64 -> FP32 -> Mixed -> FP16

ladder until the estimated backlog plus the job's own estimated runtime
fits inside its deadline budget.  (FP16C enters the ladder at the Mixed
rung: both store half-precision planes with a widened precalculation.)

Runtime estimates come from two sources composed together:

* **relative** mode speed from the roofline model
  (:func:`repro.gpu.perfmodel.single_tile_timing` ratios on a canonical
  tile) — the simulated-hardware ground truth for how much a downgrade
  buys;
* **absolute** wall-seconds-per-cell, learned online from completed jobs
  with an exponential moving average (the host actually executes numpy,
  so absolute speed is a property of the machine, not the model).

Soft transprecision formats (TF32/BFLOAT16,
:mod:`repro.extensions.transprecision`) are not executable service modes
— numpy has no native kernels for them — but
:meth:`LoadEstimator.soft_format_factor` prices them on the same scale so
capacity planning can preview where a tensor-core deployment would land.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..cluster.elastic import BackpressureError, TenantQuota
from ..engine.health import ESCALATION_LADDER
from ..extensions.transprecision import SoftFormat, transprecision_itemsize
from ..gpu.device import DeviceSpec, get_device
from ..gpu.perfmodel import single_tile_timing
from ..precision.modes import PrecisionMode, policy_for

__all__ = ["DOWNGRADE_LADDER", "LoadEstimator", "AdmissionController", "AdmissionDecision"]

#: The degradation ladder, slowest/most-accurate first (Section III-C
#: order by throughput) — by construction the exact inverse of the
#: engine's per-tile recovery ladder
#: (:data:`repro.engine.health.ESCALATION_LADDER`): what the service
#: sheds under load, the engine escalates under numerical distress.
DOWNGRADE_LADDER: tuple[PrecisionMode, ...] = tuple(
    reversed(ESCALATION_LADDER)
)

#: Ladder entry position per mode; FP16C degrades like Mixed (same
#: storage width and widened precalculation).
_LADDER_POSITION: dict[PrecisionMode, int] = {
    PrecisionMode.FP64: 0,
    PrecisionMode.FP32: 1,
    PrecisionMode.MIXED: 2,
    PrecisionMode.FP16C: 2,
    PrecisionMode.FP16: 3,
}

#: Canonical tile used to derive relative mode speeds from the roofline
#: model (the absolute value cancels in the ratio).
_CANONICAL_TILE = (512, 512, 8, 64)  # n_r_seg, n_q_seg, d, m


class LoadEstimator:
    """Wall-clock runtime estimator for service jobs.

    ``seconds_per_cell`` is the estimated FP64 wall time per distance-
    matrix cell (one ``n_r_seg x n_q_seg x d`` element).  It starts from a
    deliberately conservative prior and, when ``learn=True``, tracks the
    machine with an EMA over observed job runtimes.
    """

    def __init__(
        self,
        device: "DeviceSpec | str" = "A100",
        seconds_per_cell: float = 2e-7,
        learn: bool = True,
        ema_weight: float = 0.3,
    ):
        if seconds_per_cell <= 0:
            raise ValueError(f"seconds_per_cell must be > 0, got {seconds_per_cell}")
        if not 0.0 < ema_weight <= 1.0:
            raise ValueError(f"ema_weight must be in (0, 1], got {ema_weight}")
        self.device = get_device(device)
        self.seconds_per_cell = seconds_per_cell
        self.learn = learn
        self.ema_weight = ema_weight
        self._mode_factors = self._derive_mode_factors(self.device)
        self._lock = threading.Lock()

    @staticmethod
    def _derive_mode_factors(device: DeviceSpec) -> dict[PrecisionMode, float]:
        """Per-mode modelled busy-time ratio vs FP64 on the canonical tile.

        Busy time only: the fixed per-kernel launch overheads do not
        scale with problem size, so they cancel out of the per-cell cost
        a downgrade is meant to shrink.
        """
        n_r, n_q, d, m = _CANONICAL_TILE
        totals = {}
        for mode in PrecisionMode:
            policy = policy_for(mode)
            timing = single_tile_timing(
                n_r, n_q, d, m, device, policy.itemsize,
                precalc_itemsize=policy.precalc.itemsize,
                compensated=policy.compensated,
            )
            totals[mode] = sum(kt.busy for kt in timing.kernels.values())
        fp64 = totals[PrecisionMode.FP64]
        return {mode: total / fp64 for mode, total in totals.items()}

    def mode_factor(self, mode: "PrecisionMode | str") -> float:
        """Relative cost of ``mode`` vs FP64 (< 1 for the reduced modes)."""
        return self._mode_factors[PrecisionMode.parse(mode)]

    def soft_format_factor(self, fmt: SoftFormat) -> float:
        """Price a TF32/BF16 soft format on the same relative scale.

        Uses the format's storage width through the same roofline model
        the native modes use — a capacity-planning preview, since the
        soft formats are not executable service modes.
        """
        n_r, n_q, d, m = _CANONICAL_TILE
        itemsize = transprecision_itemsize(fmt)
        timing = single_tile_timing(n_r, n_q, d, m, self.device, itemsize)
        fp64 = single_tile_timing(n_r, n_q, d, m, self.device, 8)
        busy = sum(kt.busy for kt in timing.kernels.values())
        busy64 = sum(kt.busy for kt in fp64.kernels.values())
        return busy / busy64

    def estimate(
        self, n_r_seg: int, n_q_seg: int, d: int, mode: "PrecisionMode | str"
    ) -> float:
        """Estimated wall seconds for one job at ``mode``."""
        cells = float(n_r_seg) * float(n_q_seg) * float(d)
        return cells * self.seconds_per_cell * self.mode_factor(mode)

    def observe(
        self, n_r_seg: int, n_q_seg: int, d: int,
        mode: "PrecisionMode | str", elapsed: float,
    ) -> None:
        """Fold one completed job's measured runtime into the estimator."""
        if not self.learn or elapsed <= 0:
            return
        cells = float(n_r_seg) * float(n_q_seg) * float(d)
        if cells <= 0:
            return
        observed = elapsed / (cells * self.mode_factor(mode))
        with self._lock:
            self.seconds_per_cell += self.ema_weight * (
                observed - self.seconds_per_cell
            )


@dataclass(frozen=True)
class AdmissionDecision:
    """What the controller decided for one job at submission."""

    requested: PrecisionMode
    effective: PrecisionMode
    downgrade_steps: int
    estimated_seconds: float
    backlog_seconds: float

    @property
    def degraded(self) -> bool:
        return self.downgrade_steps > 0


class AdmissionController:
    """Backlog tracking + the precision-downgrade decision.

    The controller keeps the estimated runtime of every admitted-but-
    unfinished job.  A new job with a deadline is admitted at the first
    ladder rung (starting from its requested mode) whose estimate fits

        backlog / parallelism + estimate(mode) <= deadline slack

    and at the fastest rung when none fits — the service degrades
    precision rather than shedding jobs, recording every downgrade.
    """

    def __init__(
        self,
        estimator: LoadEstimator,
        parallelism: int = 1,
        quotas: "dict[str, TenantQuota] | None" = None,
        default_quota: TenantQuota | None = None,
        max_queue_depth: int | None = None,
        backlog_ema_weight: float = 0.3,
    ):
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if not 0.0 < backlog_ema_weight <= 1.0:
            raise ValueError(
                f"backlog_ema_weight must be in (0, 1], got "
                f"{backlog_ema_weight}"
            )
        self.estimator = estimator
        self.parallelism = parallelism
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota
        self.max_queue_depth = max_queue_depth
        self.backlog_ema_weight = backlog_ema_weight
        self.downgraded_jobs = 0
        self.downgrade_steps = 0
        #: job_id -> (estimate_seconds, tenant, cells)
        self._pending: dict[int, tuple[float, str, float]] = {}
        self._backlog_ema = 0.0
        self._lock = threading.Lock()

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    def backlog_seconds(self) -> float:
        """Estimated wall seconds of admitted-but-unfinished work."""
        with self._lock:
            return sum(est for est, _, _ in self._pending.values())

    def ema_backlog_seconds(self) -> float:
        """EMA-smoothed backlog — the autoscaler's signal (instantaneous
        backlog flaps with every submission; the fleet should not)."""
        with self._lock:
            return self._backlog_ema

    def _quota_for(self, tenant: str) -> TenantQuota | None:
        return self.quotas.get(tenant, self.default_quota)

    def check_capacity(self, tenant: str, cells: float) -> None:
        """Backpressure + per-tenant quota gate, before any ladder walk.

        Raises :class:`~repro.cluster.BackpressureError` when the global
        queue is at its depth cap, or
        :class:`~repro.cluster.QuotaExceededError` when ``tenant`` is
        over its own ceiling.  Best-effort and deadline jobs alike are
        shed here — unlike precision shedding, an over-quota job must
        not consume fleet time at *any* mode.
        """
        with self._lock:
            depth = len(self._pending)
            if (
                self.max_queue_depth is not None
                and depth >= self.max_queue_depth
            ):
                raise BackpressureError(depth, self.max_queue_depth)
            quota = self._quota_for(tenant)
            if quota is not None:
                tenant_pending = sum(
                    1 for _, t, _ in self._pending.values() if t == tenant
                )
                quota.check(tenant, tenant_pending, cells)

    def _update_ema_locked(self) -> None:
        backlog = sum(est for est, _, _ in self._pending.values())
        self._backlog_ema += self.backlog_ema_weight * (
            backlog - self._backlog_ema
        )

    def admit(
        self,
        job_id: int,
        n_r_seg: int,
        n_q_seg: int,
        d: int,
        mode: "PrecisionMode | str",
        slack: float | None,
        tenant: str = "default",
    ) -> AdmissionDecision:
        """Decide the effective mode for a job and register its load.

        ``slack`` is the wall-seconds budget until the deadline (``None``
        for best-effort jobs, which are never downgraded).  Capacity
        guards (queue depth, ``tenant``'s quota) fire first — see
        :meth:`check_capacity`.
        """
        self.check_capacity(
            tenant, float(n_r_seg) * float(n_q_seg) * float(d)
        )
        requested = PrecisionMode.parse(mode)
        backlog = self.backlog_seconds() / self.parallelism
        start = _LADDER_POSITION[requested]
        if requested in DOWNGRADE_LADDER:
            ladder = DOWNGRADE_LADDER[start:]
        else:  # FP16C sits between the Mixed and FP16 rungs
            ladder = (requested,) + DOWNGRADE_LADDER[start + 1 :]
        effective = requested
        if slack is not None and ladder:
            for candidate in ladder:
                effective = candidate
                if backlog + self.estimator.estimate(
                    n_r_seg, n_q_seg, d, candidate
                ) <= slack:
                    break
        steps = max(
            _LADDER_POSITION[effective] - _LADDER_POSITION[requested], 0
        )
        estimate = self.estimator.estimate(n_r_seg, n_q_seg, d, effective)
        cells = float(n_r_seg) * float(n_q_seg) * float(d)
        with self._lock:
            self._pending[job_id] = (estimate, tenant, cells)
            self._update_ema_locked()
            if steps > 0:
                self.downgraded_jobs += 1
                self.downgrade_steps += steps
        return AdmissionDecision(
            requested=requested,
            effective=effective,
            downgrade_steps=steps,
            estimated_seconds=estimate,
            backlog_seconds=backlog,
        )

    def complete(self, job_id: int) -> None:
        """Drop a finished (or failed) job from the backlog."""
        with self._lock:
            self._pending.pop(job_id, None)
            self._update_ema_locked()
