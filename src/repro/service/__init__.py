"""Multi-tenant matrix-profile job service with precision-aware load shedding.

The serving layer over the library's one-shot compute path:
:class:`MatrixProfileService` queues :class:`JobRequest` objects by
priority, runs admission control that downgrades precision along the
FP64 -> FP32 -> Mixed -> FP16 ladder (:data:`DOWNGRADE_LADDER`) when the
backlog threatens deadlines, decomposes each job into its tile DAG,
dispatches the tiles across a pool of simulated GPUs with per-tile retry
around transient device failures, caches results content-addressed in a
:class:`ResultCache`, merges anytime-style partials on deadline expiry,
and reports everything through :class:`ServiceMetrics`.

Quick start::

    from repro.service import MatrixProfileService, JobRequest

    service = MatrixProfileService(device="A100", n_gpus=2)
    outcome = service.submit_and_wait(
        JobRequest(reference=series, m=64, mode="FP32", deadline=5.0)
    )
    print(outcome.status, outcome.effective_mode, outcome.result.profile)
"""

from __future__ import annotations

from .admission import (
    DOWNGRADE_LADDER,
    AdmissionController,
    AdmissionDecision,
    LoadEstimator,
)
from .cache import PrecalcStatsCache, ResultCache, cache_key
from .job import Job, JobOutcome, JobRequest, JobStatus, series_digest
from .metrics import MetricsSnapshot, ServiceMetrics, percentile
from .scheduler import (
    HealthPolicy,
    JobExecution,
    TileRetryExhaustedError,
    TileScheduler,
    TransientDeviceError,
)
from .service import MatrixProfileService

__all__ = [
    "MatrixProfileService",
    "JobRequest",
    "Job",
    "JobStatus",
    "JobOutcome",
    "series_digest",
    "PrecalcStatsCache",
    "ResultCache",
    "cache_key",
    "AdmissionController",
    "AdmissionDecision",
    "LoadEstimator",
    "DOWNGRADE_LADDER",
    "ServiceMetrics",
    "MetricsSnapshot",
    "percentile",
    "TileScheduler",
    "JobExecution",
    "TransientDeviceError",
    "TileRetryExhaustedError",
    "HealthPolicy",
]
