"""Service observability: counters, latency percentiles, throughput.

:class:`ServiceMetrics` is the single thread-safe sink every service
component reports into; :meth:`ServiceMetrics.snapshot` freezes it into a
plain :class:`MetricsSnapshot` whose ``to_rows()`` feeds
:func:`repro.reporting.format_table` (and the ``repro serve`` CLI).
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

__all__ = ["MetricsSnapshot", "ServiceMetrics", "percentile"]


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (0 for an empty list).

    ``q`` in [0, 100].  Nearest-rank keeps the number an actually
    observed latency, the convention service dashboards use.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass(frozen=True)
class MetricsSnapshot:
    """Frozen view of the service counters at one instant."""

    jobs_submitted: int
    jobs_completed: int
    jobs_partial: int
    jobs_failed: int
    jobs_in_flight: int
    jobs_per_second: float
    latency_p50: float
    latency_p95: float
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    stats_cache_hits: int
    stats_cache_misses: int
    precision_downgrades: int
    downgraded_jobs: int
    tile_retries: int
    tiles_executed: int
    tile_escalations: int
    tile_splits: int
    deadline_misses: int
    elapsed: float
    # Streaming-tier counters (repro.streams); zero when no tenant has
    # ingested, in which case to_rows() omits the stream section.
    stream_appends: int = 0
    stream_samples: int = 0
    stream_dropped: int = 0
    stream_segments: int = 0
    stream_alarms: int = 0
    stream_suppressed_columns: int = 0
    stream_exact_columns: int = 0
    stream_exact_tiles: int = 0
    stream_shed_steps: int = 0
    stream_escalations: int = 0
    stream_tenants: int = 0
    # Autotuner counters: every planner-tuned job records its chosen
    # row_block; zero jobs → to_rows() omits the section.
    autotuned_jobs: int = 0
    #: ``{row_block: jobs}`` histogram of the tuner's choices.
    autotune_choices: dict = None  # type: ignore[assignment]
    autotune_predicted_seconds: float = 0.0
    # Cluster-tier counters (repro.cluster); to_rows() omits the section
    # when no job ran over a fleet and nothing was shed.
    cluster_jobs: int = 0
    cluster_nodes: int = 0
    node_deaths: int = 0
    tiles_resharded: int = 0
    recovery_seconds: float = 0.0
    backpressure_rejections: int = 0
    quota_rejections: int = 0
    autoscale_events: int = 0

    @property
    def stream_suppression_ratio(self) -> float:
        total = self.stream_suppressed_columns + self.stream_exact_columns
        return self.stream_suppressed_columns / total if total else 0.0

    def to_rows(self) -> list[list[object]]:
        """(metric, value) rows for :func:`repro.reporting.format_table`."""
        rows = self._base_rows()
        if self.stream_appends:
            rows += [
                ["stream tenants", self.stream_tenants],
                ["stream appends", self.stream_appends],
                [
                    "stream samples (dropped)",
                    f"{self.stream_samples} ({self.stream_dropped})",
                ],
                ["stream segments", self.stream_segments],
                ["sketch alarms", self.stream_alarms],
                [
                    "columns suppressed / exact",
                    f"{self.stream_suppressed_columns} / "
                    f"{self.stream_exact_columns}",
                ],
                ["sketch suppression", f"{self.stream_suppression_ratio:.1%}"],
                ["stream exact tiles", self.stream_exact_tiles],
                ["stream shed steps", self.stream_shed_steps],
                ["stream escalations", self.stream_escalations],
            ]
        if self.autotuned_jobs:
            choices = ", ".join(
                f"{block}x{count}"
                for block, count in sorted((self.autotune_choices or {}).items())
            )
            rows += [
                ["autotuned jobs", self.autotuned_jobs],
                ["autotune row_block (block x jobs)", choices],
                [
                    "autotune predicted total (s)",
                    f"{self.autotune_predicted_seconds:.4f}",
                ],
            ]
        if (
            self.cluster_jobs
            or self.backpressure_rejections
            or self.quota_rejections
        ):
            rows += [
                ["cluster jobs", self.cluster_jobs],
                ["cluster nodes (current)", self.cluster_nodes],
                ["node deaths", self.node_deaths],
                ["tiles re-sharded", self.tiles_resharded],
                ["recovery overhead (s)", f"{self.recovery_seconds:.4f}"],
                ["backpressure rejections", self.backpressure_rejections],
                ["quota rejections", self.quota_rejections],
                ["autoscale events", self.autoscale_events],
            ]
        return rows

    def _base_rows(self) -> list[list[object]]:
        return [
            ["jobs submitted", self.jobs_submitted],
            ["jobs completed", self.jobs_completed],
            ["jobs partial (deadline)", self.jobs_partial],
            ["jobs failed", self.jobs_failed],
            ["jobs in flight", self.jobs_in_flight],
            ["throughput (jobs/s)", f"{self.jobs_per_second:.2f}"],
            ["latency p50 (s)", f"{self.latency_p50:.4f}"],
            ["latency p95 (s)", f"{self.latency_p95:.4f}"],
            ["cache hits / misses", f"{self.cache_hits} / {self.cache_misses}"],
            ["cache hit rate", f"{self.cache_hit_rate:.1%}"],
            [
                "stats cache hits / misses",
                f"{self.stats_cache_hits} / {self.stats_cache_misses}",
            ],
            ["precision downgrades (steps)", self.precision_downgrades],
            ["downgraded jobs", self.downgraded_jobs],
            ["tile retries", self.tile_retries],
            ["tiles executed", self.tiles_executed],
            ["tile escalations (health)", self.tile_escalations],
            ["tile splits (OOM)", self.tile_splits],
            ["deadline misses", self.deadline_misses],
            ["window (s)", f"{self.elapsed:.2f}"],
        ]


class ServiceMetrics:
    """Thread-safe accumulator of service-level counters."""

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self._started_at: float | None = None
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_partial = 0
        self.jobs_failed = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.stats_cache_hits = 0
        self.stats_cache_misses = 0
        self.precision_downgrades = 0
        self.downgraded_jobs = 0
        self.tile_retries = 0
        self.tiles_executed = 0
        self.tile_escalations = 0
        self.tile_splits = 0
        self.deadline_misses = 0
        self._latencies: list[float] = []
        self.stream_appends = 0
        self.stream_samples = 0
        self.stream_dropped = 0
        self.stream_segments = 0
        self.stream_alarms = 0
        self.stream_suppressed_columns = 0
        self.stream_exact_columns = 0
        self.stream_exact_tiles = 0
        self.stream_shed_steps = 0
        self.stream_escalations = 0
        self._stream_tenants: set = set()
        self.autotuned_jobs = 0
        self._autotune_choices: dict[int, int] = {}
        self.autotune_predicted_seconds = 0.0
        self.cluster_jobs = 0
        self.cluster_nodes = 0
        self.node_deaths = 0
        self.tiles_resharded = 0
        self.recovery_seconds = 0.0
        self.backpressure_rejections = 0
        self.quota_rejections = 0
        self.autoscale_events = 0

    def record_submission(self) -> None:
        with self._lock:
            if self._started_at is None:
                self._started_at = self._clock()
            self.jobs_submitted += 1

    def record_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def record_stats_cache(self, hit: bool) -> None:
        """One window-statistics store lookup (per series role, per job)."""
        with self._lock:
            if hit:
                self.stats_cache_hits += 1
            else:
                self.stats_cache_misses += 1

    def record_downgrade(self, steps: int) -> None:
        if steps <= 0:
            return
        with self._lock:
            self.downgraded_jobs += 1
            self.precision_downgrades += steps

    def record_completion(
        self,
        latency: float,
        partial: bool = False,
        tiles: int = 0,
        retries: int = 0,
        deadline_missed: bool = False,
        escalations: int = 0,
        splits: int = 0,
    ) -> None:
        with self._lock:
            if partial:
                self.jobs_partial += 1
            else:
                self.jobs_completed += 1
            self._latencies.append(latency)
            self.tiles_executed += tiles
            self.tile_retries += retries
            self.tile_escalations += escalations
            self.tile_splits += splits
            if deadline_missed:
                self.deadline_misses += 1

    def record_stream(
        self,
        tenant_id: str,
        appends: int = 0,
        samples: int = 0,
        dropped: int = 0,
        segments: int = 0,
        alarms: int = 0,
        suppressed: int = 0,
        exact_columns: int = 0,
        exact_tiles: int = 0,
        shed_steps: int = 0,
        escalations: int = 0,
    ) -> None:
        """One streaming ingest step's deltas (repro.streams tier)."""
        with self._lock:
            if self._started_at is None:
                self._started_at = self._clock()
            self._stream_tenants.add(tenant_id)
            self.stream_appends += appends
            self.stream_samples += samples
            self.stream_dropped += dropped
            self.stream_segments += segments
            self.stream_alarms += alarms
            self.stream_suppressed_columns += suppressed
            self.stream_exact_columns += exact_columns
            self.stream_exact_tiles += exact_tiles
            self.stream_shed_steps += shed_steps
            self.stream_escalations += escalations

    def record_autotune(self, row_block: int, predicted_seconds: float) -> None:
        """One job routed through the roofline autotuner."""
        with self._lock:
            self.autotuned_jobs += 1
            self._autotune_choices[row_block] = (
                self._autotune_choices.get(row_block, 0) + 1
            )
            self.autotune_predicted_seconds += predicted_seconds

    def record_cluster(
        self,
        nodes: int,
        deaths: int = 0,
        resharded: int = 0,
        recovery_seconds: float = 0.0,
    ) -> None:
        """One job executed over the cluster pool."""
        with self._lock:
            self.cluster_jobs += 1
            self.cluster_nodes = nodes
            self.node_deaths += deaths
            self.tiles_resharded += resharded
            self.recovery_seconds += recovery_seconds

    def record_rejection(self, kind: str) -> None:
        """A job shed at submission: ``"backpressure"`` or ``"quota"``."""
        with self._lock:
            if kind == "backpressure":
                self.backpressure_rejections += 1
            elif kind == "quota":
                self.quota_rejections += 1
            else:
                raise ValueError(f"unknown rejection kind {kind!r}")

    def record_autoscale(self, nodes: int) -> None:
        """The autoscaler resized the pool to ``nodes``."""
        with self._lock:
            self.autoscale_events += 1
            self.cluster_nodes = nodes

    def record_failure(self, latency: float, retries: int = 0) -> None:
        with self._lock:
            self.jobs_failed += 1
            self._latencies.append(latency)
            self.tile_retries += retries

    def snapshot(self) -> MetricsSnapshot:
        """Freeze the counters into a :class:`MetricsSnapshot`."""
        with self._lock:
            elapsed = (
                self._clock() - self._started_at if self._started_at else 0.0
            )
            finished = self.jobs_completed + self.jobs_partial
            lookups = self.cache_hits + self.cache_misses
            return MetricsSnapshot(
                jobs_submitted=self.jobs_submitted,
                jobs_completed=self.jobs_completed,
                jobs_partial=self.jobs_partial,
                jobs_failed=self.jobs_failed,
                jobs_in_flight=self.jobs_submitted
                - finished
                - self.jobs_failed,
                jobs_per_second=finished / elapsed if elapsed > 0 else 0.0,
                latency_p50=percentile(self._latencies, 50),
                latency_p95=percentile(self._latencies, 95),
                cache_hits=self.cache_hits,
                cache_misses=self.cache_misses,
                cache_hit_rate=self.cache_hits / lookups if lookups else 0.0,
                stats_cache_hits=self.stats_cache_hits,
                stats_cache_misses=self.stats_cache_misses,
                precision_downgrades=self.precision_downgrades,
                downgraded_jobs=self.downgraded_jobs,
                tile_retries=self.tile_retries,
                tiles_executed=self.tiles_executed,
                tile_escalations=self.tile_escalations,
                tile_splits=self.tile_splits,
                deadline_misses=self.deadline_misses,
                elapsed=elapsed,
                stream_appends=self.stream_appends,
                stream_samples=self.stream_samples,
                stream_dropped=self.stream_dropped,
                stream_segments=self.stream_segments,
                stream_alarms=self.stream_alarms,
                stream_suppressed_columns=self.stream_suppressed_columns,
                stream_exact_columns=self.stream_exact_columns,
                stream_exact_tiles=self.stream_exact_tiles,
                stream_shed_steps=self.stream_shed_steps,
                stream_escalations=self.stream_escalations,
                stream_tenants=len(self._stream_tenants),
                autotuned_jobs=self.autotuned_jobs,
                autotune_choices=dict(self._autotune_choices),
                autotune_predicted_seconds=self.autotune_predicted_seconds,
                cluster_jobs=self.cluster_jobs,
                cluster_nodes=self.cluster_nodes,
                node_deaths=self.node_deaths,
                tiles_resharded=self.tiles_resharded,
                recovery_seconds=self.recovery_seconds,
                backpressure_rejections=self.backpressure_rejections,
                quota_rejections=self.quota_rejections,
                autoscale_events=self.autoscale_events,
            )
