"""Job model of the matrix-profile service.

A :class:`JobRequest` is what a tenant submits: the series pair, the
window, the *requested* precision mode, an optional deadline and a
priority.  The service wraps it in a :class:`Job` handle (identity,
timestamps, completion event) and fulfils it with a :class:`JobOutcome`
that records not just the profile but *how* it was produced: the
effective precision after admission-control downgrades, whether the
result came from the cache, how many tile retries the failure machinery
absorbed, and — for deadline-expired jobs — the anytime-style partial
merge state.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
import threading
from dataclasses import dataclass, field

import numpy as np

from ..core.anytime import AnytimeState
from ..core.result import MatrixProfileResult
from ..precision.modes import PrecisionMode

__all__ = ["JobStatus", "JobRequest", "Job", "JobOutcome", "series_digest"]


def series_digest(series: np.ndarray) -> str:
    """Content digest of a time series (shape + dtype + raw bytes).

    The digest is the series half of the service cache key: two requests
    over byte-identical data share it regardless of the array object.
    """
    arr = np.ascontiguousarray(series)
    h = hashlib.sha256()
    h.update(str(arr.shape).encode())
    h.update(str(arr.dtype).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


class JobStatus(str, enum.Enum):
    """Lifecycle of a service job."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    PARTIAL = "partial"  # deadline expired; anytime-style partial merge
    FAILED = "failed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class JobRequest:
    """One tenant request for a matrix profile.

    Parameters
    ----------
    reference, query:
        Host time series, ``(n, d)`` time-major (``query=None`` for a
        self-join, as in :func:`repro.matrix_profile`).
    m:
        Segment length.
    mode:
        *Requested* precision mode.  The admission controller may
        downgrade it along the FP64 -> FP32 -> Mixed -> FP16 ladder when
        the backlog threatens the deadline.
    deadline:
        Latency budget in wall seconds from submission, or ``None`` for
        best-effort (never downgraded, never cut short).
    priority:
        Lower values dequeue first (ties are FIFO).
    n_tiles:
        Minimum tile count; the planner may raise it to fit device
        memory.  ``None`` lets the planner choose alone.
    exclusion_zone:
        Self-join trivial-match radius override (see ``RunConfig``).
    tenant:
        Billing/quota identity; per-tenant admission ceilings
        (:class:`repro.cluster.TenantQuota`) key on it.
    """

    reference: np.ndarray
    m: int
    query: np.ndarray | None = None
    mode: "PrecisionMode | str" = PrecisionMode.FP64
    deadline: float | None = None
    priority: int = 0
    n_tiles: int | None = None
    exclusion_zone: int | None = None
    tenant: str = "default"

    def __post_init__(self) -> None:
        self.mode = PrecisionMode.parse(self.mode)
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.m < 2:
            raise ValueError(f"m must be >= 2, got {self.m}")
        if not self.tenant:
            raise ValueError("tenant must be a non-empty string")


@dataclass
class JobOutcome:
    """Everything the service records about one finished job."""

    status: JobStatus
    result: MatrixProfileResult | None
    requested_mode: PrecisionMode
    effective_mode: PrecisionMode
    downgrade_steps: int = 0
    cache_hit: bool = False
    latency: float = 0.0  # wall seconds, submission -> completion
    tiles_total: int = 0
    tiles_completed: int = 0
    tile_retries: int = 0
    #: Tiles that failed a health check and were re-executed at a higher
    #: precision (see :mod:`repro.engine.health`).
    tile_escalations: int = 0
    #: Tiles split after a device OOM (``oom_tile_split=True``).
    tile_splits: int = 0
    deadline_missed: bool = False
    error: str | None = None
    #: For PARTIAL jobs: the anytime-style merge state (completed tiles
    #: merged, remaining columns at the dtype limit — a valid upper bound,
    #: exactly the :mod:`repro.core.anytime` contract).
    partial_state: AnytimeState | None = None

    @property
    def degraded(self) -> bool:
        return self.downgrade_steps > 0

    @property
    def completed_fraction(self) -> float:
        if self.tiles_total == 0:
            return 1.0 if self.status is JobStatus.COMPLETED else 0.0
        return self.tiles_completed / self.tiles_total


_job_ids = itertools.count(1)


class Job:
    """Handle to a submitted request: identity, timestamps, completion."""

    def __init__(self, request: JobRequest, submitted_at: float):
        self.request = request
        self.job_id = next(_job_ids)
        self.submitted_at = submitted_at
        self.deadline_at = (
            None if request.deadline is None else submitted_at + request.deadline
        )
        self.status = JobStatus.PENDING
        self.outcome: JobOutcome | None = None
        # Filled in by the service at submission: the validated (n, d)
        # series and the admission-control decision for this job.
        self.reference: np.ndarray | None = None
        self.query: np.ndarray | None = None
        self.decision = None
        self._done = threading.Event()

    def finish(self, outcome: JobOutcome) -> None:
        """Record the outcome and release any waiters."""
        self.outcome = outcome
        self.status = outcome.status
        self._done.set()

    def wait(self, timeout: float | None = None) -> JobOutcome | None:
        """Block until the job finishes; returns the outcome (or ``None``
        on wait timeout)."""
        if not self._done.wait(timeout):
            return None
        return self.outcome

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Job(id={self.job_id}, status={self.status})"


@dataclass(order=True)
class QueuedJob:
    """Priority-queue entry: (priority, submission sequence) ordering."""

    priority: int
    sequence: int
    job: Job = field(compare=False)
