"""Tile dispatch for service jobs: the shared GPU pool, retries, deadlines.

One job decomposes into its tile DAG via :mod:`repro.core.tiling` (the
near-square grid of Pseudocode 2; tiles are independent, the merge is the
single join node), and the scheduler walks the work queue dispatching
each tile to the next simulated GPU of the shared pool:

* **failure injection + retry** — a ``failure_injector`` callback may
  raise :class:`TransientDeviceError` for any (tile, device, attempt);
  the tile is re-queued on a *different* GPU, up to ``max_retries``
  attempts per tile, mirroring how a real service routes around a sick
  device.  Device OOM (:class:`~repro.gpu.memory.DeviceOutOfMemoryError`)
  is *not* retried here — it propagates so the service layer can re-plan
  with a finer tiling, the paper's own answer to memory pressure.
* **deadline timeout** — when the wall clock passes ``deadline_at`` the
  remaining tiles are abandoned and the completed ones are merged
  anytime-style: untouched query columns stay at the dtype limit, so the
  partial profile is a valid upper bound exactly as in
  :mod:`repro.core.anytime`.

Numerics run outside the pool lock (pure numpy); only allocator and
stream bookkeeping are serialised, so concurrent service workers can
overlap their tiles' arithmetic.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..core.config import RunConfig
from ..core.multi_tile import merge_tile_outputs
from ..core.single_tile import _workspace_bytes, run_tile, schedule_tile
from ..core.tiling import Tile, compute_tile_list
from ..gpu.kernel import KernelCost
from ..gpu.simulator import GPUSimulator
from ..gpu.stream import Timeline, flush_streams
from ..kernels.update import INDEX_DTYPE
from ..precision.modes import DTYPE_MAX

__all__ = ["TransientDeviceError", "TileRetryExhaustedError", "TileScheduler", "JobExecution"]


class TransientDeviceError(RuntimeError):
    """A recoverable per-tile device failure (injected or simulated)."""


class TileRetryExhaustedError(RuntimeError):
    """A tile failed on every allowed attempt."""

    def __init__(self, tile_id: int, attempts: int, last: Exception):
        self.tile_id = tile_id
        self.attempts = attempts
        self.last = last
        super().__init__(
            f"tile {tile_id} failed after {attempts} attempts: {last}"
        )


@dataclass
class _TileWork:
    tile: Tile
    attempt: int = 0
    excluded: set[int] = field(default_factory=set)


@dataclass
class JobExecution:
    """Merged output + bookkeeping of one job's tile schedule."""

    profile: np.ndarray  # (d, n_q_seg), storage dtype
    index: np.ndarray  # (d, n_q_seg), int64
    costs: dict[str, KernelCost]
    timeline: Timeline
    merge_elements: int
    tiles_total: int
    tiles_completed: int
    tile_retries: int

    @property
    def partial(self) -> bool:
        return self.tiles_completed < self.tiles_total


class TileScheduler:
    """Dispatches tiles of service jobs across a shared simulated GPU pool."""

    def __init__(
        self,
        sim: GPUSimulator,
        max_retries: int = 2,
        failure_injector=None,
        clock=time.monotonic,
    ):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.sim = sim
        self.max_retries = max_retries
        self.failure_injector = failure_injector
        self.clock = clock
        self._lock = threading.RLock()
        self._rr = 0  # pool-wide round-robin cursor

    def _pick_gpu(self, excluded: set[int]) -> int:
        """Next pool GPU round-robin, skipping excluded devices."""
        with self._lock:
            n = self.sim.n_gpus
            for _ in range(n):
                gpu_id = self._rr % n
                self._rr += 1
                if gpu_id not in excluded:
                    return gpu_id
            # Every device excluded: fall back to plain round-robin.
            return self._rr % n

    def execute(
        self,
        tr_layout: np.ndarray,
        tq_layout: np.ndarray,
        m: int,
        config: RunConfig,
        zone: int | None,
        n_tiles: int,
        deadline_at: float | None = None,
        label: str = "job",
    ) -> JobExecution:
        """Run one job's tile DAG; returns the merged (possibly partial)
        output.

        ``tr_layout``/``tq_layout`` are the device-layout ``(d, n)``
        series in the storage dtype (``tq_layout is tr_layout`` for
        self-joins).
        """
        policy = config.policy
        d = tr_layout.shape[0]
        n_r_seg = tr_layout.shape[1] - m + 1
        n_q_seg = tq_layout.shape[1] - m + 1
        tiles = compute_tile_list(n_r_seg, n_q_seg, n_tiles)

        limit = policy.storage.type(DTYPE_MAX[policy.storage])
        profile = np.full((d, n_q_seg), limit, dtype=policy.storage)
        index = np.full((d, n_q_seg), -1, dtype=INDEX_DTYPE)
        timeline = Timeline()
        costs: dict[str, KernelCost] = {}
        merge_elements = 0
        completed = 0
        retries = 0

        work = deque(_TileWork(tile) for tile in tiles)
        while work:
            if deadline_at is not None and self.clock() >= deadline_at:
                break  # anytime-style: merge what finished, abandon the rest
            item = work.popleft()
            gpu_id = self._pick_gpu(item.excluded)
            try:
                output = self._run_one(
                    item.tile, gpu_id, item.attempt, tr_layout, tq_layout,
                    m, config, zone, timeline, label,
                )
            except TransientDeviceError as exc:
                if item.attempt >= self.max_retries:
                    raise TileRetryExhaustedError(
                        item.tile.tile_id, item.attempt + 1, exc
                    ) from exc
                item.attempt += 1
                item.excluded.add(gpu_id)
                retries += 1
                work.append(item)  # re-queue at the back, different device
                continue
            merge_tile_outputs(
                profile, index, item.tile, output.profile, output.indices
            )
            merge_elements += output.profile.size
            for name, cost in output.costs.items():
                costs[name] = cost if name not in costs else costs[name] + cost
            completed += 1

        return JobExecution(
            profile=profile,
            index=index,
            costs=costs,
            timeline=timeline,
            merge_elements=merge_elements,
            tiles_total=len(tiles),
            tiles_completed=completed,
            tile_retries=retries,
        )

    def _run_one(
        self,
        tile: Tile,
        gpu_id: int,
        attempt: int,
        tr_layout: np.ndarray,
        tq_layout: np.ndarray,
        m: int,
        config: RunConfig,
        zone: int | None,
        timeline: Timeline,
        label: str,
    ):
        """Upload, execute and schedule one tile on ``gpu_id``.

        The failure injector fires *before* device allocations, so an
        injected failure never leaks pool memory.
        """
        policy = config.policy
        d = tr_layout.shape[0]
        gpu = self.sim.gpus[gpu_id]
        if self.failure_injector is not None:
            self.failure_injector(label, tile, gpu_id, attempt)
        r0, r1 = tile.sample_range_rows(m)
        c0, c1 = tile.sample_range_cols(m)
        allocations = []
        try:
            with self._lock:
                tr_alloc = gpu.memory.upload(
                    np.ascontiguousarray(tr_layout[:, r0:r1]),
                    label=f"{label}:Tr{tile.tile_id}",
                )
                allocations.append(tr_alloc)
                tq_alloc = gpu.memory.upload(
                    np.ascontiguousarray(tq_layout[:, c0:c1]),
                    label=f"{label}:Tq{tile.tile_id}",
                )
                allocations.append(tq_alloc)
                workspace = gpu.memory.reserve(
                    _workspace_bytes(tile.n_rows, tile.n_cols, d, policy),
                    label=f"{label}:ws{tile.tile_id}",
                )
                allocations.append(workspace)
            output = run_tile(
                tr_alloc.array,
                tq_alloc.array,
                m,
                policy,
                config.launch,
                row_offset=tile.row_start,
                col_offset=tile.col_start,
                exclusion_zone=zone,
                sort_strategy=config.sort_strategy,
                fast_path_1d=config.fast_path_1d,
            )
            with self._lock:
                stream = gpu.next_stream()
                schedule_tile(
                    gpu, stream, timeline, output, policy,
                    label=f"{label}:tile{tile.tile_id}",
                )
                flush_streams(gpu.streams, timeline)
        finally:
            with self._lock:
                for alloc in allocations:
                    alloc.free()
        return output
