"""Tile dispatch for service jobs: the shared GPU pool, retries, deadlines.

One job decomposes into its tile DAG via :mod:`repro.core.tiling` (the
near-square grid of Pseudocode 2; tiles are independent, the merge is the
single join node).  The loop itself lives in the execution engine
(:func:`repro.engine.dispatch.execute_plan`); :class:`TileScheduler` is
the service's adapter over it, contributing the pool-shared state:

* **placement** — one :class:`~repro.engine.dispatch.RoundRobinPlacement`
  cursor shared by every job, so concurrent jobs interleave over the
  pool; a ``failure_injector`` may raise
  :class:`~repro.engine.dispatch.TransientDeviceError` for any
  (tile, device, attempt) and the engine re-queues the tile on a
  *different* GPU, up to ``max_retries`` attempts per tile, mirroring how
  a real service routes around a sick device.  Device OOM
  (:class:`~repro.gpu.memory.DeviceOutOfMemoryError`) is *not* retried —
  it propagates so the service layer can re-plan with a finer tiling,
  the paper's own answer to memory pressure (unless the scheduler is
  built with ``oom_split=True``, in which case the engine splits the
  offending tile in place).
* **numerical health** — an optional
  :class:`~repro.engine.health.HealthPolicy` validates every tile's
  output and escalates sick tiles up the precision ladder; escalation
  and split counts are surfaced on :class:`JobExecution` for the
  service metrics.
* **deadline timeout** — when the wall clock passes ``deadline_at`` the
  remaining tiles are abandoned and the completed ones are merged
  anytime-style: untouched query columns stay at the dtype limit, so the
  partial profile is a valid upper bound exactly as in
  :mod:`repro.core.anytime`.

Numerics run outside the pool lock (pure numpy); only allocator and
stream bookkeeping are serialised, so concurrent service workers can
overlap their tiles' arithmetic.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..core.config import RunConfig
from ..engine.accumulate import ProfileAccumulator
from ..engine.backends import NumericBackend
from ..engine.dispatch import (  # noqa: F401 - re-exported API
    RoundRobinPlacement,
    TileRetryExhaustedError,
    TransientDeviceError,
    execute_plan,
)
from ..engine.health import HealthPolicy  # noqa: F401 - re-exported API
from ..engine.plan import JobSpec
from ..gpu.kernel import KernelCost
from ..gpu.simulator import GPUSimulator
from ..gpu.stream import Timeline
from ..precision.modes import PrecisionMode

__all__ = ["TransientDeviceError", "TileRetryExhaustedError", "TileScheduler", "JobExecution"]


@dataclass
class JobExecution:
    """Merged output + bookkeeping of one job's tile schedule."""

    profile: np.ndarray  # (d, n_q_seg), storage dtype
    index: np.ndarray  # (d, n_q_seg), int64
    costs: dict[str, KernelCost]
    timeline: Timeline
    merge_elements: int
    tiles_total: int
    tiles_completed: int
    tile_retries: int
    escalations: dict[int, PrecisionMode]
    tiles_split: int
    health_failures: int
    precalc_saved_flops: float = 0.0

    @property
    def partial(self) -> bool:
        return self.tiles_completed < self.tiles_total


class TileScheduler:
    """Dispatches tiles of service jobs across a shared simulated GPU pool."""

    def __init__(
        self,
        sim: GPUSimulator,
        max_retries: int = 2,
        failure_injector=None,
        clock=time.monotonic,
        health: "HealthPolicy | None" = None,
        corruptor=None,
        oom_split: bool = False,
        stats_cache=None,
    ):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.sim = sim
        self.max_retries = max_retries
        self.failure_injector = failure_injector
        self.clock = clock
        self.health = health
        self.corruptor = corruptor
        self.oom_split = oom_split
        #: Optional cross-job window-statistics store
        #: (:class:`~repro.service.cache.PrecalcStatsCache`): handed to
        #: every plan so repeated jobs on the same series skip the
        #: precalc statistics pass.
        self.stats_cache = stats_cache
        # One lock guards the allocator/stream bookkeeping AND the
        # placement cursor (RLock: the engine nests them).
        self._lock = threading.RLock()
        self._placement = RoundRobinPlacement(sim.n_gpus, lock=self._lock)

    def _pick_gpu(self, excluded: set[int]) -> int:
        """Next pool GPU round-robin, skipping excluded devices."""
        return self._placement.pick(None, excluded)

    def execute(
        self,
        tr_layout: np.ndarray,
        tq_layout: np.ndarray,
        m: int,
        config: RunConfig,
        zone: int | None,
        n_tiles: int,
        deadline_at: float | None = None,
        label: str = "job",
    ) -> JobExecution:
        """Run one job's tile DAG; returns the merged (possibly partial)
        output.

        ``tr_layout``/``tq_layout`` are the device-layout ``(d, n)``
        series in the storage dtype (``tq_layout is tr_layout`` for
        self-joins).
        """
        spec = JobSpec.from_layouts(
            tr_layout, tq_layout, m, config, exclusion_zone=zone
        )
        plan = spec.plan(
            n_tiles=n_tiles,
            n_gpus=self.sim.n_gpus,
            precalc_store=self.stats_cache,
        )
        timeline = Timeline()  # job-local: jobs report their own makespans
        accumulator = ProfileAccumulator(spec.d, spec.n_q_seg, spec.policy)
        report = execute_plan(
            plan,
            NumericBackend(lock=self._lock, label=label),
            self.sim,
            accumulator=accumulator,
            placement=self._placement,
            timeline=timeline,
            max_retries=self.max_retries,
            deadline_at=deadline_at,
            clock=self.clock,
            failure_injector=self.failure_injector,
            label=label,
            flush_per_tile=True,
            lock=self._lock,
            health=self.health,
            corruptor=self.corruptor,
            oom_split=self.oom_split,
        )
        return JobExecution(
            profile=accumulator.profile,
            index=accumulator.index,
            costs=accumulator.costs,
            timeline=timeline,
            merge_elements=accumulator.merge_elements,
            tiles_total=report.tiles_total,
            tiles_completed=report.tiles_completed,
            tile_retries=report.tile_retries,
            escalations=dict(report.escalations),
            tiles_split=len(report.splits),
            health_failures=report.health_failures,
            precalc_saved_flops=accumulator.precalc_saved_flops,
        )
