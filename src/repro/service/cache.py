"""Content-addressed result cache with LRU eviction.

A cache entry is keyed by *what was computed*: the content digests of the
input series plus the :meth:`RunConfig.cache_key` of the **effective**
run configuration.  Keying on the effective (post-admission) config is
deliberate: in the reduced-precision modes the tile count changes the
numerics (each tile restarts the Eq. (1) recurrence), so two runs of the
same series at different tilings or modes are different results and must
not alias.

Eviction is least-recently-used, bounded both by entry count and by the
total payload bytes (profile + index arrays), and hit/miss/eviction
counters feed :class:`~repro.service.metrics.ServiceMetrics`.

:class:`PrecalcStatsCache` is the second, finer-grained cache of this
module: it stores per-series *window-statistics planes* (mu/inv/df/dg)
for the engine's plan-level precalc amortisation layer, so repeated jobs
on the same series — the service's dominant traffic pattern — skip the
O(n·m·d) statistics pass even when the result itself misses (different
tiling, different m pairing, first run of an A/B pair).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..core.config import RunConfig
from ..core.result import MatrixProfileResult

__all__ = ["ResultCache", "PrecalcStatsCache", "cache_key"]


def cache_key(
    reference_digest: str, query_digest: str | None, m: int, config: RunConfig
) -> str:
    """Stable content-addressed key for one computed profile."""
    return f"{reference_digest}:{query_digest or 'self'}:{m}:{config.cache_key()}"


class ResultCache:
    """Thread-safe LRU cache of :class:`MatrixProfileResult` objects.

    Parameters
    ----------
    max_entries:
        Hard cap on the number of cached results.
    max_bytes:
        Cap on the summed profile+index payload bytes.  Oldest entries
        are evicted first when either bound is exceeded.
    """

    def __init__(self, max_entries: int = 128, max_bytes: int = 256 * 1024 * 1024):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._bytes = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, MatrixProfileResult] = OrderedDict()

    @staticmethod
    def _entry_bytes(result: MatrixProfileResult) -> int:
        return int(result.profile.nbytes + result.index.nbytes)

    def get(self, key: str) -> MatrixProfileResult | None:
        """Look up ``key``; counts a hit (and refreshes recency) or a miss."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: str, result: MatrixProfileResult) -> None:
        """Insert (or refresh) an entry, evicting LRU entries as needed."""
        nbytes = self._entry_bytes(result)
        with self._lock:
            if key in self._entries:
                self._bytes -= self._entry_bytes(self._entries.pop(key))
            self._entries[key] = result
            self._bytes += nbytes
            while self._entries and (
                len(self._entries) > self.max_entries or self._bytes > self.max_bytes
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= self._entry_bytes(evicted)
                self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def payload_bytes(self) -> int:
        return self._bytes

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> dict[str, int | float]:
        """Counter snapshot for metrics/reporting."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "payload_bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hit_rate,
            }


class PrecalcStatsCache:
    """Thread-safe LRU store of per-series window-statistics planes.

    The plug-in ``store`` of the engine's
    :class:`~repro.engine.precalc_cache.PrecalcPlaneCache`: keys are the
    engine's content-addressed role keys (series-layout digest + shape +
    dtype + m + mode — precalc-relevant fields only, so jobs differing
    in tiling, strategy or result-affecting knobs still share the
    planes), values are dicts of numpy planes.  Entries are treated as
    immutable by the engine — tiles slice them read-only.

    ``on_lookup`` (if given) is called with ``True``/``False`` per
    lookup; the service wires it to
    :meth:`~repro.service.metrics.ServiceMetrics.record_stats_cache`.
    """

    def __init__(
        self,
        max_entries: int = 64,
        max_bytes: int = 256 * 1024 * 1024,
        on_lookup=None,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.on_lookup = on_lookup
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._bytes = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[object, dict] = OrderedDict()

    @staticmethod
    def _entry_bytes(entry: dict) -> int:
        return int(sum(arr.nbytes for arr in entry.values()))

    def get(self, key) -> dict | None:
        """Look up one series role's planes; records hit/miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
        if self.on_lookup is not None:
            self.on_lookup(entry is not None)
        return entry

    def put(self, key, entry: dict) -> None:
        """Insert (or refresh) a role's planes, evicting LRU as needed."""
        nbytes = self._entry_bytes(entry)
        with self._lock:
            if key in self._entries:
                self._bytes -= self._entry_bytes(self._entries.pop(key))
            self._entries[key] = entry
            self._bytes += nbytes
            while self._entries and (
                len(self._entries) > self.max_entries or self._bytes > self.max_bytes
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= self._entry_bytes(evicted)
                self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def payload_bytes(self) -> int:
        return self._bytes

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> dict[str, int | float]:
        """Counter snapshot for metrics/reporting."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "payload_bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hit_rate,
            }
