"""Extensions implementing the paper's future-work directions (Section VII):
TF32/BFLOAT16 transprecision modes, multi-node (MPI-style) deployment, and
mSTAMP motif-subspace recovery."""

from .multinode import ClusterSpec, MultiNodeResult, NodeTimeline, model_multi_node
from .subspace import (
    MotifSubspace,
    motif_with_subspace,
    recover_subspace,
    segment_distances,
)
from .transprecision import (
    BF16,
    SOFT_FORMATS,
    SOFT_FP16,
    TF32,
    SoftFormat,
    round_to_format,
    transprecision_itemsize,
    transprecision_matrix_profile,
)

__all__ = [
    "ClusterSpec",
    "MultiNodeResult",
    "NodeTimeline",
    "model_multi_node",
    "MotifSubspace",
    "motif_with_subspace",
    "recover_subspace",
    "segment_distances",
    "SoftFormat",
    "BF16",
    "TF32",
    "SOFT_FP16",
    "SOFT_FORMATS",
    "round_to_format",
    "transprecision_itemsize",
    "transprecision_matrix_profile",
]
