"""Multi-node scaling model — the paper's future-work item:

    "our implementation could be further extended to multiple nodes
    (e.g., using MPI or a Cloud-based solution)" (Section VII).

The workload is not communication-bound (Section I), so a multi-node
deployment distributes tiles across nodes exactly like the single-node
scheme distributes them across GPUs, plus three communication phases an
MPI deployment would add: broadcasting the input series, gathering the
per-node partial profiles, and the root-side final merge.  This module
models that deployment over the simulated GPU substrate and reports the
strong-scaling behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import RunConfig
from ..core.tiling import compute_tile_list
from ..engine.backends import AnalyticBackend
from ..engine.dispatch import execute_plan
from ..engine.plan import JobSpec
from ..gpu.calibration import MERGE_TIME_PER_ELEMENT, TILE_DISPATCH_OVERHEAD
from ..gpu.device import DeviceSpec, get_device
from ..gpu.simulator import GPUSimulator
from ..precision.modes import PrecisionMode

__all__ = ["ClusterSpec", "NodeTimeline", "MultiNodeResult", "model_multi_node"]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous GPU cluster.

    Defaults describe a Raven-like partition: 4 A100s per node on a
    100 Gbit/s (12.5 GB/s effective) interconnect with 2 µs MPI latency.
    """

    n_nodes: int
    gpus_per_node: int = 4
    device: str = "A100"
    interconnect_bandwidth: float = 12.5e9  # bytes/s per link
    mpi_latency: float = 2.0e-6  # seconds per message

    def __post_init__(self) -> None:
        if self.n_nodes < 1 or self.gpus_per_node < 1:
            raise ValueError("cluster needs at least one node and one GPU")

    @property
    def total_gpus(self) -> int:
        return self.n_nodes * self.gpus_per_node

    @property
    def device_spec(self) -> DeviceSpec:
        return get_device(self.device)


@dataclass
class NodeTimeline:
    """Per-node modelled times."""

    node: int
    n_tiles: int
    gpu_time: float


@dataclass
class MultiNodeResult:
    """Outcome of a modelled multi-node run."""

    cluster: ClusterSpec
    mode: PrecisionMode
    nodes: list[NodeTimeline] = field(default_factory=list)
    broadcast_time: float = 0.0
    gather_time: float = 0.0
    merge_time: float = 0.0

    @property
    def gpu_makespan(self) -> float:
        return max((n.gpu_time for n in self.nodes), default=0.0)

    @property
    def total_time(self) -> float:
        return self.broadcast_time + self.gpu_makespan + self.gather_time + self.merge_time

    def efficiency_vs(self, single_node: "MultiNodeResult") -> float:
        """Strong-scaling parallel efficiency against a 1-node run."""
        return single_node.total_time / (
            self.cluster.n_nodes * self.total_time
        )


def model_multi_node(
    n_seg: int,
    d: int,
    m: int,
    cluster: ClusterSpec,
    n_tiles: int | None = None,
    mode: "PrecisionMode | str" = PrecisionMode.FP64,
) -> MultiNodeResult:
    """Model one multi-node matrix profile run.

    Tiles (default: 4 per GPU, the paper's oversubscription guidance) are
    assigned round-robin across the flattened (node, gpu) list; each
    node's GPUs are simulated with the stream scheduler; communication
    adds a binomial-tree broadcast of both input series and a gather of
    every node's partial profile to the root, which performs the final
    min/argmin merge.
    """
    device = cluster.device_spec
    config = RunConfig(mode=mode, device=device)
    spec = JobSpec.modeled(n_seg, n_seg, d, m, config)
    policy = spec.policy
    n_tiles = n_tiles if n_tiles is not None else 4 * cluster.total_gpus
    tiles = compute_tile_list(n_seg, n_seg, n_tiles)

    result = MultiNodeResult(cluster=cluster, mode=policy.mode)

    # Per-node simulation: tiles t with (t % total_gpus) // gpus_per_node
    # landing on this node (round-robin over the flat GPU list); within the
    # node each tile runs on its flat GPU modulo the node size.
    for node in range(cluster.n_nodes):
        node_tiles = [
            tile
            for tile in tiles
            if (tile.tile_id % cluster.total_gpus) // cluster.gpus_per_node == node
        ]
        assignment = [
            (tile.tile_id % cluster.total_gpus) % cluster.gpus_per_node
            for tile in node_tiles
        ]
        sim = GPUSimulator(device, n_gpus=cluster.gpus_per_node)
        execute_plan(
            spec.plan(tiles=node_tiles, assignment=assignment),
            AnalyticBackend(),
            sim,
        )
        result.nodes.append(
            NodeTimeline(
                node=node, n_tiles=len(node_tiles), gpu_time=sim.timeline.makespan
            )
        )

    # Binomial-tree broadcast of both input series: ceil(log2 N) rounds.
    input_bytes = 2.0 * (n_seg + m - 1) * d * policy.itemsize
    rounds = max(cluster.n_nodes - 1, 0).bit_length()
    result.broadcast_time = rounds * (
        input_bytes / cluster.interconnect_bandwidth + cluster.mpi_latency
    )

    # Local tile merge runs concurrently on every node (each node merges
    # only its own tiles), then an MPI_Reduce-style binomial tree combines
    # the per-node partials: ceil(log2 N) rounds, each moving one partial
    # profile and applying one element-wise min/argmin pass.
    covering = max(1, round(len(tiles) ** 0.5))
    local_merge = (
        float(n_seg) * d * covering * MERGE_TIME_PER_ELEMENT / cluster.n_nodes
        + len(tiles) * TILE_DISPATCH_OVERHEAD / cluster.n_nodes
    )
    partial_bytes = float(n_seg) * d * (policy.itemsize + 8)
    reduce_rounds = max(cluster.n_nodes - 1, 0).bit_length()
    result.gather_time = reduce_rounds * (
        partial_bytes / cluster.interconnect_bandwidth + cluster.mpi_latency
    )
    result.merge_time = local_merge + reduce_rounds * (
        float(n_seg) * d * MERGE_TIME_PER_ELEMENT
    )
    return result
