"""Multi-node scaling model — now a thin adapter over ``repro.cluster``.

The paper's Section VII future-work item ("our implementation could be
further extended to multiple nodes, e.g., using MPI or a Cloud-based
solution") grew into the full sharded execution tier in
:mod:`repro.cluster`: topology-aware placement, deterministic node
storms, node-loss recovery, journaled resume.  This module keeps the
original analytic modelling surface — :func:`model_multi_node` and the
:class:`MultiNodeResult` strong-scaling report — as a compatibility
facade that delegates to :class:`~repro.cluster.ClusterDispatcher` on a
fault-free fleet.  The numbers are unchanged: the dispatcher's
fault-free path prices exactly the same broadcast/compute/gather/merge
phases this module used to compute inline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster import ClusterDispatcher, ClusterSpec
from ..core.config import RunConfig
from ..engine.plan import JobSpec
from ..precision.modes import PrecisionMode

__all__ = ["ClusterSpec", "NodeTimeline", "MultiNodeResult", "model_multi_node"]


@dataclass
class NodeTimeline:
    """Per-node modelled times."""

    node: int
    n_tiles: int
    gpu_time: float


@dataclass
class MultiNodeResult:
    """Outcome of a modelled multi-node run."""

    cluster: ClusterSpec
    mode: PrecisionMode
    nodes: list[NodeTimeline] = field(default_factory=list)
    broadcast_time: float = 0.0
    gather_time: float = 0.0
    merge_time: float = 0.0

    @property
    def gpu_makespan(self) -> float:
        return max((n.gpu_time for n in self.nodes), default=0.0)

    @property
    def total_time(self) -> float:
        return self.broadcast_time + self.gpu_makespan + self.gather_time + self.merge_time

    def efficiency_vs(self, single_node: "MultiNodeResult") -> float:
        """Strong-scaling parallel efficiency against a 1-node run."""
        return single_node.total_time / (
            self.cluster.n_nodes * self.total_time
        )


def model_multi_node(
    n_seg: int,
    d: int,
    m: int,
    cluster: ClusterSpec,
    n_tiles: int | None = None,
    mode: "PrecisionMode | str" = PrecisionMode.FP64,
) -> MultiNodeResult:
    """Model one fault-free multi-node matrix profile run.

    Tiles (default: 4 per GPU, the paper's oversubscription guidance)
    shard per the cluster's placement; each node's GPUs are simulated
    with the stream scheduler; communication adds a binomial-tree
    broadcast of both input series and a reduce-tree gather of every
    node's partial profile to the root, which performs the final
    min/argmin merge.  For storms, journaling, and numeric execution use
    :class:`repro.cluster.ClusterDispatcher` directly.
    """
    config = RunConfig(mode=mode, device=cluster.device_spec)
    spec = JobSpec.modeled(n_seg, n_seg, d, m, config)
    run = ClusterDispatcher(cluster).run(spec, n_tiles=n_tiles)
    result = MultiNodeResult(
        cluster=cluster,
        mode=run.mode,
        broadcast_time=run.broadcast_time,
        gather_time=run.gather_time,
        merge_time=run.merge_time,
    )
    for shard in run.nodes:
        result.nodes.append(
            NodeTimeline(
                node=shard.node, n_tiles=shard.n_tiles, gpu_time=shard.gpu_time
            )
        )
    return result
