"""Transprecision formats — the paper's future-work item:

    "our implementation could be further extended ... using TF32 execution
    mode or BFLOAT16" (Section VII).

numpy has no native bfloat16/TF32, so this module provides *software
rounding* to arbitrary binary floating-point formats (significand width +
exponent range) and a reference matrix-profile evaluator that applies the
rounding after every arithmetic operation — the same per-op semantics the
hardware tensor pipelines implement.  FP16 parameters are included so the
soft path can be validated bit-for-bit against numpy's native half.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.mstamp import precompute_statistics
from ..kernels.layout import validate_series

__all__ = [
    "SoftFormat",
    "BF16",
    "TF32",
    "SOFT_FP16",
    "SOFT_FORMATS",
    "round_to_format",
    "transprecision_matrix_profile",
    "transprecision_itemsize",
]


@dataclass(frozen=True)
class SoftFormat:
    """A binary floating-point format: ``precision`` significand bits
    (including the implicit leading one) and exponent range ``[emin, emax]``
    for the *unbiased* exponent of the value in [1, 2) normal form."""

    name: str
    precision: int
    emax: int
    emin: int

    @property
    def eps(self) -> float:
        """Unit roundoff, 2^-(p-1)."""
        return 2.0 ** (1 - self.precision) / 2.0

    @property
    def max_value(self) -> float:
        """Largest finite value, (2 - 2^(1-p)) * 2^emax."""
        return (2.0 - 2.0 ** (1 - self.precision)) * 2.0**self.emax


#: bfloat16: 8 significand bits, float32 exponent range.
BF16 = SoftFormat(name="BF16", precision=8, emax=127, emin=-126)

#: NVIDIA TF32: 11 significand bits (FP16 precision), float32 exponent range.
TF32 = SoftFormat(name="TF32", precision=11, emax=127, emin=-126)

#: IEEE binary16 parameters, for validating the soft path against numpy.
SOFT_FP16 = SoftFormat(name="FP16", precision=11, emax=15, emin=-14)

SOFT_FORMATS: dict[str, SoftFormat] = {f.name: f for f in (BF16, TF32, SOFT_FP16)}


def round_to_format(x: np.ndarray, fmt: SoftFormat) -> np.ndarray:
    """Round ``x`` to ``fmt`` with round-to-nearest-even.

    Semantics: normals rounded to ``fmt.precision`` bits; overflow to
    +/-inf; values below the smallest normal are flushed to zero (the
    tensor-core TF32 path flushes subnormals); NaN propagates.
    """
    x = np.asarray(x, dtype=np.float64)
    mantissa, exponent = np.frexp(x)  # x = mantissa * 2^exponent, |m| in [0.5, 1)
    # Round the significand to `precision` bits: mantissa in [0.5, 1) has
    # its leading bit at position 1, so scale by 2^precision.
    scale = 2.0**fmt.precision
    rounded = np.rint(mantissa * scale)
    out = np.ldexp(rounded / scale, exponent)

    # frexp's exponent is one above the [1,2) convention: value = f*2^(e-1),
    # f in [1, 2).  Normal range check uses e-1.
    unbiased = exponent - 1
    with np.errstate(invalid="ignore"):
        overflow = np.isfinite(x) & (np.abs(out) > fmt.max_value)
        underflow = np.isfinite(x) & (x != 0) & (unbiased < fmt.emin) & ~overflow
        out = np.where(overflow, np.where(x >= 0, np.inf, -np.inf), out)
        out = np.where(underflow, 0.0, out)
        out = np.where(np.isfinite(x), out, x)  # propagate inf/NaN unchanged
    return out


def transprecision_itemsize(fmt: SoftFormat) -> int:
    """Storage bytes per element for perf-model purposes: TF32 is stored
    as 4-byte words (it is an *execution* mode of FP32 data); BF16 and
    FP16 occupy 2 bytes."""
    return 4 if fmt.precision > 8 and fmt.emax > 100 else 2


def transprecision_matrix_profile(
    reference: np.ndarray,
    query: np.ndarray | None,
    m: int,
    fmt: SoftFormat,
    exclusion_zone: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Multi-dimensional matrix profile with per-op rounding to ``fmt``.

    Reference evaluator for the TF32/BFLOAT16 extension: the streaming
    recurrence, normalisation, sort and inclusive averaging all round to
    ``fmt`` after every operation (the precalculation runs in FP64 and is
    rounded once, mirroring the Mixed policy, which is how a tensor-core
    deployment would stage its inputs).  Returns ``(P, I)``.
    """
    reference = validate_series(reference, "reference")
    self_join = query is None
    query_arr = reference if self_join else validate_series(query, "query")
    if reference.shape[1] != query_arr.shape[1]:
        raise ValueError("dimensionality mismatch")
    if self_join and exclusion_zone is None:
        exclusion_zone = int(np.ceil(m / 4))

    rnd = lambda x: round_to_format(x, fmt)  # noqa: E731 - local shorthand

    ref = np.asarray(reference, dtype=np.float64)
    qry = np.asarray(query_arr, dtype=np.float64)
    d = ref.shape[1]
    n_r_seg = ref.shape[0] - m + 1
    n_q_seg = qry.shape[0] - m + 1

    mu_r, inv_r, df_r, dg_r = (rnd(a) for a in precompute_statistics(ref, m))
    mu_q, inv_q, df_q, dg_q = (rnd(a) for a in precompute_statistics(qry, m))

    # First row/column QT by rounded naive dots.
    def first_against(fixed, fixed_mu, series, mu, n_seg):
        acc = np.zeros((n_seg, d))
        centered_fixed = rnd(fixed - fixed_mu)
        for t in range(m):
            term = rnd(centered_fixed[t] * rnd(series[t : t + n_seg] - mu))
            acc = rnd(acc + term)
        return acc

    qt_row0 = first_against(ref[:m], mu_r[0], qry, mu_q, n_q_seg)
    qt_col0 = first_against(qry[:m], mu_q[0], ref, mu_r, n_r_seg)

    two_m = 2.0 * m
    profile = np.full((n_q_seg, d), np.inf)
    index = np.full((n_q_seg, d), -1, dtype=np.int64)
    cols = np.arange(n_q_seg)
    divisors = np.arange(1.0, d + 1.0)

    qt = qt_row0.copy()
    with np.errstate(over="ignore", invalid="ignore"):
        for i in range(n_r_seg):
            if i > 0:
                step = rnd(qt[:-1] + rnd(df_r[i] * dg_q[1:]))
                qt_new = np.empty_like(qt)
                qt_new[1:] = rnd(step + rnd(df_q[1:] * dg_r[i]))
                qt_new[0] = qt_col0[i]
                qt = qt_new
            corr = rnd(rnd(qt * inv_r[i]) * inv_q)
            gap = np.maximum(rnd(1.0 - corr), 0.0)
            dist = rnd(np.sqrt(rnd(two_m * gap)))
            dist = np.where(np.isfinite(dist), dist, fmt.max_value)
            if exclusion_zone is not None:
                dist = np.where(
                    (np.abs(cols - i) <= exclusion_zone)[:, None], np.inf, dist
                )
            inclusive = rnd(rnd(np.cumsum(np.sort(dist, axis=1), axis=1)) / divisors)
            improved = inclusive < profile
            profile[improved] = inclusive[improved]
            index[improved] = i
    return profile, index
