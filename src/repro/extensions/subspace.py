"""Motif subspace recovery (mSTAMP's companion step).

The multi-dimensional matrix profile tells *where* the best k-dimensional
motif lies but not *which* k+1 dimensions form it.  Yeh et al.'s mSTAMP
recovers the subspace by re-evaluating the per-dimension z-normalised
distances of the matched segment pair and keeping the k+1 smallest — this
module implements that recovery on top of any
:class:`~repro.core.result.MatrixProfileResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.result import MatrixProfileResult
from ..kernels.layout import validate_series

__all__ = ["MotifSubspace", "segment_distances", "recover_subspace", "motif_with_subspace"]


@dataclass(frozen=True)
class MotifSubspace:
    """A k-dimensional motif with its recovered dimension subset."""

    query_pos: int
    ref_pos: int
    k: int
    dimensions: tuple[int, ...]  # the k dimensions forming the motif
    distances: tuple[float, ...]  # per-dimension z-norm distances, sorted


def segment_distances(
    reference: np.ndarray,
    query: np.ndarray,
    ref_pos: int,
    query_pos: int,
    m: int,
) -> np.ndarray:
    """Per-dimension z-normalised distances of one segment pair, shape (d,)."""
    reference = validate_series(reference, "reference")
    query = validate_series(query, "query")
    if not 0 <= ref_pos <= reference.shape[0] - m:
        raise ValueError(f"ref_pos {ref_pos} out of range for m={m}")
    if not 0 <= query_pos <= query.shape[0] - m:
        raise ValueError(f"query_pos {query_pos} out of range for m={m}")
    a = reference[ref_pos : ref_pos + m].astype(np.float64)
    b = query[query_pos : query_pos + m].astype(np.float64)

    def znorm(seg):
        mu = seg.mean(axis=0, keepdims=True)
        sd = seg.std(axis=0, keepdims=True)
        sd = np.where(sd == 0, 1.0, sd)
        return (seg - mu) / sd

    return np.linalg.norm(znorm(a) - znorm(b), axis=0)


def recover_subspace(
    reference: np.ndarray,
    query: np.ndarray,
    ref_pos: int,
    query_pos: int,
    m: int,
    k: int,
) -> MotifSubspace:
    """The k dimensions in which the segment pair matches best."""
    dists = segment_distances(reference, query, ref_pos, query_pos, m)
    if not 1 <= k <= dists.shape[0]:
        raise ValueError(f"k must be in [1, {dists.shape[0]}], got {k}")
    order = np.argsort(dists, kind="stable")[:k]
    return MotifSubspace(
        query_pos=query_pos,
        ref_pos=ref_pos,
        k=k,
        dimensions=tuple(int(i) for i in order),
        distances=tuple(float(dists[i]) for i in order),
    )


def motif_with_subspace(
    result: MatrixProfileResult,
    reference: np.ndarray,
    query: np.ndarray | None,
    k: int,
) -> MotifSubspace:
    """Locate the best k-dimensional motif and recover its subspace."""
    query_arr = reference if query is None else query
    j, i = result.motif_location(k)
    if i < 0:
        raise ValueError("no valid motif at this k (all columns excluded)")
    return recover_subspace(reference, query_arr, i, j, result.m, k)
