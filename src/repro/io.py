"""Result persistence: save/load matrix profile results and timelines.

Long mining runs (the paper's n=2^18 genome study takes minutes even on
an A100) should be resumable and auditable: this module serialises
:class:`~repro.core.result.MatrixProfileResult` to a single ``.npz``
archive (arrays) with an embedded JSON header (metadata + timeline), and
loads it back loss-free.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .core.result import MatrixProfileResult
from .gpu.kernel import KernelCost
from .gpu.stream import StreamOp, Timeline
from .precision.modes import PrecisionMode

__all__ = ["save_result", "load_result"]

_FORMAT_VERSION = 1


def _timeline_to_records(timeline: Timeline) -> list[dict]:
    return [
        {
            "device": op.device,
            "device_index": op.device_index,
            "stream": op.stream,
            "engine": op.engine,
            "label": op.label,
            "start": op.start,
            "end": op.end,
            "overhead": op.overhead,
        }
        for op in timeline.ops
    ]


def _timeline_from_records(records: list[dict]) -> Timeline:
    timeline = Timeline()
    for r in records:
        timeline.add(StreamOp(**r))
    return timeline


def _costs_to_records(costs: dict[str, KernelCost]) -> dict[str, dict]:
    return {
        name: {
            "bytes_dram": c.bytes_dram,
            "bytes_l2": c.bytes_l2,
            "bytes_l1": c.bytes_l1,
            "flops": c.flops,
            "syncs": c.syncs,
            "launches": c.launches,
            "loop_rounds": c.loop_rounds,
        }
        for name, c in costs.items()
    }


def _costs_from_records(records: dict[str, dict]) -> dict[str, KernelCost]:
    out = {}
    for name, fields in records.items():
        cost = KernelCost(name=name)
        for key, value in fields.items():
            setattr(cost, key, value)
        out[name] = cost
    return out


def save_result(result: MatrixProfileResult, path: "str | Path") -> Path:
    """Serialise ``result`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    header = {
        "format_version": _FORMAT_VERSION,
        "mode": result.mode.value,
        "m": result.m,
        "n_tiles": result.n_tiles,
        "n_gpus": result.n_gpus,
        "merge_time": result.merge_time,
        "timeline": _timeline_to_records(result.timeline),
        "costs": _costs_to_records(result.costs),
        # Fault-tolerance provenance (absent in archives written before
        # the recovery machinery existed; load_result defaults them).
        "escalations": {
            str(tid): mode.value for tid, mode in result.escalations.items()
        },
        "split_tiles": {
            str(tid): list(children)
            for tid, children in result.split_tiles.items()
        },
        "resumed_tiles": result.resumed_tiles,
    }
    np.savez_compressed(
        path,
        profile=result.profile,
        index=result.index,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
    )
    return path


def load_result(path: "str | Path") -> MatrixProfileResult:
    """Load a result previously written by :func:`save_result`."""
    with np.load(Path(path)) as data:
        header = json.loads(bytes(data["header"].tobytes()).decode())
        if header.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported result format {header.get('format_version')!r}"
            )
        return MatrixProfileResult(
            profile=data["profile"],
            index=data["index"],
            mode=PrecisionMode.parse(header["mode"]),
            m=int(header["m"]),
            n_tiles=int(header["n_tiles"]),
            n_gpus=int(header["n_gpus"]),
            timeline=_timeline_from_records(header["timeline"]),
            merge_time=float(header["merge_time"]),
            costs=_costs_from_records(header["costs"]),
            escalations={
                int(tid): PrecisionMode.parse(mode)
                for tid, mode in header.get("escalations", {}).items()
            },
            split_tiles={
                int(tid): tuple(children)
                for tid, children in header.get("split_tiles", {}).items()
            },
            resumed_tiles=int(header.get("resumed_tiles", 0)),
        )
