"""Simulated GPU substrate: device specs, device memory, CUDA-style streams,
kernel-launch abstractions and the calibrated roofline performance model."""

from .calibration import (
    DEVICE_EFFICIENCY_SCALE,
    DRAM_EFFICIENCY,
    L1_EFFICIENCY,
    MERGE_TIME_PER_ELEMENT,
    device_scale,
    dram_efficiency,
    l1_efficiency,
)
from .device import A100, DEVICES, SKYLAKE16, V100, DeviceSpec, get_device
from .kernel import Kernel, KernelCost, LaunchConfig, grid_stride_chunks
from .memory import DeviceAllocation, DeviceMemory, DeviceOutOfMemoryError
from .perfmodel import (
    KernelTiming,
    TileTiming,
    cpu_baseline_time,
    kernel_time,
    single_tile_costs,
    single_tile_timing,
    sort_stage_count,
    transfer_time,
)
from .simulator import GPUSimulator, SimulatedGPU
from .stream import DeviceQueues, Stream, StreamOp, Timeline

__all__ = [
    "A100",
    "V100",
    "SKYLAKE16",
    "DEVICES",
    "DeviceSpec",
    "get_device",
    "Kernel",
    "KernelCost",
    "LaunchConfig",
    "grid_stride_chunks",
    "DeviceAllocation",
    "DeviceMemory",
    "DeviceOutOfMemoryError",
    "KernelTiming",
    "TileTiming",
    "cpu_baseline_time",
    "kernel_time",
    "single_tile_costs",
    "single_tile_timing",
    "sort_stage_count",
    "transfer_time",
    "GPUSimulator",
    "SimulatedGPU",
    "DeviceQueues",
    "Stream",
    "StreamOp",
    "Timeline",
    "DEVICE_EFFICIENCY_SCALE",
    "DRAM_EFFICIENCY",
    "L1_EFFICIENCY",
    "MERGE_TIME_PER_ELEMENT",
    "device_scale",
    "dram_efficiency",
    "l1_efficiency",
]
