"""Nsight-Compute-style profiling reports for simulated runs.

The paper profiles its kernels with NVIDIA Nsight Compute (Section V-A)
and reports throughput utilisations per kernel (Section V-C).  This
module renders the equivalent report from a
:class:`~repro.core.result.MatrixProfileResult`: per-kernel modelled
time, share of the run, traffic, achieved bandwidth, arithmetic
intensity and the binding resource — everything needed to reason about
where a configuration's time goes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.result import MatrixProfileResult
from ..precision.modes import policy_for
from ..reporting import format_seconds, format_table
from . import calibration as cal
from .device import DeviceSpec, get_device

__all__ = ["KernelProfile", "profile_result", "render_report"]


@dataclass(frozen=True)
class KernelProfile:
    """One kernel's aggregate profile over a run."""

    name: str
    time: float
    share: float  # fraction of total kernel time
    bytes_dram: float
    bytes_l1: float
    flops: float
    achieved_dram_bw: float  # bytes/s actually sustained (modelled)
    arithmetic_intensity: float  # flops per DRAM byte
    bound_by: str
    launches: int
    syncs: int


def _binding(name: str, cost, device: DeviceSpec, itemsize: int) -> str:
    scale = cal.device_scale(device.name)
    terms = {
        "DRAM": cost.bytes_dram
        / (cal.dram_efficiency(name, itemsize) * device.mem_bandwidth * scale),
        "L2": cost.bytes_l2 / (cal.L2_EFFICIENCY * device.l2_bandwidth * scale),
        "L1/TEX": (
            cost.bytes_l1 / (cal.l1_efficiency(itemsize) * device.l1_bandwidth * scale)
            if cost.bytes_l1
            else 0.0
        ),
        "SM": cost.flops / (cal.SM_EFFICIENCY * device.peak_flops(itemsize)),
    }
    return max(terms, key=terms.get)


def profile_result(
    result: MatrixProfileResult, device: "DeviceSpec | str" = "A100"
) -> list[KernelProfile]:
    """Build per-kernel profiles from a result's costs and timeline."""
    if not result.costs:
        raise ValueError(
            "result carries no kernel costs (modelled-only runs have no "
            "recorded execution to profile)"
        )
    device = get_device(device)
    policy = policy_for(result.mode)
    breakdown = result.kernel_breakdown()
    total = sum(breakdown.values()) or 1.0
    profiles = []
    for name, cost in result.costs.items():
        time = breakdown.get(name, 0.0)
        itemsize = (
            policy.precalc.itemsize if name == "precalculation" else policy.itemsize
        )
        profiles.append(
            KernelProfile(
                name=name,
                time=time,
                share=time / total,
                bytes_dram=cost.bytes_dram,
                bytes_l1=cost.bytes_l1,
                flops=cost.flops,
                achieved_dram_bw=cost.bytes_dram / time if time > 0 else 0.0,
                arithmetic_intensity=(
                    cost.flops / cost.bytes_dram if cost.bytes_dram else 0.0
                ),
                bound_by=_binding(name, cost, device, itemsize),
                launches=cost.launches,
                syncs=cost.syncs,
            )
        )
    profiles.sort(key=lambda p: p.time, reverse=True)
    return profiles


def render_report(
    result: MatrixProfileResult, device: "DeviceSpec | str" = "A100"
) -> str:
    """Human-readable profiling report (the `ncu`-summary equivalent)."""
    device = get_device(device)
    profiles = profile_result(result, device)
    rows = [
        [
            p.name,
            format_seconds(p.time),
            f"{p.share:.1%}",
            f"{p.bytes_dram / 1e6:.1f} MB",
            f"{p.achieved_dram_bw / 1e9:.0f} GB/s",
            f"{p.arithmetic_intensity:.2f}",
            p.bound_by,
            p.launches,
            p.syncs,
        ]
        for p in profiles
    ]
    header = (
        f"Profile: {result.mode} on {device.name}, {result.n_tiles} tile(s), "
        f"{result.n_gpus} GPU(s) — modelled total "
        f"{format_seconds(result.modeled_time)}"
    )
    table = format_table(
        ["kernel", "time", "share", "DRAM traffic", "achieved BW",
         "flops/byte", "bound by", "launches", "syncs"],
        rows,
        header,
    )
    peak = device.mem_bandwidth / 1e9
    return f"{table}\n(device peak DRAM bandwidth: {peak:.0f} GB/s)"
