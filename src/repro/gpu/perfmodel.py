"""Roofline performance model for the simulated GPU kernels.

Every kernel invocation produces a :class:`~repro.gpu.kernel.KernelCost`
(memory traffic, arithmetic, synchronisations).  This module converts costs
into time against a :class:`~repro.gpu.device.DeviceSpec`:

``busy = max(dram, l2, l1, flops)`` terms — the paper observes all kernels
are memory-bound (Section V-C), so one of the bandwidth terms dominates —
plus an ``overhead`` term (kernel-launch gaps and coarse-grained
synchronisation stalls) that occupies the issuing *stream* but not the SMs,
and therefore hides under multi-stream concurrency.

The module also provides *analytic* cost builders mirroring exactly the
accounting the real kernels perform, so paper-scale problem sizes (n=2^16
and beyond, infeasible to execute in Python) can be projected without
running.  ``tests/test_perfmodel.py`` asserts the analytic formulas agree
with the costs the executed kernels record.

Cost-accounting conventions (shared by kernels and the analytic model; one
"plane" is ``n_q_seg * d`` elements of the storage dtype):

=================  =========================================================
kernel             per-row accounting
=================  =========================================================
dist_calc          DRAM 3 planes (QT read, QT write, D write; df/dg/norm
                   vectors are L2-resident), L2 6 planes, 8 flops/element
sort_&_incl_scan   DRAM 2 planes (D in, D'' out), L1 ``stages`` padded
                   planes, 1 flop/element/stage, ``stages`` group syncs
update_mat_prof    DRAM 2 planes (D'' read, P/I write-combined), L2 5
                   planes, 2 flops/element
precalculation     once per tile: inputs + outputs + first row/column QT
                   dot products (2*m flops per segment-dim)
=================  =========================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from . import calibration as cal
from .device import DeviceSpec, get_device
from .kernel import KernelCost, LaunchConfig

__all__ = [
    "KernelTiming",
    "TileTiming",
    "kernel_time",
    "sort_stage_count",
    "single_tile_costs",
    "single_tile_timing",
    "cpu_baseline_time",
    "transfer_time",
]

KERNEL_NAMES = ("precalculation", "dist_calc", "sort_&_incl_scan", "update_mat_prof")


@dataclass(frozen=True)
class KernelTiming:
    """Modelled time of one (possibly aggregated) kernel invocation."""

    busy: float  # exclusive SM/memory-system occupancy
    overhead: float  # launch + sync latency, hideable under concurrency

    @property
    def total(self) -> float:
        return self.busy + self.overhead

    def __add__(self, other: "KernelTiming") -> "KernelTiming":
        return KernelTiming(self.busy + other.busy, self.overhead + other.overhead)


def kernel_time(
    cost: KernelCost,
    device: DeviceSpec,
    itemsize: int,
    working_set: float | None = None,
) -> KernelTiming:
    """Roofline time for ``cost`` on ``device`` at ``itemsize`` bytes/element.

    ``working_set`` (bytes) enables the L2-residency bonus: when a tile's
    active planes fit in L2, DRAM-bound kernels run at (a fraction of) L2
    bandwidth instead — the effect that makes ~256 small tiles slightly
    faster than one big tile in Fig. 7.
    """
    scale = cal.device_scale(device.name)
    eff_dram = cal.dram_efficiency(cost.name, itemsize) * device.mem_bandwidth * scale
    # Graduated L2-residency bonus: as a tile's active working set shrinks
    # below L2 capacity, a growing fraction of its "DRAM" traffic is served
    # from L2.  Full bonus below L2/8 (plenty of room for concurrent
    # streams), no bonus above L2 — this is what makes many small tiles
    # slightly *faster* than one huge tile in Fig. 7.
    if working_set is not None and working_set < device.l2_capacity:
        l2_rate = cal.L2_EFFICIENCY * device.l2_bandwidth * scale
        lo = device.l2_capacity / 8.0
        frac = min(1.0, (device.l2_capacity - working_set) / (device.l2_capacity - lo))
        eff_dram = max(eff_dram, eff_dram + frac * (l2_rate - eff_dram))
    t_dram = cost.bytes_dram / eff_dram
    t_l2 = cost.bytes_l2 / (cal.L2_EFFICIENCY * device.l2_bandwidth * scale)
    t_l1 = cost.bytes_l1 / (cal.l1_efficiency(itemsize) * device.l1_bandwidth * scale)
    if cost.tensor_core and device.has_tensor_cores:
        # MMA-unit flops: priced against the tensor-core ceiling, the
        # 4-8x higher roofline the FP16-multiply/FP32-accumulate panels
        # execute on (the vector pipes sit idle during the GEMM chain).
        t_flop = cost.flops / (cal.TC_EFFICIENCY * device.peak_flops_tc)
    else:
        t_flop = cost.flops / (cal.SM_EFFICIENCY * device.peak_flops(itemsize))
    busy = max(t_dram, t_l2, t_l1, t_flop)
    overhead = (
        cost.syncs * device.sync_latency
        + cost.launches * device.kernel_launch_overhead
    )
    return KernelTiming(busy=busy, overhead=overhead)


def sort_stage_count(d: int) -> tuple[int, int]:
    """(bitonic stages, scan stages) for dimensionality ``d``.

    The bitonic network on ``p = next_pow2(d)`` elements has
    ``k(k+1)/2`` compare-exchange stages with ``k = log2(p)``; the fan-in
    inclusive scan adds ``k`` stages (Section III-A: O(log^2 d) sort and
    O(log d) scan).
    """
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    p = 1 << (d - 1).bit_length()
    k = p.bit_length() - 1
    return k * (k + 1) // 2, k


def _padded(d: int) -> int:
    return 1 << (d - 1).bit_length()


def single_tile_costs(
    n_r_seg: int,
    n_q_seg: int,
    d: int,
    m: int,
    itemsize: int,
    config: LaunchConfig,
    precalc_itemsize: int | None = None,
    compensated: bool = False,
) -> dict[str, KernelCost]:
    """Analytic aggregate kernel costs of one full single-tile run.

    Mirrors exactly the accounting the executed kernels perform; see the
    module docstring for the conventions.
    """
    if min(n_r_seg, n_q_seg, d, m) < 1:
        raise ValueError("n_r_seg, n_q_seg, d and m must all be >= 1")
    precalc_itemsize = precalc_itemsize or itemsize
    plane = float(n_q_seg * d * itemsize)
    elems = float(n_q_seg * d)
    rounds_per_row = math.ceil(n_q_seg * d / config.total_threads)
    sort_stages, scan_stages = sort_stage_count(d)
    stages = sort_stages + scan_stages
    p = _padded(d)

    precalc_elems = float((n_r_seg + n_q_seg) * d)
    precalc_flops = 2.0 * m * precalc_elems + 8.0 * precalc_elems
    if compensated:
        precalc_flops *= 4.0  # Kahan: 4 ops per accumulation step
    precalc = KernelCost(
        name="precalculation",
        bytes_dram=(
            # read both input series, write the 8 precalculated vectors and
            # the first-row/column QT entries
            float((n_r_seg + m - 1 + n_q_seg + m - 1) * d * precalc_itemsize)
            + 8.0 * precalc_elems * precalc_itemsize
            + precalc_elems * precalc_itemsize
        ),
        bytes_l2=2.0 * m * precalc_elems * precalc_itemsize,
        bytes_l1=0.0,
        flops=precalc_flops,
        syncs=0,
        launches=1,
        loop_rounds=math.ceil(precalc_elems / config.total_threads),
    )

    dist = KernelCost(
        name="dist_calc",
        bytes_dram=3.0 * plane * n_r_seg,
        bytes_l2=6.0 * plane * n_r_seg,
        bytes_l1=0.0,
        flops=8.0 * elems * n_r_seg,
        syncs=0,
        launches=n_r_seg,
        loop_rounds=rounds_per_row * n_r_seg,
    )

    sort = KernelCost(
        name="sort_&_incl_scan",
        bytes_dram=2.0 * plane * n_r_seg,
        bytes_l2=2.0 * plane * n_r_seg,
        bytes_l1=float(stages * n_q_seg * p * itemsize) * n_r_seg,
        flops=float(stages * n_q_seg * p) * n_r_seg,
        syncs=stages * n_r_seg,
        launches=n_r_seg,
        loop_rounds=math.ceil(n_q_seg * p / config.total_threads) * n_r_seg,
    )

    update = KernelCost(
        name="update_mat_prof",
        bytes_dram=2.0 * plane * n_r_seg,
        bytes_l2=5.0 * plane * n_r_seg,
        bytes_l1=0.0,
        flops=2.0 * elems * n_r_seg,
        syncs=0,
        launches=n_r_seg,
        loop_rounds=rounds_per_row * n_r_seg,
    )

    return {c.name: c for c in (precalc, dist, sort, update)}


@dataclass
class TileTiming:
    """Modelled timing of one tile: per-kernel timings plus transfer bytes."""

    kernels: dict[str, KernelTiming] = field(default_factory=dict)
    h2d_bytes: float = 0.0
    d2h_bytes: float = 0.0

    @property
    def compute_busy(self) -> float:
        return sum(t.busy for t in self.kernels.values())

    @property
    def compute_overhead(self) -> float:
        return sum(t.overhead for t in self.kernels.values())

    @property
    def compute_total(self) -> float:
        return self.compute_busy + self.compute_overhead


def single_tile_timing(
    n_r_seg: int,
    n_q_seg: int,
    d: int,
    m: int,
    device: "DeviceSpec | str",
    itemsize: int,
    config: LaunchConfig | None = None,
    precalc_itemsize: int | None = None,
    compensated: bool = False,
    index_itemsize: int = 8,
) -> TileTiming:
    """Full analytic timing of a single tile (Pseudocode 1) at any scale."""
    device = get_device(device)
    config = config or LaunchConfig.tuned_for(device)
    costs = single_tile_costs(
        n_r_seg,
        n_q_seg,
        d,
        m,
        itemsize,
        config,
        precalc_itemsize=precalc_itemsize,
        compensated=compensated,
    )
    working_set = 6.0 * n_q_seg * d * itemsize
    timing = TileTiming()
    for name, cost in costs.items():
        size = precalc_itemsize if name == "precalculation" else itemsize
        timing.kernels[name] = kernel_time(
            cost, device, size or itemsize, working_set=working_set
        )
    timing.h2d_bytes = float((n_r_seg + n_q_seg + 2 * (m - 1)) * d * itemsize)
    timing.d2h_bytes = float(n_q_seg * d * (itemsize + index_itemsize))
    return timing


def transfer_time(nbytes: float, device: DeviceSpec) -> float:
    """Host<->device copy time over the PCIe link."""
    if device.pcie_bandwidth <= 0:
        return 0.0
    return nbytes / device.pcie_bandwidth


def cpu_baseline_time(n_r_seg: int, n_q_seg: int, d: int) -> float:
    """Modelled (MP)^N runtime on the 16-core Skylake baseline (Fig. 6).

    ``t = n_r * n_q * d * c * (1 + 0.35 * log2(d))`` — quadratic in the
    number of segments, linear in dimensionality with a logarithmic sort
    factor, independent of m; exactly the complexity behaviour Fig. 6
    reports for the reference code.
    """
    log_d = math.log2(max(d, 2))
    return (
        float(n_r_seg)
        * float(n_q_seg)
        * d
        * cal.CPU_CELL_TIME
        * (1.0 + cal.CPU_SORT_FACTOR * log_d)
    )
