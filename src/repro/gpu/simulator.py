"""The simulated multi-GPU node: devices, memories, stream pools, timeline.

`GPUSimulator` is the execution context the core algorithms run against.
It owns one :class:`DeviceQueues`/:class:`DeviceMemory` pair per simulated
GPU plus a pool of up to ``max_streams`` streams per device (the paper uses
at most 16 non-blocking streams, Section IV), and accumulates the global
:class:`Timeline` from which all performance figures are derived.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec, get_device
from .memory import DeviceMemory
from .perfmodel import TileTiming, transfer_time
from .stream import DeviceQueues, Stream, Timeline, flush_streams

__all__ = ["SimulatedGPU", "GPUSimulator", "schedule_tile_timing"]


def schedule_tile_timing(
    gpu: "SimulatedGPU",
    stream: Stream,
    timeline: Timeline,
    timing: TileTiming,
    label: str,
) -> None:
    """Enqueue one tile's modelled operations on a stream (Pseudocode 1
    order: H2D copy, the four kernels, D2H copy of P and I).

    Ops are *enqueued*, not placed: callers run ``GPUSimulator.flush()``
    once every tile is submitted, so the event-driven scheduler can
    interleave streams the way the hardware does.
    """
    stream.enqueue("h2d", f"h2d:{label}", transfer_time(timing.h2d_bytes, gpu.spec))
    for name, kt in timing.kernels.items():
        stream.enqueue("compute", f"{name}:{label}", kt.busy, kt.overhead)
    stream.enqueue("d2h", f"d2h:{label}", transfer_time(timing.d2h_bytes, gpu.spec))


@dataclass
class SimulatedGPU:
    """One simulated GPU: spec + queues + memory + its stream pool."""

    spec: DeviceSpec
    queues: DeviceQueues
    memory: DeviceMemory
    streams: list[Stream]
    _next_stream: int = 0

    def next_stream(self) -> Stream:
        """Round-robin stream selection (tiles cycle through the pool)."""
        stream = self.streams[self._next_stream % len(self.streams)]
        self._next_stream += 1
        return stream


class GPUSimulator:
    """A node with ``n_gpus`` identical simulated GPUs.

    Parameters
    ----------
    device:
        Device spec or name (``"V100"``, ``"A100"``).
    n_gpus:
        Number of GPUs in the node (DGX-1 has 8 V100s; Raven nodes 4 A100s).
    n_streams:
        Streams per GPU, capped at the device's ``max_streams`` (16).
    """

    def __init__(
        self,
        device: "DeviceSpec | str" = "A100",
        n_gpus: int = 1,
        n_streams: int | None = None,
    ):
        spec = get_device(device)
        if n_gpus < 1:
            raise ValueError(f"n_gpus must be >= 1, got {n_gpus}")
        n_streams = n_streams if n_streams is not None else spec.max_streams
        if not 1 <= n_streams <= spec.max_streams:
            raise ValueError(
                f"n_streams must be in [1, {spec.max_streams}], got {n_streams}"
            )
        self.spec = spec
        self.n_streams = n_streams
        self.timeline = Timeline()
        self.gpus: list[SimulatedGPU] = []
        for index in range(n_gpus):
            queues = DeviceQueues(name=spec.name, index=index)
            self.gpus.append(
                SimulatedGPU(
                    spec=spec,
                    queues=queues,
                    memory=DeviceMemory(spec),
                    streams=[
                        Stream(device=queues, stream_id=s) for s in range(n_streams)
                    ],
                )
            )

    @property
    def n_gpus(self) -> int:
        return len(self.gpus)

    def flush(self) -> None:
        """Run the event-driven scheduler for all pending ops on all GPUs."""
        for gpu in self.gpus:
            flush_streams(gpu.streams, self.timeline)

    def reset_timeline(self) -> None:
        """Clear the timeline and all engine/stream clocks (new experiment)."""
        self.timeline = Timeline()
        for gpu in self.gpus:
            gpu.queues.engine_ready = {k: 0.0 for k in gpu.queues.engine_ready}
            for stream in gpu.streams:
                stream.ready = 0.0
            gpu._next_stream = 0
            gpu.memory.free_all()

    def memory_report(self) -> list[dict[str, int]]:
        return [gpu.memory.report() for gpu in self.gpus]
