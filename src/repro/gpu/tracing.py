"""Chrome-trace export of simulated timelines.

`chrome://tracing` / Perfetto's JSON trace format is the lingua franca of
GPU timeline visualisation (Nsight Systems exports it too).  This module
converts a :class:`~repro.gpu.stream.Timeline` into that format, one
trace "process" per simulated GPU and one "thread" per engine, so a
multi-GPU tiled run can be inspected visually: stream interleaving,
transfer overlap, the merge gap — everything the scheduler modelled.

Timestamps are microseconds (the format's unit); durations come straight
from the modelled ops.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.result import MatrixProfileResult
from .stream import Timeline

__all__ = ["timeline_to_trace_events", "export_chrome_trace"]

#: Stable thread ids per engine within each device row.
_ENGINE_TID = {"compute": 0, "h2d": 1, "d2h": 2}
_ENGINE_LABEL = {"compute": "SMs (compute)", "h2d": "DMA H2D", "d2h": "DMA D2H"}


def timeline_to_trace_events(timeline: Timeline) -> list[dict]:
    """The Trace Event Format list for ``timeline``.

    Each op becomes a complete ("X") event; metadata ("M") events name
    the processes/threads.  Kernel ops carry their stream id and the
    kernel family as arguments so Perfetto can group/filter them.
    """
    events: list[dict] = []
    seen_devices: set[int] = set()
    for op in timeline.ops:
        if op.device_index not in seen_devices:
            seen_devices.add(op.device_index)
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": op.device_index,
                    "args": {"name": f"{op.device} #{op.device_index}"},
                }
            )
            for engine, tid in _ENGINE_TID.items():
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": op.device_index,
                        "tid": tid,
                        "args": {"name": _ENGINE_LABEL[engine]},
                    }
                )
        kernel = op.label.split(":", 1)[0]
        events.append(
            {
                "ph": "X",
                "name": op.label,
                "cat": op.engine,
                "pid": op.device_index,
                "tid": _ENGINE_TID[op.engine],
                "ts": op.start * 1e6,
                "dur": max(op.duration, 0.0) * 1e6,
                "args": {"stream": op.stream, "kernel": kernel},
            }
        )
    return events


def export_chrome_trace(
    source: "Timeline | MatrixProfileResult", path: "str | Path"
) -> Path:
    """Write a ``.json`` trace viewable in chrome://tracing or Perfetto.

    Accepts either a raw timeline or a full result (whose merge time, if
    any, is appended as a host-side event after the GPU makespan).
    """
    path = Path(path)
    if path.suffix != ".json":
        path = path.with_suffix(path.suffix + ".json")

    if isinstance(source, MatrixProfileResult):
        timeline = source.timeline
        events = timeline_to_trace_events(timeline)
        if source.merge_time > 0:
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": 9999,
                    "args": {"name": "host (CPU)"},
                }
            )
            events.append(
                {
                    "ph": "X",
                    "name": "merge_tiles",
                    "cat": "host",
                    "pid": 9999,
                    "tid": 0,
                    "ts": timeline.makespan * 1e6,
                    "dur": source.merge_time * 1e6,
                    "args": {"tiles": source.n_tiles},
                }
            )
    else:
        events = timeline_to_trace_events(source)

    path.write_text(json.dumps({"traceEvents": events}, indent=None))
    return path
