"""SM occupancy model — why the paper's launch configurations are optimal.

The paper tunes "kernel launch configurations that match the GPU hardware
architecture": 163,840 threads on V100 (80 SMs x 64 warps x 32 threads)
and 221,184 on A100 (108 x 64 x 32) — i.e. exactly one thread per hardware
warp slot.  This module provides the standard CUDA occupancy calculation
(warps per SM limited by threads, blocks, registers and shared memory) so
that choice can be derived rather than asserted, and so users porting to
other devices can tune their own configurations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .device import DeviceSpec, get_device
from .kernel import LaunchConfig

__all__ = [
    "SMResources",
    "SM_RESOURCES",
    "OccupancyResult",
    "occupancy",
    "best_block_size",
    "fragment_registers",
    "tensor_core_occupancy",
]


@dataclass(frozen=True)
class SMResources:
    """Per-SM scheduling limits of one architecture."""

    max_threads: int  # resident threads per SM
    max_blocks: int  # resident blocks per SM
    max_warps: int  # resident warps per SM
    registers: int  # 32-bit registers per SM
    shared_memory: int  # bytes of shared memory per SM usable by blocks
    warp_size: int = 32
    register_granularity: int = 256  # per-warp register allocation unit
    smem_granularity: int = 256  # shared-memory allocation unit


#: Volta (V100) and Ampere (A100) per-SM limits from the CUDA occupancy
#: tables.  Both architectures schedule 64 warps / 2048 threads per SM.
SM_RESOURCES: dict[str, SMResources] = {
    "V100": SMResources(
        max_threads=2048,
        max_blocks=32,
        max_warps=64,
        registers=65536,
        shared_memory=96 * 1024,
    ),
    "A100": SMResources(
        max_threads=2048,
        max_blocks=32,
        max_warps=64,
        registers=65536,
        shared_memory=164 * 1024,
    ),
    # Consumer Ampere (GA102): half the warp slots of the data-centre
    # parts — fragment register pressure bites much sooner here.
    "RTX3090": SMResources(
        max_threads=1536,
        max_blocks=16,
        max_warps=48,
        registers=65536,
        shared_memory=100 * 1024,
    ),
}


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation for one kernel configuration."""

    blocks_per_sm: int
    warps_per_sm: int
    occupancy: float  # active warps / max warps
    limiter: str  # "threads" | "blocks" | "registers" | "shared_memory"

    @property
    def full(self) -> bool:
        return self.occupancy >= 1.0


def occupancy(
    device: "DeviceSpec | str",
    threads_per_block: int,
    registers_per_thread: int = 32,
    shared_memory_per_block: int = 0,
) -> OccupancyResult:
    """CUDA-style occupancy: resident blocks per SM under all four limits."""
    device = get_device(device)
    res = SM_RESOURCES.get(device.name)
    if res is None:
        raise ValueError(f"no SM resource table for device {device.name!r}")
    if threads_per_block < 1 or threads_per_block > 1024:
        raise ValueError(
            f"threads_per_block must be in [1, 1024], got {threads_per_block}"
        )
    warps_per_block = math.ceil(threads_per_block / res.warp_size)

    limits = {
        "threads": res.max_threads // threads_per_block,
        "blocks": res.max_blocks,
    }
    # Registers are allocated per warp at a fixed granularity.
    regs_per_warp = _round_up(
        registers_per_thread * res.warp_size, res.register_granularity
    )
    regs_per_block = regs_per_warp * warps_per_block
    limits["registers"] = (
        res.registers // regs_per_block if regs_per_block > 0 else res.max_blocks
    )
    if shared_memory_per_block > 0:
        smem = _round_up(shared_memory_per_block, res.smem_granularity)
        limits["shared_memory"] = res.shared_memory // smem
    else:
        limits["shared_memory"] = res.max_blocks

    limiter = min(limits, key=limits.get)
    blocks = max(0, min(limits.values()))
    warps = min(blocks * warps_per_block, res.max_warps)
    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        occupancy=warps / res.max_warps,
        limiter=limiter,
    )


def best_block_size(
    device: "DeviceSpec | str",
    registers_per_thread: int = 32,
    shared_memory_per_block: int = 0,
    candidates: tuple[int, ...] = (64, 128, 256, 512, 1024),
) -> tuple[int, OccupancyResult]:
    """The candidate block size with the highest occupancy (ties -> larger
    blocks, which reduce scheduling overhead)."""
    best = None
    for size in candidates:
        result = occupancy(device, size, registers_per_thread, shared_memory_per_block)
        if best is None or (result.occupancy, size) > (best[1].occupancy, best[0]):
            best = (size, result)
    return best


def launch_for_full_occupancy(
    device: "DeviceSpec | str",
    registers_per_thread: int = 32,
    shared_memory_per_block: int = 0,
) -> LaunchConfig:
    """A grid/block pair that saturates every warp slot of the device —
    reproducing the paper's tuned totals (163,840 / 221,184 threads) from
    first principles when the kernel's resource usage permits."""
    device = get_device(device)
    block, result = best_block_size(
        device, registers_per_thread, shared_memory_per_block
    )
    res = SM_RESOURCES[device.name]
    resident_threads = min(result.warps_per_sm * res.warp_size, res.max_threads)
    total = resident_threads * device.n_sms
    grid = max(1, total // block)
    return LaunchConfig(grid=grid, block=block)


def fragment_registers(
    mma_shape: tuple[int, int, int], accumulators: int = 2
) -> int:
    """Registers per *thread* to hold one WMMA fragment set.

    A warp-scope MMA keeps its operands in registers spread across the 32
    lanes: the A fragment (m x k halves, 2 per 32-bit register), the B
    fragment (k x n halves) and ``accumulators`` C/D fragments (m x n
    float32, one register each).  ``accumulators=2`` models the chained
    reduction pattern (carry + current) of Navarro et al.
    """
    m, n, k = mma_shape
    if min(m, n, k) < 1:
        raise ValueError(f"mma_shape entries must be >= 1, got {mma_shape}")
    halves = m * k + k * n
    regs_per_warp = halves / 2 + m * n * accumulators
    return math.ceil(regs_per_warp / 32)


def tensor_core_occupancy(
    device: "DeviceSpec | str",
    threads_per_block: int = 256,
    base_registers: int = 32,
    fragments_in_flight: int = 2,
    mma_shape: tuple[int, int, int] | None = None,
) -> OccupancyResult:
    """Occupancy of the tensor-core main loop, pricing fragment residency.

    The packed-panel kernel keeps ``fragments_in_flight`` fragment sets
    live per warp (double-buffered operand staging) on top of its scalar
    working registers, so the register limiter — not threads or blocks —
    typically caps residency.  Uses the device's own ``mma_shape`` unless
    overridden.
    """
    device = get_device(device)
    shape = mma_shape or device.mma_shape
    regs = base_registers + fragments_in_flight * fragment_registers(shape)
    return occupancy(device, threads_per_block, registers_per_thread=regs)


def _round_up(value: int, granularity: int) -> int:
    return ((value + granularity - 1) // granularity) * granularity
