"""Kernel abstractions: launch configuration, grid-stride loops, cost counters.

Every GPU kernel in this reproduction is a subclass of :class:`Kernel` that
(1) performs the *real* numerical work with vectorised numpy in the
requested precision and (2) reports a :class:`KernelCost` describing the
memory traffic, arithmetic and synchronisation it would incur on hardware.
The cost feeds the roofline performance model (``perfmodel.py``); the
numerics feed the accuracy evaluation.  Keeping both in one object
guarantees the modelled time always refers to the computation actually
performed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from .device import DeviceSpec

__all__ = ["LaunchConfig", "KernelCost", "Kernel", "grid_stride_chunks"]


@dataclass(frozen=True)
class LaunchConfig:
    """Kernel launch configuration ``<<<grid, block>>>``.

    The paper tunes these to saturate the device: grid=64 with block=2560
    on V100 and block=3456 on A100, so that grid*block equals the hardware
    thread capacity (Section IV).
    """

    grid: int
    block: int

    def __post_init__(self) -> None:
        if self.grid <= 0 or self.block <= 0:
            raise ValueError(f"grid and block must be positive, got {self}")

    @property
    def total_threads(self) -> int:
        return self.grid * self.block

    @classmethod
    def tuned_for(cls, device: DeviceSpec) -> "LaunchConfig":
        """The paper's tuned configuration: 64 blocks filling every warp slot."""
        grid = 64
        block = max(device.max_threads // grid, 1)
        return cls(grid=grid, block=block)

    def occupancy(self, device: DeviceSpec) -> float:
        """Fraction of hardware thread slots this launch occupies (<=1)."""
        return min(1.0, self.total_threads / device.max_threads)


def grid_stride_chunks(n_items: int, config: LaunchConfig) -> Iterator[slice]:
    """Iterate a flat index space the way a grid-stride loop walks it.

    A grid-stride loop assigns thread ``t`` the items ``t, t+T, t+2T, ...``
    with ``T = grid*block`` total threads; one *round* of the loop touches a
    contiguous span of ``T`` items (which is what makes the accesses
    coalesced).  Vectorised numpy already processes whole spans at once, so
    for simulation purposes each chunk is one loop round; kernels use the
    chunk count to account for loop-iteration overheads.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be non-negative, got {n_items}")
    step = config.total_threads
    for start in range(0, n_items, step):
        yield slice(start, min(start + step, n_items))


@dataclass
class KernelCost:
    """Hardware-cost footprint of one kernel invocation.

    Fields match what NVIDIA Nsight Compute reports and what the paper's
    resource-utilisation discussion references (Section V-C): DRAM traffic,
    L2/L1 traffic, arithmetic, and coarse-grained synchronisation count.
    """

    name: str
    bytes_dram: float = 0.0
    bytes_l2: float = 0.0
    bytes_l1: float = 0.0
    flops: float = 0.0
    syncs: int = 0
    launches: int = 1
    loop_rounds: int = 0
    #: Whether ``flops`` execute on the tensor-core (MMA) unit rather
    #: than the vector pipes — priced against ``peak_flops_tc``.
    tensor_core: bool = False

    def __add__(self, other: "KernelCost") -> "KernelCost":
        if self.name != other.name:
            raise ValueError(f"cannot merge costs of {self.name!r} and {other.name!r}")
        return KernelCost(
            name=self.name,
            bytes_dram=self.bytes_dram + other.bytes_dram,
            bytes_l2=self.bytes_l2 + other.bytes_l2,
            bytes_l1=self.bytes_l1 + other.bytes_l1,
            flops=self.flops + other.flops,
            syncs=self.syncs + other.syncs,
            launches=self.launches + other.launches,
            loop_rounds=self.loop_rounds + other.loop_rounds,
            tensor_core=self.tensor_core or other.tensor_core,
        )

    def scaled(self, factor: float) -> "KernelCost":
        """Cost of ``factor`` repetitions of this invocation."""
        return KernelCost(
            name=self.name,
            bytes_dram=self.bytes_dram * factor,
            bytes_l2=self.bytes_l2 * factor,
            bytes_l1=self.bytes_l1 * factor,
            flops=self.flops * factor,
            syncs=int(round(self.syncs * factor)),
            launches=int(round(self.launches * factor)),
            loop_rounds=int(round(self.loop_rounds * factor)),
            tensor_core=self.tensor_core,
        )


@dataclass
class Kernel:
    """Base class for the four GPU kernels.

    Subclasses implement ``run(...)`` returning their numerical outputs and
    record their hardware cost in ``self.cost``.  ``config`` is the launch
    configuration used for the grid-stride loops.
    """

    config: LaunchConfig
    cost: KernelCost = field(init=False)

    def __post_init__(self) -> None:
        self.cost = KernelCost(name=type(self).__name__, launches=0)

    def _account(self, **deltas: float) -> None:
        """Accumulate cost fields (e.g. ``bytes_dram=...``, ``syncs=...``)."""
        for key, value in deltas.items():
            setattr(self.cost, key, getattr(self.cost, key) + value)

    @staticmethod
    def nbytes(*arrays: np.ndarray) -> float:
        """Total byte size of the given arrays (DRAM traffic helper)."""
        return float(sum(a.nbytes for a in arrays))
